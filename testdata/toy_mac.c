// A toy keyed checksum for trying out the maskcc and leakcheck tools:
//   maskcc -policy selective -slice testdata/toy_mac.c
//   leakcheck -policy selective testdata/toy_mac.c
//   leakcheck -policy seeds-only testdata/toy_mac.c   (reports leaks)
secure int key[4];
int msg[16];
int tag;

int mix(int acc, secure int k, int m) {
	int t;
	t = (acc ^ k) + m;
	t = (t << 3) | ((t >>> 29) & 7);
	return t;
}

void main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 16; i = i + 1) {
		acc = mix(acc, key[i & 3], msg[i]);
	}
	tag = public(acc);
}
