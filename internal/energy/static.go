package energy

import "desmask/internal/isa"

// Static (data-independent) energy accounting for the block-compiled engine
// (internal/block). The transition-sensitive Model charges two kinds of
// energy: constants that every execution of a micro-op pays regardless of
// operand values (array accesses, decode, register-file ports, ALU base cost,
// and — under dual-rail precharging — the secure datapath's constant-activity
// rails), and transition terms that depend on the data history of each rail.
// Block-compiled runs precompute the constant portion per block; the
// transition terms require per-cycle rail history and are exactly what forces
// a metered run onto the cycle-accurate core.
//
// Every transition term is non-negative, so the static sum is a strict lower
// bound on the metered total of the same run: for any program,
//
//	Σ StaticUOpPJ + Σ squash statics + Cycles·ClockPJ ≤ Probe.TotalPJ
//
// with equality only in the degenerate case of zero switching activity. The
// bound is pinned by tests in internal/block.

// railFullSwingPJ is the constant energy of one precharged dual-rail
// transfer: exactly half of the 64 normal+complementary lines discharge each
// evaluate phase (16 per rail half), independent of the value driven. This is
// rail.transfer's secure/precharge arm, summed over both components.
func railFullSwingPJ(linePJ float64) float64 { return 32 * linePJ }

// StaticUOpPJ returns the data-independent energy charged for one executed
// (retired) micro-op across all five stages: fetch array, decode and
// register reads, the ALU base cost, the memory array, the register write,
// and — when the op runs secure under dual-rail precharging — the constant
// full-swing cost of every precharged rail it drives. scale is the target's
// ALUOpScale coefficient for the op's class.
func StaticUOpPJ(u *isa.UOp, cfg *Config, scale float64) float64 {
	p := &cfg.Params
	pj := p.IFetchArrayPJ + p.DecodePJ + float64(u.NSrc)*p.RegReadPJ
	if u.Dest != isa.Zero {
		pj += p.RegWritePJ
	}
	if u.Load || u.Store {
		pj += p.MemArrayPJ
	}

	if u.Secure && cfg.DualRailPrecharge {
		// Every rail the op drives runs precharged at constant activity:
		// operand buses and ID/EX latches, result bus and EX/MEM latch, the
		// MEM/WB latch, and for memory ops the address and data buses.
		pj += 2*railFullSwingPJ(p.OpBusLinePJ) + 2*railFullSwingPJ(p.LatchBitPJ)
		pj += railFullSwingPJ(p.ResultBusLinePJ) + railFullSwingPJ(p.LatchBitPJ)
		pj += railFullSwingPJ(p.LatchBitPJ)
		if u.Load || u.Store {
			pj += railFullSwingPJ(p.MemAddrLinePJ) + railFullSwingPJ(p.MemDataLinePJ)
		}
		if u.XorUnit {
			pj += p.XorUnitPJ
		} else {
			pj += 2*p.AluOpPJ*scale + 96*p.ALUTogglePJ
		}
		return pj
	}

	// Insecure (or the no-precharge ablation): only the ALU base cost is
	// data-independent, mirrored onto the complementary rails when they are
	// active (secure op, or the clock-gating ablation). The XOR unit's
	// normal-mode cost is purely transition-driven.
	if !u.XorUnit {
		base := p.AluOpPJ * scale
		if u.Secure || !cfg.ClockGating {
			base *= 2
		}
		pj += base
	}
	return pj
}

// StaticSquashIssuePJ returns the static energy of the ID-stage occupant
// squashed by a taken control transfer: it was fetched (array cost) and
// issued (decode, register reads) before the redirect, but never reached EX.
func StaticSquashIssuePJ(u *isa.UOp, cfg *Config) float64 {
	p := &cfg.Params
	return p.IFetchArrayPJ + p.DecodePJ + float64(u.NSrc)*p.RegReadPJ
}

// StaticSquashFetchPJ returns the static energy of the IF-stage occupant
// squashed by a taken control transfer: fetched in the redirect cycle, never
// issued.
func StaticSquashFetchPJ(cfg *Config) float64 { return cfg.Params.IFetchArrayPJ }
