package energy

import (
	"math/rand"
	"testing"
)

// vecCycle is one randomly generated cycle of gang activity: shared control
// (which stages fire, the secure bits, ALU route/scale, fetched word, number
// of read ports, whether WB writes a register) plus per-lane data values.
type vecCycle struct {
	ev       LaneEvents // control flags + EXScale; data fields unused here
	regWrite bool
	issue    bool
	nSrc     int
	fetch    bool
	word     uint32
	data     []LaneEvents // per-lane data values (control fields copied from ev)
}

func randCycles(rng *rand.Rand, width, n int) []vecCycle {
	cycles := make([]vecCycle, n)
	for i := range cycles {
		c := &cycles[i]
		c.ev = LaneEvents{
			WB:        rng.Intn(2) == 0,
			WBSecure:  rng.Intn(3) == 0,
			Mem:       rng.Intn(3) == 0,
			MemSecure: rng.Intn(3) == 0,
			EX:        rng.Intn(4) != 0,
			EXSecure:  rng.Intn(3) == 0,
			EXXor:     rng.Intn(4) == 0,
			EXScale:   []float64{1, 1, 0.85, 1.25}[rng.Intn(4)],
		}
		c.regWrite = c.ev.WB && rng.Intn(4) != 0
		c.issue = rng.Intn(3) != 0
		c.nSrc = rng.Intn(3)
		c.fetch = rng.Intn(3) != 0
		c.word = rng.Uint32()
		c.data = make([]LaneEvents, width)
		for l := range c.data {
			d := c.ev
			d.WBVal = rng.Uint32()
			d.MemAddr = rng.Uint32()
			d.MemData = rng.Uint32()
			d.A, d.B, d.R = rng.Uint32(), rng.Uint32(), rng.Uint32()
			c.data[l] = d
		}
	}
	return cycles
}

// driveScalar plays one lane's view of a cycle into a scalar Model in the
// pipeline's stage order (WB, MEM, EX, ID, IF) and returns the cycle energy.
func driveScalar(m *Model, c *vecCycle, lane int) CycleEnergy {
	d := &c.data[lane]
	m.BeginCycle()
	if c.ev.WB {
		m.Writeback(d.WBVal, c.ev.WBSecure)
		if c.regWrite {
			m.RegWrite()
		}
	}
	if c.ev.Mem {
		m.MemAccess(d.MemAddr, d.MemData, c.ev.MemSecure)
	}
	if c.ev.EX {
		m.OperandLatch(d.A, d.B, c.ev.EXSecure)
		m.ALUOpScaled(c.ev.EXScale, d.A, d.B, d.R, c.ev.EXXor, c.ev.EXSecure)
		m.Result(d.R, c.ev.EXSecure)
	}
	if c.issue {
		m.Decode()
		m.RegRead(c.nSrc)
	}
	if c.fetch {
		m.Fetch(c.word)
	}
	return m.EndCycle()
}

// driveVecShared plays a cycle's shared control into the VecMeter, leaving it
// ready for LaneCycle calls.
func driveVecShared(v *VecMeter, c *vecCycle) {
	v.BeginCycle()
	if c.ev.WB && c.regWrite {
		v.RegWrite()
	}
	if c.ev.Mem {
		v.MemArray()
	}
	if c.issue {
		v.Decode()
		v.RegRead(c.nSrc)
	}
	if c.fetch {
		v.Fetch(c.word)
	}
	v.EndShared()
}

func allConfigs() []Config {
	var cfgs []Config
	for _, pre := range []bool{true, false} {
		for _, gate := range []bool{true, false} {
			for _, coup := range []bool{true, false} {
				cfg := DefaultConfig()
				cfg.DualRailPrecharge = pre
				cfg.ClockGating = gate
				cfg.InterWireCoupling = coup
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// TestVecMeterMatchesScalarModel drives N scalar Models (one per lane) and
// one VecMeter through identical random event streams and requires the
// per-cycle totals and every per-component value to be bit-identical, for
// every Config ablation.
func TestVecMeterMatchesScalarModel(t *testing.T) {
	const width, nCycles = 5, 400
	for ci, cfg := range allConfigs() {
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		cycles := randCycles(rng, width, nCycles)

		scalars := make([]*Model, width)
		for l := range scalars {
			scalars[l] = NewModel(cfg)
		}
		vec := NewVecMeter(cfg, width)
		vec.Reset(width)

		for i := range cycles {
			c := &cycles[i]
			driveVecShared(vec, c)
			for l := 0; l < width; l++ {
				want := driveScalar(scalars[l], c, l)
				got := vec.LaneCycle(l, &c.data[l])
				if got != want.Total {
					t.Fatalf("cfg %d cycle %d lane %d: total %v != scalar %v", ci, i, l, got, want.Total)
				}
				if vec.LastPJ(l) != want.Total {
					t.Fatalf("cfg %d cycle %d lane %d: LastPJ %v != %v", ci, i, l, vec.LastPJ(l), want.Total)
				}
				var by CycleEnergy
				vec.EndCycleInto(l, &by)
				if by != want {
					t.Fatalf("cfg %d cycle %d lane %d: breakdown %+v != scalar %+v", ci, i, l, by, want)
				}
			}
		}
	}
}

// TestVecMeterQuietExact checks that quiet (unmetered) cycles advance rail
// history exactly: two meters play the same stream, one metering everything
// and one quieting a prefix, and every metered cycle after the prefix must be
// bit-identical between them.
func TestVecMeterQuietExact(t *testing.T) {
	const width, nCycles, quiet = 3, 300, 120
	for ci, cfg := range allConfigs() {
		rng := rand.New(rand.NewSource(int64(2000 + ci)))
		cycles := randCycles(rng, width, nCycles)

		loud := NewVecMeter(cfg, width)
		loud.Reset(width)
		mixed := NewVecMeter(cfg, width)
		mixed.Reset(width)

		for i := range cycles {
			c := &cycles[i]
			driveVecShared(loud, c)
			if i < quiet {
				if c.fetch {
					mixed.FetchQuiet(c.word)
				}
				for l := 0; l < width; l++ {
					loud.LaneCycle(l, &c.data[l])
					mixed.LaneCycleQuiet(l, &c.data[l])
				}
				continue
			}
			driveVecShared(mixed, c)
			for l := 0; l < width; l++ {
				want := loud.LaneCycle(l, &c.data[l])
				got := mixed.LaneCycle(l, &c.data[l])
				if got != want {
					t.Fatalf("cfg %d cycle %d lane %d: quiet-warmed %v != loud %v", ci, i, l, got, want)
				}
			}
		}
	}
}

// TestVecMeterResetFresh checks a Reset meter meters bit-identically to a new
// one after a run has polluted every rail.
func TestVecMeterResetFresh(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(7))
	const width = 4
	cycles := randCycles(rng, width, 50)

	run := func(v *VecMeter) []float64 {
		v.Reset(width)
		var out []float64
		for i := range cycles {
			c := &cycles[i]
			driveVecShared(v, c)
			for l := 0; l < width; l++ {
				out = append(out, v.LaneCycle(l, &c.data[l]))
			}
		}
		return out
	}

	used := NewVecMeter(cfg, width)
	first := run(used)
	second := run(used) // after Reset inside run
	fresh := run(NewVecMeter(cfg, width))
	for i := range first {
		if first[i] != second[i] || first[i] != fresh[i] {
			t.Fatalf("sample %d: first %v second %v fresh %v", i, first[i], second[i], fresh[i])
		}
	}
}
