// Package energy implements the transition-sensitive energy model of the
// simulated processor — the role SimplePower [16] plays in the paper. Energy
// is accounted per cycle, in picojoules, broken down by component. Datapath
// buses, pipeline latches and functional units consume energy proportional to
// their bit-level switching activity (Hamming distance between consecutive
// values); memory arrays and the register file are data-independent, matching
// the paper's observations. Instructions carrying the secure bit execute on a
// precharged dual-rail datapath whose per-cycle energy is constant and
// therefore independent of operand values.
package energy

// Params holds the technology calibration constants, all in picojoules.
//
// The headline constants come straight from the paper (0.25 µm, 2.5 V):
// a 1 pF wire at 2.5 V costs CV² = 6.25 pJ per full swing (the paper's
// example of the worst-case per-bit difference on a heavily loaded line),
// and the 32-bit XOR unit costs 0.6 pJ in secure mode versus a 0.3 pJ
// average in normal mode. Internal datapath lines are far lighter than the
// 1 pF example wire; the remaining constants are calibrated so that an
// unmasked DES encryption averages ≈165 pJ/cycle and selective masking adds
// ≈45 pJ/cycle during the first key permutation, the two operating points
// the paper reports.
type Params struct {
	// ClockPJ is the per-cycle clock tree + control overhead.
	ClockPJ float64
	// IFetchArrayPJ is the constant instruction-store read cost.
	IFetchArrayPJ float64
	// FetchLinePJ is the per-line toggle cost of the instruction bus.
	FetchLinePJ float64
	// DecodePJ is the per-instruction decode cost.
	DecodePJ float64
	// RegReadPJ / RegWritePJ are per-port register file access costs
	// (data-independent; the register file is a memory array).
	RegReadPJ  float64
	RegWritePJ float64
	// AluOpPJ is the base cost of an ALU operation; ALUTogglePJ is added per
	// toggled input/output bit.
	AluOpPJ     float64
	ALUTogglePJ float64
	// XorUnitPJ is the full-activity cost of the dedicated 32-bit XOR unit:
	// 0.6 pJ secure-mode constant, toggles/32 × 0.6 pJ in normal mode
	// (averaging 0.3 pJ), per the paper §4.2.
	XorUnitPJ float64
	// OpBusLinePJ / ResultBusLinePJ are per-line toggle costs of the operand
	// and result buses.
	OpBusLinePJ     float64
	ResultBusLinePJ float64
	// LatchBitPJ is the per-bit toggle cost of a pipeline register.
	LatchBitPJ float64
	// MemAddrLinePJ / MemDataLinePJ are per-line toggle costs of the memory
	// address and data buses.
	MemAddrLinePJ float64
	MemDataLinePJ float64
	// MemArrayPJ is the constant memory array access cost.
	MemArrayPJ float64
	// CouplingPJ is the per-adjacent-pair cost of inter-wire coupling, used
	// only by the InterWireCoupling ablation (paper §5 limitation, ref [8]).
	CouplingPJ float64
}

// DefaultParams returns the calibrated 0.25 µm / 2.5 V parameter set.
func DefaultParams() Params {
	return Params{
		ClockPJ:         98,
		IFetchArrayPJ:   15,
		FetchLinePJ:     1.0,
		DecodePJ:        8,
		RegReadPJ:       7,
		RegWritePJ:      10,
		AluOpPJ:         5.8,
		ALUTogglePJ:     0.175,
		XorUnitPJ:       0.6,
		OpBusLinePJ:     0.66,
		ResultBusLinePJ: 0.66,
		LatchBitPJ:      0.51,
		MemAddrLinePJ:   0.73,
		MemDataLinePJ:   1.31,
		MemArrayPJ:      23,
		CouplingPJ:      0.12,
	}
}

// Config selects architectural variants. The zero value is NOT the paper's
// configuration; use DefaultConfig.
type Config struct {
	Params Params
	// DualRailPrecharge enables the precharged dual-rail datapath for secure
	// instructions (the paper's design). When false — an ablation — secure
	// instructions still drive complementary rails but without precharging,
	// which balances the static count of ones yet leaves energy dependent on
	// transition counts ("this is not sufficient", §4.2).
	DualRailPrecharge bool
	// ClockGating gates the complementary datapath off during normal-mode
	// instructions (the paper's design). When false — an ablation — every
	// instruction pays the complementary-rail cost, approaching the naive
	// full dual-rail design point.
	ClockGating bool
	// InterWireCoupling adds an adjacent-line coupling term that the
	// dual-rail scheme does not mask — the paper's stated limitation (§5).
	InterWireCoupling bool
}

// DefaultConfig returns the paper's architecture: precharged dual rail with
// clock gating, no coupling modeling.
func DefaultConfig() Config {
	return Config{Params: DefaultParams(), DualRailPrecharge: true, ClockGating: true}
}
