package energy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// runCycle runs one full set of datapath events and returns the cycle energy.
func runCycle(m *Model, a, b, r, addr, data uint32, secure bool) CycleEnergy {
	m.BeginCycle()
	m.Fetch(0x12345678)
	m.Decode()
	m.RegRead(2)
	m.OperandLatch(a, b, secure)
	m.ALUOp(a, b, r, false, secure)
	m.Result(r, secure)
	m.MemAccess(addr, data, secure)
	m.Writeback(data, secure)
	m.RegWrite()
	return m.EndCycle()
}

func TestSecureCycleEnergyIsDataIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Pollute the rails with random insecure history, then measure a secure
	// cycle; its cost must be one constant regardless of both the history
	// and the secure operands.
	measure := func(a, b, r, addr, data uint32) float64 {
		m := NewModel(DefaultConfig())
		runCycle(m, rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32(), false)
		return runCycle(m, a, b, r, addr, data, true).Total
	}
	ref := measure(1, 2, 3, 4, 5)
	f := func(a, b, r, addr, data uint32) bool {
		return math.Abs(measure(a, b, r, addr, data)-ref) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInsecureCycleEnergyIsDataDependent(t *testing.T) {
	m1 := NewModel(DefaultConfig())
	m2 := NewModel(DefaultConfig())
	e1 := runCycle(m1, 0, 0, 0, 0, 0, false)
	e2 := runCycle(m2, 0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff, false)
	if math.Abs(e1.Total-e2.Total) < 1e-9 {
		t.Errorf("insecure cycles with different data consume identical energy (%.3f pJ)", e1.Total)
	}
	if e2.Total <= e1.Total {
		t.Errorf("all-ones-from-zero cycle (%.3f) should exceed all-zeros cycle (%.3f)", e2.Total, e1.Total)
	}
}

func TestPrechargeIsolatesSubsequentCycles(t *testing.T) {
	// An insecure transfer after a secure one must not depend on the secure
	// value — the bus was left precharged.
	mk := func(secret uint32) float64 {
		m := NewModel(DefaultConfig())
		runCycle(m, secret, secret, secret, secret, secret, true)
		return runCycle(m, 0xa5a5a5a5, 0x5a5a5a5a, 3, 0x40, 9, false).Total
	}
	if a, b := mk(0), mk(0xffffffff); math.Abs(a-b) > 1e-9 {
		t.Errorf("secure value leaked into following insecure cycle: %.3f vs %.3f", a, b)
	}
}

func TestSecureCostsMoreThanAverageInsecure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewModel(DefaultConfig())
	var insecure float64
	const n = 2000
	for i := 0; i < n; i++ {
		insecure += runCycle(m, rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32(), false).Total
	}
	insecure /= n
	secure := runCycle(NewModel(DefaultConfig()), 1, 2, 3, 4, 5, true).Total
	if secure <= insecure {
		t.Errorf("secure cycle (%.1f pJ) should exceed average insecure cycle (%.1f pJ)", secure, insecure)
	}
	if secure > 2.5*insecure {
		t.Errorf("secure cycle (%.1f pJ) implausibly above 2.5x insecure average (%.1f pJ)", secure, insecure)
	}
}

func TestAblationNoPrechargeLeaks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DualRailPrecharge = false
	mk := func(v uint32) float64 {
		m := NewModel(cfg)
		runCycle(m, 0, 0, 0, 0, 0, false) // fixed history
		return runCycle(m, v, v, v, v, v, true).Total
	}
	if a, b := mk(0), mk(0xffffffff); math.Abs(a-b) < 1e-9 {
		t.Error("dual rail without precharge should still leak transition counts")
	}
}

func TestAblationNoGatingDoublesInsecure(t *testing.T) {
	gated := DefaultConfig()
	ungated := DefaultConfig()
	ungated.ClockGating = false
	eg := runCycle(NewModel(gated), 0xffff0000, 0x00ffff00, 0xf0f0f0f0, 0x44, 0x99, false)
	eu := runCycle(NewModel(ungated), 0xffff0000, 0x00ffff00, 0xf0f0f0f0, 0x44, 0x99, false)
	if eg.By[CompComplementary] != 0 {
		t.Errorf("gated insecure cycle charged complementary rail: %.3f pJ", eg.By[CompComplementary])
	}
	if eu.By[CompComplementary] <= 0 {
		t.Error("ungated insecure cycle must charge the complementary rail")
	}
	if eu.Total <= eg.Total {
		t.Errorf("ungated (%.1f) must exceed gated (%.1f)", eu.Total, eg.Total)
	}
}

func TestCouplingLeaksThroughDualRail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterWireCoupling = true
	mk := func(v uint32) float64 {
		m := NewModel(cfg)
		return runCycle(m, v, v, v, v, v, true).Total
	}
	// 0x55555555 maximises adjacent-bit differences; 0 minimises them.
	if a, b := mk(0), mk(0x55555555); math.Abs(a-b) < 1e-9 {
		t.Error("inter-wire coupling should leak even under dual-rail masking")
	}
	// Without the ablation flag, the same pair is indistinguishable.
	mk2 := func(v uint32) float64 {
		m := NewModel(DefaultConfig())
		return runCycle(m, v, v, v, v, v, true).Total
	}
	if a, b := mk2(0), mk2(0x55555555); math.Abs(a-b) > 1e-9 {
		t.Error("default config must fully mask secure cycles")
	}
}

func TestXorUnitPaperConstants(t *testing.T) {
	p := DefaultParams()
	// Secure XOR: 0.6 pJ constant.
	m := NewModel(DefaultConfig())
	m.BeginCycle()
	m.ALUOp(0x1234, 0x5678, 0x1234^0x5678, true, true)
	e := m.EndCycle()
	if got := e.By[CompALU] + e.By[CompComplementary]; math.Abs(got-p.XorUnitPJ) > 1e-9 {
		t.Errorf("secure XOR = %.3f pJ, want %.3f", got, p.XorUnitPJ)
	}
	// Normal XOR averages ~0.3 pJ over random data.
	m = NewModel(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		m.BeginCycle()
		m.ALUOp(a, b, a^b, true, false)
		sum += m.EndCycle().Total - DefaultParams().ClockPJ
	}
	avg := sum / n
	if avg < 0.25 || avg > 0.35 {
		t.Errorf("normal XOR average = %.3f pJ, want ~0.3", avg)
	}
}

func TestBubbleCycleOnlyClock(t *testing.T) {
	m := NewModel(DefaultConfig())
	m.BeginCycle()
	e := m.EndCycle()
	if math.Abs(e.Total-DefaultParams().ClockPJ) > 1e-9 {
		t.Errorf("empty cycle = %.3f pJ, want clock-only %.3f", e.Total, DefaultParams().ClockPJ)
	}
}

func TestCycleEnergyAddAndString(t *testing.T) {
	var a CycleEnergy
	b := CycleEnergy{Total: 2}
	b.By[CompALU] = 1.5
	b.By[CompClock] = 0.5
	a.Add(b)
	a.Add(b)
	if a.Total != 4 || a.By[CompALU] != 3 {
		t.Errorf("Add: %+v", a)
	}
	s := b.String()
	for _, want := range []string{"2.00pJ", "alu=1.50", "clock=0.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestComponentNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Component(0); c < NumComponents; c++ {
		n := c.String()
		if n == "" || strings.Contains(n, "?") {
			t.Errorf("component %d has bad name %q", c, n)
		}
		if seen[n] {
			t.Errorf("duplicate component name %q", n)
		}
		seen[n] = true
	}
	if Component(99).String() == "" {
		t.Error("out-of-range component must still render")
	}
}

func TestTotalsEqualComponentSums(t *testing.T) {
	f := func(a, b, r, addr, data uint32, secure bool) bool {
		m := NewModel(DefaultConfig())
		e := runCycle(m, a, b, r, addr, data, secure)
		var sum float64
		for _, v := range e.By {
			sum += v
		}
		return math.Abs(sum-e.Total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestConfigMatrix checks the masking invariant across every architectural
// configuration: with precharge on, secure cycles are data-independent no
// matter the gating/coupling settings — except that coupling deliberately
// re-introduces a (pattern-shaped) dependence.
func TestConfigMatrix(t *testing.T) {
	for _, precharge := range []bool{false, true} {
		for _, gating := range []bool{false, true} {
			for _, coupling := range []bool{false, true} {
				cfg := Config{Params: DefaultParams(),
					DualRailPrecharge: precharge, ClockGating: gating, InterWireCoupling: coupling}
				mk := func(v uint32) float64 {
					m := NewModel(cfg)
					runCycle(m, 0, 0, 0, 0, 0, false)
					return runCycle(m, v, v, v, v, v, true).Total
				}
				same := math.Abs(mk(0x00000000)-mk(0xffffffff)) < 1e-9
				wantSame := precharge && !coupling
				if same != wantSame {
					t.Errorf("precharge=%v gating=%v coupling=%v: data-independent=%v, want %v",
						precharge, gating, coupling, same, wantSame)
				}
			}
		}
	}
}

// TestDefaultParamsSanity pins the paper-quoted constants and basic
// positivity.
func TestDefaultParamsSanity(t *testing.T) {
	p := DefaultParams()
	if p.XorUnitPJ != 0.6 {
		t.Errorf("XOR unit = %.2f pJ, paper says 0.6", p.XorUnitPJ)
	}
	vals := map[string]float64{
		"ClockPJ": p.ClockPJ, "IFetchArrayPJ": p.IFetchArrayPJ, "FetchLinePJ": p.FetchLinePJ,
		"DecodePJ": p.DecodePJ, "RegReadPJ": p.RegReadPJ, "RegWritePJ": p.RegWritePJ,
		"AluOpPJ": p.AluOpPJ, "ALUTogglePJ": p.ALUTogglePJ, "OpBusLinePJ": p.OpBusLinePJ,
		"ResultBusLinePJ": p.ResultBusLinePJ, "LatchBitPJ": p.LatchBitPJ,
		"MemAddrLinePJ": p.MemAddrLinePJ, "MemDataLinePJ": p.MemDataLinePJ,
		"MemArrayPJ": p.MemArrayPJ, "CouplingPJ": p.CouplingPJ,
	}
	for name, v := range vals {
		if v <= 0 {
			t.Errorf("%s = %g, must be positive", name, v)
		}
	}
	cfg := DefaultConfig()
	if !cfg.DualRailPrecharge || !cfg.ClockGating || cfg.InterWireCoupling {
		t.Error("DefaultConfig must be the paper's architecture")
	}
}
