package energy

import (
	"fmt"
	"math/bits"
	"strings"
)

// Component identifies one energy sink of the processor.
type Component int

// Components of the modeled processor.
const (
	CompClock         Component = iota // clock tree + control
	CompFetch                          // instruction store + instruction bus
	CompDecode                         // decode logic
	CompRegFile                        // register file ports
	CompALU                            // ALU + dedicated XOR unit
	CompOpBus                          // operand buses (regfile -> EX)
	CompResultBus                      // result bus (EX -> MEM/WB)
	CompPipeReg                        // pipeline registers
	CompMemBus                         // memory address + data buses
	CompMemArray                       // data memory array
	CompComplementary                  // complementary rails + dummy loads (secure mode)
	NumComponents
)

var componentNames = [NumComponents]string{
	"clock", "fetch", "decode", "regfile", "alu",
	"opbus", "resultbus", "pipereg", "membus", "memarray", "complementary",
}

// String returns the short component name.
func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component?%d", int(c))
}

// CycleEnergy is the energy consumed during one clock cycle, in picojoules.
type CycleEnergy struct {
	Total float64
	By    [NumComponents]float64
}

// Add accumulates o into e.
func (e *CycleEnergy) Add(o CycleEnergy) {
	e.AddFrom(&o)
}

// AddFrom accumulates *o into e without copying the component array.
func (e *CycleEnergy) AddFrom(o *CycleEnergy) {
	e.Total += o.Total
	for i := range e.By {
		e.By[i] += o.By[i]
	}
}

// String renders the non-zero components.
func (e CycleEnergy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.2fpJ", e.Total)
	sep := " ("
	for c := Component(0); c < NumComponents; c++ {
		if e.By[c] != 0 {
			fmt.Fprintf(&b, "%s%s=%.2f", sep, c, e.By[c])
			sep = " "
		}
	}
	if sep != " (" {
		b.WriteString(")")
	}
	return b.String()
}

// prechargeValue is the bus state after a precharged (secure) transfer: all
// lines charged high. Subsequent insecure transfers therefore depend only on
// their own value, never on the secure data that preceded them.
const prechargeValue uint32 = 0xffffffff

// rail models one 32-line bus or 32-bit latch with transition-sensitive
// energy and an optional dual-rail secure mode.
type rail struct {
	prev   uint32
	linePJ float64
}

// transfer drives value v on the rail and returns (normal, complementary)
// energy in pJ. In secure mode with precharging, exactly half of the 64
// normal+complementary lines discharge each evaluate phase, so the energy is
// the constant 32·linePJ regardless of v (half attributed to the normal rail,
// half to the complementary rail). Without precharging (ablation), the
// complementary rail mirrors the normal rail's transitions, doubling — not
// hiding — the data dependence.
func (r *rail) transfer(v uint32, secure bool, cfg *Config) (normal, comp float64) {
	if secure {
		if cfg.DualRailPrecharge {
			r.prev = prechargeValue
			half := 16 * r.linePJ
			return half, half
		}
		h := float64(bits.OnesCount32(r.prev ^ v))
		r.prev = v
		e := h * r.linePJ
		return e, e
	}
	h := float64(bits.OnesCount32(r.prev ^ v))
	r.prev = v
	normal = h * r.linePJ
	if !cfg.ClockGating {
		// Ungated complementary rail mirrors every transition.
		comp = normal
	}
	return normal, comp
}

// coupling returns the inter-wire coupling energy of driving v, which depends
// on the pattern of adjacent differing bits and is NOT masked by dual-rail
// operation (paper §5).
func coupling(v uint32, linePJ float64) float64 {
	return float64(bits.OnesCount32(v^(v<<1))) * linePJ
}

// Model is the per-cycle energy accountant. Create one per simulated core
// with NewModel; the CPU reports datapath events between BeginCycle and
// EndCycle.
type Model struct {
	cfg Config

	acc CycleEnergy

	fetchBus  rail
	opBusA    rail
	opBusB    rail
	resultBus rail
	memAddr   rail
	memData   rail

	latchA rail // ID/EX operand A
	latchB rail // ID/EX operand B
	latchR rail // EX/MEM result
	latchW rail // MEM/WB writeback value

	aluPrevA, aluPrevB, aluPrevR uint32
	xorPrevR                     uint32
}

// NewModel returns a Model with the given configuration.
func NewModel(cfg Config) *Model {
	m := &Model{cfg: cfg}
	p := cfg.Params
	m.fetchBus.linePJ = p.FetchLinePJ
	m.opBusA.linePJ = p.OpBusLinePJ
	m.opBusB.linePJ = p.OpBusLinePJ
	m.resultBus.linePJ = p.ResultBusLinePJ
	m.memAddr.linePJ = p.MemAddrLinePJ
	m.memData.linePJ = p.MemDataLinePJ
	m.latchA.linePJ = p.LatchBitPJ
	m.latchB.linePJ = p.LatchBitPJ
	m.latchR.linePJ = p.LatchBitPJ
	m.latchW.linePJ = p.LatchBitPJ
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Reset returns every rail, latch and history register to its power-on
// state so the model can account a fresh run. A reset model produces
// bit-identical energy series to a newly constructed one, which is what lets
// pooled simulation workers reuse models across batch jobs.
func (m *Model) Reset() {
	m.acc = CycleEnergy{}
	for _, r := range []*rail{
		&m.fetchBus, &m.opBusA, &m.opBusB, &m.resultBus,
		&m.memAddr, &m.memData,
		&m.latchA, &m.latchB, &m.latchR, &m.latchW,
	} {
		r.prev = 0
	}
	m.aluPrevA, m.aluPrevB, m.aluPrevR = 0, 0, 0
	m.xorPrevR = 0
}

// BeginCycle opens a new accounting period and charges the constant clock
// energy.
func (m *Model) BeginCycle() {
	m.acc = CycleEnergy{}
	m.charge(CompClock, m.cfg.Params.ClockPJ)
}

// EndCycle closes the period and returns its energy.
func (m *Model) EndCycle() CycleEnergy {
	var e CycleEnergy
	m.EndCycleInto(&e)
	return e
}

// EndCycleInto closes the period and writes its energy into dst, avoiding the
// 96-byte return copy on the per-cycle hot path. The total is summed over the
// components in index order, exactly as EndCycle always has, so per-cycle
// energy values are bit-identical regardless of which variant the caller uses.
func (m *Model) EndCycleInto(dst *CycleEnergy) {
	dst.By = m.acc.By
	total := 0.0
	for _, v := range dst.By {
		total += v
	}
	dst.Total = total
}

func (m *Model) charge(c Component, pj float64) { m.acc.By[c] += pj }

// chargeRail books a rail transfer against component c.
func (m *Model) chargeRail(r *rail, v uint32, secure bool, c Component) {
	n, comp := r.transfer(v, secure, &m.cfg)
	m.charge(c, n)
	m.charge(CompComplementary, comp)
	if m.cfg.InterWireCoupling {
		m.charge(c, coupling(v, m.cfg.Params.CouplingPJ))
	}
}

// Fetch reports an instruction fetch of the encoded word.
func (m *Model) Fetch(word uint32) {
	m.charge(CompFetch, m.cfg.Params.IFetchArrayPJ)
	m.chargeRail(&m.fetchBus, word, false, CompFetch)
}

// Decode reports instruction decode work.
func (m *Model) Decode() {
	m.charge(CompDecode, m.cfg.Params.DecodePJ)
}

// RegRead reports n register file read ports firing.
func (m *Model) RegRead(n int) {
	m.charge(CompRegFile, float64(n)*m.cfg.Params.RegReadPJ)
}

// RegWrite reports one register file write.
func (m *Model) RegWrite() {
	m.charge(CompRegFile, m.cfg.Params.RegWritePJ)
}

// OperandLatch reports the ID/EX operands being latched and driven on the
// operand buses.
func (m *Model) OperandLatch(a, b uint32, secure bool) {
	m.chargeRail(&m.opBusA, a, secure, CompOpBus)
	m.chargeRail(&m.opBusB, b, secure, CompOpBus)
	m.chargeRail(&m.latchA, a, secure, CompPipeReg)
	m.chargeRail(&m.latchB, b, secure, CompPipeReg)
}

// aluSecureConstPJ is the constant energy of a secure (dual-rail) ALU
// operation: both rails at full activity.
func (m *Model) aluSecureConstPJ() float64 {
	p := m.cfg.Params
	return 2*p.AluOpPJ + 96*p.ALUTogglePJ
}

// ALUOp reports an ALU operation with input operands a, b and result r.
// isXor selects the dedicated XOR unit with the paper's 0.3/0.6 pJ behaviour.
func (m *Model) ALUOp(a, b, r uint32, isXor, secure bool) {
	m.ALUOpScaled(1, a, b, r, isXor, secure)
}

// ALUOpScaled is ALUOp with the target's per-op coefficient applied to the
// data-independent base energy (Params.AluOpPJ). Operand-dependent toggle
// energy and the XOR unit are never scaled, so a backend's coefficient
// table shifts means without creating or hiding operand leakage. A scale of
// 1 is exact: ALUOpScaled(1, ...) charges bit-identically to the historical
// ALUOp path.
func (m *Model) ALUOpScaled(scale float64, a, b, r uint32, isXor, secure bool) {
	p := m.cfg.Params
	switch {
	case isXor && secure && m.cfg.DualRailPrecharge:
		m.charge(CompALU, p.XorUnitPJ/2)
		m.charge(CompComplementary, p.XorUnitPJ/2)
		m.xorPrevR = prechargeValue
	case isXor:
		t := float64(bits.OnesCount32(m.xorPrevR ^ r))
		m.xorPrevR = r
		e := t / 32 * p.XorUnitPJ
		m.charge(CompALU, e)
		if secure || !m.cfg.ClockGating {
			m.charge(CompComplementary, e)
		}
	case secure && m.cfg.DualRailPrecharge:
		c := 2*p.AluOpPJ*scale + 96*p.ALUTogglePJ
		m.charge(CompALU, c/2)
		m.charge(CompComplementary, c/2)
		m.aluPrevA, m.aluPrevB, m.aluPrevR = prechargeValue, prechargeValue, prechargeValue
	default:
		t := bits.OnesCount32(m.aluPrevA^a) + bits.OnesCount32(m.aluPrevB^b) + bits.OnesCount32(m.aluPrevR^r)
		m.aluPrevA, m.aluPrevB, m.aluPrevR = a, b, r
		e := p.AluOpPJ*scale + float64(t)*p.ALUTogglePJ
		m.charge(CompALU, e)
		if secure || !m.cfg.ClockGating {
			m.charge(CompComplementary, e)
		}
	}
}

// Result reports the EX-stage result being driven on the result bus and
// latched into EX/MEM.
func (m *Model) Result(r uint32, secure bool) {
	m.chargeRail(&m.resultBus, r, secure, CompResultBus)
	m.chargeRail(&m.latchR, r, secure, CompPipeReg)
}

// MemAccess reports a data memory access: address and data bus transfers
// plus the (data-independent) array access. For secure loads and stores both
// buses run dual-rail — the paper's secure indexing propagates the inverted
// index so the address path is masked too.
func (m *Model) MemAccess(addr, data uint32, secure bool) {
	m.chargeRail(&m.memAddr, addr, secure, CompMemBus)
	m.chargeRail(&m.memData, data, secure, CompMemBus)
	m.charge(CompMemArray, m.cfg.Params.MemArrayPJ)
}

// Writeback reports the MEM/WB latch capturing the value headed to the
// register file.
func (m *Model) Writeback(v uint32, secure bool) {
	m.chargeRail(&m.latchW, v, secure, CompPipeReg)
}
