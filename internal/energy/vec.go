package energy

import "math/bits"

// LaneEvents describes the data-dependent datapath events of one pipeline
// cycle for the lanes of a gang. The control flags (which stages are active,
// the secure bits, the ALU route and scale) are identical across lockstepped
// lanes and are filled once per cycle by the gang engine; the data fields
// (operand, result, address and writeback values) are rewritten per lane
// before each VecMeter.LaneCycle call.
type LaneEvents struct {
	// WB: the MEM/WB latch captures the writeback value.
	WB       bool
	WBSecure bool
	WBVal    uint32
	// MEM: a load or store drives the memory address and data buses.
	Mem       bool
	MemSecure bool
	MemAddr   uint32
	MemData   uint32
	// EX: operand latch + ALU (or the XOR unit) + result drive.
	EX       bool
	EXSecure bool
	EXXor    bool
	EXScale  float64
	A, B, R  uint32
}

// laneRails is one lane's private transition state: the previous values of
// every data-dependent rail, latch and functional-unit input. It mirrors the
// per-lane half of Model; the instruction-fetch bus is shared (the fetched
// word is control, identical across lanes) and lives on the VecMeter.
type laneRails struct {
	opA, opB, res  uint32 // operand and result buses
	mA, mD         uint32 // memory address and data buses
	lA, lB, lR, lW uint32 // pipeline latches
	aluA, aluB     uint32 // ALU input history
	aluR, xorR     uint32 // ALU / XOR-unit output history

	// Last cycle's per-component partials, kept for EndCycleInto. The By
	// indices they map to: alu -> CompALU, opbus -> CompOpBus, resbus ->
	// CompResultBus, pipereg -> CompPipeReg, membus -> CompMemBus, comp ->
	// CompComplementary.
	alu, opbus, resbus, pipereg, membus, comp float64
	last                                      float64
}

// VecMeter meters N lockstepped lanes with the scalar meter's numerics: for
// every lane, each committed cycle's total and per-component energy are
// bit-identical to what an energy.Probe attached to a scalar core running
// that lane's data would report, as long as the gang engine reports the same
// events in the same stage order (WB, MEM, EX, ID, IF — the order cpu.Step
// fires probes).
//
// The work is split the same way the core is: charges determined purely by
// control (clock, fetch, decode, register file ports, memory array) are
// accumulated once per cycle via the shared methods, and EndShared folds
// them into the component-index-order prefix sum the scalar EndCycleInto
// computes; LaneCycle then adds only the data-dependent components (ALU,
// operand/result buses, pipeline latches, memory buses, complementary rails)
// per lane. Skipping a zero charge is exact — every accumulator is
// non-negative, and x + 0.0 == x for non-negative x — which is also why
// clock-gated complementary no-ops cost nothing here.
//
// LaneCycleQuiet advances rail history without any floating-point work, for
// cycles whose energy no consumer observes; the next metered cycle is still
// exact because transition energy depends only on the previous rail values.
type VecMeter struct {
	cfg   Config
	width int
	n     int
	lanes []laneRails

	// Shared instruction-fetch bus history (the fetched word is control).
	fetchPrev uint32

	// Shared per-cycle component partials and their index-order prefix.
	shClock, shFetch, shDecode, shRegfile, shMemarray float64
	// shCompFetch is the ungated complementary mirror of the fetch rail; it
	// is charged after every per-lane complementary charge (IF is the last
	// stage the scalar core processes), so LaneCycle adds it last.
	shCompFetch float64
	prefix      float64

	cycles uint64
}

// NewVecMeter returns a vector meter for up to width lanes under cfg.
func NewVecMeter(cfg Config, width int) *VecMeter {
	if width < 1 {
		width = 1
	}
	return &VecMeter{cfg: cfg, width: width, lanes: make([]laneRails, width)}
}

// Width returns the lane capacity.
func (v *VecMeter) Width() int { return v.width }

// Cycles returns the number of cycles begun since Reset.
func (v *VecMeter) Cycles() uint64 { return v.cycles }

// Reset prepares n lanes (n <= Width) for a fresh run: every rail history
// and accumulator cleared, bit-identical to a new meter.
func (v *VecMeter) Reset(n int) {
	if n > v.width {
		n = v.width
	}
	v.n = n
	for i := range v.lanes[:n] {
		v.lanes[i] = laneRails{}
	}
	v.fetchPrev = 0
	v.cycles = 0
}

// BeginCycle opens a cycle's shared accounting and charges the clock tree.
func (v *VecMeter) BeginCycle() {
	v.shClock = v.cfg.Params.ClockPJ
	v.shFetch, v.shDecode, v.shRegfile, v.shMemarray = 0, 0, 0, 0
	v.shCompFetch = 0
	v.cycles++
}

// Fetch reports the shared instruction fetch of the cycle's encoded word.
func (v *VecMeter) Fetch(word uint32) {
	p := &v.cfg.Params
	v.shFetch += p.IFetchArrayPJ
	h := float64(bits.OnesCount32(v.fetchPrev ^ word))
	v.fetchPrev = word
	e := h * p.FetchLinePJ
	v.shFetch += e
	if !v.cfg.ClockGating {
		v.shCompFetch = e
	}
	if v.cfg.InterWireCoupling {
		v.shFetch += coupling(word, p.CouplingPJ)
	}
}

// FetchQuiet advances the fetch-bus history without accounting energy, for
// unobserved cycles.
func (v *VecMeter) FetchQuiet(word uint32) { v.fetchPrev = word }

// Decode reports the shared instruction decode.
func (v *VecMeter) Decode() { v.shDecode += v.cfg.Params.DecodePJ }

// RegRead reports n register-file read ports firing. Call after RegWrite
// (WB precedes ID in stage order) so the register-file component accumulates
// in the scalar order.
func (v *VecMeter) RegRead(n int) {
	v.shRegfile += float64(n) * v.cfg.Params.RegReadPJ
}

// RegWrite reports one register-file write.
func (v *VecMeter) RegWrite() { v.shRegfile += v.cfg.Params.RegWritePJ }

// MemArray reports the data-independent memory array access of a load or
// store cycle.
func (v *VecMeter) MemArray() { v.shMemarray += v.cfg.Params.MemArrayPJ }

// EndShared closes the cycle's shared accounting: the prefix sum of the
// control-determined components in index order (clock, fetch, decode,
// regfile), exactly as the scalar EndCycleInto begins its total.
func (v *VecMeter) EndShared() {
	v.prefix = ((v.shClock + v.shFetch) + v.shDecode) + v.shRegfile
}

// vecRail mirrors rail.transfer: drive value on a rail with the given
// per-line cost, returning (normal, complementary) energy.
func vecRail(prev *uint32, value uint32, secure, precharge, gating bool, linePJ float64) (float64, float64) {
	if secure {
		if precharge {
			*prev = prechargeValue
			half := 16 * linePJ
			return half, half
		}
		h := float64(bits.OnesCount32(*prev ^ value))
		*prev = value
		e := h * linePJ
		return e, e
	}
	h := float64(bits.OnesCount32(*prev ^ value))
	*prev = value
	e := h * linePJ
	if !gating {
		return e, e
	}
	return e, 0
}

// LaneCycle meters one lane's cycle and returns its total energy, storing it
// for LastPJ. Events must already carry the lane's data values; charges are
// applied in the scalar meter's stage and component order.
func (v *VecMeter) LaneCycle(lane int, ev *LaneEvents) float64 {
	lr := &v.lanes[lane]
	p := &v.cfg.Params
	pre := v.cfg.DualRailPrecharge
	gating := v.cfg.ClockGating
	coup := v.cfg.InterWireCoupling

	var alu, opbus, resbus, pipereg, membus, comp float64

	// WB: the MEM/WB latch captures the writeback value.
	if ev.WB {
		n, c := vecRail(&lr.lW, ev.WBVal, ev.WBSecure, pre, gating, p.LatchBitPJ)
		pipereg += n
		comp += c
		if coup {
			pipereg += coupling(ev.WBVal, p.CouplingPJ)
		}
	}

	// MEM: address and data buses.
	if ev.Mem {
		n, c := vecRail(&lr.mA, ev.MemAddr, ev.MemSecure, pre, gating, p.MemAddrLinePJ)
		membus += n
		comp += c
		if coup {
			membus += coupling(ev.MemAddr, p.CouplingPJ)
		}
		n, c = vecRail(&lr.mD, ev.MemData, ev.MemSecure, pre, gating, p.MemDataLinePJ)
		membus += n
		comp += c
		if coup {
			membus += coupling(ev.MemData, p.CouplingPJ)
		}
	}

	// EX: operand buses and latches, the ALU or XOR unit, result bus and
	// latch — the scalar OnExec order.
	if ev.EX {
		sec := ev.EXSecure
		n, c := vecRail(&lr.opA, ev.A, sec, pre, gating, p.OpBusLinePJ)
		opbus += n
		comp += c
		if coup {
			opbus += coupling(ev.A, p.CouplingPJ)
		}
		n, c = vecRail(&lr.opB, ev.B, sec, pre, gating, p.OpBusLinePJ)
		opbus += n
		comp += c
		if coup {
			opbus += coupling(ev.B, p.CouplingPJ)
		}
		n, c = vecRail(&lr.lA, ev.A, sec, pre, gating, p.LatchBitPJ)
		pipereg += n
		comp += c
		if coup {
			pipereg += coupling(ev.A, p.CouplingPJ)
		}
		n, c = vecRail(&lr.lB, ev.B, sec, pre, gating, p.LatchBitPJ)
		pipereg += n
		comp += c
		if coup {
			pipereg += coupling(ev.B, p.CouplingPJ)
		}

		switch {
		case ev.EXXor && sec && pre:
			alu += p.XorUnitPJ / 2
			comp += p.XorUnitPJ / 2
			lr.xorR = prechargeValue
		case ev.EXXor:
			t := float64(bits.OnesCount32(lr.xorR ^ ev.R))
			lr.xorR = ev.R
			e := t / 32 * p.XorUnitPJ
			alu += e
			if sec || !gating {
				comp += e
			}
		case sec && pre:
			c := 2*p.AluOpPJ*ev.EXScale + 96*p.ALUTogglePJ
			alu += c / 2
			comp += c / 2
			lr.aluA, lr.aluB, lr.aluR = prechargeValue, prechargeValue, prechargeValue
		default:
			t := bits.OnesCount32(lr.aluA^ev.A) + bits.OnesCount32(lr.aluB^ev.B) + bits.OnesCount32(lr.aluR^ev.R)
			lr.aluA, lr.aluB, lr.aluR = ev.A, ev.B, ev.R
			e := p.AluOpPJ*ev.EXScale + float64(t)*p.ALUTogglePJ
			alu += e
			if sec || !gating {
				comp += e
			}
		}

		n, c = vecRail(&lr.res, ev.R, sec, pre, gating, p.ResultBusLinePJ)
		resbus += n
		comp += c
		if coup {
			resbus += coupling(ev.R, p.CouplingPJ)
		}
		n, c = vecRail(&lr.lR, ev.R, sec, pre, gating, p.LatchBitPJ)
		pipereg += n
		comp += c
		if coup {
			pipereg += coupling(ev.R, p.CouplingPJ)
		}
	}

	// The ungated fetch-rail mirror is the last complementary charge of the
	// scalar cycle (IF runs last).
	comp += v.shCompFetch

	// Total in component index order, continuing EndShared's prefix. Absent
	// components contribute +0.0, which is exact.
	total := v.prefix
	total += alu
	total += opbus
	total += resbus
	total += pipereg
	total += membus
	total += v.shMemarray
	total += comp

	lr.alu, lr.opbus, lr.resbus = alu, opbus, resbus
	lr.pipereg, lr.membus, lr.comp = pipereg, membus, comp
	lr.last = total
	return total
}

// UniformLockstep reports whether the cycle described by ev meters
// identically on every lockstepped lane: every active event is secure — so
// dual-rail precharging makes its charge data-independent and leaves the
// touched rails in the precharge state — and no data-dependent charge
// (inter-wire coupling, which the paper notes is NOT masked by dual-rail
// operation) is enabled. This is the masking thesis turned into a throughput
// lever: exactly the cycles whose energy cannot depend on the data are the
// cycles the gang can meter once and share.
func (v *VecMeter) UniformLockstep(ev *LaneEvents) bool {
	if v.cfg.InterWireCoupling || !v.cfg.DualRailPrecharge {
		return false
	}
	return (!ev.WB || ev.WBSecure) && (!ev.Mem || ev.MemSecure) && (!ev.EX || ev.EXSecure)
}

// CopyLaneCycle replays a uniform cycle (see UniformLockstep) already metered
// on lane from onto lane to, with no floating-point work: every touched rail
// ends in the precharge state regardless of the lane's data, and every charge
// is data-independent, so the component partials and the total are copied
// verbatim. Bit-identical to calling LaneCycle(to, ev) with to's data values.
func (v *VecMeter) CopyLaneCycle(from, to int, ev *LaneEvents) float64 {
	src, dst := &v.lanes[from], &v.lanes[to]
	if ev.WB {
		dst.lW = prechargeValue
	}
	if ev.Mem {
		dst.mA, dst.mD = prechargeValue, prechargeValue
	}
	if ev.EX {
		dst.opA, dst.opB = prechargeValue, prechargeValue
		dst.lA, dst.lB = prechargeValue, prechargeValue
		if ev.EXXor {
			dst.xorR = prechargeValue
		} else {
			dst.aluA, dst.aluB, dst.aluR = prechargeValue, prechargeValue, prechargeValue
		}
		dst.res, dst.lR = prechargeValue, prechargeValue
	}
	dst.alu, dst.opbus, dst.resbus = src.alu, src.opbus, src.resbus
	dst.pipereg, dst.membus, dst.comp = src.pipereg, src.membus, src.comp
	dst.last = src.last
	return dst.last
}

// LaneCycleQuiet advances one lane's rail history for an unobserved cycle:
// the same state transitions as LaneCycle, no energy arithmetic.
func (v *VecMeter) LaneCycleQuiet(lane int, ev *LaneEvents) {
	lr := &v.lanes[lane]
	pre := v.cfg.DualRailPrecharge
	if ev.WB {
		quietRail(&lr.lW, ev.WBVal, ev.WBSecure, pre)
	}
	if ev.Mem {
		quietRail(&lr.mA, ev.MemAddr, ev.MemSecure, pre)
		quietRail(&lr.mD, ev.MemData, ev.MemSecure, pre)
	}
	if ev.EX {
		sec := ev.EXSecure
		quietRail(&lr.opA, ev.A, sec, pre)
		quietRail(&lr.opB, ev.B, sec, pre)
		quietRail(&lr.lA, ev.A, sec, pre)
		quietRail(&lr.lB, ev.B, sec, pre)
		switch {
		case ev.EXXor && sec && pre:
			lr.xorR = prechargeValue
		case ev.EXXor:
			lr.xorR = ev.R
		case sec && pre:
			lr.aluA, lr.aluB, lr.aluR = prechargeValue, prechargeValue, prechargeValue
		default:
			lr.aluA, lr.aluB, lr.aluR = ev.A, ev.B, ev.R
		}
		quietRail(&lr.res, ev.R, sec, pre)
		quietRail(&lr.lR, ev.R, sec, pre)
	}
}

// quietRail is vecRail's state transition without the energy.
func quietRail(prev *uint32, value uint32, secure, precharge bool) {
	if secure && precharge {
		*prev = prechargeValue
		return
	}
	*prev = value
}

// LastPJ returns the lane's most recently metered cycle total — the same
// contract as Probe.LastPJ, per lane.
func (v *VecMeter) LastPJ(lane int) float64 { return v.lanes[lane].last }

// EndCycleInto writes the lane's most recently metered cycle into dst with
// the full per-component breakdown — the same contract as the scalar
// EndCycleInto, per lane. Valid until the next BeginCycle.
func (v *VecMeter) EndCycleInto(lane int, dst *CycleEnergy) {
	lr := &v.lanes[lane]
	dst.By = [NumComponents]float64{
		CompClock:         v.shClock,
		CompFetch:         v.shFetch,
		CompDecode:        v.shDecode,
		CompRegFile:       v.shRegfile,
		CompALU:           lr.alu,
		CompOpBus:         lr.opbus,
		CompResultBus:     lr.resbus,
		CompPipeReg:       lr.pipereg,
		CompMemBus:        lr.membus,
		CompMemArray:      v.shMemarray,
		CompComplementary: lr.comp,
	}
	dst.Total = lr.last
}
