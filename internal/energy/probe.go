package energy

import (
	"desmask/internal/cpu"
	"desmask/internal/isa"
)

// Probe is the energy meter: a cpu.Probe that drives the transition-sensitive
// Model from the pipeline's per-stage events and accumulates per-cycle and
// whole-run totals. It observes every stage (fetch, issue, exec, mem,
// writeback) and closes the model's accounting window at each cycle commit.
//
// Attach the meter before any probe that reads it (trace recorders, peak
// trackers): probes fire in attachment order, so readers then see the
// just-committed cycle via Last().
//
// Moving energy accounting out of the core is exact, not approximate: every
// Model rail is touched at most once per clock cycle, so per-cycle totals are
// independent of the order events are reported within the cycle, and rail
// history across cycles depends only on which events fire in which cycle —
// both preserved by the probe protocol.
type Probe struct {
	model  *Model
	scale  [isa.NumExecClasses]float64 // per-ExecClass base-ALU-energy scale
	last   CycleEnergy
	total  CycleEnergy
	peak   float64
	cycles uint64
}

// NewProbe returns an energy meter over a fresh Model with the given
// configuration, ready to observe cycle 0, using the default (PISA)
// coefficient of 1 for every operation class.
func NewProbe(cfg Config) *Probe {
	return NewProbeFor(cfg, nil)
}

// NewProbeFor returns an energy meter whose per-op ALU coefficients come
// from the given ISA backend's ALUOpScale table. A nil target means the
// PISA scale (all ones), which meters bit-identically to NewProbe.
func NewProbeFor(cfg Config, target isa.Target) *Probe {
	p := &Probe{model: NewModel(cfg)}
	if target == nil {
		target = isa.PISA
	}
	p.scale = target.ALUOpScale()
	p.model.BeginCycle()
	return p
}

// Reset clears the meter and the model's rail history so the next run is
// bit-identical to a fresh probe.
func (p *Probe) Reset() {
	p.model.Reset()
	p.last, p.total = CycleEnergy{}, CycleEnergy{}
	p.peak = 0
	p.cycles = 0
	p.model.BeginCycle()
}

// Config returns the model configuration.
func (p *Probe) Config() Config { return p.model.Config() }

// Last returns the energy of the most recently committed cycle.
func (p *Probe) Last() CycleEnergy { return p.last }

// LastPJ returns the total energy of the most recently committed cycle
// without copying the per-component breakdown.
func (p *Probe) LastPJ() float64 { return p.last.Total }

// Total returns the accumulated energy of the run so far.
func (p *Probe) Total() CycleEnergy { return p.total }

// TotalPJ returns the accumulated total energy in picojoules.
func (p *Probe) TotalPJ() float64 { return p.total.Total }

// PeakPJ returns the largest single-cycle energy observed.
func (p *Probe) PeakPJ() float64 { return p.peak }

// Cycles returns the number of committed cycles observed.
func (p *Probe) Cycles() uint64 { return p.cycles }

// OnFetch implements cpu.FetchObserver.
func (p *Probe) OnFetch(e cpu.FetchEvent) {
	p.model.Fetch(e.Word)
}

// OnIssue implements cpu.IssueObserver.
func (p *Probe) OnIssue(e cpu.IssueEvent) {
	p.model.Decode()
	p.model.RegRead(int(e.U.NSrc))
}

// OnExec implements cpu.ExecObserver.
func (p *Probe) OnExec(e cpu.ExecEvent) {
	p.model.OperandLatch(e.A, e.B, e.U.Secure)
	p.model.ALUOpScaled(p.scale[e.U.Class], e.A, e.B, e.Result, e.U.XorUnit, e.U.Secure)
	p.model.Result(e.Result, e.U.Secure)
}

// OnMem implements cpu.MemObserver.
func (p *Probe) OnMem(e cpu.MemEvent) {
	p.model.MemAccess(e.Addr, e.Data, e.U.Secure)
}

// OnWriteback implements cpu.WritebackObserver.
func (p *Probe) OnWriteback(e cpu.WritebackEvent) {
	p.model.Writeback(e.Value, e.U.Secure)
	if e.U.Dest != isa.Zero {
		p.model.RegWrite()
	}
}

// OnCycle implements cpu.Probe: it closes the model's accounting window for
// the committed cycle and opens the next one.
func (p *Probe) OnCycle(cpu.CycleInfo) {
	p.model.EndCycleInto(&p.last)
	p.total.AddFrom(&p.last)
	if p.last.Total > p.peak {
		p.peak = p.last.Total
	}
	p.cycles++
	p.model.BeginCycle()
}
