package experiments

import (
	"bytes"
	"strings"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/des"
	"desmask/internal/leakstat"
)

func TestFigure6ShowsSixteenRounds(t *testing.T) {
	f6, err := Figure6(DefaultKey, DefaultPlain, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.RoundStarts) != 16 {
		t.Errorf("round starts = %d, want 16", len(f6.RoundStarts))
	}
	if f6.SPA.Strength < 0.3 {
		t.Errorf("SPA strength %.2f too weak to reveal round structure", f6.SPA.Strength)
	}
	if f6.SPA.Rounds < 14 || f6.SPA.Rounds > 20 {
		t.Errorf("SPA round estimate %d, want ~16", f6.SPA.Rounds)
	}
	if len(f6.Series) == 0 || f6.TotalUJ <= 0 {
		t.Error("empty profile")
	}
}

func TestFigure7And8LeakKeyBit(t *testing.T) {
	f7, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.Flat || f7.Stats.MaxAbs < 1 {
		t.Errorf("figure 7 differential too small: %+v", f7.Stats)
	}
	f8, err := Figure8(DefaultKey, DefaultKey^0x40100, DefaultPlain)
	if err != nil {
		t.Fatal(err)
	}
	if f8.Flat {
		t.Error("figure 8 should show key-dependent differences")
	}
}

func TestFigure9Masked(t *testing.T) {
	f9, err := Figure9(DefaultKey, DefaultKeyBit1, DefaultPlain)
	if err != nil {
		t.Fatal(err)
	}
	if !f9.Flat {
		t.Errorf("figure 9 must be flat after masking: max %.6f pJ", f9.Stats.MaxAbs)
	}
}

func TestFigure10And11Plaintexts(t *testing.T) {
	f10, err := Figure10(DefaultKey, DefaultPlain, DefaultPlain2)
	if err != nil {
		t.Fatal(err)
	}
	if f10.Flat {
		t.Error("figure 10 should show plaintext-dependent differences")
	}
	f11, err := Figure11(DefaultKey, DefaultPlain, DefaultPlain2)
	if err != nil {
		t.Fatal(err)
	}
	if f11.IP.Flat {
		t.Error("figure 11: the insecure initial permutation should still differ")
	}
	if !f11.Round1.Flat {
		t.Errorf("figure 11: masked round 1 must be flat, max %.6f", f11.Round1.Stats.MaxAbs)
	}
}

func TestFigure12Overhead(t *testing.T) {
	f12, err := Figure12(DefaultKey, DefaultPlain)
	if err != nil {
		t.Fatal(err)
	}
	if f12.MeanOverheadPJ <= 5 {
		t.Errorf("masking overhead %.1f pJ/cyc too small", f12.MeanOverheadPJ)
	}
	if f12.MeanOverheadPJ > 100 {
		t.Errorf("masking overhead %.1f pJ/cyc implausibly large", f12.MeanOverheadPJ)
	}
	if f12.BaselinePJ < 140 || f12.BaselinePJ > 190 {
		t.Errorf("baseline %.1f pJ/cyc outside the calibrated ~165 band", f12.BaselinePJ)
	}
	// Overhead must be non-negative in essentially every cycle (masking
	// only ever adds energy).
	neg := 0
	for _, v := range f12.Overhead {
		if v < -1e-9 {
			neg++
		}
	}
	if neg > 0 {
		t.Errorf("%d cycles with negative masking overhead", neg)
	}
}

func TestTableTotalsShape(t *testing.T) {
	tbl, err := TableTotals(DefaultKey, DefaultPlain)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Report.Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalUJ <= rows[i-1].TotalUJ {
			t.Errorf("ordering violated at %v", rows[i].Policy)
		}
	}
	none, _ := tbl.Report.Row(compiler.PolicyNone)
	all, _ := tbl.Report.Row(compiler.PolicyAllSecure)
	if r := all.TotalUJ / none.TotalUJ; r < 1.6 || r > 2.1 {
		t.Errorf("all/none = %.2f, want ~1.80 (paper 83.5/46.4)", r)
	}
	if hs := tbl.HeadlineSavings(); hs < 0.70 || hs > 0.90 {
		t.Errorf("headline savings %.2f, want ~0.83", hs)
	}
	// Paper reference values present for all policies.
	for _, row := range rows {
		if tbl.PaperUJ[row.Policy] == 0 {
			t.Errorf("no paper value for %v", row.Policy)
		}
	}
}

func TestFigure4Selective(t *testing.T) {
	f4, err := Figure4CodeGen()
	if err != nil {
		t.Fatal(err)
	}
	if f4.SecureLoads == 0 || f4.SecureLoads >= f4.TotalLoads {
		t.Errorf("loads secured %d/%d; selective should secure a strict subset",
			f4.SecureLoads, f4.TotalLoads)
	}
	if !strings.Contains(f4.Asm, "lw.s") || !strings.Contains(f4.Asm, "sw.s") {
		t.Error("missing secure memory ops in Figure 4 output")
	}
	slice := strings.Join(f4.Report.Tainted, ",")
	for _, v := range []string{"key", "oldR", "newL"} {
		if !strings.Contains(slice, v) {
			t.Errorf("forward slice missing %q", v)
		}
	}
}

func TestDPAAttackSmall(t *testing.T) {
	att, err := DPAAttack(DefaultKey, 48)
	if err != nil {
		t.Fatal(err)
	}
	if att.RecoveredUnmasked < 1 {
		t.Error("unmasked attack recovered nothing even at 48 traces")
	}
	if att.MaskedPeak > 1e-9 {
		t.Errorf("masked traces show differential %.6f", att.MaskedPeak)
	}
	if att.RecoveredMasked > 2 {
		t.Errorf("masked attack recovered %d/8; should be chance", att.RecoveredMasked)
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"selective (paper design)":        false,
		"seeds-only (no forward slicing)": true,
		"no-precharge dual rail":          true,
		"no clock gating":                 false,
		"no secure indexing":              true,
		"inter-wire coupling":             true,
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d ablations, want %d", len(rows), len(want))
	}
	var selTotal, noGateTotal float64
	for _, r := range rows {
		expect, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected ablation %q", r.Name)
			continue
		}
		if r.Leaks != expect {
			t.Errorf("%s: leaks=%v, want %v (max|diff|=%.3f)", r.Name, r.Leaks, expect, r.MaxAbs)
		}
		switch r.Name {
		case "selective (paper design)":
			selTotal = r.TotalUJ
		case "no clock gating":
			noGateTotal = r.TotalUJ
		}
	}
	if noGateTotal <= selTotal {
		t.Errorf("no-gating (%.1f µJ) should cost more than gated selective (%.1f µJ)", noGateTotal, selTotal)
	}
}

func TestRunAllProducesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, 32); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "Table (sec 4.3)", "Figure 4",
		"DPA attack", "Ablations", "headline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWorkloadsGenerality(t *testing.T) {
	rows, err := Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if !row.MaskedFlat {
			t.Errorf("%s: selective masking not flat", row.Name)
		}
		none := row.UJ[compiler.PolicyNone]
		sel := row.UJ[compiler.PolicySelective]
		all := row.UJ[compiler.PolicyAllSecure]
		if !(none < sel && sel < all) {
			t.Errorf("%s: energy ordering violated: %.2f / %.2f / %.2f", row.Name, none, sel, all)
		}
		ratio := all / none
		if ratio < 1.3 || ratio > 2.2 {
			t.Errorf("%s: all/none = %.2f outside plausible band", row.Name, ratio)
		}
	}
}

func TestDPAAttackIncludesCPA(t *testing.T) {
	att, err := DPAAttack(DefaultKey, 48)
	if err != nil {
		t.Fatal(err)
	}
	if att.CPAMaskedPeak > 1e-9 {
		t.Errorf("CPA masked peak %.6f, want 0", att.CPAMaskedPeak)
	}
	if att.CPARecoveredUnmasked < 1 {
		t.Error("CPA recovered nothing on unmasked traces")
	}
}

func TestComponentBreakdown(t *testing.T) {
	rows, err := ComponentBreakdown(DefaultKey, DefaultPlain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		var sum float64
		for _, v := range row.ByComp {
			sum += v
		}
		if diff := sum - row.Total; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%v: component sum %.4f != total %.4f", row.Policy, sum, row.Total)
		}
	}
	// The complementary-rail component must grow monotonically with
	// protection and be zero for the unprotected run.
	if rows[0].ByComp["complementary"] != 0 {
		t.Error("unprotected run charged the complementary rail")
	}
	if !(rows[0].ByComp["complementary"] < rows[1].ByComp["complementary"] &&
		rows[1].ByComp["complementary"] < rows[2].ByComp["complementary"]) {
		t.Error("complementary energy should grow with protection level")
	}
}

func TestPeakPowerSweep(t *testing.T) {
	rows, err := PeakPowerSweep(DefaultKey, DefaultPlain)
	if err != nil {
		t.Fatal(err)
	}
	byPol := map[compiler.Policy]PeakPower{}
	for _, r := range rows {
		if r.PeakPJ < r.AvgPJ {
			t.Errorf("%v: peak %.1f below average %.1f", r.Policy, r.PeakPJ, r.AvgPJ)
		}
		byPol[r.Policy] = r
	}
	if byPol[compiler.PolicyAllSecure].PeakPJ <= byPol[compiler.PolicyNone].PeakPJ {
		t.Error("full dual-rail should raise the peak draw")
	}
}

func TestVerifyLeaks(t *testing.T) {
	rows, err := VerifyLeaks()
	if err != nil {
		t.Fatal(err)
	}
	byPol := map[compiler.Policy]LeakVerification{}
	for _, r := range rows {
		byPol[r.Policy] = r
	}
	if byPol[compiler.PolicySelective].SitesOutsideDeclass != 0 {
		t.Errorf("selective leaks at %d sites outside declassification",
			byPol[compiler.PolicySelective].SitesOutsideDeclass)
	}
	if byPol[compiler.PolicyAllSecure].SitesOutsideDeclass != 0 {
		t.Error("all-secure must not leak")
	}
	for _, pol := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySeedsOnly, compiler.PolicyNaiveLoadStore} {
		if byPol[pol].SitesOutsideDeclass == 0 {
			t.Errorf("%v should leak outside declassification", pol)
		}
	}
}

func TestFullKeyRecoveryAt256Traces(t *testing.T) {
	if testing.Short() {
		t.Skip("256-trace attack is slow")
	}
	att, err := DPAAttack(DefaultKey, 256)
	if err != nil {
		t.Fatal(err)
	}
	if att.RecoveredUnmasked != 8 {
		t.Fatalf("recovered %d/8 chunks at 256 traces", att.RecoveredUnmasked)
	}
	if !att.FullKeyRecovered {
		t.Fatal("full key not recovered despite 8/8 chunks")
	}
	if des.StripParity(att.RecoveredKey) != des.StripParity(DefaultKey) {
		t.Errorf("recovered %016X, true %016X", att.RecoveredKey, DefaultKey)
	}
}

// TestCrossISATable is the experiments half of the cross-ISA cosim suite:
// the same source under the same policy must produce identical architectural
// outputs and the same TVLA verdict on every registered backend, and the
// verdicts themselves must track policy soundness on each target.
func TestCrossISATable(t *testing.T) {
	rows, err := CrossISATable(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 workloads x 2 policies)", len(rows))
	}
	for _, row := range rows {
		if len(row.ISAs) < 2 {
			t.Fatalf("%s/%s: only %d targets assessed, want at least 2", row.Workload, row.Policy, len(row.ISAs))
		}
		if !row.OutputsMatch {
			t.Errorf("%s/%s: architectural outputs differ across %v", row.Workload, row.Policy, row.ISAs)
		}
		if !row.VerdictsMatch {
			t.Errorf("%s/%s: TVLA verdicts differ across %v: %v", row.Workload, row.Policy, row.ISAs, row.Leak)
		}
		for i, leak := range row.Leak {
			switch row.Policy {
			case compiler.PolicyNone:
				if !leak {
					t.Errorf("%s/%s on %s: unprotected build shows max|t|=%.2f, want a leak verdict",
						row.Workload, row.Policy, row.ISAs[i], row.MaxAbsT[i])
				}
			case compiler.PolicySelective:
				if leak || row.MaxAbsT[i] != 0 {
					t.Errorf("%s/%s on %s: masked build shows max|t|=%v, want exactly 0",
						row.Workload, row.Policy, row.ISAs[i], row.MaxAbsT[i])
				}
			}
		}
	}
}

func TestTVLATable(t *testing.T) {
	rows, err := TVLATable(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("got %d rows, want 18 (4 workloads x 3 policies + 6 attack-matrix cells)", len(rows))
	}
	cpaRows, tvlaRows := 0, 0
	for _, row := range rows {
		if row.Stat == "cpa" {
			cpaRows++
			if row.Recovered < 0 || row.Recovered > 8 {
				t.Errorf("cpa cell (shuffle=%v): recovered %d chunks", row.Shuffle, row.Recovered)
			}
			continue
		}
		tvlaRows++
		if row.Recovered != -1 {
			t.Errorf("%s/%s: tvla row carries a key-recovery count %d", row.Workload, row.Policy, row.Recovered)
		}
		if row.Policy == compiler.PolicyBooleanMask {
			// The boolean-mask verdicts are statistical, not exact; they are
			// pinned at assessment scale by TestMaskAttackPayoff.
			continue
		}
		switch row.Policy {
		case compiler.PolicyNone:
			if !row.Leak {
				t.Errorf("%s/%s: unprotected build shows max|t|=%.2f, want a leak verdict",
					row.Workload, row.Policy, row.MaxAbsT)
			}
		case compiler.PolicySelective, compiler.PolicyAllSecure:
			// Noise-free simulation: sound masking is energy-flat across
			// secrets, so t is exactly zero, not merely below threshold.
			if row.Leak || row.MaxAbsT != 0 {
				t.Errorf("%s/%s: masked build shows max|t|=%v, want exactly 0",
					row.Workload, row.Policy, row.MaxAbsT)
			}
		}
	}
	if cpaRows != 2 || tvlaRows != 16 {
		t.Fatalf("row mix: %d cpa + %d tvla", cpaRows, tvlaRows)
	}
	for _, want := range []struct {
		order   int
		shuffle bool
	}{{1, false}, {2, false}, {1, true}, {2, true}} {
		found := false
		for _, row := range rows {
			if row.Policy == compiler.PolicyBooleanMask && row.Order == want.order && row.Shuffle == want.shuffle {
				found = true
			}
		}
		if !found {
			t.Errorf("no boolean-mask cell at order %d shuffle %v", want.order, want.shuffle)
		}
	}
}

// TestMaskAttackPayoff pins the headline verdicts of the countermeasure
// matrix at their real operating points — the cells the whole PR earns:
//
//   - first-order boolean masking PASSES first-order TVLA and FAILS
//     second-order TVLA at 6400 traces (the pipeline co-schedules the two
//     shares, so cycle-energy variance stays key-dependent);
//   - full-key CPA recovers all 8 sub-key chunks AND the completed 56-bit
//     key from the unprotected build at 128 traces;
//   - operand shuffling at the same budget degrades the attack below full
//     recovery (fewer correct chunks, no key).
func TestMaskAttackPayoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-trace assessment")
	}
	if raceEnabled {
		t.Skip("assessment-scale run; CI executes it in a dedicated race-free step")
	}
	rows, err := MaskAttackTable(6400, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	find := func(stat string, order int, shuffle bool) TVLARow {
		for _, row := range rows {
			if row.Stat == stat && row.Order == order && row.Shuffle == shuffle {
				return row
			}
		}
		t.Fatalf("no %s order-%d shuffle=%v cell", stat, order, shuffle)
		return TVLARow{}
	}

	mask1 := find("tvla", 1, false)
	if mask1.Leak {
		t.Errorf("boolean-mask fails first-order TVLA: max|t|=%.2f > %.1f",
			mask1.MaxAbsT, leakstat.DefaultThreshold)
	}
	mask2 := find("tvla", 2, false)
	if !mask2.Leak {
		t.Errorf("boolean-mask passes second-order TVLA: max|t|=%.2f <= %.1f; "+
			"the second-order attack should break first-order masking",
			mask2.MaxAbsT, leakstat.DefaultThreshold)
	}
	if mask2.MaxAbsT <= mask1.MaxAbsT {
		t.Errorf("order-2 statistic (%.2f) not above order-1 (%.2f) on the masked build",
			mask2.MaxAbsT, mask1.MaxAbsT)
	}

	cpaNone := find("cpa", 1, false)
	if cpaNone.Recovered != 8 || !cpaNone.KeyOK {
		t.Errorf("unprotected CPA: %d/8 chunks, key=%v; want full recovery at %d traces",
			cpaNone.Recovered, cpaNone.KeyOK, cpaNone.Traces)
	}
	cpaShuf := find("cpa", 1, true)
	if cpaShuf.KeyOK {
		t.Errorf("shuffled CPA recovered the key at %d traces; shuffling should degrade the attack",
			cpaShuf.Traces)
	}
	if cpaShuf.Recovered >= cpaNone.Recovered {
		t.Errorf("shuffled CPA recovered %d/8 chunks, not fewer than unprotected (%d/8)",
			cpaShuf.Recovered, cpaNone.Recovered)
	}
}
