//go:build race

package experiments

// raceEnabled reports the race detector is compiled in. Assessment-scale
// tests (thousands of traces) skip under it — the detector multiplies their
// runtime several-fold and they assert statistics, not synchronization; the
// CI workflow runs them in a dedicated race-free step instead.
const raceEnabled = true
