// Package experiments regenerates every quantitative result of the paper:
// Figure 6 (energy profile of the 16 rounds), Figures 7-11 (differential
// traces for key and plaintext changes, before and after masking), Figure 12
// (masking overhead during the first key permutation), the §4.3 energy
// totals (46.4 / 52.6 / 63.6 / 83.5 µJ and the 83% headline), the Figure 4
// code-generation example, the DPA attack the scheme defends against, and
// the ablations of DESIGN.md §6.
//
// Absolute joules depend on the calibration in package energy; the claims
// reproduced here are the paper's *shapes*: orderings, ratios, flat-vs-
// leaking differentials, and attack success flipping to failure.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"desmask/internal/compiler"
	"desmask/internal/core"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/kernels"
	"desmask/internal/leakcheck"
	"desmask/internal/leakstat"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// Default workload: the classic DES walkthrough vector, with the paper's
// Figure 7 variation (two keys differing in key bit 1, i.e. the MSB — a
// non-parity bit selected by PC-1).
const (
	DefaultKey     uint64 = 0x133457799BBCDFF1
	DefaultKeyBit1        = DefaultKey ^ (1 << 63)
	DefaultPlain   uint64 = 0x0123456789ABCDEF
	DefaultPlain2  uint64 = 0xFEDCBA9876543210
)

// Figure6Result is the bucketed energy profile of one unmasked encryption.
type Figure6Result struct {
	BucketWidth int
	Series      []float64 // mean pJ/cycle per bucket
	RoundStarts []int     // ground-truth round boundaries (cycles)
	SPA         dpa.SPAResult
	TotalUJ     float64
	Cycles      uint64
}

// Figure6 reproduces the paper's Figure 6: the energy trace of a full
// encryption, aggregated every `bucket` cycles (the paper uses 10; larger
// buckets give the same 16-round picture with fewer points), plus the SPA
// evidence that the round structure is visible.
func Figure6(key, plaintext uint64, bucket int) (*Figure6Result, error) {
	s, err := core.NewSystem(compiler.PolicyNone)
	if err != nil {
		return nil, err
	}
	res, tr, err := s.EncryptWithTrace(key, plaintext)
	if err != nil {
		return nil, err
	}
	starts, err := s.Machine().RoundStarts(tr)
	if err != nil {
		return nil, err
	}
	// SPA period search spans 2k-40k cycles regardless of bucket width, so
	// the ~12k-cycle round period is always inside the window.
	minP, maxP := 2000/bucket, 40000/bucket
	if minP < 1 {
		minP = 1
	}
	return &Figure6Result{
		BucketWidth: bucket,
		Series:      trace.Bucket(tr.Totals, bucket),
		RoundStarts: starts,
		SPA:         dpa.SPA(tr.Totals, bucket, minP, maxP),
		TotalUJ:     res.TotalUJ(),
		Cycles:      res.Stats.Cycles,
	}, nil
}

// DifferentialResult is one of the Figure 7-11 differential profiles.
type DifferentialResult struct {
	Policy compiler.Policy
	// Window is the analysed cycle range (the paper plots round 1 for
	// Figures 7-9 and the start of the run for Figures 10-11).
	Window trace.Window
	// Diff is the per-cycle energy difference within Window.
	Diff  []float64
	Stats trace.Stats
	// Flat reports a perfectly masked window.
	Flat bool
}

// differential runs two (key, plaintext) pairs under one policy — as one
// batch through the system's simulation session — and extracts the
// differential over a window selected by sel.
func differential(policy compiler.Policy, k1, p1, k2, p2 uint64,
	sel func(m *desprog.Machine, tr *trace.Trace) (trace.Window, error)) (*DifferentialResult, error) {
	s, err := core.NewSystem(policy)
	if err != nil {
		return nil, err
	}
	traces, _, err := s.Machine().TraceBatch(
		[]desprog.Input{{Key: k1, Plaintext: p1}, {Key: k2, Plaintext: p2}}, sim.Options{})
	if err != nil {
		return nil, err
	}
	t1, t2 := traces[0], traces[1]
	d, err := trace.Diff(t1.Totals, t2.Totals)
	if err != nil {
		return nil, err
	}
	w, err := sel(s.Machine(), t1)
	if err != nil {
		return nil, err
	}
	seg := d[w.Start:w.End]
	st := trace.Summarize(seg)
	return &DifferentialResult{
		Policy: policy, Window: w, Diff: seg, Stats: st,
		Flat: st.MaxAbs < 1e-9,
	}, nil
}

func round1Window(m *desprog.Machine, tr *trace.Trace) (trace.Window, error) {
	return m.RoundWindow(tr, 0)
}

// ipThroughRound1 covers the initial permutation through the end of round 1
// (the region the paper plots in Figures 10-11).
func ipThroughRound1(m *desprog.Machine, tr *trace.Trace) (trace.Window, error) {
	w, err := m.RoundWindow(tr, 0)
	if err != nil {
		return trace.Window{}, err
	}
	return trace.Window{Start: 0, End: w.End}, nil
}

// Figure7 reproduces the paper's Figure 7: the first-round differential
// between two keys differing only in key bit 1, on the unmasked system.
func Figure7() (*DifferentialResult, error) {
	return differential(compiler.PolicyNone, DefaultKey, DefaultPlain, DefaultKeyBit1, DefaultPlain, round1Window)
}

// Figure8 reproduces Figure 8: first-round differential for two different
// keys before masking.
func Figure8(k1, k2, plaintext uint64) (*DifferentialResult, error) {
	return differential(compiler.PolicyNone, k1, plaintext, k2, plaintext, round1Window)
}

// Figure9 reproduces Figure 9: the same two keys after selective masking —
// the differential vanishes.
func Figure9(k1, k2, plaintext uint64) (*DifferentialResult, error) {
	return differential(compiler.PolicySelective, k1, plaintext, k2, plaintext, round1Window)
}

// Figure10 reproduces Figure 10: differential between two plaintexts under
// the same key, before masking, over the initial permutation and round 1.
func Figure10(key, p1, p2 uint64) (*DifferentialResult, error) {
	return differential(compiler.PolicyNone, key, p1, key, p2, ipThroughRound1)
}

// Figure11Result splits the masked plaintext differential into the
// (insecure, and therefore still differing) initial-permutation region and
// the (masked, flat) round region — the paper's observation that "the
// differences in the input values result in the difference in both the
// energy masked and original versions" only during the plaintext
// permutation.
type Figure11Result struct {
	IP     DifferentialResult
	Round1 DifferentialResult
}

// Figure11 reproduces Figure 11.
func Figure11(key, p1, p2 uint64) (*Figure11Result, error) {
	ip, err := differential(compiler.PolicySelective, key, p1, key, p2,
		func(m *desprog.Machine, tr *trace.Trace) (trace.Window, error) {
			return m.PhaseWindow(tr, desprog.FuncInitialPermutation, desprog.FuncKeyPermutation)
		})
	if err != nil {
		return nil, err
	}
	r1, err := differential(compiler.PolicySelective, key, p1, key, p2, round1Window)
	if err != nil {
		return nil, err
	}
	return &Figure11Result{IP: *ip, Round1: *r1}, nil
}

// Figure12Result is the masking-overhead profile during the first key
// permutation.
type Figure12Result struct {
	Window trace.Window
	// Overhead is the per-cycle additional energy of the selectively
	// masked run over the unmasked run, within the key permutation.
	Overhead []float64
	// MeanOverheadPJ is the average additional pJ/cycle (the paper reports
	// ~45 pJ over a ~165 pJ baseline; our compiler secures a smaller share
	// of the key-permutation instructions, so the measured overhead is
	// lower but of the same order).
	MeanOverheadPJ float64
	BaselinePJ     float64
}

// Figure12 reproduces Figure 12: the additional energy consumed by masking
// during the first key permutation.
func Figure12(key, plaintext uint64) (*Figure12Result, error) {
	// The two policies run in parallel: each system owns its own session, so
	// the pair of traced runs fans out with sim.ForEach.
	systems := make([]*core.System, 2)
	traces := make([]*trace.Trace, 2)
	for i, pol := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective} {
		s, err := core.NewSystem(pol)
		if err != nil {
			return nil, err
		}
		systems[i] = s
	}
	err := sim.ForEach(2, 0, func(i int) error {
		_, tr, err := systems[i].EncryptWithTrace(key, plaintext)
		traces[i] = tr
		return err
	})
	if err != nil {
		return nil, err
	}
	sSel := systems[1]
	tN, tS := traces[0], traces[1]
	// The two policies compile to the same instruction sequence (secure
	// bits only), so cycles align and the windows agree.
	w, err := sSel.Machine().PhaseWindow(tS, desprog.FuncKeyPermutation, desprog.FuncKeyGeneration)
	if err != nil {
		return nil, err
	}
	d, err := trace.Diff(tS.Totals, tN.Totals)
	if err != nil {
		return nil, err
	}
	seg := d[w.Start:w.End]
	base := trace.Summarize(tN.Totals[w.Start:w.End])
	return &Figure12Result{
		Window:         w,
		Overhead:       seg,
		MeanOverheadPJ: trace.Summarize(seg).Mean,
		BaselinePJ:     base.Mean,
	}, nil
}

// TableResult is the §4.3 energy-total comparison.
type TableResult struct {
	Report *core.EnergyReport
	// PaperUJ are the paper's published totals for reference.
	PaperUJ map[compiler.Policy]float64
}

// HeadlineSavings is the abstract's 83% claim.
func (t *TableResult) HeadlineSavings() float64 { return t.Report.HeadlineSavings() }

// TableTotals reproduces the §4.3 totals across the paper's four design
// points.
func TableTotals(key, plaintext uint64) (*TableResult, error) {
	rep, err := core.ComparePolicies(key, plaintext, []compiler.Policy{
		compiler.PolicyNone, compiler.PolicySelective,
		compiler.PolicyNaiveLoadStore, compiler.PolicyAllSecure,
	})
	if err != nil {
		return nil, err
	}
	return &TableResult{
		Report: rep,
		PaperUJ: map[compiler.Policy]float64{
			compiler.PolicyNone:           46.4,
			compiler.PolicySelective:      52.6,
			compiler.PolicyNaiveLoadStore: 63.6,
			compiler.PolicyAllSecure:      83.5,
		},
	}, nil
}

// OptRow is one row of the optimization ablation: the DES program under one
// policy, compiled with and without the taint-sound optimizer (-O).
type OptRow struct {
	Policy compiler.Policy
	// Static instruction counts of the emitted programs.
	Instrs, InstrsOpt int
	// Simulated cycles and energy of one full encryption.
	Cycles, CyclesOpt     uint64
	EnergyUJ, EnergyUJOpt float64
}

// OptimizationTable measures what the IR pass pipeline buys per policy:
// instructions, cycles and energy with and without -O, with both builds
// verified to produce the reference ciphertext. Masking guarantees are
// unchanged by -O (the passes are taint-sound); the leakcheck cosim tests
// assert that separately.
func OptimizationTable(key, plaintext uint64) ([]OptRow, error) {
	want := des.Encrypt(key, plaintext)
	run := func(p compiler.Policy, optimize bool) (int, uint64, float64, error) {
		m, err := desprog.NewFull(compiler.Options{Policy: p, Optimize: optimize}, energy.DefaultConfig())
		if err != nil {
			return 0, 0, 0, err
		}
		cipher, stats, done, err := m.Encrypt(key, plaintext, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		if !done {
			return 0, 0, 0, fmt.Errorf("experiments: policy %v (optimize=%v): encryption did not finish", p, optimize)
		}
		if cipher != want {
			return 0, 0, 0, fmt.Errorf("experiments: policy %v (optimize=%v): cipher %016X, reference %016X",
				p, optimize, cipher, want)
		}
		return len(m.Res.Program.Text), stats.Cycles, stats.Energy.Total / 1e6, nil
	}
	var rows []OptRow
	for _, p := range compiler.Policies() {
		instrs, cycles, uj, err := run(p, false)
		if err != nil {
			return nil, err
		}
		instrsOpt, cyclesOpt, ujOpt, err := run(p, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OptRow{
			Policy: p,
			Instrs: instrs, InstrsOpt: instrsOpt,
			Cycles: cycles, CyclesOpt: cyclesOpt,
			EnergyUJ: uj, EnergyUJOpt: ujOpt,
		})
	}
	return rows, nil
}

// Figure4Result is the code-generation example: the left-side copy loop
// with selectively secured accesses.
type Figure4Result struct {
	Asm    string
	Report compiler.Report
	// SecureLoads / TotalLoads inside the whole program; the paper's point
	// is that only 1 of the 4 loads in the loop body is secured.
	SecureLoads, TotalLoads int
}

// Figure4CodeGen compiles the paper's left-side operation under the
// selective policy.
func Figure4CodeGen() (*Figure4Result, error) {
	src := `
		secure int key[64];
		int oldR[32];
		int newL[32];
		void main() {
			int i;
			for (i = 0; i < 32; i = i + 1) { oldR[i] = key[i]; }
			for (i = 0; i < 32; i = i + 1) { newL[i] = oldR[i]; }
		}
	`
	res, err := compiler.Compile(src, compiler.PolicySelective)
	if err != nil {
		return nil, err
	}
	return &Figure4Result{
		Asm:         res.Asm,
		Report:      res.Report,
		SecureLoads: res.Report.SecureLoads,
		TotalLoads:  res.Report.TotalLoads,
	}, nil
}

// DPAResult is the attack comparison on masked vs unmasked systems.
type DPAResult struct {
	NumTraces         int
	Unmasked          [8]dpa.BoxResult
	Masked            [8]dpa.BoxResult
	RecoveredUnmasked int
	RecoveredMasked   int
	// MaskedPeak is the largest differential any masked guess produced
	// (zero when masking is complete).
	MaskedPeak float64
	// CPA results: the correlation distinguisher on the same trace sets.
	CPARecoveredUnmasked int
	CPARecoveredMasked   int
	CPAMaskedPeak        float64
	// FullKeyRecovered reports whether the unmasked attack, completed with
	// one known plaintext/ciphertext pair, reproduced the entire 56-bit
	// key.
	FullKeyRecovered bool
	RecoveredKey     uint64
}

// DPAAttack runs the first-round difference-of-means attack on both
// systems. numTraces <= 0 selects 256, which fully recovers all eight
// sub-key chunks on the unmasked system.
func DPAAttack(key uint64, numTraces int) (*DPAResult, error) {
	if numTraces <= 0 {
		numTraces = 256
	}
	cfg := dpa.Config{NumTraces: numTraces, Seed: 42, MaxCycles: 25_000}
	mNone, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		return nil, err
	}
	mSel, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		return nil, err
	}
	// Analyse the round region from round 1 onward. The start is read off a
	// probe trace (round boundaries are data-independent) so the window
	// tracks wherever the compiler's code layout puts round 1.
	probe, _, err := mNone.Trace(key, DefaultPlain)
	if err != nil {
		return nil, err
	}
	r0, err := mNone.RoundWindow(probe, 0)
	if err != nil {
		return nil, err
	}
	win := r0
	if win.End > 25_000 {
		win.End = 25_000
	}
	// Each Collect already fans out across its machine's session; the two
	// machines are independent, so the masked and unmasked acquisitions
	// overlap too.
	machines := []*desprog.Machine{mNone, mSel}
	sets := make([]*dpa.TraceSet, 2)
	if err := sim.ForEach(2, 2, func(i int) error {
		ts, err := dpa.Collect(machines[i], key, cfg)
		if err != nil {
			return err
		}
		ts.Window = win
		sets[i] = ts
		return nil
	}); err != nil {
		return nil, err
	}
	tsN, tsS := sets[0], sets[1]
	out := &DPAResult{NumTraces: numTraces}
	out.Unmasked = dpa.AttackAll(tsN, 0)
	out.Masked = dpa.AttackAll(tsS, 0)
	out.RecoveredUnmasked, _ = dpa.Verify(out.Unmasked, key)
	out.RecoveredMasked, _ = dpa.Verify(out.Masked, key)
	for _, r := range out.Masked {
		if r.Best.Peak > out.MaskedPeak {
			out.MaskedPeak = r.Best.Peak
		}
	}
	cpaN := dpa.CPAAttackAll(tsN)
	cpaS := dpa.CPAAttackAll(tsS)
	out.CPARecoveredUnmasked, _ = dpa.Verify(cpaN, key)
	out.CPARecoveredMasked, _ = dpa.Verify(cpaS, key)
	for _, r := range cpaS {
		if r.Best.Peak > out.CPAMaskedPeak {
			out.CPAMaskedPeak = r.Best.Peak
		}
	}
	// Complete the unmasked break with one known pair.
	pt := tsN.Plaintexts[0]
	ct := des.Encrypt(key, pt)
	var chunks [8]uint32
	for box, r := range out.Unmasked {
		chunks[box] = r.Best.Guess
	}
	if full, ok := des.RecoverKey(chunks, pt, ct); ok {
		out.FullKeyRecovered = true
		out.RecoveredKey = full
	}
	return out, nil
}

// WorkloadRow is one entry of the generality comparison (DES / AES / TEA).
type WorkloadRow struct {
	Name       string
	Cycles     uint64
	UJ         map[compiler.Policy]float64
	MaskedFlat bool
}

// Workloads runs the DES, AES-128 and TEA workloads under the comparison
// policies, substantiating the paper's "general, extensible to other
// algorithms" claim.
func Workloads() ([]WorkloadRow, error) {
	pols := []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure}
	var rows []WorkloadRow

	desRow := WorkloadRow{Name: "des", UJ: map[compiler.Policy]float64{}}
	for _, pol := range pols {
		m, err := desprog.New(pol)
		if err != nil {
			return nil, err
		}
		_, stats, _, err := m.Encrypt(DefaultKey, DefaultPlain, 0)
		if err != nil {
			return nil, err
		}
		desRow.Cycles = stats.Cycles
		desRow.UJ[pol] = stats.Energy.Total / 1e6
	}
	f9, err := Figure9(DefaultKey, DefaultKeyBit1, DefaultPlain)
	if err != nil {
		return nil, err
	}
	desRow.MaskedFlat = f9.Flat
	rows = append(rows, desRow)

	// The kernel rows are independent of each other and of the DES row;
	// each runs its policies in sequence but the rows fan out in parallel.
	ks := []kernels.Kernel{kernels.AES128(), kernels.TEA(), kernels.SHA1()}
	kernelRows := make([]WorkloadRow, len(ks))
	err = sim.ForEach(len(ks), 0, func(ki int) error {
		k := ks[ki]
		row := WorkloadRow{Name: k.Name, UJ: map[compiler.Policy]float64{}}
		secretLen, publicLen := 16, 16
		switch k.Name {
		case "tea":
			secretLen, publicLen = 4, 2
		case "sha1":
			secretLen, publicLen = 5, 16
		}
		s1 := make([]uint32, secretLen)
		s2 := make([]uint32, secretLen)
		pub := make([]uint32, publicLen)
		for i := range s1 {
			s1[i] = uint32(i + 1)
			s2[i] = uint32(201 - i)
		}
		for i := range pub {
			pub[i] = uint32(i * 9)
		}
		for _, pol := range pols {
			m, err := kernels.BuildSimple(k, pol)
			if err != nil {
				return err
			}
			_, stats, err := m.Run(s1, pub)
			if err != nil {
				return err
			}
			row.Cycles = stats.Cycles
			row.UJ[pol] = stats.Energy.Total / 1e6
		}
		// Flatness check on the selective build.
		m, err := kernels.BuildSimple(k, compiler.PolicySelective)
		if err != nil {
			return err
		}
		_, t1, err := m.Trace(s1, pub)
		if err != nil {
			return err
		}
		_, t2, err := m.Trace(s2, pub)
		if err != nil {
			return err
		}
		end, err := m.MaskedRegionEnd(t1)
		if err != nil {
			return err
		}
		row.MaskedFlat = true
		for i := 0; i < end; i++ {
			if t1.Totals[i] != t2.Totals[i] {
				row.MaskedFlat = false
				break
			}
		}
		kernelRows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, kernelRows...)
	return rows, nil
}

// TVLARow is one cell of the protection-vs-attack matrix: a (workload,
// countermeasure) build pitted against one attack statistic. "tvla" cells
// come from the streaming fixed-vs-random Welch engine — the modern
// leakage-assessment complement to the exact two-trace differentials of
// Figures 8-11 — at first or second statistical order; "cpa" cells are
// full 48-bit round-key recovery outcomes from internal/dpa.
type TVLARow struct {
	Workload string
	Policy   compiler.Policy
	// Shuffle reports the operand-shuffling countermeasure was layered on
	// top of the policy.
	Shuffle bool
	// Stat is the attack statistic: "tvla" rows carry an assessment verdict
	// (MaxAbsT, Leak), "cpa" rows a key-recovery outcome (Recovered, KeyOK).
	Stat string
	// Order is the statistical order of the attack: 1 = means, 2 = centered
	// second moments (the statistic that breaks first-order masking).
	Order  int
	Traces int
	// MaxAbsT is the peak |t| over the masked region; Leak reports whether
	// it crossed the TVLA threshold (leakstat.DefaultThreshold, 4.5).
	MaxAbsT float64
	Leak    bool
	// Recovered counts correct 6-bit sub-key chunks out of 8 (-1 on tvla
	// rows); KeyOK reports the completed 56-bit key reproduced the known
	// ciphertext.
	Recovered int
	KeyOK     bool
}

// kernelInputs returns the canonical secret/public inputs and the secret
// word mask of one kernel (byte-valued state for aes128, full words
// otherwise), shared by Workloads-style tables.
func kernelInputs(k kernels.Kernel) (secret, public []uint32, wordMask uint32) {
	secretLen, publicLen := 16, 16
	wordMask = 0xffffffff
	switch k.Name {
	case "aes128":
		wordMask = 0xff
	case "tea":
		secretLen, publicLen = 4, 2
	case "sha1":
		secretLen, publicLen = 5, 16
	}
	secret = make([]uint32, secretLen)
	public = make([]uint32, publicLen)
	for i := range secret {
		secret[i] = uint32(i+1) & wordMask
	}
	for i := range public {
		public[i] = uint32(i * 9)
	}
	return secret, public, wordMask
}

// TVLATable assesses DES and the kernels under the comparison policies with
// the streaming fixed-vs-random engine: the secret varies between
// populations, the window is the masked region, so an unprotected build
// shows |t| far above threshold while a sound policy stays below (exactly
// zero here — simulated traces are noise-free).
func TVLATable(traces, workers int) ([]TVLARow, error) {
	pols := []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure}
	var rows []TVLARow

	const desCycles = 25_000
	for _, pol := range pols {
		m, err := desprog.New(pol)
		if err != nil {
			return nil, err
		}
		win, err := leakstat.DESMaskedWindow(m, DefaultKey, DefaultPlain, desCycles)
		if err != nil {
			return nil, err
		}
		rep, err := leakstat.Assess(
			leakstat.DESKeySource(m, DefaultKey, DefaultPlain, 7, desCycles),
			leakstat.Config{NumTraces: traces, Seed: 7, Workers: workers, Window: win})
		if err != nil {
			return nil, err
		}
		rows = append(rows, TVLARow{Workload: "des", Policy: pol, Stat: "tvla", Order: 1,
			Traces: traces, MaxAbsT: rep.MaxAbsT, Leak: rep.Leak, Recovered: -1})
	}

	for _, k := range []kernels.Kernel{kernels.AES128(), kernels.TEA(), kernels.SHA1()} {
		secret, public, mask := kernelInputs(k)
		for _, pol := range pols {
			m, err := kernels.BuildSimple(k, pol)
			if err != nil {
				return nil, err
			}
			win, err := leakstat.KernelMaskedWindow(m, secret, public)
			if err != nil {
				return nil, err
			}
			rep, err := leakstat.Assess(
				leakstat.KernelSecretSource(m, secret, public, mask, 7, 0),
				leakstat.Config{NumTraces: traces, Seed: 7, Workers: workers, Window: win})
			if err != nil {
				return nil, err
			}
			rows = append(rows, TVLARow{Workload: k.Name, Policy: pol, Stat: "tvla", Order: 1,
				Traces: traces, MaxAbsT: rep.MaxAbsT, Leak: rep.Leak, Recovered: -1})
		}
	}

	att, err := MaskAttackTable(traces, traces, workers)
	if err != nil {
		return nil, err
	}
	return append(rows, att...), nil
}

// maskCycleBudget bounds the boolean-mask TVLA cells: the second-order leak
// (the 5-stage pipeline overlapping the two shares' EX and WB energy in one
// cycle) sits near cycle 9.8k of the DES run, so a [0, 12k) budget covers it
// at roughly half the full-window simulation cost.
const maskCycleBudget = 12_000

// MaskAttackTable pits the compiler countermeasures against the attacks they
// were built to stop — and against the stronger attacks that still succeed:
//
//   - boolean-mask (with and without shuffling) vs TVLA at order 1 and 2,
//     from ONE simulation pass per build: the order-2 accumulators carry the
//     means, so WelchT over the same fold yields the first-order verdict for
//     free. At assessment scale (thousands of traces) the masked build
//     passes first order but fails second order: no single cycle's *mean*
//     energy depends on the key, but the cycle-energy *variance* does where
//     the pipeline co-schedules the two shares.
//   - full-key CPA vs the unprotected and shuffled builds: at equal trace
//     budgets the unprotected build gives up all 8 sub-key chunks and the
//     completed 56-bit key, while shuffling leaves chunks wrong and the
//     completion failing — degradation, not defeat (more traces still win).
//
// TVLATable embeds these cells at its own trace count; the pinned verdicts
// above are asserted at their real operating points by TestMaskAttackPayoff
// and the CI smoke job.
func MaskAttackTable(tvlaTraces, cpaTraces, workers int) ([]TVLARow, error) {
	var rows []TVLARow
	for _, shuffle := range []bool{false, true} {
		m, err := desprog.NewFull(compiler.Options{Policy: compiler.PolicyBooleanMask, Shuffle: shuffle}, energy.DefaultConfig())
		if err != nil {
			return nil, err
		}
		win, err := leakstat.DESMaskedWindow(m, DefaultKey, DefaultPlain, maskCycleBudget)
		if err != nil {
			return nil, err
		}
		rep, err := leakstat.Assess(
			leakstat.DESKeySource(m, DefaultKey, DefaultPlain, 7, maskCycleBudget),
			leakstat.Config{NumTraces: tvlaTraces, Seed: 7, Workers: workers, Window: win, Order: 2})
		if err != nil {
			return nil, err
		}
		t1, err := leakstat.WelchT(rep.Fixed, rep.Random)
		if err != nil {
			return nil, err
		}
		peak1, _ := leakstat.MaxAbs(t1)
		rows = append(rows,
			TVLARow{Workload: "des", Policy: compiler.PolicyBooleanMask, Shuffle: shuffle,
				Stat: "tvla", Order: 1, Traces: tvlaTraces,
				MaxAbsT: peak1, Leak: peak1 > leakstat.DefaultThreshold, Recovered: -1},
			TVLARow{Workload: "des", Policy: compiler.PolicyBooleanMask, Shuffle: shuffle,
				Stat: "tvla", Order: 2, Traces: tvlaTraces,
				MaxAbsT: rep.MaxAbsT, Leak: rep.Leak, Recovered: -1})
	}

	ciphertext := des.Encrypt(DefaultKey, DefaultPlain)
	for _, shuffle := range []bool{false, true} {
		m, err := desprog.NewFull(compiler.Options{Policy: compiler.PolicyNone, Shuffle: shuffle}, energy.DefaultConfig())
		if err != nil {
			return nil, err
		}
		ts, err := dpa.Collect(m, DefaultKey, dpa.Config{
			NumTraces: cpaTraces, Seed: 1, MaxCycles: 25_000, Workers: workers})
		if err != nil {
			return nil, err
		}
		res := dpa.FullKeyAttack(ts, dpa.StatCPA, DefaultPlain, ciphertext)
		res.VerifyAgainst(DefaultKey)
		rows = append(rows, TVLARow{Workload: "des", Policy: compiler.PolicyNone, Shuffle: shuffle,
			Stat: "cpa", Order: 1, Traces: cpaTraces,
			Recovered: res.Recovered, KeyOK: res.OK})
	}
	return rows, nil
}

// CrossISARow is one (workload, policy) pair built for every registered ISA
// backend from the same MiniC source under the same protection policy. The
// table is the experiments-level witness that the masking pipeline is
// ISA-independent: architectural outputs must agree across targets, and the
// TVLA verdict (leak / no leak over the masked window) must agree too.
// Absolute |t| values may differ — per-op energies are target-specific — so
// only the verdicts are compared.
type CrossISARow struct {
	Workload string
	Policy   compiler.Policy
	Traces   int
	// ISAs, MaxAbsT and Leak are parallel, one entry per target.
	ISAs    []string
	MaxAbsT []float64
	Leak    []bool
	// OutputsMatch reports that every target produced identical
	// architectural output words; VerdictsMatch that every target reached
	// the same TVLA verdict.
	OutputsMatch  bool
	VerdictsMatch bool
}

// crossISADES assesses the DES workload under one policy on one target.
func crossISADES(pol compiler.Policy, target isa.Target, traces, workers int) (out []uint32, maxT float64, leak bool, err error) {
	const desCycles = 25_000
	m, err := desprog.NewFull(compiler.Options{Policy: pol, Target: target}, energy.DefaultConfig())
	if err != nil {
		return nil, 0, false, err
	}
	cipher, _, done, err := m.Encrypt(DefaultKey, DefaultPlain, 0)
	if err != nil {
		return nil, 0, false, err
	}
	if !done {
		return nil, 0, false, fmt.Errorf("experiments: %s/%s: encryption did not halt", pol, target.Name())
	}
	win, err := leakstat.DESMaskedWindow(m, DefaultKey, DefaultPlain, desCycles)
	if err != nil {
		return nil, 0, false, err
	}
	rep, err := leakstat.Assess(
		leakstat.DESKeySource(m, DefaultKey, DefaultPlain, 7, desCycles),
		leakstat.Config{NumTraces: traces, Seed: 7, Workers: workers, Window: win})
	if err != nil {
		return nil, 0, false, err
	}
	return []uint32{uint32(cipher >> 32), uint32(cipher)}, rep.MaxAbsT, rep.Leak, nil
}

// crossISAKernel assesses one kernel under one policy on one target.
func crossISAKernel(k kernels.Kernel, pol compiler.Policy, target isa.Target, traces, workers int) (out []uint32, maxT float64, leak bool, err error) {
	secret, public, mask := kernelInputs(k)
	m, err := kernels.Build(k, compiler.Options{Policy: pol, Target: target}, energy.DefaultConfig())
	if err != nil {
		return nil, 0, false, err
	}
	out, _, err = m.Run(secret, public)
	if err != nil {
		return nil, 0, false, err
	}
	win, err := leakstat.KernelMaskedWindow(m, secret, public)
	if err != nil {
		return nil, 0, false, err
	}
	rep, err := leakstat.Assess(
		leakstat.KernelSecretSource(m, secret, public, mask, 7, 0),
		leakstat.Config{NumTraces: traces, Seed: 7, Workers: workers, Window: win})
	if err != nil {
		return nil, 0, false, err
	}
	return out, rep.MaxAbsT, rep.Leak, nil
}

// CrossISATable runs the same kernels under the same policies on every
// registered ISA backend and cross-checks outputs and TVLA verdicts.
func CrossISATable(traces, workers int) ([]CrossISARow, error) {
	targets := make([]isa.Target, 0, 2)
	for _, name := range isa.Targets() {
		t, _ := isa.TargetByName(name)
		targets = append(targets, t)
	}
	pols := []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective}

	type workload struct {
		name string
		run  func(pol compiler.Policy, t isa.Target) ([]uint32, float64, bool, error)
	}
	wls := []workload{
		{"des", func(pol compiler.Policy, t isa.Target) ([]uint32, float64, bool, error) {
			return crossISADES(pol, t, traces, workers)
		}},
		{"tea", func(pol compiler.Policy, t isa.Target) ([]uint32, float64, bool, error) {
			return crossISAKernel(kernels.TEA(), pol, t, traces, workers)
		}},
	}

	var rows []CrossISARow
	for _, wl := range wls {
		for _, pol := range pols {
			row := CrossISARow{Workload: wl.name, Policy: pol, Traces: traces,
				OutputsMatch: true, VerdictsMatch: true}
			var refOut []uint32
			for i, t := range targets {
				out, maxT, leak, err := wl.run(pol, t)
				if err != nil {
					return nil, err
				}
				row.ISAs = append(row.ISAs, t.Name())
				row.MaxAbsT = append(row.MaxAbsT, maxT)
				row.Leak = append(row.Leak, leak)
				if i == 0 {
					refOut = out
					continue
				}
				if len(out) != len(refOut) {
					row.OutputsMatch = false
				} else {
					for j := range out {
						if out[j] != refOut[j] {
							row.OutputsMatch = false
							break
						}
					}
				}
				if leak != row.Leak[0] {
					row.VerdictsMatch = false
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// AblationResult captures one design-choice ablation: whether the key still
// leaks and what the run cost.
type AblationResult struct {
	Name    string
	Leaks   bool
	MaxAbs  float64 // peak |differential| pre-output, pJ
	TotalUJ float64
}

// ablationDiff measures the pre-output differential of two keys under a
// machine configuration.
func ablationDiff(name string, opt compiler.Options, cfg energy.Config) (*AblationResult, error) {
	m, err := desprog.NewFull(opt, cfg)
	if err != nil {
		return nil, err
	}
	traces, _, err := m.TraceBatch(
		[]desprog.Input{{Key: DefaultKey, Plaintext: DefaultPlain}, {Key: DefaultKeyBit1, Plaintext: DefaultPlain}},
		sim.Options{})
	if err != nil {
		return nil, err
	}
	t1, t2 := traces[0], traces[1]
	d, err := trace.Diff(t1.Totals, t2.Totals)
	if err != nil {
		return nil, err
	}
	entry, err := m.EntryPC(desprog.FuncOutputPermutation)
	if err != nil {
		return nil, err
	}
	end := len(d)
	for i, pc := range t1.PCs {
		if pc == entry {
			end = i
			break
		}
	}
	st := trace.Summarize(d[:end])
	var total float64
	for _, v := range t1.Totals {
		total += v
	}
	return &AblationResult{
		Name:    name,
		Leaks:   st.MaxAbs > 1e-9,
		MaxAbs:  st.MaxAbs,
		TotalUJ: total / 1e6,
	}, nil
}

// Ablations runs the DESIGN.md §6 ablations and returns one row each:
//
//  1. selective (the paper's design — must not leak)
//  2. seeds-only (no forward slicing — leaks through derived values)
//  3. no-precharge (dual rail without precharging — leaks transitions)
//  4. no-clock-gating (normal ops pay the complementary rail — no leak,
//     but costs approach full dual rail)
//  5. no-secure-indexing (S-box offsets unmasked — leaks at table lookups)
//  6. inter-wire-coupling (the paper's stated limitation — leaks even
//     under full masking)
func Ablations() ([]*AblationResult, error) {
	sel := compiler.Options{Policy: compiler.PolicySelective}
	base := energy.DefaultConfig()

	noPrecharge := base
	noPrecharge.DualRailPrecharge = false
	noGating := base
	noGating.ClockGating = false
	coupling := base
	coupling.InterWireCoupling = true

	rows := []struct {
		name string
		opt  compiler.Options
		cfg  energy.Config
	}{
		{"selective (paper design)", sel, base},
		{"seeds-only (no forward slicing)", compiler.Options{Policy: compiler.PolicySeedsOnly}, base},
		{"no-precharge dual rail", sel, noPrecharge},
		{"no clock gating", sel, noGating},
		{"no secure indexing", compiler.Options{Policy: compiler.PolicySelective, DisableSecureIndexing: true}, base},
		{"inter-wire coupling", sel, coupling},
	}
	// Each ablation is an independent compile-and-measure; fan the grid out
	// across the worker pool, rows staying in declaration order.
	out := make([]*AblationResult, len(rows))
	err := sim.ForEach(len(rows), 0, func(i int) error {
		res, err := ablationDiff(rows[i].name, rows[i].opt, rows[i].cfg)
		out[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll executes every experiment and writes a formatted report — the
// content recorded in EXPERIMENTS.md. dpaTraces <= 0 selects the full 256.
func RunAll(w io.Writer, dpaTraces int) error {
	p := func(format string, args ...interface{}) { fmt.Fprintf(w, format+"\n", args...) }

	p("== Figure 6: energy profile of one unmasked encryption ==")
	f6, err := Figure6(DefaultKey, DefaultPlain, 100)
	if err != nil {
		return err
	}
	p("cycles=%d total=%.1f uJ buckets=%d (width %d)", f6.Cycles, f6.TotalUJ, len(f6.Series), f6.BucketWidth)
	p("rounds visible: %d round starts; SPA period=%d buckets strength=%.2f (~%d rounds)",
		len(f6.RoundStarts), f6.SPA.Period, f6.SPA.Strength, f6.SPA.Rounds)

	p("\n== Figure 7: key-bit-1 differential, round 1, original ==")
	f7, err := Figure7()
	if err != nil {
		return err
	}
	p("window=[%d,%d) max|diff|=%.2f pJ nonzero cycles=%d/%d",
		f7.Window.Start, f7.Window.End, f7.Stats.MaxAbs, f7.Stats.NonZeroes, f7.Stats.N)

	p("\n== Figure 8: two-key differential before masking (round 1) ==")
	f8, err := Figure8(DefaultKey, DefaultKeyBit1, DefaultPlain)
	if err != nil {
		return err
	}
	p("max|diff|=%.2f pJ rms=%.3f flat=%v", f8.Stats.MaxAbs, f8.Stats.RMS, f8.Flat)

	p("\n== Figure 9: two-key differential after masking (round 1) ==")
	f9, err := Figure9(DefaultKey, DefaultKeyBit1, DefaultPlain)
	if err != nil {
		return err
	}
	p("max|diff|=%.6f pJ flat=%v", f9.Stats.MaxAbs, f9.Flat)

	p("\n== Figure 10: two-plaintext differential before masking ==")
	f10, err := Figure10(DefaultKey, DefaultPlain, DefaultPlain2)
	if err != nil {
		return err
	}
	p("max|diff|=%.2f pJ flat=%v", f10.Stats.MaxAbs, f10.Flat)

	p("\n== Figure 11: two-plaintext differential after masking ==")
	f11, err := Figure11(DefaultKey, DefaultPlain, DefaultPlain2)
	if err != nil {
		return err
	}
	p("initial permutation: max|diff|=%.2f pJ flat=%v (insecure region, differences expected)",
		f11.IP.Stats.MaxAbs, f11.IP.Flat)
	p("round 1:             max|diff|=%.6f pJ flat=%v (masked region)",
		f11.Round1.Stats.MaxAbs, f11.Round1.Flat)

	p("\n== Figure 12: masking overhead during 1st key permutation ==")
	f12, err := Figure12(DefaultKey, DefaultPlain)
	if err != nil {
		return err
	}
	p("window=[%d,%d) baseline=%.1f pJ/cyc overhead=%.1f pJ/cyc (paper: ~45 over ~165)",
		f12.Window.Start, f12.Window.End, f12.BaselinePJ, f12.MeanOverheadPJ)

	p("\n== Table (sec 4.3): total energy per protection policy ==")
	tbl, err := TableTotals(DefaultKey, DefaultPlain)
	if err != nil {
		return err
	}
	p("%-16s %10s %12s %10s %14s", "policy", "total uJ", "avg pJ/cyc", "paper uJ", "secure insts")
	for _, row := range tbl.Report.Rows {
		p("%-16s %10.2f %12.1f %10.1f %8d/%d", row.Policy, row.TotalUJ, row.AvgPJCycle,
			tbl.PaperUJ[row.Policy], row.SecureInst, row.Insts)
	}
	p("headline: selective avoids %.1f%% of the full dual-rail overhead (paper: 83%%)",
		100*tbl.HeadlineSavings())

	p("\n== Optimization ablation: the taint-sound pass pipeline (-O) ==")
	ot, err := OptimizationTable(DefaultKey, DefaultPlain)
	if err != nil {
		return err
	}
	p("%-16s %7s %7s %9s %9s %9s %9s", "policy", "instrs", "-O", "cycles", "-O", "uJ", "-O")
	for _, row := range ot {
		p("%-16s %7d %7d %9d %9d %9.2f %9.2f", row.Policy,
			row.Instrs, row.InstrsOpt, row.Cycles, row.CyclesOpt, row.EnergyUJ, row.EnergyUJOpt)
	}

	p("\n== Figure 4: selective code generation (left-side loop) ==")
	f4, err := Figure4CodeGen()
	if err != nil {
		return err
	}
	p("secured %d/%d loads, %d/%d stores; forward slice: %s",
		f4.Report.SecureLoads, f4.Report.TotalLoads,
		f4.Report.SecureStores, f4.Report.TotalStores,
		strings.Join(f4.Report.Tainted, ", "))

	p("\n== DPA attack (Kocher [7] / Goubin-Patarin [5] methodology) ==")
	att, err := DPAAttack(DefaultKey, dpaTraces)
	if err != nil {
		return err
	}
	p("traces=%d", att.NumTraces)
	p("unmasked: recovered %d/8 first-round sub-key chunks", att.RecoveredUnmasked)
	for _, r := range att.Unmasked {
		p("  box %d: guess=%2d truth=%2d peak=%.2f margin=%.2f", r.Box, r.Best.Guess,
			des.SubkeySixBits(DefaultKey, r.Box), r.Best.Peak, r.Margin())
	}
	p("masked:   recovered %d/8 (max differential peak %.6f pJ)", att.RecoveredMasked, att.MaskedPeak)
	p("CPA (Hamming-weight correlation): unmasked %d/8, masked %d/8 (max |corr| %.6f)",
		att.CPARecoveredUnmasked, att.CPARecoveredMasked, att.CPAMaskedPeak)
	if att.FullKeyRecovered {
		p("full 56-bit key recovered from the unmasked system: %016X", att.RecoveredKey)
	} else {
		p("full key recovery incomplete (needs all 8 chunks; increase -traces)")
	}

	p("\n== Generality: the same compiler masking other ciphers ==")
	wl, err := Workloads()
	if err != nil {
		return err
	}
	p("%-8s %10s %12s %14s %14s %12s", "workload", "cycles", "none uJ", "selective uJ", "all-secure uJ", "masked flat")
	for _, row := range wl {
		p("%-8s %10d %12.2f %14.2f %14.2f %12v", row.Name, row.Cycles,
			row.UJ[compiler.PolicyNone], row.UJ[compiler.PolicySelective],
			row.UJ[compiler.PolicyAllSecure], row.MaskedFlat)
	}

	p("\n== TVLA: fixed-vs-random Welch t-test (streaming engine) ==")
	tv, err := TVLATable(32, 0)
	if err != nil {
		return err
	}
	p("%-8s %-22s %5s %6s %8s %14s %6s %12s", "workload", "protection", "stat", "order", "traces", "max |t|", "leak", "key recovery")
	for _, row := range tv {
		prot := row.Policy.String()
		if row.Shuffle {
			prot += "+shuffle"
		}
		rec := "-"
		if row.Stat == "cpa" {
			rec = fmt.Sprintf("%d/8 key=%v", row.Recovered, row.KeyOK)
		}
		p("%-8s %-22s %5s %6d %8d %14.2f %6v %12s",
			row.Workload, prot, row.Stat, row.Order, row.Traces, row.MaxAbsT, row.Leak, rec)
	}
	p("threshold |t| = %.1f; secret varies between populations, window = masked region", leakstat.DefaultThreshold)
	p("cpa rows attack round 1 of the build named under protection; verdicts at these small")
	p("trace counts are indicative — the pinned operating points live in the experiments tests")

	p("\n== Cross-ISA: same source, same policy, every backend ==")
	ci, err := CrossISATable(32, 0)
	if err != nil {
		return err
	}
	p("%-8s %-16s %8s  %-24s %-12s %8s %8s", "workload", "policy", "traces", "max |t| per ISA", "leak per ISA", "outputs", "verdicts")
	for _, row := range ci {
		var ts, ls []string
		for i := range row.ISAs {
			ts = append(ts, fmt.Sprintf("%s=%.2f", row.ISAs[i], row.MaxAbsT[i]))
			ls = append(ls, fmt.Sprintf("%v", row.Leak[i]))
		}
		p("%-8s %-16s %8d  %-24s %-12s %8v %8v", row.Workload, row.Policy, row.Traces,
			strings.Join(ts, " "), strings.Join(ls, "/"), row.OutputsMatch, row.VerdictsMatch)
		if !row.OutputsMatch || !row.VerdictsMatch {
			return fmt.Errorf("experiments: cross-ISA disagreement for %s/%s", row.Workload, row.Policy)
		}
	}

	p("\n== Leak verification (dynamic shadow taint, energy-model independent) ==")
	lv, err := VerifyLeaks()
	if err != nil {
		return err
	}
	p("%-16s %28s %22s", "policy", "leak sites outside declass", "declassified sites")
	for _, row := range lv {
		p("%-16s %28d %22d", row.Policy, row.SitesOutsideDeclass, row.SitesInDeclass)
	}

	p("\n== Component breakdown (SimplePower-style) ==")
	comps, err := ComponentBreakdown(DefaultKey, DefaultPlain)
	if err != nil {
		return err
	}
	names := []string{"clock", "fetch", "decode", "regfile", "alu", "opbus", "resultbus", "pipereg", "membus", "memarray", "complementary"}
	header := fmt.Sprintf("%-12s %8s", "policy", "total")
	for _, n := range names {
		header += fmt.Sprintf(" %9s", n)
	}
	p("%s", header)
	for _, row := range comps {
		line := fmt.Sprintf("%-12s %7.2f", row.Policy, row.Total)
		for _, n := range names {
			line += fmt.Sprintf(" %9.2f", row.ByComp[n])
		}
		p("%s", line)
	}

	p("\n== Peak per-cycle power (GSM constraint, paper sec 2) ==")
	peaks, err := PeakPowerSweep(DefaultKey, DefaultPlain)
	if err != nil {
		return err
	}
	p("%-16s %12s %12s", "policy", "peak pJ/cyc", "avg pJ/cyc")
	for _, row := range peaks {
		p("%-16s %12.1f %12.1f", row.Policy, row.PeakPJ, row.AvgPJ)
	}

	p("\n== Ablations (DESIGN.md sec 6) ==")
	abl, err := Ablations()
	if err != nil {
		return err
	}
	p("%-34s %6s %14s %10s", "variant", "leaks", "max|diff| pJ", "total uJ")
	for _, a := range abl {
		p("%-34s %6v %14.3f %10.2f", a.Name, a.Leaks, a.MaxAbs, a.TotalUJ)
	}
	return nil
}

// LeakVerification runs the independent dynamic-taint checker on the DES
// program and summarises where insecure instructions touched secrets.
type LeakVerification struct {
	Policy compiler.Policy
	// SitesOutsideDeclass counts leaking instruction addresses outside the
	// output permutation (the declassification region) — must be zero for
	// a sound masking policy.
	SitesOutsideDeclass int
	// SitesInDeclass counts the expected public() leaks.
	SitesInDeclass int
	Insts          uint64
}

// VerifyLeaks checks the DES program under each policy with shadow-taint
// execution (package leakcheck) — the energy-model-independent soundness
// check of the masking.
func VerifyLeaks() ([]LeakVerification, error) {
	pols := compiler.Policies()
	machines := make([]*desprog.Machine, len(pols))
	if err := sim.ForEach(len(pols), 0, func(i int) error {
		m, err := desprog.New(pols[i])
		machines[i] = m
		return err
	}); err != nil {
		return nil, err
	}
	jobs := make([]leakcheck.CheckJob, len(pols))
	for i, m := range machines {
		prog := m.Res.Program
		keyAddr := prog.Symbols[compiler.GlobalLabel("key")]
		jobs[i] = leakcheck.CheckJob{
			Prog: prog,
			Setup: func(c *leakcheck.Checker) error {
				for j := 0; j < 64; j++ {
					if err := c.SetWord(keyAddr+uint32(4*j), uint32(j&1), true); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}
	reports, err := leakcheck.RunBatch(jobs, 0)
	if err != nil {
		return nil, err
	}
	rows := make([]LeakVerification, len(pols))
	for i, rep := range reports {
		prog := machines[i].Res.Program
		lo := prog.Symbols["f_output_permutation"]
		hi := prog.Symbols["f_main"]
		outside := rep.LeaksOutsideRegion(lo, hi)
		rows[i] = LeakVerification{
			Policy:              pols[i],
			SitesOutsideDeclass: len(outside),
			SitesInDeclass:      len(rep.Leaks) - len(outside),
			Insts:               rep.Insts,
		}
	}
	return rows, nil
}

// ComponentRow is the per-component energy split of one policy's run — the
// SimplePower-style breakdown showing where the dual-rail premium lands.
type ComponentRow struct {
	Policy compiler.Policy
	Total  float64 // µJ
	ByComp map[string]float64
}

// ComponentBreakdown runs DES under each comparison policy and splits the
// energy by processor component.
func ComponentBreakdown(key, plaintext uint64) ([]ComponentRow, error) {
	pols := []compiler.Policy{
		compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure,
	}
	rows := make([]ComponentRow, len(pols))
	err := sim.ForEach(len(pols), 0, func(i int) error {
		m, err := desprog.New(pols[i])
		if err != nil {
			return err
		}
		_, stats, _, err := m.Encrypt(key, plaintext, 0)
		if err != nil {
			return err
		}
		row := ComponentRow{Policy: pols[i], Total: stats.Energy.Total / 1e6, ByComp: map[string]float64{}}
		for c := energy.Component(0); c < energy.NumComponents; c++ {
			row.ByComp[c.String()] = stats.Energy.By[c] / 1e6
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PeakPower reports the worst single-cycle energy of a run — the paper's §2
// GSM constraint ("specific constraints on maximum power are imposed by the
// GSM specification"): masking must respect not just the energy budget but
// the peak draw.
type PeakPower struct {
	Policy compiler.Policy
	PeakPJ float64
	AvgPJ  float64
}

// PeakPowerSweep measures the per-cycle peak for each policy. The peak is
// tracked by the session's energy meter probe, so no extra instrumentation is
// attached.
func PeakPowerSweep(key, plaintext uint64) ([]PeakPower, error) {
	pols := compiler.Policies()
	rows := make([]PeakPower, len(pols))
	// One machine (and session) per policy, so the sweep parallelises
	// without shared state.
	err := sim.ForEach(len(pols), 0, func(i int) error {
		m, err := desprog.New(pols[i])
		if err != nil {
			return err
		}
		_, stats, _, err := m.Encrypt(key, plaintext, 0)
		if err != nil {
			return err
		}
		rows[i] = PeakPower{Policy: pols[i], PeakPJ: stats.PeakPJ, AvgPJ: stats.AvgPJPerCycle()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
