package minic

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("secure int key[64]; // c\n/* block */ x = a ^ 0x1F;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{
		TokSecure, TokInt, TokIdent, TokLBracket, TokNumber, TokRBracket, TokSemi,
		TokIdent, TokAssign, TokIdent, TokCaret, TokNumber, TokSemi, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[4].Val != 64 || toks[11].Val != 0x1f {
		t.Errorf("numbers = %d, %d", toks[4].Val, toks[11].Val)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("<< >> <= >= == != < > = ! ~ & | ^ + - *")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokShl, TokShr, TokLe, TokGe, TokEq, TokNe, TokLt, TokGt,
		TokAssign, TokNot, TokTilde, TokAmp, TokPipe, TokCaret,
		TokPlus, TokMinus, TokStar, TokEOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("a @ b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := LexAll("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestParseGlobals(t *testing.T) {
	f, err := Parse(`
		secure int key[64];
		int tab[4] = { 1, 2, -3, 0x10 };
		int x = 5;
		int a, b[2];
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 5 {
		t.Fatalf("globals = %d, want 5", len(f.Globals))
	}
	key := f.FindGlobal("key")
	if key == nil || !key.Secure || !key.IsArray || key.ArrayLen != 64 {
		t.Errorf("key = %+v", key)
	}
	tab := f.FindGlobal("tab")
	if tab == nil || len(tab.Init) != 4 || tab.Init[2] != -3 || tab.Init[3] != 16 {
		t.Errorf("tab = %+v", tab)
	}
	x := f.FindGlobal("x")
	if x == nil || x.IsArray || len(x.Init) != 1 || x.Init[0] != 5 {
		t.Errorf("x = %+v", x)
	}
	if f.FindGlobal("a") == nil || f.FindGlobal("b") == nil {
		t.Error("comma declaration lost a variable")
	}
	if !f.FindGlobal("b").IsArray {
		t.Error("b should be an array")
	}
}

func TestParseFunction(t *testing.T) {
	f, err := Parse(`
		int add(int a, int b) {
			return a + b;
		}
		void main() {
			int i;
			i = add(1, 2);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	add := f.FindFunc("add")
	if add == nil || !add.ReturnsInt || len(add.Params) != 2 {
		t.Fatalf("add = %+v", add)
	}
	main := f.FindFunc("main")
	if main == nil || main.ReturnsInt {
		t.Fatalf("main = %+v", main)
	}
	if len(main.Body.Stmts) != 2 {
		t.Fatalf("main body = %d statements", len(main.Body.Stmts))
	}
	if _, ok := main.Body.Stmts[0].(*DeclStmt); !ok {
		t.Error("first statement should be a declaration")
	}
	as, ok := main.Body.Stmts[1].(*AssignStmt)
	if !ok {
		t.Fatal("second statement should be an assignment")
	}
	if _, ok := as.RHS.(*CallExpr); !ok {
		t.Error("rhs should be a call")
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("void main() { x = 1 + 2 * 3 ^ 4; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	// ^ binds loosest: (1 + (2*3)) ^ 4
	top := as.RHS.(*BinaryExpr)
	if top.Op != OpXor {
		t.Fatalf("top op = %v, want ^", top.Op)
	}
	add := top.X.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("left op = %v, want +", add.Op)
	}
	mul := add.Y.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("inner op = %v, want *", mul.Op)
	}
}

func TestParseShiftPrecedence(t *testing.T) {
	f, err := Parse("void main() { x = a << 2 + 1; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	top := as.RHS.(*BinaryExpr)
	// + binds tighter than <<: a << (2+1)
	if top.Op != OpShl {
		t.Fatalf("top = %v", top.Op)
	}
	if y, ok := top.Y.(*BinaryExpr); !ok || y.Op != OpAdd {
		t.Fatal("shift rhs should be the addition")
	}
}

func TestParseControlFlow(t *testing.T) {
	f, err := Parse(`
		void main() {
			int i;
			for (i = 0; i < 32; i = i + 1) {
				L[i] = R[i];
			}
			while (i > 0) { i = i - 1; }
			if (i == 0) { i = 1; } else if (i == 1) { i = 2; } else { i = 3; }
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Funcs[0].Body.Stmts
	fs, ok := body[1].(*ForStmt)
	if !ok || fs.Init == nil || fs.Cond == nil || fs.Post == nil {
		t.Fatalf("for = %+v", body[1])
	}
	if as, ok := fs.Body.Stmts[0].(*AssignStmt); !ok {
		t.Error("for body should assign")
	} else if ix, ok := as.LHS.(*IndexExpr); !ok || ix.Name != "L" {
		t.Errorf("lhs = %+v", as.LHS)
	}
	if _, ok := body[2].(*WhileStmt); !ok {
		t.Error("missing while")
	}
	is, ok := body[3].(*IfStmt)
	if !ok || is.Else == nil {
		t.Fatal("missing if/else")
	}
	if _, ok := is.Else.Stmts[0].(*IfStmt); !ok {
		t.Error("else-if not chained")
	}
}

func TestParseUnary(t *testing.T) {
	f, err := Parse("void main() { x = -a + ~b; y = !c; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	bin := as.RHS.(*BinaryExpr)
	if u, ok := bin.X.(*UnaryExpr); !ok || u.Op != OpNeg {
		t.Error("missing negation")
	}
	if u, ok := bin.Y.(*UnaryExpr); !ok || u.Op != OpInv {
		t.Error("missing bitwise not")
	}
}

func TestParseSecureLocalAndParam(t *testing.T) {
	f, err := Parse(`
		void g(secure int s, int t) {
			secure int local;
			local = s;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Funcs[0]
	if !g.Params[0].Secure || g.Params[1].Secure {
		t.Error("param secure flags wrong")
	}
	d := g.Body.Stmts[0].(*DeclStmt)
	if !d.Decl.Secure {
		t.Error("local secure flag lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"secure func", "secure int f() { }", "functions cannot be declared secure"},
		{"void var", "void x;", "variables must have type int"},
		{"too many params", "void f(int a, int b, int c, int d, int e) { }", "at most 4"},
		{"redeclared func", "void f() { } void f() { }", "redeclared"},
		{"redeclared global", "int x; int x;", "redeclared"},
		{"bad lhs", "void main() { 1 = 2; }", "left side of assignment"},
		{"bare expr", "void main() { a + b; }", "must be a call or assignment"},
		{"unterminated block", "void main() { ", "unterminated block"},
		{"array len", "int a[0];", "array length"},
		{"too many inits", "int a[2] = {1,2,3};", "initializers"},
		{"for init", "void main() { for (f(); 1; ) { } }", "for-init must be an assignment"},
		{"missing semi", "void main() { x = 1 }", "expected ';'"},
		{"bad expr", "void main() { x = ; }", "expected expression"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("void main() {\n  x = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "2:") {
		t.Errorf("error %q should carry line 2", err)
	}
}

func TestBinOpString(t *testing.T) {
	if OpXor.String() != "^" || OpShl.String() != "<<" {
		t.Error("operator names wrong")
	}
}

func TestVoidParamList(t *testing.T) {
	f, err := Parse("void main(void) { }")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs[0].Params) != 0 {
		t.Error("void parameter list should be empty")
	}
}

func TestLogicalShiftRight(t *testing.T) {
	f, err := Parse("void main() { x = a >>> 5; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	bin := as.RHS.(*BinaryExpr)
	if bin.Op != OpShrU {
		t.Fatalf("op = %v, want >>>", bin.Op)
	}
	// >> followed by > must still lex as shift + compare.
	toks, err := LexAll("a >> b > c >>> d")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokIdent, TokShr, TokIdent, TokGt, TokIdent, TokShrU, TokIdent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}
