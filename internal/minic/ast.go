package minic

// File is a parsed translation unit.
type File struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// FindFunc returns the function with the given name, or nil.
func (f *File) FindFunc(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// FindGlobal returns the global with the given name, or nil.
func (f *File) FindGlobal(name string) *VarDecl {
	for _, g := range f.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// VarDecl declares a scalar or array variable, global or local.
type VarDecl struct {
	Pos    Pos
	Name   string
	Secure bool // declared with the `secure` qualifier (a taint seed)
	// ArrayLen is the element count for arrays, or 0 for scalars.
	ArrayLen int
	IsArray  bool
	// Init holds the initializer: one value for scalars, up to ArrayLen
	// values for arrays (the rest are zero).
	Init []int64
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos        Pos
	Name       string
	ReturnsInt bool // false for void
	Params     []*VarDecl
	Body       *Block
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns RHS to an lvalue.
type AssignStmt struct {
	Pos Pos
	LHS Expr // *VarRef or *IndexExpr
	RHS Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// ForStmt is a C-style for loop with assignment init/post clauses.
type ForStmt struct {
	Pos  Pos
	Init *AssignStmt // may be nil
	Cond Expr        // may be nil (infinite)
	Post *AssignStmt // may be nil
	Body *Block
	// Shuffle marks a `shuffle for` loop: the programmer asserts the
	// iterations are independent, allowing the compiler (under the shuffling
	// countermeasure) to visit them in a per-execution random order. Without
	// that option the annotation is inert and lowering is unchanged.
	Shuffle bool
}

// ReturnStmt returns from a function, with optional value.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void return
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*Block) stmtNode()      {}
func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// Position returns the source position of the expression.
	Position() Pos
}

// NumLit is an integer literal.
type NumLit struct {
	Pos Pos
	Val int64
}

// VarRef references a scalar variable (or names an array in an IndexExpr).
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr is arr[index].
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpXor
	OpAnd
	OpOr
	OpShl
	OpShr
	OpShrU // logical (unsigned) right shift
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpXor: "^", OpAnd: "&", OpOr: "|",
	OpShl: "<<", OpShr: ">>", OpShrU: ">>>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpEq: "==", OpNe: "!=",
}

// String renders the operator.
func (op BinOp) String() string { return binOpNames[op] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Pos  Pos
	Op   BinOp
	X, Y Expr
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // -
	OpNot             // ! (logical)
	OpInv             // ~ (bitwise)
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Pos Pos
	Op  UnOp
	X   Expr
}

// CallExpr calls a function.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (*NumLit) exprNode()     {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}

// Position implements Expr.
func (e *NumLit) Position() Pos     { return e.Pos }
func (e *VarRef) Position() Pos     { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
