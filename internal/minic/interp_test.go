package minic

import "testing"

func interpRun(t *testing.T, src string, pokes map[string][]uint32) *Interp {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp(f)
	for name, vals := range pokes {
		if err := in.SetGlobal(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInterpArithmetic(t *testing.T) {
	in := interpRun(t, `
		int out[6];
		void main() {
			int a; int b;
			a = 21; b = 3;
			out[0] = a + b * 2;
			out[1] = a ^ b;
			out[2] = (a << 2) | (a >>> 1);
			out[3] = -1 >> 31;
			out[4] = a < b;
			out[5] = !b + ~0;
		}
	`, nil)
	out, _ := in.Global("out")
	want := []uint32{27, 22, 84 | 10, 0xffffffff, 0, 0xffffffff}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %#x, want %#x", i, out[i], w)
		}
	}
}

func TestInterpControlFlowAndCalls(t *testing.T) {
	in := interpRun(t, `
		int out[3];
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		void main() {
			int i; int sum;
			sum = 0;
			for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
			out[0] = sum;
			out[1] = fib(10);
			i = 0;
			while (i < 7) { i = i + 2; }
			out[2] = i;
		}
	`, nil)
	out, _ := in.Global("out")
	if out[0] != 55 || out[1] != 55 || out[2] != 8 {
		t.Errorf("out = %v", out)
	}
}

func TestInterpGlobalsAndPublic(t *testing.T) {
	in := interpRun(t, `
		secure int key[2];
		int tab[4] = {10, 20, 30, 40};
		int out;
		void main() {
			out = public(tab[key[0] & 3] + key[1]);
		}
	`, map[string][]uint32{"key": {2, 5}})
	out, _ := in.Global("out")
	if out[0] != 35 {
		t.Errorf("out = %d, want 35", out[0])
	}
}

func TestInterpErrors(t *testing.T) {
	f, err := Parse(`
		int a[2];
		void main() { a[5] = 1; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewInterp(f).Run(); err == nil {
		t.Error("out-of-range index should fail")
	}
	f2, _ := Parse("int x; void main() { while (1) { x = x + 1; } }")
	in2 := NewInterp(f2)
	in2.MaxSteps = 1000
	if err := in2.Run(); err == nil {
		t.Error("runaway loop should hit MaxSteps")
	}
	f3, _ := Parse("int x;")
	if err := NewInterp(f3).Run(); err == nil {
		t.Error("missing main should fail")
	}
	if err := NewInterp(f2).SetGlobal("nope", nil); err == nil {
		t.Error("unknown global accepted")
	}
	if _, err := NewInterp(f2).Global("nope"); err == nil {
		t.Error("unknown global read accepted")
	}
}
