package minic

import (
	"fmt"
	"strconv"
)

// Lexer tokenises MiniC source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func isLetter(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// skipSpace consumes whitespace and comments.
func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{start, "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: p}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: p}, nil
	case isDigit(c):
		start := l.off
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, &Error{p, fmt.Sprintf("bad number %q", text)}
		}
		return Token{Kind: TokNumber, Text: text, Val: v, Pos: p}, nil
	}
	l.advance()
	two := func(second byte, twoKind, oneKind TokenKind) Token {
		if l.peek() == second {
			l.advance()
			return Token{Kind: twoKind, Pos: p}
		}
		return Token{Kind: oneKind, Pos: p}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: p}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: p}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: p}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Pos: p}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: p}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: p}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: p}, nil
	case '*':
		return Token{Kind: TokStar, Pos: p}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: p}, nil
	case '&':
		return Token{Kind: TokAmp, Pos: p}, nil
	case '|':
		return Token{Kind: TokPipe, Pos: p}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: p}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: TokShl, Pos: p}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			if l.peek() == '>' {
				l.advance()
				return Token{Kind: TokShrU, Pos: p}, nil
			}
			return Token{Kind: TokShr, Pos: p}, nil
		}
		return two('=', TokGe, TokGt), nil
	}
	return Token{}, &Error{p, fmt.Sprintf("unexpected character %q", string(c))}
}

// LexAll tokenises the entire source (testing convenience).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
