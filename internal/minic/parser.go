package minic

import "fmt"

// Parser builds the AST via recursive descent with precedence climbing.
type Parser struct {
	lex *Lexer
	tok Token
}

// Parse parses a complete translation unit.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.Kind != TokEOF {
		if err := p.parseTopLevel(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *Parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errorf(pos Pos, format string, args ...interface{}) error {
	return &Error{pos, fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, p.errorf(p.tok.Pos, "expected %v, found %v", k, p.tok.Kind)
	}
	t := p.tok
	return t, p.next()
}

// parseTopLevel handles `[secure] int name ...` (variable or function) and
// `void name(...)`.
func (p *Parser) parseTopLevel(f *File) error {
	secure := false
	if p.tok.Kind == TokSecure {
		secure = true
		if err := p.next(); err != nil {
			return err
		}
	}
	isVoid := false
	switch p.tok.Kind {
	case TokInt:
	case TokVoid:
		isVoid = true
	default:
		return p.errorf(p.tok.Pos, "expected 'int' or 'void', found %v", p.tok.Kind)
	}
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.tok.Kind == TokLParen {
		if secure {
			return p.errorf(name.Pos, "functions cannot be declared secure; annotate variables instead")
		}
		fn, err := p.parseFuncRest(name, !isVoid)
		if err != nil {
			return err
		}
		if f.FindFunc(fn.Name) != nil {
			return p.errorf(name.Pos, "function %q redeclared", fn.Name)
		}
		f.Funcs = append(f.Funcs, fn)
		return nil
	}
	if isVoid {
		return p.errorf(name.Pos, "variables must have type int")
	}
	for {
		d, err := p.parseVarRest(name, secure)
		if err != nil {
			return err
		}
		if f.FindGlobal(d.Name) != nil {
			return p.errorf(d.Pos, "global %q redeclared", d.Name)
		}
		f.Globals = append(f.Globals, d)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return err
		}
		name, err = p.expect(TokIdent)
		if err != nil {
			return err
		}
	}
	_, err = p.expect(TokSemi)
	return err
}

// parseVarRest parses the declarator after the name: optional [len] and
// optional initializer.
func (p *Parser) parseVarRest(name Token, secure bool) (*VarDecl, error) {
	d := &VarDecl{Pos: name.Pos, Name: name.Text, Secure: secure}
	if p.tok.Kind == TokLBracket {
		if err := p.next(); err != nil {
			return nil, err
		}
		n, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 || n.Val > 1<<20 {
			return nil, p.errorf(n.Pos, "array length %d out of range", n.Val)
		}
		d.IsArray = true
		d.ArrayLen = int(n.Val)
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind == TokAssign {
		if err := p.next(); err != nil {
			return nil, err
		}
		if d.IsArray {
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for p.tok.Kind != TokRBrace {
				v, err := p.parseConst()
				if err != nil {
					return nil, err
				}
				d.Init = append(d.Init, v)
				if p.tok.Kind != TokComma {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if len(d.Init) > d.ArrayLen {
				return nil, p.errorf(d.Pos, "%d initializers for array of %d", len(d.Init), d.ArrayLen)
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		} else {
			v, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			d.Init = []int64{v}
		}
	}
	return d, nil
}

// parseConst parses an optionally negated integer literal.
func (p *Parser) parseConst() (int64, error) {
	neg := false
	if p.tok.Kind == TokMinus {
		neg = true
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	n, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	if neg {
		return -n.Val, nil
	}
	return n.Val, nil
}

func (p *Parser) parseFuncRest(name Token, returnsInt bool) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: name.Pos, Name: name.Text, ReturnsInt: returnsInt}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if p.tok.Kind == TokVoid {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	for p.tok.Kind != TokRParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		secure := false
		if p.tok.Kind == TokSecure {
			secure = true
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, &VarDecl{Pos: pn.Pos, Name: pn.Text, Secure: secure})
	}
	if err := p.next(); err != nil { // consume )
		return nil, err
	}
	if len(fn.Params) > 4 {
		return nil, p.errorf(name.Pos, "function %q has %d parameters; the calling convention supports at most 4", fn.Name, len(fn.Params))
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokEOF {
			return nil, p.errorf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.next()
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokSecure, TokInt:
		secure := false
		if p.tok.Kind == TokSecure {
			secure = true
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokInt {
				return nil, p.errorf(p.tok.Pos, "expected 'int' after 'secure'")
			}
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d, err := p.parseVarRest(name, secure)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor(false)
	case TokShuffle:
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokFor {
			return nil, p.errorf(pos, "'shuffle' must be followed by 'for'")
		}
		return p.parseFor(true)
	case TokReturn:
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r := &ReturnStmt{Pos: pos}
		if p.tok.Kind != TokSemi {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return r, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses an assignment or a call expression statement
// (without the trailing semicolon, so it can serve as a for-clause).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	pos := p.tok.Pos
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokAssign {
		switch x.(type) {
		case *VarRef, *IndexExpr:
		default:
			return nil, p.errorf(pos, "left side of assignment must be a variable or array element")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, LHS: x, RHS: rhs}, nil
	}
	if _, ok := x.(*CallExpr); !ok {
		return nil, p.errorf(pos, "expression statement must be a call or assignment")
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.tok.Kind == TokElse {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokIf {
			inner, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = &Block{Pos: p.tok.Pos, Stmts: []Stmt{inner}}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor(shuffle bool) (Stmt, error) {
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: pos, Shuffle: shuffle}
	if p.tok.Kind != TokSemi {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		a, ok := init.(*AssignStmt)
		if !ok {
			return nil, p.errorf(pos, "for-init must be an assignment")
		}
		s.Init = a
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		a, ok := post.(*AssignStmt)
		if !ok {
			return nil, p.errorf(pos, "for-post must be an assignment")
		}
		s.Post = a
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Operator precedence, loosest first.
var precedence = map[TokenKind]int{
	TokPipe:  1,
	TokCaret: 2,
	TokAmp:   3,
	TokEq:    4, TokNe: 4,
	TokLt: 5, TokLe: 5, TokGt: 5, TokGe: 5,
	TokShl: 6, TokShr: 6, TokShrU: 6,
	TokPlus: 7, TokMinus: 7,
	TokStar: 8,
}

var tokToBinOp = map[TokenKind]BinOp{
	TokPipe: OpOr, TokCaret: OpXor, TokAmp: OpAnd,
	TokEq: OpEq, TokNe: OpNe,
	TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
	TokShl: OpShl, TokShr: OpShr, TokShrU: OpShrU,
	TokPlus: OpAdd, TokMinus: OpSub, TokStar: OpMul,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := precedence[p.tok.Kind]
		if !ok || prec < minPrec {
			return x, nil
		}
		op := tokToBinOp[p.tok.Kind]
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		y, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: pos, Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: OpNeg, X: x}, nil
	case TokNot:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: OpNot, X: x}, nil
	case TokTilde:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: pos, Op: OpInv, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		e := &NumLit{Pos: p.tok.Pos, Val: p.tok.Val}
		return e, p.next()
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		name := p.tok
		if err := p.next(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokLBracket:
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: name.Pos, Name: name.Text, Index: idx}, nil
		case TokLParen:
			if err := p.next(); err != nil {
				return nil, err
			}
			c := &CallExpr{Pos: name.Pos, Name: name.Text}
			for p.tok.Kind != TokRParen {
				if len(c.Args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
			}
			return c, p.next()
		}
		return &VarRef{Pos: name.Pos, Name: name.Text}, nil
	}
	return nil, p.errorf(p.tok.Pos, "expected expression, found %v", p.tok.Kind)
}
