// Package minic implements the front end of the masking compiler: a lexer,
// parser and AST for a small C dialect with the paper's `secure` storage
// qualifier, which annotates the critical variables (e.g. the DES key) whose
// forward slice the compiler must protect with secure instructions.
//
// The dialect covers what smart-card crypto kernels need: 32-bit ints,
// one-dimensional arrays with initializers, functions, for/while/if control
// flow, and C's integer operators.
package minic

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokInt
	TokVoid
	TokSecure
	TokIf
	TokElse
	TokWhile
	TokFor
	TokShuffle
	TokReturn

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokCaret    // ^
	TokAmp      // &
	TokPipe     // |
	TokShl      // <<
	TokShr      // >>
	TokShrU     // >>> (logical right shift)
	TokLt       // <
	TokGt       // >
	TokLe       // <=
	TokGe       // >=
	TokEq       // ==
	TokNe       // !=
	TokNot      // !
	TokTilde    // ~
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokInt: "'int'", TokVoid: "'void'", TokSecure: "'secure'",
	TokIf: "'if'", TokElse: "'else'", TokWhile: "'while'",
	TokFor: "'for'", TokShuffle: "'shuffle'", TokReturn: "'return'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','", TokSemi: "';'",
	TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokCaret: "'^'", TokAmp: "'&'", TokPipe: "'|'",
	TokShl: "'<<'", TokShr: "'>>'", TokShrU: "'>>>'", TokLt: "'<'", TokGt: "'>'",
	TokLe: "'<='", TokGe: "'>='", TokEq: "'=='", TokNe: "'!='",
	TokNot: "'!'", TokTilde: "'~'",
}

// String names the token kind for diagnostics.
func (k TokenKind) String() string {
	if n, ok := tokenNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token?%d", int(k))
}

var keywords = map[string]TokenKind{
	"int": TokInt, "void": TokVoid, "secure": TokSecure,
	"if": TokIf, "else": TokElse, "while": TokWhile,
	"for": TokFor, "shuffle": TokShuffle, "return": TokReturn,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // identifier or number text
	Val  int64  // numeric value for TokNumber
	Pos  Pos
}

// Error is a front-end diagnostic with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }
