package minic

import "fmt"

// Interp is a direct AST interpreter for MiniC with the simulated
// processor's 32-bit semantics. It exists as an independent third
// implementation of the language (beside the compiler+pipeline and the
// compiler+golden-model paths) so differential tests can catch bugs shared
// by the code generator and the ISA executors.
type Interp struct {
	file    *File
	globals map[string][]uint32
	steps   int
	// MaxSteps bounds execution (default 10M statements/expressions).
	MaxSteps int
}

// NewInterp prepares an interpreter with zero-initialised globals (array
// initializers applied).
func NewInterp(f *File) *Interp {
	in := &Interp{file: f, globals: map[string][]uint32{}, MaxSteps: 10_000_000}
	for _, g := range f.Globals {
		n := 1
		if g.IsArray {
			n = g.ArrayLen
		}
		vals := make([]uint32, n)
		for i, v := range g.Init {
			vals[i] = uint32(v)
		}
		in.globals[g.Name] = vals
	}
	return in
}

// SetGlobal pokes a global scalar or array prefix.
func (in *Interp) SetGlobal(name string, vals []uint32) error {
	g, ok := in.globals[name]
	if !ok {
		return fmt.Errorf("minic: no global %q", name)
	}
	if len(vals) > len(g) {
		return fmt.Errorf("minic: %d values for global %q of length %d", len(vals), name, len(g))
	}
	copy(g, vals)
	return nil
}

// Global reads a global's current contents.
func (in *Interp) Global(name string) ([]uint32, error) {
	g, ok := in.globals[name]
	if !ok {
		return nil, fmt.Errorf("minic: no global %q", name)
	}
	out := make([]uint32, len(g))
	copy(out, g)
	return out, nil
}

// frame is one function activation.
type frame struct {
	vars map[string][]uint32
}

// returnSignal unwinds a function body via panic/recover.
type returnSignal struct{ value uint32 }

type interpError struct{ err error }

// Run executes main to completion.
func (in *Interp) Run() (err error) {
	main := in.file.FindFunc("main")
	if main == nil {
		return fmt.Errorf("minic: no main function")
	}
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(interpError); ok {
				err = ie.err
				return
			}
			panic(r)
		}
	}()
	in.callFunc(main, nil)
	return nil
}

func (in *Interp) fail(pos Pos, format string, args ...interface{}) {
	panic(interpError{&Error{pos, fmt.Sprintf(format, args...)}})
}

func (in *Interp) tick(pos Pos) {
	in.steps++
	if in.steps > in.MaxSteps {
		in.fail(pos, "execution exceeded %d steps", in.MaxSteps)
	}
}

// callFunc runs fn and returns its result (0 for void).
func (in *Interp) callFunc(fn *FuncDecl, args []uint32) (ret uint32) {
	fr := &frame{vars: map[string][]uint32{}}
	for i, p := range fn.Params {
		fr.vars[p.Name] = []uint32{args[i]}
	}
	// Pre-declare locals so flat function scoping matches the compiler.
	var declare func(b *Block)
	declare = func(b *Block) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *DeclStmt:
				n := 1
				if st.Decl.IsArray {
					n = st.Decl.ArrayLen
				}
				fr.vars[st.Decl.Name] = make([]uint32, n)
			case *Block:
				declare(st)
			case *IfStmt:
				declare(st.Then)
				if st.Else != nil {
					declare(st.Else)
				}
			case *WhileStmt:
				declare(st.Body)
			case *ForStmt:
				declare(st.Body)
			}
		}
	}
	declare(fn.Body)

	defer func() {
		if r := recover(); r != nil {
			if rs, ok := r.(returnSignal); ok {
				ret = rs.value
				return
			}
			panic(r)
		}
	}()
	in.execBlock(fn, fr, fn.Body)
	return 0
}

func (in *Interp) execBlock(fn *FuncDecl, fr *frame, b *Block) {
	for _, s := range b.Stmts {
		in.execStmt(fn, fr, s)
	}
}

func (in *Interp) execStmt(fn *FuncDecl, fr *frame, s Stmt) {
	switch st := s.(type) {
	case *Block:
		in.execBlock(fn, fr, st)
	case *DeclStmt:
		in.tick(st.Decl.Pos)
		if !st.Decl.IsArray && len(st.Decl.Init) == 1 {
			fr.vars[st.Decl.Name][0] = uint32(st.Decl.Init[0])
		}
	case *AssignStmt:
		in.tick(st.Pos)
		val := in.eval(fn, fr, st.RHS)
		in.assign(fn, fr, st.LHS, val)
	case *IfStmt:
		in.tick(st.Pos)
		if in.eval(fn, fr, st.Cond) != 0 {
			in.execBlock(fn, fr, st.Then)
		} else if st.Else != nil {
			in.execBlock(fn, fr, st.Else)
		}
	case *WhileStmt:
		for {
			in.tick(st.Pos)
			if in.eval(fn, fr, st.Cond) == 0 {
				break
			}
			in.execBlock(fn, fr, st.Body)
		}
	case *ForStmt:
		if st.Init != nil {
			in.execStmt(fn, fr, st.Init)
		}
		for {
			in.tick(st.Pos)
			if st.Cond != nil && in.eval(fn, fr, st.Cond) == 0 {
				break
			}
			in.execBlock(fn, fr, st.Body)
			if st.Post != nil {
				in.execStmt(fn, fr, st.Post)
			}
		}
	case *ReturnStmt:
		var v uint32
		if st.Value != nil {
			v = in.eval(fn, fr, st.Value)
		}
		panic(returnSignal{v})
	case *ExprStmt:
		in.tick(st.Pos)
		in.eval(fn, fr, st.X)
	default:
		in.fail(Pos{}, "unknown statement %T", s)
	}
}

// slot resolves a variable to its storage.
func (in *Interp) slot(fn *FuncDecl, fr *frame, name string, pos Pos) []uint32 {
	if v, ok := fr.vars[name]; ok {
		return v
	}
	if v, ok := in.globals[name]; ok {
		return v
	}
	in.fail(pos, "undefined variable %q", name)
	return nil
}

func (in *Interp) assign(fn *FuncDecl, fr *frame, lhs Expr, val uint32) {
	switch lv := lhs.(type) {
	case *VarRef:
		in.slot(fn, fr, lv.Name, lv.Pos)[0] = val
	case *IndexExpr:
		arr := in.slot(fn, fr, lv.Name, lv.Pos)
		idx := in.eval(fn, fr, lv.Index)
		if int(idx) >= len(arr) {
			in.fail(lv.Pos, "index %d out of range for %q (len %d)", idx, lv.Name, len(arr))
		}
		arr[idx] = val
	default:
		in.fail(lhs.Position(), "invalid assignment target")
	}
}

func (in *Interp) eval(fn *FuncDecl, fr *frame, e Expr) uint32 {
	in.tick(e.Position())
	switch x := e.(type) {
	case *NumLit:
		return uint32(x.Val)
	case *VarRef:
		return in.slot(fn, fr, x.Name, x.Pos)[0]
	case *IndexExpr:
		arr := in.slot(fn, fr, x.Name, x.Pos)
		idx := in.eval(fn, fr, x.Index)
		if int(idx) >= len(arr) {
			in.fail(x.Pos, "index %d out of range for %q (len %d)", idx, x.Name, len(arr))
		}
		return arr[idx]
	case *UnaryExpr:
		v := in.eval(fn, fr, x.X)
		switch x.Op {
		case OpNeg:
			return -v
		case OpInv:
			return ^v
		case OpNot:
			if v == 0 {
				return 1
			}
			return 0
		}
	case *BinaryExpr:
		a := in.eval(fn, fr, x.X)
		b := in.eval(fn, fr, x.Y)
		boolTo := func(c bool) uint32 {
			if c {
				return 1
			}
			return 0
		}
		switch x.Op {
		case OpAdd:
			return a + b
		case OpSub:
			return a - b
		case OpMul:
			return a * b
		case OpXor:
			return a ^ b
		case OpAnd:
			return a & b
		case OpOr:
			return a | b
		case OpShl:
			return a << (b & 31)
		case OpShr:
			return uint32(int32(a) >> (b & 31))
		case OpShrU:
			return a >> (b & 31)
		case OpLt:
			return boolTo(int32(a) < int32(b))
		case OpLe:
			return boolTo(int32(a) <= int32(b))
		case OpGt:
			return boolTo(int32(a) > int32(b))
		case OpGe:
			return boolTo(int32(a) >= int32(b))
		case OpEq:
			return boolTo(a == b)
		case OpNe:
			return boolTo(a != b)
		}
	case *CallExpr:
		if x.Name == "public" {
			return in.eval(fn, fr, x.Args[0])
		}
		callee := in.file.FindFunc(x.Name)
		if callee == nil {
			in.fail(x.Pos, "undefined function %q", x.Name)
		}
		args := make([]uint32, len(x.Args))
		for i, a := range x.Args {
			args[i] = in.eval(fn, fr, a)
		}
		return in.callFunc(callee, args)
	}
	in.fail(e.Position(), "unknown expression %T", e)
	return 0
}
