package sim_test

// Gang-mode property tests: for every (gang width, worker count, policy,
// ISA) combination the batch scheduler must produce results bit-identical to
// scalar execution — pinned against the golden manifest where one exists and
// against a fresh scalar batch everywhere else — and the divergence corpus
// (data-dependent branches, faults, tight cycle budgets) must deopt back to
// exact scalar results rather than silently diverge.

import (
	"fmt"
	"testing"

	"desmask/internal/asm"
	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/sim"
)

// normalizeGang strips the accumulations gang mode deliberately omits
// (Stats.Energy, Stats.PeakPJ), so a scalar result can be compared
// field-for-field with a gang-mode result.
func normalizeGang(r sim.Result) sim.Result {
	r.Stats.Energy = energy.CycleEnergy{}
	r.Stats.PeakPJ = 0
	return r
}

// requireSameResult demands two results be bit-identical after gang
// normalization: completion, error, architectural registers, stats, memory
// read-outs, and the full per-cycle trace when captured.
func requireSameResult(t *testing.T, label string, got, want sim.Result) {
	t.Helper()
	got, want = normalizeGang(got), normalizeGang(want)
	if (got.Err == nil) != (want.Err == nil) ||
		(got.Err != nil && got.Err.Error() != want.Err.Error()) {
		t.Fatalf("%s: err = %v, want %v", label, got.Err, want.Err)
	}
	if got.Done != want.Done {
		t.Fatalf("%s: done = %v, want %v", label, got.Done, want.Done)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats = %+v, want %+v", label, got.Stats, want.Stats)
	}
	if got.Regs != want.Regs {
		t.Fatalf("%s: registers diverge: %v vs %v", label, got.Regs, want.Regs)
	}
	if len(got.Mem) != len(want.Mem) {
		t.Fatalf("%s: %d read-outs, want %d", label, len(got.Mem), len(want.Mem))
	}
	for i := range got.Mem {
		if len(got.Mem[i]) != len(want.Mem[i]) {
			t.Fatalf("%s: read %d has %d words, want %d", label, i, len(got.Mem[i]), len(want.Mem[i]))
		}
		for j := range got.Mem[i] {
			if got.Mem[i][j] != want.Mem[i][j] {
				t.Fatalf("%s: read %d word %d = %#x, want %#x", label, i, j, got.Mem[i][j], want.Mem[i][j])
			}
		}
	}
	if (got.Trace == nil) != (want.Trace == nil) {
		t.Fatalf("%s: trace presence %v vs %v", label, got.Trace != nil, want.Trace != nil)
	}
	if got.Trace != nil && traceHash(got.Trace) != traceHash(want.Trace) {
		t.Fatalf("%s: trace hash %s, want %s", label, traceHash(got.Trace), traceHash(want.Trace))
	}
}

// gangCombos is the (gang width, worker count) grid the properties sweep.
// Short mode keeps one cell per regime (scalar-degenerate, partial gang,
// full-width) so -race smoke stays fast.
func gangCombos(short bool) [][2]int {
	if short {
		return [][2]int{{1, 4}, {4, 1}, {16, 4}}
	}
	var combos [][2]int
	for _, g := range []int{1, 4, 16} {
		for _, w := range []int{1, 4, 16} {
			combos = append(combos, [2]int{g, w})
		}
	}
	return combos
}

// TestGangBatchMatchesGolden pins gang-scheduled DES batches to the golden
// manifest: for every policy and every (gang width, worker count) cell,
// every job's per-cycle trace digest, cycle count and instruction count must
// equal the scalar golden fixture exactly. Batches carry one extra job
// beyond the gang width so the leftover-singleton path is exercised too.
func TestGangBatchMatchesGolden(t *testing.T) {
	for _, policy := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure} {
		entry, ok := goldenEntry(t, "des", policy.String())
		if !ok {
			t.Skipf("golden manifest has no des/%s entry", policy)
		}
		m, err := desprog.New(policy)
		if err != nil {
			t.Fatal(err)
		}
		for _, gw := range gangCombos(testing.Short()) {
			g, w := gw[0], gw[1]
			t.Run(fmt.Sprintf("%s/gang%d/workers%d", policy, g, w), func(t *testing.T) {
				plaintexts := make([]uint64, g+1)
				for i := range plaintexts {
					plaintexts[i] = goldenPlaintext
				}
				before := m.Runner().GangRuns()
				results, err := m.EncryptBatch(goldenKey, plaintexts, 0, true, sim.Options{Workers: w, GangWidth: g})
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					if !r.Done {
						t.Fatalf("job %d did not complete", i)
					}
					if r.Stats.Cycles != entry.Cycles || r.Stats.Insts != entry.Insts || r.Stats.SecureInst != entry.SecureInst {
						t.Fatalf("job %d stats (%d cycles, %d insts, %d secure) diverge from golden (%d, %d, %d)",
							i, r.Stats.Cycles, r.Stats.Insts, r.Stats.SecureInst, entry.Cycles, entry.Insts, entry.SecureInst)
					}
					if got := traceHash(r.Trace); got != entry.TraceHash {
						t.Fatalf("job %d trace hash %s, want golden %s", i, got, entry.TraceHash)
					}
					// GangWidth <= 1 disables gangs entirely, so those batches
					// carry the scalar path's Energy accumulation.
					if g > 1 && (r.Stats.Energy != (energy.CycleEnergy{}) || r.Stats.PeakPJ != 0) {
						t.Fatalf("job %d carries Energy/PeakPJ in gang mode", i)
					}
				}
				if g > 1 && m.Runner().GangRuns() == before {
					t.Fatal("no job ran in lockstep despite GangWidth > 1")
				}
			})
		}
	}
}

// TestGangScalarIdentityAcrossISAs runs varied-plaintext DES batches through
// the gang scheduler and a plain scalar batch on both ISA backends under
// every policy, requiring field-for-field identical results (the rv32 axis
// has no golden manifest, so scalar execution is the reference).
func TestGangScalarIdentityAcrossISAs(t *testing.T) {
	plaintexts := []uint64{0x0123456789ABCDEF, 0, 0xFFFFFFFFFFFFFFFF, 0x5555AAAA5555AAAA}
	for _, isaName := range []string{"pisa", "rv32"} {
		target, ok := isa.TargetByName(isaName)
		if !ok {
			t.Fatalf("unknown target %q", isaName)
		}
		for _, policy := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure} {
			t.Run(isaName+"/"+policy.String(), func(t *testing.T) {
				m, err := desprog.NewFull(compiler.Options{Policy: policy, Target: target}, energy.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				scalar, err := m.EncryptBatch(goldenKey, plaintexts, 0, true, sim.Options{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				ganged, err := m.EncryptBatch(goldenKey, plaintexts, 0, true, sim.Options{Workers: 4, GangWidth: 4})
				if err != nil {
					t.Fatal(err)
				}
				for i := range scalar {
					requireSameResult(t, fmt.Sprintf("job %d", i), ganged[i], scalar[i])
				}
			})
		}
	}
}

// batchPair runs the same jobs as a scalar batch and a gang batch on fresh
// runners of the same program and requires identical results; it returns the
// gang runner for counter assertions.
func batchPair(t *testing.T, src string, jobs []sim.Job, opts sim.Options) *sim.Runner {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	scalarRunner := sim.NewRunner(p, energy.DefaultConfig())
	want, werr := scalarRunner.RunBatch(jobs, sim.Options{Workers: opts.Workers})
	gangRunner := sim.NewRunner(p, energy.DefaultConfig())
	got, gerr := gangRunner.RunBatch(jobs, opts)
	// A batch with faulting jobs reports a JobError on both paths; it must
	// name the same job and cause.
	if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
		t.Fatalf("batch error: gang %v, scalar %v", gerr, werr)
	}
	for i := range want {
		requireSameResult(t, fmt.Sprintf("job %d", i), got[i], want[i])
	}
	return gangRunner
}

// TestGangDivergentBranchesDeoptExactly is the sim-level branch-divergence
// corpus: lanes branch on their own poked data, so some peel off mid-gang.
// Every job — lockstep or replayed — must match the scalar batch exactly,
// and the deopt counter must show the peel actually happened.
func TestGangDivergentBranchesDeoptExactly(t *testing.T) {
	const src = `
		.data
in:	.word 0
out:	.word 0
		.text
main:	lw   $t0, in
		li   $t1, 7
		beq  $t0, $t1, seven
		li   $s0, 100
		j    done
seven:	li   $s0, 200
done:	sw   $s0, out
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []uint32{7, 3, 7, 9, 1, 7, 7, 2}
	jobs := make([]sim.Job, len(inputs))
	for i, in := range inputs {
		jobs[i] = sim.Job{
			Writes: []sim.Write{{Addr: p.DataBase, Val: in}},
			Reads:  []sim.Read{{Addr: p.DataBase + 4, Words: 1}},
		}
	}
	r := batchPair(t, src, jobs, sim.Options{Workers: 2, GangWidth: 4})
	if r.GangDeopts() == 0 {
		t.Error("divergent lanes did not deopt")
	}
	if r.GangRuns() == 0 {
		t.Error("agreeing lanes did not complete in lockstep")
	}
}

// TestGangLaneFaultDeoptsExactly poisons one lane with a misaligned pointer:
// the faulting job must report the same error as a scalar run, and the clean
// lanes must still complete in lockstep.
func TestGangLaneFaultDeoptsExactly(t *testing.T) {
	const src = `
		.data
in:	.word 0
out:	.word 0
		.text
main:	lw   $t0, in
		lw   $t1, 0($t0)
		sw   $t1, out
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ptrs := []uint32{p.DataBase, p.DataBase + 1, p.DataBase, p.DataBase + 2}
	jobs := make([]sim.Job, len(ptrs))
	for i, ptr := range ptrs {
		jobs[i] = sim.Job{
			Writes: []sim.Write{{Addr: p.DataBase, Val: ptr}},
			Reads:  []sim.Read{{Addr: p.DataBase + 4, Words: 1}},
		}
	}
	r := batchPair(t, src, jobs, sim.Options{Workers: 1, GangWidth: 4})
	if r.GangDeopts() == 0 {
		t.Error("faulting lanes did not deopt")
	}
}

// TestGangBudgetExpiryStaysLockstep expires the shared cycle budget
// mid-gang: live lanes are NOT deopted — lockstep partial state is exact —
// and the results (Done=false, truncated stats/registers) must match scalar
// partial runs bit-for-bit. RequireHalt jobs get the scalar cycle-limit
// error instead.
func TestGangBudgetExpiryStaysLockstep(t *testing.T) {
	const src = `
		.data
in:	.word 0
		.text
main:	lw   $t0, in
loop:	addiu $t0, $t0, -1
		bgtz $t0, loop
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, requireHalt := range []bool{false, true} {
		jobs := make([]sim.Job, 4)
		for i := range jobs {
			jobs[i] = sim.Job{
				Writes:      []sim.Write{{Addr: p.DataBase, Val: 1 << 20}},
				MaxCycles:   300,
				RequireHalt: requireHalt,
			}
		}
		r := batchPair(t, src, jobs, sim.Options{Workers: 2, GangWidth: 4})
		if r.GangDeopts() != 0 {
			t.Errorf("requireHalt=%v: GangDeopts = %d, want 0 (budget expiry is not a deopt)", requireHalt, r.GangDeopts())
		}
		if r.GangRuns() != 4 {
			t.Errorf("requireHalt=%v: GangRuns = %d, want 4", requireHalt, r.GangRuns())
		}
	}
}

// TestGangMixedShapesSplitUnits mixes budgets and probe-carrying jobs into
// one batch: grouping must split them into uniform units (never guessing a
// shared budget) and still reproduce the scalar batch exactly.
func TestGangMixedShapesSplitUnits(t *testing.T) {
	const src = `
		.data
in:	.word 0
		.text
main:	lw   $t0, in
loop:	addiu $t0, $t0, -1
		bgtz $t0, loop
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []sim.Job
	for i := 0; i < 12; i++ {
		j := sim.Job{Writes: []sim.Write{{Addr: p.DataBase, Val: uint32(20 + i%3)}}}
		switch i % 4 {
		case 1:
			j.MaxCycles = 50 // expires mid-run: a different gang shape
		case 2:
			j.Trace = true
		case 3:
			// An extra probe makes the job gang-ineligible; it must run as a
			// scalar singleton inside the gang-scheduled batch.
			j.Probe = sim.PerRunMeterProbes(func(m *energy.Probe) []cpu.Probe { return nil })
		}
		jobs = append(jobs, j)
	}
	batchPair(t, src, jobs, sim.Options{Workers: 3, GangWidth: 4})
}

// TestGangWorkerCountInvariance fixes the batch and gang width and sweeps
// worker counts: results must be bit-identical regardless of scheduling,
// because gang grouping is precomputed from the job list alone.
func TestGangWorkerCountInvariance(t *testing.T) {
	const src = `
		.data
in:	.word 0
out:	.word 0
		.text
main:	lw   $t0, in
		li   $s0, 0
loop:	xor.s $s0, $s0, $t0
		srl  $t0, $t0, 1
		bgtz $t0, loop
		sw   $s0, out
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]sim.Job, 13)
	for i := range jobs {
		jobs[i] = sim.Job{
			Writes: []sim.Write{{Addr: p.DataBase, Val: uint32(i) * 0x9e3779b9}},
			Reads:  []sim.Read{{Addr: p.DataBase + 4, Words: 1}},
			Trace:  true,
		}
	}
	var ref []sim.Result
	for _, w := range []int{1, 4, 16} {
		r := sim.NewRunner(p, energy.DefaultConfig())
		res, err := r.RunBatch(jobs, sim.Options{Workers: w, GangWidth: 4})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			requireSameResult(t, fmt.Sprintf("workers=%d job %d", w, i), res[i], ref[i])
		}
	}
}

// sampleProbeTest captures the scalar meter's in-window per-cycle totals —
// the reference observation for RunGangSampled's lane buffers.
type sampleProbeTest struct {
	meter      *energy.Probe
	start, end uint64
	buf        []float64
}

func (p *sampleProbeTest) OnCycle(ci cpu.CycleInfo) {
	if ci.Cycle >= p.start && ci.Cycle < p.end {
		p.buf = append(p.buf, p.meter.LastPJ())
	}
}

// TestRunGangSampledMatchesScalarWindow drives the leakstat entry point:
// gang-sampled windowed energy must be bit-identical to a scalar run
// observing the same window through a meter probe, for a window opening
// mid-run (exercising the quiet warm-up path).
func TestRunGangSampledMatchesScalarWindow(t *testing.T) {
	const src = `
		.data
in:	.word 0
out:	.word 0
tmp:	.space 16
		.text
main:	lw   $s0, in
		la   $s3, tmp
		li   $t0, 0
		li   $s1, 0
loop:	xor.s $s2, $s0, $s1
		addu.s $s1, $s1, $s2
		sll  $t1, $t0, 2
		addu $t3, $s3, $t1
		sw   $s1, 0($t3)
		lw   $t2, 0($t3)
		addu $s0, $s0, $t2
		srl  $s0, $s0, 1
		addiu $t0, $t0, 1
		slti $at, $t0, 6
		bne  $at, $zero, loop
		sw   $s1, out
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	const start, end = 10, 45
	inputs := []uint32{0xdeadbeef, 1, 0x0f0f0f0f, 0xffffffff}

	// Reference: scalar runs with a per-run meter probe sampling the window.
	scalarRunner := sim.NewRunner(p, energy.DefaultConfig())
	refBufs := make([][]float64, len(inputs))
	for i, in := range inputs {
		probe := &sampleProbeTest{start: start, end: end}
		job := sim.Job{
			Writes: []sim.Write{{Addr: p.DataBase, Val: in}},
			Probe: sim.PerRunMeterProbes(func(m *energy.Probe) []cpu.Probe {
				probe.meter = m
				return []cpu.Probe{probe}
			}),
		}
		if res := scalarRunner.Run(job); res.Err != nil || !res.Done {
			t.Fatalf("scalar job %d: done=%v err=%v", i, res.Done, res.Err)
		}
		refBufs[i] = probe.buf
	}

	gangRunner := sim.NewRunner(p, energy.DefaultConfig())
	jobs := make([]sim.Job, len(inputs))
	bufs := make([][]float64, len(inputs))
	for i, in := range inputs {
		jobs[i] = sim.Job{Writes: []sim.Write{{Addr: p.DataBase, Val: in}}}
		bufs[i] = make([]float64, end-start)
	}
	results := gangRunner.RunGangSampled(jobs, start, end, bufs)
	for i, res := range results {
		if res.Err != nil || !res.Done {
			t.Fatalf("gang job %d: done=%v err=%v", i, res.Done, res.Err)
		}
		for j, want := range refBufs[i] {
			if bufs[i][j] != want {
				t.Fatalf("job %d sample %d: gang %v, scalar %v", i, j, bufs[i][j], want)
			}
		}
	}
	if gangRunner.GangRuns() == 0 {
		t.Error("RunGangSampled fell back to scalar for a lockstep workload")
	}

	// Buffer reuse across gangs (the leakstat steady state): a second pass
	// into the same buffers must reproduce the same samples.
	second := gangRunner.RunGangSampled(jobs, start, end, bufs)
	for i, res := range second {
		if res.Err != nil || !res.Done {
			t.Fatalf("second pass job %d: done=%v err=%v", i, res.Done, res.Err)
		}
		for j, want := range refBufs[i] {
			if bufs[i][j] != want {
				t.Fatalf("second pass job %d sample %d: gang %v, scalar %v", i, j, bufs[i][j], want)
			}
		}
	}
}
