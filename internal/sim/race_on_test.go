//go:build race

package sim_test

// raceEnabled gates allocation-count assertions: the race detector
// instruments allocations and would make exact counts meaningless.
const raceEnabled = true
