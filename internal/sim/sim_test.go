package sim_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/sim"
)

// testSrc is a small masked kernel: enough cycles to make scheduling matter,
// secret-dependent output to make result mixups detectable.
const testSrc = `
	secure int key[4];
	int in[4];
	int out[4];
	void main() {
		int i;
		int acc;
		acc = 0;
		for (i = 0; i < 4; i = i + 1) {
			out[i] = (key[i] ^ in[i]) + acc;
			acc = acc + out[i];
		}
	}
`

func newTestRunner(t *testing.T) (*sim.Runner, map[string]uint32) {
	t.Helper()
	res, err := compiler.Compile(testSrc, compiler.PolicySelective)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	syms := map[string]uint32{}
	for _, name := range []string{"key", "in", "out"} {
		addr, ok := res.Program.Symbols[compiler.GlobalLabel(name)]
		if !ok {
			t.Fatalf("no global %q", name)
		}
		syms[name] = addr
	}
	return sim.NewRunner(res.Program, energy.DefaultConfig()), syms
}

// testJob builds the i-th batch job: per-job inputs derived from the job
// index via DeriveSeed, so every job's correct output is known.
func testJob(syms map[string]uint32, i int, capture bool) sim.Job {
	var job sim.Job
	job.Trace = capture
	seed := uint64(sim.DeriveSeed(7, i))
	for j := 0; j < 4; j++ {
		job.Writes = append(job.Writes,
			sim.Write{Addr: syms["key"] + uint32(4*j), Val: uint32(seed >> (8 * j) & 0xFF)},
			sim.Write{Addr: syms["in"] + uint32(4*j), Val: uint32(i*31 + j)},
		)
	}
	job.Reads = []sim.Read{{Addr: syms["out"], Words: 4}}
	return job
}

// wantOut mirrors the kernel in Go.
func wantOut(syms map[string]uint32, i int) []uint32 {
	seed := uint64(sim.DeriveSeed(7, i))
	out := make([]uint32, 4)
	acc := uint32(0)
	for j := 0; j < 4; j++ {
		k := uint32(seed >> (8 * j) & 0xFF)
		out[j] = (k ^ uint32(i*31+j)) + acc
		acc += out[j]
	}
	return out
}

func TestRunComputesKernel(t *testing.T) {
	r, syms := newTestRunner(t)
	for i := 0; i < 3; i++ {
		res := r.Run(testJob(syms, i, false))
		if res.Err != nil || !res.Done {
			t.Fatalf("job %d: done=%v err=%v", i, res.Done, res.Err)
		}
		if want := wantOut(syms, i); !reflect.DeepEqual(res.Mem[0], want) {
			t.Fatalf("job %d: out=%v want %v", i, res.Mem[0], want)
		}
		if res.Stats.Cycles == 0 || res.Stats.Energy.Total <= 0 {
			t.Fatalf("job %d: empty stats %+v", i, res.Stats)
		}
		if res.Stats.PeakPJ <= 0 || res.Stats.PeakPJ > res.Stats.Energy.Total {
			t.Fatalf("job %d: implausible peak %v", i, res.Stats.PeakPJ)
		}
	}
}

// TestRunBatchDeterministicAcrossWorkers is the determinism contract: the
// same batch must produce byte-identical results (traces, energy totals,
// stats, memory read-backs, registers) for every worker count.
func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	r, syms := newTestRunner(t)
	const n = 24
	makeJobs := func() []sim.Job {
		jobs := make([]sim.Job, n)
		for i := range jobs {
			jobs[i] = testJob(syms, i, true)
		}
		return jobs
	}
	ref, err := r.RunBatch(makeJobs(), sim.Options{Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for i, res := range ref {
		if want := wantOut(syms, i); !reflect.DeepEqual(res.Mem[0], want) {
			t.Fatalf("job %d: out=%v want %v", i, res.Mem[0], want)
		}
		if res.Trace == nil || res.Trace.Len() == 0 || len(res.Trace.PCs) != res.Trace.Len() {
			t.Fatalf("job %d: missing trace", i)
		}
	}
	for _, workers := range []int{4, 16} {
		got, err := r.RunBatch(makeJobs(), sim.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			if !reflect.DeepEqual(got[i].Trace.Totals, ref[i].Trace.Totals) {
				t.Fatalf("workers=%d job %d: trace totals differ", workers, i)
			}
			if !reflect.DeepEqual(got[i].Trace.PCs, ref[i].Trace.PCs) {
				t.Fatalf("workers=%d job %d: trace PCs differ", workers, i)
			}
			if got[i].Stats != ref[i].Stats {
				t.Fatalf("workers=%d job %d: stats differ:\n%+v\n%+v", workers, i, got[i].Stats, ref[i].Stats)
			}
			if !reflect.DeepEqual(got[i].Mem, ref[i].Mem) || got[i].Regs != ref[i].Regs {
				t.Fatalf("workers=%d job %d: memory/registers differ", workers, i)
			}
		}
	}
}

// TestConcurrentBatches drives several batches through one shared Runner at
// once — the scenario `go test -race` must certify: pooled workers may hop
// between batches, yet each batch's results stay bit-identical.
func TestConcurrentBatches(t *testing.T) {
	r, syms := newTestRunner(t)
	const n = 8
	jobs := make([]sim.Job, n)
	for i := range jobs {
		jobs[i] = testJob(syms, i, true)
	}
	ref, err := r.RunBatch(jobs, sim.Options{Workers: 1})
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}

	const batches = 4
	var wg sync.WaitGroup
	errc := make(chan error, batches)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := r.RunBatch(jobs, sim.Options{Workers: 4})
			if err != nil {
				errc <- err
				return
			}
			for i := range ref {
				if !reflect.DeepEqual(got[i].Trace.Totals, ref[i].Trace.Totals) ||
					got[i].Stats != ref[i].Stats ||
					!reflect.DeepEqual(got[i].Mem, ref[i].Mem) {
					errc <- fmt.Errorf("job %d diverged under concurrent batches", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestRunBudgetExpiry(t *testing.T) {
	r, syms := newTestRunner(t)
	job := testJob(syms, 0, true)
	job.MaxCycles = 25
	res := r.Run(job)
	if res.Err != nil {
		t.Fatalf("budget expiry must not be an error: %v", res.Err)
	}
	if res.Done {
		t.Fatal("Done=true for a 25-cycle budget")
	}
	if res.Trace.Len() != 25 || res.Stats.Cycles != 25 {
		t.Fatalf("partial run: trace len %d, cycles %d, want 25", res.Trace.Len(), res.Stats.Cycles)
	}
}

// TestRunBatchSharedProbesSerialized pins the redesigned shared-probe
// semantics: a batch job carrying SharedProbes is legal (the old runtime
// rejection is gone) because the scheduler serializes those jobs in index
// order on one worker. The shared instance therefore observes every
// carrying job exactly once, with no data race, while the per-job results
// stay bit-identical to an all-parallel batch.
func TestRunBatchSharedProbesSerialized(t *testing.T) {
	r, syms := newTestRunner(t)
	const n = 8
	var sharedCycles uint64
	shared := sim.SharedProbes(cpu.ProbeFunc(func(cpu.CycleInfo) { sharedCycles++ }))
	jobs := make([]sim.Job, n)
	for i := range jobs {
		jobs[i] = testJob(syms, i, false)
		if i%2 == 0 {
			jobs[i].Probe = shared
		}
	}
	results, err := r.RunBatch(jobs, sim.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i, res := range results {
		if out := wantOut(syms, i); !reflect.DeepEqual(res.Mem[0], out) {
			t.Fatalf("job %d: out=%v want %v", i, res.Mem[0], out)
		}
		if i%2 == 0 {
			want += res.Stats.Cycles
		}
	}
	if sharedCycles != want {
		t.Fatalf("shared probe saw %d cycles across its jobs, want %d", sharedCycles, want)
	}
}

// TestRunBatchPerRunProbes verifies the batch-safe probe path: every job
// gets a fresh probe instance from its factory, and each sees exactly its
// own run.
func TestRunBatchPerRunProbes(t *testing.T) {
	r, syms := newTestRunner(t)
	const n = 8
	counts := make([]uint64, n)
	jobs := make([]sim.Job, n)
	for i := range jobs {
		i := i
		jobs[i] = testJob(syms, i, false)
		jobs[i].Probe = sim.PerRunProbes(func() []cpu.Probe {
			return []cpu.Probe{cpu.ProbeFunc(func(cpu.CycleInfo) { counts[i]++ })}
		})
	}
	results, err := r.RunBatch(jobs, sim.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if counts[i] != res.Stats.Cycles {
			t.Fatalf("job %d: probe saw %d cycles, stats report %d", i, counts[i], res.Stats.Cycles)
		}
	}
}

// TestRequireHalt verifies the typed cycle-limit error: budget expiry on a
// RequireHalt job is a *cpu.CycleLimitError matching cpu.ErrCycleLimit, and
// RunBatch reports it as a budget problem — while program faults don't match.
func TestRequireHalt(t *testing.T) {
	r, syms := newTestRunner(t)
	job := testJob(syms, 0, false)
	job.MaxCycles = 25
	job.RequireHalt = true
	res := r.Run(job)
	if !errors.Is(res.Err, cpu.ErrCycleLimit) {
		t.Fatalf("RequireHalt expiry: got %v, want ErrCycleLimit", res.Err)
	}
	var cle *cpu.CycleLimitError
	if !errors.As(res.Err, &cle) || cle.Limit != 25 {
		t.Fatalf("want *cpu.CycleLimitError with Limit=25, got %#v", res.Err)
	}

	_, err := r.RunBatch([]sim.Job{job}, sim.Options{})
	if err == nil || !errors.Is(err, cpu.ErrCycleLimit) {
		t.Fatalf("batch error must match ErrCycleLimit, got %v", err)
	}

	// A genuine program fault must not look like a budget expiry.
	bad := testJob(syms, 0, false)
	bad.Writes = append([]sim.Write{}, bad.Writes...)
	bad.Writes[0].Addr = 0x2 // misaligned store faults during setup
	if res := r.Run(bad); res.Err == nil || errors.Is(res.Err, cpu.ErrCycleLimit) {
		t.Fatalf("program fault classified as cycle limit: %v", res.Err)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := sim.DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
		if s != sim.DeriveSeed(42, i) {
			t.Fatalf("DeriveSeed not deterministic at index %d", i)
		}
	}
	if sim.DeriveSeed(1, 0) == sim.DeriveSeed(2, 0) {
		t.Fatal("distinct bases collide at index 0")
	}
}

func TestForEach(t *testing.T) {
	const n = 50
	got := make([]int, n)
	if err := sim.ForEach(n, 8, func(i int) error {
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}

	// Error selection is by lowest index, not completion order.
	errA, errB := errors.New("a"), errors.New("b")
	err := sim.ForEach(n, 8, func(i int) error {
		switch i {
		case 3:
			return errB
		case 30:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errB) {
		t.Fatalf("want lowest-index error %v, got %v", errB, err)
	}
}
