package sim_test

// Golden regression fixtures for the simulator core. The files under
// testdata/ were generated from the pre-refactor (re-decoding, CycleSink)
// core and pin its observable behaviour bit-for-bit: ciphertexts, cycle
// counts, per-cycle energy traces and total energy for every protection
// policy across all four workloads. The predecode + probe core must
// reproduce them exactly; regenerate (-update) only when the energy model
// itself deliberately changes.

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/kernels"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

var update = flag.Bool("update", false, "regenerate golden fixtures from the current core")

const (
	goldenKey       = 0x133457799BBCDFF1
	goldenPlaintext = 0x0123456789ABCDEF
)

// traceHash digests a per-cycle trace: the exact float64 bit pattern of every
// cycle's energy plus the EX-stage PC, FNV-1a 64.
func traceHash(tr *trace.Trace) string {
	h := fnv.New64a()
	var buf [12]byte
	for i, v := range tr.Totals {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v))
		binary.LittleEndian.PutUint32(buf[8:], tr.PCs[i])
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// cosimEntry is one (workload, policy) cell of the golden manifest.
type cosimEntry struct {
	Workload   string `json:"workload"`
	Policy     string `json:"policy"`
	Cycles     uint64 `json:"cycles"`
	Insts      uint64 `json:"insts"`
	SecureInst uint64 `json:"secure_inst"`
	// EnergyBits is the IEEE-754 bit pattern of the run's total energy (pJ),
	// so equality is exact rather than within-epsilon.
	EnergyBits string `json:"energy_bits"`
	TraceHash  string `json:"trace_hash"`
	Output     string `json:"output"`
}

func kernelInputs(name string) (secret, public []uint32) {
	switch name {
	case "tea":
		return []uint32{0x01234567, 0x89abcdef, 0xfedcba98, 0x76543210},
			[]uint32{0xdeadbeef, 0xcafebabe}
	case "aes128":
		secret = make([]uint32, 16)
		for i := range secret {
			secret[i] = uint32(i)
		}
		return secret, []uint32{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
			0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	case "sha1":
		// Standard IV plus the padded "abc" block.
		iv := []uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
		block := make([]uint32, 16)
		block[0] = 0x61626380
		block[15] = 24
		return iv, block
	}
	panic("unknown kernel " + name)
}

func formatWords(words []uint32) string {
	parts := make([]string, len(words))
	for i, w := range words {
		parts[i] = fmt.Sprintf("%08x", w)
	}
	return strings.Join(parts, " ")
}

// runCell produces the golden entry for one (workload, policy) pair.
func runCell(t *testing.T, workload string, policy compiler.Policy) cosimEntry {
	t.Helper()
	entry := cosimEntry{Workload: workload, Policy: policy.String()}
	if workload == "des" {
		m, err := desprog.New(policy)
		if err != nil {
			t.Fatal(err)
		}
		tr, cipher, stats, err := m.TraceRun(goldenKey, goldenPlaintext)
		if err != nil {
			t.Fatal(err)
		}
		entry.Cycles = stats.Cycles
		entry.Insts = stats.Insts
		entry.SecureInst = stats.SecureInst
		entry.EnergyBits = fmt.Sprintf("%016x", math.Float64bits(stats.Energy.Total))
		entry.TraceHash = traceHash(tr)
		entry.Output = fmt.Sprintf("%016x", cipher)
		return entry
	}
	var k kernels.Kernel
	switch workload {
	case "tea":
		k = kernels.TEA()
	case "aes128":
		k = kernels.AES128()
	case "sha1":
		k = kernels.SHA1()
	default:
		t.Fatalf("unknown workload %q", workload)
	}
	m, err := kernels.BuildSimple(k, policy)
	if err != nil {
		t.Fatal(err)
	}
	secret, public := kernelInputs(workload)
	job, err := m.Job(secret, public, true)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Runner().Run(job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Done {
		t.Fatalf("%s/%s did not complete", workload, policy)
	}
	entry.Cycles = res.Stats.Cycles
	entry.Insts = res.Stats.Insts
	entry.SecureInst = res.Stats.SecureInst
	entry.EnergyBits = fmt.Sprintf("%016x", math.Float64bits(res.Stats.Energy.Total))
	entry.TraceHash = traceHash(res.Trace)
	entry.Output = formatWords(res.Mem[0])
	return entry
}

// TestGoldenCosim locks every policy x workload cell (ciphertext, cycle
// count, exact total energy, per-cycle trace digest) to the pre-refactor
// core's output.
func TestGoldenCosim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join("testdata", "golden_cosim.json")
	var entries []cosimEntry
	for _, workload := range []string{"des", "tea", "aes128", "sha1"} {
		for _, policy := range compiler.Policies() {
			entries = append(entries, runCell(t, workload, policy))
		}
	}
	if *update {
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(entries))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden manifest (run with -update to generate): %v", err)
	}
	var want []cosimEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(entries) {
		t.Fatalf("golden manifest has %d entries, produced %d", len(want), len(entries))
	}
	for i, w := range want {
		if entries[i] != w {
			t.Errorf("%s/%s diverged from golden core:\n got  %+v\n want %+v",
				w.Workload, w.Policy, entries[i], w)
		}
	}
}

// TestGoldenDESRoundTrace locks the full-precision per-cycle energy trace of
// DES round 1 under selective masking: every sample must match the checked-in
// fixture to the bit (hex float64), and the round must start and end on the
// same cycles.
func TestGoldenDESRoundTrace(t *testing.T) {
	path := filepath.Join("testdata", "golden_des_round1_selective.txt")
	m, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Trace(goldenKey, goldenPlaintext)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.RoundWindow(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# DES round 1, policy=selective key=%016x plaintext=%016x\n",
		uint64(goldenKey), uint64(goldenPlaintext))
	fmt.Fprintf(&b, "# window %d %d of %d cycles; columns: exec_pc energy_pj(hexfloat)\n",
		w.Start, w.End, tr.Len())
	for i := w.Start; i < w.End; i++ {
		fmt.Fprintf(&b, "%08x %s\n", tr.PCs[i], strconv.FormatFloat(tr.Totals[i], 'x', -1, 64))
	}
	got := b.String()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cycles)", path, w.Len())
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update to generate): %v", err)
	}
	if got != string(data) {
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(data), "\n")
		for i := range wantLines {
			if i >= len(gotLines) || gotLines[i] != wantLines[i] {
				t.Fatalf("trace diverges from golden core at line %d:\n got  %q\n want %q\n(got %d lines, want %d)",
					i+1, line(gotLines, i), wantLines[i], len(gotLines), len(wantLines))
			}
		}
		t.Fatalf("trace has %d extra lines over golden fixture", len(gotLines)-len(wantLines))
	}
}

func line(v []string, i int) string {
	if i < len(v) {
		return v[i]
	}
	return "<missing>"
}

// goldenEntry loads one (workload, policy) cell of the golden manifest, if
// the manifest exists.
func goldenEntry(t *testing.T, workload, policy string) (cosimEntry, bool) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden_cosim.json"))
	if err != nil {
		return cosimEntry{}, false
	}
	var entries []cosimEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Workload == workload && e.Policy == policy {
			return e, true
		}
	}
	return cosimEntry{}, false
}

// TestGoldenBatchMatchesGolden re-runs one golden cell through RunBatch to
// tie the batch path to the same fixture (worker pooling must not perturb
// traces).
func TestGoldenBatchMatchesGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden_cosim.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("golden manifest not generated yet: %v", err)
	}
	var want []cosimEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	m, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	results, err := m.EncryptBatch(goldenKey, []uint64{goldenPlaintext, goldenPlaintext}, 0, true, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		if w.Workload != "des" || w.Policy != compiler.PolicySelective.String() {
			continue
		}
		for i, r := range results {
			if got := traceHash(r.Trace); got != w.TraceHash {
				t.Errorf("batch job %d trace hash %s, want golden %s", i, got, w.TraceHash)
			}
		}
		return
	}
	t.Fatal("no des/selective entry in golden manifest")
}
