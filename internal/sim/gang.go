package sim

import (
	"context"
	"sync"
	"sync/atomic"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/gang"
	"desmask/internal/trace"
)

// Gang-mode session layer: Options.GangWidth > 1 opts a batch into
// gang-scheduled lockstep execution (internal/gang) for jobs that observe no
// per-stage pipeline probes. Same-shaped jobs are grouped — before any worker
// starts, so grouping never depends on worker count or scheduling — into
// gangs of up to GangWidth lanes sharing one control computation per cycle.
//
// Exactness contract: a lane either completes in lockstep bit-identical to a
// scalar run (registers, memory, stats, per-cycle energy observation), or is
// peeled by the engine's deopt contract and transparently replayed on the
// unmodified cycle-accurate core. Like block mode, gang-mode results carry no
// Stats.Energy/PeakPJ accumulation (replayed lanes are normalized to match),
// so a result never reveals which path produced it.

// gangEligible reports whether a job may join a gang: it must not request
// block mode (a different engine), and must attach no extra probes — probes
// observe per-stage events of a single core, which a gang does not replay.
// Traced jobs are eligible: the engine records the exact trace.Recorder
// observation per lane.
func (r *Runner) gangEligible(job *Job) bool {
	return !job.Blocks && job.Probe.isZero()
}

// gangEngine returns the worker's gang engine with capacity for at least n
// lanes, building or widening it on demand. ok=false means the program
// cannot run in lockstep (engine construction failed — e.g. a non-five-stage
// target) and the caller must use the scalar path.
func (r *Runner) gangEngine(w *worker, n int) (*gang.Engine, bool) {
	if w.gang != nil && w.gang.Width() >= n {
		return w.gang, true
	}
	if w.gangBroken {
		return nil, false
	}
	e, err := gang.New(r.prog, r.cfg, n)
	if err != nil {
		w.gangBroken = true
		return nil, false
	}
	w.gang = e
	return e, true
}

// winProbe samples committed-cycle energy inside [start, end) into a
// caller-owned buffer — the scalar-replay equivalent of a gang lane's sample
// buffer, attached via PerRunMeterProbes so it reads the worker's meter.
type winProbe struct {
	meter      *energy.Probe
	start, end uint64
	buf        []float64
}

func (p *winProbe) OnCycle(ci cpu.CycleInfo) {
	if ci.Cycle < p.start || ci.Cycle >= p.end {
		return
	}
	if i := ci.Cycle - p.start; i < uint64(len(p.buf)) {
		p.buf[i] = p.meter.LastPJ()
	}
}

// replaySampled replays one deopted lane's job on the worker's scalar core,
// reproducing the gang's windowed energy observation into buf. The result is
// normalized to the gang result shape (no Energy/PeakPJ totals).
func (r *Runner) replaySampled(w *worker, job Job, start, end uint64, buf []float64) Result {
	if buf != nil && end > start {
		p := &winProbe{start: start, end: end, buf: buf}
		job.Probe = PerRunMeterProbes(func(m *energy.Probe) []cpu.Probe {
			p.meter = m
			return []cpu.Probe{p}
		})
	}
	res := r.runOn(w, job)
	res.Stats.Energy = energy.CycleEnergy{}
	res.Stats.PeakPJ = 0
	return res
}

// RunGangSampled executes up to GangWidth same-program jobs as one lockstep
// gang on a pooled worker, sampling each lane's per-cycle energy for cycles
// [start, end) into the caller-owned bufs[i] (which must hold end-start
// values; bufs may be nil for no sampling). Results are returned in job
// order and are bit-identical to scalar runs — lanes the engine cannot
// complete exactly are replayed on the cycle-accurate core with an
// equivalent sampling probe. Jobs must be gang-shaped: no Blocks, no Trace,
// no ProbeSpec (serve those through Run/RunBatch instead).
//
// This is the assessment hot path: leakstat feeds fixed-vs-random trace
// populations through it shard by shard, reusing the sample buffers across
// gangs so the steady state allocates nothing.
func (r *Runner) RunGangSampled(jobs []Job, start, end uint64, bufs [][]float64) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	w, err := r.getWorker()
	if err != nil {
		for i := range results {
			results[i] = Result{Err: err}
		}
		return results
	}
	defer r.pool.Put(w)
	r.runGangSampledOn(w, jobs, start, end, bufs, results, nil)
	return results
}

// runGangSampledOn is RunGangSampled on a caller-held worker, writing into
// results (indexed by idxs when non-nil, else by position).
func (r *Runner) runGangSampledOn(w *worker, jobs []Job, start, end uint64, bufs [][]float64, results []Result, idxs []int) {
	n := len(jobs)
	resAt := func(i int) *Result {
		if idxs != nil {
			return &results[idxs[i]]
		}
		return &results[i]
	}
	bufAt := func(i int) []float64 {
		if bufs == nil {
			return nil
		}
		return bufs[i]
	}
	scalarAll := func() {
		for i := range jobs {
			*resAt(i) = r.replaySampled(w, jobs[i], start, end, bufAt(i))
		}
	}

	budget := r.budget(jobs[0])
	for i := 1; i < n; i++ {
		if r.budget(jobs[i]) != budget || jobs[i].Trace != jobs[0].Trace {
			// Mixed-shape group: lockstep needs one shared budget. Callers
			// group uniformly; fall back rather than guess.
			scalarAll()
			return
		}
	}
	traced := jobs[0].Trace

	// Mirror grouping: jobs with bit-identical initial state (the same memory
	// pokes, onto identically reset lanes of the same program, under the same
	// budget) are deterministic replicas — one engine lane executes for all of
	// them and every mirror copies its results. TVLA's fixed population makes
	// this the common case: half of every assessment batch is the same job
	// repeated. Mirrors sharing a lane must also share the lane's observation
	// shape, so a job only mirrors one with an equally sized sample buffer.
	reps := w.gangReps[:0]
	laneOf := w.gangLaneOf[:0]
	for i := range jobs {
		lane := -1
		for l, ri := range reps {
			if writesEqual(jobs[i].Writes, jobs[ri].Writes) &&
				len(bufAt(i)) == len(bufAt(ri)) {
				lane = l
				break
			}
		}
		if lane < 0 {
			reps = append(reps, i)
			lane = len(reps) - 1
		}
		laneOf = append(laneOf, lane)
	}
	w.gangReps, w.gangLaneOf = reps, laneOf

	e, ok := r.gangEngine(w, len(reps))
	if !ok || n < 2 {
		scalarAll()
		return
	}
	if err := e.Reset(len(reps)); err != nil {
		scalarAll()
		return
	}
	if traced {
		e.EnableTrace(r.reserveHint(budget))
	} else if end > start {
		e.SetSampleWindow(start, end)
		for l, ri := range reps {
			e.SetLaneSampleBuf(l, bufAt(ri))
		}
	}
	for l, ri := range reps {
		for _, wr := range jobs[ri].Writes {
			if err := e.Lane(l).Mem.StoreWord(wr.Addr, wr.Val); err != nil {
				// A failed poke is a job-setup fault; the scalar path reports
				// it with exact semantics for every lane.
				scalarAll()
				return
			}
		}
	}

	e.Run(budget)

	done := e.Halted()
	for i := range jobs {
		l := laneOf[i]
		if lerr := e.LaneErr(l); lerr != nil {
			r.gangDeopts.Add(1)
			*resAt(i) = r.replaySampled(w, jobs[i], start, end, bufAt(i))
			continue
		}
		r.gangRuns.Add(1)
		res := resAt(i)
		*res = Result{Done: done, Regs: e.Lane(l).Regs}
		res.Stats = Stats{Stats: e.Stats()}
		r.cycles.Add(res.Stats.Cycles)
		if i != reps[l] {
			// A mirror reproduces its representative's windowed samples.
			if !traced && end > start {
				copy(bufAt(i), bufAt(reps[l]))
			}
		}
		if !done && jobs[i].RequireHalt {
			// Scalar semantics for budget expiry under RequireHalt: the
			// cycle-limit error, with no trace snapshot or memory read-back.
			res.Err = &cpu.CycleLimitError{Limit: budget}
			continue
		}
		if traced {
			lt := e.LaneTrace(l)
			res.Trace = &trace.Trace{
				Totals: append([]float64(nil), lt.Totals...),
				PCs:    append([]uint32(nil), lt.PCs...),
			}
			r.traceHint.Store(int64(res.Trace.Len()))
		}
		for _, rd := range jobs[i].Reads {
			words, err := e.Lane(l).Mem.ReadWords(rd.Addr, rd.Words)
			if err != nil {
				res.Err = err
				break
			}
			res.Mem = append(res.Mem, words)
		}
	}
}

// writesEqual reports whether two poke sequences are identical.
func writesEqual(a, b []Write) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gangUnits groups the batch's parallel jobs into execution units before any
// worker starts: runs of consecutive gang-eligible jobs with identical shape
// (budget, trace flag) become gangs of up to width lanes; everything else is
// a singleton scalar unit. Precomputing the grouping from the job list alone
// keeps results bit-identical for any worker count.
func (r *Runner) gangUnits(jobs []Job, par []int, width int) [][]int {
	units := make([][]int, 0, (len(par)+width-1)/width)
	var cur []int
	var curBudget uint64
	var curTrace bool
	flush := func() {
		if len(cur) > 0 {
			units = append(units, cur)
			cur = nil
		}
	}
	for _, i := range par {
		j := &jobs[i]
		if !r.gangEligible(j) {
			flush()
			units = append(units, []int{i})
			continue
		}
		b, tr := r.budget(*j), j.Trace
		if len(cur) > 0 && (b != curBudget || tr != curTrace) {
			flush()
		}
		curBudget, curTrace = b, tr
		cur = append(cur, i)
		if len(cur) == width {
			flush()
		}
	}
	flush()
	return units
}

// runUnit executes one scheduling unit on a worker: a singleton runs on the
// scalar (or block) path exactly as a gang-free batch would run it; a group
// runs as a lockstep gang with per-lane deopt replay.
func (r *Runner) runUnit(w *worker, jobs []Job, unit []int, results []Result) {
	if len(unit) == 1 {
		i := unit[0]
		if r.gangEligible(&jobs[i]) {
			// Keep the result shape uniform across the batch: a leftover
			// singleton from gang grouping still reports like its gang-run
			// siblings (no Energy/PeakPJ accumulation).
			results[i] = r.replaySampled(w, jobs[i], 0, 0, nil)
		} else {
			results[i] = r.runOn(w, jobs[i])
		}
		return
	}
	unitJobs := make([]Job, len(unit))
	for k, i := range unit {
		unitJobs[k] = jobs[i]
	}
	r.runGangSampledOn(w, unitJobs, 0, 0, nil, results, unit)
}

// runParGang fans the batch's parallel jobs across the pool in gang units.
// It mirrors the scalar fan-out loop of RunBatchContext, pulling whole units
// so a gang always lands on one worker.
func (r *Runner) runParGang(ctx context.Context, jobs []Job, par []int, results []Result, opts Options, wg *sync.WaitGroup) {
	units := r.gangUnits(jobs, par, opts.GangWidth)
	workers := opts.resolve(len(units))
	var next atomic.Int64
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, werr := r.getWorker()
			if werr == nil {
				defer r.pool.Put(w)
			}
			for {
				n := int(next.Add(1) - 1)
				if n >= len(units) {
					return
				}
				unit := units[n]
				switch {
				case werr != nil:
					for _, i := range unit {
						results[i] = Result{Err: werr}
					}
				case ctx.Err() != nil:
					for _, i := range unit {
						results[i] = Result{Err: ctx.Err()}
					}
				default:
					r.runUnit(w, jobs, unit, results)
				}
			}
		}()
	}
}
