package sim_test

// Steady-state allocation regression. After the first (warm-up) run, a
// session worker reuses its CPU, meter, trace recorder and — when the job
// shape repeats — its attached probe set, so the only allocations left per
// encryption are the caller-owned pieces of the Result: the memory
// read-back (outer slice + words) and, for traced jobs, the trace snapshot
// (struct + totals + PCs). Block-mode runs carry the same read-back cost.

import (
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
)

func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Runner()
	for _, tc := range []struct {
		name    string
		capture bool
		blocks  bool
		max     float64
	}{
		{"untraced", false, false, 2},
		{"traced", true, false, 5},
		{"blocks", false, true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			job, err := m.EncryptJob(0x133457799BBCDFF1, 0x0123456789ABCDEF, 0, tc.capture)
			if err != nil {
				t.Fatal(err)
			}
			job.Blocks = tc.blocks
			if res := r.Run(job); res.Err != nil || !res.Done {
				t.Fatalf("warm-up: done=%v err=%v", res.Done, res.Err)
			}
			got := testing.AllocsPerRun(5, func() {
				if res := r.Run(job); res.Err != nil {
					t.Fatal(res.Err)
				}
			})
			if got > tc.max {
				t.Errorf("%.1f allocs per encryption, want <= %.0f", got, tc.max)
			}
		})
	}
}
