package sim_test

// Cancellation-path tests for the session layer: RunBatchContext and
// ForEachContext must stop launching work once the context is done, leak no
// goroutines, report typed per-job errors, and — the flip side — behave
// bit-identically to the context-free entry points when never cancelled
// (asserted against the golden fixtures in golden_test.go).

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/desprog"
	"desmask/internal/sim"
)

// waitGoroutines polls until the goroutine count returns to within slack of
// base (background GC workers can come and go) or the deadline expires.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines alive, started with %d", n, base)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunBatchContextCancelMidBatch cancels a large batch partway through:
// workers must stop picking up jobs, every unexecuted job must carry the
// context error, the batch error must be a *sim.JobError unwrapping to
// context.Canceled, and no worker goroutine may outlive the call.
func TestRunBatchContextCancelMidBatch(t *testing.T) {
	r, syms := newTestRunner(t)
	const n = 256
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]sim.Job, n)
	for i := range jobs {
		jobs[i] = testJob(syms, i, false)
		jobs[i].Probe = sim.PerRunProbes(func() []cpu.Probe {
			// Cancel once a handful of jobs have started; later jobs must
			// then be skipped.
			if ran.Add(1) == 8 {
				cancel()
			}
			return nil
		})
	}
	results, err := r.RunBatchContext(ctx, jobs, sim.Options{Workers: 4})
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	var je *sim.JobError
	if !errors.As(err, &je) {
		t.Fatalf("batch error is %T, want *sim.JobError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v does not unwrap to context.Canceled", err)
	}
	executed, skipped := 0, 0
	for i, res := range results {
		switch {
		case res.Err == nil:
			executed++
			// Every job that did run is bit-identical to an uncancelled run.
			if want := wantOut(syms, i); !reflect.DeepEqual(res.Mem[0], want) {
				t.Fatalf("job %d executed under cancellation diverged: %v want %v", i, res.Mem[0], want)
			}
		case errors.Is(res.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("job %d: unexpected error %v", i, res.Err)
		}
	}
	if executed == 0 || skipped == 0 {
		t.Fatalf("want a mix of executed and skipped jobs, got %d executed / %d skipped", executed, skipped)
	}
	if je.Index < 0 || je.Index >= n || !errors.Is(results[je.Index].Err, context.Canceled) {
		t.Fatalf("JobError.Index=%d does not name a cancelled job", je.Index)
	}
	waitGoroutines(t, base)
}

// TestRunBatchContextDeadline exercises the deadline path leakd relies on:
// an already-expired context runs nothing and reports DeadlineExceeded.
func TestRunBatchContextDeadline(t *testing.T) {
	r, syms := newTestRunner(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	jobs := []sim.Job{testJob(syms, 0, false), testJob(syms, 1, false)}
	results, err := r.RunBatchContext(ctx, jobs, sim.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Fatalf("job %d: want DeadlineExceeded, got %v", i, res.Err)
		}
	}
}

// TestRunBatchContextUncancelledMatchesRunBatch is the determinism
// regression for the context plumbing: with a background context the new
// path must be bit-identical to RunBatch — traces, stats, memory, registers.
func TestRunBatchContextUncancelledMatchesRunBatch(t *testing.T) {
	r, syms := newTestRunner(t)
	const n = 16
	makeJobs := func() []sim.Job {
		jobs := make([]sim.Job, n)
		for i := range jobs {
			jobs[i] = testJob(syms, i, true)
		}
		return jobs
	}
	ref, err := r.RunBatch(makeJobs(), sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RunBatchContext(context.Background(), makeJobs(), sim.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !reflect.DeepEqual(got[i].Trace.Totals, ref[i].Trace.Totals) ||
			got[i].Stats != ref[i].Stats ||
			!reflect.DeepEqual(got[i].Mem, ref[i].Mem) ||
			got[i].Regs != ref[i].Regs {
			t.Fatalf("job %d: context path diverged from RunBatch", i)
		}
	}
}

// TestRunBatchContextGoldenTrace ties the context path to the golden
// fixtures: an uncancelled RunBatchContext of the DES/selective encryption
// must reproduce the checked-in pre-refactor trace hash exactly.
func TestRunBatchContextGoldenTrace(t *testing.T) {
	want, ok := goldenEntry(t, "des", compiler.PolicySelective.String())
	if !ok {
		t.Skip("golden manifest not generated yet")
	}
	m, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.EncryptJob(goldenKey, goldenPlaintext, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	results, err := m.Runner().RunBatchContext(context.Background(),
		[]sim.Job{job, job}, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if got := traceHash(res.Trace); got != want.TraceHash {
			t.Errorf("job %d: trace hash %s, want golden %s", i, got, want.TraceHash)
		}
	}
}

// TestForEachContextCancel verifies the scheduling primitive: cancelled
// indices report the context error and the goroutines drain.
func TestForEachContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := sim.ForEachContext(ctx, 128, 4, func(i int) error {
		if ran.Add(1) == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := ran.Load(); got >= 128 {
		t.Fatalf("cancellation did not stop the sweep: %d calls ran", got)
	}
	waitGoroutines(t, base)
}

// TestJobErrorIdentity pins the typed batch error: index and cause survive
// for callers that map batch failures onto per-request responses.
func TestJobErrorIdentity(t *testing.T) {
	r, syms := newTestRunner(t)
	jobs := make([]sim.Job, 3)
	for i := range jobs {
		jobs[i] = testJob(syms, i, false)
	}
	jobs[1].Writes = append([]sim.Write{}, jobs[1].Writes...)
	jobs[1].Writes[0].Addr = 0x2 // misaligned store faults during setup
	_, err := r.RunBatch(jobs, sim.Options{})
	var je *sim.JobError
	if !errors.As(err, &je) {
		t.Fatalf("batch error is %T, want *sim.JobError", err)
	}
	if je.Index != 1 {
		t.Fatalf("JobError.Index = %d, want 1", je.Index)
	}
	if je.Err == nil || errors.Is(je.Err, cpu.ErrCycleLimit) {
		t.Fatalf("unexpected cause %v", je.Err)
	}
}
