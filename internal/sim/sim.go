// Package sim is the session layer between the workloads and the
// cycle-accurate simulator: a Runner owns one compiled program plus one
// energy configuration and is the single way the rest of the system reaches
// package cpu. Runner.Run executes one job; Runner.RunBatch fans N
// independent jobs across a worker pool with per-worker reuse of the CPU,
// memory and trace buffers, so multi-trace workloads (DPA trace collection,
// leak-check sweeps, policy comparisons) scale with cores instead of paying
// per-run wiring and allocation.
//
// Determinism contract: a job's result depends only on the job — every
// worker starts from an identical power-on core (cpu.Reset), jobs never
// share mutable state, and per-job randomness must be derived with
// DeriveSeed(base, index), never drawn from a shared stream during the
// batch. RunBatch therefore returns bit-identical results (traces, energy
// totals, statistics, memory read-backs) in job order regardless of worker
// count or scheduling.
//
// Cancellation: RunBatchContext and ForEachContext accept a context and
// check it between executions — an in-flight simulation always runs to its
// cycle budget, but no further job starts once the context is done.
// Cancellation never perturbs completed results: every job that ran is
// bit-identical to what an uncancelled batch would have produced for that
// index, and every job that did not run carries the context's error.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"desmask/internal/asm"
	"desmask/internal/block"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/gang"
	"desmask/internal/isa"
	"desmask/internal/mem"
	"desmask/internal/trace"
)

// DefaultMaxCycles bounds a job that sets no explicit budget (and whose
// runner sets none); it generously covers one full encryption of any of the
// shipped workloads.
const DefaultMaxCycles = 4_000_000

// Write pokes one word into data memory before a run. Writes are applied in
// slice order, so job setup is fully deterministic.
type Write struct {
	Addr uint32
	Val  uint32
}

// Read names a memory range to copy out after the run.
type Read struct {
	Addr  uint32
	Words int
}

// Stats joins the core's architectural counters with the energy meter's
// accumulation for one run. The core itself no longer accounts energy; the
// session layer attaches the meter probe and merges its totals here.
type Stats struct {
	cpu.Stats
	// Energy is the run's accumulated energy, total and per component (pJ).
	// Zero for block-mode runs, which attach no meter.
	Energy energy.CycleEnergy
	// PeakPJ is the largest single-cycle energy of the run. Zero for
	// block-mode runs.
	PeakPJ float64
	// StaticPJ is the data-independent energy floor of a block-mode run —
	// the per-block precomputed statics plus clock energy, a strict lower
	// bound on what the meter would report (see energy.StaticUOpPJ). Zero
	// for cycle-mode runs, whose exact total is in Energy.
	StaticPJ float64
}

// AvgPJPerCycle returns the mean per-cycle energy.
func (s Stats) AvgPJPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return s.Energy.Total / float64(s.Cycles)
}

// ProbeSpec declares the extra observation probes of a job. The zero value
// attaches nothing. A spec is built by exactly one of the constructors:
//
//   - SharedProbes: fixed probe instances, attached as-is to every run the
//     spec is used for. The instances accumulate across runs, so the jobs
//     that carry a shared spec are executed sequentially in index order —
//     Run does this trivially, and RunBatch schedules them on a single
//     worker so the instances observe one deterministic stream.
//   - PerRunProbes: a factory invoked once per execution; every run gets
//     fresh instances, so these jobs fan out freely across batch workers.
//   - PerRunMeterProbes: like PerRunProbes, but the factory receives the
//     session worker's energy meter, already attached first, so the
//     returned probes can read each committed cycle's energy via
//     meter.LastPJ()/Last(). This is the hook for in-flight trace
//     reduction: streaming consumers (the leakstat accumulators) fold every
//     cycle's energy into constant-size state instead of materializing the
//     trace.
//
// Collapsing the former Probes/NewProbes/MeterProbes fields into this one
// type removes the old batch-time "shared probe instances" runtime error:
// sharing is now part of the spec, and the scheduler serializes exactly the
// jobs that need it.
type ProbeSpec struct {
	shared   []cpu.Probe
	perRun   func() []cpu.Probe
	perMeter func(meter *energy.Probe) []cpu.Probe
}

// SharedProbes builds a spec that attaches the given probe instances to
// every run. Jobs carrying the spec are serialized (in index order within a
// batch), so the instances never observe two simulations at once.
func SharedProbes(probes ...cpu.Probe) ProbeSpec {
	return ProbeSpec{shared: probes}
}

// PerRunProbes builds a spec whose factory is called once per execution;
// each run attaches the fresh instances the factory returns.
func PerRunProbes(fn func() []cpu.Probe) ProbeSpec {
	return ProbeSpec{perRun: fn}
}

// PerRunMeterProbes builds a spec whose factory is called once per
// execution with the session worker's energy meter (attached first, per the
// meter protocol), so the returned probes read committed per-cycle energy.
func PerRunMeterProbes(fn func(meter *energy.Probe) []cpu.Probe) ProbeSpec {
	return ProbeSpec{perMeter: fn}
}

// IsShared reports whether the spec carries fixed probe instances and so
// forces sequential execution of the jobs that use it.
func (s ProbeSpec) IsShared() bool { return len(s.shared) > 0 }

// isZero reports whether the spec attaches nothing — the condition under
// which a job needs no per-stage pipeline events and is eligible for the
// block-compiled engine.
func (s ProbeSpec) isZero() bool {
	return len(s.shared) == 0 && s.perRun == nil && s.perMeter == nil
}

// instantiate returns the probes to attach for one run.
func (s ProbeSpec) instantiate(meter *energy.Probe) []cpu.Probe {
	switch {
	case len(s.shared) > 0:
		return s.shared
	case s.perRun != nil:
		return s.perRun()
	case s.perMeter != nil:
		return s.perMeter(meter)
	}
	return nil
}

// Job is one independent simulation: input pokes, a cycle budget, and what
// to capture.
type Job struct {
	// Writes are applied to data memory, in order, before the first cycle.
	Writes []Write
	// Reads are copied out of data memory after the run, into Result.Mem.
	Reads []Read
	// MaxCycles truncates the run; 0 uses the runner default.
	MaxCycles uint64
	// Trace captures the full per-cycle energy trace into Result.Trace.
	Trace bool
	// RequireHalt turns budget expiry into a job error (a *cpu.CycleLimitError
	// matching cpu.ErrCycleLimit) instead of the default Done=false partial
	// run, for callers that consider an unfinished program a failure.
	RequireHalt bool
	// Blocks requests the block-compiled engine (internal/block) for this
	// job. The request is honoured only when the job observes no pipeline
	// events — no trace capture, no probes — and the program's target is
	// block compilable; otherwise, and whenever the engine deoptimizes (a
	// fault, a cycle budget expiring mid-run), the job runs on the
	// cycle-accurate core exactly as if Blocks were false. Either way the
	// Result is bit-identical to a cycle-accurate run, except that
	// Stats.Energy/PeakPJ are zero in block mode (no meter is attached) and
	// Stats.StaticPJ carries the data-independent energy floor instead.
	Blocks bool
	// Probe declares the job's extra probes; see ProbeSpec. Probes are
	// attached after the runner's own energy meter and trace recorder.
	Probe ProbeSpec
}

// sharedProbes reports whether the job carries fixed probe instances, which
// the batch scheduler must serialize.
func (j *Job) sharedProbes() bool {
	return j.Probe.IsShared()
}

// Result is the outcome of one job.
type Result struct {
	// Stats accumulates the run's cycle/instruction/energy accounting. On
	// error it holds whatever had accumulated when the fault hit.
	Stats Stats
	// Done reports that the program halted within the cycle budget; false
	// with a nil Err means the budget expired first (a partial run, used
	// deliberately for first-round attack traces).
	Done bool
	// Trace is the captured per-cycle trace (Job.Trace), including EX-stage
	// PCs for window location.
	Trace *trace.Trace
	// Mem holds one slice per Job.Reads entry, in order.
	Mem [][]uint32
	// Regs is the architectural register file after the run.
	Regs [isa.NumRegs]uint32
	// Err is the job's failure, if any. A job skipped because the batch
	// context was cancelled carries that context's error.
	Err error
}

// JobError is a batch failure tied to the job that caused it: RunBatch and
// RunBatchContext report the lowest-index failing job this way, so callers
// multiplexing a batch across independent requests (the leakd service) can
// map the failure back to exactly one of them. It unwraps to the underlying
// cause, so errors.Is/As against cpu.ErrCycleLimit, context.Canceled,
// context.DeadlineExceeded and friends keep working.
type JobError struct {
	// Index is the failing job's position in the batch.
	Index int
	// Err is the underlying failure.
	Err error
}

func (e *JobError) Error() string {
	// A cycle-limit expiry (RequireHalt jobs) is a budget problem, not a
	// program fault; say so instead of surfacing a bare limit error.
	if errors.Is(e.Err, cpu.ErrCycleLimit) {
		return fmt.Sprintf("sim: job %d did not halt within its cycle budget: %v", e.Index, e.Err)
	}
	return fmt.Sprintf("sim: job %d: %v", e.Index, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// Options configures batch execution.
type Options struct {
	// Workers sizes the worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// GangWidth > 1 opts the batch into gang-scheduled lockstep execution:
	// runs of same-shaped, probe-free jobs are grouped into gangs of up to
	// GangWidth lanes sharing one fetch/decode/control computation per cycle
	// (internal/gang), with per-lane deopt replay on the cycle-accurate core.
	// Results are bit-identical to scalar execution for any width and worker
	// count, except that — like block mode — gang-mode results carry no
	// Stats.Energy/PeakPJ accumulation. <= 1 disables gangs.
	GangWidth int
}

// resolve returns the effective worker count for n jobs.
func (o Options) resolve(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DeriveSeed expands a base seed into the independent seed of job index i
// (SplitMix64 over base+i), so randomized per-job inputs depend only on the
// base seed and the job's position — never on worker count or scheduling
// order.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Runner is a simulation session: one compiled program, one energy
// configuration, and a pool of reusable workers. It is safe for concurrent
// use.
type Runner struct {
	prog *asm.Program
	cfg  energy.Config

	// MaxCycles is the budget applied to jobs that set none; 0 means
	// DefaultMaxCycles. Set it once at construction time — it is read
	// concurrently by batch workers.
	MaxCycles uint64

	pool sync.Pool // *worker
	// traceHint remembers the previous captured run length so batch
	// recorders pre-size their buffers instead of regrowing per cycle.
	traceHint atomic.Int64
	// cycles counts every simulated cycle the session has executed, for
	// service observability (leakd's /metrics).
	cycles atomic.Uint64
	// blockRuns and blockDeopts count jobs completed by the block-compiled
	// engine and jobs that requested it but deoptimized onto the
	// cycle-accurate core, for observability and the deopt-contract tests.
	blockRuns   atomic.Uint64
	blockDeopts atomic.Uint64
	// gangRuns and gangDeopts count lanes completed in lockstep by the gang
	// engine and lanes peeled off and replayed on the cycle-accurate core.
	gangRuns   atomic.Uint64
	gangDeopts atomic.Uint64
}

// NewRunner builds a session for the compiled program under the given
// energy configuration.
func NewRunner(prog *asm.Program, cfg energy.Config) *Runner {
	return &Runner{prog: prog, cfg: cfg}
}

// Program returns the session's compiled program.
func (r *Runner) Program() *asm.Program { return r.prog }

// Config returns the session's energy configuration.
func (r *Runner) Config() energy.Config { return r.cfg }

// CyclesSimulated returns the total simulated cycles executed by this
// session since construction, across all runs and batches.
func (r *Runner) CyclesSimulated() uint64 { return r.cycles.Load() }

// BlockRuns returns the number of jobs completed by the block-compiled
// engine since construction.
func (r *Runner) BlockRuns() uint64 { return r.blockRuns.Load() }

// BlockDeopts returns the number of jobs that requested block mode but were
// replayed on the cycle-accurate core after a deoptimization.
func (r *Runner) BlockDeopts() uint64 { return r.blockDeopts.Load() }

// GangRuns returns the number of lanes completed in lockstep by the gang
// engine since construction.
func (r *Runner) GangRuns() uint64 { return r.gangRuns.Load() }

// GangDeopts returns the number of lanes that entered a gang but were peeled
// off and replayed on the cycle-accurate core.
func (r *Runner) GangDeopts() uint64 { return r.gangDeopts.Load() }

// Probe attach states of a pooled worker's core, tracked so consecutive jobs
// with the same observation shape skip the detach/re-attach round trip.
const (
	attachNone     uint8 = iota // fresh worker, nothing attached yet
	attachMeter                 // meter only (untraced, probe-free jobs)
	attachMeterRec              // meter + trace recorder (traced jobs)
	attachDirty                 // job-specific probes attached; must rebuild
)

// worker bundles the per-worker reusable simulator state: the core, its
// energy meter, a trace recorder reading from that meter, and (created on
// first use) the block-compiled engine with its own memory.
type worker struct {
	c        *cpu.CPU
	meter    *energy.Probe
	rec      trace.Recorder
	attached uint8

	blocks       *block.Engine
	blocksBroken bool // engine construction failed; don't retry per job

	gang       *gang.Engine // lockstep engine, built/widened on first gang use
	gangBroken bool         // construction failed; don't retry per group
	gangReps   []int        // mirror-grouping scratch: engine lane -> job index
	gangLaneOf []int        // mirror-grouping scratch: job index -> engine lane
}

func (r *Runner) getWorker() (*worker, error) {
	if w, ok := r.pool.Get().(*worker); ok {
		return w, nil
	}
	c, err := cpu.New(r.prog, mem.New())
	if err != nil {
		return nil, err
	}
	w := &worker{c: c, meter: energy.NewProbeFor(r.cfg, r.prog.TargetOrDefault())}
	w.rec.Meter = w.meter
	return w, nil
}

// budget returns the effective cycle budget of a job.
func (r *Runner) budget(job Job) uint64 {
	if job.MaxCycles > 0 {
		return job.MaxCycles
	}
	if r.MaxCycles > 0 {
		return r.MaxCycles
	}
	return DefaultMaxCycles
}

// reserveHint sizes a batch recorder: the previous captured length when
// known, otherwise the job's cycle budget, capped so a generous budget does
// not balloon a worker's buffers.
func (r *Runner) reserveHint(budget uint64) int {
	const maxReserve = 1 << 20
	hint := int(r.traceHint.Load())
	if hint <= 0 || uint64(hint) > budget {
		hint = int(budget)
	}
	if hint > maxReserve {
		hint = maxReserve
	}
	return hint
}

// blockEligible reports whether a job may run on the block-compiled engine:
// it must ask for it, observe no pipeline events (no trace, no probes), and
// the program's target must declare a block-compilable pipeline geometry.
func (r *Runner) blockEligible(job *Job) bool {
	return job.Blocks && !job.Trace && job.Probe.isZero() &&
		isa.BlockCompilable(r.prog.TargetOrDefault())
}

// runBlocksOn attempts one job on the worker's block engine. ok=false means
// the engine deoptimized (or could not be built) and the caller must replay
// the job on the cycle-accurate core; nothing observable happened.
func (r *Runner) runBlocksOn(w *worker, job Job) (Result, bool) {
	if w.blocks == nil {
		if w.blocksBroken {
			return Result{}, false
		}
		e, err := block.New(r.prog, mem.New(), &r.cfg)
		if err != nil {
			w.blocksBroken = true
			return Result{}, false
		}
		w.blocks = e
	}
	var res Result
	e := w.blocks
	if err := e.Reset(); err != nil {
		res.Err = err
		return res, true
	}
	for _, wr := range job.Writes {
		if err := e.Mem().StoreWord(wr.Addr, wr.Val); err != nil {
			res.Err = err
			return res, true
		}
	}
	if runErr := e.Run(r.budget(job)); runErr != nil {
		// Every non-nil return is a deopt: faults and mid-run budget expiry
		// are replayed on the cycle-accurate core, which reproduces the
		// exact error (or partial result) the caller would have seen.
		r.blockDeopts.Add(1)
		return Result{}, false
	}
	r.blockRuns.Add(1)
	res.Done = true
	res.Stats = Stats{Stats: e.Stats(), StaticPJ: e.StaticPJ()}
	r.cycles.Add(res.Stats.Cycles)
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		res.Regs[reg] = e.Reg(reg)
	}
	for _, rd := range job.Reads {
		words, err := e.Mem().ReadWords(rd.Addr, rd.Words)
		if err != nil {
			res.Err = err
			return res, true
		}
		res.Mem = append(res.Mem, words)
	}
	return res, true
}

// runOn executes one job on a worker. The worker is reset to power-on state
// first, so results are independent of whatever the worker ran before.
func (r *Runner) runOn(w *worker, job Job) Result {
	if r.blockEligible(&job) {
		if res, ok := r.runBlocksOn(w, job); ok {
			return res
		}
	}
	var res Result
	if err := w.c.Reset(); err != nil {
		res.Err = err
		return res
	}
	for _, wr := range job.Writes {
		if err := w.c.Mem().StoreWord(wr.Addr, wr.Val); err != nil {
			res.Err = err
			return res
		}
	}
	budget := r.budget(job)
	// The meter is always the first probe so that later probes (the trace
	// recorder, caller probes) observe the committed cycle via meter.Last().
	// The attach set is rebuilt only when it differs from the previous run
	// on this worker: batches of identically shaped jobs (every multi-trace
	// workload) keep the probes attached across encryptions and only reset
	// their state.
	w.meter.Reset()
	extra := job.Probe.instantiate(w.meter)
	want := attachMeter
	if job.Trace {
		want = attachMeterRec
	}
	if len(extra) > 0 || w.attached != want {
		w.c.ClearProbes()
		w.c.Attach(w.meter)
		if job.Trace {
			w.c.Attach(&w.rec)
		}
		for _, p := range extra {
			w.c.Attach(p)
		}
		w.attached = want
		if len(extra) > 0 {
			w.attached = attachDirty
		}
	}
	if job.Trace {
		w.rec.Reset()
		w.rec.Reserve(r.reserveHint(budget))
	}

	runErr := w.c.Run(budget)
	res.Stats = Stats{
		Stats:  w.c.Stats(),
		Energy: w.meter.Total(),
		PeakPJ: w.meter.PeakPJ(),
	}
	r.cycles.Add(res.Stats.Cycles)
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		res.Regs[reg] = w.c.Reg(reg)
	}
	switch {
	case runErr == nil:
		res.Done = true
	case errors.Is(runErr, cpu.ErrCycleLimit):
		res.Done = false
		if job.RequireHalt {
			res.Err = runErr
			return res
		}
	default:
		res.Err = runErr
		return res
	}
	if job.Trace {
		res.Trace = w.rec.Snapshot(true)
		r.traceHint.Store(int64(res.Trace.Len()))
	}
	for _, rd := range job.Reads {
		words, err := w.c.Mem().ReadWords(rd.Addr, rd.Words)
		if err != nil {
			res.Err = err
			return res
		}
		res.Mem = append(res.Mem, words)
	}
	return res
}

// Run executes one job on a pooled worker.
func (r *Runner) Run(job Job) Result {
	w, err := r.getWorker()
	if err != nil {
		return Result{Err: err}
	}
	defer r.pool.Put(w)
	return r.runOn(w, job)
}

// RunBatch executes every job across the worker pool and returns results in
// job order. Equivalent to RunBatchContext with a background context.
func (r *Runner) RunBatch(jobs []Job, opts Options) ([]Result, error) {
	return r.RunBatchContext(context.Background(), jobs, opts)
}

// RunBatchContext executes every job across the worker pool and returns
// results in job order. Jobs whose ProbeSpec carries shared probe instances
// are executed sequentially in index order on a single worker (so the
// instances observe one deterministic stream); all other jobs fan out.
//
// Workers check the context between executions: an in-flight simulation
// runs to completion, but once ctx is done no further job starts and every
// unexecuted job's Result carries the context's error. The returned error
// is a *JobError for the lowest-index failing job (all results are still
// returned, each carrying its own Err), so error reporting is as
// deterministic as the results themselves.
func (r *Runner) RunBatchContext(ctx context.Context, jobs []Job, opts Options) ([]Result, error) {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	// Partition the batch: shared-probe jobs are serialized in index order,
	// the rest fan out across the pool.
	var par, seq []int
	for i := range jobs {
		if jobs[i].sharedProbes() {
			seq = append(seq, i)
		} else {
			par = append(par, i)
		}
	}
	var wg sync.WaitGroup
	if len(par) > 0 && opts.GangWidth > 1 {
		r.runParGang(ctx, jobs, par, results, opts, &wg)
	} else if len(par) > 0 {
		workers := opts.resolve(len(par))
		var next atomic.Int64
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, werr := r.getWorker()
				if werr == nil {
					defer r.pool.Put(w)
				}
				for {
					n := int(next.Add(1) - 1)
					if n >= len(par) {
						return
					}
					i := par[n]
					switch {
					case werr != nil:
						results[i] = Result{Err: werr}
					case ctx.Err() != nil:
						results[i] = Result{Err: ctx.Err()}
					default:
						results[i] = r.runOn(w, jobs[i])
					}
				}
			}()
		}
	}
	if len(seq) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, werr := r.getWorker()
			if werr == nil {
				defer r.pool.Put(w)
			}
			for _, i := range seq {
				switch {
				case werr != nil:
					results[i] = Result{Err: werr}
				case ctx.Err() != nil:
					results[i] = Result{Err: ctx.Err()}
				default:
					results[i] = r.runOn(w, jobs[i])
				}
			}
		}()
	}
	wg.Wait()
	for i := range results {
		if err := results[i].Err; err != nil {
			return results, &JobError{Index: i, Err: err}
		}
	}
	return results, nil
}

// ForEach runs fn(0), …, fn(n-1) across a worker pool (workers <= 0 uses
// GOMAXPROCS) and returns the lowest-index error. It is the scheduling
// primitive for batch work that is not a plain simulator job — compiling
// machines per policy, leak-check sweeps, ablation grids — with the same
// deterministic contract: fn must touch only state owned by its index.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachContext(context.Background(), n, workers, fn)
}

// ForEachContext is ForEach with cancellation: the context is checked
// before each call, an in-flight fn always completes, and indices skipped
// after cancellation report the context's error (so the lowest-index error
// the caller sees is deterministic for a given cancellation point).
func ForEachContext(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	errs := make([]error, n)
	workers = Options{Workers: workers}.resolve(n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
