package sim_test

// Session-level tests of block mode (Job.Blocks): for every job the runner
// may route to the block-compiled engine, the Result must be bit-identical
// to the cycle-accurate run of the same job — ciphertexts, full cpu.Stats,
// registers, memory read-back, and identical errors (including the exact
// *cpu.CycleLimitError) when the engine deopts and the job replays.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/sim"
)

const desCipher = uint64(0x85E813540F0AB405)

// packBits packs the 64 one-bit words of the DES cipher global (MSB first),
// mirroring desprog's internal layout.
func packBits(words []uint32) uint64 {
	var v uint64
	for i := 0; i < 64; i++ {
		v = v<<1 | uint64(words[i]&1)
	}
	return v
}

func desMachine(t *testing.T, policy compiler.Policy, isaName string) *desprog.Machine {
	t.Helper()
	target, ok := isa.TargetByName(isaName)
	if !ok {
		t.Fatalf("unknown target %q", isaName)
	}
	m, err := desprog.NewFull(compiler.Options{Policy: policy, Target: target}, energy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runBoth runs one job in cycle mode and in block mode on the same runner
// and demands identical architectural results.
func runBoth(t *testing.T, m *desprog.Machine, job sim.Job) (cycleRes, blockRes sim.Result) {
	t.Helper()
	r := m.Runner()
	job.Blocks = false
	cycleRes = r.Run(job)
	job.Blocks = true
	before := r.BlockRuns()
	blockRes = r.Run(job)
	if r.BlockRuns() == before && blockRes.Err == nil && blockRes.Done {
		t.Error("completed Blocks job was not counted as a block run")
	}

	if (cycleRes.Err == nil) != (blockRes.Err == nil) {
		t.Fatalf("error divergence: cycle %v, block %v", cycleRes.Err, blockRes.Err)
	}
	if cycleRes.Err != nil && cycleRes.Err.Error() != blockRes.Err.Error() {
		t.Fatalf("errors differ: cycle %q, block %q", cycleRes.Err, blockRes.Err)
	}
	if cycleRes.Done != blockRes.Done {
		t.Fatalf("done divergence: cycle %v, block %v", cycleRes.Done, blockRes.Done)
	}
	if cycleRes.Stats.Stats != blockRes.Stats.Stats {
		t.Errorf("cpu stats diverge:\n cycle %+v\n block %+v", cycleRes.Stats.Stats, blockRes.Stats.Stats)
	}
	if cycleRes.Regs != blockRes.Regs {
		t.Error("register files diverge")
	}
	if len(cycleRes.Mem) != len(blockRes.Mem) {
		t.Fatalf("mem read-back count: %d vs %d", len(cycleRes.Mem), len(blockRes.Mem))
	}
	for i := range cycleRes.Mem {
		if fmt.Sprint(cycleRes.Mem[i]) != fmt.Sprint(blockRes.Mem[i]) {
			t.Errorf("mem read %d diverges", i)
		}
	}
	return cycleRes, blockRes
}

// TestBlocksDESEquivalence runs the DES known-answer encryption in both
// modes under every policy on both ISAs: identical ciphertext, stats,
// registers and memory, with block mode reporting a static-energy floor
// below the metered total.
func TestBlocksDESEquivalence(t *testing.T) {
	for _, isaName := range []string{"pisa", "rv32"} {
		for _, policy := range compiler.Policies() {
			t.Run(isaName+"/"+policy.String(), func(t *testing.T) {
				m := desMachine(t, policy, isaName)
				job, err := m.EncryptJob(0x133457799BBCDFF1, 0x0123456789ABCDEF, 0, false)
				if err != nil {
					t.Fatal(err)
				}
				cycleRes, blockRes := runBoth(t, m, job)
				if !blockRes.Done {
					t.Fatal("encryption did not complete")
				}
				if got := packBits(blockRes.Mem[0]); got != desCipher {
					t.Fatalf("block-mode ciphertext %#016x, want %#016x", got, desCipher)
				}
				metered := cycleRes.Stats.Energy.Total
				static := blockRes.Stats.StaticPJ
				if static <= 0 || static > metered {
					t.Errorf("static floor %.1f pJ outside (0, metered %.1f]", static, metered)
				}
				if blockRes.Stats.Energy.Total != 0 || blockRes.Stats.PeakPJ != 0 {
					t.Error("block mode reported metered energy without a meter")
				}
				// The manifest locks the cycle-accurate core; block mode must
				// agree with it through the cycle path it was compared against.
				if entry, ok := goldenEntry(t, "des", policy.String()); ok && isaName == "pisa" {
					if blockRes.Stats.Cycles != entry.Cycles ||
						blockRes.Stats.Insts != entry.Insts ||
						blockRes.Stats.SecureInst != entry.SecureInst {
						t.Errorf("block stats diverge from golden manifest: got %d/%d/%d, want %d/%d/%d",
							blockRes.Stats.Cycles, blockRes.Stats.Insts, blockRes.Stats.SecureInst,
							entry.Cycles, entry.Insts, entry.SecureInst)
					}
					if out := fmt.Sprintf("%016x", packBits(blockRes.Mem[0])); out != entry.Output {
						t.Errorf("block output %s, want golden %s", out, entry.Output)
					}
				}
			})
		}
	}
}

// TestBlocksCycleLimit pins deopt-and-replay for budgets that expire
// mid-run: the block engine cannot complete, the job replays on the
// cycle-accurate core, and the partial Result (or the RequireHalt error) is
// identical in both modes, down to the exact *cpu.CycleLimitError.
func TestBlocksCycleLimit(t *testing.T) {
	m := desMachine(t, compiler.PolicyNone, "pisa")
	job, err := m.EncryptJob(0x133457799BBCDFF1, 0x0123456789ABCDEF, 2000, false)
	if err != nil {
		t.Fatal(err)
	}

	r := m.Runner()
	deoptsBefore := r.BlockDeopts()
	cycleRes, blockRes := runBoth(t, m, job)
	if cycleRes.Done || blockRes.Done {
		t.Fatal("2000-cycle budget unexpectedly completed DES")
	}
	if r.BlockDeopts() == deoptsBefore {
		t.Error("mid-run budget expiry was not counted as a deopt")
	}
	if blockRes.Stats.Cycles != 2000 {
		t.Errorf("partial run simulated %d cycles, want exactly the 2000 budget", blockRes.Stats.Cycles)
	}

	job.RequireHalt = true
	cycleRes, blockRes = runBoth(t, m, job)
	var cl, bl *cpu.CycleLimitError
	if !errors.As(cycleRes.Err, &cl) || !errors.As(blockRes.Err, &bl) {
		t.Fatalf("RequireHalt errors: cycle %v, block %v; want cycle-limit errors", cycleRes.Err, blockRes.Err)
	}
	if cl.Limit != bl.Limit {
		t.Errorf("cycle-limit errors disagree on the limit: %d vs %d", cl.Limit, bl.Limit)
	}
}

// TestBlocksObservedJobsFallBack pins the observation-only invariant: jobs
// that capture traces or attach probes never enter block mode, and their
// traces remain bit-identical to the golden manifest.
func TestBlocksObservedJobsFallBack(t *testing.T) {
	m, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Runner()

	t.Run("trace", func(t *testing.T) {
		job, err := m.EncryptJob(goldenKey, goldenPlaintext, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		job.Blocks = true
		before := r.BlockRuns()
		res := r.Run(job)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if r.BlockRuns() != before {
			t.Error("traced job entered block mode")
		}
		if res.Trace == nil {
			t.Fatal("traced job captured no trace")
		}
		if entry, ok := goldenEntry(t, "des", compiler.PolicySelective.String()); ok {
			if got := traceHash(res.Trace); got != entry.TraceHash {
				t.Errorf("trace hash %s, want golden %s", got, entry.TraceHash)
			}
			if bits := fmt.Sprintf("%016x", math.Float64bits(res.Stats.Energy.Total)); bits != entry.EnergyBits {
				t.Errorf("energy bits %s, want golden %s", bits, entry.EnergyBits)
			}
		}
	})

	t.Run("probe", func(t *testing.T) {
		job, err := m.EncryptJob(goldenKey, goldenPlaintext, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		job.Blocks = true
		var cycles uint64
		job.Probe = sim.SharedProbes(cpu.ProbeFunc(func(cpu.CycleInfo) { cycles++ }))
		before := r.BlockRuns()
		res := r.Run(job)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if r.BlockRuns() != before {
			t.Error("probed job entered block mode")
		}
		if cycles != res.Stats.Cycles {
			t.Errorf("probe observed %d cycles, run reported %d", cycles, res.Stats.Cycles)
		}
	})
}

// TestBlocksBatch fans a block-mode batch across workers and checks every
// result against the cycle-mode batch of the same jobs.
func TestBlocksBatch(t *testing.T) {
	m := desMachine(t, compiler.PolicyAllSecure, "rv32")
	plaintexts := []uint64{0x0123456789ABCDEF, 0xFFFFFFFFFFFFFFFF, 0, 0x0123456789ABCDEF ^ 1}
	jobs := make([]sim.Job, len(plaintexts))
	for i, pt := range plaintexts {
		job, err := m.EncryptJob(0x133457799BBCDFF1, pt, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	r := m.Runner()
	base, err := r.RunBatch(jobs, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		jobs[i].Blocks = true
	}
	before := r.BlockRuns()
	blk, err := r.RunBatch(jobs, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BlockRuns() - before; got != uint64(len(jobs)) {
		t.Errorf("%d of %d batch jobs ran in block mode", got, len(jobs))
	}
	for i := range base {
		if base[i].Stats.Stats != blk[i].Stats.Stats {
			t.Errorf("job %d stats diverge: %+v vs %+v", i, base[i].Stats.Stats, blk[i].Stats.Stats)
		}
		if packBits(base[i].Mem[0]) != packBits(blk[i].Mem[0]) {
			t.Errorf("job %d ciphertext diverges", i)
		}
		if !blk[i].Done {
			t.Errorf("job %d did not complete in block mode", i)
		}
	}
}
