package des

// Key-schedule inversion for the DPA attack: the 48 bits of round key K1
// pin down 48 of the 56 effective key bits; the remaining 8 are found by
// trial encryption. These helpers live here (rather than in package dpa)
// because they are pure key-schedule algebra.

// K1BitToKeyBit maps a bit position in K1 (0 = MSB of the 48-bit round key)
// to the corresponding bit position in the original 64-bit key (0 = MSB).
//
// K1 = PC2(rotl1(PC1(key))): invert PC-2, undo the single left rotation of
// the C and D halves, and invert PC-1.
func K1BitToKeyBit(k1Bit int) int {
	cdPos := PC2[k1Bit] - 1 // 0-based position in the rotated C||D
	// Undo rotl-by-1 within each 28-bit half.
	var pre int
	if cdPos < 28 {
		pre = (cdPos + 1) % 28
	} else {
		pre = 28 + (cdPos-28+1)%28
	}
	return PC1[pre] - 1 // 0-based position in the 64-bit key
}

// UnresolvedKeyBits returns the 0-based positions (MSB-first) of the
// PC-1-selected key bits that K1 does not determine. DES uses 56 effective
// bits; PC-2 drops 8 of them per round, so exactly 8 remain unknown after a
// first-round attack.
func UnresolvedKeyBits() []int {
	covered := map[int]bool{}
	for i := 0; i < 48; i++ {
		covered[K1BitToKeyBit(i)] = true
	}
	var out []int
	for _, pos := range PC1 {
		if !covered[pos-1] {
			out = append(out, pos-1)
		}
	}
	return out
}

// AssembleKeyFromK1 builds the partial 64-bit key implied by a recovered K1
// (given as eight 6-bit chunks, chunk 0 feeding S-box 1). Parity bits and
// the unresolved bits are left zero.
func AssembleKeyFromK1(chunks [8]uint32) uint64 {
	var key uint64
	for i := 0; i < 48; i++ {
		bit := chunks[i/6] >> (5 - i%6) & 1
		if bit == 1 {
			key |= 1 << (63 - K1BitToKeyBit(i))
		}
	}
	return key
}

// RecoverKey completes a first-round sub-key attack into the full DES key:
// the 48 recovered K1 bits fix 48 effective key bits, and the remaining 8
// are brute-forced against one known plaintext/ciphertext pair. The
// returned key has zero parity bits (DES ignores them). ok is false when no
// candidate reproduces the ciphertext — i.e. some recovered chunk was
// wrong.
func RecoverKey(chunks [8]uint32, plaintext, ciphertext uint64) (uint64, bool) {
	base := AssembleKeyFromK1(chunks)
	free := UnresolvedKeyBits()
	for mask := 0; mask < 1<<len(free); mask++ {
		key := base
		for j, pos := range free {
			if mask>>j&1 == 1 {
				key |= 1 << (63 - pos)
			}
		}
		if Encrypt(key, plaintext) == ciphertext {
			return key, true
		}
	}
	return 0, false
}

// StripParity zeroes the 8 parity bits (LSB of each byte), the canonical
// form RecoverKey produces — useful for comparing recovered keys with the
// true key.
func StripParity(key uint64) uint64 {
	return key &^ 0x0101010101010101
}
