package des

import (
	"testing"
	"testing/quick"
)

// Classic worked example (Grabbe/FIPS walkthrough).
const (
	classicKey    = 0x133457799BBCDFF1
	classicPlain  = 0x0123456789ABCDEF
	classicCipher = 0x85E813540F0AB405
)

func TestKnownVectors(t *testing.T) {
	vectors := []struct {
		key, plain, cipher uint64
	}{
		{classicKey, classicPlain, classicCipher},
		// NBS/industry vectors.
		{0x0E329232EA6D0D73, 0x8787878787878787, 0x0000000000000000},
		{0x0101010101010101, 0x0000000000000000, 0x8CA64DE9C1B123A7},
		{0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x7359B2163E4EDC58},
		{0x3000000000000000, 0x1000000000000001, 0x958E6E627A05557B},
		{0x1111111111111111, 0x1111111111111111, 0xF40379AB9E0EC533},
		{0x0123456789ABCDEF, 0x1111111111111111, 0x17668DFC7292532D},
		{0xFEDCBA9876543210, 0x0123456789ABCDEF, 0xED39D950FA74BCC4},
	}
	for _, v := range vectors {
		if got := Encrypt(v.key, v.plain); got != v.cipher {
			t.Errorf("Encrypt(%#016x, %#016x) = %#016x, want %#016x", v.key, v.plain, got, v.cipher)
		}
		if got := Decrypt(v.key, v.cipher); got != v.plain {
			t.Errorf("Decrypt(%#016x, %#016x) = %#016x, want %#016x", v.key, v.cipher, got, v.plain)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(key, plain uint64) bool {
		return Decrypt(key, Encrypt(key, plain)) == plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestComplementationProperty(t *testing.T) {
	// DES(^k, ^p) == ^DES(k, p).
	f := func(key, plain uint64) bool {
		return Encrypt(^key, ^plain) == ^Encrypt(key, plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParityBitsIgnored(t *testing.T) {
	// Flipping any parity bit (LSB of each key byte) must not change the
	// ciphertext.
	base := Encrypt(classicKey, classicPlain)
	for i := 0; i < 8; i++ {
		k := classicKey ^ (1 << (8 * i))
		if got := Encrypt(uint64(k), classicPlain); got != base {
			t.Errorf("parity bit %d affected ciphertext", i)
		}
	}
}

func TestSubkeysClassic(t *testing.T) {
	// Round keys of the classic walkthrough.
	ks := Subkeys(classicKey)
	want := map[int]uint64{
		0:  0x1B02EFFC7072,
		1:  0x79AED9DBC9E5,
		15: 0xCB3D8B0E17F5,
	}
	for r, k := range want {
		if ks[r] != k {
			t.Errorf("K%d = %#012x, want %#012x", r+1, ks[r], k)
		}
	}
}

func TestEncryptTraceStates(t *testing.T) {
	// Round-1 state of the classic walkthrough: L1 = R0, R1 = ...
	_, st := EncryptTrace(classicKey, classicPlain)
	if st[0].L != 0xF0AAF0AA {
		t.Errorf("L1 = %#08x, want F0AAF0AA", st[0].L)
	}
	if st[0].R != 0xEF4A6544 {
		t.Errorf("R1 = %#08x, want EF4A6544", st[0].R)
	}
	// Final state consistency: FP(R16||L16) == ciphertext.
	c, st := EncryptTrace(classicKey, classicPlain)
	pre := uint64(st[15].R)<<32 | uint64(st[15].L)
	if permute(pre, 64, FP) != c {
		t.Error("EncryptTrace final state inconsistent with ciphertext")
	}
}

func TestPermuteInverses(t *testing.T) {
	f := func(v uint64) bool {
		return permute(permute(v, 64, IP), 64, FP) == v &&
			permute(permute(v, 64, FP), 64, IP) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableShapes(t *testing.T) {
	cases := []struct {
		name string
		tab  []int
		n    int
		max  int
	}{
		{"IP", IP, 64, 64}, {"FP", FP, 64, 64}, {"E", E, 48, 32},
		{"P", P, 32, 32}, {"PC1", PC1, 56, 64}, {"PC2", PC2, 48, 56},
	}
	for _, c := range cases {
		if len(c.tab) != c.n {
			t.Errorf("%s has %d entries, want %d", c.name, len(c.tab), c.n)
		}
		for _, v := range c.tab {
			if v < 1 || v > c.max {
				t.Errorf("%s entry %d out of range 1..%d", c.name, v, c.max)
			}
		}
	}
	if len(Shifts) != 16 {
		t.Errorf("Shifts has %d entries", len(Shifts))
	}
	total := 0
	for _, s := range Shifts {
		total += s
	}
	if total != 28 {
		t.Errorf("total rotation %d, want 28 (full cycle)", total)
	}
}

func TestSBoxRows(t *testing.T) {
	// Each S-box row must be a permutation of 0..15 (FIPS property).
	for b, box := range SBox {
		for row := 0; row < 4; row++ {
			var seen [16]bool
			for col := 0; col < 16; col++ {
				v := box[row*16+col]
				if v > 15 || seen[v] {
					t.Errorf("S%d row %d is not a permutation", b+1, row)
					break
				}
				seen[v] = true
			}
		}
	}
}

func TestSBoxAtConvention(t *testing.T) {
	// Input 0b011011 to S1: row = 0b01 = 1, col = 0b1101 = 13 -> 5 (FIPS
	// worked example).
	if got := SBoxAt(0, 0b011011); got != 5 {
		t.Errorf("S1(011011) = %d, want 5", got)
	}
}

func TestFirstRoundSBoxOutputMatchesFeistel(t *testing.T) {
	// Predicting with the true key bits must match the real round function.
	f := func(key, plain uint64) bool {
		ks := Subkeys(key)
		ip := permute(plain, 64, IP)
		r0 := ip & 0xffffffff
		x := permute(r0, 32, E) ^ ks[0]
		for box := 0; box < 8; box++ {
			want := SBoxAt(box, uint32(x>>(42-6*box)&0x3f))
			got := FirstRoundSBoxOutput(plain, box, SubkeySixBits(key, box))
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubkeySixBitsRange(t *testing.T) {
	for box := 0; box < 8; box++ {
		if SubkeySixBits(classicKey, box) > 63 {
			t.Errorf("box %d subkey bits out of range", box)
		}
	}
}

func TestFeistelKnown(t *testing.T) {
	// From the classic walkthrough: f(R0, K1) with R0 = F0AAF0AA.
	ks := Subkeys(classicKey)
	got := Feistel(0xF0AAF0AA, ks[0])
	if got != 0x234AA9BB {
		t.Errorf("f(R0,K1) = %#08x, want 234AA9BB", got)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encrypt(classicKey, classicPlain)
	}
}

func TestK1BitToKeyBitConsistency(t *testing.T) {
	// Pushing the true key through the mapping must reproduce K1.
	f := func(key uint64) bool {
		k1 := Subkeys(key)[0]
		for i := 0; i < 48; i++ {
			want := k1 >> (47 - i) & 1
			got := key >> (63 - K1BitToKeyBit(i)) & 1
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnresolvedKeyBits(t *testing.T) {
	free := UnresolvedKeyBits()
	if len(free) != 8 {
		t.Fatalf("unresolved bits = %d, want 8", len(free))
	}
	seen := map[int]bool{}
	for _, pos := range free {
		if pos < 0 || pos > 63 || pos%8 == 7 {
			t.Errorf("unresolved bit %d invalid (parity bits are never PC-1 selected)", pos)
		}
		if seen[pos] {
			t.Errorf("duplicate unresolved bit %d", pos)
		}
		seen[pos] = true
	}
}

func TestRecoverKeyRoundTrip(t *testing.T) {
	f := func(key, plaintext uint64) bool {
		ct := Encrypt(key, plaintext)
		var chunks [8]uint32
		for box := 0; box < 8; box++ {
			chunks[box] = SubkeySixBits(key, box)
		}
		rec, ok := RecoverKey(chunks, plaintext, ct)
		if !ok {
			return false
		}
		// The recovered key must be encryption-equivalent and match the
		// true key up to parity bits.
		return Encrypt(rec, plaintext) == ct && StripParity(rec) == StripParity(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecoverKeyRejectsWrongChunks(t *testing.T) {
	key, pt := uint64(classicKey), uint64(classicPlain)
	ct := Encrypt(key, pt)
	var chunks [8]uint32
	for box := 0; box < 8; box++ {
		chunks[box] = SubkeySixBits(key, box)
	}
	chunks[3] ^= 0x15 // corrupt one chunk
	if _, ok := RecoverKey(chunks, pt, ct); ok {
		t.Error("RecoverKey accepted corrupted chunks")
	}
}
