// Package des is the reference implementation of the Data Encryption
// Standard (FIPS 46-3) used as the correctness oracle for the simulated,
// compiler-masked DES program, and as the prediction model for the DPA
// attack. It deliberately exposes internals a library user normally would
// not need — sub-keys, per-round state, first-round S-box outputs — because
// the attack framework and the experiments consume them.
package des

// permute applies a 1-based, MSB-first permutation table to the low `width`
// bits of v, producing len(table) output bits.
func permute(v uint64, width int, table []int) uint64 {
	var out uint64
	for _, pos := range table {
		out <<= 1
		out |= v >> (width - pos) & 1
	}
	return out
}

// rotl28 rotates a 28-bit value left by n.
func rotl28(v uint64, n int) uint64 {
	return (v<<n | v>>(28-n)) & 0xfffffff
}

// Subkeys derives the sixteen 48-bit round keys from a 64-bit key (the 8
// parity bits are ignored, as in the standard).
func Subkeys(key uint64) [16]uint64 {
	var ks [16]uint64
	cd := permute(key, 64, PC1)
	c, d := cd>>28, cd&0xfffffff
	for r := 0; r < 16; r++ {
		c, d = rotl28(c, Shifts[r]), rotl28(d, Shifts[r])
		ks[r] = permute(c<<28|d, 56, PC2)
	}
	return ks
}

// Feistel computes the DES round function f(R, K) for a 32-bit half block R
// and 48-bit round key K.
func Feistel(r uint64, k uint64) uint64 {
	x := permute(r, 32, E) ^ k
	var s uint64
	for box := 0; box < 8; box++ {
		six := uint32(x >> (42 - 6*box) & 0x3f)
		s = s<<4 | uint64(SBoxAt(box, six))
	}
	return permute(s, 32, P)
}

// RoundState is the (L, R) pair after a given round, exposed for validating
// the simulated implementation round by round.
type RoundState struct {
	L, R uint32
}

// EncryptTrace encrypts one block and returns the ciphertext together with
// the (L, R) state after every round.
func EncryptTrace(key, plaintext uint64) (uint64, [16]RoundState) {
	ks := Subkeys(key)
	ip := permute(plaintext, 64, IP)
	l, r := ip>>32, ip&0xffffffff
	var states [16]RoundState
	for i := 0; i < 16; i++ {
		l, r = r, l^Feistel(r, ks[i])
		states[i] = RoundState{L: uint32(l), R: uint32(r)}
	}
	// The final swap: pre-output is R16 || L16.
	return permute(r<<32|l, 64, FP), states
}

// Encrypt enciphers one 64-bit block.
func Encrypt(key, plaintext uint64) uint64 {
	c, _ := EncryptTrace(key, plaintext)
	return c
}

// Decrypt deciphers one 64-bit block.
func Decrypt(key, ciphertext uint64) uint64 {
	ks := Subkeys(key)
	ip := permute(ciphertext, 64, IP)
	l, r := ip>>32, ip&0xffffffff
	for i := 15; i >= 0; i-- {
		l, r = r, l^Feistel(r, ks[i])
	}
	return permute(r<<32|l, 64, FP)
}

// FirstRoundSBoxInput returns the 6-bit input of S-box `box` in round 1 for
// the given plaintext, before keying: E(R0) bits for that box. XOR with the
// 6 relevant key bits to obtain the actual S-box input.
func FirstRoundSBoxInput(plaintext uint64, box int) uint32 {
	ip := permute(plaintext, 64, IP)
	r0 := ip & 0xffffffff
	x := permute(r0, 32, E)
	return uint32(x >> (42 - 6*box) & 0x3f)
}

// FirstRoundSBoxOutput returns the 4-bit output of S-box `box` in round 1
// given the plaintext and a guess of the 6 sub-key bits feeding that box —
// the DPA selection function of Kocher et al. [7] as used by Goubin-Patarin
// [5].
func FirstRoundSBoxOutput(plaintext uint64, box int, subkey6 uint32) uint8 {
	return SBoxAt(box, FirstRoundSBoxInput(plaintext, box)^(subkey6&0x3f))
}

// SubkeySixBits extracts the 6 bits of round-1 sub-key K1 that feed S-box
// `box`, for checking attack results against ground truth.
func SubkeySixBits(key uint64, box int) uint32 {
	k1 := Subkeys(key)[0]
	return uint32(k1 >> (42 - 6*box) & 0x3f)
}
