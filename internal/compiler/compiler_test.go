package compiler

import (
	"math"
	"strings"
	"testing"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/mem"
)

// runProgram compiles src, pokes globals, runs to halt and returns the CPU.
func runProgram(t *testing.T, src string, policy Policy, poke map[string]uint32) (*Result, *cpu.CPU) {
	t.Helper()
	res, err := Compile(src, policy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c, err := cpu.New(res.Program, mem.New())
	if err != nil {
		t.Fatalf("cpu: %v", err)
	}
	for name, v := range poke {
		addr, ok := res.Program.Symbols[GlobalLabel(name)]
		if !ok {
			t.Fatalf("no global %q", name)
		}
		if err := c.Mem().StoreWord(addr, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(5_000_000); err != nil {
		t.Fatalf("run: %v\nasm:\n%s", err, res.Asm)
	}
	return res, c
}

// global reads a global scalar or array element after the run.
func global(t *testing.T, res *Result, c *cpu.CPU, name string, idx int) uint32 {
	t.Helper()
	addr, ok := res.Program.Symbols[GlobalLabel(name)]
	if !ok {
		t.Fatalf("no global %q", name)
	}
	v, err := c.Mem().LoadWord(addr + uint32(4*idx))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEndToEndArithmetic(t *testing.T) {
	src := `
		int out[8];
		void main() {
			int a; int b;
			a = 21; b = 3;
			out[0] = a + b;
			out[1] = a - b;
			out[2] = a * b;
			out[3] = a ^ b;
			out[4] = a & b;
			out[5] = a | b;
			out[6] = a << 2;
			out[7] = a >> 1;
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	want := []uint32{24, 18, 63, 22, 1, 23, 84, 10}
	for i, w := range want {
		if got := global(t, res, c, "out", i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestEndToEndComparisons(t *testing.T) {
	src := `
		int out[8];
		void main() {
			int a; int b;
			a = 5; b = 9;
			out[0] = a < b;
			out[1] = a > b;
			out[2] = a <= b;
			out[3] = a >= b;
			out[4] = a == b;
			out[5] = a != b;
			out[6] = b <= b;
			out[7] = b >= b;
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	want := []uint32{1, 0, 1, 0, 0, 1, 1, 1}
	for i, w := range want {
		if got := global(t, res, c, "out", i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestEndToEndUnary(t *testing.T) {
	src := `
		int out[3];
		void main() {
			int a;
			a = 5;
			out[0] = -a;
			out[1] = ~a;
			out[2] = !a + !0;
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := int32(global(t, res, c, "out", 0)); got != -5 {
		t.Errorf("-a = %d", got)
	}
	if got := global(t, res, c, "out", 1); got != ^uint32(5) {
		t.Errorf("~a = %#x", got)
	}
	if got := global(t, res, c, "out", 2); got != 1 {
		t.Errorf("!a + !0 = %d", got)
	}
}

func TestEndToEndLoops(t *testing.T) {
	src := `
		int out[2];
		void main() {
			int i; int sum;
			sum = 0;
			for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
			out[0] = sum;
			sum = 0;
			i = 5;
			while (i > 0) { sum = sum + 2; i = i - 1; }
			out[1] = sum;
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := global(t, res, c, "out", 0); got != 55 {
		t.Errorf("for sum = %d, want 55", got)
	}
	if got := global(t, res, c, "out", 1); got != 10 {
		t.Errorf("while sum = %d, want 10", got)
	}
}

func TestEndToEndIfElse(t *testing.T) {
	src := `
		int out[3];
		void main() {
			int i;
			for (i = 0; i < 3; i = i + 1) {
				if (i == 0) { out[i] = 10; }
				else if (i == 1) { out[i] = 20; }
				else { out[i] = 30; }
			}
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	for i, w := range []uint32{10, 20, 30} {
		if got := global(t, res, c, "out", i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestEndToEndFunctions(t *testing.T) {
	src := `
		int out[3];
		int add(int a, int b) { return a + b; }
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		void main() {
			out[0] = add(2, 3);
			out[1] = fib(10);
			out[2] = add(fib(5), add(1, 1));
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := global(t, res, c, "out", 0); got != 5 {
		t.Errorf("add = %d", got)
	}
	if got := global(t, res, c, "out", 1); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
	if got := global(t, res, c, "out", 2); got != 7 {
		t.Errorf("nested calls = %d, want 7", got)
	}
}

func TestEndToEndArraysAndGlobalInit(t *testing.T) {
	src := `
		int tab[4] = { 10, 20, 30, 40 };
		int out[4];
		void main() {
			int i;
			int loc[4];
			for (i = 0; i < 4; i = i + 1) { loc[i] = tab[3 - i]; }
			for (i = 0; i < 4; i = i + 1) { out[i] = loc[i]; }
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	for i, w := range []uint32{40, 30, 20, 10} {
		if got := global(t, res, c, "out", i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestResultsIdenticalAcrossPolicies(t *testing.T) {
	src := `
		secure int key[4];
		int out[4];
		void main() {
			int i;
			for (i = 0; i < 4; i = i + 1) { out[i] = key[i] ^ 5; }
		}
	`
	poke := map[string]uint32{"key": 9}
	var ref []uint32
	for _, pol := range Policies() {
		res, c := runProgram(t, src, pol, poke)
		var got []uint32
		for i := 0; i < 4; i++ {
			got = append(got, global(t, res, c, "out", i))
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("policy %v: out[%d] = %d, want %d", pol, i, got[i], ref[i])
			}
		}
	}
	if ref[0] != 9^5 {
		t.Errorf("out[0] = %d, want %d", ref[0], 9^5)
	}
}

// TestFigure4Shape reproduces the paper's Figure 4: in the left-side copy
// loop `newL[i] = oldR[i]`, only the data load and store become secure; the
// loop-index bookkeeping stays insecure.
func TestFigure4Shape(t *testing.T) {
	src := `
		secure int key[4];
		int oldR[32];
		int newL[32];
		void main() {
			int i;
			for (i = 0; i < 32; i = i + 1) { oldR[i] = key[0]; }
			for (i = 0; i < 32; i = i + 1) { newL[i] = oldR[i]; }
		}
	`
	res, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	// oldR is in the forward slice (assigned from key), so newL becomes
	// tainted too.
	joined := strings.Join(res.Report.Tainted, ",")
	for _, want := range []string{"key", "oldR", "newL"} {
		if !strings.Contains(joined, want) {
			t.Errorf("forward slice %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "main/i") {
		t.Errorf("loop index wrongly tainted: %q", joined)
	}
	// The emitted code must contain secure data accesses AND insecure index
	// bookkeeping.
	if !strings.Contains(res.Asm, "lw.s") || !strings.Contains(res.Asm, "sw.s") {
		t.Error("missing secure load/store in output")
	}
	if !strings.Contains(res.Asm, "\tlw ") && !strings.Contains(res.Asm, "\tlw\t") {
		t.Error("index loads should remain insecure")
	}
	if res.Report.SecureLoads == res.Report.TotalLoads {
		t.Error("selective policy secured every load; should be selective")
	}
}

func TestPolicyOrdering(t *testing.T) {
	src := `
		secure int key[4];
		int out[4];
		void main() {
			int i; int t;
			for (i = 0; i < 4; i = i + 1) {
				t = key[i] ^ i;
				out[i] = t;
			}
		}
	`
	counts := map[Policy]int{}
	for _, pol := range Policies() {
		res, err := Compile(src, pol)
		if err != nil {
			t.Fatal(err)
		}
		counts[pol] = res.Report.SecuredOps
	}
	if counts[PolicyNone] != 0 {
		t.Errorf("none secured %d ops", counts[PolicyNone])
	}
	if !(counts[PolicySeedsOnly] <= counts[PolicySelective]) {
		t.Errorf("seeds-only (%d) should secure no more than selective (%d)", counts[PolicySeedsOnly], counts[PolicySelective])
	}
	if !(counts[PolicySelective] < counts[PolicyAllSecure]) {
		t.Errorf("selective (%d) should secure fewer than all-secure (%d)", counts[PolicySelective], counts[PolicyAllSecure])
	}
	if counts[PolicySeedsOnly] == 0 {
		t.Error("seeds-only secured nothing")
	}
}

func TestForwardSlicingVsSeedsOnly(t *testing.T) {
	// derived = key[0]; out = derived ^ 1 — the second statement is only
	// protected when slicing is on.
	src := `
		secure int key[1];
		int derived;
		int out;
		void main() {
			derived = key[0];
			out = derived ^ 1;
		}
	`
	sel, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := Compile(src, PolicySeedsOnly)
	if err != nil {
		t.Fatal(err)
	}
	if seeds.Report.SecuredOps >= sel.Report.SecuredOps {
		t.Errorf("seeds-only (%d ops) should protect less than selective (%d ops)",
			seeds.Report.SecuredOps, sel.Report.SecuredOps)
	}
	// The xor in the second statement: selective secures it, seeds-only not.
	if !strings.Contains(sel.Asm, "xor.s") {
		t.Error("selective should secure the derived xor")
	}
	if strings.Contains(seeds.Asm, "xor.s") {
		t.Error("seeds-only must not secure the derived xor")
	}
}

func TestControlDependenceTaint(t *testing.T) {
	src := `
		secure int key[1];
		int out;
		void main() {
			if (key[0] > 0) { out = 1; } else { out = 2; }
		}
	`
	res, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Report.Tainted {
		if v == "out" {
			found = true
		}
	}
	if !found {
		t.Errorf("control-dependent variable not in slice: %v", res.Report.Tainted)
	}
}

func TestCallTaintPropagation(t *testing.T) {
	src := `
		secure int key[1];
		int out;
		int clean;
		int pass(int x) { return x; }
		void main() {
			out = pass(key[0]);
			clean = pass(0);
		}
	`
	res, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Report.Tainted, ",")
	if !strings.Contains(joined, "out") || !strings.Contains(joined, "pass/x") {
		t.Errorf("call taint lost: %q", joined)
	}
	// Context-insensitivity makes clean tainted too (conservative) — it
	// must at least not crash; document the conservatism.
	if !res.Analysis.ReturnTainted["pass"] {
		t.Error("pass should have tainted return")
	}
}

func TestSecureIndexing(t *testing.T) {
	// S-box style lookup with a key-derived index: the index scaling,
	// address formation and the load itself must be secure.
	src := `
		secure int key[1];
		int sbox[64];
		int out;
		void main() {
			out = sbox[key[0] & 63];
		}
	`
	res, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"sll.s", "addu.s", "lw.s"} {
		if !strings.Contains(res.Asm, m) {
			t.Errorf("secure indexing must emit %s; asm:\n%s", m, res.Asm)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", "int x;", "no main"},
		{"bad main", "int main() { return 1; }", "main must be void"},
		{"undef var", "void main() { x = 1; }", "undefined variable"},
		{"undef func", "void main() { f(); }", "undefined function"},
		{"arity", "int f(int a) { return a; } void main() { f(); }", "0 arguments, want 1"},
		{"array as value", "int a[2]; void main() { a = 1; }", "cannot assign to array"},
		{"index scalar", "int a; void main() { a[0] = 1; }", "indexing non-array"},
		{"array value use", "int a[2]; int b; void main() { b = a; }", "used as a value"},
		{"dup local", "void main() { int x; int x; }", "duplicate local"},
		{"dup param", "void f(int a, int a) { } void main() { }", "duplicate parameter"},
		{"void return value", "void main() { return 1; }", "cannot return a value"},
		{"missing return value", "int f() { return; } void main() { }", "must return a value"},
		{"local array init", "void main() { int a[2] = {1}; }", "cannot have an initializer"},
		{"void as value", "void f() { } void main() { int x; x = f(); }", "used as a value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, PolicyNone)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err, c.want)
			}
		})
	}
}

// tracesOf compiles and runs under a policy with two different secret values,
// returning the two per-cycle traces.
func tracesOf(t *testing.T, src string, policy Policy, a, b uint32) ([]float64, []float64) {
	t.Helper()
	collect := func(secret uint32) []float64 {
		res, err := Compile(src, policy)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.New(res.Program, mem.New())
		if err != nil {
			t.Fatal(err)
		}
		addr := res.Program.Symbols[GlobalLabel("key")]
		if err := c.Mem().StoreWord(addr, secret); err != nil {
			t.Fatal(err)
		}
		meter := energy.NewProbe(energy.DefaultConfig())
		c.Attach(meter)
		var totals []float64
		c.Attach(cpu.ProbeFunc(func(cpu.CycleInfo) { totals = append(totals, meter.Last().Total) }))
		if err := c.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return totals
	}
	return collect(a), collect(b)
}

const maskingTestSrc = `
	secure int key[1];
	int sbox[64];
	int out[8];
	void main() {
		int i; int t;
		for (i = 0; i < 64; i = i + 1) { sbox[i] = i * 7 & 63; }
		for (i = 0; i < 8; i = i + 1) {
			t = key[0] ^ i;
			out[i] = sbox[t & 63] + (t << 2);
		}
	}
`

func TestSelectiveMasksSecretCompletely(t *testing.T) {
	a, b := tracesOf(t, maskingTestSrc, PolicySelective, 0x0000000, 0xfffffff)
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks under selective masking: %.4f vs %.4f", i, a[i], b[i])
		}
	}
}

func TestNoneLeaksSecret(t *testing.T) {
	a, b := tracesOf(t, maskingTestSrc, PolicyNone, 0x0000000, 0xfffffff)
	var diff float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1e-9 {
		t.Error("unmasked program should leak the secret")
	}
}

func TestSeedsOnlyStillLeaks(t *testing.T) {
	// The ablation: without forward slicing, derived values leak.
	a, b := tracesOf(t, maskingTestSrc, PolicySeedsOnly, 0x0000000, 0xfffffff)
	var diff float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1e-9 {
		t.Error("seeds-only masking should still leak through derived values")
	}
}

func TestAllSecureMasksToo(t *testing.T) {
	a, b := tracesOf(t, maskingTestSrc, PolicyAllSecure, 0x0000000, 0xfffffff)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks under all-secure", i)
		}
	}
}

func TestEnergyOrderingAcrossPolicies(t *testing.T) {
	totals := map[Policy]float64{}
	for _, pol := range Policies() {
		res, err := Compile(maskingTestSrc, pol)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.New(res.Program, mem.New())
		if err != nil {
			t.Fatal(err)
		}
		addr := res.Program.Symbols[GlobalLabel("key")]
		if err := c.Mem().StoreWord(addr, 0x123); err != nil {
			t.Fatal(err)
		}
		meter := energy.NewProbe(energy.DefaultConfig())
		c.Attach(meter)
		if err := c.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		totals[pol] = meter.TotalPJ()
	}
	if !(totals[PolicyNone] < totals[PolicySelective]) {
		t.Errorf("none (%.0f) should cost less than selective (%.0f)", totals[PolicyNone], totals[PolicySelective])
	}
	if !(totals[PolicySelective] < totals[PolicyNaiveLoadStore]) {
		t.Errorf("selective (%.0f) should cost less than naive (%.0f)", totals[PolicySelective], totals[PolicyNaiveLoadStore])
	}
	if !(totals[PolicyNaiveLoadStore] < totals[PolicyAllSecure]) {
		t.Errorf("naive (%.0f) should cost less than all-secure (%.0f)", totals[PolicyNaiveLoadStore], totals[PolicyAllSecure])
	}
	ratio := totals[PolicyAllSecure] / totals[PolicyNone]
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("all-secure/none ratio = %.2f, want roughly paper's ~1.8x", ratio)
	}
}

func TestPolicyString(t *testing.T) {
	for _, pol := range Policies() {
		if strings.Contains(pol.String(), "?") {
			t.Errorf("policy %d has no name", pol)
		}
	}
}

func TestReportString(t *testing.T) {
	res, err := Compile(maskingTestSrc, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.String()
	for _, want := range []string{"selective", "seeds:", "forward slice:", "key"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestExpressionDepthLimit(t *testing.T) {
	// Build an expression deeper than the register pool.
	expr := "1"
	for i := 0; i < 20; i++ {
		expr = "(" + expr + " + (2 * (3 + (4"
	}
	for i := 0; i < 20; i++ {
		expr += "))))"
	}
	src := "int x; void main() { x = " + expr + "; }"
	_, err := Compile(src, PolicyNone)
	if err == nil || !strings.Contains(err.Error(), "too deep") {
		t.Errorf("err = %v, want depth error", err)
	}
}

func TestNegativeGlobalInit(t *testing.T) {
	src := `
		int g = -7;
		int out;
		void main() { out = g; }
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := int32(global(t, res, c, "out", 0)); got != -7 {
		t.Errorf("out = %d, want -7", got)
	}
}

func TestLocalScalarInit(t *testing.T) {
	src := `
		int out;
		void main() {
			int x = 42;
			out = x;
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := global(t, res, c, "out", 0); got != 42 {
		t.Errorf("out = %d, want 42", got)
	}
}

func TestRegisterSaveAcrossCalls(t *testing.T) {
	// f(a) + g(b): f's result must survive the call to g.
	src := `
		int out;
		int f(int x) { return x * 3; }
		int g(int x) { return x + 1; }
		void main() {
			out = f(5) + g(10);
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := global(t, res, c, "out", 0); got != 26 {
		t.Errorf("out = %d, want 26", got)
	}
}

func TestTaintedSpillsStaySecure(t *testing.T) {
	// A tainted intermediate held across a call must be spilled with a
	// secure store so it does not leak.
	src := `
		secure int key[1];
		int out;
		int id(int x) { return x; }
		void main() {
			out = key[0] + id(1);
		}
	`
	a, b := tracesOf(t, src, PolicySelective, 0, 0xffffffff)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks through spill", i)
		}
	}
}

func TestPublicIntrinsic(t *testing.T) {
	src := `
		secure int key[1];
		int cipher;
		void main() {
			cipher = public(key[0] ^ 3);
		}
	`
	res, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	// Inside public(): no secure ops at all, and cipher stays untainted.
	if strings.Contains(res.Asm, ".s ") {
		t.Errorf("public() region must not emit secure ops:\n%s", res.Asm)
	}
	for _, v := range res.Report.Tainted {
		if v == "cipher" {
			t.Error("declassified destination wrongly tainted")
		}
	}
	// Semantics unchanged.
	_, c := runProgram(t, src, PolicySelective, map[string]uint32{"key": 5})
	addr := res.Program.Symbols[GlobalLabel("cipher")]
	if v, _ := c.Mem().LoadWord(addr); v != 5^3 {
		t.Errorf("cipher = %d, want %d", v, 5^3)
	}
}

func TestPublicErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"arity", "void main() { int x; x = public(1, 2); }", "exactly one argument"},
		{"reserved", "int public(int x) { return x; } void main() { int y; y = public(1); }", "reserved"},
		{"statement", "void main() { public(1); }", "no effect as a statement"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, PolicyNone)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestTaintedArgumentStaysMasked(t *testing.T) {
	// A tainted value passed as an argument must stay masked through the
	// $a-register move and the callee's parameter-homing store.
	src := `
		secure int key[1];
		int out;
		int id(int x) { return x; }
		void main() {
			out = id(key[0]);
		}
	`
	a, b := tracesOf(t, src, PolicySelective, 0, 0xffffffff)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks through argument passing", i)
		}
	}
}

func TestLogicalVsArithmeticShift(t *testing.T) {
	src := `
		int out[4];
		void main() {
			int a; int n;
			a = -16;
			n = 2;
			out[0] = a >> 2;    // arithmetic: -4
			out[1] = a >>> 2;   // logical: 0x3FFFFFFC
			out[2] = a >> n;    // variable arithmetic
			out[3] = a >>> n;   // variable logical
		}
	`
	res, c := runProgram(t, src, PolicyNone, nil)
	if got := int32(global(t, res, c, "out", 0)); got != -4 {
		t.Errorf("arithmetic >> = %d, want -4", got)
	}
	if got := global(t, res, c, "out", 1); got != 0x3FFFFFFC {
		t.Errorf("logical >>> = %#x, want 0x3FFFFFFC", got)
	}
	if got := int32(global(t, res, c, "out", 2)); got != -4 {
		t.Errorf("variable arithmetic >> = %d", got)
	}
	if got := global(t, res, c, "out", 3); got != 0x3FFFFFFC {
		t.Errorf("variable logical >>> = %#x", got)
	}
}

func TestTimingChannelWarning(t *testing.T) {
	src := `
		secure int key[1];
		int out;
		void main() {
			if (key[0] > 0) { out = 1; } else { out = 2; }
			while (out < key[0]) { out = out + 1; }
		}
	`
	res, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.TimingWarnings) != 2 {
		t.Errorf("warnings = %v, want 2 (if + while)", res.Report.TimingWarnings)
	}
	if !strings.Contains(res.Report.String(), "cannot hide control flow") {
		t.Error("report does not render timing warnings")
	}
	// Clean programs carry no warnings.
	clean, err := Compile("secure int key[1]; int out; void main() { out = key[0] ^ 1; }", PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Report.TimingWarnings) != 0 {
		t.Errorf("unexpected warnings: %v", clean.Report.TimingWarnings)
	}
}

func TestWorkloadsHaveNoTimingWarnings(t *testing.T) {
	// The DES program (and by extension the paper's workload) must be free
	// of secret-dependent control flow.
	res, err := Compile(maskingTestSrc, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.TimingWarnings) != 0 {
		t.Errorf("masking test source has timing warnings: %v", res.Report.TimingWarnings)
	}
}
