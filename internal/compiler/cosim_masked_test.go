// Cosimulation of the software countermeasures (boolean masking, operand
// shuffling) across ISA backends and optimization levels: the protections
// rearrange energy, never architecture. Each protected build must produce
// bit-identical outputs to the unprotected reference on both targets, with
// and without -O, and a masked run's ciphertext must be invariant under the
// mask seed while its energy trace is not (the masks really are live).
package compiler_test

import (
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/kernels"
	"desmask/internal/sim"
)

// protectionVariants are the countermeasure configurations under test, on
// top of the bare policies already swept by the optimized-cosim tests.
func protectionVariants() []struct {
	name   string
	policy compiler.Policy
	shuf   bool
} {
	return []struct {
		name   string
		policy compiler.Policy
		shuf   bool
	}{
		{"boolean-mask", compiler.PolicyBooleanMask, false},
		{"boolean-mask+shuffle", compiler.PolicyBooleanMask, true},
		{"shuffle-only", compiler.PolicyNone, true},
	}
}

// TestCosimMaskedDESCrossISA pins every protected DES build — boolean
// masking, masking+shuffling, shuffling alone — against the FIPS 46-3
// known-answer vector on both targets, with and without -O, and asserts the
// masked runs stayed inside their fresh-mask pool.
func TestCosimMaskedDESCrossISA(t *testing.T) {
	const (
		key    = uint64(0x133457799BBCDFF1)
		plain  = uint64(0x0123456789ABCDEF)
		cipher = uint64(0x85E813540F0AB405)
	)
	isaNames := []string{"pisa", "rv32"}
	opts := []bool{false, true}
	if testing.Short() {
		isaNames = isaNames[:1]
		opts = opts[:1]
	}
	for _, v := range protectionVariants() {
		for _, isaName := range isaNames {
			target, ok := isa.TargetByName(isaName)
			if !ok {
				t.Fatalf("unknown target %q", isaName)
			}
			for _, optimize := range opts {
				name := v.name + "/" + isaName
				if optimize {
					name += "/O"
				}
				t.Run(name, func(t *testing.T) {
					m, err := desprog.NewFull(compiler.Options{
						Policy: v.policy, Shuffle: v.shuf, Target: target, Optimize: optimize,
					}, energy.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					job, err := m.EncryptJobSeeded(key, plain, 7, 0, false)
					if err != nil {
						t.Fatal(err)
					}
					res := m.Runner().Run(job)
					if res.Err != nil || !res.Done {
						t.Fatalf("encrypt: done=%v err=%v", res.Done, res.Err)
					}
					var got uint64
					for _, w := range res.Mem[0] {
						got = got<<1 | uint64(w&1)
					}
					if got != cipher {
						t.Fatalf("ciphertext %#016x, want %#016x", got, cipher)
					}
					if err := m.CheckMaskCursor(res); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestCosimMaskedKernelsCrossISA runs the generality kernels (TEA, AES-128,
// SHA-1) under boolean masking on both targets ± -O and compares the output
// words against an unprotected reference build of the same kernel.
func TestCosimMaskedKernelsCrossISA(t *testing.T) {
	names := []string{"tea", "aes128", "sha1"}
	isaNames := []string{"pisa", "rv32"}
	if testing.Short() {
		names, isaNames = names[:1], isaNames[:1]
	}
	for _, kname := range names {
		k, _ := kernels.ByName(kname)
		secret, public, _ := kernels.TVLAInputs(k)
		ref, err := kernels.BuildSimple(k, compiler.PolicyNone)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.Run(secret, public)
		if err != nil {
			t.Fatalf("%s reference run: %v", kname, err)
		}
		for _, isaName := range isaNames {
			target, _ := isa.TargetByName(isaName)
			for _, optimize := range []bool{false, true} {
				name := kname + "/" + isaName
				if optimize {
					name += "/O"
				}
				t.Run(name, func(t *testing.T) {
					m, err := kernels.Build(k, compiler.Options{
						Policy: compiler.PolicyBooleanMask, Target: target, Optimize: optimize,
					}, energy.DefaultConfig())
					if err != nil {
						t.Fatal(err)
					}
					job, err := m.JobSeeded(secret, public, 11, false)
					if err != nil {
						t.Fatal(err)
					}
					res := m.Runner().Run(job)
					if res.Err != nil || !res.Done {
						t.Fatalf("run: done=%v err=%v", res.Done, res.Err)
					}
					got := res.Mem[0]
					if len(got) != len(want) {
						t.Fatalf("output length %d, want %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("out[%d] = %#x, want %#x", i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestMaskSeedInvariance is the mask-cancellation property stated directly:
// the same (key, plaintext) under different mask seeds yields the same
// ciphertext but different energy traces — the randomness is live in the
// data path, it just cancels architecturally.
func TestMaskSeedInvariance(t *testing.T) {
	const (
		key   = uint64(0x133457799BBCDFF1)
		plain = uint64(0x0123456789ABCDEF)
	)
	for _, v := range protectionVariants() {
		t.Run(v.name, func(t *testing.T) {
			m, err := desprog.NewFull(compiler.Options{Policy: v.policy, Shuffle: v.shuf}, energy.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			in := []desprog.Input{{Key: key, Plaintext: plain}}
			tr1, c1, err := m.TraceBatchSeeded(in, 1, sim.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			tr2, c2, err := m.TraceBatchSeeded(in, 2, sim.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if c1[0] != c2[0] {
				t.Fatalf("ciphertext depends on mask seed: %#016x vs %#016x", c1[0], c2[0])
			}
			same := tr1[0].Len() == tr2[0].Len()
			if same {
				diff := false
				for i, e := range tr1[0].Totals {
					if e != tr2[0].Totals[i] {
						diff = true
						break
					}
				}
				same = !diff
			}
			if same {
				t.Fatal("energy trace is identical across mask seeds — protection randomness is dead")
			}
		})
	}
}
