package compiler

// MaskStream is a splitmix64 stream: the deterministic source of
// per-execution masks, scrub words and shuffle permutations. Self-contained
// so mask material never depends on library PRNG internals, and shared by
// every harness (desprog, kernels) so a given seed names one mask stream.
type MaskStream struct{ s uint64 }

// NewMaskStream starts a stream at the given seed.
func NewMaskStream(seed int64) *MaskStream {
	return &MaskStream{s: uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

// Next64 returns the next 64-bit word of the stream.
func (r *MaskStream) Next64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Next32 returns the next 32-bit word of the stream.
func (r *MaskStream) Next32() uint32 { return uint32(r.Next64() >> 32) }

// Perm returns a uniform random permutation of 0..n-1 (Fisher–Yates).
func (r *MaskStream) Perm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.Next64() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// MaskPoke is one runtime-support word a harness pokes before an execution,
// addressed as (global symbol, word offset).
type MaskPoke struct {
	Sym  string
	Word int
	Val  uint32
}

// RuntimePokes draws the per-execution runtime state of one masked/shuffled
// run from the stream: the scrub word, the full fresh-mask pool, and a
// random iteration permutation. Harnesses resolve each Sym through the
// program symbol table and write the words in order; a masked program's
// final pool cursor should then be read back from MaskCursorSym to assert
// the pool did not overflow.
func (mrt *MaskRuntime) RuntimePokes(rng *MaskStream) []MaskPoke {
	var pokes []MaskPoke
	if mrt.PoolWords > 0 {
		pokes = append(pokes, MaskPoke{Sym: MaskScrubSym, Val: rng.Next32()})
		for i := 0; i < mrt.PoolWords; i++ {
			pokes = append(pokes, MaskPoke{Sym: MaskPoolSym, Word: i, Val: rng.Next32()})
		}
	}
	if mrt.ShuffleLen > 0 {
		for i, v := range rng.Perm(mrt.ShuffleLen) {
			pokes = append(pokes, MaskPoke{Sym: ShuffleSym, Word: i, Val: v})
		}
	}
	return pokes
}
