// Cosimulation tests for the optimizing backend: for every policy and every
// workload in the repo (DES plus the generality kernels), the -O and non-O
// builds must produce bit-identical architectural results and identical
// leakcheck verdicts. This is the external contract of the taint-sound pass
// pipeline — optimization may drop instructions but may change neither what
// a program computes nor where secrets are allowed to flow unmasked.
//
// The comparison is over the programs' declared outputs (the global data
// arrays), not raw register/frame state: dead-store elimination legitimately
// leaves stale bytes in dead stack slots, and register allocation assigns
// different registers, without either being architecturally observable.
package compiler_test

import (
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/kernels"
	"desmask/internal/leakcheck"
)

// cosimPolicies returns the policies under test (all of them; a subset in
// -short mode to bound the 2-builds-per-policy cost).
func cosimPolicies() []compiler.Policy {
	if testing.Short() {
		return []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective}
	}
	return compiler.Policies()
}

// checkOutside is the leakcheck verdict of one build: true when an insecure
// instruction touched tainted data outside the declassification region.
func checkOutside(t *testing.T, res *compiler.Result, secretGlobal string, secretLen int, declassSym string) bool {
	t.Helper()
	c, err := leakcheck.New(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := res.Program.Symbols[compiler.GlobalLabel(secretGlobal)]
	if !ok {
		t.Fatalf("no secret global %q", secretGlobal)
	}
	for i := 0; i < secretLen; i++ {
		if err := c.SetWord(addr+uint32(4*i), uint32(i*7+3), true); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Program.Symbols[declassSym], res.Program.Symbols["f_main"]
	if lo == 0 || hi == 0 || hi <= lo {
		t.Fatalf("bad declassification region [%#x, %#x)", lo, hi)
	}
	return len(rep.LeaksOutsideRegion(lo, hi)) != 0
}

// TestCosimDESOptimized cross-checks the optimized DES build against the
// unoptimized one under every policy: same ciphertexts, same leak verdict.
func TestCosimDESOptimized(t *testing.T) {
	inputs := []struct{ key, plain uint64 }{
		{0x133457799BBCDFF1, 0x0123456789ABCDEF},
		{0x0E329232EA6D0D73, 0x8787878787878787},
	}
	for _, policy := range cosimPolicies() {
		plain, err := desprog.NewFull(compiler.Options{Policy: policy}, energy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := desprog.NewFull(compiler.Options{Policy: policy, Optimize: true}, energy.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			cPlain, _, done, err := plain.Encrypt(in.key, in.plain, 0)
			if err != nil || !done {
				t.Fatalf("policy %v: plain encrypt: done=%v err=%v", policy, done, err)
			}
			cOpt, _, done, err := opt.Encrypt(in.key, in.plain, 0)
			if err != nil || !done {
				t.Fatalf("policy %v: optimized encrypt: done=%v err=%v", policy, done, err)
			}
			if cPlain != cOpt {
				t.Errorf("policy %v key %016X: optimized cipher %016X != plain %016X",
					policy, in.key, cOpt, cPlain)
			}
		}
		vPlain := checkOutside(t, plain.Res, "key", 64, "f_output_permutation")
		vOpt := checkOutside(t, opt.Res, "key", 64, "f_output_permutation")
		if vPlain != vOpt {
			t.Errorf("policy %v: leak verdict changed under -O: plain leaks=%v optimized leaks=%v",
				policy, vPlain, vOpt)
		}
		// The acceptance bar: the paper's sound policies stay leak-free when
		// optimized.
		if (policy == compiler.PolicySelective || policy == compiler.PolicyAllSecure) && vOpt {
			t.Errorf("policy %v: optimized build leaks outside declassification", policy)
		}
	}
}

// TestCosimKernelsOptimized runs the same cross-check over the generality
// kernels (AES-128, TEA, SHA-1).
func TestCosimKernelsOptimized(t *testing.T) {
	cases := []struct {
		kernel kernels.Kernel
		secret []uint32
		public []uint32
	}{
		{kernels.TEA(),
			[]uint32{0x11111111, 0x22222222, 0x33333333, 0x44444444},
			[]uint32{0x01234567, 0x89abcdef}},
		{kernels.AES128(),
			[]uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
			[]uint32{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}},
		{kernels.SHA1(),
			[]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0},
			[]uint32{0x61626380, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x18}},
	}
	for _, tc := range cases {
		for _, policy := range cosimPolicies() {
			plain, err := kernels.Build(tc.kernel, compiler.Options{Policy: policy}, energy.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			opt, err := kernels.Build(tc.kernel, compiler.Options{Policy: policy, Optimize: true}, energy.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			outPlain, _, err := plain.Run(tc.secret, tc.public)
			if err != nil {
				t.Fatalf("%s policy %v: plain run: %v", tc.kernel.Name, policy, err)
			}
			outOpt, _, err := opt.Run(tc.secret, tc.public)
			if err != nil {
				t.Fatalf("%s policy %v: optimized run: %v", tc.kernel.Name, policy, err)
			}
			if len(outPlain) != len(outOpt) {
				t.Fatalf("%s policy %v: output lengths differ", tc.kernel.Name, policy)
			}
			for i := range outPlain {
				if outPlain[i] != outOpt[i] {
					t.Errorf("%s policy %v: out[%d] optimized %#x != plain %#x",
						tc.kernel.Name, policy, i, outOpt[i], outPlain[i])
				}
			}
			vPlain := checkOutside(t, plain.Res, tc.kernel.SecretGlobal, len(tc.secret), "f_emit_output")
			vOpt := checkOutside(t, opt.Res, tc.kernel.SecretGlobal, len(tc.secret), "f_emit_output")
			if vPlain != vOpt {
				t.Errorf("%s policy %v: leak verdict changed under -O: plain leaks=%v optimized leaks=%v",
					tc.kernel.Name, policy, vPlain, vOpt)
			}
		}
	}
}

// TestOptimizedDESSavesTenPercent pins the tentpole's acceptance criterion:
// under the selective policy, -O must cut both the static instruction count
// and the simulated encrypt cycle count of the DES program by at least 10%.
func TestOptimizedDESSavesTenPercent(t *testing.T) {
	plain, err := desprog.NewFull(compiler.Options{Policy: compiler.PolicySelective}, energy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := desprog.NewFull(compiler.Options{Policy: compiler.PolicySelective, Optimize: true}, energy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	staticPlain, staticOpt := len(plain.Res.Program.Text), len(opt.Res.Program.Text)
	if float64(staticOpt) > 0.9*float64(staticPlain) {
		t.Errorf("static instructions: optimized %d vs plain %d (< 10%% reduction)", staticOpt, staticPlain)
	}
	_, sPlain, done, err := plain.Encrypt(0x133457799BBCDFF1, 0x0123456789ABCDEF, 0)
	if err != nil || !done {
		t.Fatalf("plain encrypt: done=%v err=%v", done, err)
	}
	_, sOpt, done, err := opt.Encrypt(0x133457799BBCDFF1, 0x0123456789ABCDEF, 0)
	if err != nil || !done {
		t.Fatalf("optimized encrypt: done=%v err=%v", done, err)
	}
	if float64(sOpt.Cycles) > 0.9*float64(sPlain.Cycles) {
		t.Errorf("encrypt cycles: optimized %d vs plain %d (< 10%% reduction)", sOpt.Cycles, sPlain.Cycles)
	}
	t.Logf("selective DES -O: %d→%d instructions (%.1f%%), %d→%d cycles (%.1f%%)",
		staticPlain, staticOpt, 100*(1-float64(staticOpt)/float64(staticPlain)),
		sPlain.Cycles, sOpt.Cycles, 100*(1-float64(sOpt.Cycles)/float64(sPlain.Cycles)))
}
