// Package compiler is the optimizing masking compiler of the paper: it takes
// MiniC source in which the programmer has annotated critical variables with
// the `secure` qualifier, determines — by forward slicing [11] over def-use
// relations and control dependences — every variable and operation whose
// value depends on those seeds, and emits assembly in which exactly the
// affected loads, stores, ALU operations and table-index computations use the
// secure (dual-rail) instruction variants. Blanket policies (no protection,
// all loads/stores, everything) are provided as the paper's comparison
// points.
//
// Compilation pipeline (see DESIGN.md):
//
//	parse -> Analyze (forward slice) -> lower to taint-carrying IR
//	      -> [-O] taint-sound passes -> linear-scan regalloc
//	      -> asm.Builder -> *asm.Program (+ assembly listing)
package compiler

import (
	"fmt"
	"io"
	"strings"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/minic"
)

// targetOrDefault resolves an Options.Target, defaulting to PISA.
func (o Options) targetOrDefault() isa.Target {
	if o.Target == nil {
		return isa.PISA
	}
	return o.Target
}

// Policy selects which operations are protected with secure instructions.
type Policy int

// Protection policies, in increasing energy cost.
const (
	// PolicyNone emits no secure instructions (the paper's baseline,
	// 46.4 µJ).
	PolicyNone Policy = iota
	// PolicySeedsOnly protects only operations that directly touch the
	// annotated variables, without forward slicing — the ablation showing
	// why slicing is necessary (§4.1: "it is not sufficient to protect only
	// the sensitive variables annotated by the programmer").
	PolicySeedsOnly
	// PolicySelective is the paper's scheme: secure instructions for the
	// full forward slice of the annotated variables (52.6 µJ).
	PolicySelective
	// PolicyNaiveLoadStore converts every load and store to its secure
	// version, with no compiler analysis (the paper's naive point, 63.6 µJ).
	PolicyNaiveLoadStore
	// PolicyAllSecure runs every securable instruction dual-rail — the
	// existing full dual-rail circuit approach (83.5 µJ, "almost twice the
	// original").
	PolicyAllSecure
	// PolicyBooleanMask is first-order software boolean masking: every
	// tainted value is carried as two shares (v XOR m, m) with fresh
	// per-execution masks drawn from a runtime pool, GF(2)-linear operations
	// computed share-wise on the ordinary (insecure, cheap) data path, and
	// non-linear operations confined to secure-instruction islands. See
	// mask.go.
	PolicyBooleanMask
)

var policyNames = map[Policy]string{
	PolicyNone:           "none",
	PolicySeedsOnly:      "seeds-only",
	PolicySelective:      "selective",
	PolicyNaiveLoadStore: "naive-loadstore",
	PolicyAllSecure:      "all-secure",
	PolicyBooleanMask:    "boolean-mask",
}

// String names the policy.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("policy?%d", int(p))
}

// Policies lists all policies in increasing protection-cost order.
func Policies() []Policy {
	return []Policy{PolicyNone, PolicySeedsOnly, PolicySelective, PolicyNaiveLoadStore, PolicyAllSecure, PolicyBooleanMask}
}

// GlobalLabel returns the assembly label of a MiniC global, for poking
// program inputs through the symbol table.
func GlobalLabel(name string) string { return "g_" + name }

// Report summarises what the compiler protected. The instruction counts are
// tallied from the final machine program, so they stay exact under
// optimization.
type Report struct {
	Policy  Policy
	Seeds   []string
	Tainted []string
	// TimingWarnings lists secret-dependent branch conditions (rendered
	// source positions): control flow the masking scheme cannot hide.
	TimingWarnings []string
	// Optimizer tallies (all zero unless Options.Optimize).
	FoldedConstants    int
	ForwardedLoads     int
	PropagatedCopies   int
	DeadStores         int
	DeadInstrs         int
	SimplifiedBranches int
	// Machine-instruction counts over the emitted program.
	TotalOps     int // securable instructions emitted
	SecuredOps   int
	TotalLoads   int
	SecureLoads  int
	TotalStores  int
	SecureStores int
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s: %d/%d securable ops secured (%d/%d loads, %d/%d stores)\n",
		r.Policy, r.SecuredOps, r.TotalOps, r.SecureLoads, r.TotalLoads, r.SecureStores, r.TotalStores)
	fmt.Fprintf(&b, "seeds: %s\n", strings.Join(r.Seeds, ", "))
	fmt.Fprintf(&b, "forward slice: %s\n", strings.Join(r.Tainted, ", "))
	for _, w := range r.TimingWarnings {
		fmt.Fprintf(&b, "warning: %s: branch condition depends on a secret; energy masking cannot hide control flow\n", w)
	}
	return b.String()
}

// MaskRuntime describes the runtime support data a boolean-masked or
// shuffled program expects the harness to populate (via the symbol table)
// before each execution. All symbols are ordinary globals reachable through
// Program.Symbols[GlobalLabel(name)].
type MaskRuntime struct {
	// PoolWords is the length in words of the __mask_pool global the
	// program draws fresh masks from (0 when masking is off). The harness
	// should fill it with uniform randoms before every execution; a
	// zero-filled pool is still functionally correct but provides no
	// protection.
	PoolWords int
	// ShuffleLen is the length of the __shuf permutation global (0 when
	// shuffling is off). It is initialized to the identity; the harness
	// overwrites it with a random permutation of 0..ShuffleLen-1 per
	// execution.
	ShuffleLen int
	// MaskedGlobals lists the globals that are carried as share pairs: the
	// slot named here holds v XOR m and its shadow (MaskShadow(name)) holds
	// m. Secrets poked into these slots must be poked pre-masked.
	MaskedGlobals []string
}

// Runtime-support symbol names for PolicyBooleanMask and Options.Shuffle.
const (
	// MaskPoolSym is the fresh-mask pool global ($s6 cursors through it).
	MaskPoolSym = "__mask_pool"
	// MaskScrubSym holds the random scrub word loaded into $s7 at startup.
	MaskScrubSym = "__mask_scrub"
	// MaskCursorSym receives the final pool cursor before halt, so harnesses
	// can assert the pool did not overflow.
	MaskCursorSym = "__mask_cursor"
	// ShuffleSym is the iteration-order permutation for `shuffle for` loops.
	ShuffleSym = "__shuf"
	// MaskPoolWords is the pool length the compiler reserves.
	MaskPoolWords = 4096
)

// MaskShadow names the shadow (mask-share) slot of a masked variable.
func MaskShadow(name string) string { return name + "__m" }

// Result is a successful compilation.
type Result struct {
	Asm      string
	Program  *asm.Program
	Report   Report
	Analysis *Analysis
	// Mask is non-nil when the program needs masking/shuffling runtime
	// support (PolicyBooleanMask or Options.Shuffle).
	Mask *MaskRuntime
}

// Options bundles compilation knobs beyond the policy.
type Options struct {
	Policy Policy
	// Target selects the ISA backend the program is emitted for. nil means
	// the default PISA target. Register allocation is target-independent
	// (logical registers map 1:1 onto every backend's physical file); the
	// target governs immediate reach, pseudo-op expansion and encoding.
	Target isa.Target
	// DisableSecureIndexing turns off the paper's secure-indexing treatment
	// (§4.2): tainted array indices no longer force secure address
	// formation and secure table loads. This is the ablation showing why
	// key-derived S-box offsets must be masked.
	DisableSecureIndexing bool
	// Optimize enables the taint-sound IR pass pipeline (see passes.go) and
	// gp-relative global addressing in the backend.
	Optimize bool
	// Shuffle enables the operand-shuffling countermeasure: loops annotated
	// `shuffle for` are lowered through a per-execution permutation table
	// (the __shuf runtime global) so independent iterations run in a random
	// order. Without this flag the annotation is inert and lowering is
	// bit-identical to an unannotated loop.
	Shuffle bool
	// DumpIR, when non-nil, receives the IR after lowering and — under
	// Optimize — again after the pass pipeline (maskcc -dump-ir).
	DumpIR io.Writer
}

// Compile parses, analyses and compiles MiniC source under the given policy.
func Compile(src string, policy Policy) (*Result, error) {
	return CompileWithOptions(src, Options{Policy: policy})
}

// CompileWithOptions compiles with explicit options.
func CompileWithOptions(src string, opt Options) (*Result, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFileWithOptions(f, opt)
}

// CompileFile compiles a parsed file under the given policy.
func CompileFile(f *minic.File, policy Policy) (*Result, error) {
	return CompileFileWithOptions(f, Options{Policy: policy})
}

// CompileFileWithOptions compiles a parsed file with explicit options.
func CompileFileWithOptions(f *minic.File, opt Options) (*Result, error) {
	var mrt *MaskRuntime
	if opt.Shuffle {
		n, err := injectShuffleGlobal(f)
		if err != nil {
			return nil, err
		}
		mrt = &MaskRuntime{ShuffleLen: n}
	}
	a, err := Analyze(f)
	if err != nil {
		return nil, err
	}
	main := f.FindFunc("main")
	if main == nil {
		return nil, fmt.Errorf("compiler: no main function")
	}
	if main.ReturnsInt || len(main.Params) != 0 {
		return nil, errf(main.Pos, "main must be void and take no parameters")
	}

	m, err := lower(a, opt)
	if err != nil {
		return nil, err
	}
	if opt.Policy == PolicyBooleanMask {
		masked, err := maskModule(m, a)
		if err != nil {
			return nil, err
		}
		if mrt == nil {
			mrt = &MaskRuntime{}
		}
		mrt.PoolWords = MaskPoolWords
		mrt.MaskedGlobals = masked
	}
	if opt.DumpIR != nil {
		fmt.Fprintf(opt.DumpIR, "; IR after lowering (policy %s)\n%s", opt.Policy, m.Dump())
	}
	var st passStats
	if opt.Optimize {
		st = runPasses(m, opt)
		if opt.DumpIR != nil {
			fmt.Fprintf(opt.DumpIR, "\n; IR after optimization\n%s", m.Dump())
		}
	}
	allocs, err := regalloc(m, opt.Policy)
	if err != nil {
		return nil, err
	}
	prog, text, err := emitModule(m, opt, allocs)
	if err != nil {
		return nil, fmt.Errorf("compiler: internal error emitting program: %w", err)
	}

	rep := Report{
		Policy:             opt.Policy,
		FoldedConstants:    st.Folded,
		ForwardedLoads:     st.Forwarded,
		PropagatedCopies:   st.Copies,
		DeadStores:         st.DeadStores,
		DeadInstrs:         st.DeadCode,
		SimplifiedBranches: st.Branches,
	}
	for _, in := range prog.Text {
		if in.Op.Securable() {
			rep.TotalOps++
			if in.Secure {
				rep.SecuredOps++
			}
		}
		switch {
		case in.Op.IsLoad():
			rep.TotalLoads++
			if in.Secure {
				rep.SecureLoads++
			}
		case in.Op.IsStore():
			rep.TotalStores++
			if in.Secure {
				rep.SecureStores++
			}
		}
	}
	for _, s := range a.Seeds {
		rep.Seeds = append(rep.Seeds, string(s))
	}
	rep.Tainted = a.TaintedVars()
	for _, pos := range a.TaintedBranches {
		rep.TimingWarnings = append(rep.TimingWarnings, pos.String())
	}
	return &Result{Asm: text, Program: prog, Report: rep, Analysis: a, Mask: mrt}, nil
}
