package compiler

import (
	"fmt"
	"strings"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/minic"
)

// Policy selects which operations are protected with secure instructions.
type Policy int

// Protection policies, in increasing energy cost.
const (
	// PolicyNone emits no secure instructions (the paper's baseline,
	// 46.4 µJ).
	PolicyNone Policy = iota
	// PolicySeedsOnly protects only operations that directly touch the
	// annotated variables, without forward slicing — the ablation showing
	// why slicing is necessary (§4.1: "it is not sufficient to protect only
	// the sensitive variables annotated by the programmer").
	PolicySeedsOnly
	// PolicySelective is the paper's scheme: secure instructions for the
	// full forward slice of the annotated variables (52.6 µJ).
	PolicySelective
	// PolicyNaiveLoadStore converts every load and store to its secure
	// version, with no compiler analysis (the paper's naive point, 63.6 µJ).
	PolicyNaiveLoadStore
	// PolicyAllSecure runs every securable instruction dual-rail — the
	// existing full dual-rail circuit approach (83.5 µJ, "almost twice the
	// original").
	PolicyAllSecure
)

var policyNames = map[Policy]string{
	PolicyNone:           "none",
	PolicySeedsOnly:      "seeds-only",
	PolicySelective:      "selective",
	PolicyNaiveLoadStore: "naive-loadstore",
	PolicyAllSecure:      "all-secure",
}

// String names the policy.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("policy?%d", int(p))
}

// Policies lists all policies in increasing protection-cost order.
func Policies() []Policy {
	return []Policy{PolicyNone, PolicySeedsOnly, PolicySelective, PolicyNaiveLoadStore, PolicyAllSecure}
}

// GlobalLabel returns the assembly label of a MiniC global, for poking
// program inputs through the symbol table.
func GlobalLabel(name string) string { return "g_" + name }

// Report summarises what the compiler protected.
type Report struct {
	Policy  Policy
	Seeds   []string
	Tainted []string
	// TimingWarnings lists secret-dependent branch conditions (rendered
	// source positions): control flow the masking scheme cannot hide.
	TimingWarnings []string
	// FoldedConstants and PeepholeRewrites count optimizer work (0 unless
	// Options.Optimize).
	FoldedConstants  int
	PeepholeRewrites int
	TotalOps         int // securable instructions emitted
	SecuredOps       int
	TotalLoads       int
	SecureLoads      int
	TotalStores      int
	SecureStore      int
}

// String renders a human-readable summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s: %d/%d securable ops secured (%d/%d loads, %d/%d stores)\n",
		r.Policy, r.SecuredOps, r.TotalOps, r.SecureLoads, r.TotalLoads, r.SecureStore, r.TotalStores)
	fmt.Fprintf(&b, "seeds: %s\n", strings.Join(r.Seeds, ", "))
	fmt.Fprintf(&b, "forward slice: %s\n", strings.Join(r.Tainted, ", "))
	for _, w := range r.TimingWarnings {
		fmt.Fprintf(&b, "warning: %s: branch condition depends on a secret; energy masking cannot hide control flow\n", w)
	}
	return b.String()
}

// Result is a successful compilation.
type Result struct {
	Asm      string
	Program  *asm.Program
	Report   Report
	Analysis *Analysis
}

// Options bundles compilation knobs beyond the policy.
type Options struct {
	Policy Policy
	// DisableSecureIndexing turns off the paper's secure-indexing treatment
	// (§4.2): tainted array indices no longer force secure address
	// formation and secure table loads. This is the ablation showing why
	// key-derived S-box offsets must be masked.
	DisableSecureIndexing bool
	// Optimize enables the masking-preserving optimizations: AST constant
	// folding and the store-to-load forwarding peephole (see optimize.go).
	Optimize bool
}

// Compile parses, analyses and compiles MiniC source under the given policy.
func Compile(src string, policy Policy) (*Result, error) {
	return CompileWithOptions(src, Options{Policy: policy})
}

// CompileWithOptions compiles with explicit options.
func CompileWithOptions(src string, opt Options) (*Result, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileFileWithOptions(f, opt)
}

// CompileFile compiles a parsed file under the given policy.
func CompileFile(f *minic.File, policy Policy) (*Result, error) {
	return CompileFileWithOptions(f, Options{Policy: policy})
}

// CompileFileWithOptions compiles a parsed file with explicit options.
func CompileFileWithOptions(f *minic.File, opt Options) (*Result, error) {
	policy := opt.Policy
	folded := 0
	if opt.Optimize {
		folded = foldConstants(f)
	}
	a, err := Analyze(f)
	if err != nil {
		return nil, err
	}
	main := f.FindFunc("main")
	if main == nil {
		return nil, fmt.Errorf("compiler: no main function")
	}
	if main.ReturnsInt || len(main.Params) != 0 {
		return nil, errf(main.Pos, "main must be void and take no parameters")
	}
	g := &codegen{a: a, policy: policy, opt: opt}
	text, err := g.generate()
	if err != nil {
		return nil, err
	}
	rewrites := 0
	if opt.Optimize {
		text, rewrites = peephole(text)
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		return nil, fmt.Errorf("compiler: internal error assembling output: %w", err)
	}
	rep := g.report
	rep.Policy = policy
	rep.FoldedConstants = folded
	rep.PeepholeRewrites = rewrites
	for _, s := range a.Seeds {
		rep.Seeds = append(rep.Seeds, string(s))
	}
	rep.Tainted = a.TaintedVars()
	for _, pos := range a.TaintedBranches {
		rep.TimingWarnings = append(rep.TimingWarnings, pos.String())
	}
	return &Result{Asm: text, Program: prog, Report: rep, Analysis: a}, nil
}

// regPool is the temporary register stack used for expression evaluation.
var regPool = []isa.Reg{
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7,
	isa.T8, isa.T9, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5,
}

type codegen struct {
	a      *Analysis
	policy Policy
	b      strings.Builder
	report Report

	opt      Options
	fn       *minic.FuncDecl
	frame    map[string]int // local/param name -> sp offset
	frameLen int            // bytes including saved $ra slot
	depth    int            // live temporaries
	taints   [16]bool       // taint of each live temporary slot
	public   int            // > 0 inside public(...) — taint suppressed
	label    int
}

// setTaint records whether the value in r (a pool register) is tainted, so
// that later moves and caller-save spills of that register stay masked.
func (g *codegen) setTaint(r isa.Reg, tainted bool) {
	for i, pr := range regPool {
		if pr == r {
			g.taints[i] = tainted
			return
		}
	}
}

// taintOf reports the recorded taint of a pool register.
func (g *codegen) taintOf(r isa.Reg) bool {
	for i, pr := range regPool {
		if pr == r {
			return g.taints[i]
		}
	}
	return false
}

func (g *codegen) errf(pos minic.Pos, format string, args ...interface{}) error {
	return errf(pos, format, args...)
}

// emit writes one assembly line.
func (g *codegen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *codegen) emitLabel(l string) { fmt.Fprintf(&g.b, "%s:\n", l) }

func (g *codegen) newLabel(hint string) string {
	g.label++
	return fmt.Sprintf("L%d_%s", g.label, hint)
}

// push allocates the next temporary register.
func (g *codegen) push(pos minic.Pos) (isa.Reg, error) {
	if g.depth >= len(regPool) {
		return 0, g.errf(pos, "expression too deep (more than %d live temporaries)", len(regPool))
	}
	r := regPool[g.depth]
	g.depth++
	return r, nil
}

func (g *codegen) pop() { g.depth-- }

// secOp decides the secure marker of a non-memory securable operation whose
// operands carry `tainted` data.
func (g *codegen) secOp(tainted bool) string {
	g.report.TotalOps++
	if g.secure(tainted, false) {
		g.report.SecuredOps++
		return ".s"
	}
	return ""
}

// secMem decides the secure marker of a load or store.
func (g *codegen) secMem(tainted, isStore bool) string {
	g.report.TotalOps++
	if isStore {
		g.report.TotalStores++
	} else {
		g.report.TotalLoads++
	}
	if g.secure(tainted, true) {
		g.report.SecuredOps++
		if isStore {
			g.report.SecureStore++
		} else {
			g.report.SecureLoads++
		}
		return ".s"
	}
	return ""
}

func (g *codegen) secure(tainted, isMem bool) bool {
	switch g.policy {
	case PolicyNone:
		return false
	case PolicySeedsOnly, PolicySelective:
		return tainted
	case PolicyNaiveLoadStore:
		return isMem
	case PolicyAllSecure:
		return true
	}
	return false
}

// taintedExpr evaluates expression taint under the active policy's notion of
// the protected set (full slice for Selective, bare seeds for SeedsOnly).
func (g *codegen) taintedExpr(e minic.Expr) bool {
	if g.public > 0 {
		return false
	}
	if g.policy == PolicySeedsOnly {
		return g.seedExprTainted(e)
	}
	return g.a.ExprTainted(g.fn, e)
}

// seedExprTainted checks direct reference to a seed, without propagation.
func (g *codegen) seedExprTainted(e minic.Expr) bool {
	seeds := map[varID]bool{}
	for _, s := range g.a.Seeds {
		seeds[s] = true
	}
	var walk func(minic.Expr) bool
	walk = func(e minic.Expr) bool {
		switch x := e.(type) {
		case *minic.VarRef:
			return seeds[g.a.id(g.fn, x.Name)]
		case *minic.IndexExpr:
			return seeds[g.a.id(g.fn, x.Name)] || walk(x.Index)
		case *minic.BinaryExpr:
			return walk(x.X) || walk(x.Y)
		case *minic.UnaryExpr:
			return walk(x.X)
		}
		return false
	}
	return walk(e)
}

// generate produces the full assembly module.
func (g *codegen) generate() (string, error) {
	// Data segment: globals.
	g.b.WriteString("\t.data\n")
	for _, d := range g.a.File.Globals {
		g.emitGlobal(d)
	}
	// Text segment: startup stub then functions.
	g.b.WriteString("\n\t.text\n")
	g.emitLabel("main")
	g.emit("jal f_main")
	g.emit("halt")
	for _, fn := range g.a.File.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	return g.b.String(), nil
}

func (g *codegen) emitGlobal(d *minic.VarDecl) {
	g.emitLabel(GlobalLabel(d.Name))
	n := 1
	if d.IsArray {
		n = d.ArrayLen
	}
	if len(d.Init) > 0 {
		vals := make([]string, len(d.Init))
		for i, v := range d.Init {
			vals[i] = fmt.Sprintf("%d", v)
		}
		g.emit(".word %s", strings.Join(vals, ", "))
		n -= len(d.Init)
	}
	if n > 0 {
		g.emit(".space %d", 4*n)
	}
}

// genFunc lays out the frame and compiles the body.
//
// Frame layout (from $sp upward): parameter slots in order, then locals in
// declaration order (arrays inline), then the saved $ra in the top slot.
func (g *codegen) genFunc(fn *minic.FuncDecl) error {
	g.fn = fn
	g.frame = map[string]int{}
	off := 0
	for _, p := range fn.Params {
		g.frame[p.Name] = off
		off += 4
	}
	var assign func(b *minic.Block)
	assign = func(b *minic.Block) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *minic.DeclStmt:
				d := st.Decl
				g.frame[d.Name] = off
				if d.IsArray {
					off += 4 * d.ArrayLen
				} else {
					off += 4
				}
			case *minic.Block:
				assign(st)
			case *minic.IfStmt:
				assign(st.Then)
				if st.Else != nil {
					assign(st.Else)
				}
			case *minic.WhileStmt:
				assign(st.Body)
			case *minic.ForStmt:
				assign(st.Body)
			}
		}
	}
	assign(fn.Body)
	raOff := off
	g.frameLen = off + 4

	g.b.WriteString("\n")
	g.emitLabel("f_" + fn.Name)
	g.emit("addiu%s $sp, $sp, %d", g.secOp(false), -g.frameLen)
	g.emit("sw%s $ra, %d($sp)", g.secMem(false, true), raOff)
	argRegs := []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3}
	for i, p := range fn.Params {
		// Parameters are memory-homed like every other variable, so that
		// their later uses compile to (securable) loads. A tainted argument
		// must be homed with a secure store or the incoming value leaks.
		taint := g.paramTainted(fn, p)
		g.emit("sw%s %s, %d($sp)", g.secMem(taint, true), argRegs[i], g.frame[p.Name])
	}
	if err := g.genBlock(fn.Body); err != nil {
		return err
	}
	g.emitLabel("f_" + fn.Name + "_ret")
	g.emit("lw%s $ra, %d($sp)", g.secMem(false, false), raOff)
	g.emit("addiu%s $sp, $sp, %d", g.secOp(false), g.frameLen)
	g.emit("jr $ra")
	return nil
}

func (g *codegen) genBlock(b *minic.Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.Block:
		return g.genBlock(st)
	case *minic.DeclStmt:
		d := st.Decl
		if len(d.Init) > 0 && !d.IsArray {
			return g.genAssign(&minic.AssignStmt{
				Pos: d.Pos,
				LHS: &minic.VarRef{Pos: d.Pos, Name: d.Name},
				RHS: &minic.NumLit{Pos: d.Pos, Val: d.Init[0]},
			})
		}
		return nil
	case *minic.AssignStmt:
		return g.genAssign(st)
	case *minic.IfStmt:
		return g.genIf(st)
	case *minic.WhileStmt:
		return g.genWhile(st)
	case *minic.ForStmt:
		return g.genFor(st)
	case *minic.ReturnStmt:
		if st.Value != nil {
			r, err := g.genExpr(st.Value)
			if err != nil {
				return err
			}
			g.emit("move%s $v0, %s", g.secOp(g.taintOf(r)), r)
			g.pop()
		}
		g.emit("j f_%s_ret", g.fn.Name)
		return nil
	case *minic.ExprStmt:
		call, ok := st.X.(*minic.CallExpr)
		if !ok {
			return g.errf(st.Pos, "expression statement must be a call")
		}
		if call.Name == "public" {
			return g.errf(st.Pos, "public() has no effect as a statement")
		}
		if err := g.genCall(call); err != nil {
			return err
		}
		return nil
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

// genAssign compiles `lhs = rhs`. The store is secure when the data being
// written is tainted (or the destination already holds tainted data — once
// an array is in the slice, every write keeps its energy masked).
func (g *codegen) genAssign(st *minic.AssignStmt) error {
	val, err := g.genExpr(st.RHS)
	if err != nil {
		return err
	}
	// A store is secure when the value being written is tainted; writing a
	// public value into a protected array leaks nothing (and keeps the
	// paper's initial-permutation loop fully insecure).
	dataTaint := g.taintedExpr(st.RHS)
	switch lv := st.LHS.(type) {
	case *minic.VarRef:
		g.genStoreVar(lv.Name, val, dataTaint)
	case *minic.IndexExpr:
		addr, idxTaint, err := g.genElemAddr(lv)
		if err != nil {
			return err
		}
		g.emit("sw%s %s, 0(%s)", g.secMem(dataTaint || idxTaint, true), val, addr)
		g.pop() // addr
	default:
		return g.errf(st.Pos, "invalid assignment target")
	}
	g.pop() // val
	return nil
}

// genStoreVar stores a register into a scalar variable.
func (g *codegen) genStoreVar(name string, val isa.Reg, tainted bool) {
	if off, ok := g.frame[name]; ok {
		g.emit("sw%s %s, %d($sp)", g.secMem(tainted, true), val, off)
		return
	}
	g.emit("sw%s %s, %s", g.secMem(tainted, true), val, GlobalLabel(name))
}

// genElemAddr computes &arr[idx] into a fresh register and reports whether
// the index was tainted (the secure-indexing condition: a key-derived index
// must not leak through the address path, §4.2).
func (g *codegen) genElemAddr(ix *minic.IndexExpr) (isa.Reg, bool, error) {
	idx, err := g.genExpr(ix.Index)
	if err != nil {
		return 0, false, err
	}
	idxTaint := g.taintedExpr(ix.Index)
	if g.opt.DisableSecureIndexing {
		idxTaint = false
	}
	sec := g.secOp(idxTaint) // index scaling
	g.emit("sll%s %s, %s, 2", sec, idx, idx)
	base, err := g.push(ix.Pos)
	if err != nil {
		return 0, false, err
	}
	if off, ok := g.frame[ix.Name]; ok {
		g.emit("addiu%s %s, $sp, %d", g.secOp(idxTaint), base, off)
	} else {
		g.emit("la%s %s, %s", g.secOp(idxTaint), base, GlobalLabel(ix.Name))
	}
	// Address formation: base+offset addition leaks the index unless run
	// secure (the paper aligns tables and propagates the inverted index;
	// architecturally this is the secure addu).
	g.emit("addu%s %s, %s, %s", g.secOp(idxTaint), base, base, idx)
	// Move the address into the index register slot to free the top.
	g.emit("move%s %s, %s", g.secOp(idxTaint), idx, base)
	g.setTaint(idx, idxTaint)
	g.pop() // base
	return idx, idxTaint, nil
}

var binOpAsm = map[minic.BinOp]string{
	minic.OpAdd: "addu", minic.OpSub: "subu", minic.OpMul: "mul",
	minic.OpXor: "xor", minic.OpAnd: "and", minic.OpOr: "or",
}

// genExpr evaluates e into a freshly pushed register.
func (g *codegen) genExpr(e minic.Expr) (isa.Reg, error) {
	switch x := e.(type) {
	case *minic.NumLit:
		r, err := g.push(x.Pos)
		if err != nil {
			return 0, err
		}
		if x.Val < -(1<<31) || x.Val > 1<<32-1 {
			return 0, g.errf(x.Pos, "constant %d does not fit in 32 bits", x.Val)
		}
		g.emit("li%s %s, %d", g.secOp(false), r, int32(uint32(x.Val)))
		g.setTaint(r, false)
		return r, nil

	case *minic.VarRef:
		r, err := g.push(x.Pos)
		if err != nil {
			return 0, err
		}
		tainted := g.taintedExpr(x)
		if off, ok := g.frame[x.Name]; ok {
			g.emit("lw%s %s, %d($sp)", g.secMem(tainted, false), r, off)
		} else {
			g.emit("lw%s %s, %s", g.secMem(tainted, false), r, GlobalLabel(x.Name))
		}
		g.setTaint(r, tainted)
		return r, nil

	case *minic.IndexExpr:
		addr, idxTaint, err := g.genElemAddr(x)
		if err != nil {
			return 0, err
		}
		tainted := g.taintedExpr(x) || idxTaint
		g.emit("lw%s %s, 0(%s)", g.secMem(tainted, false), addr, addr)
		g.setTaint(addr, tainted)
		return addr, nil

	case *minic.UnaryExpr:
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		opTaint := g.taintedExpr(x.X)
		sec := g.secOp(opTaint)
		switch x.Op {
		case minic.OpNeg:
			g.emit("subu%s %s, $zero, %s", sec, r, r)
		case minic.OpInv:
			g.emit("nor%s %s, %s, $zero", sec, r, r)
		case minic.OpNot:
			g.emit("sltiu%s %s, %s, 1", sec, r, r)
		}
		g.setTaint(r, opTaint)
		return r, nil

	case *minic.BinaryExpr:
		return g.genBinary(x)

	case *minic.CallExpr:
		if x.Name == "public" {
			g.public++
			r, err := g.genExpr(x.Args[0])
			g.public--
			if err != nil {
				return 0, err
			}
			g.setTaint(r, false)
			return r, nil
		}
		if err := g.genCall(x); err != nil {
			return 0, err
		}
		callee := g.a.File.FindFunc(x.Name)
		if !callee.ReturnsInt {
			return 0, g.errf(x.Pos, "void function %q used as a value", x.Name)
		}
		r, err := g.push(x.Pos)
		if err != nil {
			return 0, err
		}
		retTaint := g.a.ReturnTainted[x.Name] && g.policy != PolicySeedsOnly
		g.emit("move%s %s, $v0", g.secOp(retTaint), r)
		g.setTaint(r, retTaint)
		return r, nil
	}
	return 0, fmt.Errorf("compiler: unknown expression %T", e)
}

func (g *codegen) genBinary(x *minic.BinaryExpr) (isa.Reg, error) {
	// Constant shift amounts use the immediate shift forms.
	if (x.Op == minic.OpShl || x.Op == minic.OpShr || x.Op == minic.OpShrU) && isSmallConst(x.Y) {
		r, err := g.genExpr(x.X)
		if err != nil {
			return 0, err
		}
		sec := g.secOp(g.taintedExpr(x))
		n := x.Y.(*minic.NumLit).Val
		if n < 0 || n > 31 {
			return 0, g.errf(x.Pos, "shift amount %d out of range", n)
		}
		switch x.Op {
		case minic.OpShl:
			g.emit("sll%s %s, %s, %d", sec, r, r, n)
		case minic.OpShr:
			g.emit("sra%s %s, %s, %d", sec, r, r, n)
		case minic.OpShrU:
			g.emit("srl%s %s, %s, %d", sec, r, r, n)
		}
		g.setTaint(r, g.taintedExpr(x))
		return r, nil
	}

	a, err := g.genExpr(x.X)
	if err != nil {
		return 0, err
	}
	b, err := g.genExpr(x.Y)
	if err != nil {
		return 0, err
	}
	sec := g.secOp(g.taintedExpr(x))
	switch x.Op {
	case minic.OpAdd, minic.OpSub, minic.OpMul, minic.OpXor, minic.OpAnd, minic.OpOr:
		g.emit("%s%s %s, %s, %s", binOpAsm[x.Op], sec, a, a, b)
	case minic.OpShl:
		g.emit("sllv%s %s, %s, %s", sec, a, a, b)
	case minic.OpShr:
		g.emit("srav%s %s, %s, %s", sec, a, a, b)
	case minic.OpShrU:
		g.emit("srlv%s %s, %s, %s", sec, a, a, b)
	case minic.OpLt:
		g.emit("slt%s %s, %s, %s", sec, a, a, b)
	case minic.OpGt:
		g.emit("slt%s %s, %s, %s", sec, a, b, a)
	case minic.OpLe:
		g.emit("slt%s %s, %s, %s", sec, a, b, a)
		g.emit("xori%s %s, %s, 1", sec, a, a)
	case minic.OpGe:
		g.emit("slt%s %s, %s, %s", sec, a, a, b)
		g.emit("xori%s %s, %s, 1", sec, a, a)
	case minic.OpEq:
		g.emit("subu%s %s, %s, %s", sec, a, a, b)
		g.emit("sltiu%s %s, %s, 1", sec, a, a)
	case minic.OpNe:
		g.emit("subu%s %s, %s, %s", sec, a, a, b)
		g.emit("sltu%s %s, $zero, %s", sec, a, a)
	default:
		return 0, g.errf(x.Pos, "unsupported operator %v", x.Op)
	}
	g.pop() // b
	g.setTaint(a, g.taintedExpr(x))
	return a, nil
}

func isSmallConst(e minic.Expr) bool {
	n, ok := e.(*minic.NumLit)
	return ok && n.Val >= 0 && n.Val <= 31
}

// genCall evaluates arguments, saves live temporaries, and emits the call.
// The result is left in $v0.
func (g *codegen) genCall(x *minic.CallExpr) error {
	callee := g.a.File.FindFunc(x.Name)
	// Evaluate arguments left to right onto the temp stack.
	argRegs := make([]isa.Reg, len(x.Args))
	for i, arg := range x.Args {
		r, err := g.genExpr(arg)
		if err != nil {
			return err
		}
		argRegs[i] = r
	}
	// Live temporaries below the arguments must survive the call.
	liveBelow := g.depth - len(x.Args)
	for i := 0; i < liveBelow; i++ {
		g.emit("addiu%s $sp, $sp, -4", g.secOp(false))
		g.emit("sw%s %s, 0($sp)", g.secMem(g.taints[i], true), regPool[i])
	}
	abi := []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3}
	for i, r := range argRegs {
		g.emit("move%s %s, %s", g.secOp(g.taintOf(r)), abi[i], r)
	}
	g.emit("jal f_%s", callee.Name)
	for i := liveBelow - 1; i >= 0; i-- {
		g.emit("lw%s %s, 0($sp)", g.secMem(g.taints[i], false), regPool[i])
		g.emit("addiu%s $sp, $sp, 4", g.secOp(false))
	}
	for range x.Args {
		g.pop()
	}
	return nil
}

// genCondBranch evaluates cond and branches to target when it is false.
func (g *codegen) genCondBranchFalse(cond minic.Expr, target string) error {
	r, err := g.genExpr(cond)
	if err != nil {
		return err
	}
	g.emit("beq %s, $zero, %s", r, target)
	g.pop()
	return nil
}

func (g *codegen) genIf(st *minic.IfStmt) error {
	elseL := g.newLabel("else")
	endL := g.newLabel("endif")
	if err := g.genCondBranchFalse(st.Cond, elseL); err != nil {
		return err
	}
	if err := g.genBlock(st.Then); err != nil {
		return err
	}
	if st.Else != nil {
		g.emit("j %s", endL)
	}
	g.emitLabel(elseL)
	if st.Else != nil {
		if err := g.genBlock(st.Else); err != nil {
			return err
		}
		g.emitLabel(endL)
	}
	return nil
}

func (g *codegen) genWhile(st *minic.WhileStmt) error {
	headL := g.newLabel("while")
	endL := g.newLabel("endwhile")
	g.emitLabel(headL)
	if err := g.genCondBranchFalse(st.Cond, endL); err != nil {
		return err
	}
	if err := g.genBlock(st.Body); err != nil {
		return err
	}
	g.emit("j %s", headL)
	g.emitLabel(endL)
	return nil
}

func (g *codegen) genFor(st *minic.ForStmt) error {
	if st.Init != nil {
		if err := g.genAssign(st.Init); err != nil {
			return err
		}
	}
	headL := g.newLabel("for")
	endL := g.newLabel("endfor")
	g.emitLabel(headL)
	if st.Cond != nil {
		if err := g.genCondBranchFalse(st.Cond, endL); err != nil {
			return err
		}
	}
	if err := g.genBlock(st.Body); err != nil {
		return err
	}
	if st.Post != nil {
		if err := g.genAssign(st.Post); err != nil {
			return err
		}
	}
	g.emit("j %s", headL)
	g.emitLabel(endL)
	return nil
}

// paramTainted reports whether a parameter is in the protected set under the
// active policy (drives the security of its prologue homing store).
func (g *codegen) paramTainted(fn *minic.FuncDecl, p *minic.VarDecl) bool {
	switch g.policy {
	case PolicySeedsOnly:
		return p.Secure
	case PolicySelective:
		return g.a.Tainted[localID(fn.Name, p.Name)]
	}
	return false
}
