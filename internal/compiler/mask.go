package compiler

import (
	"fmt"
	"sort"

	"desmask/internal/minic"
)

// Boolean masking (PolicyBooleanMask) — a software countermeasure in the
// style of CryptRISC / Stangherlin & Sachdev: instead of charging every
// secret-touching instruction the dual-rail energy penalty, each tainted
// value is carried as a pair of shares (v XOR m, m) where m is a fresh
// per-execution random, so the energy of the ordinary (insecure, cheap)
// data path is statistically independent of the secret at first order.
//
// The transform runs on the lowered IR, before the -O passes:
//
//   - every tainted variable slot becomes a pair of slots: the slot itself
//     holds v XOR m and an adjacent shadow slot (MaskShadow) holds m;
//   - GF(2)-linear operations (xor, and-with-constant, constant shifts,
//     copies, loads/stores) are computed share-wise with *insecure*
//     instructions;
//   - non-linear operations (add, mul, or, and, comparisons, tainted table
//     indexing) become "secure islands": the operands are unmasked with a
//     secure xor, the operation runs with its secure variant (dual-rail,
//     data-independent energy), and the raw result is freshly remasked from
//     the pool before it re-enters the insecure share world;
//   - share values are statistically independent of the secrets, so their
//     taint bit is cleared; raw island intermediates stay tainted, which
//     makes every pass and the emitter treat them exactly as under
//     PolicySelective (see policySecure).
//
// The energy model is transition-sensitive: a rail that carries v XOR m and
// then m in consecutive transfers leaks HW(v). The transform therefore never
// lets the two halves of a pair (or any mask and a value it masks) occupy a
// rail back-to-back: every pair of share-wise operations is separated and
// followed by a scrub instruction that drives the relevant rails to a
// public random (the __mask_scrub word in $s7). The ALU, the XOR unit and
// the memory-data rail keep independent transition histories, so there are
// three scrub flavours (opScrub / opScrubX / opScrubLoad) and each pair
// uses the one matching its execution unit.
//
// Masks are drawn from the __mask_pool global through the reserved cursor
// register $s6 (opMaskLoad = load + post-increment), which the entry stub
// initializes and whose final value is stored to __mask_cursor before halt
// so harnesses can assert the pool never overflowed. A zero-filled pool
// degrades to unmasked-but-correct execution; protection comes from the
// harness poking fresh randoms per execution (see desprog/kernels).

// canonicalFor matches `for (v = 0; v < N; v = v + 1)` and returns the loop
// variable and trip count.
func canonicalFor(st *minic.ForStmt) (string, int64, bool) {
	if st.Init == nil || st.Cond == nil || st.Post == nil {
		return "", 0, false
	}
	iv, ok := st.Init.LHS.(*minic.VarRef)
	if !ok {
		return "", 0, false
	}
	zero, ok := st.Init.RHS.(*minic.NumLit)
	if !ok || zero.Val != 0 {
		return "", 0, false
	}
	cond, ok := st.Cond.(*minic.BinaryExpr)
	if !ok || cond.Op != minic.OpLt {
		return "", 0, false
	}
	cv, ok := cond.X.(*minic.VarRef)
	if !ok || cv.Name != iv.Name {
		return "", 0, false
	}
	n, ok := cond.Y.(*minic.NumLit)
	if !ok || n.Val <= 0 {
		return "", 0, false
	}
	pv, ok := st.Post.LHS.(*minic.VarRef)
	if !ok || pv.Name != iv.Name {
		return "", 0, false
	}
	inc, ok := st.Post.RHS.(*minic.BinaryExpr)
	if !ok || inc.Op != minic.OpAdd {
		return "", 0, false
	}
	ix, ok := inc.X.(*minic.VarRef)
	if !ok || ix.Name != iv.Name {
		return "", 0, false
	}
	one, ok := inc.Y.(*minic.NumLit)
	if !ok || one.Val != 1 {
		return "", 0, false
	}
	return iv.Name, n.Val, true
}

// injectShuffleGlobal scans for `shuffle for` loops, validates them and adds
// the identity-initialized __shuf permutation global. Returns the (common)
// trip count, or 0 when the program has no shuffle loops.
func injectShuffleGlobal(f *minic.File) (int, error) {
	n := 0
	var err error
	var walkStmt func(s minic.Stmt)
	walkBlock := func(b *minic.Block) {
		for _, s := range b.Stmts {
			walkStmt(s)
		}
	}
	walkStmt = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.Block:
			walkBlock(st)
		case *minic.IfStmt:
			walkBlock(st.Then)
			if st.Else != nil {
				walkBlock(st.Else)
			}
		case *minic.WhileStmt:
			walkBlock(st.Body)
		case *minic.ForStmt:
			if st.Shuffle {
				_, tc, ok := canonicalFor(st)
				if !ok && err == nil {
					err = errf(st.Pos, "shuffle for requires the canonical form `for (v = 0; v < N; v = v + 1)`")
				}
				if ok {
					if n != 0 && int64(n) != tc && err == nil {
						err = errf(st.Pos, "all shuffle loops in a program must share one trip count (have %d and %d)", n, tc)
					}
					n = int(tc)
				}
			}
			walkBlock(st.Body)
		}
	}
	for _, fn := range f.Funcs {
		walkBlock(fn.Body)
	}
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	if f.FindGlobal(ShuffleSym) == nil {
		init := make([]int64, n)
		for i := range init {
			init[i] = int64(i)
		}
		f.Globals = append(f.Globals, &minic.VarDecl{
			Name: ShuffleSym, IsArray: true, ArrayLen: n, Init: init,
		})
	}
	return n, nil
}

// slot classes under masking.
type mclass uint8

const (
	slotPub    mclass = iota // untainted variable: plain slot
	slotMasked               // tainted variable: share pair (slot, shadow)
	slotRaw                  // tainted parameter: raw value behind secure transfers
)

// value states during the rewrite.
type mstate uint8

const (
	stPub    mstate = iota // public value
	stMasked               // share0 of a pair (mask share tracked separately)
	stRaw                  // raw secret intermediate (secure islands only)
)

// maskModule rewrites every function for PolicyBooleanMask and injects the
// runtime-support globals. It returns the names of the masked globals (whose
// contents harnesses must poke as share pairs).
func maskModule(m *irModule, a *Analysis) ([]string, error) {
	file := m.file

	// Shadow globals, spliced right after their originals so the shadow of
	// arr[i] sits exactly 4*len(arr) bytes above arr[i]; runtime globals
	// appended at the end, the pool last so a cursor overflow runs into
	// silent (zero-filled, unprotected) memory rather than program data.
	var maskedGlobals []string
	for _, g := range file.Globals {
		if a.Tainted[globalID(g.Name)] {
			maskedGlobals = append(maskedGlobals, g.Name)
		}
	}
	if file.FindGlobal(MaskPoolSym) == nil {
		var out []*minic.VarDecl
		for _, g := range file.Globals {
			out = append(out, g)
			if a.Tainted[globalID(g.Name)] {
				out = append(out, &minic.VarDecl{
					Name: MaskShadow(g.Name), IsArray: g.IsArray, ArrayLen: g.ArrayLen,
				})
			}
		}
		out = append(out,
			&minic.VarDecl{Name: MaskScrubSym},
			&minic.VarDecl{Name: MaskCursorSym},
			&minic.VarDecl{Name: MaskPoolSym, IsArray: true, ArrayLen: MaskPoolWords},
		)
		file.Globals = out
	}

	for _, f := range m.funcs {
		if err := maskFunc(f, a); err != nil {
			return nil, err
		}
	}
	return maskedGlobals, nil
}

// masker carries the per-function rewrite state.
type masker struct {
	f     *irFunc
	a     *Analysis
	cls   map[string]mclass  // slot name -> class
	delta map[string]int32   // masked slot -> byte offset of its shadow
	st    map[valueID]mstate // value -> state (absent = stPub)
	share map[valueID]valueID
	out   []irInstr
	// rawOf caches island unmaskings within one block (dominance-safe).
	rawOf map[valueID]valueID
}

func maskFunc(f *irFunc, a *Analysis) error {
	mk := &masker{
		f: f, a: a,
		cls:   map[string]mclass{},
		delta: map[string]int32{},
		st:    map[valueID]mstate{},
		share: map[valueID]valueID{},
	}
	fn := f.decl
	params := map[string]bool{}
	for _, p := range fn.Params {
		params[p.Name] = true
	}

	// Classify frame slots and grow the frame with local shadows. Iterate in
	// offset order for a deterministic layout.
	names := make([]string, 0, len(f.frame))
	for name := range f.frame {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return f.frame[names[i]] < f.frame[names[j]] })
	for _, name := range names {
		if !a.Tainted[localID(fn.Name, name)] {
			mk.cls[name] = slotPub
			continue
		}
		if params[name] {
			mk.cls[name] = slotRaw
			continue
		}
		mk.cls[name] = slotMasked
		words := 1
		if d, ok := a.lookup(fn, name); ok && d.IsArray {
			words = d.ArrayLen
		}
		sh := MaskShadow(name)
		f.frame[sh] = f.frameSize
		f.frameSize += 4 * words
		mk.delta[name] = int32(f.frame[sh] - f.frame[name])
	}
	// Classify globals.
	for _, g := range a.File.Globals {
		if _, local := f.frame[g.Name]; local {
			continue
		}
		if a.Tainted[globalID(g.Name)] {
			mk.cls[g.Name] = slotMasked
			words := 1
			if g.IsArray {
				words = g.ArrayLen
			}
			mk.delta[g.Name] = int32(4 * words)
		}
	}

	for _, blk := range f.blocks {
		mk.out = mk.out[:0]
		mk.rawOf = map[valueID]valueID{}
		for i := range blk.instrs {
			if err := mk.rewrite(&blk.instrs[i]); err != nil {
				return err
			}
		}
		// Terminators read raw bits.
		if blk.term.Kind == termBrz && mk.state(blk.term.Cond) == stMasked {
			blk.term.Cond = mk.toRaw(blk.term.Cond)
		}
		if blk.term.Kind == termRet && blk.term.A != noValue && mk.state(blk.term.A) == stMasked {
			blk.term.A = mk.toRaw(blk.term.A)
		}
		blk.instrs = append([]irInstr(nil), mk.out...)
	}
	return nil
}

func (mk *masker) emit(in irInstr) { mk.out = append(mk.out, in) }

func (mk *masker) state(v valueID) mstate {
	if v <= zeroValue {
		return stPub
	}
	return mk.st[v]
}

func (mk *masker) classOf(sym string) mclass {
	return mk.cls[sym] // absent (e.g. runtime globals, tables) = slotPub
}

func (mk *masker) newVal(tainted bool) valueID { return mk.f.newValue(tainted) }

// setMasked marks v as share0 with the given mask share. Shares are
// statistically independent of the secrets, so their taint is cleared.
func (mk *masker) setMasked(v, mask valueID) {
	mk.st[v] = stMasked
	mk.share[v] = mask
	mk.f.taint[v] = false
}

func (mk *masker) setRaw(v valueID) {
	mk.st[v] = stRaw
	mk.f.taint[v] = true
}

// freshMask draws a pool word; the following scrub keeps the mask that just
// crossed the memory-data rail from sitting next to a value it masks.
func (mk *masker) freshMask() valueID {
	m := mk.newVal(false)
	mk.emit(irInstr{Op: opMaskLoad, Dst: m})
	mk.emit(irInstr{Op: opScrubLoad, Dst: noValue, A: noValue, B: noValue})
	return m
}

// toRaw produces the raw bits of v (identity for public/raw values). The
// unmasking xor is secure, so the recombination never appears on an
// insecure rail.
func (mk *masker) toRaw(v valueID) valueID {
	if mk.state(v) != stMasked {
		return v
	}
	if r, ok := mk.rawOf[v]; ok {
		return r
	}
	r := mk.newVal(true)
	mk.emit(irInstr{Op: opBin, Bin: binXor, Dst: r, A: v, B: mk.share[v], Secure: true})
	mk.setRaw(r)
	mk.rawOf[v] = r
	return r
}

// remask converts a raw value into a fresh share pair via a secure xor.
func (mk *masker) remask(raw valueID) valueID {
	m := mk.freshMask()
	s0 := mk.newVal(false)
	mk.emit(irInstr{Op: opBin, Bin: binXor, Dst: s0, A: raw, B: m, Secure: true})
	mk.setMasked(s0, m)
	return s0
}

// asPair returns (share0, mask) for a value, remasking raw values and
// pairing public values with the zero mask (public data needs no masking,
// and (v, 0) is a valid share pair).
func (mk *masker) asPair(v valueID) (valueID, valueID) {
	switch mk.state(v) {
	case stMasked:
		return v, mk.share[v]
	case stRaw:
		s0 := mk.remask(v)
		return s0, mk.share[s0]
	}
	return v, zeroValue
}

func (mk *masker) rewrite(in *irInstr) error {
	switch in.Op {
	case opConst, opAddr:
		mk.emit(*in)
		mk.st[in.Dst] = stPub
		return nil

	case opCopy:
		switch mk.state(in.A) {
		case stPub:
			mk.emit(*in)
			mk.st[in.Dst] = stPub
		case stRaw:
			cp := *in
			cp.Secure = true
			mk.emit(cp)
			mk.setRaw(in.Dst)
		case stMasked:
			mk.emit(irInstr{Op: opCopy, Dst: in.Dst, A: in.A})
			mk.setMasked(in.Dst, mk.share[in.A]) // mask share aliased, values are immutable
		}
		return nil

	case opLoad:
		switch mk.classOf(in.Sym) {
		case slotMasked:
			mk.emit(irInstr{Op: opLoad, Dst: in.Dst, Sym: in.Sym, Imm: in.Imm})
			mk.emit(irInstr{Op: opScrubLoad})
			m := mk.newVal(false)
			mk.emit(irInstr{Op: opLoad, Dst: m, Sym: MaskShadow(in.Sym), Imm: in.Imm})
			mk.emit(irInstr{Op: opScrubLoad})
			mk.setMasked(in.Dst, m)
		case slotRaw:
			cp := *in
			cp.Secure = true
			mk.emit(cp)
			mk.setRaw(in.Dst)
		default:
			mk.emit(*in)
			mk.st[in.Dst] = stPub
		}
		return nil

	case opStore:
		switch mk.classOf(in.Sym) {
		case slotMasked:
			s0, m := mk.asPair(in.A)
			if mk.state(in.A) == stPub {
				// Public write: plain store plus shadow invalidation, so a
				// later pair load reconstructs the public value.
				mk.emit(irInstr{Op: opStore, Sym: in.Sym, Imm: in.Imm, A: s0, Dst: noValue})
				mk.emit(irInstr{Op: opStore, Sym: MaskShadow(in.Sym), Imm: in.Imm, A: zeroValue, Dst: noValue})
				return nil
			}
			mk.emit(irInstr{Op: opStore, Sym: in.Sym, Imm: in.Imm, A: s0, Dst: noValue})
			mk.emit(irInstr{Op: opScrubLoad})
			mk.emit(irInstr{Op: opStore, Sym: MaskShadow(in.Sym), Imm: in.Imm, A: m, Dst: noValue})
			mk.emit(irInstr{Op: opScrubLoad})
		case slotRaw:
			cp := *in
			cp.A = mk.toRaw(in.A)
			cp.Secure = true
			mk.emit(cp)
		default:
			cp := *in
			if mk.state(in.A) != stPub {
				cp.A = mk.toRaw(in.A)
				cp.Secure = true
			}
			mk.emit(cp)
		}
		return nil

	case opLoadP:
		switch mk.classOf(in.Sym) {
		case slotMasked:
			if mk.state(in.A) == stPub {
				mk.emit(irInstr{Op: opLoadP, Dst: in.Dst, Sym: in.Sym, A: in.A})
				mk.emit(irInstr{Op: opScrubLoad})
				addr2 := mk.newVal(false)
				mk.emit(irInstr{Op: opBinImm, Bin: binAdd, Dst: addr2, A: in.A, Imm: mk.delta[in.Sym]})
				m := mk.newVal(false)
				mk.emit(irInstr{Op: opLoadP, Dst: m, Sym: MaskShadow(in.Sym), A: addr2})
				mk.emit(irInstr{Op: opScrubLoad})
				mk.setMasked(in.Dst, m)
				return nil
			}
			// Secret-dependent address into a masked array: both share loads
			// run secure (data-independent energy), no scrubs needed.
			ar := mk.toRaw(in.A)
			mk.emit(irInstr{Op: opLoadP, Dst: in.Dst, Sym: in.Sym, A: ar, Secure: true})
			addr2 := mk.newVal(true)
			mk.emit(irInstr{Op: opBinImm, Bin: binAdd, Dst: addr2, A: ar, Imm: mk.delta[in.Sym], Secure: true})
			m := mk.newVal(false)
			mk.emit(irInstr{Op: opLoadP, Dst: m, Sym: MaskShadow(in.Sym), A: addr2, Secure: true})
			mk.setMasked(in.Dst, m)
		default: // public array (incl. tables) or raw param (scalars only)
			cp := *in
			switch mk.state(in.A) {
			case stPub:
				mk.emit(cp)
				if mk.f.taint[in.Dst] {
					// e.g. control-tainted table data: raw under masking.
					cp.Secure = true
					mk.out[len(mk.out)-1] = cp
					mk.setRaw(in.Dst)
				} else {
					mk.st[in.Dst] = stPub
				}
			default:
				// The S-box case: a key-derived index must not ride the
				// address path insecurely — unmask and load secure.
				cp.A = mk.toRaw(in.A)
				cp.Secure = true
				mk.emit(cp)
				mk.setRaw(in.Dst)
			}
		}
		return nil

	case opStoreP:
		switch mk.classOf(in.Sym) {
		case slotMasked:
			if mk.state(in.A) != stPub {
				ar := mk.toRaw(in.A)
				s0, m := mk.asPair(in.B)
				mk.emit(irInstr{Op: opStoreP, Sym: in.Sym, A: ar, B: s0, Dst: noValue, Secure: true})
				addr2 := mk.newVal(true)
				mk.emit(irInstr{Op: opBinImm, Bin: binAdd, Dst: addr2, A: ar, Imm: mk.delta[in.Sym], Secure: true})
				mk.emit(irInstr{Op: opStoreP, Sym: MaskShadow(in.Sym), A: addr2, B: m, Dst: noValue, Secure: true})
				return nil
			}
			s0, m := mk.asPair(in.B)
			addr2 := mk.newVal(false)
			if mk.state(in.B) == stPub {
				mk.emit(irInstr{Op: opStoreP, Sym: in.Sym, A: in.A, B: s0, Dst: noValue})
				mk.emit(irInstr{Op: opBinImm, Bin: binAdd, Dst: addr2, A: in.A, Imm: mk.delta[in.Sym]})
				mk.emit(irInstr{Op: opStoreP, Sym: MaskShadow(in.Sym), A: addr2, B: zeroValue, Dst: noValue})
				return nil
			}
			mk.emit(irInstr{Op: opStoreP, Sym: in.Sym, A: in.A, B: s0, Dst: noValue})
			mk.emit(irInstr{Op: opScrubLoad})
			mk.emit(irInstr{Op: opBinImm, Bin: binAdd, Dst: addr2, A: in.A, Imm: mk.delta[in.Sym]})
			mk.emit(irInstr{Op: opStoreP, Sym: MaskShadow(in.Sym), A: addr2, B: m, Dst: noValue})
			mk.emit(irInstr{Op: opScrubLoad})
		default:
			cp := *in
			sec := cp.Secure
			if mk.state(in.A) != stPub {
				cp.A = mk.toRaw(in.A)
				sec = true
			}
			if mk.state(in.B) != stPub {
				cp.B = mk.toRaw(in.B)
				sec = true
			}
			cp.Secure = sec
			mk.emit(cp)
		}
		return nil

	case opBin:
		sa, sb := mk.state(in.A), mk.state(in.B)
		if sa == stPub && sb == stPub {
			mk.emit(*in)
			mk.st[in.Dst] = stPub
			return nil
		}
		if in.Bin == binXor && sa != stRaw && sb != stRaw {
			switch {
			case sa == stMasked && sb == stMasked:
				mk.emit(irInstr{Op: opBin, Bin: binXor, Dst: in.Dst, A: in.A, B: in.B})
				mk.emit(irInstr{Op: opScrubX})
				m := mk.newVal(false)
				mk.emit(irInstr{Op: opBin, Bin: binXor, Dst: m, A: mk.share[in.A], B: mk.share[in.B]})
				mk.emit(irInstr{Op: opScrubX})
				mk.setMasked(in.Dst, m)
			case sa == stMasked:
				mk.emit(irInstr{Op: opBin, Bin: binXor, Dst: in.Dst, A: in.A, B: in.B})
				mk.setMasked(in.Dst, mk.share[in.A])
			default: // sb == stMasked
				mk.emit(irInstr{Op: opBin, Bin: binXor, Dst: in.Dst, A: in.A, B: in.B})
				mk.setMasked(in.Dst, mk.share[in.B])
			}
			return nil
		}
		// Non-linear (or raw-fed) op: secure island.
		cp := *in
		cp.A = mk.toRaw(in.A)
		cp.B = mk.toRaw(in.B)
		cp.Secure = true
		mk.emit(cp)
		mk.setRaw(in.Dst)
		return nil

	case opBinImm:
		switch mk.state(in.A) {
		case stPub:
			mk.emit(*in)
			mk.st[in.Dst] = stPub
			return nil
		case stRaw:
			cp := *in
			cp.Secure = true
			mk.emit(cp)
			mk.setRaw(in.Dst)
			return nil
		}
		switch in.Bin {
		case binXor:
			// (v0 ^ c, m) is a valid pair for v ^ c: mask unchanged.
			mk.emit(irInstr{Op: opBinImm, Bin: binXor, Dst: in.Dst, A: in.A, Imm: in.Imm})
			mk.setMasked(in.Dst, mk.share[in.A])
		case binAnd, binShl, binShr, binShrU:
			// Bit projections/selections are GF(2)-linear (sra replicates
			// bit 31 in both shares, which cancels): apply share-wise.
			mk.emit(irInstr{Op: opBinImm, Bin: in.Bin, Dst: in.Dst, A: in.A, Imm: in.Imm})
			mk.emit(irInstr{Op: opScrub})
			m := mk.newVal(false)
			mk.emit(irInstr{Op: opBinImm, Bin: in.Bin, Dst: m, A: mk.share[in.A], Imm: in.Imm})
			mk.emit(irInstr{Op: opScrub})
			mk.setMasked(in.Dst, m)
		default:
			cp := *in
			cp.A = mk.toRaw(in.A)
			cp.Secure = true
			mk.emit(cp)
			mk.setRaw(in.Dst)
		}
		return nil

	case opCall:
		cp := *in
		if len(in.Args) > 0 {
			args := make([]valueID, len(in.Args))
			for i, v := range in.Args {
				args[i] = mk.toRaw(v) // raw args cross the call securely (taint-driven moves)
			}
			cp.Args = args
		}
		mk.emit(cp)
		if in.Dst != noValue {
			if mk.f.taint[in.Dst] {
				mk.setRaw(in.Dst)
			} else {
				mk.st[in.Dst] = stPub
			}
		}
		return nil
	}
	return fmt.Errorf("compiler: mask transform cannot handle op %v", in.Op)
}
