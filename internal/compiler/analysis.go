// Package compiler is the optimizing masking compiler of the paper: it takes
// MiniC source in which the programmer has annotated critical variables with
// the `secure` qualifier, determines — by forward slicing [11] over def-use
// relations and control dependences — every variable and operation whose
// value depends on those seeds, and emits assembly in which exactly the
// affected loads, stores, ALU operations and table-index computations use the
// secure (dual-rail) instruction variants. Blanket policies (no protection,
// all loads/stores, everything) are provided as the paper's comparison
// points.
package compiler

import (
	"fmt"
	"sort"

	"desmask/internal/minic"
)

// varID uniquely names a variable: globals by name, locals and parameters as
// "function/name".
type varID string

func globalID(name string) varID    { return varID(name) }
func localID(fn, name string) varID { return varID(fn + "/" + name) }
func (v varID) String() string      { return string(v) }

// Analysis holds the results of semantic analysis and taint propagation.
type Analysis struct {
	File *minic.File

	// vars maps each function name to its local scope (params + locals).
	locals map[string]map[string]*minic.VarDecl

	// Tainted is the forward slice: every variable whose value may depend on
	// a secure seed.
	Tainted map[varID]bool
	// ReturnTainted marks functions whose return value may be tainted.
	ReturnTainted map[string]bool
	// Seeds are the `secure`-annotated declarations.
	Seeds []varID
	// TaintedBranches lists source positions of branch conditions whose
	// value depends on a seed. Instruction-level masking cannot hide
	// control flow, so these are timing/SPA channels the paper's scheme
	// does not cover (it defers to code restructuring, §1 ref [3]); the
	// compiler surfaces them as warnings.
	TaintedBranches []minic.Pos
}

// Analyze runs semantic checks and the forward-slicing fixpoint.
func Analyze(f *minic.File) (*Analysis, error) {
	a := &Analysis{
		File:          f,
		locals:        map[string]map[string]*minic.VarDecl{},
		Tainted:       map[varID]bool{},
		ReturnTainted: map[string]bool{},
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	a.seed()
	a.propagate()
	a.findTaintedBranches()
	return a, nil
}

// findTaintedBranches scans for secret-dependent control flow once the
// taint fixpoint is stable.
func (a *Analysis) findTaintedBranches() {
	var walk func(fn *minic.FuncDecl, s minic.Stmt)
	walk = func(fn *minic.FuncDecl, s minic.Stmt) {
		switch st := s.(type) {
		case *minic.Block:
			for _, inner := range st.Stmts {
				walk(fn, inner)
			}
		case *minic.IfStmt:
			if a.ExprTainted(fn, st.Cond) {
				a.TaintedBranches = append(a.TaintedBranches, st.Pos)
			}
			walk(fn, st.Then)
			if st.Else != nil {
				walk(fn, st.Else)
			}
		case *minic.WhileStmt:
			if a.ExprTainted(fn, st.Cond) {
				a.TaintedBranches = append(a.TaintedBranches, st.Pos)
			}
			walk(fn, st.Body)
		case *minic.ForStmt:
			if st.Cond != nil && a.ExprTainted(fn, st.Cond) {
				a.TaintedBranches = append(a.TaintedBranches, st.Pos)
			}
			walk(fn, st.Body)
		}
	}
	for _, fn := range a.File.Funcs {
		walk(fn, fn.Body)
	}
}

// errf builds a positioned error.
func errf(pos minic.Pos, format string, args ...interface{}) error {
	return &minic.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// resolve builds scopes and performs the semantic checks.
func (a *Analysis) resolve() error {
	for _, fn := range a.File.Funcs {
		scope := map[string]*minic.VarDecl{}
		for _, p := range fn.Params {
			if _, dup := scope[p.Name]; dup {
				return errf(p.Pos, "duplicate parameter %q in %q", p.Name, fn.Name)
			}
			scope[p.Name] = p
		}
		if err := a.collectLocals(fn, fn.Body, scope); err != nil {
			return err
		}
		a.locals[fn.Name] = scope
	}
	for _, fn := range a.File.Funcs {
		if err := a.checkBlock(fn, fn.Body); err != nil {
			return err
		}
	}
	return nil
}

// collectLocals flattens every declaration in the function into one scope
// (MiniC blocks do not open new scopes).
func (a *Analysis) collectLocals(fn *minic.FuncDecl, b *minic.Block, scope map[string]*minic.VarDecl) error {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *minic.DeclStmt:
			d := st.Decl
			if _, dup := scope[d.Name]; dup {
				return errf(d.Pos, "duplicate local %q in %q", d.Name, fn.Name)
			}
			if d.IsArray && len(d.Init) > 0 {
				return errf(d.Pos, "local array %q cannot have an initializer; assign elements instead", d.Name)
			}
			scope[d.Name] = d
		case *minic.Block:
			if err := a.collectLocals(fn, st, scope); err != nil {
				return err
			}
		case *minic.IfStmt:
			if err := a.collectLocals(fn, st.Then, scope); err != nil {
				return err
			}
			if st.Else != nil {
				if err := a.collectLocals(fn, st.Else, scope); err != nil {
					return err
				}
			}
		case *minic.WhileStmt:
			if err := a.collectLocals(fn, st.Body, scope); err != nil {
				return err
			}
		case *minic.ForStmt:
			if err := a.collectLocals(fn, st.Body, scope); err != nil {
				return err
			}
		}
	}
	return nil
}

// lookup resolves a name in fn's scope, then globals.
func (a *Analysis) lookup(fn *minic.FuncDecl, name string) (*minic.VarDecl, bool) {
	if d, ok := a.locals[fn.Name][name]; ok {
		return d, true
	}
	if d := a.File.FindGlobal(name); d != nil {
		return d, true
	}
	return nil, false
}

// id returns the varID of name as seen from fn.
func (a *Analysis) id(fn *minic.FuncDecl, name string) varID {
	if _, ok := a.locals[fn.Name][name]; ok {
		return localID(fn.Name, name)
	}
	return globalID(name)
}

func (a *Analysis) checkBlock(fn *minic.FuncDecl, b *minic.Block) error {
	for _, s := range b.Stmts {
		if err := a.checkStmt(fn, s); err != nil {
			return err
		}
	}
	return nil
}

func (a *Analysis) checkStmt(fn *minic.FuncDecl, s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.Block:
		return a.checkBlock(fn, st)
	case *minic.DeclStmt:
		return nil
	case *minic.AssignStmt:
		if err := a.checkLValue(fn, st.LHS); err != nil {
			return err
		}
		return a.checkExpr(fn, st.RHS)
	case *minic.IfStmt:
		if err := a.checkExpr(fn, st.Cond); err != nil {
			return err
		}
		if err := a.checkBlock(fn, st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkBlock(fn, st.Else)
		}
		return nil
	case *minic.WhileStmt:
		if err := a.checkExpr(fn, st.Cond); err != nil {
			return err
		}
		return a.checkBlock(fn, st.Body)
	case *minic.ForStmt:
		if st.Init != nil {
			if err := a.checkStmt(fn, st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := a.checkExpr(fn, st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := a.checkStmt(fn, st.Post); err != nil {
				return err
			}
		}
		return a.checkBlock(fn, st.Body)
	case *minic.ReturnStmt:
		if fn.ReturnsInt && st.Value == nil {
			return errf(st.Pos, "function %q must return a value", fn.Name)
		}
		if !fn.ReturnsInt && st.Value != nil {
			return errf(st.Pos, "void function %q cannot return a value", fn.Name)
		}
		if st.Value != nil {
			return a.checkExpr(fn, st.Value)
		}
		return nil
	case *minic.ExprStmt:
		return a.checkExpr(fn, st.X)
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

func (a *Analysis) checkLValue(fn *minic.FuncDecl, e minic.Expr) error {
	switch lv := e.(type) {
	case *minic.VarRef:
		d, ok := a.lookup(fn, lv.Name)
		if !ok {
			return errf(lv.Pos, "undefined variable %q", lv.Name)
		}
		if d.IsArray {
			return errf(lv.Pos, "cannot assign to array %q without an index", lv.Name)
		}
		return nil
	case *minic.IndexExpr:
		d, ok := a.lookup(fn, lv.Name)
		if !ok {
			return errf(lv.Pos, "undefined variable %q", lv.Name)
		}
		if !d.IsArray {
			return errf(lv.Pos, "indexing non-array %q", lv.Name)
		}
		return a.checkExpr(fn, lv.Index)
	}
	return errf(e.Position(), "invalid assignment target")
}

func (a *Analysis) checkExpr(fn *minic.FuncDecl, e minic.Expr) error {
	switch x := e.(type) {
	case *minic.NumLit:
		return nil
	case *minic.VarRef:
		d, ok := a.lookup(fn, x.Name)
		if !ok {
			return errf(x.Pos, "undefined variable %q", x.Name)
		}
		if d.IsArray {
			return errf(x.Pos, "array %q used as a value", x.Name)
		}
		return nil
	case *minic.IndexExpr:
		d, ok := a.lookup(fn, x.Name)
		if !ok {
			return errf(x.Pos, "undefined variable %q", x.Name)
		}
		if !d.IsArray {
			return errf(x.Pos, "indexing non-array %q", x.Name)
		}
		return a.checkExpr(fn, x.Index)
	case *minic.BinaryExpr:
		if err := a.checkExpr(fn, x.X); err != nil {
			return err
		}
		return a.checkExpr(fn, x.Y)
	case *minic.UnaryExpr:
		return a.checkExpr(fn, x.X)
	case *minic.CallExpr:
		if x.Name == "public" {
			// Declassification intrinsic: the paper's output-inverse-
			// permutation exception — data that is about to be revealed in
			// the ciphertext needs no masking (§4.1).
			if a.File.FindFunc("public") != nil {
				return errf(x.Pos, "the name %q is reserved for the declassification intrinsic", x.Name)
			}
			if len(x.Args) != 1 {
				return errf(x.Pos, "public() takes exactly one argument")
			}
			return a.checkExpr(fn, x.Args[0])
		}
		callee := a.File.FindFunc(x.Name)
		if callee == nil {
			return errf(x.Pos, "undefined function %q", x.Name)
		}
		if len(x.Args) != len(callee.Params) {
			return errf(x.Pos, "call to %q with %d arguments, want %d", x.Name, len(x.Args), len(callee.Params))
		}
		for _, arg := range x.Args {
			if err := a.checkExpr(fn, arg); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("compiler: unknown expression %T", e)
}

// seed collects the secure-annotated declarations.
func (a *Analysis) seed() {
	for _, g := range a.File.Globals {
		if g.Secure {
			a.Seeds = append(a.Seeds, globalID(g.Name))
		}
	}
	for _, fn := range a.File.Funcs {
		for name, d := range a.locals[fn.Name] {
			if d.Secure {
				a.Seeds = append(a.Seeds, localID(fn.Name, name))
			}
		}
	}
	sort.Slice(a.Seeds, func(i, j int) bool { return a.Seeds[i] < a.Seeds[j] })
	for _, s := range a.Seeds {
		a.Tainted[s] = true
	}
}

// propagate runs the forward-slicing fixpoint: any variable assigned a value
// that depends (through data flow, array indexing, calls, or a tainted
// enclosing branch condition) on a tainted variable becomes tainted itself.
func (a *Analysis) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range a.File.Funcs {
			if a.propagateBlock(fn, fn.Body, false) {
				changed = true
			}
		}
	}
}

func (a *Analysis) taint(v varID) bool {
	if !a.Tainted[v] {
		a.Tainted[v] = true
		return true
	}
	return false
}

func (a *Analysis) propagateBlock(fn *minic.FuncDecl, b *minic.Block, ctlTaint bool) bool {
	changed := false
	for _, s := range b.Stmts {
		if a.propagateStmt(fn, s, ctlTaint) {
			changed = true
		}
	}
	return changed
}

func (a *Analysis) propagateStmt(fn *minic.FuncDecl, s minic.Stmt, ctlTaint bool) bool {
	switch st := s.(type) {
	case *minic.Block:
		return a.propagateBlock(fn, st, ctlTaint)
	case *minic.DeclStmt:
		if len(st.Decl.Init) > 0 && ctlTaint {
			return a.taint(a.id(fn, st.Decl.Name))
		}
		return false
	case *minic.AssignStmt:
		return a.propagateAssign(fn, st, ctlTaint)
	case *minic.IfStmt:
		inner := ctlTaint || a.ExprTainted(fn, st.Cond)
		changed := a.propagateBlock(fn, st.Then, inner)
		if st.Else != nil {
			if a.propagateBlock(fn, st.Else, inner) {
				changed = true
			}
		}
		return changed
	case *minic.WhileStmt:
		inner := ctlTaint || a.ExprTainted(fn, st.Cond)
		return a.propagateBlock(fn, st.Body, inner)
	case *minic.ForStmt:
		changed := false
		if st.Init != nil && a.propagateAssign(fn, st.Init, ctlTaint) {
			changed = true
		}
		inner := ctlTaint
		if st.Cond != nil {
			inner = inner || a.ExprTainted(fn, st.Cond)
		}
		if st.Post != nil && a.propagateAssign(fn, st.Post, inner) {
			changed = true
		}
		if a.propagateBlock(fn, st.Body, inner) {
			changed = true
		}
		return changed
	case *minic.ReturnStmt:
		if st.Value != nil && (ctlTaint || a.ExprTainted(fn, st.Value)) {
			if !a.ReturnTainted[fn.Name] {
				a.ReturnTainted[fn.Name] = true
				return true
			}
		}
		return false
	case *minic.ExprStmt:
		return a.propagateCallEffects(fn, st.X)
	}
	return false
}

func (a *Analysis) propagateAssign(fn *minic.FuncDecl, st *minic.AssignStmt, ctlTaint bool) bool {
	changed := a.propagateCallEffects(fn, st.RHS)
	tainted := ctlTaint || a.ExprTainted(fn, st.RHS)
	switch lv := st.LHS.(type) {
	case *minic.VarRef:
		if tainted && a.taint(a.id(fn, lv.Name)) {
			changed = true
		}
	case *minic.IndexExpr:
		if a.propagateCallEffects(fn, lv.Index) {
			changed = true
		}
		// Writing a tainted value — or writing at a tainted index, which
		// encodes secret bits in *where* data lands — taints the array.
		if (tainted || a.ExprTainted(fn, lv.Index)) && a.taint(a.id(fn, lv.Name)) {
			changed = true
		}
	}
	return changed
}

// propagateCallEffects pushes argument taint into callee parameters for every
// call inside e.
func (a *Analysis) propagateCallEffects(fn *minic.FuncDecl, e minic.Expr) bool {
	changed := false
	switch x := e.(type) {
	case *minic.BinaryExpr:
		if a.propagateCallEffects(fn, x.X) {
			changed = true
		}
		if a.propagateCallEffects(fn, x.Y) {
			changed = true
		}
	case *minic.UnaryExpr:
		changed = a.propagateCallEffects(fn, x.X)
	case *minic.IndexExpr:
		changed = a.propagateCallEffects(fn, x.Index)
	case *minic.CallExpr:
		if x.Name == "public" {
			return a.propagateCallEffects(fn, x.Args[0])
		}
		callee := a.File.FindFunc(x.Name)
		for i, arg := range x.Args {
			if a.propagateCallEffects(fn, arg) {
				changed = true
			}
			if a.ExprTainted(fn, arg) {
				if a.taint(localID(callee.Name, callee.Params[i].Name)) {
					changed = true
				}
			}
		}
	}
	return changed
}

// ExprTainted reports whether the value of e may depend on a secure seed,
// under the current taint state.
func (a *Analysis) ExprTainted(fn *minic.FuncDecl, e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.NumLit:
		return false
	case *minic.VarRef:
		return a.Tainted[a.id(fn, x.Name)]
	case *minic.IndexExpr:
		// A read from a tainted array, or at a tainted index (the value
		// selected is determined by secret bits — the S-box case).
		return a.Tainted[a.id(fn, x.Name)] || a.ExprTainted(fn, x.Index)
	case *minic.BinaryExpr:
		return a.ExprTainted(fn, x.X) || a.ExprTainted(fn, x.Y)
	case *minic.UnaryExpr:
		return a.ExprTainted(fn, x.X)
	case *minic.CallExpr:
		if x.Name == "public" {
			return false // declassified by construction
		}
		return a.ReturnTainted[x.Name]
	}
	return false
}

// TaintedVars lists the forward slice in sorted order.
func (a *Analysis) TaintedVars() []string {
	out := make([]string, 0, len(a.Tainted))
	for v := range a.Tainted {
		out = append(out, string(v))
	}
	sort.Strings(out)
	return out
}
