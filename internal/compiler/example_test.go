package compiler_test

import (
	"fmt"
	"strings"

	"desmask/internal/compiler"
)

// ExampleCompile shows the masking compiler on the paper's Figure 4 pattern:
// the key-derived copy loop gets secure loads and stores, the loop index
// stays cheap.
func ExampleCompile() {
	src := `
		secure int key[8];
		int shadow[8];
		void main() {
			int i;
			for (i = 0; i < 8; i = i + 1) { shadow[i] = key[i]; }
		}
	`
	res, err := compiler.Compile(src, compiler.PolicySelective)
	if err != nil {
		panic(err)
	}
	fmt.Println("forward slice:", strings.Join(res.Report.Tainted, ", "))
	fmt.Println("has secure load:", strings.Contains(res.Asm, "lw.s"))
	fmt.Println("has secure store:", strings.Contains(res.Asm, "sw.s"))
	fmt.Println("index loads secured:", res.Report.SecureLoads == res.Report.TotalLoads)
	// Output:
	// forward slice: key, shadow
	// has secure load: true
	// has secure store: true
	// index loads secured: false
}

// ExampleCompile_timingWarning shows the compiler flagging secret-dependent
// control flow, which energy masking cannot hide.
func ExampleCompile_timingWarning() {
	src := `
		secure int key[1];
		int out;
		void main() {
			if (key[0] > 0) { out = 1; } else { out = 2; }
		}
	`
	res, err := compiler.Compile(src, compiler.PolicySelective)
	if err != nil {
		panic(err)
	}
	fmt.Println("warnings:", len(res.Report.TimingWarnings))
	// Output:
	// warnings: 1
}
