package compiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/mem"
	"desmask/internal/minic"
)

// randomProgram builds a random but terminating MiniC program: a pool of
// scalars and one array, a sequence of random assignments, bounded loops and
// conditionals, all results folded into `out`. The secret array feeds some
// of the expressions so every policy has something to protect.
//
// Branch conditions only ever read `p`, a scalar that is assigned public
// literals: instruction-level energy masking deliberately does not hide
// control flow, so a secret-dependent branch is a timing channel outside
// the scheme's contract (the paper's §1 points to code restructuring [3]
// for those) — and the generator must respect that contract, exactly as
// the DES/TEA/AES workloads do.
func randomProgram(rng *rand.Rand, stmts int) string {
	scalars := []string{"a", "b", "c", "d", "e"}
	var b strings.Builder
	b.WriteString("secure int key[4];\nint out[8];\nint buf[8];\n")
	b.WriteString("void main() {\n")
	for _, s := range scalars {
		fmt.Fprintf(&b, "\tint %s;\n\t%s = %d;\n", s, s, rng.Intn(1000))
	}
	b.WriteString("\tint i;\n\tint p;\n\tp = ")
	fmt.Fprintf(&b, "%d;\n", rng.Intn(100))

	expr := func() string {
		pick := func() string {
			switch rng.Intn(4) {
			case 0:
				return scalars[rng.Intn(len(scalars))]
			case 1:
				return fmt.Sprintf("%d", rng.Intn(64))
			case 2:
				return fmt.Sprintf("key[%d]", rng.Intn(4))
			default:
				return fmt.Sprintf("buf[%d]", rng.Intn(8))
			}
		}
		ops := []string{"+", "-", "*", "^", "&", "|"}
		e := pick()
		for i := 0; i < rng.Intn(3); i++ {
			e = "(" + e + " " + ops[rng.Intn(len(ops))] + " " + pick() + ")"
		}
		if rng.Intn(4) == 0 {
			e = "(" + e + fmt.Sprintf(" << %d)", rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			e = "(" + e + fmt.Sprintf(" >>> %d)", rng.Intn(8))
		}
		return e
	}

	for i := 0; i < stmts; i++ {
		switch rng.Intn(6) {
		case 0, 1, 2: // scalar assignment
			fmt.Fprintf(&b, "\t%s = %s;\n", scalars[rng.Intn(len(scalars))], expr())
		case 3: // array store at a bounded index
			fmt.Fprintf(&b, "\tbuf[(%s) & 7] = %s;\n", scalars[rng.Intn(len(scalars))], expr())
		case 4: // bounded loop
			fmt.Fprintf(&b, "\tfor (i = 0; i < %d; i = i + 1) { %s = %s + i; }\n",
				2+rng.Intn(6), scalars[rng.Intn(len(scalars))], scalars[rng.Intn(len(scalars))])
		case 5: // conditional on the public scalar only (see doc comment)
			fmt.Fprintf(&b, "\tp = %d;\n", rng.Intn(100))
			fmt.Fprintf(&b, "\tif ((p & %d) == 0) { %s = %s; } else { %s = %s; }\n",
				1+rng.Intn(7),
				scalars[rng.Intn(len(scalars))], expr(),
				scalars[rng.Intn(len(scalars))], expr())
		}
	}
	for i, s := range scalars {
		fmt.Fprintf(&b, "\tout[%d] = %s;\n", i, s)
	}
	b.WriteString("\tout[5] = buf[0];\n\tout[6] = buf[3];\n\tout[7] = buf[7];\n}\n")
	return b.String()
}

// runFuzz compiles and runs one program, returning the out[] array.
func runFuzz(t *testing.T, src string, policy Policy, secret []uint32) []uint32 {
	t.Helper()
	res, err := Compile(src, policy)
	if err != nil {
		t.Fatalf("compile(%v): %v\n%s", policy, err, src)
	}
	c, err := cpu.New(res.Program, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	keyAddr := res.Program.Symbols[GlobalLabel("key")]
	for i, v := range secret {
		if err := c.Mem().StoreWord(keyAddr+uint32(4*i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(2_000_000); err != nil {
		t.Fatalf("run(%v): %v\n%s", policy, err, src)
	}
	outAddr := res.Program.Symbols[GlobalLabel("out")]
	out, err := c.Mem().ReadWords(outAddr, 8)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runFuzzRef executes the PolicyNone build on the golden model.
func runFuzzRef(t *testing.T, src string, secret []uint32) []uint32 {
	t.Helper()
	res, err := Compile(src, PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cpu.NewRef(res.Program, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	keyAddr := res.Program.Symbols[GlobalLabel("key")]
	for i, v := range secret {
		if err := r.Mem().StoreWord(keyAddr+uint32(4*i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Run(2_000_000); err != nil {
		t.Fatalf("ref run: %v\n%s", err, src)
	}
	outAddr := res.Program.Symbols[GlobalLabel("out")]
	out, err := r.Mem().ReadWords(outAddr, 8)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFuzzPoliciesAgree is the compiler's differential test: random programs
// must compute identical results under every protection policy (masking may
// never change semantics), on the pipeline and on the golden model alike.
func TestFuzzPoliciesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		src := randomProgram(rng, 12)
		secret := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
		ref := runFuzzRef(t, src, secret)
		for _, pol := range Policies() {
			got := runFuzz(t, src, pol, secret)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d, policy %v: out[%d] = %d, golden model says %d\nprogram:\n%s",
						trial, pol, i, got[i], ref[i], src)
				}
			}
		}
	}
}

// TestFuzzSelectiveMasks runs random programs under the selective policy
// with two different secrets and requires identical energy traces: the
// forward slice must cover every secret-dependent operation the generator
// can produce.
func TestFuzzSelectiveMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 15
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		src := randomProgram(rng, 10)
		res, err := Compile(src, PolicySelective)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		collect := func(secret uint32) []float64 {
			c, err := cpu.New(res.Program, mem.New())
			if err != nil {
				t.Fatal(err)
			}
			keyAddr := res.Program.Symbols[GlobalLabel("key")]
			for i := 0; i < 4; i++ {
				if err := c.Mem().StoreWord(keyAddr+uint32(4*i), secret^uint32(i)); err != nil {
					t.Fatal(err)
				}
			}
			meter := energy.NewProbe(energy.DefaultConfig())
			c.Attach(meter)
			var totals []float64
			c.Attach(cpu.ProbeFunc(func(cpu.CycleInfo) { totals = append(totals, meter.Last().Total) }))
			if err := c.Run(2_000_000); err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, src)
			}
			return totals
		}
		a := collect(0x00000000)
		b := collect(0xffffffff)
		if len(a) != len(b) {
			t.Fatalf("trial %d: cycle counts differ (%d vs %d)\n%s", trial, len(a), len(b), src)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: cycle %d leaks (%.4f vs %.4f)\nprogram:\n%s",
					trial, i, a[i], b[i], src)
			}
		}
	}
}

// runInterp evaluates a fuzz program with the independent AST interpreter.
func runInterp(t *testing.T, src string, secret []uint32) []uint32 {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := minic.NewInterp(f)
	if err := in.SetGlobal("key", secret); err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatalf("interp: %v\n%s", err, src)
	}
	out, err := in.Global("out")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFuzzTripleDifferential compares three independent execution paths on
// random programs: the AST interpreter, the compiled program on the
// pipelined CPU, and the compiled program on the golden model. Any
// code-generation bug that the ISA executors share is caught by the
// interpreter disagreeing.
func TestFuzzTripleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	trials := 20
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		src := randomProgram(rng, 12)
		secret := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
		want := runInterp(t, src, secret)
		gotPipe := runFuzz(t, src, PolicySelective, secret)
		gotRef := runFuzzRef(t, src, secret)
		for i := range want {
			if gotPipe[i] != want[i] {
				t.Fatalf("trial %d: pipeline out[%d]=%d, interpreter says %d\n%s",
					trial, i, gotPipe[i], want[i], src)
			}
			if gotRef[i] != want[i] {
				t.Fatalf("trial %d: golden model out[%d]=%d, interpreter says %d\n%s",
					trial, i, gotRef[i], want[i], src)
			}
		}
	}
}
