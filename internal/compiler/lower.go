package compiler

import (
	"fmt"

	"desmask/internal/minic"
)

// lowerer translates one function's AST to IR, assigning each value its
// taint (under the active policy's protected set) and each instruction its
// Secure bit. It mirrors the decision rules of the original single-pass
// codegen: loads/stores are secure when the data (or, for element accesses,
// the index) is tainted; address formation for a tainted index is secured
// unless the secure-indexing ablation is on; public(...) suppresses taint
// for everything evaluated inside it.
type lowerer struct {
	a      *Analysis
	opts   Options
	m      *irModule
	f      *irFunc
	fn     *minic.FuncDecl
	cur    *irBlock
	public int // > 0 inside public(...)
	label  int // module-wide label counter
}

func lower(a *Analysis, opts Options) (*irModule, error) {
	l := &lowerer{a: a, opts: opts, m: &irModule{file: a.File}}
	for _, fn := range a.File.Funcs {
		if err := l.lowerFunc(fn); err != nil {
			return nil, err
		}
	}
	return l.m, nil
}

func (l *lowerer) errf(pos minic.Pos, format string, args ...interface{}) error {
	return errf(pos, format, args...)
}

func (l *lowerer) newLabel(hint string) string {
	l.label++
	return fmt.Sprintf("L%d_%s", l.label, hint)
}

// block creation ------------------------------------------------------------

// newBlock creates a labelled block without appending it to the layout.
func (l *lowerer) newBlock(label string) *irBlock { return &irBlock{label: label} }

// startBlock appends b to the layout and makes it current.
func (l *lowerer) startBlock(b *irBlock) {
	l.f.blocks = append(l.f.blocks, b)
	l.cur = b
}

func (l *lowerer) emit(in irInstr) { l.cur.instrs = append(l.cur.instrs, in) }

// secure decisions ----------------------------------------------------------

func (l *lowerer) secOp(tainted bool) bool  { return policySecure(l.opts.Policy, tainted, false) }
func (l *lowerer) secMem(tainted bool) bool { return policySecure(l.opts.Policy, tainted, true) }

// taintedExpr evaluates expression taint under the active policy's notion of
// the protected set (full slice for Selective, bare seeds for SeedsOnly).
func (l *lowerer) taintedExpr(e minic.Expr) bool {
	if l.public > 0 {
		return false
	}
	if l.opts.Policy == PolicySeedsOnly {
		return l.seedExprTainted(e)
	}
	return l.a.ExprTainted(l.fn, e)
}

// seedExprTainted checks direct reference to a seed, without propagation.
func (l *lowerer) seedExprTainted(e minic.Expr) bool {
	seeds := map[varID]bool{}
	for _, s := range l.a.Seeds {
		seeds[s] = true
	}
	var walk func(minic.Expr) bool
	walk = func(e minic.Expr) bool {
		switch x := e.(type) {
		case *minic.VarRef:
			return seeds[l.a.id(l.fn, x.Name)]
		case *minic.IndexExpr:
			return seeds[l.a.id(l.fn, x.Name)] || walk(x.Index)
		case *minic.BinaryExpr:
			return walk(x.X) || walk(x.Y)
		case *minic.UnaryExpr:
			return walk(x.X)
		}
		return false
	}
	return walk(e)
}

// paramTainted reports whether a parameter is in the protected set under the
// active policy (drives the security of its prologue homing store).
func (l *lowerer) paramTainted(fn *minic.FuncDecl, p *minic.VarDecl) bool {
	switch l.opts.Policy {
	case PolicySeedsOnly:
		return p.Secure
	case PolicySelective, PolicyBooleanMask:
		// Under boolean masking tainted parameters stay raw (they are secure
		// islands' inputs), so their homing stores must be secure exactly as
		// under the selective policy.
		return l.a.Tainted[localID(fn.Name, p.Name)]
	}
	return false
}

// function lowering ---------------------------------------------------------

// lowerFunc lays out the frame and lowers the body.
//
// Frame layout (from $sp upward): parameter slots in order, then locals in
// declaration order (arrays inline), then the caller-save spill area sized by
// the register allocator, then the saved $ra in the top slot.
func (l *lowerer) lowerFunc(fn *minic.FuncDecl) error {
	f := &irFunc{
		name:       "f_" + fn.Name,
		decl:       fn,
		frame:      map[string]int{},
		returnsInt: fn.ReturnsInt,
		taint:      []bool{false}, // zeroValue
	}
	l.f, l.fn = f, fn
	off := 0
	for _, p := range fn.Params {
		f.frame[p.Name] = off
		off += 4
		f.paramSecure = append(f.paramSecure, l.secMem(l.paramTainted(fn, p)))
	}
	var assign func(b *minic.Block)
	assign = func(b *minic.Block) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *minic.DeclStmt:
				d := st.Decl
				f.frame[d.Name] = off
				if d.IsArray {
					off += 4 * d.ArrayLen
				} else {
					off += 4
				}
			case *minic.Block:
				assign(st)
			case *minic.IfStmt:
				assign(st.Then)
				if st.Else != nil {
					assign(st.Else)
				}
			case *minic.WhileStmt:
				assign(st.Body)
			case *minic.ForStmt:
				assign(st.Body)
			}
		}
	}
	assign(fn.Body)
	f.frameSize = off

	l.startBlock(l.newBlock(f.name + "_entry"))
	if err := l.lowerBlock(fn.Body); err != nil {
		return err
	}
	if l.cur.term.Kind == termNone {
		l.cur.term = irTerm{Kind: termRet, Cond: noValue, A: noValue}
	}
	l.m.funcs = append(l.m.funcs, f)
	return nil
}

func (l *lowerer) lowerBlock(b *minic.Block) error {
	for _, s := range b.Stmts {
		if err := l.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) lowerStmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.Block:
		return l.lowerBlock(st)
	case *minic.DeclStmt:
		d := st.Decl
		if len(d.Init) > 0 && !d.IsArray {
			return l.lowerAssign(&minic.AssignStmt{
				Pos: d.Pos,
				LHS: &minic.VarRef{Pos: d.Pos, Name: d.Name},
				RHS: &minic.NumLit{Pos: d.Pos, Val: d.Init[0]},
			})
		}
		return nil
	case *minic.AssignStmt:
		return l.lowerAssign(st)
	case *minic.IfStmt:
		return l.lowerIf(st)
	case *minic.WhileStmt:
		return l.lowerWhile(st)
	case *minic.ForStmt:
		return l.lowerFor(st)
	case *minic.ReturnStmt:
		v := noValue
		if st.Value != nil {
			r, err := l.lowerExpr(st.Value)
			if err != nil {
				return err
			}
			v = r
		}
		l.cur.term = irTerm{Kind: termRet, Cond: noValue, A: v}
		// Statements after a return are unreachable but still lowered, as
		// the original codegen kept emitting after the epilogue jump.
		l.startBlock(l.newBlock(l.newLabel("dead")))
		return nil
	case *minic.ExprStmt:
		call, ok := st.X.(*minic.CallExpr)
		if !ok {
			return l.errf(st.Pos, "expression statement must be a call")
		}
		if call.Name == "public" {
			return l.errf(st.Pos, "public() has no effect as a statement")
		}
		_, err := l.lowerCall(call, false)
		return err
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

// lowerAssign compiles `lhs = rhs`. The store is secure when the data being
// written is tainted; writing a public value into a protected array leaks
// nothing (and keeps the paper's initial-permutation loop fully insecure).
func (l *lowerer) lowerAssign(st *minic.AssignStmt) error {
	val, err := l.lowerExpr(st.RHS)
	if err != nil {
		return err
	}
	dataTaint := l.taintedExpr(st.RHS)
	switch lv := st.LHS.(type) {
	case *minic.VarRef:
		l.emit(irInstr{Op: opStore, Dst: noValue, Sym: lv.Name, A: val,
			Secure: l.secMem(dataTaint)})
	case *minic.IndexExpr:
		addr, idxTaint, err := l.lowerElemAddr(lv)
		if err != nil {
			return err
		}
		l.emit(irInstr{Op: opStoreP, Dst: noValue, Sym: lv.Name, A: addr, B: val,
			Secure: l.secMem(dataTaint || idxTaint)})
	default:
		return l.errf(st.Pos, "invalid assignment target")
	}
	return nil
}

// lowerElemAddr computes &arr[idx] and reports whether the index was tainted
// (the secure-indexing condition: a key-derived index must not leak through
// the address path, §4.2). Address formation — index scaling, base
// materialisation and the add — runs secure exactly when the index is
// tainted, unless the ablation disables that treatment.
func (l *lowerer) lowerElemAddr(ix *minic.IndexExpr) (valueID, bool, error) {
	idx, err := l.lowerExpr(ix.Index)
	if err != nil {
		return noValue, false, err
	}
	idxTaint := l.taintedExpr(ix.Index)
	if l.opts.DisableSecureIndexing {
		idxTaint = false
	}
	sec := l.secOp(idxTaint)
	scaled := l.f.newValue(idxTaint)
	l.emit(irInstr{Op: opBinImm, Bin: binShl, Dst: scaled, A: idx, Imm: 2, Secure: sec})
	base := l.f.newValue(idxTaint)
	l.emit(irInstr{Op: opAddr, Dst: base, Sym: ix.Name, Secure: sec})
	addr := l.f.newValue(idxTaint)
	l.emit(irInstr{Op: opBin, Bin: binAdd, Dst: addr, A: base, B: scaled, Secure: sec})
	return addr, idxTaint, nil
}

// lowerExpr evaluates e into a fresh value.
func (l *lowerer) lowerExpr(e minic.Expr) (valueID, error) {
	switch x := e.(type) {
	case *minic.NumLit:
		if x.Val < -(1<<31) || x.Val > 1<<32-1 {
			return noValue, l.errf(x.Pos, "constant %d does not fit in 32 bits", x.Val)
		}
		r := l.f.newValue(false)
		l.emit(irInstr{Op: opConst, Dst: r, Imm: int32(uint32(x.Val)), Secure: l.secOp(false)})
		return r, nil

	case *minic.VarRef:
		tainted := l.taintedExpr(x)
		r := l.f.newValue(tainted)
		l.emit(irInstr{Op: opLoad, Dst: r, Sym: x.Name, Secure: l.secMem(tainted)})
		return r, nil

	case *minic.IndexExpr:
		addr, idxTaint, err := l.lowerElemAddr(x)
		if err != nil {
			return noValue, err
		}
		tainted := l.taintedExpr(x) || idxTaint
		r := l.f.newValue(tainted)
		l.emit(irInstr{Op: opLoadP, Dst: r, Sym: x.Name, A: addr, Secure: l.secMem(tainted)})
		return r, nil

	case *minic.UnaryExpr:
		a, err := l.lowerExpr(x.X)
		if err != nil {
			return noValue, err
		}
		opTaint := l.taintedExpr(x.X)
		sec := l.secOp(opTaint)
		r := l.f.newValue(opTaint)
		switch x.Op {
		case minic.OpNeg:
			l.emit(irInstr{Op: opBin, Bin: binSub, Dst: r, A: zeroValue, B: a, Secure: sec})
		case minic.OpInv:
			l.emit(irInstr{Op: opBin, Bin: binNor, Dst: r, A: a, B: zeroValue, Secure: sec})
		case minic.OpNot:
			l.emit(irInstr{Op: opBinImm, Bin: binSltU, Dst: r, A: a, Imm: 1, Secure: sec})
		}
		return r, nil

	case *minic.BinaryExpr:
		return l.lowerBinary(x)

	case *minic.CallExpr:
		if x.Name == "public" {
			l.public++
			r, err := l.lowerExpr(x.Args[0])
			l.public--
			if err != nil {
				return noValue, err
			}
			// The declassified value: same bits, taint suppressed. The
			// argument was already lowered insecure (taintedExpr is false
			// inside public), and the result value is untainted.
			return r, nil
		}
		callee := l.a.File.FindFunc(x.Name)
		if callee != nil && !callee.ReturnsInt {
			return noValue, l.errf(x.Pos, "void function %q used as a value", x.Name)
		}
		return l.lowerCall(x, true)
	}
	return noValue, fmt.Errorf("compiler: unknown expression %T", e)
}

func (l *lowerer) lowerBinary(x *minic.BinaryExpr) (valueID, error) {
	// Constant shift amounts use the immediate shift forms.
	if (x.Op == minic.OpShl || x.Op == minic.OpShr || x.Op == minic.OpShrU) && isSmallConst(x.Y) {
		a, err := l.lowerExpr(x.X)
		if err != nil {
			return noValue, err
		}
		t := l.taintedExpr(x)
		n := x.Y.(*minic.NumLit).Val
		if n < 0 || n > 31 {
			return noValue, l.errf(x.Pos, "shift amount %d out of range", n)
		}
		bin := map[minic.BinOp]irBin{minic.OpShl: binShl, minic.OpShr: binShr, minic.OpShrU: binShrU}[x.Op]
		r := l.f.newValue(t)
		l.emit(irInstr{Op: opBinImm, Bin: bin, Dst: r, A: a, Imm: int32(n), Secure: l.secOp(t)})
		return r, nil
	}

	a, err := l.lowerExpr(x.X)
	if err != nil {
		return noValue, err
	}
	b, err := l.lowerExpr(x.Y)
	if err != nil {
		return noValue, err
	}
	t := l.taintedExpr(x)
	sec := l.secOp(t)
	bin2 := func(bin irBin, a, b valueID) valueID {
		r := l.f.newValue(t)
		l.emit(irInstr{Op: opBin, Bin: bin, Dst: r, A: a, B: b, Secure: sec})
		return r
	}
	binImm := func(bin irBin, a valueID, imm int32) valueID {
		r := l.f.newValue(t)
		l.emit(irInstr{Op: opBinImm, Bin: bin, Dst: r, A: a, Imm: imm, Secure: sec})
		return r
	}
	switch x.Op {
	case minic.OpAdd:
		return bin2(binAdd, a, b), nil
	case minic.OpSub:
		return bin2(binSub, a, b), nil
	case minic.OpMul:
		return bin2(binMul, a, b), nil
	case minic.OpXor:
		return bin2(binXor, a, b), nil
	case minic.OpAnd:
		return bin2(binAnd, a, b), nil
	case minic.OpOr:
		return bin2(binOr, a, b), nil
	case minic.OpShl:
		return bin2(binShl, a, b), nil
	case minic.OpShr:
		return bin2(binShr, a, b), nil
	case minic.OpShrU:
		return bin2(binShrU, a, b), nil
	case minic.OpLt:
		return bin2(binSlt, a, b), nil
	case minic.OpGt:
		return bin2(binSlt, b, a), nil
	case minic.OpLe:
		return binImm(binXor, bin2(binSlt, b, a), 1), nil
	case minic.OpGe:
		return binImm(binXor, bin2(binSlt, a, b), 1), nil
	case minic.OpEq:
		return binImm(binSltU, bin2(binSub, a, b), 1), nil
	case minic.OpNe:
		return bin2(binSltU, zeroValue, bin2(binSub, a, b)), nil
	}
	return noValue, l.errf(x.Pos, "unsupported operator %v", x.Op)
}

func isSmallConst(e minic.Expr) bool {
	n, ok := e.(*minic.NumLit)
	return ok && n.Val >= 0 && n.Val <= 31
}

// lowerCall evaluates arguments left to right and emits the call. When
// wantValue is set the call's result value is returned, tainted when the
// callee's return is in the slice.
func (l *lowerer) lowerCall(x *minic.CallExpr, wantValue bool) (valueID, error) {
	callee := l.a.File.FindFunc(x.Name)
	args := make([]valueID, len(x.Args))
	for i, arg := range x.Args {
		r, err := l.lowerExpr(arg)
		if err != nil {
			return noValue, err
		}
		args[i] = r
	}
	dst := noValue
	sec := false
	if wantValue {
		retTaint := l.a.ReturnTainted[x.Name] && l.opts.Policy != PolicySeedsOnly && l.public == 0
		dst = l.f.newValue(retTaint)
		sec = l.secOp(retTaint)
	}
	l.emit(irInstr{Op: opCall, Dst: dst, Sym: "f_" + callee.Name, Args: args, Secure: sec})
	return dst, nil
}

// control flow --------------------------------------------------------------

// lowerCondBrz evaluates cond in the current block and branches to target
// when it is false.
func (l *lowerer) lowerCondBrz(cond minic.Expr, target *irBlock) error {
	r, err := l.lowerExpr(cond)
	if err != nil {
		return err
	}
	l.cur.term = irTerm{Kind: termBrz, Cond: r, A: noValue, Target: target}
	return nil
}

func (l *lowerer) lowerIf(st *minic.IfStmt) error {
	elseB := l.newBlock(l.newLabel("else"))
	var endB *irBlock
	if st.Else != nil {
		endB = l.newBlock(l.newLabel("endif"))
	}
	if err := l.lowerCondBrz(st.Cond, elseB); err != nil {
		return err
	}
	l.startBlock(l.newBlock(l.newLabel("then")))
	if err := l.lowerBlock(st.Then); err != nil {
		return err
	}
	if st.Else != nil {
		l.cur.term = irTerm{Kind: termJmp, Cond: noValue, A: noValue, Target: endB}
	}
	l.startBlock(elseB)
	if st.Else != nil {
		if err := l.lowerBlock(st.Else); err != nil {
			return err
		}
		l.startBlock(endB)
	}
	return nil
}

func (l *lowerer) lowerWhile(st *minic.WhileStmt) error {
	headB := l.newBlock(l.newLabel("while"))
	endB := l.newBlock(l.newLabel("endwhile"))
	l.startBlock(headB)
	if err := l.lowerCondBrz(st.Cond, endB); err != nil {
		return err
	}
	l.startBlock(l.newBlock(l.newLabel("body")))
	if err := l.lowerBlock(st.Body); err != nil {
		return err
	}
	l.cur.term = irTerm{Kind: termJmp, Cond: noValue, A: noValue, Target: headB}
	l.startBlock(endB)
	return nil
}

func (l *lowerer) lowerFor(st *minic.ForStmt) error {
	if st.Shuffle && l.opts.Shuffle {
		return l.lowerShuffledFor(st)
	}
	if st.Init != nil {
		if err := l.lowerAssign(st.Init); err != nil {
			return err
		}
	}
	headB := l.newBlock(l.newLabel("for"))
	endB := l.newBlock(l.newLabel("endfor"))
	l.startBlock(headB)
	if st.Cond != nil {
		if err := l.lowerCondBrz(st.Cond, endB); err != nil {
			return err
		}
		l.startBlock(l.newBlock(l.newLabel("body")))
	}
	if err := l.lowerBlock(st.Body); err != nil {
		return err
	}
	if st.Post != nil {
		if err := l.lowerAssign(st.Post); err != nil {
			return err
		}
	}
	l.cur.term = irTerm{Kind: termJmp, Cond: noValue, A: noValue, Target: headB}
	l.startBlock(endB)
	return nil
}

// lowerShuffledFor lowers a `shuffle for` loop under Options.Shuffle: a
// hidden counter walks 0..N-1 and the programmer's loop variable is assigned
// __shuf[counter] at the top of each iteration, so a per-execution random
// permutation poked into __shuf decides the visitation order. The rewritten
// loop reuses the ordinary lowering, so taint and Secure decisions are the
// standard ones; the indirection itself is public data flow (the permutation
// is independent of the secrets).
func (l *lowerer) lowerShuffledFor(st *minic.ForStmt) error {
	v, n, ok := canonicalFor(st)
	if !ok {
		return l.errf(st.Pos, "shuffle for requires the canonical form `for (v = 0; v < N; v = v + 1)`")
	}
	_ = n
	l.label++
	idx := fmt.Sprintf("__shufidx%d", l.label)
	l.f.frame[idx] = l.f.frameSize
	l.f.frameSize += 4
	pos := st.Pos
	indirect := &minic.AssignStmt{
		Pos: pos,
		LHS: &minic.VarRef{Pos: pos, Name: v},
		RHS: &minic.IndexExpr{Pos: pos, Name: ShuffleSym, Index: &minic.VarRef{Pos: pos, Name: idx}},
	}
	rewritten := &minic.ForStmt{
		Pos:  pos,
		Init: &minic.AssignStmt{Pos: pos, LHS: &minic.VarRef{Pos: pos, Name: idx}, RHS: &minic.NumLit{Pos: pos, Val: 0}},
		Cond: &minic.BinaryExpr{Pos: pos, Op: minic.OpLt,
			X: &minic.VarRef{Pos: pos, Name: idx}, Y: st.Cond.(*minic.BinaryExpr).Y},
		Post: &minic.AssignStmt{Pos: pos, LHS: &minic.VarRef{Pos: pos, Name: idx},
			RHS: &minic.BinaryExpr{Pos: pos, Op: minic.OpAdd, X: &minic.VarRef{Pos: pos, Name: idx}, Y: &minic.NumLit{Pos: pos, Val: 1}}},
		Body: &minic.Block{Pos: st.Body.Pos, Stmts: append([]minic.Stmt{indirect}, st.Body.Stmts...)},
	}
	return l.lowerFor(rewritten)
}
