package compiler

import (
	"fmt"
	"strings"

	"desmask/internal/minic"
)

// The compiler's middle end is a three-address IR over virtual values with
// basic blocks and an explicit CFG. Two security properties are first-class:
//
//   - every value carries a taint bit, the value-level projection of the
//     forward slice (under PolicySeedsOnly it reflects the bare seed set
//     instead, reproducing the ablation's weaker protection);
//   - every instruction carries the Secure flag decided at lowering from the
//     active policy and its operands' taint. Passes may delete instructions
//     or replace them with cheaper ones, but any instruction they create
//     must be at least as secure as what it replaces (see passes.go).
//
// Variables stay memory-homed (opLoad/opStore address them by name), which
// keeps the load/store structure — the thing the paper's policies act on —
// visible in the IR rather than hidden behind register promotion.

// valueID names a virtual value. Values are single-assignment: each is
// defined by exactly one instruction (or is zeroValue).
type valueID int32

const (
	// noValue marks an absent operand or result.
	noValue valueID = -1
	// zeroValue is the always-zero value, pre-colored to $zero.
	zeroValue valueID = 0
)

// irBin enumerates machine-level binary operations (minic comparisons are
// lowered to sequences of these).
type irBin uint8

// Machine-level binary operators.
const (
	binAdd irBin = iota
	binSub
	binMul
	binXor
	binAnd
	binOr
	binNor
	binShl
	binShr // arithmetic
	binShrU
	binSlt
	binSltU
)

var irBinNames = [...]string{
	binAdd: "add", binSub: "sub", binMul: "mul", binXor: "xor",
	binAnd: "and", binOr: "or", binNor: "nor", binShl: "shl",
	binShr: "shr", binShrU: "shru", binSlt: "slt", binSltU: "sltu",
}

func (b irBin) String() string { return irBinNames[b] }

// irOp enumerates IR instruction kinds.
type irOp uint8

// IR instruction kinds.
const (
	opConst  irOp = iota // Dst = Imm
	opCopy               // Dst = A
	opAddr               // Dst = &Sym (variable base address)
	opLoad               // Dst = mem[Sym + Imm]        (direct slot access)
	opStore              // mem[Sym + Imm] = A
	opLoadP              // Dst = mem[A]                (Sym = array, for aliasing)
	opStoreP             // mem[A] = B                  (Sym = array, for aliasing)
	opBin                // Dst = A <Bin> B
	opBinImm             // Dst = A <Bin> Imm
	opCall               // Dst = call Sym(Args...); Dst may be noValue

	// Boolean-masking runtime ops (emitted only by the mask transform,
	// see mask.go; no front-end construct lowers to them).
	opMaskLoad  // Dst = *maskCursor++ (fresh random mask from the pool)
	opScrub     // ALU-history scrub: or $k0, $s7, $s7 (no IR value)
	opScrubX    // XOR-unit-history scrub: xor $k0, $s7, $zero (no IR value)
	opScrubLoad // memory-rail scrub: $k0 = mem[__mask_scrub] (no IR value)
)

// irInstr is one three-address instruction.
type irInstr struct {
	Op     irOp
	Bin    irBin
	Dst    valueID
	A, B   valueID
	Imm    int32
	Sym    string
	Args   []valueID
	Secure bool
}

// def returns the value this instruction defines, or noValue.
func (in *irInstr) def() valueID {
	switch in.Op {
	case opStore, opStoreP, opScrub, opScrubX, opScrubLoad:
		return noValue
	case opCall:
		return in.Dst
	}
	return in.Dst
}

// eachUse visits every value operand the instruction reads.
func (in *irInstr) eachUse(f func(valueID)) {
	switch in.Op {
	case opConst, opAddr:
	case opCopy, opStore, opBinImm:
		f(in.A)
	case opLoadP:
		f(in.A)
	case opStoreP, opBin:
		f(in.A)
		f(in.B)
	case opCall:
		for _, a := range in.Args {
			f(a)
		}
	}
}

// pure reports whether the instruction has no side effect beyond defining
// Dst (loads are pure: removing one that executed in the unoptimized build
// cannot introduce a fault). Scrub ops are impure by design: their whole
// point is the side effect on the energy model's transition history, so no
// pass may delete them. opMaskLoad stays pure — deleting an unused one skips
// a pool word, and every remaining mask is still an independent fresh random,
// so the masking argument is unaffected.
func (in *irInstr) pure() bool {
	switch in.Op {
	case opStore, opStoreP, opCall, opScrub, opScrubX, opScrubLoad:
		return false
	}
	return true
}

// termKind enumerates block terminators. A block with termNone falls through
// to the next block in layout order (termBrz also falls through when the
// condition is non-zero).
type termKind uint8

// Terminators.
const (
	termNone termKind = iota
	termJmp
	termBrz // branch to Target when Cond == 0, else fall through
	termRet // set return value (A, may be noValue) and go to the epilogue
)

type irTerm struct {
	Kind   termKind
	Cond   valueID
	A      valueID
	Target *irBlock
}

// irBlock is a basic block.
type irBlock struct {
	label  string
	instrs []irInstr
	term   irTerm
}

// irFunc is one lowered function.
type irFunc struct {
	name        string
	decl        *minic.FuncDecl
	blocks      []*irBlock
	taint       []bool // indexed by valueID
	frame       map[string]int
	frameSize   int    // bytes for params+locals (spill area and $ra on top)
	paramSecure []bool // secure bit of each parameter's homing store
	returnsInt  bool
}

// newValue allocates a fresh value with the given taint.
func (f *irFunc) newValue(tainted bool) valueID {
	f.taint = append(f.taint, tainted)
	return valueID(len(f.taint) - 1)
}

// succs returns the CFG successors of block i under layout order.
func (f *irFunc) succs(i int) []*irBlock {
	b := f.blocks[i]
	var out []*irBlock
	switch b.term.Kind {
	case termJmp:
		out = append(out, b.term.Target)
	case termBrz:
		out = append(out, b.term.Target)
		if i+1 < len(f.blocks) {
			out = append(out, f.blocks[i+1])
		}
	case termNone:
		if i+1 < len(f.blocks) {
			out = append(out, f.blocks[i+1])
		}
	case termRet:
	}
	return out
}

// isLocal reports whether sym names a frame variable of this function.
func (f *irFunc) isLocal(sym string) bool {
	_, ok := f.frame[sym]
	return ok
}

// irModule is the lowered translation unit.
type irModule struct {
	file  *minic.File
	funcs []*irFunc
}

func (m *irModule) find(name string) *irFunc {
	for _, f := range m.funcs {
		if f.name == name {
			return f
		}
	}
	return nil
}

// Dump renders the module in a deterministic textual form (maskcc -dump-ir).
func (m *irModule) Dump() string {
	var b strings.Builder
	for _, f := range m.funcs {
		f.dump(&b)
	}
	return b.String()
}

func (f *irFunc) dump(b *strings.Builder) {
	fmt.Fprintf(b, "func %s (frame %d bytes):\n", f.name, f.frameSize)
	for _, blk := range f.blocks {
		fmt.Fprintf(b, "%s:\n", blk.label)
		for i := range blk.instrs {
			fmt.Fprintf(b, "  %s\n", f.fmtInstr(&blk.instrs[i]))
		}
		switch blk.term.Kind {
		case termJmp:
			fmt.Fprintf(b, "  jmp %s\n", blk.term.Target.label)
		case termBrz:
			fmt.Fprintf(b, "  brz %s -> %s\n", f.fmtVal(blk.term.Cond), blk.term.Target.label)
		case termRet:
			if blk.term.A == noValue {
				fmt.Fprintf(b, "  ret\n")
			} else {
				fmt.Fprintf(b, "  ret %s\n", f.fmtVal(blk.term.A))
			}
		}
	}
}

func (f *irFunc) fmtVal(v valueID) string {
	switch v {
	case noValue:
		return "_"
	case zeroValue:
		return "zero"
	}
	if int(v) < len(f.taint) && f.taint[v] {
		return fmt.Sprintf("v%d!", v)
	}
	return fmt.Sprintf("v%d", v)
}

func (f *irFunc) fmtInstr(in *irInstr) string {
	sec := ""
	if in.Secure {
		sec = ".s"
	}
	switch in.Op {
	case opConst:
		return fmt.Sprintf("%s = const%s %d", f.fmtVal(in.Dst), sec, in.Imm)
	case opCopy:
		return fmt.Sprintf("%s = copy%s %s", f.fmtVal(in.Dst), sec, f.fmtVal(in.A))
	case opAddr:
		return fmt.Sprintf("%s = addr%s &%s", f.fmtVal(in.Dst), sec, in.Sym)
	case opLoad:
		return fmt.Sprintf("%s = load%s %s+%d", f.fmtVal(in.Dst), sec, in.Sym, in.Imm)
	case opStore:
		return fmt.Sprintf("store%s %s+%d, %s", sec, in.Sym, in.Imm, f.fmtVal(in.A))
	case opLoadP:
		return fmt.Sprintf("%s = load%s [%s] (%s)", f.fmtVal(in.Dst), sec, f.fmtVal(in.A), in.Sym)
	case opStoreP:
		return fmt.Sprintf("store%s [%s], %s (%s)", sec, f.fmtVal(in.A), f.fmtVal(in.B), in.Sym)
	case opBin:
		return fmt.Sprintf("%s = %s%s %s, %s", f.fmtVal(in.Dst), in.Bin, sec, f.fmtVal(in.A), f.fmtVal(in.B))
	case opBinImm:
		return fmt.Sprintf("%s = %s%s %s, %d", f.fmtVal(in.Dst), in.Bin, sec, f.fmtVal(in.A), in.Imm)
	case opCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = f.fmtVal(a)
		}
		if in.Dst == noValue {
			return fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s = call%s %s(%s)", f.fmtVal(in.Dst), sec, in.Sym, strings.Join(args, ", "))
	case opMaskLoad:
		return fmt.Sprintf("%s = maskload", f.fmtVal(in.Dst))
	case opScrub:
		return "scrub.alu"
	case opScrubX:
		return "scrub.xor"
	case opScrubLoad:
		return "scrub.mem"
	}
	return "?"
}

// policySecure is the single decision table mapping (policy, operand taint,
// memory-ness) to the secure bit — the same table the old codegen used, now
// shared by lowering, the passes and the emitter.
func policySecure(p Policy, tainted, isMem bool) bool {
	switch p {
	case PolicyNone:
		return false
	case PolicySeedsOnly, PolicySelective:
		return tainted
	case PolicyNaiveLoadStore:
		return isMem
	case PolicyAllSecure:
		return true
	case PolicyBooleanMask:
		// The mask transform (mask.go) rewrites tainted data flow into
		// insecure share-wise operations, so by the time code is emitted the
		// only tainted values left are the raw intermediates inside secure
		// islands. Answering "tainted" here makes lowering and any pass that
		// consults the table treat those exactly like PolicySelective — a
		// safety net, not the protection mechanism.
		return tainted
	}
	return false
}
