package compiler

import (
	"math"
	"math/rand"
	"testing"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/mem"
	"desmask/internal/minic"
)

func TestConstantFolding(t *testing.T) {
	src := `
		int out[4];
		void main() {
			out[0] = 2 + 3 * 4;
			out[1] = (1 << 8) | 15;
			out[2] = -(7 - 10) + !0 + ~0;
			out[3] = (100 >>> 2) ^ (5 < 6);
		}
	`
	opt, err := CompileWithOptions(src, Options{Policy: PolicyNone, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Report.FoldedConstants == 0 {
		t.Error("no constants folded")
	}
	plain, err := Compile(src, PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Program.Text) >= len(plain.Program.Text) {
		t.Errorf("optimized program (%d insts) not smaller than plain (%d)",
			len(opt.Program.Text), len(plain.Program.Text))
	}
	// Results must match.
	run := func(res *Result) []uint32 {
		c, err := cpu.New(res.Program, mem.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Run(100000); err != nil {
			t.Fatal(err)
		}
		out, err := c.Mem().ReadWords(res.Program.Symbols[GlobalLabel("out")], 4)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(opt), run(plain)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("out[%d]: optimized %d, plain %d", i, a[i], b[i])
		}
	}
	if a[0] != 14 || a[1] != 271 {
		t.Errorf("folded values wrong: %v", a)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	src := `
		secure int key[1];
		int out[2];
		void main() {
			int t;
			t = key[0] ^ 3;
			out[0] = t;
			t = 5;
			out[1] = t + t;
		}
	`
	res, err := CompileWithOptions(src, Options{Policy: PolicySelective, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ForwardedLoads == 0 {
		t.Error("no loads forwarded")
	}
	plain, err := Compile(src, PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Text) >= len(plain.Program.Text) {
		t.Errorf("optimized program (%d insts) not smaller than plain (%d)",
			len(res.Program.Text), len(plain.Program.Text))
	}
}

// TestOptimizedFuzzAgrees re-runs the policy-differential fuzz with the
// optimizer on: results must match the unoptimized golden model, and the
// masking invariant must survive optimization.
func TestOptimizedFuzzAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	trials := 15
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		src := randomProgram(rng, 10)
		secret := []uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
		ref := runFuzzRef(t, src, secret)
		for _, pol := range Policies() {
			res, err := CompileWithOptions(src, Options{Policy: pol, Optimize: true})
			if err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, src)
			}
			got := runFuzzCompiled(t, res, secret)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d policy %v optimized: out[%d]=%d want %d\n%s",
						trial, pol, i, got[i], ref[i], src)
				}
			}
		}
	}
}

func TestOptimizedMaskingStillFlat(t *testing.T) {
	res, err := CompileWithOptions(maskingTestSrc, Options{Policy: PolicySelective, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(secret uint32) []float64 {
		c, err := cpu.New(res.Program, mem.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Mem().StoreWord(res.Program.Symbols[GlobalLabel("key")], secret); err != nil {
			t.Fatal(err)
		}
		meter := energy.NewProbe(energy.DefaultConfig())
		c.Attach(meter)
		var totals []float64
		c.Attach(cpu.ProbeFunc(func(cpu.CycleInfo) { totals = append(totals, meter.Last().Total) }))
		if err := c.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return totals
	}
	a, b := collect(0), collect(0xffffffff)
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks with optimization on", i)
		}
	}
}

func TestEvalBinOpCoverage(t *testing.T) {
	cases := []struct {
		op   minic.BinOp
		a, b int32
		want int32
	}{
		{minic.OpAdd, 7, 3, 10}, {minic.OpSub, 7, 3, 4}, {minic.OpMul, 7, 3, 21},
		{minic.OpXor, 7, 3, 4}, {minic.OpAnd, 7, 3, 3}, {minic.OpOr, 4, 3, 7},
		{minic.OpShl, 1, 4, 16}, {minic.OpShr, -8, 2, -2}, {minic.OpShrU, -8, 30, 3},
		{minic.OpLt, 1, 2, 1}, {minic.OpLe, 2, 2, 1}, {minic.OpGt, 1, 2, 0},
		{minic.OpGe, 1, 2, 0}, {minic.OpEq, 5, 5, 1}, {minic.OpNe, 5, 5, 0},
	}
	for _, c := range cases {
		got, ok := evalBinOp(c.op, c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("%d %v %d = %d (%v), want %d", c.a, c.op, c.b, got, ok, c.want)
		}
	}
}

// runFuzzCompiled executes an already-compiled fuzz program.
func runFuzzCompiled(t *testing.T, res *Result, secret []uint32) []uint32 {
	t.Helper()
	c, err := cpu.New(res.Program, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	keyAddr := res.Program.Symbols[GlobalLabel("key")]
	for i, v := range secret {
		if err := c.Mem().StoreWord(keyAddr+uint32(4*i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	out, err := c.Mem().ReadWords(res.Program.Symbols[GlobalLabel("out")], 8)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
