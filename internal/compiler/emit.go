package compiler

import (
	"fmt"
	"strings"

	"desmask/internal/asm"
	"desmask/internal/isa"
)

// The emitter lowers the (optionally optimized) IR to an asm.Program through
// the programmatic asm.Builder, producing the assembly listing in lockstep —
// the listing is now a rendering of the Program, not the source of it.
//
// Under -O, globals within reach of the 15-bit immediate are addressed
// relative to $gp (which the CPU, the reference model and the leak checker
// all initialize to the data base): a direct global access shrinks from the
// two-word lui+lw/sw expansion to a single gp-relative word, and a global
// array base from lui+ori to one addiu. Without -O the emitter mirrors the
// original text codegen's instruction selection exactly.

var binRType = [...]isa.Opcode{
	binAdd: isa.OpAddu, binSub: isa.OpSubu, binMul: isa.OpMul,
	binXor: isa.OpXor, binAnd: isa.OpAnd, binOr: isa.OpOr, binNor: isa.OpNor,
	binShl: isa.OpSllv, binShr: isa.OpSrav, binShrU: isa.OpSrlv,
	binSlt: isa.OpSlt, binSltU: isa.OpSltu,
}

var binIType = map[irBin]isa.Opcode{
	binAdd: isa.OpAddiu, binXor: isa.OpXori, binAnd: isa.OpAndi,
	binOr: isa.OpOri, binSlt: isa.OpSlti, binSltU: isa.OpSltiu,
	binShl: isa.OpSll, binShr: isa.OpSra, binShrU: isa.OpSrl,
}

type emitter struct {
	opts   Options
	b      *asm.Builder
	text   strings.Builder
	line   int
	gpOff  map[string]int32 // -O: globals addressable as off($gp)
	policy Policy
}

func sfx(secure bool) string {
	if secure {
		return ".s"
	}
	return ""
}

// writeLine appends one raw line to the listing.
func (e *emitter) writeLine(s string) {
	e.text.WriteString(s)
	e.text.WriteByte('\n')
	e.line++
}

// code appends one instruction line and attributes subsequently built
// machine words to it.
func (e *emitter) code(format string, args ...interface{}) {
	e.writeLine("\t" + fmt.Sprintf(format, args...))
	e.b.SetLine(e.line)
}

func (e *emitter) label(name string) {
	e.writeLine(name + ":")
	e.b.Label(name)
}

// emitModule drives emission and returns the Program plus its listing.
func emitModule(m *irModule, opts Options, allocs map[*irFunc]*allocation) (*asm.Program, string, error) {
	target := opts.targetOrDefault()
	lim := target.Limits()
	e := &emitter{opts: opts, b: asm.NewBuilderFor(target), gpOff: map[string]int32{}, policy: opts.Policy}

	e.writeLine("\t.data")
	for _, d := range m.file.Globals {
		e.writeLine(GlobalLabel(d.Name) + ":")
		off := e.b.DataLabel(GlobalLabel(d.Name))
		if opts.Optimize && off <= uint32(lim.SImmMax) {
			e.gpOff[d.Name] = int32(off)
		}
		n := 1
		if d.IsArray {
			n = d.ArrayLen
		}
		if len(d.Init) > 0 {
			vals := make([]string, len(d.Init))
			words := make([]uint32, len(d.Init))
			for i, v := range d.Init {
				vals[i] = fmt.Sprintf("%d", v)
				words[i] = uint32(v)
			}
			e.writeLine("\t.word " + strings.Join(vals, ", "))
			e.b.Words(words...)
			n -= len(d.Init)
		}
		if n > 0 {
			e.writeLine(fmt.Sprintf("\t.space %d", 4*n))
			e.b.Space(n)
		}
	}

	e.writeLine("")
	e.writeLine("\t.text")
	e.label("main")
	if opts.Policy == PolicyBooleanMask {
		// Masking runtime: $s6 cursors through the fresh-mask pool, $s7
		// holds the rail-scrub random. Both are outside the allocatable
		// pool, so no function ever clobbers them.
		e.code("la %s, %s", isa.S6, GlobalLabel(MaskPoolSym))
		e.b.LoadAddr(isa.S6, GlobalLabel(MaskPoolSym), false)
		e.code("lw %s, %s", isa.S7, GlobalLabel(MaskScrubSym))
		e.b.MemDirect(isa.OpLw, isa.S7, GlobalLabel(MaskScrubSym), 0, false)
	}
	e.code("jal f_main")
	e.b.Jump(isa.OpJal, "f_main")
	if opts.Policy == PolicyBooleanMask {
		// Publish the final cursor so harnesses can assert the pool never
		// overflowed into the zero-filled (unprotected) tail of memory.
		e.code("sw %s, %s", isa.S6, GlobalLabel(MaskCursorSym))
		e.b.MemDirect(isa.OpSw, isa.S6, GlobalLabel(MaskCursorSym), 0, false)
	}
	e.code("halt")
	e.b.Inst(isa.Inst{Op: isa.OpHalt})

	for _, f := range m.funcs {
		e.emitFunc(f, allocs[f])
	}
	prog, err := e.b.Finish()
	if err != nil {
		return nil, "", err
	}
	return prog, e.text.String(), nil
}

func (e *emitter) emitFunc(f *irFunc, al *allocation) {
	spillBase := f.frameSize
	raOff := f.frameSize + 4*al.spillSlots
	frameLen := raOff + 4

	e.writeLine("")
	e.label(f.name)
	secALU := policySecure(e.policy, false, false)
	secMem := policySecure(e.policy, false, true)
	e.code("addiu%s $sp, $sp, %d", sfx(secALU), -frameLen)
	e.b.Inst(isa.Inst{Op: isa.OpAddiu, Rt: isa.SP, Rs: isa.SP, Imm: int32(-frameLen), Secure: secALU})
	e.code("sw%s $ra, %d($sp)", sfx(secMem), raOff)
	e.b.Inst(isa.Inst{Op: isa.OpSw, Rt: isa.RA, Rs: isa.SP, Imm: int32(raOff), Secure: secMem})
	argRegs := []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3}
	for i, p := range f.decl.Params {
		// Parameters are memory-homed like every other variable, so that
		// their later uses compile to (securable) loads. A tainted argument
		// must be homed with a secure store or the incoming value leaks.
		sec := f.paramSecure[i]
		e.code("sw%s %s, %d($sp)", sfx(sec), argRegs[i], f.frame[p.Name])
		e.b.Inst(isa.Inst{Op: isa.OpSw, Rt: argRegs[i], Rs: isa.SP, Imm: int32(f.frame[p.Name]), Secure: sec})
	}

	for bi, blk := range f.blocks {
		if bi > 0 {
			e.label(blk.label)
		}
		for i := range blk.instrs {
			e.emitInstr(f, al, &blk.instrs[i], spillBase)
		}
		switch blk.term.Kind {
		case termJmp:
			e.code("j %s", blk.term.Target.label)
			e.b.Jump(isa.OpJ, blk.term.Target.label)
		case termBrz:
			r := al.reg(blk.term.Cond)
			e.code("beq %s, $zero, %s", r, blk.term.Target.label)
			e.b.Branch(isa.OpBeq, r, isa.Zero, blk.term.Target.label)
		case termRet:
			if blk.term.A != noValue {
				sec := policySecure(e.policy, f.taint[blk.term.A], false)
				r := al.reg(blk.term.A)
				e.code("move%s $v0, %s", sfx(sec), r)
				e.b.Inst(isa.Inst{Op: isa.OpAddu, Rd: isa.V0, Rs: r, Rt: isa.Zero, Secure: sec})
			}
			if bi != len(f.blocks)-1 {
				e.code("j %s_ret", f.name)
				e.b.Jump(isa.OpJ, f.name+"_ret")
			}
		}
	}

	e.label(f.name + "_ret")
	e.code("lw%s $ra, %d($sp)", sfx(secMem), raOff)
	e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: isa.RA, Rs: isa.SP, Imm: int32(raOff), Secure: secMem})
	e.code("addiu%s $sp, $sp, %d", sfx(secALU), frameLen)
	e.b.Inst(isa.Inst{Op: isa.OpAddiu, Rt: isa.SP, Rs: isa.SP, Imm: int32(frameLen), Secure: secALU})
	e.code("jr $ra")
	e.b.Inst(isa.Inst{Op: isa.OpJr, Rs: isa.RA})
}

func (e *emitter) emitInstr(f *irFunc, al *allocation, in *irInstr, spillBase int) {
	switch in.Op {
	case opConst:
		r := al.reg(in.Dst)
		e.code("li%s %s, %d", sfx(in.Secure), r, in.Imm)
		e.b.LoadImm(r, in.Imm, in.Secure)

	case opCopy:
		rd, rs := al.reg(in.Dst), al.reg(in.A)
		if rd == rs && !in.Secure {
			return // a plain self-move is a no-op; a masked one still transfers
		}
		e.code("move%s %s, %s", sfx(in.Secure), rd, rs)
		e.b.Inst(isa.Inst{Op: isa.OpAddu, Rd: rd, Rs: rs, Rt: isa.Zero, Secure: in.Secure})

	case opAddr:
		r := al.reg(in.Dst)
		if off, ok := f.frame[in.Sym]; ok {
			e.code("addiu%s %s, $sp, %d", sfx(in.Secure), r, off)
			e.b.Inst(isa.Inst{Op: isa.OpAddiu, Rt: r, Rs: isa.SP, Imm: int32(off), Secure: in.Secure})
		} else if off, ok := e.gpOff[in.Sym]; ok {
			e.code("addiu%s %s, $gp, %d", sfx(in.Secure), r, off)
			e.b.Inst(isa.Inst{Op: isa.OpAddiu, Rt: r, Rs: isa.GP, Imm: off, Secure: in.Secure})
		} else {
			e.code("la%s %s, %s", sfx(in.Secure), r, GlobalLabel(in.Sym))
			e.b.LoadAddr(r, GlobalLabel(in.Sym), in.Secure)
		}

	case opLoad:
		r := al.reg(in.Dst)
		if off, ok := f.frame[in.Sym]; ok {
			e.code("lw%s %s, %d($sp)", sfx(in.Secure), r, off)
			e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: r, Rs: isa.SP, Imm: int32(off), Secure: in.Secure})
		} else if off, ok := e.gpOff[in.Sym]; ok {
			e.code("lw%s %s, %d($gp)", sfx(in.Secure), r, off)
			e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: r, Rs: isa.GP, Imm: off, Secure: in.Secure})
		} else {
			e.code("lw%s %s, %s", sfx(in.Secure), r, GlobalLabel(in.Sym))
			e.b.MemDirect(isa.OpLw, r, GlobalLabel(in.Sym), 0, in.Secure)
		}

	case opStore:
		r := al.reg(in.A)
		if off, ok := f.frame[in.Sym]; ok {
			e.code("sw%s %s, %d($sp)", sfx(in.Secure), r, off)
			e.b.Inst(isa.Inst{Op: isa.OpSw, Rt: r, Rs: isa.SP, Imm: int32(off), Secure: in.Secure})
		} else if off, ok := e.gpOff[in.Sym]; ok {
			e.code("sw%s %s, %d($gp)", sfx(in.Secure), r, off)
			e.b.Inst(isa.Inst{Op: isa.OpSw, Rt: r, Rs: isa.GP, Imm: off, Secure: in.Secure})
		} else {
			e.code("sw%s %s, %s", sfx(in.Secure), r, GlobalLabel(in.Sym))
			e.b.MemDirect(isa.OpSw, r, GlobalLabel(in.Sym), 0, in.Secure)
		}

	case opLoadP:
		rd, ra := al.reg(in.Dst), al.reg(in.A)
		e.code("lw%s %s, 0(%s)", sfx(in.Secure), rd, ra)
		e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: rd, Rs: ra, Secure: in.Secure})

	case opStoreP:
		ra, rb := al.reg(in.A), al.reg(in.B)
		e.code("sw%s %s, 0(%s)", sfx(in.Secure), rb, ra)
		e.b.Inst(isa.Inst{Op: isa.OpSw, Rt: rb, Rs: ra, Secure: in.Secure})

	case opBin:
		op := binRType[in.Bin]
		rd, ra, rb := al.reg(in.Dst), al.reg(in.A), al.reg(in.B)
		e.code("%s%s %s, %s, %s", op, sfx(in.Secure), rd, ra, rb)
		if in.Bin == binNor {
			// Targets without a native nor legalize through the builder
			// (or + xori -1, every word carrying the secure bit); on PISA
			// this is the single nor it always was.
			e.b.Nor(rd, ra, rb, in.Secure)
			return
		}
		e.b.Inst(isa.Inst{Op: op, Rd: rd, Rs: ra, Rt: rb, Secure: in.Secure})

	case opBinImm:
		op := binIType[in.Bin]
		rd, ra := al.reg(in.Dst), al.reg(in.A)
		e.code("%s%s %s, %s, %d", op, sfx(in.Secure), rd, ra, in.Imm)
		switch in.Bin {
		case binShl, binShr, binShrU:
			e.b.Inst(isa.Inst{Op: op, Rd: rd, Rt: ra, Imm: in.Imm, Secure: in.Secure})
		default:
			e.b.Inst(isa.Inst{Op: op, Rt: rd, Rs: ra, Imm: in.Imm, Secure: in.Secure})
		}

	case opCall:
		saves := al.saves[in]
		for _, s := range saves {
			off := spillBase + 4*s.slot
			e.code("sw%s %s, %d($sp)", sfx(s.secure), s.reg, off)
			e.b.Inst(isa.Inst{Op: isa.OpSw, Rt: s.reg, Rs: isa.SP, Imm: int32(off), Secure: s.secure})
		}
		abi := []isa.Reg{isa.A0, isa.A1, isa.A2, isa.A3}
		for i, a := range in.Args {
			sec := policySecure(e.policy, f.taint[a], false)
			r := al.reg(a)
			e.code("move%s %s, %s", sfx(sec), abi[i], r)
			e.b.Inst(isa.Inst{Op: isa.OpAddu, Rd: abi[i], Rs: r, Rt: isa.Zero, Secure: sec})
		}
		e.code("jal %s", in.Sym)
		e.b.Jump(isa.OpJal, in.Sym)
		for i := len(saves) - 1; i >= 0; i-- {
			s := saves[i]
			off := spillBase + 4*s.slot
			e.code("lw%s %s, %d($sp)", sfx(s.secure), s.reg, off)
			e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: s.reg, Rs: isa.SP, Imm: int32(off), Secure: s.secure})
		}
		if in.Dst != noValue {
			r := al.reg(in.Dst)
			e.code("move%s %s, $v0", sfx(in.Secure), r)
			e.b.Inst(isa.Inst{Op: isa.OpAddu, Rd: r, Rs: isa.V0, Rt: isa.Zero, Secure: in.Secure})
		}

	case opMaskLoad:
		r := al.reg(in.Dst)
		e.code("lw %s, 0(%s)", r, isa.S6)
		e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: r, Rs: isa.S6})
		e.code("addiu %s, %s, 4", isa.S6, isa.S6)
		e.b.Inst(isa.Inst{Op: isa.OpAddiu, Rt: isa.S6, Rs: isa.S6, Imm: 4})

	case opScrub:
		// Drives the ALU operand/result rails (and their transition history)
		// to the public scrub random between the two halves of a share pair.
		e.code("or %s, %s, %s", isa.K0, isa.S7, isa.S7)
		e.b.Inst(isa.Inst{Op: isa.OpOr, Rd: isa.K0, Rs: isa.S7, Rt: isa.S7})

	case opScrubX:
		// Same, for the XOR functional unit's separate history.
		e.code("xor %s, %s, %s", isa.K0, isa.S7, isa.Zero)
		e.b.Inst(isa.Inst{Op: isa.OpXor, Rd: isa.K0, Rs: isa.S7, Rt: isa.Zero})

	case opScrubLoad:
		// Same, for the memory-data rail: a public load of the scrub word.
		if off, ok := e.gpOff[MaskScrubSym]; ok {
			e.code("lw %s, %d($gp)", isa.K0, off)
			e.b.Inst(isa.Inst{Op: isa.OpLw, Rt: isa.K0, Rs: isa.GP, Imm: off})
		} else {
			e.code("lw %s, %s", isa.K0, GlobalLabel(MaskScrubSym))
			e.b.MemDirect(isa.OpLw, isa.K0, GlobalLabel(MaskScrubSym), 0, false)
		}
	}
}
