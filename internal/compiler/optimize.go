package compiler

import (
	"fmt"
	"strings"

	"desmask/internal/minic"
)

// The optimizer implements the "optimizing" in the paper's "optimizing
// compiler" while preserving the masking contract:
//
//   - constant folding on the AST (taint-neutral: literals are never
//     tainted, so folding can only remove insecure instructions), and
//   - a store-to-load forwarding peephole on the emitted assembly: a load
//     that immediately follows a store to the same stack slot becomes a
//     register move. The rewrite is one-for-one (layout, labels and branch
//     displacements are untouched) and carries the load's secure marker
//     over to the move, so a masked slot stays masked.

// foldConstants rewrites constant subexpressions in place and returns how
// many folds were applied.
func foldConstants(f *minic.File) int {
	n := 0
	var foldExpr func(e minic.Expr) minic.Expr
	foldExpr = func(e minic.Expr) minic.Expr {
		switch x := e.(type) {
		case *minic.BinaryExpr:
			x.X = foldExpr(x.X)
			x.Y = foldExpr(x.Y)
			l, lok := x.X.(*minic.NumLit)
			r, rok := x.Y.(*minic.NumLit)
			if lok && rok {
				if v, ok := evalBinOp(x.Op, int32(uint32(l.Val)), int32(uint32(r.Val))); ok {
					n++
					return &minic.NumLit{Pos: x.Pos, Val: int64(v)}
				}
			}
			return x
		case *minic.UnaryExpr:
			x.X = foldExpr(x.X)
			if l, ok := x.X.(*minic.NumLit); ok {
				v := int32(uint32(l.Val))
				n++
				switch x.Op {
				case minic.OpNeg:
					return &minic.NumLit{Pos: x.Pos, Val: int64(-v)}
				case minic.OpInv:
					return &minic.NumLit{Pos: x.Pos, Val: int64(^v)}
				case minic.OpNot:
					if v == 0 {
						return &minic.NumLit{Pos: x.Pos, Val: 1}
					}
					return &minic.NumLit{Pos: x.Pos, Val: 0}
				}
				n--
			}
			return x
		case *minic.IndexExpr:
			x.Index = foldExpr(x.Index)
			return x
		case *minic.CallExpr:
			for i := range x.Args {
				x.Args[i] = foldExpr(x.Args[i])
			}
			return x
		}
		return e
	}
	var foldStmt func(s minic.Stmt)
	foldBlock := func(b *minic.Block) {
		for _, s := range b.Stmts {
			foldStmt(s)
		}
	}
	foldStmt = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.Block:
			foldBlock(st)
		case *minic.AssignStmt:
			st.LHS = foldExpr(st.LHS)
			st.RHS = foldExpr(st.RHS)
		case *minic.IfStmt:
			st.Cond = foldExpr(st.Cond)
			foldBlock(st.Then)
			if st.Else != nil {
				foldBlock(st.Else)
			}
		case *minic.WhileStmt:
			st.Cond = foldExpr(st.Cond)
			foldBlock(st.Body)
		case *minic.ForStmt:
			if st.Init != nil {
				foldStmt(st.Init)
			}
			if st.Cond != nil {
				st.Cond = foldExpr(st.Cond)
			}
			if st.Post != nil {
				foldStmt(st.Post)
			}
			foldBlock(st.Body)
		case *minic.ReturnStmt:
			if st.Value != nil {
				st.Value = foldExpr(st.Value)
			}
		case *minic.ExprStmt:
			st.X = foldExpr(st.X)
		}
	}
	for _, fn := range f.Funcs {
		foldBlock(fn.Body)
	}
	return n
}

// evalBinOp computes a constant binary operation with the target's 32-bit
// semantics. Comparison results are C-style 0/1.
func evalBinOp(op minic.BinOp, a, b int32) (int32, bool) {
	boolTo := func(c bool) (int32, bool) {
		if c {
			return 1, true
		}
		return 0, true
	}
	switch op {
	case minic.OpAdd:
		return a + b, true
	case minic.OpSub:
		return a - b, true
	case minic.OpMul:
		return a * b, true
	case minic.OpXor:
		return a ^ b, true
	case minic.OpAnd:
		return a & b, true
	case minic.OpOr:
		return a | b, true
	case minic.OpShl:
		return int32(uint32(a) << (uint32(b) & 31)), true
	case minic.OpShr:
		return a >> (uint32(b) & 31), true
	case minic.OpShrU:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case minic.OpLt:
		return boolTo(a < b)
	case minic.OpLe:
		return boolTo(a <= b)
	case minic.OpGt:
		return boolTo(a > b)
	case minic.OpGe:
		return boolTo(a >= b)
	case minic.OpEq:
		return boolTo(a == b)
	case minic.OpNe:
		return boolTo(a != b)
	}
	return 0, false
}

// peephole applies store-to-load forwarding to the generated assembly and
// returns the rewritten text plus the number of rewrites. Only exact
// adjacent `sw X, off($sp)` / `lw Y, off($sp)` pairs with no intervening
// label are rewritten; the load becomes `move Y, X` with the load's secure
// marker.
func peephole(asmText string) (string, int) {
	lines := strings.Split(asmText, "\n")
	rewrites := 0
	for i := 0; i+1 < len(lines); i++ {
		sOp, sSec, sReg, sOff, ok := parseSPMem(lines[i], "sw")
		if !ok || sOp != "sw" {
			continue
		}
		lOp, lSec, lReg, lOff, ok := parseSPMem(lines[i+1], "lw")
		if !ok || lOp != "lw" || lOff != sOff {
			continue
		}
		_ = sSec
		sec := ""
		if lSec {
			sec = ".s"
		}
		if lReg == sReg {
			// Reloading into the same register: the move would be a no-op;
			// keep it for secure slots (the masked transfer must still
			// happen) but it can be elided for insecure ones.
			if !lSec {
				lines[i+1] = "\tnop" + peepholeTag
				rewrites++
				continue
			}
		}
		lines[i+1] = fmt.Sprintf("\tmove%s %s, %s%s", sec, lReg, sReg, peepholeTag)
		rewrites++
	}
	return strings.Join(lines, "\n"), rewrites
}

// peepholeTag marks rewritten lines in listings.
const peepholeTag = " # peephole: store-to-load forward"

// parseSPMem matches "\t(sw|lw)[.s] $reg, off($sp)" lines.
func parseSPMem(line, want string) (op string, secure bool, reg string, off string, ok bool) {
	s := strings.TrimPrefix(line, "\t")
	if s == line {
		return "", false, "", "", false
	}
	if i := strings.Index(s, " #"); i >= 0 {
		s = s[:i]
	}
	fields := strings.Fields(strings.ReplaceAll(s, ",", " "))
	if len(fields) != 3 {
		return "", false, "", "", false
	}
	m := fields[0]
	if strings.HasSuffix(m, ".s") {
		secure = true
		m = strings.TrimSuffix(m, ".s")
	}
	if m != want {
		return "", false, "", "", false
	}
	memOp := fields[2]
	if !strings.HasSuffix(memOp, "($sp)") {
		return "", false, "", "", false
	}
	return m, secure, fields[1], strings.TrimSuffix(memOp, "($sp)"), true
}
