package compiler

import (
	"sort"

	"desmask/internal/isa"
	"desmask/internal/minic"
)

// The register allocator maps IR values to the 16-register temporary pool by
// linear scan over liveness intervals, replacing the old stack discipline
// (which pinned every partial result to a pool slot for the whole enclosing
// expression). Variables remain memory-homed, so intervals are short — a
// value lives from its defining instruction to its last use — and the same
// pool now bounds the number of *simultaneously live* values rather than the
// expression depth.
//
// Values live across a call are saved to dedicated frame spill slots before
// the jal and restored after it; the save/restore transfers are masked
// (secure) exactly when the policy protects a memory transfer of that
// value's taint, so a secret partial result never crosses the stack in the
// clear under Selective/SeedsOnly.

// regPool is the allocatable register set (order = preference order).
var regPool = []isa.Reg{
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7,
	isa.T8, isa.T9, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5,
}

// saveSlot is one caller-save around a specific call.
type saveSlot struct {
	reg    isa.Reg
	slot   int // index into the frame's spill area
	secure bool
}

// allocation is the result of register allocation for one function.
type allocation struct {
	regOf      map[valueID]isa.Reg
	saves      map[*irInstr][]saveSlot // per opCall caller-saves
	spillSlots int                     // words of spill area in the frame
}

func (al *allocation) reg(v valueID) isa.Reg {
	if v == zeroValue {
		return isa.Zero
	}
	return al.regOf[v]
}

// regalloc allocates every function's values.
func regalloc(m *irModule, p Policy) (map[*irFunc]*allocation, error) {
	out := map[*irFunc]*allocation{}
	for _, f := range m.funcs {
		al, err := regallocFunc(f, p)
		if err != nil {
			return nil, err
		}
		out[f] = al
	}
	return out, nil
}

func regallocFunc(f *irFunc, p Policy) (*allocation, error) {
	// Linearize: one global index per instruction, one per terminator.
	idx := 0
	instrIdx := make([][]int, len(f.blocks))
	termIdx := make([]int, len(f.blocks))
	for bi, b := range f.blocks {
		instrIdx[bi] = make([]int, len(b.instrs))
		for i := range b.instrs {
			instrIdx[bi][i] = idx
			idx++
		}
		termIdx[bi] = idx
		idx++
	}

	// Per-block use/def sets (use = read before written in the block).
	nb := len(f.blocks)
	use := make([]map[valueID]bool, nb)
	def := make([]map[valueID]bool, nb)
	for bi, b := range f.blocks {
		u, d := map[valueID]bool{}, map[valueID]bool{}
		addUse := func(v valueID) {
			if v > zeroValue && !d[v] {
				u[v] = true
			}
		}
		for i := range b.instrs {
			in := &b.instrs[i]
			in.eachUse(addUse)
			if dv := in.def(); dv > zeroValue {
				d[dv] = true
			}
		}
		if b.term.Cond != noValue {
			addUse(b.term.Cond)
		}
		if b.term.Kind == termRet && b.term.A != noValue {
			addUse(b.term.A)
		}
		use[bi], def[bi] = u, d
	}

	// Backward liveness fixpoint.
	blockIndex := map[*irBlock]int{}
	for bi, b := range f.blocks {
		blockIndex[b] = bi
	}
	liveIn := make([]map[valueID]bool, nb)
	liveOut := make([]map[valueID]bool, nb)
	for bi := range f.blocks {
		liveIn[bi] = map[valueID]bool{}
		liveOut[bi] = map[valueID]bool{}
	}
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			for _, s := range f.succs(bi) {
				for v := range liveIn[blockIndex[s]] {
					if !liveOut[bi][v] {
						liveOut[bi][v] = true
						changed = true
					}
				}
			}
			for v := range use[bi] {
				if !liveIn[bi][v] {
					liveIn[bi][v] = true
					changed = true
				}
			}
			for v := range liveOut[bi] {
				if !def[bi][v] && !liveIn[bi][v] {
					liveIn[bi][v] = true
					changed = true
				}
			}
		}
	}

	// Conservative intervals on the linear order: a value spans from its
	// definition (or the start of any block it is live into) to its last use
	// (or the end of any block it is live out of). Loops are covered because
	// liveness around a back edge extends the value across the loop body.
	nvals := len(f.taint)
	start := make([]int, nvals)
	end := make([]int, nvals)
	for v := range start {
		start[v], end[v] = -1, -1
	}
	extend := func(v valueID, at int) {
		if v <= zeroValue {
			return
		}
		if start[v] == -1 || at < start[v] {
			start[v] = at
		}
		if at > end[v] {
			end[v] = at
		}
	}
	for bi, b := range f.blocks {
		first := termIdx[bi]
		if len(b.instrs) > 0 {
			first = instrIdx[bi][0]
		}
		for v := range liveIn[bi] {
			extend(v, first)
		}
		for v := range liveOut[bi] {
			extend(v, termIdx[bi])
		}
		for i := range b.instrs {
			at := instrIdx[bi][i]
			in := &b.instrs[i]
			in.eachUse(func(v valueID) { extend(v, at) })
			extend(in.def(), at)
		}
		if b.term.Cond != noValue {
			extend(b.term.Cond, termIdx[bi])
		}
		if b.term.Kind == termRet {
			extend(b.term.A, termIdx[bi])
		}
	}

	// Linear scan. A register freed at index i is reusable by a definition
	// at i (operand reads precede the result write).
	type interval struct {
		v    valueID
		s, e int
	}
	var ivs []interval
	for v := 1; v < nvals; v++ {
		if start[v] >= 0 {
			ivs = append(ivs, interval{valueID(v), start[v], end[v]})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].v < ivs[j].v
	})
	al := &allocation{regOf: map[valueID]isa.Reg{}, saves: map[*irInstr][]saveSlot{}}
	inUse := make([]valueID, len(regPool)) // noValue when free
	for i := range inUse {
		inUse[i] = noValue
	}
	for _, iv := range ivs {
		slot := -1
		for ri, holder := range inUse {
			if holder != noValue && end[holder] <= iv.s {
				inUse[ri] = noValue
				holder = noValue
			}
			if holder == noValue && slot == -1 {
				slot = ri
			}
		}
		if slot == -1 {
			return nil, errf(minic.Pos{}, "expression too deep (more than %d live temporaries)", len(regPool))
		}
		inUse[slot] = iv.v
		al.regOf[iv.v] = regPool[slot]
	}

	// Caller-saves: values whose interval strictly spans a call survive in
	// registers the callee is free to clobber.
	for bi, b := range f.blocks {
		for i := range b.instrs {
			in := &b.instrs[i]
			if in.Op != opCall {
				continue
			}
			ci := instrIdx[bi][i]
			var sl []saveSlot
			for v := 1; v < nvals; v++ {
				if start[v] >= 0 && start[v] < ci && end[v] > ci {
					sl = append(sl, saveSlot{
						reg:    al.regOf[valueID(v)],
						slot:   len(sl),
						secure: policySecure(p, f.taint[v], true),
					})
				}
			}
			if len(sl) > 0 {
				al.saves[in] = sl
				if len(sl) > al.spillSlots {
					al.spillSlots = len(sl)
				}
			}
		}
	}
	return al, nil
}
