package compiler

import (
	"desmask/internal/isa"
	"desmask/internal/minic"
)

// The optimization pipeline runs on the IR, under -O only. Every pass obeys
// the taint-soundness invariant:
//
//   a pass may delete instructions or replace them with cheaper ones, but a
//   retained or newly created instruction must be at least as secure as what
//   it replaces, and a value's taint bit may only be raised, never cleared.
//
// Deleting a secure instruction is sound: the dual-rail trace stays flat
// because the deletion is decided from structure (constants, def-use shape),
// never from secret data, so the same instruction disappears for every key.
// What would be unsound — and what the rules below prevent — is re-deriving
// a secure bit from weaker information, e.g. forwarding a stored value into
// an insecure move where the original load was a masked transfer.

// passStats counts the rewrites each pass applied, for Report.
type passStats struct {
	Folded     int // constant folds (including imm-form strength reductions)
	Copies     int // copies propagated into their uses
	Forwarded  int // loads replaced by copies of the stored value
	DeadStores int // stores removed (overwritten, redundant, or write-only)
	DeadCode   int // pure instructions whose result was never used
	Branches   int // terminators simplified and unreachable blocks removed
}

// runPasses optimizes every function in place and returns the tallies.
func runPasses(m *irModule, opts Options) passStats {
	var st passStats
	lim := opts.targetOrDefault().Limits()
	for _, f := range m.funcs {
		st.Folded += constFold(f, lim)
		st.Branches += branchSimp(f)
		fw, ds := rle(f, opts.Policy)
		st.Forwarded += fw
		st.DeadStores += ds
		st.Copies += copyProp(f)
		st.Folded += constFold(f, lim)
		st.DeadStores += deadStoreLocals(f)
		st.DeadCode += dce(f)
		st.Branches += branchSimp(f)
		st.DeadCode += dce(f)
	}
	return st
}

// mapUses rewrites every value operand through g.
func (in *irInstr) mapUses(g func(valueID) valueID) {
	switch in.Op {
	case opCopy, opStore, opBinImm, opLoadP:
		in.A = g(in.A)
	case opStoreP, opBin:
		in.A = g(in.A)
		in.B = g(in.B)
	case opCall:
		for i := range in.Args {
			in.Args[i] = g(in.Args[i])
		}
	}
}

// constants ------------------------------------------------------------------

// constVals collects the known-constant values (zeroValue plus every opConst
// definition; values are single-assignment so this is flow-insensitive).
func constVals(f *irFunc) map[valueID]int32 {
	c := map[valueID]int32{zeroValue: 0}
	for _, b := range f.blocks {
		for i := range b.instrs {
			if in := &b.instrs[i]; in.Op == opConst {
				c[in.Dst] = in.Imm
			}
		}
	}
	return c
}

// Immediate reach is a target property (isa.Limits): signed immediates for
// addiu/slti and unsigned for the logical ops, within the range where every
// backend's extension rule agrees with zero-extension.
func fitsImm(v int32, lim isa.Limits) bool  { return v >= lim.SImmMin && v <= lim.SImmMax }
func fitsUImm(v int32, lim isa.Limits) bool { return v >= 0 && v <= lim.UImmMax }

// constFold folds constant operands: a binary op with two known operands
// becomes a const, one known operand becomes an immediate form when the
// target ISA has one with matching semantics. The rewritten instruction
// keeps the original's Secure bit (taint-sound: never weaker).
func constFold(f *irFunc, lim isa.Limits) int {
	n := 0
	for changed := true; changed; {
		changed = false
		consts := constVals(f)
		for _, b := range f.blocks {
			for i := range b.instrs {
				in := &b.instrs[i]
				switch in.Op {
				case opCopy:
					if v, ok := consts[in.A]; ok {
						*in = irInstr{Op: opConst, Dst: in.Dst, Imm: v, Secure: in.Secure}
						n++
						changed = true
					}
				case opBinImm:
					if a, ok := consts[in.A]; ok {
						*in = irInstr{Op: opConst, Dst: in.Dst, Imm: evalIRBin(in.Bin, a, in.Imm), Secure: in.Secure}
						n++
						changed = true
					}
				case opBin:
					a, aok := consts[in.A]
					c, cok := consts[in.B]
					if aok && cok {
						*in = irInstr{Op: opConst, Dst: in.Dst, Imm: evalIRBin(in.Bin, a, c), Secure: in.Secure}
						n++
						changed = true
						continue
					}
					// One constant operand: use the immediate form where one
					// exists. Commutative ops accept the constant on either
					// side; slt/sltiu and the shifts only on the right.
					reg, imm, iok := in.A, int32(0), false
					if cok {
						imm, iok = c, true
					} else if aok {
						switch in.Bin {
						case binAdd, binXor, binAnd, binOr:
							reg, imm, iok = in.B, a, true
						}
					}
					if !iok {
						continue
					}
					bin := in.Bin
					switch bin {
					case binSub:
						// a - c  ==>  a + (-c), the addiu form.
						if !cok || !fitsImm(-imm, lim) {
							continue
						}
						bin, imm = binAdd, -imm
					case binAdd, binSlt, binSltU:
						if bin != binAdd && !cok {
							continue
						}
						if !fitsImm(imm, lim) {
							continue
						}
					case binXor, binAnd, binOr:
						if !fitsUImm(imm, lim) {
							continue
						}
					case binShl, binShr, binShrU:
						if !cok || imm < 0 || imm > 31 {
							continue
						}
					default: // mul, nor: no immediate form
						continue
					}
					*in = irInstr{Op: opBinImm, Bin: bin, Dst: in.Dst, A: reg, Imm: imm, Secure: in.Secure}
					n++
					changed = true
				}
			}
		}
	}
	return n
}

// evalIRBin computes a machine binary op with 32-bit two's-complement
// semantics (shift amounts masked to 5 bits, as the CPU does).
func evalIRBin(bin irBin, a, b int32) int32 {
	switch bin {
	case binAdd:
		return a + b
	case binSub:
		return a - b
	case binMul:
		return a * b
	case binXor:
		return a ^ b
	case binAnd:
		return a & b
	case binOr:
		return a | b
	case binNor:
		return ^(a | b)
	case binShl:
		return int32(uint32(a) << (uint32(b) & 31))
	case binShr:
		return a >> (uint32(b) & 31)
	case binShrU:
		return int32(uint32(a) >> (uint32(b) & 31))
	case binSlt:
		if a < b {
			return 1
		}
		return 0
	case binSltU:
		if uint32(a) < uint32(b) {
			return 1
		}
		return 0
	}
	return 0
}

// evalBinOp computes a constant MiniC binary operation with the target's
// 32-bit semantics. Comparison results are C-style 0/1.
func evalBinOp(op minic.BinOp, a, b int32) (int32, bool) {
	boolTo := func(c bool) (int32, bool) {
		if c {
			return 1, true
		}
		return 0, true
	}
	switch op {
	case minic.OpAdd:
		return a + b, true
	case minic.OpSub:
		return a - b, true
	case minic.OpMul:
		return a * b, true
	case minic.OpXor:
		return a ^ b, true
	case minic.OpAnd:
		return a & b, true
	case minic.OpOr:
		return a | b, true
	case minic.OpShl:
		return int32(uint32(a) << (uint32(b) & 31)), true
	case minic.OpShr:
		return a >> (uint32(b) & 31), true
	case minic.OpShrU:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case minic.OpLt:
		return boolTo(a < b)
	case minic.OpLe:
		return boolTo(a <= b)
	case minic.OpGt:
		return boolTo(a > b)
	case minic.OpGe:
		return boolTo(a >= b)
	case minic.OpEq:
		return boolTo(a == b)
	case minic.OpNe:
		return boolTo(a != b)
	}
	return 0, false
}

// redundant loads and stores --------------------------------------------------

// rle performs store-to-load forwarding and local dead/redundant store
// elimination, one basic block at a time. Availability is keyed by scalar
// variable name; aliasing is handled segment-wise: an indexed store
// invalidates availability for every scalar in the same segment (frame or
// globals), an indexed load counts as a read of the whole segment, and a
// call clobbers and reads all globals (it cannot touch the caller's frame —
// MiniC has no pointers and frames are disjoint).
//
// Taint-soundness of forwarding: the copy that replaces a load inherits the
// load's Secure bit, strengthened by the policy's view of the source value's
// taint, and the destination's taint absorbs the source's. A masked reload
// of a secret slot therefore stays a masked transfer.
func rle(f *irFunc, p Policy) (forwarded, deadStores int) {
	for _, b := range f.blocks {
		avail := map[string]valueID{} // slot -> value it currently holds
		pending := map[string]int{}   // slot -> index of last unread store
		dead := map[int]bool{}
		clearSegment := func(local bool, m map[string]valueID) {
			for sym := range m {
				if f.isLocal(sym) == local {
					delete(m, sym)
				}
			}
		}
		clearPendingSegment := func(local bool) {
			for sym := range pending {
				if f.isLocal(sym) == local {
					delete(pending, sym)
				}
			}
		}
		for i := range b.instrs {
			in := &b.instrs[i]
			switch in.Op {
			case opLoad:
				if v, ok := avail[in.Sym]; ok {
					sec := in.Secure || policySecure(p, f.taint[v], false)
					f.taint[in.Dst] = f.taint[in.Dst] || f.taint[v]
					*in = irInstr{Op: opCopy, Dst: in.Dst, A: v, Secure: sec}
					forwarded++
				} else {
					avail[in.Sym] = in.Dst
					delete(pending, in.Sym) // a real read: the store is live
				}
			case opStore:
				if v, ok := avail[in.Sym]; ok && v == in.A {
					// The slot already holds this exact value.
					dead[i] = true
					deadStores++
					continue
				}
				if j, ok := pending[in.Sym]; ok {
					// Previous store overwritten before any read.
					dead[j] = true
					deadStores++
				}
				avail[in.Sym] = in.A
				pending[in.Sym] = i
			case opStoreP:
				clearSegment(f.isLocal(in.Sym), avail)
			case opLoadP:
				clearPendingSegment(f.isLocal(in.Sym))
			case opCall:
				clearSegment(false, avail)
				clearPendingSegment(false)
			}
		}
		if len(dead) > 0 {
			out := b.instrs[:0]
			for i := range b.instrs {
				if !dead[i] {
					out = append(out, b.instrs[i])
				}
			}
			b.instrs = out
		}
	}
	return forwarded, deadStores
}

// deadStoreLocals removes every store to a local scalar that the function
// never loads (write-only temporaries). Sound because a local slot is
// unreachable from outside its own activation.
func deadStoreLocals(f *irFunc) int {
	arrays := map[string]bool{}
	var scan func(b *minic.Block)
	scan = func(b *minic.Block) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *minic.DeclStmt:
				if st.Decl.IsArray {
					arrays[st.Decl.Name] = true
				}
			case *minic.Block:
				scan(st)
			case *minic.IfStmt:
				scan(st.Then)
				if st.Else != nil {
					scan(st.Else)
				}
			case *minic.WhileStmt:
				scan(st.Body)
			case *minic.ForStmt:
				scan(st.Body)
			}
		}
	}
	scan(f.decl.Body)

	read := map[string]bool{}
	for _, b := range f.blocks {
		for i := range b.instrs {
			in := &b.instrs[i]
			switch in.Op {
			case opLoad, opAddr, opLoadP, opStoreP:
				read[in.Sym] = true
			}
		}
	}
	n := 0
	for _, b := range f.blocks {
		out := b.instrs[:0]
		for i := range b.instrs {
			in := b.instrs[i]
			if in.Op == opStore && f.isLocal(in.Sym) && !arrays[in.Sym] && !read[in.Sym] {
				n++
				continue
			}
			out = append(out, in)
		}
		b.instrs = out
	}
	return n
}

// copy propagation ------------------------------------------------------------

// copyProp replaces uses of copied values with their sources. A copy whose
// destination is tainted but whose source is not is left alone: propagating
// it would let later decisions (caller-save spill security) see the weaker
// taint, and would erase the masked transfer the copy represents.
func copyProp(f *irFunc) int {
	src := map[valueID]valueID{}
	for _, b := range f.blocks {
		for i := range b.instrs {
			in := &b.instrs[i]
			if in.Op == opCopy && in.A != noValue {
				if f.taint[in.Dst] && !f.taint[in.A] {
					continue
				}
				src[in.Dst] = in.A
			}
		}
	}
	if len(src) == 0 {
		return 0
	}
	resolve := func(v valueID) valueID {
		for i := 0; i < len(src); i++ {
			s, ok := src[v]
			if !ok {
				return v
			}
			v = s
		}
		return v
	}
	for _, b := range f.blocks {
		for i := range b.instrs {
			b.instrs[i].mapUses(resolve)
		}
		if b.term.Cond != noValue {
			b.term.Cond = resolve(b.term.Cond)
		}
		if b.term.Kind == termRet && b.term.A != noValue {
			b.term.A = resolve(b.term.A)
		}
	}
	return len(src)
}

// dead code -------------------------------------------------------------------

// dce removes pure instructions whose result is never used, by backward
// marking from side effects and terminators.
func dce(f *irFunc) int {
	defs := map[valueID]*irInstr{}
	for _, b := range f.blocks {
		for i := range b.instrs {
			if d := b.instrs[i].def(); d != noValue {
				defs[d] = &b.instrs[i]
			}
		}
	}
	used := map[valueID]bool{}
	var mark func(v valueID)
	mark = func(v valueID) {
		if v == noValue || v == zeroValue || used[v] {
			return
		}
		used[v] = true
		if d, ok := defs[v]; ok {
			d.eachUse(mark)
		}
	}
	for _, b := range f.blocks {
		for i := range b.instrs {
			if !b.instrs[i].pure() {
				b.instrs[i].eachUse(mark)
			}
		}
		mark(b.term.Cond)
		if b.term.Kind == termRet {
			mark(b.term.A)
		}
	}
	n := 0
	for _, b := range f.blocks {
		out := b.instrs[:0]
		for i := range b.instrs {
			in := b.instrs[i]
			if in.pure() && !used[in.Dst] {
				n++
				continue
			}
			out = append(out, in)
		}
		b.instrs = out
	}
	return n
}

// branch simplification -------------------------------------------------------

// branchSimp folds constant conditions, threads jumps through empty blocks,
// turns jumps-to-next into fallthroughs, and drops unreachable blocks.
func branchSimp(f *irFunc) int {
	n := 0
	consts := constVals(f)
	for _, b := range f.blocks {
		if b.term.Kind != termBrz {
			continue
		}
		if c, ok := consts[b.term.Cond]; ok {
			if c == 0 {
				b.term = irTerm{Kind: termJmp, Cond: noValue, A: noValue, Target: b.term.Target}
			} else {
				b.term = irTerm{Kind: termNone, Cond: noValue, A: noValue}
			}
			n++
		}
	}

	// Thread targets through empty jump-only blocks.
	final := func(b *irBlock) *irBlock {
		for i := 0; i < len(f.blocks); i++ {
			if len(b.instrs) == 0 && b.term.Kind == termJmp && b.term.Target != b {
				b = b.term.Target
				continue
			}
			break
		}
		return b
	}
	for _, b := range f.blocks {
		if b.term.Kind == termJmp || b.term.Kind == termBrz {
			if t := final(b.term.Target); t != b.term.Target {
				b.term.Target = t
				n++
			}
		}
	}

	// A jump to the next block in layout is a fallthrough.
	for i, b := range f.blocks {
		if b.term.Kind == termJmp && i+1 < len(f.blocks) && f.blocks[i+1] == b.term.Target {
			b.term = irTerm{Kind: termNone, Cond: noValue, A: noValue}
			n++
		}
	}

	// Drop unreachable blocks. Fallthrough adjacency is preserved: a
	// reachable block's layout successor is one of its CFG successors, hence
	// reachable, hence kept immediately after it.
	if len(f.blocks) > 0 {
		reach := map[*irBlock]bool{f.blocks[0]: true}
		work := []int{0}
		index := map[*irBlock]int{}
		for i, b := range f.blocks {
			index[b] = i
		}
		for len(work) > 0 {
			i := work[len(work)-1]
			work = work[:len(work)-1]
			for _, s := range f.succs(i) {
				if !reach[s] {
					reach[s] = true
					work = append(work, index[s])
				}
			}
		}
		out := f.blocks[:0]
		for _, b := range f.blocks {
			if reach[b] {
				out = append(out, b)
			} else {
				n++
			}
		}
		f.blocks = out
	}
	return n
}
