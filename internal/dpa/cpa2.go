package dpa

import (
	"math"
	"math/bits"

	"desmask/internal/des"
	"desmask/internal/leakstat"
)

// Second-order (centered-product) CPA — the attack that breaks first-order
// boolean masking. A masked trace carries each sensitive value v as the pair
// (v XOR m, m); no single sample's mean depends on v, so first-order CPA and
// DoM collapse. But the *product* of two centered samples that process the
// two shares (or one centered sample squared, when the pipeline overlaps the
// shares in one cycle) has an expectation that depends on HW(v) again —
// Messerges' classic second-order DPA, phrased as CPA. The preprocessing
// here is univariate centered-square: y_j = (x_j - mean_j)^2, correlated
// against the usual Hamming-weight model. It needs only the per-cycle means
// (one streaming pass, O(window) memory) before the correlation pass.

// CorrelationTrace2 returns the per-cycle Pearson correlation between the
// Hamming weight of the predicted round-1 S-box output (for one sub-key
// guess) and the centered-squared energy (x - mean)^2 — the univariate
// second-order distinguisher.
func CorrelationTrace2(ts *TraceSet, box int, guess uint32) []float64 {
	n := ts.Window.Len()
	m := len(ts.Traces)
	if m == 0 || n <= 0 {
		return nil
	}

	h := make([]float64, m)
	var hAcc leakstat.Acc
	for i, pt := range ts.Plaintexts {
		h[i] = float64(bits.OnesCount8(des.FirstRoundSBoxOutput(pt, box, guess)))
		hAcc.Add(h[i])
	}
	out := make([]float64, n)
	if hAcc.M2 == 0 {
		return out // constant prediction carries no signal
	}

	// Pass 1: per-cycle mean of the raw traces.
	raw := leakstat.NewVec(n)
	for _, tr := range ts.Traces {
		raw.AddTrace(tr[ts.Window.Start:ts.Window.End])
	}

	// Pass 2: mean and M2 of the preprocessed samples y = (x - mean)^2, plus
	// their covariance with the centered prediction, all streamed per cycle.
	yMean := make([]float64, n)
	yM2 := make([]float64, n)
	cov := make([]float64, n)
	inv := 1 / float64(m)
	for i, tr := range ts.Traces {
		seg := tr[ts.Window.Start:ts.Window.End]
		hi := h[i] - hAcc.Mean
		for j, x := range seg {
			d := x - raw.Mean[j]
			y := d * d
			dy := y - yMean[j]
			yMean[j] += dy * inv
			yM2[j] += dy * (y - yMean[j])
			cov[j] += hi * y
		}
	}
	// cov accumulated sum(h_c * y); recenter by the y mean (sum(h_c) == 0
	// makes the correction exact): cov_c = cov - m*mean(h_c)*mean(y) = cov.
	// The Welford mean above is the final mean, so centering y after the
	// fact costs nothing; the guard mirrors CorrelationTrace.
	for j := range out {
		if d := hAcc.M2 * yM2[j]; d > 0 {
			out[j] = cov[j] / math.Sqrt(d)
		}
	}
	return out
}

// CPA2AttackSBox scores every 6-bit sub-key guess of one S-box by its peak
// absolute second-order correlation.
func CPA2AttackSBox(ts *TraceSet, box int) BoxResult {
	res := BoxResult{Box: box, Bit: -2, Best: GuessScore{Peak: -1}, RunnerUp: GuessScore{Peak: -1}}
	for guess := uint32(0); guess < 64; guess++ {
		corr := CorrelationTrace2(ts, box, guess)
		peak := 0.0
		for _, v := range corr {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		res.AllScores[guess] = peak
		switch {
		case peak > res.Best.Peak:
			res.RunnerUp = res.Best
			res.Best = GuessScore{Guess: guess, Peak: peak}
		case peak > res.RunnerUp.Peak:
			res.RunnerUp = GuessScore{Guess: guess, Peak: peak}
		}
	}
	return res
}

// CPA2AttackAll attacks all eight S-boxes with the second-order
// distinguisher.
func CPA2AttackAll(ts *TraceSet) [8]BoxResult {
	var out [8]BoxResult
	for box := 0; box < 8; box++ {
		out[box] = CPA2AttackSBox(ts, box)
	}
	return out
}

// Chunks extracts the eight best-guess 6-bit sub-key chunks of a full-key
// attack, in des.RecoverKey's order (chunk 0 feeds S-box 1).
func Chunks(results [8]BoxResult) [8]uint32 {
	var out [8]uint32
	for box, r := range results {
		out[box] = r.Best.Guess
	}
	return out
}

// FullKeyResult is the outcome of a complete first-round key-recovery attack:
// all eight S-boxes attacked, the 48 recovered K1 bits completed to the
// 56-bit key by trial encryption against one known pair.
type FullKeyResult struct {
	Boxes [8]BoxResult
	// Recovered counts correct 6-bit chunks (needs the true key; filled by
	// VerifyAgainst, -1 until then).
	Recovered int
	// Key is the completed 64-bit key (zero parity bits); OK reports that
	// some candidate reproduced the known ciphertext.
	Key uint64
	OK  bool
}

// Stat names a full-key distinguisher.
type Stat int

const (
	// StatDoM is Kocher-style single-bit difference of means.
	StatDoM Stat = iota
	// StatCPA is first-order Hamming-weight correlation.
	StatCPA
	// StatCPA2 is second-order centered-square correlation.
	StatCPA2
)

// String names the distinguisher as the attack API spells it.
func (s Stat) String() string {
	switch s {
	case StatDoM:
		return "dom"
	case StatCPA:
		return "cpa"
	case StatCPA2:
		return "cpa2"
	}
	return "stat?"
}

// FullKeyAttack runs the complete 48-bit round-key recovery with the chosen
// distinguisher and completes it to the 56-bit key via one known
// (plaintext, ciphertext) pair. Recovered is left at -1; call VerifyAgainst
// with the true key to fill it.
func FullKeyAttack(ts *TraceSet, stat Stat, plaintext, ciphertext uint64) FullKeyResult {
	var res FullKeyResult
	switch stat {
	case StatCPA:
		res.Boxes = CPAAttackAll(ts)
	case StatCPA2:
		res.Boxes = CPA2AttackAll(ts)
	default:
		res.Boxes = AttackAll(ts, 0)
	}
	res.Recovered = -1
	res.Key, res.OK = des.RecoverKey(Chunks(res.Boxes), plaintext, ciphertext)
	return res
}

// VerifyAgainst scores the attack against the true key, filling Recovered.
func (r *FullKeyResult) VerifyAgainst(key uint64) {
	r.Recovered, _ = Verify(r.Boxes, key)
}
