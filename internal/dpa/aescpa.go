package dpa

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"desmask/internal/aes"
	"desmask/internal/kernels"
	"desmask/internal/leakstat"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// AES key recovery via CPA, demonstrating that the attack framework — like
// the masking compiler — generalises beyond DES: the classic first-round
// AES distinguisher predicts the Hamming weight of SBox[pt[i] ^ k] for each
// guess k of key byte i and correlates it against the traces.

// AESTraceSet is a batch of AES kernel traces with known plaintexts.
type AESTraceSet struct {
	Plaintexts [][]uint32 // 16 bytes each
	Traces     [][]float64
	Window     trace.Window
	// OrigLens and Truncated mirror TraceSet: per-trace lengths as collected
	// (before the maxCycles cut and shortest-run alignment), and whether
	// alignment actually shortened any trace relative to its peers.
	OrigLens  []int
	Truncated bool
}

// CollectAES gathers n AES-kernel energy traces under one key with random
// plaintext bytes. The plaintexts are drawn up front from the seeded
// generator and the runs fan out across the kernel's simulation session, so
// the trace set is byte-identical regardless of worker count.
func CollectAES(m *kernels.Machine, key []uint32, n int, seed int64, maxCycles int) (*AESTraceSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dpa: trace count must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	plaintexts := make([][]uint32, n)
	for i := range plaintexts {
		pt := make([]uint32, 16)
		for j := range pt {
			pt[j] = uint32(rng.Intn(256))
		}
		plaintexts[i] = pt
	}
	// The kernel runs to halt; truncate afterwards — AES is short enough
	// (~42k cycles) that full runs stay cheap.
	results, err := m.RunBatch(key, plaintexts, true, sim.Options{})
	if err != nil {
		return nil, err
	}
	ts := &AESTraceSet{Plaintexts: plaintexts}
	minLen := -1
	for _, r := range results {
		totals := r.Trace.Totals
		ts.OrigLens = append(ts.OrigLens, len(totals))
		if maxCycles > 0 && len(totals) > maxCycles {
			totals = totals[:maxCycles]
		}
		ts.Traces = append(ts.Traces, totals)
		if minLen < 0 || len(totals) < minLen {
			minLen = len(totals)
		}
	}
	for i := range ts.Traces {
		if len(ts.Traces[i]) > minLen {
			ts.Traces[i] = ts.Traces[i][:minLen]
			ts.Truncated = true
		}
	}
	ts.Window = trace.Window{Start: 0, End: minLen}
	return ts, nil
}

// AESCPAByte attacks one key byte (0-15) over all 256 guesses, scoring each
// by peak |correlation| between HW(SBox[pt ^ guess]) and the trace.
func AESCPAByte(ts *AESTraceSet, byteIdx int) (best, runnerUp uint32, bestPeak, runnerPeak float64) {
	bestPeak, runnerPeak = -1, -1
	m := len(ts.Traces)
	n := ts.Window.End - ts.Window.Start
	if m == 0 || n <= 0 {
		return 0, 0, 0, 0
	}
	// Per-cycle trace statistics are guess-independent: one streaming pass
	// through the leakstat accumulator (Mean and M2 per sample), then center
	// the traces against the final means.
	v := leakstat.NewVec(n)
	for _, tr := range ts.Traces {
		v.AddTrace(tr[ts.Window.Start:ts.Window.End])
	}
	centered := make([][]float64, m)
	for i, tr := range ts.Traces {
		seg := tr[ts.Window.Start:ts.Window.End]
		c := make([]float64, n)
		for j, x := range seg {
			c[j] = x - v.Mean[j]
		}
		centered[i] = c
	}

	h := make([]float64, m)
	for guess := uint32(0); guess < 256; guess++ {
		var hAcc leakstat.Acc
		for i, pt := range ts.Plaintexts {
			h[i] = float64(bits.OnesCount8(aes.SBox[byte(pt[byteIdx])^byte(guess)]))
			hAcc.Add(h[i])
		}
		peak := 0.0
		if hAcc.M2 > 0 {
			cov := make([]float64, n)
			for i := range centered {
				hi := h[i] - hAcc.Mean
				for j, c := range centered[i] {
					cov[j] += hi * c
				}
			}
			// Guard the variance product as a whole: masked kernels leave
			// samples energy-constant (M2 == 0), where the division would
			// produce NaN; such samples carry no correlation, r = 0.
			for j := range cov {
				if d := hAcc.M2 * v.M2[j]; d > 0 {
					if r := math.Abs(cov[j] / math.Sqrt(d)); r > peak {
						peak = r
					}
				}
			}
		}
		switch {
		case peak > bestPeak:
			runnerUp, runnerPeak = best, bestPeak
			best, bestPeak = guess, peak
		case peak > runnerPeak:
			runnerUp, runnerPeak = guess, peak
		}
	}
	return best, runnerUp, bestPeak, runnerPeak
}
