package dpa

import (
	"math"
	"sync"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/kernels"
	"desmask/internal/trace"
)

const attackKey = 0x133457799BBCDFF1

var (
	setupOnce   sync.Once
	unmaskedSet *TraceSet
	maskedSet   *TraceSet
	roundWin    trace.Window
)

// setup collects one shared pair of trace sets (expensive).
func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		cfg := Config{NumTraces: 128, Seed: 42, MaxCycles: 25_000}
		mNone, err := desprog.New(compiler.PolicyNone)
		if err != nil {
			panic(err)
		}
		mSel, err := desprog.New(compiler.PolicySelective)
		if err != nil {
			panic(err)
		}
		unmaskedSet, err = Collect(mNone, attackKey, cfg)
		if err != nil {
			panic(err)
		}
		maskedSet, err = Collect(mSel, attackKey, cfg)
		if err != nil {
			panic(err)
		}
		// Analyse the round region only (the attacker skips the plaintext-
		// dependent initial permutation).
		roundWin = trace.Window{Start: 7_000, End: 25_000}
		unmaskedSet.Window = roundWin
		maskedSet.Window = roundWin
	})
}

func TestCollectShapeAndDeterminism(t *testing.T) {
	setup(t)
	if unmaskedSet.Len() != 128 {
		t.Fatalf("collected %d traces", unmaskedSet.Len())
	}
	for _, tr := range unmaskedSet.Traces {
		if len(tr) != 25_000 {
			t.Fatalf("trace length %d, want 25000", len(tr))
		}
	}
	// Same seed twice gives the same plaintexts.
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	ts2, err := Collect(m, attackKey, Config{NumTraces: 3, Seed: 42, MaxCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if ts2.Plaintexts[i] != unmaskedSet.Plaintexts[i] {
			t.Fatal("plaintext generation not deterministic")
		}
	}
}

func TestCollectRejectsBadConfig(t *testing.T) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(m, attackKey, Config{NumTraces: 0}); err == nil {
		t.Error("zero traces accepted")
	}
}

func TestDPARecoversSubkeyUnmasked(t *testing.T) {
	setup(t)
	// Boxes with comfortable margins at 128 traces; the experiments binary
	// demonstrates full 8/8 recovery with 256.
	for _, box := range []int{0, 1, 3, 5} {
		r := AttackSBox(unmaskedSet, box, 0)
		truth := des.SubkeySixBits(attackKey, box)
		if r.Best.Guess != truth {
			t.Errorf("box %d: recovered %d, want %d (peak %.3f, margin %.2f)",
				box, r.Best.Guess, truth, r.Best.Peak, r.Margin())
		}
		if r.Best.Peak <= 0 {
			t.Errorf("box %d: no differential signal", box)
		}
	}
}

func TestDPAFailsMasked(t *testing.T) {
	setup(t)
	recovered := 0
	for box := 0; box < 8; box++ {
		r := AttackSBox(maskedSet, box, 0)
		// Masked round region is identical across plaintexts: the DoM is
		// exactly zero for every guess.
		if r.Best.Peak > 1e-9 {
			t.Errorf("box %d: masked traces show differential peak %.6f", box, r.Best.Peak)
		}
		if r.Best.Guess == des.SubkeySixBits(attackKey, box) {
			recovered++
		}
	}
	if recovered > 2 {
		t.Errorf("masked attack 'recovered' %d/8 chunks; should be chance level", recovered)
	}
}

func TestDifferenceOfMeansProperties(t *testing.T) {
	setup(t)
	dom := DifferenceOfMeans(unmaskedSet, 0, 0, des.SubkeySixBits(attackKey, 0))
	if len(dom) != roundWin.Len() {
		t.Fatalf("DoM length %d, want %d", len(dom), roundWin.Len())
	}
	peak := 0.0
	for _, v := range dom {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak <= 0 {
		t.Error("true-key DoM shows no peak")
	}
}

func TestDegeneratePartition(t *testing.T) {
	// All-identical plaintexts put every trace in one group.
	ts := &TraceSet{
		Plaintexts: []uint64{5, 5, 5},
		Traces:     [][]float64{{1, 2}, {1, 2}, {1, 2}},
		Window:     trace.Window{Start: 0, End: 2},
	}
	dom := DifferenceOfMeans(ts, 0, 0, 0)
	for _, v := range dom {
		if v != 0 {
			t.Error("degenerate partition must produce zero DoM")
		}
	}
}

func TestVerify(t *testing.T) {
	var results [8]BoxResult
	for box := 0; box < 8; box++ {
		results[box] = BoxResult{Box: box, Best: GuessScore{Guess: des.SubkeySixBits(attackKey, box)}}
	}
	n, detail := Verify(results, attackKey)
	if n != 8 {
		t.Errorf("Verify = %d, want 8", n)
	}
	for i, ok := range detail {
		if !ok {
			t.Errorf("box %d not verified", i)
		}
	}
	results[0].Best.Guess ^= 1
	if n, _ := Verify(results, attackKey); n != 7 {
		t.Errorf("Verify after corruption = %d, want 7", n)
	}
}

func TestMarginInf(t *testing.T) {
	r := BoxResult{Best: GuessScore{Peak: 1}, RunnerUp: GuessScore{Peak: 0}}
	if !math.IsInf(r.Margin(), 1) {
		t.Error("margin with zero runner-up should be +Inf")
	}
}

func TestSPAFindsRoundPeriod(t *testing.T) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.EncryptJob(attackKey, 0x0123456789ABCDEF, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Runner().Run(job)
	if res.Err != nil || !res.Done {
		t.Fatalf("run: %v done=%v", res.Err, res.Done)
	}
	// Ground truth round length from the symbol table.
	starts := func() []int {
		entry, err := m.EntryPC(desprog.FuncKeyGeneration)
		if err != nil {
			t.Fatal(err)
		}
		var s []int
		for i, pc := range res.Trace.PCs {
			if pc == entry {
				s = append(s, i)
			}
		}
		return s
	}()
	if len(starts) != 16 {
		t.Fatalf("found %d rounds", len(starts))
	}
	roundLen := starts[1] - starts[0]

	const bucket = 100
	spa := SPA(res.Trace.Totals, bucket, 20, 400)
	if spa.Strength < 0.3 {
		t.Errorf("SPA autocorrelation too weak: %.3f", spa.Strength)
	}
	got := spa.Period * bucket
	if math.Abs(float64(got-roundLen)) > 0.1*float64(roundLen) {
		t.Errorf("SPA period %d cycles, true round length %d", got, roundLen)
	}
	if spa.Rounds < 14 || spa.Rounds > 20 {
		t.Errorf("SPA round estimate %d, want ~16", spa.Rounds)
	}
}

func TestSPAEdgeCases(t *testing.T) {
	if r := SPA(nil, 10, 1, 5); r.Period != 0 {
		t.Error("empty input should yield zero result")
	}
	flat := make([]float64, 1000)
	for i := range flat {
		flat[i] = 7
	}
	if r := SPA(flat, 10, 1, 50); r.Strength != 0 {
		t.Error("zero-variance input should yield zero strength")
	}
	if r := SPA([]float64{1, 2}, 1, 5, 4); r.Period != 0 {
		t.Error("bad period bounds should yield zero result")
	}
}

func TestCPARecoversSubkeyUnmasked(t *testing.T) {
	setup(t)
	recovered := 0
	for box := 0; box < 8; box++ {
		r := CPAAttackSBox(unmaskedSet, box)
		if r.Best.Guess == des.SubkeySixBits(attackKey, box) {
			recovered++
		}
		if r.Best.Peak <= 0 || r.Best.Peak > 1+1e-9 {
			t.Errorf("box %d: correlation peak %.3f out of (0,1]", box, r.Best.Peak)
		}
	}
	// CPA should do at least as well as single-bit DoM at the same trace
	// count; require a solid majority.
	if recovered < 5 {
		t.Errorf("CPA recovered only %d/8 at 128 traces", recovered)
	}
}

func TestCPAFailsMasked(t *testing.T) {
	setup(t)
	for box := 0; box < 8; box++ {
		r := CPAAttackSBox(maskedSet, box)
		if r.Best.Peak > 1e-9 {
			t.Errorf("box %d: masked traces show correlation %.6f", box, r.Best.Peak)
		}
	}
}

func TestCorrelationTraceProperties(t *testing.T) {
	setup(t)
	corr := CorrelationTrace(unmaskedSet, 0, des.SubkeySixBits(attackKey, 0))
	if len(corr) != roundWin.Len() {
		t.Fatalf("length %d, want %d", len(corr), roundWin.Len())
	}
	for i, v := range corr {
		if v < -1.0000001 || v > 1.0000001 {
			t.Fatalf("cycle %d: correlation %.4f outside [-1,1]", i, v)
		}
	}
	// Degenerate inputs.
	if CorrelationTrace(&TraceSet{}, 0, 0) != nil {
		t.Error("empty trace set should yield nil")
	}
	ts := &TraceSet{
		Plaintexts: []uint64{7, 7},
		Traces:     [][]float64{{1, 2}, {3, 4}},
		Window:     trace.Window{Start: 0, End: 2},
	}
	for _, v := range CorrelationTrace(ts, 0, 0) {
		if v != 0 {
			t.Error("constant predictions must produce zero correlation")
		}
	}
}

func TestAESCPARecoversKeyBytes(t *testing.T) {
	mNone, err := kernels.BuildSimple(kernels.AES128(), compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]uint32, 16)
	for i := range key {
		key[i] = uint32((i*37 + 11) & 0xff)
	}
	// SubBytes of round 1 happens early; 12k cycles cover key expansion +
	// round 1 comfortably.
	ts, err := CollectAES(mNone, key, 80, 7, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, byteIdx := range []int{0, 5, 10, 15} {
		best, _, peak, _ := AESCPAByte(ts, byteIdx)
		if best == key[byteIdx] {
			recovered++
		}
		if peak <= 0 {
			t.Errorf("byte %d: no correlation signal", byteIdx)
		}
	}
	if recovered < 3 {
		t.Errorf("AES CPA recovered only %d/4 sampled key bytes", recovered)
	}
}

func TestAESCPAFailsMasked(t *testing.T) {
	mSel, err := kernels.BuildSimple(kernels.AES128(), compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	key := make([]uint32, 16)
	for i := range key {
		key[i] = uint32((i * 13) & 0xff)
	}
	ts, err := CollectAES(mSel, key, 40, 7, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	// The insecure plaintext-copy region still correlates with the power
	// model for every guess (it is plaintext-dependent by design, like
	// DES's initial permutation), but those correlations carry no key
	// information: recovery must collapse to chance.
	recovered := 0
	for _, byteIdx := range []int{0, 5, 10, 15} {
		best, _, _, _ := AESCPAByte(ts, byteIdx)
		if best == key[byteIdx] {
			recovered++
		}
	}
	if recovered > 1 {
		t.Errorf("masked AES CPA recovered %d/4 key bytes; should be chance", recovered)
	}
}

func TestAESCPAEdgeCases(t *testing.T) {
	if _, _, peak, _ := AESCPAByte(&AESTraceSet{}, 0); peak != 0 {
		t.Error("empty trace set should yield zero peak")
	}
	m, err := kernels.BuildSimple(kernels.AES128(), compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectAES(m, make([]uint32, 16), 0, 1, 0); err == nil {
		t.Error("zero traces accepted")
	}
}

// TestCPAConstantTracesFinite is the NaN regression test: every sample has
// zero trace variance (the masked-trace shape), so the Pearson denominator
// is zero everywhere. The correlations must come back finite zeros, never
// NaN — a single NaN poisons every peak comparison downstream.
func TestCPAConstantTracesFinite(t *testing.T) {
	ts := &TraceSet{
		// Distinct plaintexts so the power model varies (hVar > 0) while the
		// traces do not (tVar == 0) — the exact hVar*tVar == 0 case.
		Plaintexts: []uint64{0, ^uint64(0), 0x0123456789ABCDEF, 0xFEDCBA9876543210},
		Traces:     [][]float64{{9, 9, 9}, {9, 9, 9}, {9, 9, 9}, {9, 9, 9}},
		Window:     trace.Window{Start: 0, End: 3},
	}
	for guess := uint32(0); guess < 64; guess += 21 {
		for j, r := range CorrelationTrace(ts, 0, guess) {
			if math.IsNaN(r) || r != 0 {
				t.Fatalf("guess %d sample %d: r=%v, want finite 0 on constant traces", guess, j, r)
			}
		}
	}
	r := CPAAttackSBox(ts, 0)
	if math.IsNaN(r.Best.Peak) || r.Best.Peak != 0 {
		t.Fatalf("constant-trace CPA peak %v, want 0", r.Best.Peak)
	}
}

// TestAESCPAConstantTracesFinite: same regression for the AES distinguisher.
func TestAESCPAConstantTracesFinite(t *testing.T) {
	pts := make([][]uint32, 4)
	traces := make([][]float64, 4)
	for i := range pts {
		pt := make([]uint32, 16)
		for j := range pt {
			pt[j] = uint32((i*31 + j*7) & 0xff)
		}
		pts[i] = pt
		traces[i] = []float64{4, 4, 4, 4}
	}
	ts := &AESTraceSet{Plaintexts: pts, Traces: traces, Window: trace.Window{Start: 0, End: 4}}
	_, _, bestPeak, runnerPeak := AESCPAByte(ts, 0)
	if math.IsNaN(bestPeak) || math.IsNaN(runnerPeak) || bestPeak != 0 {
		t.Fatalf("constant-trace AES CPA peaks (%v, %v), want finite zeros", bestPeak, runnerPeak)
	}
}

// TestDegenerateSingleTraceSet is the empty-group regression test: one
// trace can never populate both selection groups, so all 64 guesses are
// degenerate. The differentials must be finite zeros (not NaN/Inf from a
// division by n=0) and the result must say how many guesses degenerated.
func TestDegenerateSingleTraceSet(t *testing.T) {
	ts := &TraceSet{
		Plaintexts: []uint64{0x0123456789ABCDEF},
		Traces:     [][]float64{{5, 6, 7}},
		Window:     trace.Window{Start: 0, End: 3},
	}
	r := AttackSBox(ts, 0, 0)
	if r.Degenerate != 64 {
		t.Fatalf("Degenerate=%d, want 64 for a 1-trace set", r.Degenerate)
	}
	for guess, score := range r.AllScores {
		if math.IsNaN(score) || math.IsInf(score, 0) || score != 0 {
			t.Fatalf("guess %d: score %v, want finite 0", guess, score)
		}
	}
	dom, n1, n0 := DifferenceOfMeansDetail(ts, 0, 0, 0)
	if n1+n0 != 1 || (n1 != 0 && n0 != 0) {
		t.Fatalf("partition sizes (%d, %d), want one empty group", n1, n0)
	}
	for _, v := range dom {
		if v != 0 {
			t.Fatalf("degenerate DoM %v, want zeros", dom)
		}
	}
	// A healthy set must report zero degenerate guesses.
	setup(t)
	if r := AttackSBox(unmaskedSet, 0, 0); r.Degenerate != 0 {
		t.Fatalf("128-trace set reports %d degenerate guesses", r.Degenerate)
	}
}

// TestCollectRecordsLengths: cycle-aligned collection records every run's
// original length and reports no truncation.
func TestCollectRecordsLengths(t *testing.T) {
	setup(t)
	if len(unmaskedSet.OrigLens) != unmaskedSet.Len() {
		t.Fatalf("OrigLens has %d entries for %d traces", len(unmaskedSet.OrigLens), unmaskedSet.Len())
	}
	for i, l := range unmaskedSet.OrigLens {
		if l != 25_000 {
			t.Fatalf("trace %d: original length %d, want 25000", i, l)
		}
	}
	if unmaskedSet.Truncated || maskedSet.Truncated {
		t.Fatal("cycle-aligned collection must not report truncation")
	}
}

// TestCollectGangBitIdentity: gang-scheduled acquisition is a pure
// throughput knob — the collected trace set must be bit-identical to scalar
// collection for the same seed, per sample.
func TestCollectGangBitIdentity(t *testing.T) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumTraces: 10, Seed: 42, MaxCycles: 2000}
	ref, err := Collect(m, attackKey, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers, cfg.Gang = 3, 4
	got, err := Collect(m, attackKey, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ref.Len() {
		t.Fatalf("gang set has %d traces, scalar %d", got.Len(), ref.Len())
	}
	for i := range ref.Traces {
		if got.Plaintexts[i] != ref.Plaintexts[i] {
			t.Fatalf("trace %d plaintext diverges", i)
		}
		if len(got.Traces[i]) != len(ref.Traces[i]) {
			t.Fatalf("trace %d length %d vs %d", i, len(got.Traces[i]), len(ref.Traces[i]))
		}
		for j := range ref.Traces[i] {
			if math.Float64bits(got.Traces[i][j]) != math.Float64bits(ref.Traces[i][j]) {
				t.Fatalf("trace %d sample %d: gang %v, scalar %v", i, j, got.Traces[i][j], ref.Traces[i][j])
			}
		}
	}
}
