package dpa

import (
	"math"
	"math/rand"
	"testing"

	"desmask/internal/des"
	"desmask/internal/trace"
)

// varianceLeakSet builds the synthetic signature of a first-order masked
// trace: one sample whose MEAN is independent of the predicted S-box output
// but whose VARIANCE grows with its Hamming weight (two shares summed into
// one cycle's energy), surrounded by pure-noise samples.
func varianceLeakSet(t *testing.T, traces int) (*TraceSet, uint32) {
	t.Helper()
	truth := des.SubkeySixBits(attackKey, 0)
	rng := rand.New(rand.NewSource(99))
	ts := &TraceSet{Window: trace.Window{Start: 0, End: 4}}
	for i := 0; i < traces; i++ {
		pt := rng.Uint64()
		h := 0
		for v := des.FirstRoundSBoxOutput(pt, 0, truth); v != 0; v >>= 1 {
			h += int(v & 1)
		}
		// Sample 1 leaks through its spread: +/- (h+1) with a fair sign, so
		// every guess's first-order partition sees the same mean.
		sign := float64(1)
		if rng.Intn(2) == 0 {
			sign = -1
		}
		row := []float64{
			rng.NormFloat64(),
			10 + sign*float64(h+1),
			rng.NormFloat64(),
			rng.NormFloat64(),
		}
		ts.Plaintexts = append(ts.Plaintexts, pt)
		ts.Traces = append(ts.Traces, row)
	}
	return ts, truth
}

// TestCPA2RecoversVarianceLeak: the second-order distinguisher recovers the
// sub-key chunk from a variance-only leak that defeats first-order CPA.
func TestCPA2RecoversVarianceLeak(t *testing.T) {
	ts, truth := varianceLeakSet(t, 600)
	r2 := CPA2AttackSBox(ts, 0)
	if r2.Best.Guess != truth {
		t.Errorf("second-order CPA recovered %d, want %d (peak %.3f, margin %.2f)",
			r2.Best.Guess, truth, r2.Best.Peak, r2.Margin())
	}
	if r2.Best.Peak < 0.5 {
		t.Errorf("second-order peak %.3f too weak for a pure variance leak", r2.Best.Peak)
	}
	// First-order CPA on the same set must not find a comparable signal at
	// the true guess — the means are flat by construction.
	r1 := CPAAttackSBox(ts, 0)
	if r1.AllScores[truth] > 0.5*r2.Best.Peak {
		t.Errorf("first-order CPA scores the true guess %.3f; variance leak is not first-order hidden",
			r1.AllScores[truth])
	}
}

// TestCorrelationTrace2Properties: bounds, lengths and degenerate inputs of
// the second-order distinguisher mirror the first-order contract.
func TestCorrelationTrace2Properties(t *testing.T) {
	ts, truth := varianceLeakSet(t, 100)
	corr := CorrelationTrace2(ts, 0, truth)
	if len(corr) != ts.Window.Len() {
		t.Fatalf("length %d, want %d", len(corr), ts.Window.Len())
	}
	for i, v := range corr {
		if math.IsNaN(v) || v < -1.0000001 || v > 1.0000001 {
			t.Fatalf("sample %d: correlation %v outside [-1,1]", i, v)
		}
	}
	if CorrelationTrace2(&TraceSet{}, 0, 0) != nil {
		t.Error("empty trace set should yield nil")
	}
	// Constant predictions and constant traces both collapse to finite zero.
	flat := &TraceSet{
		Plaintexts: []uint64{7, 7},
		Traces:     [][]float64{{1, 2}, {3, 4}},
		Window:     trace.Window{Start: 0, End: 2},
	}
	for _, v := range CorrelationTrace2(flat, 0, 0) {
		if v != 0 {
			t.Error("constant predictions must produce zero correlation")
		}
	}
	constant := &TraceSet{
		Plaintexts: []uint64{0, ^uint64(0), 0x0123456789ABCDEF, 0xFEDCBA9876543210},
		Traces:     [][]float64{{9, 9}, {9, 9}, {9, 9}, {9, 9}},
		Window:     trace.Window{Start: 0, End: 2},
	}
	for guess := uint32(0); guess < 64; guess += 17 {
		for j, v := range CorrelationTrace2(constant, 0, guess) {
			if math.IsNaN(v) || v != 0 {
				t.Fatalf("guess %d sample %d: r=%v, want finite 0 on constant traces", guess, j, v)
			}
		}
	}
}

// TestFullKeyAttackCompletesKey: with every chunk recovered correctly the
// attack completes to the true (parity-stripped) key; one corrupted chunk
// makes completion fail rather than return a wrong key.
func TestFullKeyAttackCompletesKey(t *testing.T) {
	pt := uint64(0x0123456789ABCDEF)
	ct := des.Encrypt(attackKey, pt)
	var chunks [8]uint32
	for box := 0; box < 8; box++ {
		chunks[box] = des.SubkeySixBits(attackKey, box)
	}
	key, ok := des.RecoverKey(chunks, pt, ct)
	if !ok || des.Encrypt(key, pt) != ct {
		t.Fatalf("completion failed on correct chunks (ok=%v key=%016x)", ok, key)
	}
	chunks[3] ^= 0x15
	if _, ok := des.RecoverKey(chunks, pt, ct); ok {
		t.Error("completion succeeded on a corrupted chunk")
	}
}

// TestStatNamesAndChunks: the distinguisher names match the attack API and
// Chunks extracts best guesses in box order.
func TestStatNamesAndChunks(t *testing.T) {
	for stat, want := range map[Stat]string{StatDoM: "dom", StatCPA: "cpa", StatCPA2: "cpa2"} {
		if got := stat.String(); got != want {
			t.Errorf("Stat(%d).String() = %q, want %q", stat, got, want)
		}
	}
	var results [8]BoxResult
	for box := range results {
		results[box] = BoxResult{Box: box, Best: GuessScore{Guess: uint32(box * 7)}}
	}
	chunks := Chunks(results)
	for box, c := range chunks {
		if c != uint32(box*7) {
			t.Errorf("chunk %d = %d, want %d", box, c, box*7)
		}
	}
}
