package dpa

import (
	"math"
	"math/bits"

	"desmask/internal/des"
)

// CPA implements correlation power analysis — the natural strengthening of
// the difference-of-means DPA the paper defends against (its "higher-order
// power analysis techniques" that defeat naive countermeasures like random
// noise injection): instead of partitioning on one predicted bit, the
// attacker correlates the full Hamming weight of the predicted round-1
// S-box output against the trace at every cycle. Against the dual-rail
// masked system the predicted power model has zero covariance with the
// (data-independent) trace, so CPA collapses exactly like DPA.

// CorrelationTrace returns the per-cycle Pearson correlation between the
// Hamming weight of the predicted S-box output (for one sub-key guess) and
// the measured energy.
func CorrelationTrace(ts *TraceSet, box int, guess uint32) []float64 {
	n := ts.Window.End - ts.Window.Start
	m := len(ts.Traces)
	if m == 0 || n <= 0 {
		return nil
	}

	// Power-model predictions.
	h := make([]float64, m)
	var hMean float64
	for i, pt := range ts.Plaintexts {
		h[i] = float64(bits.OnesCount8(des.FirstRoundSBoxOutput(pt, box, guess)))
		hMean += h[i]
	}
	hMean /= float64(m)
	var hVar float64
	for i := range h {
		h[i] -= hMean
		hVar += h[i] * h[i]
	}
	out := make([]float64, n)
	if hVar == 0 {
		return out // constant prediction carries no signal
	}

	// Per-cycle trace means.
	mean := make([]float64, n)
	for _, tr := range ts.Traces {
		for j, v := range tr[ts.Window.Start:ts.Window.End] {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(m)
	}

	// Covariance and trace variance per cycle.
	cov := make([]float64, n)
	tVar := make([]float64, n)
	for i, tr := range ts.Traces {
		seg := tr[ts.Window.Start:ts.Window.End]
		for j, v := range seg {
			d := v - mean[j]
			cov[j] += h[i] * d
			tVar[j] += d * d
		}
	}
	for j := range out {
		if tVar[j] > 0 {
			out[j] = cov[j] / math.Sqrt(hVar*tVar[j])
		}
	}
	return out
}

// CPAAttackSBox scores every 6-bit sub-key guess of one S-box by its peak
// absolute correlation.
func CPAAttackSBox(ts *TraceSet, box int) BoxResult {
	res := BoxResult{Box: box, Bit: -1, Best: GuessScore{Peak: -1}, RunnerUp: GuessScore{Peak: -1}}
	for guess := uint32(0); guess < 64; guess++ {
		corr := CorrelationTrace(ts, box, guess)
		peak := 0.0
		for _, v := range corr {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		res.AllScores[guess] = peak
		switch {
		case peak > res.Best.Peak:
			res.RunnerUp = res.Best
			res.Best = GuessScore{Guess: guess, Peak: peak}
		case peak > res.RunnerUp.Peak:
			res.RunnerUp = GuessScore{Guess: guess, Peak: peak}
		}
	}
	return res
}

// CPAAttackAll attacks all eight S-boxes with the correlation distinguisher.
func CPAAttackAll(ts *TraceSet) [8]BoxResult {
	var out [8]BoxResult
	for box := 0; box < 8; box++ {
		out[box] = CPAAttackSBox(ts, box)
	}
	return out
}
