package dpa

import (
	"math"
	"math/bits"

	"desmask/internal/des"
	"desmask/internal/leakstat"
)

// CPA implements correlation power analysis — the natural strengthening of
// the difference-of-means DPA the paper defends against (its "higher-order
// power analysis techniques" that defeat naive countermeasures like random
// noise injection): instead of partitioning on one predicted bit, the
// attacker correlates the full Hamming weight of the predicted round-1
// S-box output against the trace at every cycle. Against the dual-rail
// masked system the predicted power model has zero covariance with the
// (data-independent) trace, so CPA collapses exactly like DPA.

// CorrelationTrace returns the per-cycle Pearson correlation between the
// Hamming weight of the predicted S-box output (for one sub-key guess) and
// the measured energy.
func CorrelationTrace(ts *TraceSet, box int, guess uint32) []float64 {
	n := ts.Window.Len()
	m := len(ts.Traces)
	if m == 0 || n <= 0 {
		return nil
	}

	// Power-model predictions through the leakstat scalar accumulator
	// (hAcc.M2 is the sum of squared deviations, the Pearson denominator).
	h := make([]float64, m)
	var hAcc leakstat.Acc
	for i, pt := range ts.Plaintexts {
		h[i] = float64(bits.OnesCount8(des.FirstRoundSBoxOutput(pt, box, guess)))
		hAcc.Add(h[i])
	}
	out := make([]float64, n)
	if hAcc.M2 == 0 {
		return out // constant prediction carries no signal
	}

	// Per-cycle trace mean and M2 in one streaming pass.
	v := leakstat.NewVec(n)
	for _, tr := range ts.Traces {
		v.AddTrace(tr[ts.Window.Start:ts.Window.End])
	}

	// Covariance against the centered prediction.
	cov := make([]float64, n)
	for i, tr := range ts.Traces {
		hi := h[i] - hAcc.Mean
		seg := tr[ts.Window.Start:ts.Window.End]
		for j, x := range seg {
			cov[j] += hi * (x - v.Mean[j])
		}
	}
	// r = cov / sqrt(hM2 * traceM2), with the product guarded as a whole:
	// masked traces make whole stretches of samples energy-constant
	// (traceM2 == 0), where the unguarded division yields NaN and poisons
	// every peak scan downstream; a zero-variance sample simply carries no
	// correlation, r = 0.
	for j := range out {
		if d := hAcc.M2 * v.M2[j]; d > 0 {
			out[j] = cov[j] / math.Sqrt(d)
		}
	}
	return out
}

// CPAAttackSBox scores every 6-bit sub-key guess of one S-box by its peak
// absolute correlation.
func CPAAttackSBox(ts *TraceSet, box int) BoxResult {
	res := BoxResult{Box: box, Bit: -1, Best: GuessScore{Peak: -1}, RunnerUp: GuessScore{Peak: -1}}
	for guess := uint32(0); guess < 64; guess++ {
		corr := CorrelationTrace(ts, box, guess)
		peak := 0.0
		for _, v := range corr {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		res.AllScores[guess] = peak
		switch {
		case peak > res.Best.Peak:
			res.RunnerUp = res.Best
			res.Best = GuessScore{Guess: guess, Peak: peak}
		case peak > res.RunnerUp.Peak:
			res.RunnerUp = GuessScore{Guess: guess, Peak: peak}
		}
	}
	return res
}

// CPAAttackAll attacks all eight S-boxes with the correlation distinguisher.
func CPAAttackAll(ts *TraceSet) [8]BoxResult {
	var out [8]BoxResult
	for box := 0; box < 8; box++ {
		out[box] = CPAAttackSBox(ts, box)
	}
	return out
}
