// Package dpa implements the power-analysis attacks the paper defends
// against: Simple Power Analysis (SPA — reading program structure such as
// the 16 DES rounds straight off the energy profile, Figure 6) and Kocher-
// style Differential Power Analysis (DPA [7], as described by Goubin-Patarin
// [5]): collect energy traces for many known plaintexts, guess 6 bits of the
// first-round sub-key feeding one S-box, split the traces by a predicted
// S-box output bit, and test whether the two groups' mean traces diverge.
// A correct guess produces a differential spike; on a masked implementation
// every guess stays flat.
package dpa

import (
	"fmt"
	"math"
	"math/rand"

	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/leakstat"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// Config parameterises trace collection.
type Config struct {
	// NumTraces is the number of (plaintext, trace) samples to gather.
	NumTraces int
	// Seed drives the plaintext generator, for reproducibility.
	Seed int64
	// MaxCycles truncates each run; covering the first round suffices for
	// the first-round sub-key attack and keeps collection fast.
	MaxCycles uint64
	// Workers sizes the acquisition worker pool; <= 0 uses GOMAXPROCS.
	// Collected trace sets are bit-identical for every worker count.
	Workers int
	// Gang is the lockstep gang width (sim.Options.GangWidth): > 1 groups
	// acquisitions into gang-scheduled lockstep runs. Trace sets are
	// bit-identical for any gang width; the knob only changes throughput.
	Gang int
}

// DefaultConfig returns a configuration comparable to the paper's reference
// [5], scaled down because simulated traces are noise-free.
func DefaultConfig() Config {
	return Config{NumTraces: 100, Seed: 1, MaxCycles: 40_000}
}

// TraceSet is a batch of energy traces with known plaintexts, all collected
// under the same (unknown to the attacker) key.
type TraceSet struct {
	Plaintexts []uint64
	Traces     [][]float64
	// Window is the analysis window within each trace (defaults to all).
	Window trace.Window
	// OrigLens records each trace's length as collected. Runs under one key
	// are cycle-aligned by construction, so normally every entry equals the
	// common length; if they ever disagree, Collect aligns the set to the
	// shortest run and sets Truncated, because cycle-indexed statistics are
	// only meaningful over the common prefix. Callers that cannot tolerate
	// truncation should reject sets with Truncated set.
	OrigLens  []int
	Truncated bool
}

// Len returns the number of traces.
func (ts *TraceSet) Len() int { return len(ts.Traces) }

// Collect gathers cfg.NumTraces first-round energy traces from the machine
// under the given key, using uniformly random plaintexts. Acquisition fans
// out across the machine's simulation session (cfg.Workers); the plaintext
// sequence is drawn up front from the seeded generator, so the resulting
// trace set is byte-identical regardless of worker count.
func Collect(m *desprog.Machine, key uint64, cfg Config) (*TraceSet, error) {
	if cfg.NumTraces <= 0 {
		return nil, fmt.Errorf("dpa: NumTraces must be positive")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultConfig().MaxCycles
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plaintexts := make([]uint64, cfg.NumTraces)
	for i := range plaintexts {
		plaintexts[i] = rng.Uint64()
	}
	results, err := m.EncryptBatch(key, plaintexts, cfg.MaxCycles, true, sim.Options{Workers: cfg.Workers, GangWidth: cfg.Gang})
	if err != nil {
		return nil, err
	}
	ts := &TraceSet{Plaintexts: plaintexts}
	minLen := -1
	for _, r := range results {
		ts.Traces = append(ts.Traces, r.Trace.Totals)
		ts.OrigLens = append(ts.OrigLens, r.Trace.Len())
		if minLen < 0 || r.Trace.Len() < minLen {
			minLen = r.Trace.Len()
		}
	}
	// Runs are cycle-aligned by construction; if they ever come back ragged,
	// align to the shortest run and say so via Truncated (see TraceSet).
	for i := range ts.Traces {
		if len(ts.Traces[i]) > minLen {
			ts.Traces[i] = ts.Traces[i][:minLen]
			ts.Truncated = true
		}
	}
	ts.Window = trace.Window{Start: 0, End: minLen}
	return ts, nil
}

// DifferenceOfMeans computes the DPA differential trace for one guess of the
// 6 sub-key bits feeding S-box box: traces are partitioned by the predicted
// output bit (0-3, MSB first) of that S-box in round 1, and the pointwise
// difference of the two group means is returned.
func DifferenceOfMeans(ts *TraceSet, box, bit int, guess uint32) []float64 {
	dom, _, _ := DifferenceOfMeansDetail(ts, box, bit, guess)
	return dom
}

// DifferenceOfMeansDetail is DifferenceOfMeans plus the partition sizes, so
// callers can tell a flat differential (masked traces) from a degenerate one
// (a selection bit that never split — n1 or n0 zero — where the difference
// is undefined and reported as all zeros rather than NaN/Inf). The group
// means come from the leakstat accumulators, sharing the numerics of the
// streaming TVLA engine.
func DifferenceOfMeansDetail(ts *TraceSet, box, bit int, guess uint32) (dom []float64, n1, n0 int) {
	n := ts.Window.Len()
	g1, g0 := leakstat.NewVec(n), leakstat.NewVec(n)
	for i, tr := range ts.Traces {
		out := des.FirstRoundSBoxOutput(ts.Plaintexts[i], box, guess)
		seg := tr[ts.Window.Start:ts.Window.End]
		if out>>(3-bit)&1 == 1 {
			g1.AddTrace(seg)
		} else {
			g0.AddTrace(seg)
		}
	}
	n1, n0 = int(g1.N()), int(g0.N())
	dom = make([]float64, n)
	if n1 == 0 || n0 == 0 {
		return dom, n1, n0 // degenerate partition carries no signal
	}
	for j := range dom {
		dom[j] = g1.Mean[j] - g0.Mean[j]
	}
	return dom, n1, n0
}

// GuessScore is the peak differential magnitude of one sub-key guess.
type GuessScore struct {
	Guess uint32
	Peak  float64
}

// BoxResult is the outcome of attacking one S-box.
type BoxResult struct {
	Box       int
	Bit       int
	Best      GuessScore
	RunnerUp  GuessScore
	AllScores [64]float64
	// Degenerate counts guesses whose selection bit never split the trace
	// set (one group empty — inevitable with very few traces). Such guesses
	// score zero by definition; a result where most guesses are degenerate
	// says the set is too small to attack, not that the target is masked.
	Degenerate int
}

// Margin returns Best.Peak / RunnerUp.Peak — the attack's confidence. A
// margin near 1 (or a tiny best peak) means the attack failed.
func (r BoxResult) Margin() float64 {
	if r.RunnerUp.Peak == 0 {
		return math.Inf(1)
	}
	return r.Best.Peak / r.RunnerUp.Peak
}

// AttackSBox runs the difference-of-means attack on every 6-bit guess for
// one S-box, scoring each guess by its peak |DoM|.
func AttackSBox(ts *TraceSet, box, bit int) BoxResult {
	res := BoxResult{Box: box, Bit: bit, Best: GuessScore{Peak: -1}, RunnerUp: GuessScore{Peak: -1}}
	for guess := uint32(0); guess < 64; guess++ {
		dom, n1, n0 := DifferenceOfMeansDetail(ts, box, bit, guess)
		if n1 == 0 || n0 == 0 {
			res.Degenerate++
		}
		peak := 0.0
		for _, v := range dom {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		res.AllScores[guess] = peak
		switch {
		case peak > res.Best.Peak:
			res.RunnerUp = res.Best
			res.Best = GuessScore{Guess: guess, Peak: peak}
		case peak > res.RunnerUp.Peak:
			res.RunnerUp = GuessScore{Guess: guess, Peak: peak}
		}
	}
	return res
}

// AttackAll attacks all eight S-boxes using output bit `bit`.
func AttackAll(ts *TraceSet, bit int) [8]BoxResult {
	var out [8]BoxResult
	for box := 0; box < 8; box++ {
		out[box] = AttackSBox(ts, box, bit)
	}
	return out
}

// Verify compares attack results against the true key, returning how many of
// the eight 6-bit sub-key chunks were recovered.
func Verify(results [8]BoxResult, key uint64) (recovered int, detail [8]bool) {
	for box, r := range results {
		truth := des.SubkeySixBits(key, box)
		if r.Best.Guess == truth {
			recovered++
			detail[box] = true
		}
	}
	return recovered, detail
}

// SPAResult summarises simple power analysis of a full trace.
type SPAResult struct {
	// Period is the dominant repetition period, in buckets.
	Period int
	// Strength is the normalised autocorrelation at Period (0..1).
	Strength float64
	// Rounds estimates how many repetitions fit in the analysed region.
	Rounds int
}

// SPA detects periodic structure (the 16 DES rounds of Figure 6) in a
// bucketed energy profile via normalised autocorrelation. bucket is the
// aggregation width in cycles; minPeriod/maxPeriod bound the search in
// buckets.
func SPA(totals []float64, bucket, minPeriod, maxPeriod int) SPAResult {
	series := trace.Bucket(totals, bucket)
	n := len(series)
	if n == 0 || minPeriod < 1 || maxPeriod <= minPeriod {
		return SPAResult{}
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range series {
		variance += (v - mean) * (v - mean)
	}
	if variance == 0 {
		return SPAResult{}
	}
	corr := make([]float64, 0, maxPeriod-minPeriod+1)
	maxR := 0.0
	for lag := minPeriod; lag <= maxPeriod && lag < n; lag++ {
		var acc float64
		for i := 0; i+lag < n; i++ {
			acc += (series[i] - mean) * (series[i+lag] - mean)
		}
		r := acc / variance
		corr = append(corr, r)
		if r > maxR {
			maxR = r
		}
	}
	if maxR <= 0 {
		return SPAResult{}
	}
	// Harmonic disambiguation: multiples of the true period correlate about
	// as well as the period itself, so take the smallest lag within 95% of
	// the global maximum.
	best := SPAResult{}
	for i, r := range corr {
		if r >= 0.95*maxR {
			best = SPAResult{Period: minPeriod + i, Strength: r}
			break
		}
	}
	if best.Period > 0 {
		best.Rounds = n / best.Period
	}
	return best
}
