package kernels

// SHA1 is the Secure Hash Standard compression function (FIPS 180-1 — the
// paper's reference [10]) in MiniC, masked in the HMAC configuration: the
// chaining state entering the compression is secret (as the inner/outer
// HMAC states are key-derived), the message block is public, and the digest
// is declassified output. It exercises rotation-heavy tainted dataflow with
// zero table lookups.
func SHA1() Kernel {
	return Kernel{
		Name:         "sha1",
		SecretGlobal: "state",
		PublicGlobal: "block",
		OutputGlobal: "digest",
		OutputLen:    5,
		Source: `
// SHA-1 compression with a secret chaining state (HMAC inner state).
secure int state[5];   // input: secret chaining variables h0..h4
int block[16];         // input: public 512-bit message block (16 words)
int digest[5];         // output: updated chaining value

int K_TAB[4] = { 0x5A827999, 0x6ED9EBA1, -0x70E44324, -0x359D3E2A };

int W[80];
int r0; int r1; int r2; int r3; int r4;

int rotl(int x, int n) {
	return (x << n) | (x >>> (32 - n));
}

void expand() {
	int t;
	for (t = 0; t < 16; t = t + 1) { W[t] = block[t]; }
	for (t = 16; t < 80; t = t + 1) {
		W[t] = rotl(((W[t - 3] ^ W[t - 8]) ^ W[t - 14]) ^ W[t - 16], 1);
	}
}

void emit_output() {
	digest[0] = public(r0);
	digest[1] = public(r1);
	digest[2] = public(r2);
	digest[3] = public(r3);
	digest[4] = public(r4);
}

void main() {
	int a; int b; int c; int d; int e;
	int t; int f; int k; int tmp;
	expand();
	a = state[0];
	b = state[1];
	c = state[2];
	d = state[3];
	e = state[4];
	for (t = 0; t < 80; t = t + 1) {
		if (t < 20) {
			f = (b & c) | (~b & d);
			k = K_TAB[0];
		} else if (t < 40) {
			f = (b ^ c) ^ d;
			k = K_TAB[1];
		} else if (t < 60) {
			f = ((b & c) | (b & d)) | (c & d);
			k = K_TAB[2];
		} else {
			f = (b ^ c) ^ d;
			k = K_TAB[3];
		}
		tmp = (((rotl(a, 5) + f) + e) + k) + W[t];
		e = d;
		d = c;
		c = rotl(b, 30);
		b = a;
		a = tmp;
	}
	r0 = state[0] + a;
	r1 = state[1] + b;
	r2 = state[2] + c;
	r3 = state[3] + d;
	r4 = state[4] + e;
	emit_output();
}
`,
	}
}

// SHA1Reference is the oracle: one FIPS 180-1 compression of a 16-word
// block into a 5-word chaining state.
func SHA1Reference(state [5]uint32, block [16]uint32) [5]uint32 {
	var w [80]uint32
	copy(w[:16], block[:])
	for t := 16; t < 80; t++ {
		x := w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16]
		w[t] = x<<1 | x>>31
	}
	a, b, c, d, e := state[0], state[1], state[2], state[3], state[4]
	for t := 0; t < 80; t++ {
		var f, k uint32
		switch {
		case t < 20:
			f, k = (b&c)|(^b&d), 0x5A827999
		case t < 40:
			f, k = b^c^d, 0x6ED9EBA1
		case t < 60:
			f, k = (b&c)|(b&d)|(c&d), 0x8F1BBCDC
		default:
			f, k = b^c^d, 0xCA62C1D6
		}
		tmp := (a<<5 | a>>27) + f + e + k + w[t]
		e, d, c, b, a = d, c, b<<30|b>>2, a, tmp
	}
	return [5]uint32{state[0] + a, state[1] + b, state[2] + c, state[3] + d, state[4] + e}
}
