// Package kernels carries additional cryptographic workloads for the
// masking system beyond DES — the paper's stated generalisation ("our
// approach is general and can be extended to other algorithms that need
// protection against current measurements based breaks"): TEA and AES-128,
// both written in MiniC with `secure`-annotated keys, compiled by the
// masking compiler and executed on the simulator, with Go reference
// implementations as oracles.
package kernels

import (
	"context"
	"fmt"
	"sync"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// Kernel is one MiniC workload.
type Kernel struct {
	// Name identifies the kernel ("tea", "aes128").
	Name string
	// Source is the MiniC program.
	Source string
	// SecretGlobal names the secure-annotated input array.
	SecretGlobal string
	// PublicGlobal names the public input array.
	PublicGlobal string
	// OutputGlobal names the output array and OutputLen its length.
	OutputGlobal string
	OutputLen    int
}

// Machine is a compiled kernel ready to run.
type Machine struct {
	Kernel Kernel
	Res    *compiler.Result
	Cfg    energy.Config

	runnerOnce sync.Once
	runner     *sim.Runner
}

// Build compiles the kernel under the given options and energy
// configuration.
func Build(k Kernel, opt compiler.Options, cfg energy.Config) (*Machine, error) {
	res, err := compiler.CompileWithOptions(k.Source, opt)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	return &Machine{Kernel: k, Res: res, Cfg: cfg}, nil
}

// BuildSimple compiles with a bare policy and the default energy model.
func BuildSimple(k Kernel, policy compiler.Policy) (*Machine, error) {
	return Build(k, compiler.Options{Policy: policy}, energy.DefaultConfig())
}

// MaxCycles bounds one kernel run.
const MaxCycles = 4_000_000

// Runner returns the kernel's simulation session (created on first use).
func (m *Machine) Runner() *sim.Runner {
	m.runnerOnce.Do(func() {
		m.runner = sim.NewRunner(m.Res.Program, m.Cfg)
		m.runner.MaxCycles = MaxCycles
	})
	return m.runner
}

// Job assembles the sim.Job of one kernel run: secret then public inputs
// poked into their global arrays (fixed order), output array read back. On
// masked/shuffled machines it delegates to JobSeeded with seed 0 —
// deterministic, but every job built this way reuses the same masks;
// statistics drivers must pass fresh per-trace seeds to JobSeeded.
func (m *Machine) Job(secret, public []uint32, capture bool) (sim.Job, error) {
	return m.JobSeeded(secret, public, 0, capture)
}

// globalAddr resolves the address of a MiniC global.
func (m *Machine) globalAddr(name string) (uint32, error) {
	addr, ok := m.Res.Program.Symbols[compiler.GlobalLabel(name)]
	if !ok {
		return 0, fmt.Errorf("kernels: %s: no global %q", m.Kernel.Name, name)
	}
	return addr, nil
}

// JobSeeded is Job plus the masking/shuffling runtime state for one
// execution, all derived from maskSeed: on a PolicyBooleanMask machine the
// secret is poked pre-split into share pairs (word XOR m_i into the data
// slot, m_i into the shadow slot — the raw secret never appears in simulated
// memory), the scrub word and fresh-mask pool are filled with stream
// randoms, and the final pool cursor is read back (Reads[1]); on a shuffled
// machine the __shuf global gets a fresh random permutation. On unprotected
// machines maskSeed is ignored. Reads[0] is always the output array.
func (m *Machine) JobSeeded(secret, public []uint32, maskSeed int64, capture bool) (sim.Job, error) {
	job := sim.Job{Trace: capture}
	rng := compiler.NewMaskStream(maskSeed)
	masked := make(map[string]bool)
	if m.Res.Mask != nil {
		for _, g := range m.Res.Mask.MaskedGlobals {
			masked[g] = true
		}
	}
	for _, in := range []struct {
		name string
		vals []uint32
	}{{m.Kernel.SecretGlobal, secret}, {m.Kernel.PublicGlobal, public}} {
		addr, err := m.globalAddr(in.name)
		if err != nil {
			return sim.Job{}, err
		}
		if masked[in.name] {
			shadow, err := m.globalAddr(compiler.MaskShadow(in.name))
			if err != nil {
				return sim.Job{}, err
			}
			for i, v := range in.vals {
				mi := rng.Next32()
				job.Writes = append(job.Writes,
					sim.Write{Addr: addr + uint32(4*i), Val: v ^ mi},
					sim.Write{Addr: shadow + uint32(4*i), Val: mi})
			}
			continue
		}
		for i, v := range in.vals {
			job.Writes = append(job.Writes, sim.Write{Addr: addr + uint32(4*i), Val: v})
		}
	}
	addr, err := m.globalAddr(m.Kernel.OutputGlobal)
	if err != nil {
		return sim.Job{}, err
	}
	job.Reads = []sim.Read{{Addr: addr, Words: m.Kernel.OutputLen}}
	if m.Res.Mask != nil {
		for _, p := range m.Res.Mask.RuntimePokes(rng) {
			addr, err := m.globalAddr(p.Sym)
			if err != nil {
				return sim.Job{}, err
			}
			job.Writes = append(job.Writes, sim.Write{Addr: addr + uint32(4*p.Word), Val: p.Val})
		}
		if m.Res.Mask.PoolWords > 0 {
			cursor, err := m.globalAddr(compiler.MaskCursorSym)
			if err != nil {
				return sim.Job{}, err
			}
			job.Reads = append(job.Reads, sim.Read{Addr: cursor, Words: 1})
		}
	}
	return job, nil
}

// output unpacks one job result into the kernel's (output, stats) shape. A
// budget expiry surfaces as a *cpu.CycleLimitError (matching
// cpu.ErrCycleLimit), distinguishable from program faults.
func (m *Machine) output(res sim.Result) ([]uint32, sim.Stats, error) {
	if res.Err != nil {
		return nil, res.Stats, fmt.Errorf("kernels: %s: %w", m.Kernel.Name, res.Err)
	}
	if !res.Done {
		return nil, res.Stats, fmt.Errorf("kernels: %s: %w", m.Kernel.Name, &cpu.CycleLimitError{Limit: MaxCycles})
	}
	return res.Mem[0], res.Stats, nil
}

// Run executes the kernel through the simulation session with the secret
// and public inputs poked into their global arrays, returning the output
// array and run statistics. Extra probes are attached for this run.
func (m *Machine) Run(secret, public []uint32, probes ...cpu.Probe) ([]uint32, sim.Stats, error) {
	job, err := m.Job(secret, public, false)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	job.Probe = sim.SharedProbes(probes...)
	return m.output(m.Runner().Run(job))
}

// RunBatch executes one kernel run per public input under the same secret
// across the session's worker pool, returning results in input order.
func (m *Machine) RunBatch(secret []uint32, publics [][]uint32, capture bool, opts sim.Options) ([]sim.Result, error) {
	jobs := make([]sim.Job, len(publics))
	for i, pub := range publics {
		job, err := m.JobSeeded(secret, pub, sim.DeriveSeed(0, i), capture)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	return m.Runner().RunBatch(jobs, opts)
}

// Trace runs the kernel capturing the full per-cycle energy trace.
func (m *Machine) Trace(secret, public []uint32) ([]uint32, *trace.Trace, error) {
	job, err := m.Job(secret, public, true)
	if err != nil {
		return nil, nil, err
	}
	res := m.Runner().Run(job)
	out, _, err := m.output(res)
	if err != nil {
		return nil, nil, err
	}
	return out, res.Trace, nil
}

// TraceContext is Trace under a cancellable context: a context that dies
// before the run starts skips the simulation and returns the context's
// error, so deadline-bound callers never burn a worker on an expired
// request.
func (m *Machine) TraceContext(ctx context.Context, secret, public []uint32) ([]uint32, *trace.Trace, error) {
	job, err := m.Job(secret, public, true)
	if err != nil {
		return nil, nil, err
	}
	results, err := m.Runner().RunBatchContext(ctx, []sim.Job{job}, sim.Options{Workers: 1})
	if err != nil {
		return nil, nil, err
	}
	out, _, err := m.output(results[0])
	if err != nil {
		return nil, nil, err
	}
	return out, results[0].Trace, nil
}

// TVLAInputs returns the kernel's canonical fixed TVLA population inputs —
// the fixed secret, the public input, and the word mask bounding random
// secret draws (0xff for aes128's byte-valued state, full words otherwise).
// The experiments tables, cmd/tvla and the leakd service all assess the
// same populations through this one definition.
func TVLAInputs(k Kernel) (secret, public []uint32, wordMask uint32) {
	secretLen, publicLen := 16, 16
	wordMask = uint32(0xffffffff)
	switch k.Name {
	case "aes128":
		wordMask = 0xff
	case "tea":
		secretLen, publicLen = 4, 2
	case "sha1":
		secretLen, publicLen = 5, 16
	}
	secret = make([]uint32, secretLen)
	public = make([]uint32, publicLen)
	for i := range secret {
		secret[i] = uint32(i+1) & wordMask
	}
	for i := range public {
		public[i] = uint32(i * 9)
	}
	return secret, public, wordMask
}

// ByName returns the named built-in kernel (tea, aes128, sha1).
func ByName(name string) (Kernel, bool) {
	switch name {
	case "tea":
		return TEA(), true
	case "aes128":
		return AES128(), true
	case "sha1":
		return SHA1(), true
	}
	return Kernel{}, false
}

// MaskedRegionEnd returns the cycle at which the kernel's output emission
// begins — the end of the region that must be energy-flat across secrets.
// It is located as the first EX occurrence of the output function's entry.
func (m *Machine) MaskedRegionEnd(tr *trace.Trace) (int, error) {
	entry, ok := m.Res.Program.Symbols["f_emit_output"]
	if !ok {
		return 0, fmt.Errorf("kernels: %s: kernel lacks an emit_output function", m.Kernel.Name)
	}
	for i, pc := range tr.PCs {
		if pc == entry {
			return i, nil
		}
	}
	return tr.Len(), nil
}
