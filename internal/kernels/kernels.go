// Package kernels carries additional cryptographic workloads for the
// masking system beyond DES — the paper's stated generalisation ("our
// approach is general and can be extended to other algorithms that need
// protection against current measurements based breaks"): TEA and AES-128,
// both written in MiniC with `secure`-annotated keys, compiled by the
// masking compiler and executed on the simulator, with Go reference
// implementations as oracles.
package kernels

import (
	"fmt"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/mem"
	"desmask/internal/trace"
)

// Kernel is one MiniC workload.
type Kernel struct {
	// Name identifies the kernel ("tea", "aes128").
	Name string
	// Source is the MiniC program.
	Source string
	// SecretGlobal names the secure-annotated input array.
	SecretGlobal string
	// PublicGlobal names the public input array.
	PublicGlobal string
	// OutputGlobal names the output array and OutputLen its length.
	OutputGlobal string
	OutputLen    int
}

// Machine is a compiled kernel ready to run.
type Machine struct {
	Kernel Kernel
	Res    *compiler.Result
	Cfg    energy.Config
}

// Build compiles the kernel under the given options and energy
// configuration.
func Build(k Kernel, opt compiler.Options, cfg energy.Config) (*Machine, error) {
	res, err := compiler.CompileWithOptions(k.Source, opt)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	return &Machine{Kernel: k, Res: res, Cfg: cfg}, nil
}

// BuildSimple compiles with a bare policy and the default energy model.
func BuildSimple(k Kernel, policy compiler.Policy) (*Machine, error) {
	return Build(k, compiler.Options{Policy: policy}, energy.DefaultConfig())
}

// MaxCycles bounds one kernel run.
const MaxCycles = 4_000_000

// Run executes the kernel on a fresh core with the secret and public inputs
// poked into their global arrays, returning the output array and run
// statistics. sink may be nil.
func (m *Machine) Run(secret, public []uint32, sink cpu.CycleSink) ([]uint32, cpu.Stats, error) {
	c, err := cpu.New(m.Res.Program, mem.New(), energy.NewModel(m.Cfg))
	if err != nil {
		return nil, cpu.Stats{}, err
	}
	c.SetSink(sink)
	poke := func(name string, vals []uint32) error {
		addr, ok := m.Res.Program.Symbols[compiler.GlobalLabel(name)]
		if !ok {
			return fmt.Errorf("kernels: %s: no global %q", m.Kernel.Name, name)
		}
		for i, v := range vals {
			if err := c.Mem().StoreWord(addr+uint32(4*i), v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := poke(m.Kernel.SecretGlobal, secret); err != nil {
		return nil, cpu.Stats{}, err
	}
	if err := poke(m.Kernel.PublicGlobal, public); err != nil {
		return nil, cpu.Stats{}, err
	}
	if err := c.Run(MaxCycles); err != nil {
		return nil, cpu.Stats{}, fmt.Errorf("kernels: %s: %w", m.Kernel.Name, err)
	}
	addr, ok := m.Res.Program.Symbols[compiler.GlobalLabel(m.Kernel.OutputGlobal)]
	if !ok {
		return nil, cpu.Stats{}, fmt.Errorf("kernels: %s: no output global %q", m.Kernel.Name, m.Kernel.OutputGlobal)
	}
	out, err := c.Mem().ReadWords(addr, m.Kernel.OutputLen)
	if err != nil {
		return nil, cpu.Stats{}, err
	}
	return out, c.Stats(), nil
}

// Trace runs the kernel capturing the full per-cycle energy trace.
func (m *Machine) Trace(secret, public []uint32) ([]uint32, *trace.Trace, error) {
	var rec trace.Recorder
	out, _, err := m.Run(secret, public, &rec)
	if err != nil {
		return nil, nil, err
	}
	return out, &rec.T, nil
}

// MaskedRegionEnd returns the cycle at which the kernel's output emission
// begins — the end of the region that must be energy-flat across secrets.
// It is located as the first EX occurrence of the output function's entry.
func (m *Machine) MaskedRegionEnd(tr *trace.Trace) (int, error) {
	entry, ok := m.Res.Program.Symbols["f_emit_output"]
	if !ok {
		return 0, fmt.Errorf("kernels: %s: kernel lacks an emit_output function", m.Kernel.Name)
	}
	for i, pc := range tr.PCs {
		if pc == entry {
			return i, nil
		}
	}
	return tr.Len(), nil
}
