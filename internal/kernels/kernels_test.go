package kernels

import (
	"math"
	"math/rand"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/trace"
)

func TestTEAReferenceKnownVector(t *testing.T) {
	// All-zero key and block, the classic TEA smoke vector.
	got := TEAReference([4]uint32{}, [2]uint32{})
	if got[0] != 0x41ea3a0a || got[1] != 0x94baa940 {
		t.Errorf("TEA(0,0) = %08x %08x, want 41ea3a0a 94baa940", got[0], got[1])
	}
}

func TestTEASimulatedMatchesReference(t *testing.T) {
	m, err := BuildSimple(TEA(), compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4; i++ {
		key := [4]uint32{rng.Uint32(), rng.Uint32(), rng.Uint32(), rng.Uint32()}
		v := [2]uint32{rng.Uint32(), rng.Uint32()}
		out, stats, err := m.Run(key[:], v[:])
		if err != nil {
			t.Fatal(err)
		}
		want := TEAReference(key, v)
		if out[0] != want[0] || out[1] != want[1] {
			t.Fatalf("TEA sim = %08x %08x, want %08x %08x", out[0], out[1], want[0], want[1])
		}
		if stats.Cycles == 0 {
			t.Fatal("no cycles simulated")
		}
	}
}

func TestAESSimulatedMatchesReference(t *testing.T) {
	m, err := BuildSimple(AES128(), compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	// FIPS-197 Appendix C.1.
	key := make([]uint32, 16)
	for i := 0; i < 16; i++ {
		key[i] = uint32(i)
	}
	pt := []uint32{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	out, stats, err := m.Run(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("AES sim byte %d = %#02x, want %#02x", i, out[i], want[i])
		}
	}
	t.Logf("AES-128 on the simulator: %d cycles, %.1f µJ", stats.Cycles, stats.Energy.Total/1e6)
}

func TestAESSimulatedMatchesReferenceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := BuildSimple(AES128(), compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		key := make([]uint32, 16)
		pt := make([]uint32, 16)
		for i := range key {
			key[i] = uint32(rng.Intn(256))
			pt[i] = uint32(rng.Intn(256))
		}
		out, _, err := m.Run(key, pt)
		if err != nil {
			t.Fatal(err)
		}
		want := AESReference(key, pt)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("trial %d byte %d = %#02x, want %#02x", trial, i, out[i], want[i])
			}
		}
	}
}

// maskedFlat checks the selective-masking invariant for a kernel: two
// different secrets produce identical traces until output emission.
func maskedFlat(t *testing.T, k Kernel, s1, s2, pub []uint32) {
	t.Helper()
	m, err := BuildSimple(k, compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	_, t1, err := m.Trace(s1, pub)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := m.Trace(s2, pub)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("%s: cycle counts differ: %d vs %d", k.Name, t1.Len(), t2.Len())
	}
	end, err := m.MaskedRegionEnd(t1)
	if err != nil {
		t.Fatal(err)
	}
	if end < t1.Len()/2 {
		t.Fatalf("%s: masked region suspiciously short (%d of %d)", k.Name, end, t1.Len())
	}
	for i := 0; i < end; i++ {
		if math.Abs(t1.Totals[i]-t2.Totals[i]) > 1e-9 {
			t.Fatalf("%s: cycle %d leaks under selective masking", k.Name, i)
		}
	}
}

// leaky checks that the unprotected kernel leaks.
func leaky(t *testing.T, k Kernel, s1, s2, pub []uint32) {
	t.Helper()
	m, err := BuildSimple(k, compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	_, t1, err := m.Trace(s1, pub)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := m.Trace(s2, pub)
	if err != nil {
		t.Fatal(err)
	}
	d, err := trace.Diff(t1.Totals, t2.Totals)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Summarize(d).MaxAbs < 1e-9 {
		t.Errorf("%s: unprotected kernel does not leak", k.Name)
	}
}

func TestTEAMaskingInvariants(t *testing.T) {
	s1 := []uint32{1, 2, 3, 4}
	s2 := []uint32{0xdeadbeef, 0xcafef00d, 0x12345678, 0x9abcdef0}
	pub := []uint32{0x11111111, 0x22222222}
	maskedFlat(t, TEA(), s1, s2, pub)
	leaky(t, TEA(), s1, s2, pub)
}

func TestAESMaskingInvariants(t *testing.T) {
	s1 := make([]uint32, 16)
	s2 := make([]uint32, 16)
	pub := make([]uint32, 16)
	for i := 0; i < 16; i++ {
		s1[i] = uint32(i)
		s2[i] = uint32(255 - i)
		pub[i] = uint32(i * 7 % 256)
	}
	maskedFlat(t, AES128(), s1, s2, pub)
	leaky(t, AES128(), s1, s2, pub)
}

// kernelInputs returns suitably sized deterministic inputs for a kernel.
func kernelInputs(k Kernel) (secret, public []uint32) {
	secretLen, publicLen := 4, 2 // TEA
	if k.Name == "aes128" {
		secretLen, publicLen = 16, 16
	}
	secret = make([]uint32, secretLen)
	public = make([]uint32, publicLen)
	for i := range secret {
		secret[i] = uint32(i + 1)
	}
	for i := range public {
		public[i] = uint32(i * 3)
	}
	return secret, public
}

func TestKernelEnergyOrdering(t *testing.T) {
	for _, k := range []Kernel{TEA(), AES128()} {
		secret, public := kernelInputs(k)
		var prev float64
		for i, pol := range []compiler.Policy{
			compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure,
		} {
			m, err := BuildSimple(k, pol)
			if err != nil {
				t.Fatal(err)
			}
			_, stats, err := m.Run(secret, public)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && stats.Energy.Total <= prev {
				t.Errorf("%s %v: energy %.0f not above previous %.0f", k.Name, pol, stats.Energy.Total, prev)
			}
			prev = stats.Energy.Total
		}
	}
}

func TestRunErrors(t *testing.T) {
	bad := Kernel{Name: "bad", Source: "void main() { }", SecretGlobal: "nope", PublicGlobal: "nope", OutputGlobal: "nope"}
	m, err := BuildSimple(bad, compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Run([]uint32{1}, nil); err == nil {
		t.Error("missing globals should fail")
	}
	if _, err := BuildSimple(Kernel{Name: "syntax", Source: "int"}, compiler.PolicyNone); err == nil {
		t.Error("bad source should fail to build")
	}
}

// sha1ABCBlock returns the standard IV and the padded "abc" block.
func sha1ABCBlock() ([5]uint32, [16]uint32) {
	iv := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	var block [16]uint32
	block[0] = 0x61626380 // "abc" + 0x80 padding
	block[15] = 24        // message length in bits
	return iv, block
}

func TestSHA1ReferenceKnownVector(t *testing.T) {
	iv, block := sha1ABCBlock()
	got := SHA1Reference(iv, block)
	want := [5]uint32{0xA9993E36, 0x4706816A, 0xBA3E2571, 0x7850C26C, 0x9CD0D89D}
	if got != want {
		t.Errorf("SHA1(abc) = %08x, want %08x", got, want)
	}
}

func TestSHA1SimulatedMatchesReference(t *testing.T) {
	m, err := BuildSimple(SHA1(), compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	iv, block := sha1ABCBlock()
	out, stats, err := m.Run(iv[:], block[:])
	if err != nil {
		t.Fatal(err)
	}
	want := SHA1Reference(iv, block)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("digest[%d] = %08x, want %08x", i, out[i], want[i])
		}
	}
	t.Logf("SHA-1 compression on the simulator: %d cycles, %.2f µJ", stats.Cycles, stats.Energy.Total/1e6)

	// Random states/blocks too.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		var st [5]uint32
		var bl [16]uint32
		for i := range st {
			st[i] = rng.Uint32()
		}
		for i := range bl {
			bl[i] = rng.Uint32()
		}
		out, _, err := m.Run(st[:], bl[:])
		if err != nil {
			t.Fatal(err)
		}
		want := SHA1Reference(st, bl)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("trial %d digest[%d] = %08x, want %08x", trial, i, out[i], want[i])
			}
		}
	}
}

func TestSHA1MaskingInvariants(t *testing.T) {
	s1 := []uint32{1, 2, 3, 4, 5}
	s2 := []uint32{0xdeadbeef, 0xcafef00d, 0x8badf00d, 0xfeedface, 0x0ddba11}
	_, block := sha1ABCBlock()
	maskedFlat(t, SHA1(), s1, s2, block[:])
	leaky(t, SHA1(), s1, s2, block[:])
}

func TestSHA1NoTimingWarnings(t *testing.T) {
	m, err := BuildSimple(SHA1(), compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Res.Report.TimingWarnings) != 0 {
		t.Errorf("SHA-1 kernel has timing warnings: %v", m.Res.Report.TimingWarnings)
	}
}
