package kernels

// TEA is the Tiny Encryption Algorithm (Wheeler & Needham, 1994): 32 cycles
// of adds, shifts and XORs over a 128-bit secure key and a 64-bit block. It
// exercises the masking compiler's ALU-heavy path (no S-box tables at all —
// every protected operation is arithmetic).
func TEA() Kernel {
	return Kernel{
		Name:         "tea",
		SecretGlobal: "key",
		PublicGlobal: "v",
		OutputGlobal: "out",
		OutputLen:    2,
		Source: `
// TEA encryption, 32 rounds, delta = 0x9E3779B9.
secure int key[4];
int v[2];
int out[2];
int r0;
int r1;

void emit_output() {
	out[0] = public(r0);
	out[1] = public(r1);
}

void main() {
	int v0; int v1; int sum; int i;
	v0 = v[0];
	v1 = v[1];
	sum = 0;
	for (i = 0; i < 32; i = i + 1) {
		sum = sum + 0x9E3779B9;
		v0 = v0 + ((((v1 << 4) + key[0]) ^ (v1 + sum)) ^ ((v1 >>> 5) + key[1]));
		v1 = v1 + ((((v0 << 4) + key[2]) ^ (v0 + sum)) ^ ((v0 >>> 5) + key[3]));
	}
	r0 = v0;
	r1 = v1;
	emit_output();
}
`,
	}
}

// TEAReference is the oracle implementation.
func TEAReference(key [4]uint32, v [2]uint32) [2]uint32 {
	v0, v1 := v[0], v[1]
	var sum uint32
	const delta = 0x9e3779b9
	for i := 0; i < 32; i++ {
		sum += delta
		v0 += ((v1 << 4) + key[0]) ^ (v1 + sum) ^ ((v1 >> 5) + key[1])
		v1 += ((v0 << 4) + key[2]) ^ (v0 + sum) ^ ((v0 >> 5) + key[3])
	}
	return [2]uint32{v0, v1}
}
