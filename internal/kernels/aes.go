package kernels

import (
	"fmt"
	"strings"

	"desmask/internal/aes"
)

// AES128 is AES-128 encryption in MiniC (byte-per-word state, FIPS input
// byte order), generated from the reference tables in package aes. It
// exercises every protected-operation class heavily: the S-box and xtime
// lookups are secure-indexed, MixColumns is a dense tainted-XOR kernel, and
// the key schedule keeps the whole round-key array in the forward slice.
func AES128() Kernel {
	var b strings.Builder
	b.WriteString(`// AES-128 encryption for the desmask masking compiler.
secure int key[16];   // input: key bytes
int pt[16];           // input: plaintext bytes (FIPS order)
int ct[16];           // output: ciphertext bytes

`)
	writeTable := func(name string, vals []int) {
		fmt.Fprintf(&b, "int %s[%d] = {", name, len(vals))
		for i, v := range vals {
			if i > 0 {
				b.WriteString(", ")
			}
			if i%16 == 0 && i > 0 {
				b.WriteString("\n\t")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteString("};\n")
	}
	sbox := make([]int, 256)
	xt := make([]int, 256)
	for i := 0; i < 256; i++ {
		sbox[i] = int(aes.SBox[i])
		xt[i] = int(aes.Xtime(byte(i)))
	}
	rcon := make([]int, 10)
	for i, v := range aes.Rcon {
		rcon[i] = int(v)
	}
	writeTable("SBOX", sbox)
	writeTable("XT", xt)
	writeTable("RCON", rcon)

	b.WriteString(`
int rk[176];
int st[16];
int tmp[16];

void expand_key() {
	int r; int i; int j;
	for (i = 0; i < 16; i = i + 1) { rk[i] = key[i]; }
	for (r = 1; r <= 10; r = r + 1) {
		i = r * 16;
		rk[i] = (rk[i - 16] ^ SBOX[rk[i - 3]]) ^ RCON[r - 1];
		rk[i + 1] = rk[i - 15] ^ SBOX[rk[i - 2]];
		rk[i + 2] = rk[i - 14] ^ SBOX[rk[i - 1]];
		rk[i + 3] = rk[i - 13] ^ SBOX[rk[i - 4]];
		for (j = 4; j < 16; j = j + 1) {
			rk[i + j] = rk[i + j - 16] ^ rk[i + j - 4];
		}
	}
}

void add_round_key(int r) {
	int i;
	for (i = 0; i < 16; i = i + 1) { st[i] = st[i] ^ rk[r * 16 + i]; }
}

void sub_bytes() {
	int i;
	for (i = 0; i < 16; i = i + 1) { st[i] = SBOX[st[i]]; }
}

void shift_rows() {
	int r; int c;
	for (c = 0; c < 4; c = c + 1) {
		for (r = 0; r < 4; r = r + 1) {
			tmp[4 * c + r] = st[4 * ((c + r) & 3) + r];
		}
	}
	for (c = 0; c < 16; c = c + 1) { st[c] = tmp[c]; }
}

void mix_columns() {
	int c; int a0; int a1; int a2; int a3;
	for (c = 0; c < 4; c = c + 1) {
		a0 = st[4 * c];
		a1 = st[4 * c + 1];
		a2 = st[4 * c + 2];
		a3 = st[4 * c + 3];
		st[4 * c] = ((XT[a0] ^ XT[a1]) ^ a1) ^ (a2 ^ a3);
		st[4 * c + 1] = ((a0 ^ XT[a1]) ^ XT[a2]) ^ (a2 ^ a3);
		st[4 * c + 2] = ((a0 ^ a1) ^ XT[a2]) ^ (XT[a3] ^ a3);
		st[4 * c + 3] = ((XT[a0] ^ a0) ^ a1) ^ (a2 ^ XT[a3]);
	}
}

void emit_output() {
	int i;
	for (i = 0; i < 16; i = i + 1) { ct[i] = public(st[i]); }
}

void main() {
	int r; int i;
	expand_key();
	for (i = 0; i < 16; i = i + 1) { st[i] = pt[i]; }
	add_round_key(0);
	for (r = 1; r <= 9; r = r + 1) {
		sub_bytes();
		shift_rows();
		mix_columns();
		add_round_key(r);
	}
	sub_bytes();
	shift_rows();
	add_round_key(10);
	emit_output();
}
`)
	return Kernel{
		Name:         "aes128",
		Source:       b.String(),
		SecretGlobal: "key",
		PublicGlobal: "pt",
		OutputGlobal: "ct",
		OutputLen:    16,
	}
}

// AESReference is the oracle: word-slice adapter over package aes.
func AESReference(key, pt []uint32) []uint32 {
	var k, p [16]byte
	for i := 0; i < 16; i++ {
		k[i] = byte(key[i])
		p[i] = byte(pt[i])
	}
	ct := aes.Encrypt(k, p)
	out := make([]uint32, 16)
	for i, v := range ct {
		out[i] = uint32(v)
	}
	return out
}
