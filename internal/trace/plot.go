package trace

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders a series as a fixed-size ASCII chart — enough to eyeball the
// paper's figures (the 16-round periodicity of Figure 6, the spikes of
// Figures 7-8, the flatness of Figure 9) straight from a terminal.
func Plot(series []float64, width, height int) string {
	if len(series) == 0 || width <= 0 || height <= 0 {
		return "(empty series)\n"
	}
	cols := downsample(series, width)
	lo, hi := cols[0], cols[0]
	for _, v := range cols {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	flat := span <= 1e-12
	var b strings.Builder
	for row := height - 1; row >= 0; row-- {
		switch row {
		case height - 1:
			fmt.Fprintf(&b, "%10.2f |", hi)
		case 0:
			fmt.Fprintf(&b, "%10.2f |", lo)
		default:
			b.WriteString(strings.Repeat(" ", 10) + " |")
		}
		for _, v := range cols {
			level := 0
			if !flat {
				level = int(math.Round((v - lo) / span * float64(height-1)))
			}
			if level >= row {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", len(cols)) + "\n")
	fmt.Fprintf(&b, "%11s 0%s%d samples\n", "",
		strings.Repeat(" ", maxInt(1, len(cols)-len(fmt.Sprint(len(series)))-1)), len(series))
	return b.String()
}

// downsample averages the series into n columns.
func downsample(series []float64, n int) []float64 {
	if n >= len(series) {
		out := make([]float64, len(series))
		copy(out, series)
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		start := i * len(series) / n
		end := (i + 1) * len(series) / n
		if end <= start {
			end = start + 1
		}
		var sum float64
		for _, v := range series[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
