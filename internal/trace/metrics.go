package trace

import (
	"fmt"
	"io"
	"sort"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
)

// Metrics is a cpu.Probe that accumulates pipeline-occupancy statistics and a
// per-cycle energy histogram without storing the trace itself: EX-stage
// micro-op class mix, secure-instruction occupancy, bubble cycles, and the
// distribution of cycle energies in fixed-width bins. It is the cheap
// always-on companion to a full Recorder.
//
// Meter is optional; when nil the energy histogram is disabled and only the
// occupancy counters accumulate. As with Recorder, attach the Meter to the
// CPU before the Metrics probe.
type Metrics struct {
	Meter *energy.Probe
	BinPJ float64 // histogram bin width in pJ; <=0 means 1.0

	Cycles  uint64
	Bubbles uint64 // cycles whose EX stage held no micro-op
	ByClass [isa.NumExecClasses]uint64
	Secure  uint64   // EX cycles occupied by dual-rail micro-ops
	Hist    []uint64 // Hist[i] = cycles with energy in [i*bin, (i+1)*bin)
}

// Reset clears all counters, keeping the histogram capacity.
func (m *Metrics) Reset() {
	m.Cycles, m.Bubbles, m.Secure = 0, 0, 0
	m.ByClass = [isa.NumExecClasses]uint64{}
	for i := range m.Hist {
		m.Hist[i] = 0
	}
}

func (m *Metrics) bin() float64 {
	if m.BinPJ <= 0 {
		return 1.0
	}
	return m.BinPJ
}

// OnExec implements cpu.ExecObserver.
func (m *Metrics) OnExec(e cpu.ExecEvent) {
	m.ByClass[e.U.Class]++
	if e.U.Secure {
		m.Secure++
	}
}

// OnCycle implements cpu.Probe.
func (m *Metrics) OnCycle(ci cpu.CycleInfo) {
	m.Cycles++
	if ci.U == nil {
		m.Bubbles++
	}
	if m.Meter == nil {
		return
	}
	i := int(m.Meter.LastPJ() / m.bin())
	if i < 0 {
		i = 0
	}
	for i >= len(m.Hist) {
		m.Hist = append(m.Hist, 0)
	}
	m.Hist[i]++
}

// Occupancy returns the fraction of cycles whose EX stage held a micro-op.
func (m *Metrics) Occupancy() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return 1 - float64(m.Bubbles)/float64(m.Cycles)
}

// TopClasses returns the micro-op classes observed in EX, most frequent
// first, as (class, count) pairs.
func (m *Metrics) TopClasses() []ClassCount {
	var out []ClassCount
	for c, n := range m.ByClass {
		if n > 0 {
			out = append(out, ClassCount{Class: isa.ExecClass(c), Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// ClassCount is one entry of TopClasses.
type ClassCount struct {
	Class isa.ExecClass
	Count uint64
}

// WriteHistogram writes the energy histogram as CSV (bin_lo_pj, cycles),
// skipping empty bins.
func (m *Metrics) WriteHistogram(w io.Writer) error {
	if _, err := io.WriteString(w, "bin_lo_pj,cycles\n"); err != nil {
		return err
	}
	bin := m.bin()
	for i, n := range m.Hist {
		if n == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%g,%d\n", float64(i)*bin, n); err != nil {
			return err
		}
	}
	return nil
}
