package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
)

// stepMeter drives one cycle of the meter by hand: optional fetch activity,
// then the cycle commit. It returns the cycle's finalized energy — the value
// a recorder attached after the meter must observe via Meter.Last().
func stepMeter(meter *energy.Probe, cycle uint64, word uint32) float64 {
	if word != 0 {
		meter.OnFetch(cpu.FetchEvent{Cycle: cycle, PC: 0x10, Word: word})
	}
	meter.OnCycle(cpu.CycleInfo{Cycle: cycle})
	return meter.Last().Total
}

func TestRecorder(t *testing.T) {
	meter := energy.NewProbe(energy.DefaultConfig())
	r := Recorder{Meter: meter}
	u := &isa.UOp{PC: 0x10}

	want0 := stepMeter(meter, 0, 0xffffffff)
	r.OnCycle(cpu.CycleInfo{Cycle: 0, U: u})
	stepMeter(meter, 1, 0)
	r.OnCycle(cpu.CycleInfo{Cycle: 1, U: nil})

	if r.T.Len() != 2 {
		t.Fatalf("len = %d", r.T.Len())
	}
	if want0 <= 0 {
		t.Fatalf("fetch cycle consumed no energy")
	}
	if r.T.Totals[0] != want0 || r.T.PCs[0] != 0x10 {
		t.Errorf("sample 0 = %v, %#x; want %v, 0x10", r.T.Totals[0], r.T.PCs[0], want0)
	}
	if r.T.PCs[1] != NoPC {
		t.Errorf("bubble pc = %#x, want NoPC", r.T.PCs[1])
	}
}

func TestWindowRecorder(t *testing.T) {
	meter := energy.NewProbe(energy.DefaultConfig())
	r := WindowRecorder{Meter: meter, Start: 2, End: 4}
	want := make([]float64, 6)
	for i := uint64(0); i < 6; i++ {
		// Alternate fetch words so consecutive cycles have distinct energies.
		want[i] = stepMeter(meter, i, uint32(0x0f0f0f0f<<(i%2)))
		u := &isa.UOp{PC: uint32(i * 4)}
		r.OnCycle(cpu.CycleInfo{Cycle: i, U: u})
	}
	if r.T.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.T.Len())
	}
	if r.T.Totals[0] != want[2] || r.T.Totals[1] != want[3] {
		t.Errorf("window samples = %v, want %v", r.T.Totals, want[2:4])
	}
	if r.T.PCs[0] != 8 || r.T.PCs[1] != 12 {
		t.Errorf("window pcs = %v", r.T.PCs)
	}
}

func TestBucket(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5, 6, 7}
	got := Bucket(in, 3)
	want := []float64{2, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	if Bucket(in, 0) != nil {
		t.Error("width 0 should return nil")
	}
	if got := Bucket(nil, 10); len(got) != 0 {
		t.Errorf("empty input buckets = %v", got)
	}
}

func TestDiff(t *testing.T) {
	d, err := Diff([]float64{5, 3}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 3 || d[1] != -1 {
		t.Errorf("diff = %v", d)
	}
	if _, err := Diff([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{-2, 0, 2, 4})
	if s.N != 4 || s.Mean != 1 || s.Min != -2 || s.Max != 4 || s.MaxAbs != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.NonZeroes != 3 {
		t.Errorf("nonzeroes = %d, want 3", s.NonZeroes)
	}
	wantRMS := math.Sqrt((4.0 + 0 + 4 + 16) / 4)
	if math.Abs(s.RMS-wantRMS) > 1e-12 {
		t.Errorf("rms = %g, want %g", s.RMS, wantRMS)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestFindWindow(t *testing.T) {
	tr := Trace{
		Totals: []float64{1, 2, 3, 4, 5, 6},
		PCs:    []uint32{0x00, 0x10, 0x14, NoPC, 0x18, 0x40},
	}
	w, ok := tr.FindWindow(0x10, 0x20)
	if !ok || w.Start != 1 || w.End != 5 {
		t.Fatalf("window = %+v, %v", w, ok)
	}
	if w.Len() != 4 {
		t.Errorf("len = %d", w.Len())
	}
	got := tr.Slice(w)
	if len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("slice = %v", got)
	}
	if _, ok := tr.FindWindow(0x1000, 0x2000); ok {
		t.Error("found window for unexecuted region")
	}
	if tr.Slice(Window{-1, 2}) != nil || tr.Slice(Window{4, 2}) != nil {
		t.Error("invalid windows should slice to nil")
	}
}

func TestTotalPJ(t *testing.T) {
	if got := TotalPJ([]float64{1.5, 2.5, -1}); got != 3 {
		t.Errorf("TotalPJ = %g", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	err := WriteCSV(&b, []string{"cycle", "a", "b"},
		[]float64{0, 10}, []float64{1.5, 2.5}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n0,1.5,7\n10,2.5,\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
	if err := WriteCSV(&b, []string{"x"}, nil, nil); err == nil {
		t.Error("mismatched header count accepted")
	}
}

func TestSeries(t *testing.T) {
	s := Series(3, 10)
	if len(s) != 3 || s[0] != 0 || s[2] != 20 {
		t.Errorf("series = %v", s)
	}
}

func TestCSVIsParsable(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, []string{"v"}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %v", lines)
	}
}

func TestPlot(t *testing.T) {
	series := make([]float64, 1000)
	for i := range series {
		series[i] = float64(i % 100)
	}
	out := Plot(series, 60, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // height rows + axis + label
		t.Fatalf("plot has %d lines, want 10:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") {
		t.Error("plot has no marks")
	}
	if !strings.Contains(out, "91.") {
		t.Errorf("plot missing max label:\n%s", out)
	}
	// Flat series must not divide by zero.
	flat := Plot([]float64{5, 5, 5, 5}, 10, 4)
	if !strings.Contains(flat, "5.00") {
		t.Errorf("flat plot:\n%s", flat)
	}
	if Plot(nil, 10, 4) == "" {
		t.Error("empty plot should still render a message")
	}
}

func TestDownsample(t *testing.T) {
	got := downsample([]float64{1, 1, 3, 3, 5, 5}, 3)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("downsample = %v, want %v", got, want)
		}
	}
	// n >= len: identity copy.
	id := downsample([]float64{1, 2}, 5)
	if len(id) != 2 || id[0] != 1 || id[1] != 2 {
		t.Errorf("identity downsample = %v", id)
	}
}
