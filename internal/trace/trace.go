// Package trace captures and analyses per-cycle energy traces from the
// simulator: full and windowed recording, the paper's every-N-cycles
// bucketing (Figure 6), differential traces between two runs (Figures 7-11),
// overhead traces (Figure 12), summary statistics, and CSV export.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"

	"desmask/internal/cpu"
	"desmask/internal/energy"
)

// NoPC marks cycles whose EX stage held a bubble.
const NoPC uint32 = 0xffffffff

// Trace is a per-cycle energy record of one run.
type Trace struct {
	// Totals[i] is the energy (pJ) of cycle i.
	Totals []float64
	// PCs[i] is the program counter of the instruction in EX during cycle i,
	// or NoPC for a bubble. Used to map program regions to cycle windows.
	PCs []uint32
}

// Len returns the number of recorded cycles.
func (t *Trace) Len() int { return len(t.Totals) }

// Recorder is a cpu.Probe that appends every cycle to a Trace, reading each
// committed cycle's energy from the Meter. Attach the Meter to the CPU before
// the Recorder so Meter.Last() holds the current cycle when the Recorder runs.
type Recorder struct {
	Meter *energy.Probe
	T     Trace
}

// Reset drops the recorded trace while keeping the underlying buffer
// capacity, so a pooled recorder can capture run after run without the
// per-cycle append regrowing from zero each time.
func (r *Recorder) Reset() {
	r.T.Totals = r.T.Totals[:0]
	r.T.PCs = r.T.PCs[:0]
}

// Reserve grows the buffers to hold at least n cycles without further
// allocation — the capacity hint comes from the run's cycle budget or the
// length of the previous run in a batch.
func (r *Recorder) Reserve(n int) {
	if n <= 0 {
		return
	}
	if cap(r.T.Totals) < n {
		totals := make([]float64, len(r.T.Totals), n)
		copy(totals, r.T.Totals)
		r.T.Totals = totals
	}
	if cap(r.T.PCs) < n {
		pcs := make([]uint32, len(r.T.PCs), n)
		copy(pcs, r.T.PCs)
		r.T.PCs = pcs
	}
}

// Snapshot copies the recorded trace into exactly-sized slices owned by the
// caller, leaving the recorder free for reuse.
func (r *Recorder) Snapshot(withPCs bool) *Trace {
	t := &Trace{Totals: append([]float64(nil), r.T.Totals...)}
	if withPCs {
		t.PCs = append([]uint32(nil), r.T.PCs...)
	}
	return t
}

// OnCycle implements cpu.Probe.
func (r *Recorder) OnCycle(ci cpu.CycleInfo) {
	r.T.Totals = append(r.T.Totals, r.Meter.LastPJ())
	pc := NoPC
	if ci.U != nil {
		pc = ci.U.PC
	}
	r.T.PCs = append(r.T.PCs, pc)
}

// WindowRecorder records only cycles in [Start, End). Like Recorder, it reads
// energy from a Meter attached earlier in the probe chain.
type WindowRecorder struct {
	Meter      *energy.Probe
	Start, End uint64
	T          Trace
}

// OnCycle implements cpu.Probe.
func (r *WindowRecorder) OnCycle(ci cpu.CycleInfo) {
	if ci.Cycle < r.Start || ci.Cycle >= r.End {
		return
	}
	pc := NoPC
	if ci.U != nil {
		pc = ci.U.PC
	}
	r.T.Totals = append(r.T.Totals, r.Meter.LastPJ())
	r.T.PCs = append(r.T.PCs, pc)
}

// Bucket aggregates the trace into buckets of width cycles, returning the
// mean energy of each bucket — the paper's "every 10 cycles" view (Fig. 6).
// A trailing partial bucket is averaged over its actual size.
func Bucket(totals []float64, width int) []float64 {
	if width <= 0 {
		return nil
	}
	out := make([]float64, 0, (len(totals)+width-1)/width)
	for i := 0; i < len(totals); i += width {
		end := i + width
		if end > len(totals) {
			end = len(totals)
		}
		var sum float64
		for _, v := range totals[i:end] {
			sum += v
		}
		out = append(out, sum/float64(end-i))
	}
	return out
}

// ErrLengthMismatch reports differential traces over runs of unequal length.
var ErrLengthMismatch = errors.New("trace: traces have different cycle counts")

// Diff returns the pointwise difference a-b of two cycle-aligned traces —
// the paper's differential energy profile (Figures 7-11). The runs must be
// cycle-aligned, which holds whenever they execute the same instruction path.
func Diff(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// Stats summarises a series.
type Stats struct {
	N         int
	Mean      float64
	Min, Max  float64
	MaxAbs    float64
	RMS       float64
	NonZeroes int // samples with |v| > 1e-9
}

// Summarize computes summary statistics of a series.
func Summarize(v []float64) Stats {
	s := Stats{N: len(v)}
	if len(v) == 0 {
		return s
	}
	s.Min, s.Max = v[0], v[0]
	var sum, sq float64
	for _, x := range v {
		sum += x
		sq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if a := math.Abs(x); a > s.MaxAbs {
			s.MaxAbs = a
		}
		if math.Abs(x) > 1e-9 {
			s.NonZeroes++
		}
	}
	s.Mean = sum / float64(len(v))
	s.RMS = math.Sqrt(sq / float64(len(v)))
	return s
}

// Window is a half-open cycle interval [Start, End).
type Window struct {
	Start, End int
}

// Len returns the window length in cycles.
func (w Window) Len() int { return w.End - w.Start }

// Clamp bounds the window to the first n cycles, so a window located on a
// full probe run can be applied to budget-limited runs. A window entirely
// past the bound comes back empty (Len() <= 0).
func (w Window) Clamp(n int) Window {
	if w.End > n {
		w.End = n
	}
	if w.Start > w.End {
		w.Start = w.End
	}
	return w
}

// FindWindow locates the cycle window during which execution stayed within
// the program region [loPC, hiPC): the first and last+1 cycles whose EX PC
// falls inside. ok is false when the region was never executed.
func (t *Trace) FindWindow(loPC, hiPC uint32) (Window, bool) {
	start, end := -1, -1
	for i, pc := range t.PCs {
		if pc != NoPC && pc >= loPC && pc < hiPC {
			if start < 0 {
				start = i
			}
			end = i + 1
		}
	}
	if start < 0 {
		return Window{}, false
	}
	return Window{start, end}, true
}

// Slice returns the energy samples of a window.
func (t *Trace) Slice(w Window) []float64 {
	if w.Start < 0 || w.End > len(t.Totals) || w.Start > w.End {
		return nil
	}
	return t.Totals[w.Start:w.End]
}

// TotalPJ returns the sum of all samples.
func TotalPJ(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum
}

// WriteCSV writes aligned columns as CSV with the given headers. Columns may
// have different lengths; missing cells are left empty.
func WriteCSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("trace: %d headers for %d columns", len(headers), len(cols))
	}
	for i, h := range headers {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	rows := 0
	for _, c := range cols {
		if len(c) > rows {
			rows = len(c)
		}
	}
	for r := 0; r < rows; r++ {
		for i, c := range cols {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if r < len(c) {
				if _, err := fmt.Fprintf(w, "%g", c[r]); err != nil {
					return err
				}
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Series generates the x-axis for a bucketed series: the starting cycle of
// each bucket.
func Series(n, width int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i * width)
	}
	return out
}
