package trace

import (
	"bytes"
	"strings"
	"testing"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
)

func TestMetricsCounters(t *testing.T) {
	meter := energy.NewProbe(energy.DefaultConfig())
	m := Metrics{Meter: meter, BinPJ: 5}

	xor := &isa.UOp{Class: isa.ClassXor, Secure: true}
	add := &isa.UOp{Class: isa.ClassAdd}
	for i := uint64(0); i < 4; i++ {
		u := add
		if i%2 == 0 {
			u = xor
		}
		m.OnExec(cpu.ExecEvent{Cycle: i, U: u})
		stepMeter(meter, i, 0xffffffff)
		m.OnCycle(cpu.CycleInfo{Cycle: i, U: u})
	}
	// One bubble cycle: no exec event, no micro-op in EX.
	stepMeter(meter, 4, 0)
	m.OnCycle(cpu.CycleInfo{Cycle: 4, U: nil})

	if m.Cycles != 5 || m.Bubbles != 1 {
		t.Errorf("cycles=%d bubbles=%d, want 5, 1", m.Cycles, m.Bubbles)
	}
	if got := m.Occupancy(); got != 0.8 {
		t.Errorf("occupancy = %g, want 0.8", got)
	}
	if m.ByClass[isa.ClassXor] != 2 || m.ByClass[isa.ClassAdd] != 2 {
		t.Errorf("class counts = %v", m.ByClass)
	}
	if m.Secure != 2 {
		t.Errorf("secure = %d, want 2", m.Secure)
	}
	top := m.TopClasses()
	if len(top) != 2 || top[0].Count != 2 || top[1].Count != 2 {
		t.Errorf("top classes = %v", top)
	}
	// Ties break by class order: Add < Xor.
	if top[0].Class != isa.ClassAdd || top[1].Class != isa.ClassXor {
		t.Errorf("tie order = %v", top)
	}

	var total uint64
	for _, n := range m.Hist {
		total += n
	}
	if total != 5 {
		t.Errorf("histogram covers %d cycles, want 5", total)
	}

	var b bytes.Buffer
	if err := m.WriteHistogram(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "bin_lo_pj,cycles\n") {
		t.Errorf("histogram csv = %q", b.String())
	}
	if strings.Count(b.String(), "\n") < 2 {
		t.Errorf("histogram csv has no bins: %q", b.String())
	}

	m.Reset()
	if m.Cycles != 0 || m.Secure != 0 || m.ByClass[isa.ClassXor] != 0 {
		t.Errorf("reset left counters: %+v", m)
	}
	for i, n := range m.Hist {
		if n != 0 {
			t.Errorf("reset left histogram bin %d = %d", i, n)
		}
	}
}

func TestMetricsWithoutMeter(t *testing.T) {
	var m Metrics
	m.OnCycle(cpu.CycleInfo{Cycle: 0, U: &isa.UOp{}})
	if m.Cycles != 1 || len(m.Hist) != 0 {
		t.Errorf("meterless metrics = %+v", m)
	}
}
