package gang_test

import (
	"errors"
	"fmt"
	"testing"

	"desmask/internal/asm"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/gang"
	"desmask/internal/isa"
	"desmask/internal/mem"
	"desmask/internal/trace"
)

// mixKernel is a data-varying, control-uniform program: every lane loads its
// own input word (poked at DataBase before the run) and runs the same mixing
// loop — loads, stores, secure xors, shifts, a load-use stall, and branches
// that depend only on the loop counter, never on lane data. All lanes
// therefore stay in lockstep to halt.
const mixKernel = `
		.data
in:		.word 0
out:	.word 0
tmp:	.space 16
		.text
main:	lw   $s0, in
		la   $s3, tmp
		li   $t0, 0
		li   $s1, 0
loop:	xor.s $s2, $s0, $s1
		addu.s $s1, $s1, $s2
		sll  $t1, $t0, 2
		addu $t3, $s3, $t1
		sw   $s1, 0($t3)
		lw   $t2, 0($t3)       # load-use stall with the next addu
		addu $s0, $s0, $t2
		srl  $s0, $s0, 1
		addiu $t0, $t0, 1
		slti $at, $t0, 4
		bne  $at, $zero, loop
		sw   $s1, out
		halt
`

// winSampler captures the scalar meter's per-cycle totals inside a window —
// the observation the gang's sample buffers must reproduce bit-for-bit.
type winSampler struct {
	meter      *energy.Probe
	start, end uint64
	buf        []float64
}

func (w *winSampler) OnCycle(ci cpu.CycleInfo) {
	if ci.Cycle >= w.start && ci.Cycle < w.end {
		w.buf = append(w.buf, w.meter.LastPJ())
	}
}

// runScalar executes the program on the cycle-accurate core with input
// poked at DataBase, metering every cycle and sampling [start, end).
func runScalar(t *testing.T, p *asm.Program, input uint32, budget, start, end uint64) (*cpu.CPU, *winSampler, error) {
	t.Helper()
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	meter := energy.NewProbeFor(energy.DefaultConfig(), p.TargetOrDefault())
	s := &winSampler{meter: meter, start: start, end: end}
	c.Attach(meter)
	c.Attach(s)
	if err := c.Mem().StoreWord(p.DataBase, input); err != nil {
		t.Fatal(err)
	}
	return c, s, c.Run(budget)
}

// gangCosim runs the program on a gang with per-lane inputs and on one
// scalar core per lane, and demands every lockstep-completed lane be
// bit-identical to its scalar run: registers, data memory, stats, and the
// windowed per-cycle energy samples.
func gangCosim(t *testing.T, src string, inputs []uint32, budget, start, end uint64) *gang.Engine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	n := len(inputs)
	e, err := gang.New(p, energy.DefaultConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(n); err != nil {
		t.Fatal(err)
	}
	e.SetSampleWindow(start, end)
	bufs := make([][]float64, n)
	for i := range bufs {
		bufs[i] = make([]float64, end-start)
		e.SetLaneSampleBuf(i, bufs[i])
	}
	for i, in := range inputs {
		if err := e.Lane(i).Mem.StoreWord(p.DataBase, in); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(budget)

	for i := range inputs {
		if err := e.LaneErr(i); err != nil {
			continue // deopted lanes are the scalar replay's problem
		}
		c, s, cerr := runScalar(t, p, inputs[i], budget, start, end)
		if cerr != nil {
			t.Fatalf("lane %d: gang completed but scalar failed: %v", i, cerr)
		}
		if cs, gs := c.Stats(), e.Stats(); cs != gs {
			t.Errorf("lane %d stats: scalar %+v, gang %+v", i, cs, gs)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if c.Reg(r) != e.Lane(i).Regs[r] {
				t.Errorf("lane %d reg %v: scalar %#x, gang %#x", i, r, c.Reg(r), e.Lane(i).Regs[r])
			}
		}
		for a := p.DataBase; a < p.DataEnd(); a += 4 {
			cv, _ := c.Mem().LoadWord(a)
			gv, _ := e.Lane(i).Mem.LoadWord(a)
			if cv != gv {
				t.Errorf("lane %d mem[%#x]: scalar %#x, gang %#x", i, a, cv, gv)
			}
		}
		want := s.buf
		got := bufs[i][:len(want)]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("lane %d sample %d: scalar %v, gang %v", i, j, want[j], got[j])
			}
		}
	}
	return e
}

func TestGangLockstepBitIdentity(t *testing.T) {
	inputs := []uint32{0, 1, 0xdeadbeef, 0x0f0f0f0f, 0xffffffff, 42, 0x13579bdf, 0x80000000}
	e := gangCosim(t, mixKernel, inputs, 100000, 0, 200)
	for i := range inputs {
		if err := e.LaneErr(i); err != nil {
			t.Fatalf("lane %d deopted on a lockstep program: %v", i, err)
		}
	}
	if !e.Halted() {
		t.Fatal("gang did not halt")
	}
}

func TestGangMidRunWindow(t *testing.T) {
	// A window opening mid-run: pre-window cycles run the quiet meter path,
	// and the in-window samples must still match a scalar core that metered
	// every cycle from reset.
	inputs := []uint32{7, 0xcafebabe, 0x55555555}
	gangCosim(t, mixKernel, inputs, 100000, 25, 60)
}

func TestGangTraceBitIdentity(t *testing.T) {
	p, err := asm.Assemble(mixKernel)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []uint32{3, 0xfeedface}
	e, err := gang.New(p, energy.DefaultConfig(), len(inputs))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(len(inputs)); err != nil {
		t.Fatal(err)
	}
	e.EnableTrace(0)
	for i, in := range inputs {
		if err := e.Lane(i).Mem.StoreWord(p.DataBase, in); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(100000)

	for i, in := range inputs {
		if err := e.LaneErr(i); err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		c, err := cpu.New(p, mem.New())
		if err != nil {
			t.Fatal(err)
		}
		meter := energy.NewProbeFor(energy.DefaultConfig(), p.TargetOrDefault())
		rec := &trace.Recorder{Meter: meter}
		c.Attach(meter)
		c.Attach(rec)
		if err := c.Mem().StoreWord(p.DataBase, in); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(100000); err != nil {
			t.Fatal(err)
		}
		gt, st := e.LaneTrace(i), &rec.T
		if gt.Len() != st.Len() {
			t.Fatalf("lane %d trace length: gang %d, scalar %d", i, gt.Len(), st.Len())
		}
		for j := range st.Totals {
			if gt.Totals[j] != st.Totals[j] || gt.PCs[j] != st.PCs[j] {
				t.Fatalf("lane %d cycle %d: gang (%v, %#x), scalar (%v, %#x)",
					i, j, gt.Totals[j], gt.PCs[j], st.Totals[j], st.PCs[j])
			}
		}
	}
}

func TestGangDataDependentBranchPeels(t *testing.T) {
	// Lanes branch on their own data: lanes disagreeing with the gang
	// reference (lane 0) peel with a branch-divergence deopt; agreeing lanes
	// complete bit-identically to scalar runs.
	src := `
		.data
in:		.word 0
out:	.word 0
		.text
main:	lw   $t0, in
		li   $t1, 7
		beq  $t0, $t1, seven
		li   $s0, 100
		j    done
seven:	li   $s0, 200
done:	sw   $s0, out
		halt
`
	inputs := []uint32{7, 3, 7, 9}
	e := gangCosim(t, src, inputs, 100000, 0, 50)
	for i, in := range inputs {
		err := e.LaneErr(i)
		if in == 7 {
			if err != nil {
				t.Errorf("lane %d (agrees with reference): unexpected deopt %v", i, err)
			}
			continue
		}
		if !errors.Is(err, gang.ErrDeopt) {
			t.Errorf("lane %d (diverges): err = %v, want ErrDeopt", i, err)
		}
		var d *gang.DeoptError
		if !errors.As(err, &d) || d.Reason != "branch divergence" {
			t.Errorf("lane %d: deopt = %v, want branch divergence", i, err)
		}
	}
}

func TestGangLaneFaultPeels(t *testing.T) {
	// Lane 1's input is a misaligned load address: it faults in MEM and
	// peels with the fault as cause; the other lanes complete.
	src := `
		.data
in:		.word 0
out:	.word 0
		.text
main:	lw   $t0, in
		lw   $t1, 0($t0)
		sw   $t1, out
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	aligned := p.DataBase // points back at the input word: a legal load
	inputs := []uint32{aligned, aligned + 1, aligned}
	e := gangCosim(t, src, inputs, 100000, 0, 30)
	for i, in := range inputs {
		err := e.LaneErr(i)
		if in%4 == 0 {
			if err != nil {
				t.Errorf("lane %d: unexpected deopt %v", i, err)
			}
			continue
		}
		var d *gang.DeoptError
		if !errors.As(err, &d) || d.Reason != "memory fault" || d.Cause == nil {
			t.Errorf("lane %d: deopt = %v, want memory fault with cause", i, err)
		}
	}
}

func TestGangBudgetExpiryKeepsLanesLive(t *testing.T) {
	// Budget expiry is not a deopt: lanes still in lockstep hold the exact
	// scalar partial-run state and stay live (LaneErr nil, Halted false).
	p, err := asm.Assemble("main: j main\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	e, err := gang.New(p, energy.DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(3); err != nil {
		t.Fatal(err)
	}
	e.Run(500)
	if e.Halted() {
		t.Fatal("halted on an infinite loop")
	}
	if got := e.Stats().Cycles; got != 500 {
		t.Fatalf("stepped %d cycles, want exactly the 500 budget", got)
	}
	for i := 0; i < 3; i++ {
		if err := e.LaneErr(i); err != nil {
			t.Errorf("lane %d: err = %v, want live lane at budget expiry", i, err)
		}
	}
}

func TestGangBudgetSweep(t *testing.T) {
	// For every budget around the program's exact cycle count the gang must
	// mirror the scalar core bit-for-bit: halted iff the scalar halted,
	// identical stats and registers even for budget-truncated partial runs.
	src := `
		.text
main:	li   $t0, 5
loop:	addiu $t0, $t0, -1
		bgtz $t0, loop
		halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	total := c.Stats().Cycles
	e, err := gang.New(p, energy.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for budget := uint64(1); budget <= total+3; budget++ {
		cc, _ := cpu.New(p, mem.New())
		cerr := cc.Run(budget)
		if cerr != nil && !errors.Is(cerr, cpu.ErrCycleLimit) {
			t.Fatalf("budget %d: unexpected scalar error %v", budget, cerr)
		}
		if err := e.Reset(2); err != nil {
			t.Fatal(err)
		}
		e.Run(budget)
		for i := 0; i < 2; i++ {
			if gerr := e.LaneErr(i); gerr != nil {
				t.Errorf("budget %d lane %d: unexpected deopt %v", budget, i, gerr)
			}
		}
		if e.Halted() != (cerr == nil) {
			t.Errorf("budget %d: gang halted=%v, scalar err=%v", budget, e.Halted(), cerr)
		}
		if cc.Stats() != e.Stats() {
			t.Errorf("budget %d: stats diverge: %+v vs %+v", budget, cc.Stats(), e.Stats())
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if cc.Reg(r) != e.Lane(0).Regs[r] {
				t.Errorf("budget %d reg %v: scalar %#x, gang %#x", budget, r, cc.Reg(r), e.Lane(0).Regs[r])
			}
		}
	}
}

func TestGangFetchFaultDeoptsAll(t *testing.T) {
	p, err := asm.Assemble("main: nop\nnop\n") // runs off the text segment
	if err != nil {
		t.Fatal(err)
	}
	e, err := gang.New(p, energy.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(2); err != nil {
		t.Fatal(err)
	}
	e.Run(1000)
	for i := 0; i < 2; i++ {
		var d *gang.DeoptError
		if err := e.LaneErr(i); !errors.As(err, &d) || d.Reason != "fetch fault" {
			t.Errorf("lane %d: err = %v, want fetch-fault deopt", i, err)
		}
	}
}

func TestGangResetReuse(t *testing.T) {
	// A reused engine (second Reset+Run, same inputs) must reproduce the
	// first run bit-identically — registers, stats, and samples.
	p, err := asm.Assemble(mixKernel)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	e, err := gang.New(p, energy.DefaultConfig(), n)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []uint32{11, 22, 33, 44}
	run := func() ([][]float64, []uint32, cpu.Stats) {
		if err := e.Reset(n); err != nil {
			t.Fatal(err)
		}
		e.SetSampleWindow(0, 150)
		bufs := make([][]float64, n)
		for i := range bufs {
			bufs[i] = make([]float64, 150)
			e.SetLaneSampleBuf(i, bufs[i])
		}
		for i, in := range inputs {
			if err := e.Lane(i).Mem.StoreWord(p.DataBase, in); err != nil {
				t.Fatal(err)
			}
		}
		e.Run(100000)
		outs := make([]uint32, n)
		for i := 0; i < n; i++ {
			if err := e.LaneErr(i); err != nil {
				t.Fatal(err)
			}
			outs[i], _ = e.Lane(i).Mem.LoadWord(p.DataBase + 4)
		}
		return bufs, outs, e.Stats()
	}
	b1, o1, s1 := run()
	b2, o2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverge across reuse: %+v vs %+v", s1, s2)
	}
	for i := 0; i < n; i++ {
		if o1[i] != o2[i] {
			t.Errorf("lane %d output: %#x vs %#x", i, o1[i], o2[i])
		}
		for j := range b1[i] {
			if b1[i][j] != b2[i][j] {
				t.Fatalf("lane %d sample %d diverges across reuse", i, j)
			}
		}
	}
}

func TestGangWidthOne(t *testing.T) {
	// Degenerate gang of one lane: still exact (it is the reference).
	gangCosim(t, mixKernel, []uint32{0xabad1dea}, 100000, 0, 100)
}

func TestGangNewErrors(t *testing.T) {
	if _, err := gang.New(&asm.Program{}, energy.DefaultConfig(), 4); err == nil {
		t.Error("empty program accepted")
	}
	p, err := asm.Assemble("main: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gang.New(p, energy.DefaultConfig(), 0); err == nil {
		t.Error("width 0 accepted")
	}
	e, err := gang.New(p, energy.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(3); err == nil {
		t.Error("oversize gang accepted")
	}
}

// TestGangManyWidths sweeps gang sizes over a shared engine to catch any
// width-dependent state leakage between runs.
func TestGangManyWidths(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			inputs := make([]uint32, n)
			for i := range inputs {
				inputs[i] = uint32(i) * 0x9e3779b9
			}
			gangCosim(t, mixKernel, inputs, 100000, 0, 120)
		})
	}
}
