// Package gang implements gang-scheduled lockstep execution: N instances
// ("lanes") of the same program stepped through a single shared control
// computation per cycle. Statistics workloads (TVLA, DPA) run one program
// thousands of times with only the data varying, so fetch, decode, stall and
// flush geometry, PC sequencing and latch occupancy — everything
// data-independent — is computed once per cycle and amortized across the
// gang, while the data path (registers, memory, latch data values, energy
// rails) is replicated per lane via cpu.Lane and energy.VecMeter.
//
// The engine reuses the cycle-accurate core's own building blocks rather
// than reimplementing them: cpu.ExecUOp for EX semantics, cpu.LoadUseHazard
// and cpu.ForwardOperands for pipeline geometry, and a vector energy meter
// (energy.VecMeter) whose per-lane, per-cycle totals are bit-identical to an
// energy.Probe on the scalar core. The control flow in step mirrors
// cpu.Step stage for stage (WB, MEM, EX, ID, IF, redirect, commit) so the
// two cannot drift without a test catching it.
//
// Deoptimization contract, mirroring internal/block: lockstep is only valid
// while every lane's control flow is identical. The first lane to reach EX
// each cycle is the gang reference; any lane whose branch outcome or jump
// target diverges from it, or that faults in MEM or EX, is peeled off with a
// *DeoptError (matching ErrDeopt) and replayed from cycle 0 on the
// unmodified scalar core by the session layer (internal/sim). A fatal fetch
// fault — a shared-control condition the gang cannot attribute to one lane —
// deopts every live lane. An expired cycle budget is not a deopt: lockstep
// state is cycle-exact, so lanes still live at expiry hold precisely the
// scalar core's partial-run state (see Run). Results therefore never depend
// on the gang engine: a lane either completes (or is exactly truncated) with
// state bit-identical to a scalar run, or is entirely re-executed by one.
package gang

import (
	"errors"
	"fmt"

	"desmask/internal/asm"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/mem"
	"desmask/internal/trace"
)

// ErrDeopt is the sentinel matched by errors.Is when a lane is abandoned for
// the cycle-accurate core. It is not a failure: the caller replays the lane's
// job on the scalar CPU, which produces the exact result (including the exact
// fault or cycle-limit error, if any).
var ErrDeopt = errors.New("gang: lane deoptimized to the cycle-accurate core")

// DeoptError reports why a lane was peeled off the gang. It matches ErrDeopt
// and unwraps to the underlying cause when one exists.
type DeoptError struct {
	// Reason is a short human-readable cause, for diagnostics and tests.
	Reason string
	// PC is the program counter of the instruction the lane diverged at, or
	// the fetch PC for shared-control deopts.
	PC uint32
	// Cause is the underlying fault, when the reason is a fault.
	Cause error
}

// Error implements error.
func (e *DeoptError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("gang: deopt at pc %#x: %s: %v", e.PC, e.Reason, e.Cause)
	}
	return fmt.Sprintf("gang: deopt at pc %#x: %s", e.PC, e.Reason)
}

// Unwrap returns the underlying fault.
func (e *DeoptError) Unwrap() error { return e.Cause }

// Is matches the ErrDeopt sentinel.
func (e *DeoptError) Is(target error) bool { return target == ErrDeopt }

// latch is the shared control half of a pipeline latch: occupancy plus an
// index into the micro-op table. The data values live in each cpu.Lane.
type latch struct {
	valid bool
	idx   int32
}

// Engine steps up to Width lanes of one program in lockstep. Create with
// New, then per gang run: Reset(n), configure observation (SetSampleWindow /
// SetLaneSampleBuf or EnableTrace), poke per-lane inputs through Lane(i),
// and call Run. Afterwards LaneErr(i) is nil for every lane that completed
// in lockstep — its Lane(i) state and the shared Stats are bit-identical to
// a scalar run — and a *DeoptError for every lane that must be replayed.
type Engine struct {
	prog  *asm.Program
	uops  []isa.UOp
	scale [isa.NumExecClasses]float64
	width int

	meter *energy.VecMeter
	lanes []cpu.Lane

	// Per-run shared control state.
	n       int
	live    []int // lane indices still in lockstep, in lane order
	laneErr []error
	pc      uint32
	ifid    latch
	idex    latch
	exmem   latch
	memwb   latch

	draining bool
	halted   bool
	stats    cpu.Stats

	// Observation. With a sample window, cycles in [sampleStart, sampleEnd)
	// are metered and written to the per-lane buffers; cycles before the
	// window advance rail history quietly; cycles after it skip the meter
	// entirely (nothing downstream can observe them). Trace mode meters and
	// records every cycle.
	sampleStart, sampleEnd uint64
	sampleBufs             [][]float64
	traceOn                bool
	traces                 []trace.Trace

	ev energy.LaneEvents // reused per cycle; no steady-state allocation
}

// New builds a gang engine over the program with capacity for width lanes.
// Like cpu.New it refuses targets that do not declare the five-stage
// pipeline geometry. Call Reset before the first run.
func New(p *asm.Program, cfg energy.Config, width int) (*Engine, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("gang: empty program")
	}
	if width < 1 {
		return nil, fmt.Errorf("gang: width %d < 1", width)
	}
	target := p.TargetOrDefault()
	if spec := target.Pipeline(); spec != isa.FiveStage {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("gang: target %s: %w", target.Name(), err)
		}
		return nil, fmt.Errorf("gang: target %s declares pipeline %+v, but lockstep execution implements only the five-stage geometry %+v",
			target.Name(), spec, isa.FiveStage)
	}
	uops, err := isa.PredecodeProgramFor(target, p.Text, p.TextBase)
	if err != nil {
		return nil, fmt.Errorf("gang: %w", err)
	}
	e := &Engine{
		prog:       p,
		uops:       uops,
		scale:      target.ALUOpScale(),
		width:      width,
		meter:      energy.NewVecMeter(cfg, width),
		lanes:      make([]cpu.Lane, width),
		live:       make([]int, 0, width),
		laneErr:    make([]error, width),
		sampleBufs: make([][]float64, width),
		traces:     make([]trace.Trace, width),
	}
	for i := range e.lanes {
		e.lanes[i].Mem = mem.New()
	}
	return e, nil
}

// Width returns the lane capacity.
func (e *Engine) Width() int { return e.width }

// Size returns the number of lanes in the current gang run.
func (e *Engine) Size() int { return e.n }

// Program returns the program the engine runs.
func (e *Engine) Program() *asm.Program { return e.prog }

// Lane returns lane i's architectural state, for poking inputs before Run
// and reading results after it (only meaningful when LaneErr(i) is nil).
func (e *Engine) Lane(i int) *cpu.Lane { return &e.lanes[i] }

// LaneErr returns nil when lane i completed in lockstep, or the *DeoptError
// that peeled it.
func (e *Engine) LaneErr(i int) error { return e.laneErr[i] }

// Stats returns the shared control statistics of the run — bit-identical to
// the scalar core's Stats for every lane that completed in lockstep.
func (e *Engine) Stats() cpu.Stats { return e.stats }

// Halted reports whether the gang retired a halt.
func (e *Engine) Halted() bool { return e.halted }

// Reset prepares n lanes (1..Width) for a fresh gang run: every lane reset
// exactly as cpu.Reset resets the scalar core, shared control zeroed, meter
// rails cleared, observation disabled.
func (e *Engine) Reset(n int) error {
	if n < 1 || n > e.width {
		return fmt.Errorf("gang: gang size %d out of range 1..%d", n, e.width)
	}
	e.n = n
	e.live = e.live[:0]
	for i := 0; i < n; i++ {
		if err := e.lanes[i].Reset(e.prog); err != nil {
			return err
		}
		e.laneErr[i] = nil
		e.live = append(e.live, i)
	}
	e.meter.Reset(n)
	e.pc = e.prog.Entry
	e.ifid, e.idex, e.exmem, e.memwb = latch{}, latch{}, latch{}, latch{}
	e.draining, e.halted = false, false
	e.stats = cpu.Stats{}
	e.sampleStart, e.sampleEnd = 0, 0
	for i := 0; i < n; i++ {
		e.sampleBufs[i] = nil
	}
	e.traceOn = false
	return nil
}

// SetSampleWindow enables per-cycle energy sampling for cycles in
// [start, end). Lanes record into the buffers registered with
// SetLaneSampleBuf. Call after Reset, before Run.
func (e *Engine) SetSampleWindow(start, end uint64) {
	e.sampleStart, e.sampleEnd = start, end
}

// SetLaneSampleBuf registers lane i's sample buffer: cycle c of the window
// lands in buf[c-start]. The buffer is caller-owned and reusable across gang
// runs — this is what keeps the assessment hot loop allocation-free. A
// buffer shorter than the window records only the cycles it can hold.
func (e *Engine) SetLaneSampleBuf(i int, buf []float64) {
	e.sampleBufs[i] = buf
}

// EnableTrace turns on full per-cycle trace recording (energy total + EX
// PC, the trace.Recorder contract) for every lane, reserving capacity for
// the expected cycle count. Call after Reset, before Run.
func (e *Engine) EnableTrace(reserve int) {
	e.traceOn = true
	for i := 0; i < e.n; i++ {
		t := &e.traces[i]
		t.Totals = t.Totals[:0]
		t.PCs = t.PCs[:0]
		if reserve > 0 && cap(t.Totals) < reserve {
			t.Totals = make([]float64, 0, reserve)
			t.PCs = make([]uint32, 0, reserve)
		}
	}
}

// LaneTrace returns lane i's recorded trace (valid until the next Reset;
// snapshot to keep). Only meaningful after a traced run with LaneErr(i)==nil.
func (e *Engine) LaneTrace(i int) *trace.Trace { return &e.traces[i] }

// Run steps the gang until halt, an all-lane deopt, or the cycle budget.
// Budget expiry is NOT a deopt: lockstep execution is cycle-exact, so a lane
// still live when the budget runs out holds exactly the state a scalar core
// would after cpu.Run returned its *CycleLimitError — same cycle count, same
// registers and memory, same windowed samples. Callers read Halted() to
// distinguish completion from expiry (budget-bounded partial runs are the
// statistics hot path: first-round TVLA windows never run programs to halt,
// and deopting them would replay the entire population on the scalar core).
func (e *Engine) Run(budget uint64) {
	for !e.halted && len(e.live) > 0 {
		if e.stats.Cycles >= budget {
			return
		}
		e.step()
	}
}

// meterSkip/meterQuiet/meterFull select how much energy work a cycle does.
const (
	meterSkip = iota
	meterQuiet
	meterFull
)

// step advances the gang one clock cycle, mirroring cpu.Step's stage order
// exactly: shared control first (WB retire, MEM/EX latch advance, ID stall
// and halt-drain decision, IF fetch), then the per-lane data paths in lane
// order, then the control redirect and latch commit.
func (e *Engine) step() {
	cycle := e.stats.Cycles

	mode := meterSkip
	switch {
	case e.traceOn:
		mode = meterFull
	case e.sampleEnd > e.sampleStart:
		if cycle < e.sampleStart {
			mode = meterQuiet
		} else if cycle < e.sampleEnd {
			mode = meterFull
		}
	}

	oldIFID, oldIDEX, oldEXMEM, oldMEMWB := e.ifid, e.idex, e.exmem, e.memwb

	var wbU, memU, exU, idU *isa.UOp
	if oldMEMWB.valid {
		wbU = &e.uops[oldMEMWB.idx]
	}
	if oldEXMEM.valid {
		memU = &e.uops[oldEXMEM.idx]
	}
	if oldIDEX.valid {
		exU = &e.uops[oldIDEX.idx]
	}
	if oldIFID.valid {
		idU = &e.uops[oldIFID.idx]
	}

	// ---- shared control ---------------------------------------------------
	// WB retire accounting (the register write itself is per lane).
	if wbU != nil {
		e.stats.Insts++
		if wbU.Secure {
			e.stats.SecureInst++
		}
		if wbU.Class == isa.ClassHalt {
			e.halted = true
		}
	}

	newMEMWB := latch{}
	if oldEXMEM.valid {
		newMEMWB = latch{valid: true, idx: oldEXMEM.idx}
	}
	newEXMEM := latch{}
	if oldIDEX.valid {
		newEXMEM = latch{valid: true, idx: oldIDEX.idx}
	}

	// ID: stall geometry and the halt-drain decision, which must land before
	// IF runs this same cycle (exactly as in cpu.Step).
	stall := false
	issued := false
	newIDEX := latch{}
	if idU != nil {
		if exU != nil && cpu.LoadUseHazard(exU, idU) {
			stall = true
			e.stats.Stalls++
		} else {
			issued = true
			newIDEX = latch{valid: true, idx: oldIFID.idx}
			if idU.Class == isa.ClassHalt {
				e.draining = true
			}
		}
	}

	// IF: fetch decision and PC advance.
	newIFID := oldIFID
	fetchFault := false
	fetched := false
	var fetchWord uint32
	if !stall {
		newIFID = latch{}
		if !e.draining {
			idx := (e.pc - e.prog.TextBase) / 4
			if e.pc < e.prog.TextBase || int(idx) >= len(e.uops) || e.pc%4 != 0 {
				fetchFault = true
			} else {
				fetched = true
				fetchWord = e.uops[idx].Word
				newIFID = latch{valid: true, idx: int32(idx)}
				e.pc += 4
			}
		}
	}

	memAccess := memU != nil && (memU.Load || memU.Store)

	// Shared energy charges, in the scalar stage order so every component
	// accumulates identically: RegWrite (WB) before RegRead (ID), the fetch
	// rail last.
	switch mode {
	case meterFull:
		m := e.meter
		m.BeginCycle()
		if wbU != nil && wbU.Dest != isa.Zero {
			m.RegWrite()
		}
		if memAccess {
			m.MemArray()
		}
		if issued {
			m.Decode()
			m.RegRead(int(idU.NSrc))
		}
		if fetched {
			m.Fetch(fetchWord)
		}
		m.EndShared()
	case meterQuiet:
		if fetched {
			e.meter.FetchQuiet(fetchWord)
		}
	}

	// ---- per-lane data paths ----------------------------------------------
	ev := &e.ev
	ev.WB = wbU != nil
	ev.WBSecure = wbU != nil && wbU.Secure
	ev.Mem = memAccess
	ev.MemSecure = memU != nil && memU.Secure
	ev.EX = exU != nil
	if exU != nil {
		ev.EXSecure = exU.Secure
		ev.EXXor = exU.XorUnit
		ev.EXScale = e.scale[exU.Class]
	} else {
		ev.EXSecure, ev.EXXor, ev.EXScale = false, false, 0
	}

	// A uniform cycle — every active event secure under dual-rail precharge —
	// meters identically on every lane (energy is data-independent: the
	// masking property itself). The first live lane meters it for real; the
	// rest copy.
	uniform := mode == meterFull && e.meter.UniformLockstep(ev)
	metered := false
	meteredLane := 0

	redirect := false
	var redirectPC uint32
	haveRef := false
	var refTaken bool
	var refTarget uint32

	keep := e.live[:0]
	for _, li := range e.live {
		ln := &e.lanes[li]
		oldIDA, oldIDB := ln.IDA, ln.IDB
		oldEXOut, oldEXStore := ln.EXOut, ln.EXStore
		oldWBVal := ln.WBVal

		// WB: architectural register write.
		if wbU != nil {
			ev.WBVal = oldWBVal
			if wbU.Dest != isa.Zero {
				ln.Regs[wbU.Dest] = oldWBVal
			}
		}

		// MEM: loads and stores against the lane's private memory. A fault
		// peels the lane — its partially updated state is never observed,
		// the scalar replay starts from reset.
		if memU != nil {
			value := oldEXOut
			switch {
			case memU.Load:
				v, err := ln.Mem.LoadWord(oldEXOut)
				if err != nil {
					e.laneErr[li] = &DeoptError{Reason: "memory fault", PC: memU.PC, Cause: err}
					continue
				}
				value = v
				ev.MemAddr, ev.MemData = oldEXOut, v
			case memU.Store:
				if err := ln.Mem.StoreWord(oldEXOut, oldEXStore); err != nil {
					e.laneErr[li] = &DeoptError{Reason: "memory fault", PC: memU.PC, Cause: err}
					continue
				}
				ev.MemAddr, ev.MemData = oldEXOut, oldEXStore
			}
			ln.WBVal = value
		}

		// EX: forwarding and execution via the scalar core's own ExecUOp.
		// The first lane surviving to EX is the gang reference; lanes whose
		// control outcome differs from it are peeled.
		if exU != nil {
			a, b := cpu.ForwardOperands(exU, oldIDA, oldIDB, memU, oldEXOut, wbU, oldWBVal)
			res, target, taken, err := cpu.ExecUOp(exU, a, b)
			if err != nil {
				e.laneErr[li] = &DeoptError{Reason: "exec fault", PC: exU.PC, Cause: err}
				continue
			}
			if !haveRef {
				haveRef = true
				refTaken, refTarget = taken, target
				if taken {
					redirect, redirectPC = true, target
				}
			} else if taken != refTaken || (taken && target != refTarget) {
				e.laneErr[li] = &DeoptError{Reason: "branch divergence", PC: exU.PC}
				continue
			}
			ev.A, ev.B, ev.R = a, b, res
			ln.EXOut, ln.EXStore = res, b
		}

		// ID: register reads (after this cycle's WB write, as in cpu.Step).
		if issued {
			a := ln.Regs[idU.SrcA]
			b := idU.BConst
			if idU.BReg {
				b = ln.Regs[idU.SrcB]
			}
			ln.IDA, ln.IDB = a, b
		}

		switch mode {
		case meterFull:
			var total float64
			if uniform && metered {
				total = e.meter.CopyLaneCycle(meteredLane, li, ev)
			} else {
				total = e.meter.LaneCycle(li, ev)
				metered, meteredLane = true, li
			}
			if e.traceOn {
				t := &e.traces[li]
				t.Totals = append(t.Totals, total)
				pc := trace.NoPC
				if exU != nil {
					pc = exU.PC
				}
				t.PCs = append(t.PCs, pc)
			} else if buf := e.sampleBufs[li]; buf != nil {
				if i := cycle - e.sampleStart; i < uint64(len(buf)) {
					buf[i] = total
				}
			}
		case meterQuiet:
			e.meter.LaneCycleQuiet(li, ev)
		}

		keep = append(keep, li)
	}
	e.live = keep

	// ---- control redirect --------------------------------------------------
	if redirect {
		if newIDEX.valid {
			e.stats.Flushes++
		}
		if newIFID.valid {
			e.stats.Flushes++
		}
		newIDEX = latch{}
		newIFID = latch{}
		e.pc = redirectPC
		e.draining = false
	}

	// A fetch fault is fatal only once the pipeline has drained with no
	// redirect possible — a shared-control condition, so every live lane
	// deopts and the scalar replay reproduces the exact error.
	if fetchFault && !redirect && !e.draining &&
		!newIFID.valid && !newIDEX.valid && !newEXMEM.valid && !newMEMWB.valid {
		for _, li := range e.live {
			e.laneErr[li] = &DeoptError{Reason: "fetch fault", PC: e.pc}
		}
		e.live = e.live[:0]
		return
	}

	e.ifid, e.idex, e.exmem, e.memwb = newIFID, newIDEX, newEXMEM, newMEMWB
	e.stats.Cycles++
}
