package leakcheck

import (
	"sort"

	"desmask/internal/cpu"
	"desmask/internal/isa"
)

// Probe is the shadow-taint check as a cpu.Probe on the pipelined core
// itself: it replays the taint rules of the standalone Checker from EX-stage
// events alone. Because a control redirect squashes only the ID and IF
// stages, every micro-op that reaches EX also retires, so ExecEvents
// correspond one-to-one with architectural execution — the probe's report is
// identical to the interpreter's on the same run (the differential
// comparator test in probe_test.go pins this).
//
// Attach it to a run whose memory pokes match the taint marked with
// TaintWords/TaintWord; unlike the Checker it does not own the memory image,
// it only shadows it.
type Probe struct {
	tmem   map[uint32]bool
	taint  [isa.NumRegs]bool
	leaks  map[uint32]*Leak
	wasted uint64
	insts  uint64
}

// NewProbe returns an empty taint probe.
func NewProbe() *Probe {
	return &Probe{tmem: map[uint32]bool{}, leaks: map[uint32]*Leak{}}
}

// Reset clears all taint and recorded leaks for a fresh run.
func (p *Probe) Reset() {
	p.tmem = map[uint32]bool{}
	p.taint = [isa.NumRegs]bool{}
	p.leaks = map[uint32]*Leak{}
	p.wasted = 0
	p.insts = 0
}

// TaintWords marks n words starting at addr as secret.
func (p *Probe) TaintWords(addr uint32, n int) {
	for i := 0; i < n; i++ {
		p.tmem[addr+uint32(4*i)] = true
	}
}

// TaintWord sets or clears the taint of one memory word.
func (p *Probe) TaintWord(addr uint32, tainted bool) {
	if tainted {
		p.tmem[addr] = true
	} else {
		delete(p.tmem, addr)
	}
}

// record mirrors Checker.record on micro-ops.
func (p *Probe) record(u *isa.UOp, tainted bool) {
	switch {
	case tainted && !u.Secure:
		l := p.leaks[u.PC]
		if l == nil {
			l = &Leak{PC: u.PC, Inst: u.Inst}
			p.leaks[u.PC] = l
		}
		l.Count++
	case !tainted && u.Secure:
		p.wasted++
	}
}

// OnExec implements cpu.ExecObserver: one architectural execution step of the
// taint machine. Operand taint uses the predecoded routing ($zero is never
// tainted, and no micro-op writes it, so reads through $zero stay clean).
func (p *Probe) OnExec(e cpu.ExecEvent) {
	u := e.U
	p.insts++
	ta := p.taint[u.SrcA]
	tb := false
	if u.BReg {
		tb = p.taint[u.SrcB]
	}
	switch {
	case u.Load:
		// A load is sensitive when the loaded value is tainted OR the
		// address derives from a secret (the secure-indexing condition).
		t := p.tmem[e.Result] || ta
		p.record(u, t)
		p.taint[u.Dest] = t
	case u.Store:
		t := tb || ta
		p.record(u, t)
		p.TaintWord(e.Result, t)
	case u.Class == isa.ClassBeq, u.Class == isa.ClassBne,
		u.Class == isa.ClassBlez, u.Class == isa.ClassBgtz:
		// A tainted condition is a control-flow leak: timing is observable.
		p.record(u, ta || tb)
	case u.Class == isa.ClassJ:
	case u.Class == isa.ClassJal:
		p.taint[u.Dest] = false
	case u.Class == isa.ClassJr:
		p.record(u, ta)
	case u.Class == isa.ClassHalt:
	default:
		// ALU operations (including lui).
		t := ta || tb
		p.record(u, t)
		if u.Dest != isa.Zero {
			p.taint[u.Dest] = t
		}
	}
}

// OnCycle implements cpu.Probe; the taint machine is driven by OnExec only.
func (p *Probe) OnCycle(cpu.CycleInfo) {}

// Report returns the accumulated leak report, identical in shape to the
// standalone Checker's.
func (p *Probe) Report() *Report {
	rep := &Report{SecureInsecureData: p.wasted, Insts: p.insts}
	for _, l := range p.leaks {
		rep.Leaks = append(rep.Leaks, *l)
	}
	sort.Slice(rep.Leaks, func(i, j int) bool { return rep.Leaks[i].PC < rep.Leaks[j].PC })
	return rep
}

// Equal reports whether two reports agree exactly: same leak sites with the
// same dynamic counts, same wasted-masking count, same instruction count.
// It is the differential comparator between the pipeline probe and the
// standalone interpreter.
func (r *Report) Equal(o *Report) bool {
	if r.SecureInsecureData != o.SecureInsecureData || r.Insts != o.Insts ||
		len(r.Leaks) != len(o.Leaks) {
		return false
	}
	for i := range r.Leaks {
		if r.Leaks[i] != o.Leaks[i] {
			return false
		}
	}
	return true
}
