package leakcheck_test

import (
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/leakcheck"
	"desmask/internal/sim"
)

// TestProbeMatchesChecker is the differential comparator: the pipeline taint
// probe, driven only by EX-stage events of the pipelined core, must produce
// exactly the standalone interpreter's report (same leak sites, counts,
// wasted-masking total and instruction count) for the DES workload under
// every policy.
func TestProbeMatchesChecker(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		key       = 0x133457799BBCDFF1
		plaintext = 0x0123456789ABCDEF
	)
	bit := func(v uint64, i int) uint32 { return uint32(v >> (63 - i) & 1) }
	for _, policy := range compiler.Policies() {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			m, err := desprog.New(policy)
			if err != nil {
				t.Fatal(err)
			}
			prog := m.Res.Program
			keyAddr := prog.Symbols[compiler.GlobalLabel("key")]
			ptAddr := prog.Symbols[compiler.GlobalLabel("plaintext")]

			// Pipeline run with the taint probe attached.
			probe := leakcheck.NewProbe()
			probe.TaintWords(keyAddr, 64)
			job, err := m.EncryptJob(key, plaintext, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			job.Probe = sim.SharedProbes(probe)
			res := m.Runner().Run(job)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !res.Done {
				t.Fatal("encryption did not halt")
			}
			got := probe.Report()

			// Interpreter run with identical memory inputs.
			c, err := leakcheck.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				if err := c.SetWord(keyAddr+uint32(4*i), bit(key, i), true); err != nil {
					t.Fatal(err)
				}
				if err := c.SetWord(ptAddr+uint32(4*i), bit(plaintext, i), false); err != nil {
					t.Fatal(err)
				}
			}
			want, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}

			if !got.Equal(want) {
				t.Errorf("probe and interpreter reports diverge:\n probe: insts=%d wasted=%d sites=%d (dyn %d)\n check: insts=%d wasted=%d sites=%d (dyn %d)",
					got.Insts, got.SecureInsecureData, len(got.Leaks), got.LeakCount(),
					want.Insts, want.SecureInsecureData, len(want.Leaks), want.LeakCount())
				for i := range want.Leaks {
					if i < len(got.Leaks) && got.Leaks[i] != want.Leaks[i] {
						t.Errorf("first site mismatch: probe %+v, checker %+v", got.Leaks[i], want.Leaks[i])
						break
					}
				}
			}
		})
	}
}

// TestProbeReset verifies a reused probe reports identically to a fresh one.
func TestProbeReset(t *testing.T) {
	m, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	prog := m.Res.Program
	keyAddr := prog.Symbols[compiler.GlobalLabel("key")]

	run := func(p *leakcheck.Probe) *leakcheck.Report {
		p.TaintWords(keyAddr, 64)
		job, err := m.EncryptJob(0xA5A5F00D42, 0x1122334455667788, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		job.Probe = sim.SharedProbes(p)
		res := m.Runner().Run(job)
		if res.Err != nil || !res.Done {
			t.Fatalf("run failed: err=%v done=%v", res.Err, res.Done)
		}
		return p.Report()
	}

	reused := leakcheck.NewProbe()
	first := run(reused)
	reused.Reset()
	second := run(reused)
	if !first.Equal(second) {
		t.Error("reset probe diverged from its first run")
	}
	if !first.Equal(run(leakcheck.NewProbe())) {
		t.Error("fresh probe diverged from reused probe")
	}
}
