package leakcheck

import (
	"testing"

	"desmask/internal/asm"
	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/kernels"
)

// checkDES compiles DES at a policy, taints the key, runs the checker and
// returns the report plus the declassification region.
func checkDES(t *testing.T, policy compiler.Policy) (*Report, uint32, uint32) {
	t.Helper()
	m, err := desprog.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	prog := m.Res.Program
	c, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	keyAddr := prog.Symbols[compiler.GlobalLabel("key")]
	ptAddr := prog.Symbols[compiler.GlobalLabel("plaintext")]
	for i := 0; i < 64; i++ {
		if err := c.SetWord(keyAddr+uint32(4*i), uint32(i&1), true); err != nil {
			t.Fatal(err)
		}
		if err := c.SetWord(ptAddr+uint32(4*i), uint32((i>>1)&1), false); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	lo := prog.Symbols["f_output_permutation"]
	hi := prog.Symbols["f_main"]
	if lo == 0 || hi == 0 || hi <= lo {
		t.Fatalf("bad declassification region [%#x, %#x)", lo, hi)
	}
	return rep, lo, hi
}

func TestSelectiveDESLeaksOnlyAtDeclassification(t *testing.T) {
	rep, lo, hi := checkDES(t, compiler.PolicySelective)
	outside := rep.LeaksOutsideRegion(lo, hi)
	if len(outside) != 0 {
		for _, l := range outside {
			t.Errorf("leak outside output permutation: pc %#x %v (%d times)", l.PC, l.Inst, l.Count)
		}
	}
	// The declassified output permutation must be the only leaky region,
	// and it must actually appear (public() emits insecure ops over
	// dynamically tainted data by design).
	if rep.LeakCount() == 0 {
		t.Error("expected declassification leaks in the output permutation")
	}
	// Conservatism: some secure instructions run on clean data (e.g. the
	// first-round left-side copy before R is key-dependent... which it is;
	// rather: masked ops over equal-for-all-keys data).
	if rep.Insts == 0 {
		t.Error("no instructions executed")
	}
}

func TestUnprotectedDESLeaksEverywhere(t *testing.T) {
	rep, lo, hi := checkDES(t, compiler.PolicyNone)
	outside := rep.LeaksOutsideRegion(lo, hi)
	if len(outside) < 10 {
		t.Errorf("unprotected DES shows only %d leaky PCs outside output permutation", len(outside))
	}
}

func TestSeedsOnlyDESLeaks(t *testing.T) {
	rep, lo, hi := checkDES(t, compiler.PolicySeedsOnly)
	if len(rep.LeaksOutsideRegion(lo, hi)) == 0 {
		t.Error("seeds-only must leak through derived values")
	}
}

func TestNaiveLoadStoreDESStillLeaks(t *testing.T) {
	// All loads/stores secure, but tainted ALU traffic leaks.
	rep, lo, hi := checkDES(t, compiler.PolicyNaiveLoadStore)
	outside := rep.LeaksOutsideRegion(lo, hi)
	if len(outside) == 0 {
		t.Error("naive load/store masking must leak through ALU operations")
	}
	for _, l := range outside {
		if l.Inst.Op.IsMem() {
			t.Errorf("naive policy leaked through a memory op: %v at %#x", l.Inst, l.PC)
		}
	}
}

func TestAllSecureDESNeverLeaks(t *testing.T) {
	rep, _, _ := checkDES(t, compiler.PolicyAllSecure)
	if rep.LeakCount() != 0 {
		t.Errorf("all-secure leaked %d times: %+v", rep.LeakCount(), rep.Leaks)
	}
	if rep.SecureInsecureData == 0 {
		t.Error("all-secure should waste masking on clean data")
	}
}

func TestKernelsLeakFree(t *testing.T) {
	for _, k := range []kernels.Kernel{kernels.TEA(), kernels.AES128()} {
		m, err := kernels.BuildSimple(k, compiler.PolicySelective)
		if err != nil {
			t.Fatal(err)
		}
		prog := m.Res.Program
		c, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		secretLen := 4
		if k.Name == "aes128" {
			secretLen = 16
		}
		addr := prog.Symbols[compiler.GlobalLabel(k.SecretGlobal)]
		for i := 0; i < secretLen; i++ {
			if err := c.SetWord(addr+uint32(4*i), uint32(i+3), true); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		lo := prog.Symbols["f_emit_output"]
		hi := prog.Symbols["f_main"]
		outside := rep.LeaksOutsideRegion(lo, hi)
		if len(outside) != 0 {
			for _, l := range outside {
				t.Errorf("%s: leak at pc %#x: %v (%d times)", k.Name, l.PC, l.Inst, l.Count)
			}
		}
	}
}

func TestTaintPropagationBasics(t *testing.T) {
	// Hand-written program: taint flows load -> alu -> store; the middle is
	// insecure so three leaks are expected.
	p, err := asm.Assemble(`
		.data
secret:	.word 0
out:	.word 0
		.text
main:	la   $t9, secret
		la   $t8, out
		lw   $t0, 0($t9)      # leak 1: insecure tainted load
		addu $t1, $t0, $t0    # leak 2: insecure tainted alu
		sw   $t1, 0($t8)      # leak 3: insecure tainted store
		lw.s $t2, 0($t9)      # secure: no leak
		xor.s $t3, $t2, $t2   # secure: no leak
		sw.s $t3, 0($t8)      # secure: no leak
		li   $t4, 7           # clean: no leak
		addu $t5, $t4, $t4    # clean: no leak
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	c.TaintWords(p.Symbols["secret"], 1)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaks) != 3 {
		t.Fatalf("leaks = %+v, want 3 distinct PCs", rep.Leaks)
	}
	wantOps := map[int]bool{}
	for _, l := range rep.Leaks {
		wantOps[int(l.Inst.Op)] = true
	}
	if len(wantOps) != 3 {
		t.Errorf("expected load+alu+store leak variety, got %+v", rep.Leaks)
	}
}

func TestTaintedBranchIsALeak(t *testing.T) {
	p, err := asm.Assemble(`
		.data
secret:	.word 1
		.text
main:	la   $t9, secret
		lw.s $t0, 0($t9)
		beq  $t0, $zero, done  # timing leak: condition is tainted
done:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	c.TaintWords(p.Symbols["secret"], 1)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range rep.Leaks {
		if l.Inst.Op.IsBranch() {
			found = true
		}
	}
	if !found {
		t.Errorf("tainted branch not reported: %+v", rep.Leaks)
	}
}

func TestStoreClearsStaleTaint(t *testing.T) {
	// Overwriting a tainted cell with clean data must clear its taint.
	p, err := asm.Assemble(`
		.data
cell:	.word 0
out:	.word 0
		.text
main:	la    $t9, cell
		li    $t0, 5
		sw    $t0, 0($t9)     # clean store clears taint
		lw    $t1, 0($t9)     # clean load: no leak
		sw    $t1, 4($t9)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	c.TaintWords(p.Symbols["cell"], 1)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakCount() != 0 {
		t.Errorf("stale taint not cleared: %+v", rep.Leaks)
	}
}

func TestCheckerErrors(t *testing.T) {
	if _, err := New(&asm.Program{}); err == nil {
		t.Error("empty program accepted")
	}
	p, _ := asm.Assemble("main: j main\nhalt\n")
	c, _ := New(p)
	c.maxInsts = 100
	if _, err := c.Run(); err == nil {
		t.Error("runaway program should fail")
	}
}

func TestCheckProgram(t *testing.T) {
	mSel, err := desprog.New(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	keyAddr := mSel.Res.Program.Symbols[compiler.GlobalLabel("key")]
	rep, err := CheckProgram(mSel.Res.Program, []TaintRange{{Addr: keyAddr, Words: 64}})
	if err != nil {
		t.Fatal(err)
	}
	lo := mSel.Res.Program.Symbols["f_output_permutation"]
	hi := mSel.Res.Program.Symbols["f_main"]
	if outside := rep.LeaksOutsideRegion(lo, hi); len(outside) != 0 {
		t.Fatalf("selective build leaks outside declassification: %d sites", len(outside))
	}
	mNone, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	keyAddr = mNone.Res.Program.Symbols[compiler.GlobalLabel("key")]
	rep, err = CheckProgram(mNone.Res.Program, []TaintRange{{Addr: keyAddr, Words: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakCount() == 0 {
		t.Fatal("unprotected build reported leak-free")
	}
	// No tainted regions: nothing can leak.
	rep, err = CheckProgram(mSel.Res.Program, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaks) != 0 {
		t.Fatalf("untainted run reported %d leak sites", len(rep.Leaks))
	}
}
