// Package leakcheck verifies the masking compiler's output independently of
// the energy model: it executes a program on a functional ISA interpreter
// with shadow taint — every register and memory word carries a "derived from
// a secret" bit — and reports every instruction that processes a tainted
// value without its secure bit set. A correctly masked program reports
// leaks only at its declassification points (the output permutation);
// anything else is a hole the dual-rail datapath would expose to DPA.
//
// This is the dynamic dual of the compiler's static forward slice: the
// compiler decides where secure instructions go; leakcheck confirms, on a
// concrete run, that the decision covered every secret-touching operation.
package leakcheck

import (
	"errors"
	"fmt"
	"sort"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
	"desmask/internal/sim"
)

// Leak is one insecure instruction observed processing tainted data.
type Leak struct {
	PC    uint32
	Inst  isa.Inst
	Count int // dynamic occurrences
}

// Report is the outcome of a checked run.
type Report struct {
	// Leaks aggregates insecure-but-tainted instructions by PC, sorted by
	// address.
	Leaks []Leak
	// SecureInsecureData counts secure instructions that processed only
	// untainted data — wasted masking energy (the over-approximation cost
	// of whole-array taint and blanket policies).
	SecureInsecureData uint64
	// Insts is the number of executed instructions.
	Insts uint64
}

// LeakCount returns the total dynamic leak count.
func (r *Report) LeakCount() int {
	n := 0
	for _, l := range r.Leaks {
		n += l.Count
	}
	return n
}

// LeaksOutsideRegion filters leaks to those outside [lo, hi) — e.g. outside
// the declassifying output permutation.
func (r *Report) LeaksOutsideRegion(lo, hi uint32) []Leak {
	var out []Leak
	for _, l := range r.Leaks {
		if l.PC < lo || l.PC >= hi {
			out = append(out, l)
		}
	}
	return out
}

// TaintRange names one secret input region: Words words starting at Addr.
type TaintRange struct {
	Addr  uint32
	Words int
}

// CheckProgram is the one-call check used by the assessment tools: run prog
// with the given regions poked with fixed nonzero values and tainted,
// returning the taint report. It answers "does this build leak outside its
// declassification points" without the caller wiring a Checker by hand;
// anything subtler (per-word values, batch checks) still uses New/CheckJob.
func CheckProgram(prog *asm.Program, secrets []TaintRange) (*Report, error) {
	c, err := New(prog)
	if err != nil {
		return nil, err
	}
	for _, s := range secrets {
		for i := 0; i < s.Words; i++ {
			// Arbitrary distinct nonzero values; taint, not data, drives the
			// verdict.
			if err := c.SetWord(s.Addr+uint32(4*i), uint32(i)*0x9e37+1, true); err != nil {
				return nil, err
			}
		}
	}
	return c.Run()
}

// CheckJob is one independent leak check: a compiled program plus the taint
// setup that pokes and marks its secret inputs.
type CheckJob struct {
	Prog *asm.Program
	// Setup marks secrets (SetWord/TaintWords) on the fresh checker; nil
	// runs the program with nothing tainted.
	Setup func(c *Checker) error
}

// RunBatch executes independent leak checks across a worker pool
// (workers <= 0 uses GOMAXPROCS), returning reports in job order. Each job
// gets its own checker, so reports are identical for every worker count.
func RunBatch(jobs []CheckJob, workers int) ([]*Report, error) {
	reports := make([]*Report, len(jobs))
	err := sim.ForEach(len(jobs), workers, func(i int) error {
		c, err := New(jobs[i].Prog)
		if err != nil {
			return err
		}
		if jobs[i].Setup != nil {
			if err := jobs[i].Setup(c); err != nil {
				return err
			}
		}
		rep, err := c.Run()
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// Checker executes with shadow taint. Create with New, mark secrets with
// TaintWords, then Run.
type Checker struct {
	prog *asm.Program
	mem  *mem.Memory
	tmem map[uint32]bool // tainted memory words (by address)

	regs  [isa.NumRegs]uint32
	taint [isa.NumRegs]bool
	pc    uint32

	halted bool
	insts  uint64

	leaks  map[uint32]*Leak
	wasted uint64

	maxInsts uint64
	luiShift uint // target's lui shift (15 on PISA, 12 on RV32)
}

// New builds a checker with the program image loaded.
func New(p *asm.Program) (*Checker, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("leakcheck: empty program")
	}
	m := mem.New()
	if err := m.LoadImage(p.DataBase, p.Data); err != nil {
		return nil, err
	}
	c := &Checker{
		prog:     p,
		mem:      m,
		tmem:     map[uint32]bool{},
		pc:       p.Entry,
		leaks:    map[uint32]*Leak{},
		maxInsts: 50_000_000,
		luiShift: p.TargetOrDefault().Limits().LuiShift,
	}
	c.regs[isa.SP] = p.DataEnd() + 4096
	c.regs[isa.GP] = p.DataBase
	return c, nil
}

// Mem exposes the data memory for input poking.
func (c *Checker) Mem() *mem.Memory { return c.mem }

// TaintWords marks n words starting at addr as secret.
func (c *Checker) TaintWords(addr uint32, n int) {
	for i := 0; i < n; i++ {
		c.tmem[addr+uint32(4*i)] = true
	}
}

// SetWord stores a word and its taint.
func (c *Checker) SetWord(addr, v uint32, tainted bool) error {
	if err := c.mem.StoreWord(addr, v); err != nil {
		return err
	}
	if tainted {
		c.tmem[addr] = true
	} else {
		delete(c.tmem, addr)
	}
	return nil
}

// Run executes to halt and returns the report.
func (c *Checker) Run() (*Report, error) {
	for !c.halted {
		if c.insts >= c.maxInsts {
			return nil, fmt.Errorf("leakcheck: exceeded %d instructions", c.maxInsts)
		}
		if err := c.step(); err != nil {
			return nil, err
		}
	}
	rep := &Report{SecureInsecureData: c.wasted, Insts: c.insts}
	for _, l := range c.leaks {
		rep.Leaks = append(rep.Leaks, *l)
	}
	sort.Slice(rep.Leaks, func(i, j int) bool { return rep.Leaks[i].PC < rep.Leaks[j].PC })
	return rep, nil
}

// record notes an instruction processing tainted data without protection, or
// a secure instruction running on clean data.
func (c *Checker) record(pc uint32, in isa.Inst, tainted bool) {
	switch {
	case tainted && !in.Secure:
		l := c.leaks[pc]
		if l == nil {
			l = &Leak{PC: pc, Inst: in}
			c.leaks[pc] = l
		}
		l.Count++
	case !tainted && in.Secure:
		c.wasted++
	}
}

func (c *Checker) step() error {
	idx := (c.pc - c.prog.TextBase) / 4
	if c.pc < c.prog.TextBase || int(idx) >= len(c.prog.Text) || c.pc%4 != 0 {
		return fmt.Errorf("leakcheck: fetch outside text at pc %#x", c.pc)
	}
	in := c.prog.Text[idx]
	pc := c.pc
	c.insts++

	// Operand values and taint, mirroring the ID stage.
	var a, b uint32
	var ta, tb bool
	switch in.Op.Format() {
	case isa.FmtR:
		a, b = c.regs[in.Rs], c.regs[in.Rt]
		ta, tb = c.taint[in.Rs], c.taint[in.Rt]
	case isa.FmtRShift:
		a, b = c.regs[in.Rt], uint32(in.Imm)
		ta = c.taint[in.Rt]
	case isa.FmtRJump:
		a = c.regs[in.Rs]
		ta = c.taint[in.Rs]
	case isa.FmtI:
		a, b = c.regs[in.Rs], uint32(in.Imm)
		ta = c.taint[in.Rs]
	case isa.FmtILui:
		b = uint32(in.Imm)
	case isa.FmtIMem:
		a = c.regs[in.Rs]
		ta = c.taint[in.Rs]
		if in.Op.IsStore() {
			b = c.regs[in.Rt]
			tb = c.taint[in.Rt]
		}
	case isa.FmtIBranch:
		a, b = c.regs[in.Rs], c.regs[in.Rt]
		ta, tb = c.taint[in.Rs], c.taint[in.Rt]
	}

	next := pc + 4
	var destVal uint32
	destTaint := false
	writeDest := false

	switch {
	case in.Op.IsLoad():
		addr := a + uint32(in.Imm)
		v, err := c.mem.LoadWord(addr)
		if err != nil {
			return fmt.Errorf("leakcheck: pc %#x: %w", pc, err)
		}
		// A load is sensitive when the loaded value is tainted OR the
		// address derives from a secret (the secure-indexing condition).
		c.record(pc, in, c.tmem[addr] || ta)
		destVal, destTaint, writeDest = v, c.tmem[addr] || ta, true
	case in.Op.IsStore():
		addr := a + uint32(in.Imm)
		if err := c.mem.StoreWord(addr, b); err != nil {
			return fmt.Errorf("leakcheck: pc %#x: %w", pc, err)
		}
		c.record(pc, in, tb || ta)
		if tb || ta {
			c.tmem[addr] = true
		} else {
			delete(c.tmem, addr)
		}
	case in.Op.IsBranch():
		// Branches are never securable; a tainted condition is a control-
		// flow leak the compiler warns about separately. Record it as a
		// leak here too: timing *is* observable.
		c.record(pc, in, ta || tb)
		taken := false
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlez:
			taken = int32(a) <= 0
		case isa.OpBgtz:
			taken = int32(a) > 0
		}
		if taken {
			next = pc + 4 + uint32(in.Imm)*4
		}
	case in.Op == isa.OpJ:
		next = uint32(in.Imm) * 4
	case in.Op == isa.OpJal:
		destVal, destTaint, writeDest = pc+4, false, true
		next = uint32(in.Imm) * 4
	case in.Op == isa.OpJr:
		c.record(pc, in, ta)
		next = a
	case in.Op == isa.OpHalt:
		c.halted = true
	default:
		// ALU operations.
		res, err := c.aluResult(in, a, b)
		if err != nil {
			return fmt.Errorf("leakcheck: pc %#x: %w", pc, err)
		}
		c.record(pc, in, ta || tb)
		destVal, destTaint, writeDest = res, ta || tb, true
	}

	if writeDest {
		if d, ok := in.Dest(); ok {
			c.regs[d] = destVal
			c.taint[d] = destTaint
		}
	}
	c.pc = next
	return nil
}

// aluResult mirrors the EX-stage semantics for datapath operations.
func (c *Checker) aluResult(in isa.Inst, a, b uint32) (uint32, error) {
	switch in.Op {
	case isa.OpAddu, isa.OpAddiu:
		return a + b, nil
	case isa.OpSubu:
		return a - b, nil
	case isa.OpAnd, isa.OpAndi:
		return a & b, nil
	case isa.OpOr, isa.OpOri:
		return a | b, nil
	case isa.OpXor, isa.OpXori:
		return a ^ b, nil
	case isa.OpNor:
		return ^(a | b), nil
	case isa.OpSll, isa.OpSllv:
		return a << (b & 31), nil
	case isa.OpSrl, isa.OpSrlv:
		return a >> (b & 31), nil
	case isa.OpSra, isa.OpSrav:
		return uint32(int32(a) >> (b & 31)), nil
	case isa.OpSlt, isa.OpSlti:
		if int32(a) < int32(b) {
			return 1, nil
		}
		return 0, nil
	case isa.OpSltu, isa.OpSltiu:
		if a < b {
			return 1, nil
		}
		return 0, nil
	case isa.OpMul:
		return a * b, nil
	case isa.OpLui:
		return b << c.luiShift, nil
	}
	return 0, fmt.Errorf("leakcheck: unimplemented opcode %v", in.Op)
}
