package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTargetRegistry(t *testing.T) {
	names := Targets()
	if len(names) != 2 || names[0] != "pisa" || names[1] != "rv32" {
		t.Fatalf("Targets() = %v, want [pisa rv32]", names)
	}
	for _, name := range []string{"pisa", "PISA", "rv32", "RV32", "Rv32"} {
		tg, ok := TargetByName(name)
		if !ok {
			t.Errorf("TargetByName(%q) not found", name)
			continue
		}
		if tg.Name() != strings.ToLower(name) {
			t.Errorf("TargetByName(%q).Name() = %q", name, tg.Name())
		}
	}
	if _, ok := TargetByName("mips64"); ok {
		t.Error("TargetByName(mips64) succeeded, want miss")
	}
	usage := TargetUsage()
	if !strings.Contains(usage, "pisa") || !strings.Contains(usage, "rv32") {
		t.Errorf("TargetUsage() = %q, want both backend names", usage)
	}
}

// TestPISATargetMatchesFreeFunctions pins the refactor invariant: the PISA
// backend reached through the Target interface is the pre-existing free
// Encode/Decode/Predecode, bit for bit, at every pc (PISA encodings are
// position-independent).
func TestPISATargetMatchesFreeFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		in := randomValidInst(r)
		pc := uint32(r.Intn(1<<16)) * 4
		wFree, errFree := Encode(in)
		wTgt, errTgt := PISA.Encode(in, pc)
		if (errFree == nil) != (errTgt == nil) {
			t.Fatalf("Encode(%v): free err=%v target err=%v", in, errFree, errTgt)
		}
		if errFree != nil {
			continue
		}
		if wFree != wTgt {
			t.Fatalf("Encode(%v): free %#08x != target %#08x", in, wFree, wTgt)
		}
		dFree, err1 := Decode(wFree)
		dTgt, err2 := PISA.Decode(wFree, pc)
		if err1 != nil || err2 != nil || dFree != dTgt {
			t.Fatalf("Decode(%#08x): free (%v,%v) != target (%v,%v)", wFree, dFree, err1, dTgt, err2)
		}
		uFree, err1 := Predecode(in, pc)
		uTgt, err2 := PISA.Predecode(in, pc)
		if err1 != nil || err2 != nil || uFree != uTgt {
			t.Fatalf("Predecode(%v): free (%+v,%v) != target (%+v,%v)", in, uFree, err1, uTgt, err2)
		}
	}
}

// TestRV32EncodeDecodeRoundTrip covers every format the RV32 backend
// supports, secure twins included: Decode(Encode(x, pc), pc) == x.
func TestRV32EncodeDecodeRoundTrip(t *testing.T) {
	const pc = 0x1000
	cases := []Inst{
		{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2},
		{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2, Secure: true},
		{Op: OpSubu, Rd: S0, Rs: S1, Rt: A0},
		{Op: OpMul, Rd: V0, Rs: A0, Rt: A1, Secure: true},
		{Op: OpXor, Rd: T8, Rs: K0, Rt: GP, Secure: true},
		{Op: OpSllv, Rd: T3, Rs: T4, Rt: T5},
		{Op: OpSrav, Rd: FP, Rs: RA, Rt: AT},
		{Op: OpSlt, Rd: T0, Rs: T1, Rt: T2},
		{Op: OpSltu, Rd: T0, Rs: T1, Rt: T2},
		{Op: OpSll, Rd: T0, Rt: T1, Imm: 31},
		{Op: OpSrl, Rd: T0, Rt: T1, Imm: 1, Secure: true},
		{Op: OpSra, Rd: T0, Rt: T1, Imm: 12},
		{Op: OpJr, Rs: RA},
		{Op: OpAddiu, Rt: T0, Rs: T1, Imm: -2048},
		{Op: OpAddiu, Rt: T0, Rs: T1, Imm: 2047, Secure: true},
		{Op: OpSlti, Rt: T0, Rs: T1, Imm: -5},
		{Op: OpSltiu, Rt: T0, Rs: T1, Imm: 100},
		{Op: OpXori, Rt: T0, Rs: T0, Imm: -1, Secure: true},
		{Op: OpOri, Rt: T0, Rs: T1, Imm: 0x7ff},
		{Op: OpAndi, Rt: T0, Rs: T1, Imm: 0x155, Secure: true},
		{Op: OpLui, Rt: T0, Imm: 0xfffff},
		{Op: OpLui, Rt: T0, Imm: 1, Secure: true},
		{Op: OpLw, Rt: V0, Rs: SP, Imm: -8},
		{Op: OpLw, Rt: V0, Rs: GP, Imm: 2047, Secure: true},
		{Op: OpSw, Rt: A0, Rs: SP, Imm: -2048},
		{Op: OpSw, Rt: A0, Rs: GP, Imm: 4, Secure: true},
		{Op: OpBeq, Rs: T0, Rt: T1, Imm: 3},
		{Op: OpBne, Rs: T0, Rt: T1, Imm: -1025},
		{Op: OpBeq, Rs: T0, Rt: Zero, Imm: 1022},
		{Op: OpBlez, Rs: V0, Imm: -2},
		{Op: OpBgtz, Rs: V0, Imm: 0},
		{Op: OpJ, Imm: 0x2000 / 4},
		{Op: OpJ, Imm: 0},
		{Op: OpJal, Imm: 0x1f00 / 4},
		{Op: OpHalt},
	}
	for _, in := range cases {
		w, err := RV32.Encode(in, pc)
		if err != nil {
			t.Errorf("RV32.Encode(%v): %v", in, err)
			continue
		}
		out, err := RV32.Decode(w, pc)
		if err != nil {
			t.Errorf("RV32.Decode(%#08x) [%v]: %v", w, in, err)
			continue
		}
		if out != in {
			t.Errorf("roundtrip %v -> %#08x -> %v", in, w, out)
		}
		// Secure twins must land on distinct major opcodes so the memory
		// image itself distinguishes masked instructions.
		if in.Secure {
			plain := in
			plain.Secure = false
			wp, err := RV32.Encode(plain, pc)
			if err != nil {
				t.Errorf("RV32.Encode(%v): %v", plain, err)
				continue
			}
			if wp&0x7f == w&0x7f {
				t.Errorf("%v: secure and plain share major opcode %#02x", in, w&0x7f)
			}
		}
	}
}

func TestRV32EncodeErrors(t *testing.T) {
	const pc = 0x1000
	cases := []struct {
		name string
		in   Inst
	}{
		{"nor has no native encoding", Inst{Op: OpNor, Rd: T0, Rs: T1, Rt: T2}},
		{"imm below range", Inst{Op: OpAddiu, Rt: T0, Rs: T1, Imm: -2049}},
		{"imm above range", Inst{Op: OpAddiu, Rt: T0, Rs: T1, Imm: 2048}},
		{"ori beyond 12 bits", Inst{Op: OpOri, Rt: T0, Rs: T1, Imm: 0x8000}},
		{"lui beyond 20 bits", Inst{Op: OpLui, Rt: T0, Imm: 0x100000}},
		{"displacement out of range", Inst{Op: OpLw, Rt: T0, Rs: T1, Imm: 0x7fff}},
		{"branch out of range", Inst{Op: OpBeq, Rs: T0, Rt: T1, Imm: 1023}},
		{"secure branch", Inst{Op: OpBeq, Rs: T0, Rt: T1, Imm: 1, Secure: true}},
		{"jump out of range", Inst{Op: OpJ, Imm: (1 << 21) / 4}},
	}
	for _, c := range cases {
		if _, err := RV32.Encode(c.in, pc); err == nil {
			t.Errorf("%s: RV32.Encode(%v) succeeded, want error", c.name, c.in)
		}
	}
}

// TestRV32DecodeNeverPanics feeds arbitrary words to the RV32 decoder.
func TestRV32DecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		in, err := RV32.Decode(w, 0x1000)
		if err != nil {
			return in.Op == OpInvalid
		}
		return in.Op.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestRV32RegisterBijection pins the architectural->physical register map as
// a bijection, so cross-target programs agree on register identity.
func TestRV32RegisterBijection(t *testing.T) {
	seen := map[uint8]Reg{}
	for r := Reg(0); r < NumRegs; r++ {
		phys := rv32Phys[r]
		if prev, dup := seen[phys]; dup {
			t.Fatalf("registers %v and %v both map to x%d", prev, r, phys)
		}
		seen[phys] = r
		if rv32Arch[phys] != r {
			t.Errorf("rv32Arch[rv32Phys[%v]] = %v, want identity", r, rv32Arch[phys])
		}
	}
	if rv32Phys[Zero] != 0 || rv32Phys[SP] != 2 || rv32Phys[GP] != 3 || rv32Phys[RA] != 1 {
		t.Error("ABI anchor registers moved: want zero->x0 ra->x1 sp->x2 gp->x3")
	}
	if name := RV32.RegName(SP); name != "sp" {
		t.Errorf("RV32.RegName(SP) = %q, want sp", name)
	}
}

// TestRV32Expansions checks the pseudo-instruction recipes: materialized
// values, secure-bit propagation, and per-inst encodability.
func TestRV32Expansions(t *testing.T) {
	vals := []int32{0, 1, -1, 2047, -2048, 2048, 0x1234, -0x1234, 0x7fffffff, -0x80000000, 0x12345678}
	for _, v := range vals {
		for _, secure := range []bool{false, true} {
			seq := RV32.LoadImm(T0, v, secure)
			var acc uint32
			for i, in := range seq {
				if in.Secure != secure {
					t.Errorf("LoadImm(%#x, secure=%v)[%d]: secure bit %v", v, secure, i, in.Secure)
				}
				if _, err := RV32.Encode(in, uint32(4*i)); err != nil {
					t.Errorf("LoadImm(%#x)[%d] %v: %v", v, i, in, err)
				}
				switch in.Op {
				case OpLui:
					acc = uint32(in.Imm) << 12
				case OpAddiu:
					acc += uint32(in.Imm)
				}
			}
			if acc != uint32(v) {
				t.Errorf("LoadImm(%#x) materializes %#x", v, acc)
			}
		}
	}
	// MemDirect: the address-forming lui stays insecure (the address is
	// public data-layout information), the access itself carries the bit.
	seq := RV32.MemDirect(OpLw, V0, 0x10008, true)
	if len(seq) != 2 || seq[0].Op != OpLui || seq[0].Secure || !seq[1].Secure {
		t.Fatalf("MemDirect = %v, want insecure lui + secure lw", seq)
	}
	addr := uint32(seq[0].Imm)<<12 + uint32(seq[1].Imm)
	if addr != 0x10008 {
		t.Errorf("MemDirect address %#x, want 0x10008", addr)
	}
	// Nor: legalized or + xori -1, both masked.
	nor := RV32.Nor(T0, T1, T2, true)
	if len(nor) != 2 || nor[0].Op != OpOr || nor[1].Op != OpXori || nor[1].Imm != -1 {
		t.Fatalf("Nor = %v, want or + xori -1", nor)
	}
	for _, in := range nor {
		if !in.Secure {
			t.Errorf("Nor expansion %v lost the secure bit", in)
		}
	}
}

// TestRV32PredecodeLuiClass pins the lui split: RV32 lui shifts by 12 via
// its own exec class while PISA keeps the historical 15-bit class, so PISA
// micro-op tables (and golden traces) are untouched by the new backend.
func TestRV32PredecodeLuiClass(t *testing.T) {
	in := Inst{Op: OpLui, Rt: T0, Imm: 5}
	u, err := RV32.Predecode(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Class != ClassLui12 {
		t.Errorf("RV32 lui class = %v, want ClassLui12", u.Class)
	}
	up, err := PISA.Predecode(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if up.Class != ClassLui {
		t.Errorf("PISA lui class = %v, want ClassLui", up.Class)
	}
}

// TestRV32BranchOffsetSemantics pins the semantic reading of branch and
// jump immediates across the pc-relative encoding: Imm counts words from
// pc+4 for branches and absolute words for jumps, at any pc.
func TestRV32BranchOffsetSemantics(t *testing.T) {
	for _, pc := range []uint32{0, 0x1000, 0x7ffc} {
		br := Inst{Op: OpBne, Rs: T0, Rt: T1, Imm: 7}
		w, err := RV32.Encode(br, pc)
		if err != nil {
			t.Fatalf("pc=%#x: %v", pc, err)
		}
		out, err := RV32.Decode(w, pc)
		if err != nil || out.Imm != 7 {
			t.Errorf("pc=%#x: branch imm %d err=%v, want 7", pc, out.Imm, err)
		}
		j := Inst{Op: OpJ, Imm: int32((pc + 0x400) / 4)}
		w, err = RV32.Encode(j, pc)
		if err != nil {
			t.Fatalf("pc=%#x: %v", pc, err)
		}
		out, err = RV32.Decode(w, pc)
		if err != nil || out.Imm != j.Imm {
			t.Errorf("pc=%#x: jump target %d err=%v, want %d", pc, out.Imm, err, j.Imm)
		}
	}
}
