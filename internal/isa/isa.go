// Package isa defines the instruction set architecture of the simulated
// smart-card processor: a 32-bit in-order integer RISC core in the
// SimpleScalar/MIPS tradition, representative of embedded cores such as the
// ARM7-TDMI, augmented with the paper's security extension — a per-instruction
// secure bit that activates the dual-rail, precharged datapath for that
// instruction so its energy consumption becomes independent of operand data.
//
// The package provides the opcode space, instruction formats, register file
// naming, binary encoding/decoding, and disassembly. Assembly parsing lives in
// package asm; execution semantics live in package cpu.
package isa

import "fmt"

// Reg identifies one of the 32 general-purpose registers. Register 0 is
// hardwired to zero, as in MIPS.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 32

// Conventional register assignments (MIPS o32-flavoured). The compiler and
// assembler use these roles; the hardware treats all registers (except Zero)
// uniformly.
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // function results
	V1   Reg = 3
	A0   Reg = 4 // function arguments
	A1   Reg = 5
	A2   Reg = 6
	A3   Reg = 7
	T0   Reg = 8 // caller-saved temporaries
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // reserved
	K1   Reg = 27
	GP   Reg = 28 // global pointer
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional ABI name, e.g. "$t0".
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$?%d", uint8(r))
}

// RegByName resolves either an ABI name ("$t0", "t0") or a numeric name
// ("$8", "8") to a register.
func RegByName(name string) (Reg, bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	// Numeric form.
	var v int
	if _, err := fmt.Sscanf(name, "%d", &v); err == nil && v >= 0 && v < NumRegs {
		return Reg(v), true
	}
	return 0, false
}

// Opcode enumerates the machine operations. The numeric value is the 6-bit
// opcode field of the binary encoding.
type Opcode uint8

// Machine opcodes. The zero value is reserved as invalid so that an
// all-zeroes word does not decode to a legal instruction.
const (
	OpInvalid Opcode = iota

	// R-type ALU, three registers: rd <- rs OP rt.
	OpAddu
	OpSubu
	OpAnd
	OpOr
	OpXor
	OpNor
	OpSllv // rd <- rs << (rt & 31)
	OpSrlv
	OpSrav
	OpSlt
	OpSltu
	OpMul // low 32 bits of rs*rt

	// R-type shifts by immediate amount: rd <- rt SHIFT shamt.
	OpSll
	OpSrl
	OpSra

	// R-type jumps.
	OpJr // PC <- rs

	// I-type ALU: rt <- rs OP imm.
	OpAddiu
	OpAndi
	OpOri
	OpXori
	OpSlti
	OpSltiu
	OpLui // rt <- imm << 15 (so lui+ori tile a 30-bit space with 15-bit fields)

	// Memory: address rs+imm.
	OpLw // rt <- mem[rs+imm]
	OpSw // mem[rs+imm] <- rt

	// Branches: PC-relative, imm counts words from the delay-free next PC.
	OpBeq
	OpBne
	OpBlez // rs <= 0
	OpBgtz // rs > 0

	// J-type.
	OpJ
	OpJal

	// System.
	OpHalt // stop simulation; v0 holds exit status

	numOpcodes // must be last; encoding uses 6 bits (max 64)
)

// Format describes how an instruction's operand fields are laid out and
// printed.
type Format uint8

const (
	FmtUnknown Format = iota
	FmtR              // op rd, rs, rt
	FmtRShift         // op rd, rt, shamt
	FmtRJump          // op rs
	FmtI              // op rt, rs, imm
	FmtILui           // op rt, imm
	FmtIMem           // op rt, imm(rs)
	FmtIBranch        // op rs, rt, label   (blez/bgtz: op rs, label)
	FmtJ              // op target
	FmtNone           // op
)

type opInfo struct {
	name   string
	format Format
	// securable reports whether hardware honours the secure bit for this
	// opcode (i.e. whether a dual-rail variant exists). The paper defines
	// secure load, store, XOR, shift, assignment (move = addu) and indexing
	// (address-forming addu + lw); we let every datapath op be securable and
	// leave policy to the compiler.
	securable bool
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {"invalid", FmtNone, false},
	OpAddu:    {"addu", FmtR, true},
	OpSubu:    {"subu", FmtR, true},
	OpAnd:     {"and", FmtR, true},
	OpOr:      {"or", FmtR, true},
	OpXor:     {"xor", FmtR, true},
	OpNor:     {"nor", FmtR, true},
	OpSllv:    {"sllv", FmtR, true},
	OpSrlv:    {"srlv", FmtR, true},
	OpSrav:    {"srav", FmtR, true},
	OpSlt:     {"slt", FmtR, true},
	OpSltu:    {"sltu", FmtR, true},
	OpMul:     {"mul", FmtR, true},
	OpSll:     {"sll", FmtRShift, true},
	OpSrl:     {"srl", FmtRShift, true},
	OpSra:     {"sra", FmtRShift, true},
	OpJr:      {"jr", FmtRJump, false},
	OpAddiu:   {"addiu", FmtI, true},
	OpAndi:    {"andi", FmtI, true},
	OpOri:     {"ori", FmtI, true},
	OpXori:    {"xori", FmtI, true},
	OpSlti:    {"slti", FmtI, true},
	OpSltiu:   {"sltiu", FmtI, true},
	OpLui:     {"lui", FmtILui, true},
	OpLw:      {"lw", FmtIMem, true},
	OpSw:      {"sw", FmtIMem, true},
	OpBeq:     {"beq", FmtIBranch, false},
	OpBne:     {"bne", FmtIBranch, false},
	OpBlez:    {"blez", FmtIBranch, false},
	OpBgtz:    {"bgtz", FmtIBranch, false},
	OpJ:       {"j", FmtJ, false},
	OpJal:     {"jal", FmtJ, false},
	OpHalt:    {"halt", FmtNone, false},
}

// Valid reports whether op names a real machine operation.
func (op Opcode) Valid() bool { return op > OpInvalid && op < numOpcodes }

// String returns the base mnemonic, e.g. "addu".
func (op Opcode) String() string {
	if op < numOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Format returns the operand layout of the opcode.
func (op Opcode) Format() Format {
	if op < numOpcodes {
		return opTable[op].format
	}
	return FmtUnknown
}

// Securable reports whether a dual-rail secure variant of op exists in
// hardware.
func (op Opcode) Securable() bool {
	if op < numOpcodes {
		return opTable[op].securable
	}
	return false
}

// OpcodeByName resolves a base mnemonic (no secure prefix/suffix).
func OpcodeByName(name string) (Opcode, bool) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return OpInvalid, false
}

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlez, OpBgtz:
		return true
	}
	return false
}

// IsJump reports whether op unconditionally redirects control flow.
func (op Opcode) IsJump() bool {
	switch op {
	case OpJ, OpJal, OpJr:
		return true
	}
	return false
}

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool { return op == OpLw }

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool { return op == OpSw }

// IsMem reports whether op accesses data memory.
func (op Opcode) IsMem() bool { return op.IsLoad() || op.IsStore() }

// Inst is a decoded instruction. It is the exchange type between the
// assembler, the encoder and the pipeline.
type Inst struct {
	Op     Opcode
	Secure bool // execute on the dual-rail precharged datapath
	Rd     Reg  // destination (R-type)
	Rs     Reg  // first source / base / branch lhs
	Rt     Reg  // second source / I-type destination / branch rhs
	Imm    int32
	// Imm holds, depending on format: the sign-extended 15-bit immediate
	// (FmtI, FmtIMem, FmtIBranch displacement in words), the unsigned 15-bit
	// upper immediate (FmtILui), the 5-bit shift amount (FmtRShift), or the
	// 25-bit absolute word target (FmtJ).
}

// Mnemonic returns the full mnemonic including the secure marker, e.g.
// "lw.s". The assembler also accepts the paper's "slw"/"ssw" spellings.
func (i Inst) Mnemonic() string {
	m := i.Op.String()
	if i.Secure {
		m += ".s"
	}
	return m
}

// Nop returns the canonical no-operation instruction (sll $zero,$zero,0).
func Nop() Inst { return Inst{Op: OpSll, Rd: Zero, Rt: Zero, Imm: 0} }

// IsNop reports whether i has no architectural effect.
func (i Inst) IsNop() bool {
	return i.Op == OpSll && i.Rd == Zero && i.Rt == Zero && i.Imm == 0
}

// Dest returns the register written by the instruction and whether it writes
// one at all. Writes to $zero are reported as no write.
func (i Inst) Dest() (Reg, bool) {
	var d Reg
	switch i.Op.Format() {
	case FmtR, FmtRShift:
		d = i.Rd
	case FmtI, FmtILui, FmtIMem:
		if i.Op.IsStore() {
			return 0, false
		}
		d = i.Rt
	case FmtJ:
		if i.Op == OpJal {
			return RA, true
		}
		return 0, false
	default:
		return 0, false
	}
	if d == Zero {
		return 0, false
	}
	return d, true
}

// Sources returns the registers read by the instruction.
func (i Inst) Sources() []Reg {
	switch i.Op.Format() {
	case FmtR:
		return []Reg{i.Rs, i.Rt}
	case FmtRShift:
		return []Reg{i.Rt}
	case FmtRJump:
		return []Reg{i.Rs}
	case FmtI:
		return []Reg{i.Rs}
	case FmtILui:
		return nil
	case FmtIMem:
		if i.Op.IsStore() {
			return []Reg{i.Rs, i.Rt}
		}
		return []Reg{i.Rs}
	case FmtIBranch:
		if i.Op == OpBlez || i.Op == OpBgtz {
			return []Reg{i.Rs}
		}
		return []Reg{i.Rs, i.Rt}
	}
	return nil
}

// String disassembles the instruction with numeric branch/jump targets.
func (i Inst) String() string {
	m := i.Mnemonic()
	switch i.Op.Format() {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", m, i.Rd, i.Rs, i.Rt)
	case FmtRShift:
		return fmt.Sprintf("%s %s, %s, %d", m, i.Rd, i.Rt, i.Imm)
	case FmtRJump:
		return fmt.Sprintf("%s %s", m, i.Rs)
	case FmtI:
		return fmt.Sprintf("%s %s, %s, %d", m, i.Rt, i.Rs, i.Imm)
	case FmtILui:
		return fmt.Sprintf("%s %s, %d", m, i.Rt, i.Imm)
	case FmtIMem:
		return fmt.Sprintf("%s %s, %d(%s)", m, i.Rt, i.Imm, i.Rs)
	case FmtIBranch:
		if i.Op == OpBlez || i.Op == OpBgtz {
			return fmt.Sprintf("%s %s, %+d", m, i.Rs, i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %+d", m, i.Rs, i.Rt, i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s 0x%x", m, uint32(i.Imm)<<2)
	case FmtNone:
		return m
	}
	return m + " ???"
}
