package isa

import "testing"

func uopsOf(classes ...ExecClass) []UOp {
	uops := make([]UOp, len(classes))
	for i, c := range classes {
		uops[i] = UOp{Class: c, PC: uint32(4 * i)}
	}
	return uops
}

func TestTermKindOf(t *testing.T) {
	want := map[ExecClass]TermKind{
		ClassBeq: TermBranch, ClassBne: TermBranch,
		ClassBlez: TermBranch, ClassBgtz: TermBranch,
		ClassJ: TermJump, ClassJal: TermJal, ClassJr: TermJr,
		ClassHalt: TermHalt,
	}
	for c := ExecClass(0); c < NumExecClasses; c++ {
		k, ok := want[c]
		if !ok {
			k = TermNone
		}
		if got := TermKindOf(c); got != k {
			t.Errorf("TermKindOf(%v) = %v, want %v", c, got, k)
		}
	}
}

func TestScanBlock(t *testing.T) {
	uops := uopsOf(ClassAdd, ClassMem, ClassBne, ClassXor, ClassOr, ClassHalt)
	cases := []struct {
		start int
		want  BasicBlock
	}{
		{0, BasicBlock{Start: 0, N: 3, Term: TermBranch}},
		// Entry into the branch's fall-through path.
		{3, BasicBlock{Start: 3, N: 3, Term: TermHalt}},
		// Entry overlapping the first block: discovery is per entry point.
		{1, BasicBlock{Start: 1, N: 2, Term: TermBranch}},
		// Entry directly at a terminator: a one-op block.
		{2, BasicBlock{Start: 2, N: 1, Term: TermBranch}},
		{5, BasicBlock{Start: 5, N: 1, Term: TermHalt}},
	}
	for _, c := range cases {
		if got := ScanBlock(uops, c.start); got != c.want {
			t.Errorf("ScanBlock(start=%d) = %+v, want %+v", c.start, got, c.want)
		}
	}

	// A block running off the end of the text segment has no terminator.
	open := uopsOf(ClassAdd, ClassSub)
	if got := ScanBlock(open, 0); got != (BasicBlock{Start: 0, N: 2, Term: TermNone}) {
		t.Errorf("open-ended block = %+v", got)
	}
}

func TestPipelineSpecValidate(t *testing.T) {
	if err := FiveStage.Validate(); err != nil {
		t.Fatalf("FiveStage invalid: %v", err)
	}
	bad := []PipelineSpec{
		{},
		{Stages: 5, BranchResolveStage: 5, LoadUseStall: 1, FlushSlots: 2, FillLatency: 2, DrainLatency: 2},
		{Stages: 5, BranchResolveStage: 2, LoadUseStall: -1, FlushSlots: 2, FillLatency: 2, DrainLatency: 2},
		// FillLatency disagreeing with the branch resolution stage.
		{Stages: 5, BranchResolveStage: 2, LoadUseStall: 1, FlushSlots: 2, FillLatency: 3, DrainLatency: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) unexpectedly valid", i, s)
		}
	}
}

// TestTargetsDeclareFiveStage pins the current state of the backend registry:
// every registered target declares the five-stage geometry, so every target
// is block compilable and accepted by the cycle-accurate core.
func TestTargetsDeclareFiveStage(t *testing.T) {
	for _, name := range Targets() {
		target, ok := TargetByName(name)
		if !ok {
			t.Fatalf("registry lists unknown target %q", name)
		}
		spec := target.Pipeline()
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if spec != FiveStage {
			t.Errorf("%s: pipeline %+v, want FiveStage", name, spec)
		}
		if !BlockCompilable(target) {
			t.Errorf("%s: not block compilable", name)
		}
	}
	if !BlockCompilable(nil) {
		t.Error("nil target (PISA default) should be block compilable")
	}
	if FiveStage.RedirectPenalty() != 3 {
		t.Errorf("FiveStage redirect penalty %d, want 3", FiveStage.RedirectPenalty())
	}
}
