package isa

import "fmt"

// PipelineSpec describes the pipeline geometry of a target's core as data:
// the constants that used to live implicitly in internal/cpu's five-stage
// control logic (branch resolution stage, load-use latency, flush depth) plus
// the fill/drain latencies that position an instruction's EX cycle within a
// run. Hoisting them onto the Target makes block-effect precomputation
// (internal/block) per-target: a block's stall count, redirect penalty and
// retire timing are derived from this spec, never from hard-coded numbers.
//
// The cycle-accurate core in internal/cpu implements exactly one geometry —
// the classic five-stage in-order IF/ID/EX/MEM/WB machine — and validates at
// construction that the program's target declares it (FiveStage). A target
// declaring any other geometry is rejected by the pipelined core and by the
// block translator, so the two engines can never silently disagree about
// timing.
type PipelineSpec struct {
	// Stages is the pipeline depth (5: IF, ID, EX, MEM, WB).
	Stages int
	// BranchResolveStage is the zero-based stage index where control flow
	// resolves (2 = EX). A taken branch squashes the FlushSlots younger
	// stages, so the redirect penalty is FlushSlots + 1 cycles between the
	// branch's and the target's EX occupancy.
	BranchResolveStage int
	// LoadUseStall is the number of bubble cycles inserted between a load
	// and an immediately dependent consumer (1: the loaded value is
	// available after MEM, one stage past EX forwarding).
	LoadUseStall int
	// FlushSlots is the number of younger in-flight instructions squashed by
	// a taken branch or jump (2: the ID and IF occupants).
	FlushSlots int
	// FillLatency is the number of cycles between an instruction's fetch and
	// its EX occupancy (2: IF and ID), which places the first instruction of
	// a run at EX cycle FillLatency.
	FillLatency int
	// DrainLatency is the number of cycles between an instruction's EX
	// occupancy and its retirement at end of WB (2: MEM and WB). A program
	// that halts at EX cycle E finishes with E + 1 + DrainLatency total
	// cycles.
	DrainLatency int
}

// FiveStage is the classic in-order five-stage geometry implemented by the
// cycle-accurate core in internal/cpu: branches resolve in EX with a
// two-slot flush, loads stall a dependent consumer one cycle, and every
// instruction spends two cycles filling (IF, ID) and two draining (MEM, WB).
var FiveStage = PipelineSpec{
	Stages:             5,
	BranchResolveStage: 2,
	LoadUseStall:       1,
	FlushSlots:         2,
	FillLatency:        2,
	DrainLatency:       2,
}

// RedirectPenalty returns the EX-to-EX distance between a taken control
// transfer and its target: the squashed slots plus the transfer's own slot.
func (s PipelineSpec) RedirectPenalty() int { return s.FlushSlots + 1 }

// Validate rejects specs with non-positive or mutually inconsistent fields.
func (s PipelineSpec) Validate() error {
	if s.Stages <= 0 || s.BranchResolveStage < 0 || s.BranchResolveStage >= s.Stages ||
		s.LoadUseStall < 0 || s.FlushSlots < 0 || s.FillLatency < 0 || s.DrainLatency < 0 {
		return fmt.Errorf("isa: invalid pipeline spec %+v", s)
	}
	if s.FillLatency != s.BranchResolveStage {
		return fmt.Errorf("isa: pipeline spec %+v: fill latency must equal the branch resolution stage (EX position)", s)
	}
	return nil
}
