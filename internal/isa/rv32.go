package isa

import "fmt"

// rv32Target is an RV32I(+M mul)-flavoured backend with a secure-op
// extension in the custom opcode space, modelled on the secure RISC-V
// cores of CryptRISC and Stangherlin & Sachdev: every securable operation
// has a masked twin on a custom major opcode that runs the dual-rail
// precharged datapath, exactly mirroring the PISA secure bit.
//
// The architectural layer stays the shared Inst type; this target maps it
// onto RV32 encodings:
//
//   - R-type ALU ops land on OP (0110011) with the standard funct3/funct7,
//     mul on the M-extension encoding; their secure twins on custom-0.
//   - Immediate ALU ops land on OP-IMM / custom-1; lui on LUI / the
//     reserved 1101011 major; loads on LOAD / custom-2; stores on
//     STORE / custom-3.
//   - nor has no RV32 encoding — the compiler legalizes it via Nor into
//     or + xori -1 (both carrying the secure bit).
//   - blez/bgtz rs encode as bge/blt x0, rs; j/jal as jal x0/ra; jr as
//     jalr x0, rs, 0; halt as ebreak.
//
// Control-flow immediates are PC-relative on the wire (B/J-type byte
// offsets) while Inst.Imm keeps its portable semantic reading (branch =
// word displacement from pc+4, FmtJ = absolute word target) — Encode and
// Decode convert using pc.
type rv32Target struct{}

// RV32 is the RV32I-flavoured secure core.
var RV32 Target = rv32Target{}

func init() { registerTarget(RV32) }

// RV32 major opcodes (bits [6:0]).
const (
	rvOP     = 0b0110011
	rvOPIMM  = 0b0010011
	rvLOAD   = 0b0000011
	rvSTORE  = 0b0100011
	rvBRANCH = 0b1100011
	rvLUI    = 0b0110111
	rvJAL    = 0b1101111
	rvJALR   = 0b1100111
	rvSYSTEM = 0b1110011

	// Masked (dual-rail) twins of the securable majors, in the custom /
	// reserved opcode space so the base ISA stays untouched.
	rvSecOP    = 0b0001011 // custom-0
	rvSecOPIMM = 0b0101011 // custom-1
	rvSecLOAD  = 0b1011011 // custom-2
	rvSecSTORE = 0b1111011 // custom-3
	rvSecLUI   = 0b1101011 // reserved
)

const rvEbreak = 0x00100073

// rv32Phys maps the architectural (MIPS-role) register to its RV32 physical
// register, a bijection chosen so each role lands on the RISC-V register
// with the matching ABI role where one exists (sp->x2, gp->x3, ra->x1,
// args->a-regs, saved->s-regs).
var rv32Phys = [NumRegs]uint8{
	Zero: 0, AT: 31, V0: 10, V1: 11,
	A0: 12, A1: 13, A2: 14, A3: 15,
	T0: 5, T1: 6, T2: 7, T3: 28, T4: 29, T5: 30, T6: 16, T7: 17,
	S0: 8, S1: 9, S2: 18, S3: 19, S4: 20, S5: 21, S6: 22, S7: 23,
	T8: 24, T9: 25, K0: 26, K1: 27,
	GP: 3, SP: 2, FP: 4, RA: 1,
}

// rv32Arch is the inverse mapping, physical -> architectural.
var rv32Arch [NumRegs]Reg

func init() {
	for arch, phys := range rv32Phys {
		rv32Arch[phys] = Reg(arch)
	}
}

// rv32RegNames are the standard RV32 ABI names, indexed by physical number.
var rv32RegNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

func (rv32Target) Name() string { return "rv32" }

func (rv32Target) Limits() Limits {
	return Limits{
		SImmMin: -2048,
		SImmMax: 2047,
		// RV32 sign-extends andi/ori/xori immediates; restricting the
		// portable unsigned range to [0, 2047] keeps zero- and
		// sign-extension in agreement.
		UImmMax:   2047,
		LuiShift:  12,
		NorNative: false,
	}
}

func (rv32Target) RegName(r Reg) string {
	if int(r) < NumRegs {
		return rv32RegNames[rv32Phys[r]]
	}
	return fmt.Sprintf("x?%d", uint8(r))
}

// rvALUEnc is the funct7/funct3 pair of an R-type ALU operation.
type rvALUEnc struct{ funct7, funct3 uint32 }

var rvRType = map[Opcode]rvALUEnc{
	OpAddu: {0x00, 0}, OpSubu: {0x20, 0}, OpMul: {0x01, 0},
	OpSllv: {0x00, 1}, OpSlt: {0x00, 2}, OpSltu: {0x00, 3},
	OpXor: {0x00, 4}, OpSrlv: {0x00, 5}, OpSrav: {0x20, 5},
	OpOr: {0x00, 6}, OpAnd: {0x00, 7},
}

var rvIType = map[Opcode]uint32{ // funct3 of OP-IMM ops
	OpAddiu: 0, OpSlti: 2, OpSltiu: 3, OpXori: 4, OpOri: 6, OpAndi: 7,
}

func rvSignExtend12(v uint32) int32 { return int32(v<<20) >> 20 }

func (t rv32Target) Encode(in Inst, pc uint32) (uint32, error) {
	if !in.Op.Valid() {
		return 0, &EncodeError{in, "invalid opcode"}
	}
	if in.Secure && !in.Op.Securable() {
		return 0, &EncodeError{in, "no secure variant exists for this opcode"}
	}
	sel := func(plain, secure uint32) uint32 {
		if in.Secure {
			return secure
		}
		return plain
	}
	reg := func(r Reg) (uint32, bool) {
		if r < NumRegs {
			return uint32(rv32Phys[r]), true
		}
		return 0, false
	}
	switch in.Op.Format() {
	case FmtR:
		enc, ok := rvRType[in.Op]
		if !ok {
			return 0, &EncodeError{in, "no rv32 encoding (legalize nor via Target.Nor)"}
		}
		rd, ok1 := reg(in.Rd)
		rs1, ok2 := reg(in.Rs)
		rs2, ok3 := reg(in.Rt)
		if !ok1 || !ok2 || !ok3 {
			return 0, &EncodeError{in, "register out of range"}
		}
		return enc.funct7<<25 | rs2<<20 | rs1<<15 | enc.funct3<<12 | rd<<7 | sel(rvOP, rvSecOP), nil
	case FmtRShift:
		rd, ok1 := reg(in.Rd)
		rs1, ok2 := reg(in.Rt)
		if !ok1 || !ok2 {
			return 0, &EncodeError{in, "register out of range"}
		}
		if in.Imm < 0 || in.Imm > 31 {
			return 0, &EncodeError{in, "shift amount out of range"}
		}
		var f3, top uint32
		switch in.Op {
		case OpSll:
			f3, top = 1, 0x00
		case OpSrl:
			f3, top = 5, 0x00
		case OpSra:
			f3, top = 5, 0x20
		}
		return top<<25 | uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | sel(rvOPIMM, rvSecOPIMM), nil
	case FmtRJump: // jr rs -> jalr x0, rs, 0
		rs1, ok := reg(in.Rs)
		if !ok {
			return 0, &EncodeError{in, "register out of range"}
		}
		return rs1<<15 | rvJALR, nil
	case FmtI:
		f3 := rvIType[in.Op]
		rd, ok1 := reg(in.Rt)
		rs1, ok2 := reg(in.Rs)
		if !ok1 || !ok2 {
			return 0, &EncodeError{in, "register out of range"}
		}
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, &EncodeError{in, fmt.Sprintf("immediate %d out of rv32 range [-2048,2047]", in.Imm)}
		}
		return (uint32(in.Imm)&0xfff)<<20 | rs1<<15 | f3<<12 | rd<<7 | sel(rvOPIMM, rvSecOPIMM), nil
	case FmtILui:
		rd, ok := reg(in.Rt)
		if !ok {
			return 0, &EncodeError{in, "register out of range"}
		}
		if in.Imm < 0 || in.Imm > 0xfffff {
			return 0, &EncodeError{in, fmt.Sprintf("upper immediate %d out of rv32 range [0,%d]", in.Imm, 0xfffff)}
		}
		return uint32(in.Imm)<<12 | rd<<7 | sel(rvLUI, rvSecLUI), nil
	case FmtIMem:
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, &EncodeError{in, fmt.Sprintf("displacement %d out of rv32 range [-2048,2047]", in.Imm)}
		}
		rt, ok1 := reg(in.Rt)
		rs1, ok2 := reg(in.Rs)
		if !ok1 || !ok2 {
			return 0, &EncodeError{in, "register out of range"}
		}
		imm := uint32(in.Imm) & 0xfff
		if in.Op.IsStore() {
			return (imm>>5)<<25 | rt<<20 | rs1<<15 | 2<<12 | (imm&0x1f)<<7 | sel(rvSTORE, rvSecSTORE), nil
		}
		return imm<<20 | rs1<<15 | 2<<12 | rt<<7 | sel(rvLOAD, rvSecLOAD), nil
	case FmtIBranch:
		boff := int64(in.Imm+1) * 4 // byte offset from pc (Imm counts words from pc+4)
		if boff < -4096 || boff > 4094 {
			return 0, &EncodeError{in, fmt.Sprintf("branch offset %d bytes out of rv32 range [-4096,4094]", boff)}
		}
		var f3, rs1, rs2 uint32
		switch in.Op {
		case OpBeq, OpBne:
			r1, ok1 := reg(in.Rs)
			r2, ok2 := reg(in.Rt)
			if !ok1 || !ok2 {
				return 0, &EncodeError{in, "register out of range"}
			}
			rs1, rs2 = r1, r2
			if in.Op == OpBne {
				f3 = 1
			}
		case OpBlez: // rs <= 0  <=>  bge x0, rs
			r, ok := reg(in.Rs)
			if !ok {
				return 0, &EncodeError{in, "register out of range"}
			}
			f3, rs1, rs2 = 5, 0, r
		case OpBgtz: // rs > 0  <=>  blt x0, rs
			r, ok := reg(in.Rs)
			if !ok {
				return 0, &EncodeError{in, "register out of range"}
			}
			f3, rs1, rs2 = 4, 0, r
		}
		ub := uint32(boff) & 0x1fff
		return (ub>>12&1)<<31 | (ub>>5&0x3f)<<25 | rs2<<20 | rs1<<15 | f3<<12 |
			(ub>>1&0xf)<<8 | (ub>>11&1)<<7 | rvBRANCH, nil
	case FmtJ:
		if in.Imm < 0 {
			return 0, &EncodeError{in, "jump target out of range"}
		}
		joff := int64(in.Imm)*4 - int64(pc)
		if joff < -(1<<20) || joff > 1<<20-2 {
			return 0, &EncodeError{in, fmt.Sprintf("jump offset %d bytes out of rv32 range", joff)}
		}
		var rd uint32 // x0 for j
		if in.Op == OpJal {
			rd = uint32(rv32Phys[RA]) // x1
		}
		uj := uint32(joff) & 0x1fffff
		return (uj>>20&1)<<31 | (uj>>1&0x3ff)<<21 | (uj>>11&1)<<20 | (uj>>12&0xff)<<12 | rd<<7 | rvJAL, nil
	case FmtNone: // halt
		return rvEbreak, nil
	}
	return 0, &EncodeError{in, "unknown format"}
}

func (t rv32Target) Decode(w, pc uint32) (Inst, error) {
	major := w & 0x7f
	secure := false
	switch major {
	case rvSecOP:
		major, secure = rvOP, true
	case rvSecOPIMM:
		major, secure = rvOPIMM, true
	case rvSecLOAD:
		major, secure = rvLOAD, true
	case rvSecSTORE:
		major, secure = rvSTORE, true
	case rvSecLUI:
		major, secure = rvLUI, true
	}
	bad := func(format string, args ...interface{}) (Inst, error) {
		return Inst{Op: OpInvalid}, fmt.Errorf("isa: rv32: "+format+" in word %#08x", append(args, w)...)
	}
	rdP := w >> 7 & 0x1f
	rs1P := w >> 15 & 0x1f
	rs2P := w >> 20 & 0x1f
	rd, rs1, rs2 := rv32Arch[rdP], rv32Arch[rs1P], rv32Arch[rs2P]
	f3 := w >> 12 & 7
	f7 := w >> 25
	i := Inst{Secure: secure}
	switch major {
	case rvOP:
		for op, enc := range rvRType {
			if enc.funct7 == f7 && enc.funct3 == f3 {
				i.Op, i.Rd, i.Rs, i.Rt = op, rd, rs1, rs2
				return i, nil
			}
		}
		return bad("unknown OP funct7=%#x funct3=%d", f7, f3)
	case rvOPIMM:
		switch f3 {
		case 1, 5:
			shamt := int32(rs2P)
			switch {
			case f3 == 1 && f7 == 0x00:
				i.Op = OpSll
			case f3 == 5 && f7 == 0x00:
				i.Op = OpSrl
			case f3 == 5 && f7 == 0x20:
				i.Op = OpSra
			default:
				return bad("unknown shift funct7=%#x funct3=%d", f7, f3)
			}
			i.Rd, i.Rt, i.Imm = rd, rs1, shamt
			return i, nil
		}
		for op, of3 := range rvIType {
			if of3 == f3 {
				i.Op, i.Rt, i.Rs, i.Imm = op, rd, rs1, rvSignExtend12(w>>20)
				return i, nil
			}
		}
		return bad("unknown OP-IMM funct3=%d", f3)
	case rvLOAD:
		if f3 != 2 {
			return bad("unsupported load width funct3=%d", f3)
		}
		i.Op, i.Rt, i.Rs, i.Imm = OpLw, rd, rs1, rvSignExtend12(w>>20)
		return i, nil
	case rvSTORE:
		if f3 != 2 {
			return bad("unsupported store width funct3=%d", f3)
		}
		i.Op, i.Rt, i.Rs, i.Imm = OpSw, rs2, rs1, rvSignExtend12(f7<<5|rdP)
		return i, nil
	case rvBRANCH:
		ub := (w>>31&1)<<12 | (w>>7&1)<<11 | (w>>25&0x3f)<<5 | (w>>8&0xf)<<1
		boff := int32(ub<<19) >> 19 // sign-extend 13 bits
		i.Imm = boff/4 - 1
		switch f3 {
		case 0:
			i.Op, i.Rs, i.Rt = OpBeq, rs1, rs2
		case 1:
			i.Op, i.Rs, i.Rt = OpBne, rs1, rs2
		case 4:
			if rs1P != 0 {
				return bad("blt is only supported as bgtz (blt x0, rs)")
			}
			i.Op, i.Rs = OpBgtz, rs2
		case 5:
			if rs1P != 0 {
				return bad("bge is only supported as blez (bge x0, rs)")
			}
			i.Op, i.Rs = OpBlez, rs2
		default:
			return bad("unknown branch funct3=%d", f3)
		}
		return i, nil
	case rvLUI:
		i.Op, i.Rt, i.Imm = OpLui, rd, int32(w>>12)
		return i, nil
	case rvJAL:
		uj := (w>>31&1)<<20 | (w>>12&0xff)<<12 | (w>>20&1)<<11 | (w>>21&0x3ff)<<1
		joff := int32(uj<<11) >> 11 // sign-extend 21 bits
		switch rdP {
		case 0:
			i.Op = OpJ
		case 1:
			i.Op = OpJal
		default:
			return bad("jal link register must be x0 or x1, got x%d", rdP)
		}
		i.Imm = int32((pc + uint32(joff)) / 4)
		return i, nil
	case rvJALR:
		if f3 != 0 || rdP != 0 || w>>20 != 0 {
			return bad("jalr is only supported as jr (jalr x0, rs, 0)")
		}
		i.Op, i.Rs = OpJr, rs1
		return i, nil
	case rvSYSTEM:
		if w != rvEbreak {
			return bad("unsupported SYSTEM instruction")
		}
		i.Op = OpHalt
		return i, nil
	}
	return bad("unknown major opcode %#02x", major)
}

func (t rv32Target) Predecode(in Inst, pc uint32) (UOp, error) {
	word, err := t.Encode(in, pc)
	if err != nil {
		return UOp{}, fmt.Errorf("isa: predecode at pc %#x: %w", pc, err)
	}
	u, err := predecodeWord(in, pc, word)
	if err != nil {
		return UOp{}, err
	}
	if in.Op == OpLui {
		u.Class = ClassLui12
	}
	return u, nil
}

// LoadImm materialises v with addi, or lui + addi (the standard RV32 li
// recipe with the +0x800 rounding so the low part fits a signed 12-bit add).
func (rv32Target) LoadImm(rt Reg, v int32, secure bool) []Inst {
	if v >= -2048 && v <= 2047 {
		return []Inst{{Op: OpAddiu, Rt: rt, Rs: Zero, Imm: v, Secure: secure}}
	}
	u := uint32(v)
	hi := int32((u + 0x800) >> 12 & 0xfffff)
	lo := rvSignExtend12(u - uint32(hi)<<12)
	out := []Inst{{Op: OpLui, Rt: rt, Imm: hi, Secure: secure}}
	if lo != 0 {
		out = append(out, Inst{Op: OpAddiu, Rt: rt, Rs: rt, Imm: lo, Secure: secure})
	}
	return out
}

func (t rv32Target) LoadAddr(rt Reg, addr uint32, secure bool) []Inst {
	return t.LoadImm(rt, int32(addr), secure)
}

func (rv32Target) MemDirect(op Opcode, rt Reg, addr uint32, secure bool) []Inst {
	hi := int32((addr + 0x800) >> 12 & 0xfffff)
	lo := rvSignExtend12(addr - uint32(hi)<<12)
	return []Inst{
		{Op: OpLui, Rt: AT, Imm: hi},
		{Op: op, Secure: secure, Rt: rt, Rs: AT, Imm: lo},
	}
}

// Nor legalizes rd = ^(ra|rb) as or + xori -1; both instructions carry the
// secure bit so the legalized form is exactly as masked as a native nor.
func (rv32Target) Nor(rd, ra, rb Reg, secure bool) []Inst {
	return []Inst{
		{Op: OpOr, Secure: secure, Rd: rd, Rs: ra, Rt: rb},
		{Op: OpXori, Secure: secure, Rt: rd, Rs: rd, Imm: -1},
	}
}

// ALUOpScale charges the M-extension multiplier array above the PISA
// baseline; the scale applies to the data-independent base cost only, so
// it shifts means without affecting operand-dependent leakage.
func (rv32Target) ALUOpScale() [NumExecClasses]float64 {
	var s [NumExecClasses]float64
	for i := range s {
		s[i] = 1
	}
	s[ClassMul] = 1.5
	return s
}

// Pipeline declares the classic five-stage in-order geometry; the RV32 core
// shares the PISA pipeline and differs only in encoding and energy scales.
func (rv32Target) Pipeline() PipelineSpec { return FiveStage }
