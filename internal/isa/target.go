package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Limits describes the immediate reach and pseudo-op shape of one target's
// binary encoding. The compiler consults these bounds when folding constants
// and choosing addressing sequences, so a pass never produces an instruction
// the target cannot encode.
type Limits struct {
	// SImmMin and SImmMax bound the signed I-type immediate (addiu, slti,
	// load/store displacements, and — on targets that sign-extend their
	// logical immediates — andi/ori/xori).
	SImmMin int32
	SImmMax int32
	// UImmMax bounds the immediates of andi/ori/xori under the portable
	// zero-extension reading: for any value in [0, UImmMax] the target's
	// native extension rule and zero-extension agree, so the compiler may
	// fold logical immediates in that range on every target.
	UImmMax int32
	// LuiShift is the left shift lui applies to its immediate
	// (15 on PISA, 12 on RV32).
	LuiShift uint
	// NorNative reports whether nor encodes as a single instruction.
	// Targets without a native nor legalize it via Target.Nor.
	NorNative bool
}

// Target is one instruction-set backend: the binary encoding, the micro-op
// predecoder, the register-file naming, the pseudo-instruction expansion
// rules, and the per-op energy coefficients of one concrete core.
//
// All targets share the architectural instruction type Inst — Inst is the
// semantic layer (MIPS-flavoured opcodes, 32×32-bit register file, the
// per-instruction secure bit) and a Target maps it onto one machine-level
// encoding. The contract every backend must honour is written out in
// DESIGN.md §12; the load-bearing clauses are:
//
//   - Predecode must preserve operand routing: UOp.SrcA/SrcB/BConst/Dest and
//     the Secure, Load, Store and XorUnit flags are functions of the Inst
//     alone, identical across targets. Only UOp.Word (the fetched encoding)
//     and UOp.Class (the EX dispatch, e.g. the lui shift amount) may differ.
//     This is what makes the shadow-taint checker and the probe event stream
//     ISA-independent.
//   - Every securable opcode must have a secure encoding. A policy that
//     masks an instruction on one target must be expressible on all targets,
//     or TVLA verdicts could not be compared across cores.
//   - Expansion sequences (LoadImm, LoadAddr, MemDirect, Nor) must propagate
//     the caller's secure bit to every data-carrying instruction they emit.
//     MemDirect's address-forming lui is the one deliberate exception: plain
//     data addresses are public, and secret-derived addressing never goes
//     through MemDirect (the compiler uses register-indirect accesses with
//     offset 0, encodable on every target).
type Target interface {
	// Name is the registry key, e.g. "pisa" or "rv32".
	Name() string
	// Limits returns the encoding bounds the compiler must respect.
	Limits() Limits
	// RegName returns the target's spelling of architectural register r
	// (for listings; the architectural name remains Reg.String).
	RegName(r Reg) string

	// Encode packs an instruction at address pc into its 32-bit binary
	// form. pc matters on targets with PC-relative control-flow encodings;
	// Inst.Imm always carries the PISA-style semantic value (branch = word
	// displacement from pc+4, FmtJ = absolute word target).
	Encode(in Inst, pc uint32) (uint32, error)
	// Decode unpacks a binary word fetched from address pc.
	Decode(word, pc uint32) (Inst, error)
	// Predecode resolves an instruction into its micro-op form, with
	// UOp.Word holding this target's encoding.
	Predecode(in Inst, pc uint32) (UOp, error)

	// LoadImm returns the instruction sequence materialising constant v
	// into rt. Every step carries the secure bit.
	LoadImm(rt Reg, v int32, secure bool) []Inst
	// LoadAddr returns the sequence materialising the (link-time constant)
	// address addr into rt. Every step carries the secure bit.
	LoadAddr(rt Reg, addr uint32, secure bool) []Inst
	// MemDirect returns the sequence for a direct-address load/store of rt
	// at addr (op is OpLw or OpSw), clobbering $at for address formation.
	// The address-forming instruction stays insecure (see contract above);
	// the access itself carries the secure bit.
	MemDirect(op Opcode, rt Reg, addr uint32, secure bool) []Inst
	// Nor returns the sequence computing rd = ^(ra|rb): one instruction on
	// targets with a native nor, a legalized pair elsewhere. Every step
	// carries the secure bit.
	Nor(rd, ra, rb Reg, secure bool) []Inst

	// ALUOpScale returns the per-ExecClass scale applied to the base ALU
	// energy (Params.AluOpPJ) on this target. The scale modulates only the
	// data-independent base cost — operand-dependent toggle energy is
	// shared — so differing coefficients cannot flip a TVLA verdict.
	ALUOpScale() [NumExecClasses]float64

	// Pipeline returns the geometry of this target's core: branch
	// resolution stage, load-use latency, flush depth, fill/drain
	// latencies. The cycle-accurate core validates at construction that it
	// implements this geometry, and the block translator derives its
	// precomputed stall/flush/retire effects from it (falling back to the
	// cycle-accurate core for geometries it cannot reproduce).
	Pipeline() PipelineSpec
}

// targets is the backend registry, keyed by lower-case name.
var targetRegistry = map[string]Target{}

func registerTarget(t Target) {
	targetRegistry[strings.ToLower(t.Name())] = t
}

// TargetByName resolves a target by its registry name (case-insensitive).
func TargetByName(name string) (Target, bool) {
	t, ok := targetRegistry[strings.ToLower(name)]
	return t, ok
}

// Targets returns the registered target names, sorted.
func Targets() []string {
	names := make([]string, 0, len(targetRegistry))
	for n := range targetRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TargetUsage renders the registered target names for flag help text, e.g.
// "pisa|rv32".
func TargetUsage() string { return strings.Join(Targets(), "|") }

// PredecodeProgramFor predecodes a text segment based at textBase into a
// dense micro-op table for the given target, index = (pc - textBase) / 4.
func PredecodeProgramFor(t Target, text []Inst, textBase uint32) ([]UOp, error) {
	if t == nil {
		t = PISA
	}
	uops := make([]UOp, len(text))
	for i, in := range text {
		u, err := t.Predecode(in, textBase+uint32(4*i))
		if err != nil {
			return nil, fmt.Errorf("isa: text word %d: %w", i, err)
		}
		uops[i] = u
	}
	return uops, nil
}
