package isa

import "fmt"

// Binary layout (32-bit word):
//
//	[31:26] opcode (6 bits)
//	[25]    secure bit
//	R-type:      [24:20] rd  [19:15] rs  [14:10] rt  [9:5] shamt  [4:0] 0
//	I-type:      [24:20] rt  [19:15] rs  [14:0]  imm (sign-extended;
//	             lui treats it as unsigned and fills bits 29:15)
//	J-type:      [24:0]  target word index
//
// The 15-bit immediate keeps the secure bit orthogonal to every format,
// mirroring the paper's choice of "augmenting the original opcodes with an
// additional secure bit" to minimise decoder impact. Address-space
// consequences (±16 KiB displacements, 25-bit jump region) are comfortably
// sufficient for smart-card firmware images.

const (
	// ImmBits is the width of the signed I-type immediate field.
	ImmBits = 15
	// MaxImm and MinImm bound the signed immediate.
	MaxImm = 1<<(ImmBits-1) - 1
	MinImm = -(1 << (ImmBits - 1))
	// MaxUImm bounds the unsigned interpretation (lui, andi, ori, xori).
	MaxUImm = 1<<ImmBits - 1
	// JumpBits is the width of the J-type word-target field.
	JumpBits = 25
	// MaxJumpTarget bounds the jump target word index.
	MaxJumpTarget = 1<<JumpBits - 1
)

const (
	opShift     = 26
	secureBit   = 1 << 25
	fieldAShift = 20 // rd (R) / rt (I)
	fieldBShift = 15 // rs
	fieldCShift = 10 // rt (R)
	shamtShift  = 5
	regMask     = 0x1f
	immMask     = 1<<ImmBits - 1
	jumpMask    = 1<<JumpBits - 1
)

// EncodeError reports an instruction whose fields do not fit the binary
// format.
type EncodeError struct {
	Inst   Inst
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: %s", e.Inst, e.Reason)
}

// usesUnsignedImm reports whether the opcode's immediate is zero-extended.
func usesUnsignedImm(op Opcode) bool {
	switch op {
	case OpAndi, OpOri, OpXori, OpLui:
		return true
	}
	return false
}

// Encode packs the instruction into its 32-bit binary form.
func Encode(i Inst) (uint32, error) {
	if !i.Op.Valid() {
		return 0, &EncodeError{i, "invalid opcode"}
	}
	if i.Secure && !i.Op.Securable() {
		return 0, &EncodeError{i, "no secure variant exists for this opcode"}
	}
	w := uint32(i.Op) << opShift
	if i.Secure {
		w |= secureBit
	}
	reg := func(r Reg) (uint32, bool) { return uint32(r), r < NumRegs }
	switch i.Op.Format() {
	case FmtR:
		rd, ok1 := reg(i.Rd)
		rs, ok2 := reg(i.Rs)
		rt, ok3 := reg(i.Rt)
		if !ok1 || !ok2 || !ok3 {
			return 0, &EncodeError{i, "register out of range"}
		}
		w |= rd<<fieldAShift | rs<<fieldBShift | rt<<fieldCShift
	case FmtRShift:
		rd, ok1 := reg(i.Rd)
		rt, ok2 := reg(i.Rt)
		if !ok1 || !ok2 {
			return 0, &EncodeError{i, "register out of range"}
		}
		if i.Imm < 0 || i.Imm > 31 {
			return 0, &EncodeError{i, "shift amount out of range"}
		}
		w |= rd<<fieldAShift | rt<<fieldCShift | uint32(i.Imm)<<shamtShift
	case FmtRJump:
		rs, ok := reg(i.Rs)
		if !ok {
			return 0, &EncodeError{i, "register out of range"}
		}
		w |= rs << fieldBShift
	case FmtI, FmtIMem, FmtIBranch, FmtILui:
		rt, ok1 := reg(i.Rt)
		rs, ok2 := reg(i.Rs)
		if !ok1 || !ok2 {
			return 0, &EncodeError{i, "register out of range"}
		}
		if usesUnsignedImm(i.Op) {
			if i.Imm < 0 || i.Imm > MaxUImm {
				return 0, &EncodeError{i, fmt.Sprintf("unsigned immediate %d out of range [0,%d]", i.Imm, MaxUImm)}
			}
		} else if i.Imm < MinImm || i.Imm > MaxImm {
			return 0, &EncodeError{i, fmt.Sprintf("immediate %d out of range [%d,%d]", i.Imm, MinImm, MaxImm)}
		}
		w |= rt<<fieldAShift | rs<<fieldBShift | uint32(i.Imm)&immMask
	case FmtJ:
		if i.Imm < 0 || i.Imm > MaxJumpTarget {
			return 0, &EncodeError{i, "jump target out of range"}
		}
		w |= uint32(i.Imm) & jumpMask
	case FmtNone:
		// opcode + secure bit only
	default:
		return 0, &EncodeError{i, "unknown format"}
	}
	return w, nil
}

// Decode unpacks a 32-bit binary instruction word. Unknown opcodes yield an
// Inst with Op == OpInvalid and a non-nil error.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> opShift)
	if !op.Valid() {
		return Inst{Op: OpInvalid}, fmt.Errorf("isa: invalid opcode %d in word %#08x", uint8(op), w)
	}
	i := Inst{Op: op, Secure: w&secureBit != 0}
	if i.Secure && !op.Securable() {
		return Inst{Op: OpInvalid}, fmt.Errorf("isa: secure bit set on non-securable opcode %v in word %#08x", op, w)
	}
	switch op.Format() {
	case FmtR:
		i.Rd = Reg(w >> fieldAShift & regMask)
		i.Rs = Reg(w >> fieldBShift & regMask)
		i.Rt = Reg(w >> fieldCShift & regMask)
	case FmtRShift:
		i.Rd = Reg(w >> fieldAShift & regMask)
		i.Rt = Reg(w >> fieldCShift & regMask)
		i.Imm = int32(w >> shamtShift & regMask)
	case FmtRJump:
		i.Rs = Reg(w >> fieldBShift & regMask)
	case FmtI, FmtIMem, FmtIBranch, FmtILui:
		i.Rt = Reg(w >> fieldAShift & regMask)
		i.Rs = Reg(w >> fieldBShift & regMask)
		raw := w & immMask
		if usesUnsignedImm(op) {
			i.Imm = int32(raw)
		} else {
			i.Imm = signExtend15(raw)
		}
	case FmtJ:
		i.Imm = int32(w & jumpMask)
	case FmtNone:
		// nothing further
	}
	return i, nil
}

// signExtend15 sign-extends a 15-bit field to 32 bits.
func signExtend15(v uint32) int32 {
	return int32(v<<(32-ImmBits)) >> (32 - ImmBits)
}
