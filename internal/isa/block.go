package isa

// Basic-block discovery over the predecoded micro-op table: the ISA-level
// half of the block-compiled simulator core (internal/block). A basic block
// is a maximal straight-line run of micro-ops beginning at an entry index and
// ending at the first control-transfer or halt micro-op (inclusive), or at
// the end of the text segment. Blocks are discovered per entry point — a jump
// into the middle of an already-discovered block simply yields a second,
// overlapping block — so discovery needs no global leader analysis and is
// correct for dynamically computed jr targets.

// TermKind classifies how a basic block ends.
type TermKind uint8

// Block terminators.
const (
	// TermNone marks a block that runs to the end of the text segment
	// without a terminator; executing past it is a fetch fault.
	TermNone TermKind = iota
	// TermBranch is a conditional branch (beq/bne/blez/bgtz).
	TermBranch
	// TermJump is an unconditional jump with a static target (j).
	TermJump
	// TermJal is a jump-and-link: static target plus a link-register write.
	TermJal
	// TermJr is a register-indirect jump with a dynamic target.
	TermJr
	// TermHalt retires the program.
	TermHalt
)

var termNames = [...]string{"none", "branch", "jump", "jal", "jr", "halt"}

// String returns the terminator name.
func (k TermKind) String() string {
	if int(k) < len(termNames) {
		return termNames[k]
	}
	return "term?"
}

// TermKindOf classifies an exec class as a block terminator, or TermNone for
// straight-line classes.
func TermKindOf(c ExecClass) TermKind {
	switch c {
	case ClassBeq, ClassBne, ClassBlez, ClassBgtz:
		return TermBranch
	case ClassJ:
		return TermJump
	case ClassJal:
		return TermJal
	case ClassJr:
		return TermJr
	case ClassHalt:
		return TermHalt
	}
	return TermNone
}

// BasicBlock is one discovered straight-line run.
type BasicBlock struct {
	// Start is the micro-op index of the block's entry (leader).
	Start int
	// N is the number of micro-ops in the block, including the terminator
	// when Term != TermNone.
	N int
	// Term classifies the final micro-op. TermNone means the block ran to
	// the end of the table without one.
	Term TermKind
}

// ScanBlock discovers the basic block entered at micro-op index start. It
// panics if start is out of range; callers bound-check entries (a jump
// outside the text segment is a fetch fault, not a block).
func ScanBlock(uops []UOp, start int) BasicBlock {
	b := BasicBlock{Start: start}
	for i := start; i < len(uops); i++ {
		b.N++
		if k := TermKindOf(uops[i].Class); k != TermNone {
			b.Term = k
			return b
		}
	}
	return b
}

// BlockLegalUOp reports whether the block translator understands this
// micro-op. Every class the predecoder currently emits is legal; the check
// exists so a future target introducing a new exec class degrades to the
// cycle-accurate core instead of being mis-fused.
func BlockLegalUOp(u *UOp) bool {
	return u.Class < NumExecClasses
}

// BlockCompilable reports whether programs for this target may be block
// compiled: the target must declare the five-stage geometry the translator's
// precomputed stall/flush/retire effects are derived for. Other geometries
// fall back to the cycle-accurate core.
func BlockCompilable(t Target) bool {
	if t == nil {
		t = PISA
	}
	return t.Pipeline() == FiveStage
}
