package isa

// pisaTarget is the original backend: the MIPS/PISA-flavoured encoding this
// package has always implemented. Its Target methods delegate to the
// package-level Encode/Decode/Predecode, so a program built through the
// target handle is bit-identical to one built through the historical free
// functions — the golden traces in internal/sim/testdata pin this.
type pisaTarget struct{}

// PISA is the default target: the paper's secure smart-card core.
var PISA Target = pisaTarget{}

func init() { registerTarget(PISA) }

func (pisaTarget) Name() string { return "pisa" }

func (pisaTarget) Limits() Limits {
	return Limits{
		SImmMin:   MinImm,
		SImmMax:   MaxImm,
		UImmMax:   MaxUImm,
		LuiShift:  15,
		NorNative: true,
	}
}

func (pisaTarget) RegName(r Reg) string { return r.String() }

func (pisaTarget) Encode(in Inst, pc uint32) (uint32, error) { return Encode(in) }

func (pisaTarget) Decode(word, pc uint32) (Inst, error) { return Decode(word) }

func (pisaTarget) Predecode(in Inst, pc uint32) (UOp, error) { return Predecode(in, pc) }

// LoadImm is the assembler's 1/2/5-word li expansion: addiu or ori when the
// constant fits one immediate, lui+ori below 2^30, and an ori/sll ladder for
// full 32-bit constants.
func (pisaTarget) LoadImm(rt Reg, v int32, secure bool) []Inst {
	type liStep struct {
		op    Opcode
		imm   int32
		useRt bool
	}
	var steps []liStep
	u := uint32(v)
	switch {
	case v >= MinImm && v <= MaxImm:
		steps = []liStep{{op: OpAddiu, imm: v}}
	case v >= 0 && v <= MaxUImm:
		steps = []liStep{{op: OpOri, imm: v}}
	case u < 1<<30:
		steps = []liStep{
			{op: OpLui, imm: int32(u >> 15)},
			{op: OpOri, imm: int32(u & 0x7fff), useRt: true},
		}
	default:
		steps = []liStep{
			{op: OpOri, imm: int32(u >> 17)},
			{op: OpSll, imm: 2, useRt: true},
			{op: OpOri, imm: int32(u >> 15 & 0x3), useRt: true},
			{op: OpSll, imm: 15, useRt: true},
			{op: OpOri, imm: int32(u & 0x7fff), useRt: true},
		}
	}
	out := make([]Inst, 0, len(steps))
	for _, step := range steps {
		in := Inst{Op: step.op, Secure: secure, Imm: step.imm}
		switch step.op {
		case OpLui:
			in.Rt = rt
		case OpSll:
			in.Rd, in.Rt = rt, rt
		default: // addiu/ori
			in.Rt = rt
			if step.useRt {
				in.Rs = rt
			} else {
				in.Rs = Zero
			}
		}
		out = append(out, in)
	}
	return out
}

// LoadAddr is the la expansion: lui+ori tiling the 30-bit address space.
func (pisaTarget) LoadAddr(rt Reg, addr uint32, secure bool) []Inst {
	hi, lo := int32(addr>>15), int32(addr&0x7fff)
	return []Inst{
		{Op: OpLui, Rt: rt, Imm: hi, Secure: secure},
		{Op: OpOri, Rt: rt, Rs: rt, Imm: lo, Secure: secure},
	}
}

// MemDirect is the direct-symbol access: lui $at, hi; op rt, lo($at), with
// hi rounded so lo fits the signed 15-bit displacement.
func (pisaTarget) MemDirect(op Opcode, rt Reg, addr uint32, secure bool) []Inst {
	hi := int32((addr + 0x4000) >> 15)
	lo := int32(addr) - hi<<15
	return []Inst{
		{Op: OpLui, Rt: AT, Imm: hi},
		{Op: op, Secure: secure, Rt: rt, Rs: AT, Imm: lo},
	}
}

func (pisaTarget) Nor(rd, ra, rb Reg, secure bool) []Inst {
	return []Inst{{Op: OpNor, Secure: secure, Rd: rd, Rs: ra, Rt: rb}}
}

func (pisaTarget) ALUOpScale() [NumExecClasses]float64 {
	var s [NumExecClasses]float64
	for i := range s {
		s[i] = 1
	}
	return s
}

// Pipeline declares the classic five-stage in-order geometry.
func (pisaTarget) Pipeline() PipelineSpec { return FiveStage }
