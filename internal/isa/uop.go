package isa

import "fmt"

// ExecClass selects the EX-stage evaluation routine of a predecoded micro-op.
// Opcodes that share datapath semantics share a class (addu/addiu, sll/sllv,
// lw/sw address generation), so the per-cycle dispatch switch stays small and
// branch-predictable.
type ExecClass uint8

// EX-stage dispatch classes.
const (
	ClassAdd ExecClass = iota
	ClassSub
	ClassAnd
	ClassOr
	ClassXor
	ClassNor
	ClassSll
	ClassSrl
	ClassSra
	ClassSlt
	ClassSltu
	ClassMul
	ClassLui
	ClassMem // lw/sw: result is the address rs+offset
	ClassBeq
	ClassBne
	ClassBlez
	ClassBgtz
	ClassJ
	ClassJal
	ClassJr
	ClassHalt
	ClassLui12 // lui on 20-bit-immediate targets: result = imm << 12
	NumExecClasses
)

var execClassNames = [NumExecClasses]string{
	"add", "sub", "and", "or", "xor", "nor", "sll", "srl", "sra",
	"slt", "sltu", "mul", "lui", "mem", "beq", "bne", "blez", "bgtz",
	"j", "jal", "jr", "halt", "lui12",
}

// String returns the class name.
func (c ExecClass) String() string {
	if c < NumExecClasses {
		return execClassNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// UOp is a predecoded micro-operation: one architectural instruction with
// every per-cycle decode decision resolved up front — operand routing,
// register read/write ports, EX dispatch class, control-flow targets, the
// secure bit and the energy-relevant unit selection. The CPU predecodes a
// program once into a dense []UOp table at construction, so the steady-state
// pipeline loop performs table lookups only: no decoding, no format
// switches, and no allocation.
type UOp struct {
	PC     uint32 // instruction address
	Word   uint32 // binary encoding, as driven on the fetch bus
	Target uint32 // precomputed taken target (branches, j, jal; jr is dynamic)
	BConst uint32 // operand-B constant when !BReg (immediate, shamt, or 0)
	Off    uint32 // load/store address offset (sign-extended)

	Class ExecClass
	Op    Opcode
	SrcA  Reg   // operand-A register ($zero when A is the constant 0)
	SrcB  Reg   // operand-B register, meaningful when BReg
	Dest  Reg   // destination register ($zero = no register write)
	NSrc  uint8 // register-file read ports fired in ID

	BReg    bool // operand B is read from SrcB (and forwarded); else BConst
	Secure  bool // executes on the dual-rail precharged datapath
	Load    bool
	Store   bool
	XorUnit bool // uses the dedicated XOR unit (energy accounting)

	Inst Inst // the architectural instruction (disassembly, probe inspection)
}

// execClassOf maps an opcode to its EX dispatch class.
func execClassOf(op Opcode) (ExecClass, bool) {
	switch op {
	case OpAddu, OpAddiu:
		return ClassAdd, true
	case OpSubu:
		return ClassSub, true
	case OpAnd, OpAndi:
		return ClassAnd, true
	case OpOr, OpOri:
		return ClassOr, true
	case OpXor, OpXori:
		return ClassXor, true
	case OpNor:
		return ClassNor, true
	case OpSll, OpSllv:
		return ClassSll, true
	case OpSrl, OpSrlv:
		return ClassSrl, true
	case OpSra, OpSrav:
		return ClassSra, true
	case OpSlt, OpSlti:
		return ClassSlt, true
	case OpSltu, OpSltiu:
		return ClassSltu, true
	case OpMul:
		return ClassMul, true
	case OpLui:
		return ClassLui, true
	case OpLw, OpSw:
		return ClassMem, true
	case OpBeq:
		return ClassBeq, true
	case OpBne:
		return ClassBne, true
	case OpBlez:
		return ClassBlez, true
	case OpBgtz:
		return ClassBgtz, true
	case OpJ:
		return ClassJ, true
	case OpJal:
		return ClassJal, true
	case OpJr:
		return ClassJr, true
	case OpHalt:
		return ClassHalt, true
	}
	return 0, false
}

// Predecode resolves one instruction at address pc into its micro-op form.
// The operand routing mirrors the pipelined ID stage exactly: A is always a
// register read ($zero when the format has no first operand), B is either a
// forwarded register read or a constant.
func Predecode(in Inst, pc uint32) (UOp, error) {
	word, err := Encode(in)
	if err != nil {
		return UOp{}, fmt.Errorf("isa: predecode at pc %#x: %w", pc, err)
	}
	return predecodeWord(in, pc, word)
}

// predecodeWord builds the micro-op for an instruction whose target-specific
// binary encoding is already known. The operand routing, control-flow targets
// and flags depend only on the architectural instruction, so every target
// shares this body; callers overlay target-specific EX classes (ClassLui12)
// afterwards.
func predecodeWord(in Inst, pc, word uint32) (UOp, error) {
	class, ok := execClassOf(in.Op)
	if !ok {
		return UOp{}, fmt.Errorf("isa: cannot predecode opcode %v at pc %#x", in.Op, pc)
	}
	u := UOp{
		PC:      pc,
		Word:    word,
		Class:   class,
		Op:      in.Op,
		Secure:  in.Secure,
		Load:    in.Op.IsLoad(),
		Store:   in.Op.IsStore(),
		XorUnit: in.Op == OpXor || in.Op == OpXori,
		NSrc:    uint8(len(in.Sources())),
		Inst:    in,
	}
	if d, ok := in.Dest(); ok {
		u.Dest = d
	}
	switch in.Op.Format() {
	case FmtR:
		u.SrcA, u.SrcB, u.BReg = in.Rs, in.Rt, true
	case FmtRShift:
		u.SrcA, u.BConst = in.Rt, uint32(in.Imm)
	case FmtRJump:
		u.SrcA = in.Rs
	case FmtI:
		u.SrcA, u.BConst = in.Rs, uint32(in.Imm)
	case FmtILui:
		u.BConst = uint32(in.Imm)
	case FmtIMem:
		u.SrcA, u.Off = in.Rs, uint32(in.Imm)
		if in.Op.IsStore() {
			u.SrcB, u.BReg = in.Rt, true
		}
	case FmtIBranch:
		// blez/bgtz leave Rt at $zero: B reads as 0 and is never forwarded,
		// matching a hardware read of the zero register.
		u.SrcA, u.SrcB, u.BReg = in.Rs, in.Rt, true
	case FmtJ, FmtNone:
		// No operands; A and B read as 0.
	}
	switch {
	case in.Op.IsBranch():
		u.Target = pc + 4 + uint32(in.Imm)*4
	case in.Op == OpJ || in.Op == OpJal:
		u.Target = uint32(in.Imm) * 4
	}
	return u, nil
}

// PredecodeProgram predecodes a text segment based at textBase into a dense
// micro-op table, index = (pc - textBase) / 4.
func PredecodeProgram(text []Inst, textBase uint32) ([]UOp, error) {
	uops := make([]UOp, len(text))
	for i, in := range text {
		u, err := Predecode(in, textBase+uint32(4*i))
		if err != nil {
			return nil, fmt.Errorf("isa: text word %d: %w", i, err)
		}
		uops[i] = u
	}
	return uops, nil
}
