package isa

import "testing"

func TestPredecodeMirrorsInstMetadata(t *testing.T) {
	cases := []Inst{
		{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2},
		{Op: OpSubu, Rd: T0, Rs: T1, Rt: T2, Secure: true},
		{Op: OpXor, Rd: S0, Rs: S1, Rt: S2},
		{Op: OpXori, Rt: T3, Rs: T4, Imm: 0x1f},
		{Op: OpSll, Rd: T0, Rt: T1, Imm: 3},
		{Op: OpSrav, Rd: T0, Rs: T1, Rt: T2},
		{Op: OpAddiu, Rt: T5, Rs: SP, Imm: -16},
		{Op: OpLui, Rt: T6, Imm: 0x1234},
		{Op: OpLw, Rt: T0, Rs: GP, Imm: 64, Secure: true},
		{Op: OpSw, Rt: T0, Rs: SP, Imm: -4},
		{Op: OpBeq, Rs: T0, Rt: T1, Imm: -6},
		{Op: OpBne, Rs: T0, Rt: T1, Imm: 10},
		{Op: OpBlez, Rs: T0, Imm: 2},
		{Op: OpBgtz, Rs: T0, Imm: -2},
		{Op: OpJ, Imm: 0x40},
		{Op: OpJal, Imm: 0x80},
		{Op: OpJr, Rs: RA},
		{Op: OpHalt},
		Nop(),
	}
	const pc = 0x1000
	for _, in := range cases {
		u, err := Predecode(in, pc)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if int(u.NSrc) != len(in.Sources()) {
			t.Errorf("%v: NSrc = %d, want %d", in, u.NSrc, len(in.Sources()))
		}
		if d, ok := in.Dest(); ok {
			if u.Dest != d {
				t.Errorf("%v: Dest = %v, want %v", in, u.Dest, d)
			}
		} else if u.Dest != Zero {
			t.Errorf("%v: Dest = %v, want no write", in, u.Dest)
		}
		if want, err := Encode(in); err != nil || u.Word != want {
			t.Errorf("%v: Word = %#x, want %#x (err %v)", in, u.Word, want, err)
		}
		if u.Secure != in.Secure || u.Load != in.Op.IsLoad() || u.Store != in.Op.IsStore() {
			t.Errorf("%v: flag mismatch: %+v", in, u)
		}
		if u.XorUnit != (in.Op == OpXor || in.Op == OpXori) {
			t.Errorf("%v: XorUnit = %v", in, u.XorUnit)
		}
		// Every register named as a source must be forwardable through
		// SrcA/SrcB, and nothing else may be.
		wantSrc := map[Reg]bool{}
		for _, s := range in.Sources() {
			if s != Zero {
				wantSrc[s] = true
			}
		}
		gotSrc := map[Reg]bool{}
		if u.SrcA != Zero {
			gotSrc[u.SrcA] = true
		}
		if u.BReg && u.SrcB != Zero {
			gotSrc[u.SrcB] = true
		}
		for r := range wantSrc {
			if !gotSrc[r] {
				t.Errorf("%v: source %v not routed through SrcA/SrcB", in, r)
			}
		}
		for r := range gotSrc {
			if !wantSrc[r] {
				t.Errorf("%v: %v routed as operand but not an architectural source", in, r)
			}
		}
	}
}

func TestPredecodeTargets(t *testing.T) {
	u, err := Predecode(Inst{Op: OpBeq, Rs: T0, Rt: T1, Imm: -6}, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32(0x1000 + 4 - 6*4); u.Target != want {
		t.Errorf("beq target = %#x, want %#x", u.Target, want)
	}
	u, err = Predecode(Inst{Op: OpJal, Imm: 0x80}, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32(0x80 * 4); u.Target != want {
		t.Errorf("jal target = %#x, want %#x", u.Target, want)
	}
}

func TestPredecodeRejectsInvalid(t *testing.T) {
	if _, err := Predecode(Inst{Op: OpInvalid}, 0); err == nil {
		t.Fatal("predecode accepted an invalid opcode")
	}
	if _, err := PredecodeProgram([]Inst{Nop(), {Op: OpInvalid}}, 0x400); err == nil {
		t.Fatal("PredecodeProgram accepted an invalid opcode")
	}
}
