package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		Zero: "$zero", AT: "$at", V0: "$v0", A0: "$a0",
		T0: "$t0", S7: "$s7", SP: "$sp", RA: "$ra",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegByName(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r := Reg(i)
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", r.String(), got, ok, r)
		}
	}
	// Numeric aliases.
	if r, ok := RegByName("$8"); !ok || r != T0 {
		t.Errorf("RegByName($8) = %v, %v; want $t0, true", r, ok)
	}
	if r, ok := RegByName("31"); !ok || r != RA {
		t.Errorf("RegByName(31) = %v, %v; want $ra, true", r, ok)
	}
	if _, ok := RegByName("$bogus"); ok {
		t.Error("RegByName($bogus) succeeded, want failure")
	}
	if _, ok := RegByName("$32"); ok {
		t.Error("RegByName($32) succeeded, want failure")
	}
}

func TestOpcodeByNameRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Error("OpcodeByName(frobnicate) succeeded, want failure")
	}
}

func TestOpcodeClassPredicates(t *testing.T) {
	if !OpBeq.IsBranch() || OpJ.IsBranch() || OpAddu.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !OpJ.IsJump() || !OpJal.IsJump() || !OpJr.IsJump() || OpBne.IsJump() {
		t.Error("IsJump misclassifies")
	}
	if !OpLw.IsLoad() || OpSw.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpSw.IsStore() || OpLw.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpLw.IsMem() || !OpSw.IsMem() || OpXor.IsMem() {
		t.Error("IsMem misclassifies")
	}
}

func TestNop(t *testing.T) {
	n := Nop()
	if !n.IsNop() {
		t.Fatal("Nop() is not IsNop")
	}
	w, err := Encode(n)
	if err != nil {
		t.Fatalf("Encode(Nop): %v", err)
	}
	d, err := Decode(w)
	if err != nil {
		t.Fatalf("Decode(Nop): %v", err)
	}
	if !d.IsNop() {
		t.Errorf("decoded nop = %v, not a nop", d)
	}
	if Nop().Secure {
		t.Error("Nop must not be secure")
	}
	other := Inst{Op: OpSll, Rd: T0, Rt: T1, Imm: 2}
	if other.IsNop() {
		t.Error("real shift classified as nop")
	}
}

func TestDest(t *testing.T) {
	cases := []struct {
		in    Inst
		reg   Reg
		write bool
	}{
		{Inst{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2}, T0, true},
		{Inst{Op: OpAddu, Rd: Zero, Rs: T1, Rt: T2}, 0, false},
		{Inst{Op: OpSll, Rd: S0, Rt: T2, Imm: 4}, S0, true},
		{Inst{Op: OpLw, Rt: T3, Rs: SP, Imm: 8}, T3, true},
		{Inst{Op: OpSw, Rt: T3, Rs: SP, Imm: 8}, 0, false},
		{Inst{Op: OpLui, Rt: A0, Imm: 1}, A0, true},
		{Inst{Op: OpBeq, Rs: T0, Rt: T1, Imm: 4}, 0, false},
		{Inst{Op: OpJ, Imm: 16}, 0, false},
		{Inst{Op: OpJal, Imm: 16}, RA, true},
		{Inst{Op: OpJr, Rs: RA}, 0, false},
		{Inst{Op: OpHalt}, 0, false},
	}
	for _, c := range cases {
		r, ok := c.in.Dest()
		if ok != c.write || (ok && r != c.reg) {
			t.Errorf("%v.Dest() = %v, %v; want %v, %v", c.in, r, ok, c.reg, c.write)
		}
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2}, []Reg{T1, T2}},
		{Inst{Op: OpSll, Rd: T0, Rt: T2, Imm: 3}, []Reg{T2}},
		{Inst{Op: OpJr, Rs: RA}, []Reg{RA}},
		{Inst{Op: OpAddiu, Rt: T0, Rs: T1, Imm: 4}, []Reg{T1}},
		{Inst{Op: OpLui, Rt: T0, Imm: 4}, nil},
		{Inst{Op: OpLw, Rt: T0, Rs: SP, Imm: 0}, []Reg{SP}},
		{Inst{Op: OpSw, Rt: T0, Rs: SP, Imm: 0}, []Reg{SP, T0}},
		{Inst{Op: OpBeq, Rs: T0, Rt: T1, Imm: 2}, []Reg{T0, T1}},
		{Inst{Op: OpBlez, Rs: T0, Imm: 2}, []Reg{T0}},
		{Inst{Op: OpJ, Imm: 0}, nil},
	}
	for _, c := range cases {
		got := c.in.Sources()
		if len(got) != len(c.want) {
			t.Errorf("%v.Sources() = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v.Sources() = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestEncodeDecodeExamples(t *testing.T) {
	cases := []Inst{
		{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2},
		{Op: OpXor, Rd: S0, Rs: S1, Rt: S2, Secure: true},
		{Op: OpSll, Rd: T0, Rt: T1, Imm: 31},
		{Op: OpSra, Rd: T0, Rt: T1, Imm: 0, Secure: true},
		{Op: OpJr, Rs: RA},
		{Op: OpAddiu, Rt: T0, Rs: Zero, Imm: -1},
		{Op: OpAddiu, Rt: T0, Rs: Zero, Imm: MaxImm},
		{Op: OpAddiu, Rt: T0, Rs: Zero, Imm: MinImm},
		{Op: OpOri, Rt: T0, Rs: Zero, Imm: MaxUImm},
		{Op: OpLui, Rt: GP, Imm: 0x4000},
		{Op: OpLw, Rt: V0, Rs: SP, Imm: -4, Secure: true},
		{Op: OpSw, Rt: V0, Rs: SP, Imm: 4, Secure: true},
		{Op: OpBeq, Rs: T0, Rt: Zero, Imm: -10},
		{Op: OpBgtz, Rs: A0, Imm: 100},
		{Op: OpJ, Imm: MaxJumpTarget},
		{Op: OpJal, Imm: 12},
		{Op: OpHalt},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		out, err := Decode(w)
		if err != nil {
			t.Errorf("Decode(Encode(%v)): %v", in, err)
			continue
		}
		if out != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid},
		{Op: numOpcodes},
		{Op: OpBeq, Secure: true, Rs: T0, Rt: T1, Imm: 0}, // branch not securable
		{Op: OpJ, Secure: true, Imm: 0},                   // jump not securable
		{Op: OpAddu, Rd: 40, Rs: T0, Rt: T1},              // bad register
		{Op: OpSll, Rd: T0, Rt: T1, Imm: 32},              // shamt too big
		{Op: OpSll, Rd: T0, Rt: T1, Imm: -1},              // negative shamt
		{Op: OpAddiu, Rt: T0, Rs: T1, Imm: MaxImm + 1},    // imm overflow
		{Op: OpAddiu, Rt: T0, Rs: T1, Imm: MinImm - 1},    // imm underflow
		{Op: OpOri, Rt: T0, Rs: T1, Imm: -5},              // unsigned imm negative
		{Op: OpOri, Rt: T0, Rs: T1, Imm: MaxUImm + 1},     // unsigned overflow
		{Op: OpJ, Imm: MaxJumpTarget + 1},                 // target overflow
		{Op: OpJ, Imm: -1},                                // negative target
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	// All-zero word: OpInvalid.
	if _, err := Decode(0); err == nil {
		t.Error("Decode(0) succeeded, want error")
	}
	// Opcode beyond table.
	if _, err := Decode(uint32(numOpcodes) << 26); err == nil {
		t.Error("Decode(bad opcode) succeeded, want error")
	}
	// Secure bit on a branch.
	w, err := Encode(Inst{Op: OpBeq, Rs: T0, Rt: T1, Imm: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(w | 1<<25); err == nil {
		t.Error("Decode(secure branch) succeeded, want error")
	}
}

// randomValidInst builds a random encodable instruction for property testing.
func randomValidInst(r *rand.Rand) Inst {
	for {
		op := Opcode(1 + r.Intn(int(numOpcodes)-1))
		in := Inst{Op: op}
		if op.Securable() && r.Intn(2) == 1 {
			in.Secure = true
		}
		reg := func() Reg { return Reg(r.Intn(NumRegs)) }
		switch op.Format() {
		case FmtR:
			in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
		case FmtRShift:
			in.Rd, in.Rt, in.Imm = reg(), reg(), int32(r.Intn(32))
		case FmtRJump:
			in.Rs = reg()
		case FmtI, FmtIMem, FmtIBranch:
			in.Rt, in.Rs = reg(), reg()
			if usesUnsignedImm(op) {
				in.Imm = int32(r.Intn(MaxUImm + 1))
			} else {
				in.Imm = int32(r.Intn(MaxImm-MinImm+1)) + MinImm
			}
		case FmtILui:
			in.Rt = reg()
			in.Imm = int32(r.Intn(MaxUImm + 1))
		case FmtJ:
			in.Imm = int32(r.Intn(MaxJumpTarget + 1))
		}
		return in
	}
}

// TestEncodeDecodeProperty checks Decode(Encode(x)) == x over random valid
// instructions.
func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomValidInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%v): %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("Decode(%#08x): %v", w, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanics feeds arbitrary words to Decode.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return in.Op == OpInvalid
		}
		// Re-encoding a successfully decoded word must reproduce it modulo
		// don't-care bits; at minimum it must succeed.
		_, err = Encode(in)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAddu, Rd: T0, Rs: T1, Rt: T2}, "addu $t0, $t1, $t2"},
		{Inst{Op: OpXor, Rd: T0, Rs: T1, Rt: T2, Secure: true}, "xor.s $t0, $t1, $t2"},
		{Inst{Op: OpSll, Rd: T0, Rt: T1, Imm: 2}, "sll $t0, $t1, 2"},
		{Inst{Op: OpLw, Rt: V0, Rs: SP, Imm: -8}, "lw $v0, -8($sp)"},
		{Inst{Op: OpLw, Rt: V0, Rs: SP, Imm: -8, Secure: true}, "lw.s $v0, -8($sp)"},
		{Inst{Op: OpBeq, Rs: T0, Rt: Zero, Imm: 3}, "beq $t0, $zero, +3"},
		{Inst{Op: OpBlez, Rs: T0, Imm: -2}, "blez $t0, -2"},
		{Inst{Op: OpJr, Rs: RA}, "jr $ra"},
		{Inst{Op: OpJ, Imm: 4}, "j 0x10"},
		{Inst{Op: OpHalt}, "halt"},
		{Inst{Op: OpLui, Rt: GP, Imm: 3}, "lui $gp, 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestMnemonicSecureSuffix(t *testing.T) {
	i := Inst{Op: OpLw, Rt: T0, Rs: SP, Secure: true}
	if !strings.HasSuffix(i.Mnemonic(), ".s") {
		t.Errorf("secure mnemonic %q lacks .s suffix", i.Mnemonic())
	}
}

func TestSecurableCoversPaperOps(t *testing.T) {
	// The paper requires secure variants of: load, store, XOR, shifts, and
	// the ops composing secure assignment and secure indexing (addu).
	for _, op := range []Opcode{OpLw, OpSw, OpXor, OpSll, OpSrl, OpSllv, OpSrlv, OpAddu} {
		if !op.Securable() {
			t.Errorf("%v must be securable per the paper", op)
		}
	}
	for _, op := range []Opcode{OpBeq, OpBne, OpJ, OpJal, OpJr, OpHalt} {
		if op.Securable() {
			t.Errorf("%v must not be securable (control flow leaks by design are out of scope)", op)
		}
	}
}
