// Package desprog contains the DES encryption program that runs on the
// simulated smart-card processor: the paper's workload. The program is
// written in MiniC in the paper's bit-per-word style (cf. Figure 4's
// `newL[i] = oldR[i]` loop), with the 64-bit key annotated `secure`, and is
// structured into the phases of the paper's Figure 2 — initial permutation,
// key permutation, per-round key generation / right side / left side, and
// the (deliberately insecure) output inverse permutation — one function per
// phase, so that energy-trace windows can be located from the symbol table.
//
// The MiniC source is generated from the FIPS tables in package des, which
// also serves as the correctness oracle.
package desprog

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/des"
	"desmask/internal/energy"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// Source returns the MiniC source of the DES encryption program.
func Source() string { return source(false) }

// SourceDecrypt returns the MiniC source of the DES decryption program: the
// same rounds with the sub-keys consumed in reverse order, generated
// on the fly by emitting PC-2 before rotating (rightward) each round.
func SourceDecrypt() string { return source(true) }

func source(decrypt bool) string {
	var b strings.Builder
	b.WriteString(`// DES for the desmask simulated smart-card core.
// Bit-per-word data layout; the key is the secure seed.

secure int key[64];      // input: key bits, MSB first (FIPS bit 1 = key[0])
int plaintext[64];       // input: plaintext bits, MSB first
int cipher[64];          // output: ciphertext bits, MSB first

`)
	writeTable := func(name string, vals []int) {
		fmt.Fprintf(&b, "int %s[%d] = {", name, len(vals))
		for i, v := range vals {
			if i > 0 {
				b.WriteString(", ")
			}
			if i%16 == 0 && i > 0 {
				b.WriteString("\n\t")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteString("};\n")
	}
	writeTable("IP_TAB", des.IP)
	writeTable("FP_TAB", des.FP)
	writeTable("E_TAB", des.E)
	writeTable("P_TAB", des.P)
	writeTable("PC1_TAB", des.PC1)
	writeTable("PC2_TAB", des.PC2)
	writeTable("SHIFT_TAB", des.Shifts)
	sbox := make([]int, 0, 512)
	for box := 0; box < 8; box++ {
		for i := 0; i < 64; i++ {
			sbox = append(sbox, int(des.SBox[box][i]))
		}
	}
	writeTable("SBOX_TAB", sbox)

	b.WriteString(`
int L[32];
int R[32];
int C[28];
int D[28];
int SUBKEY[48];
int ER[48];
int SOUT[32];
int FOUT[32];
int IPOUT[64];
int PRE[64];

// Initial permutation of the plaintext and split into halves. Uses no key
// material, so it runs entirely insecure (paper Figure 2).
void initial_permutation() {
	int i;
	for (i = 0; i < 64; i = i + 1) { IPOUT[i] = plaintext[IP_TAB[i] - 1]; }
	for (i = 0; i < 32; i = i + 1) { L[i] = IPOUT[i]; }
	for (i = 0; i < 32; i = i + 1) { R[i] = IPOUT[32 + i]; }
}

// PC-1: (C,D) = PermuteK1(Key). Reads the secure key, so the compiler
// protects every value access here.
void key_permutation() {
	int i;
	for (i = 0; i < 28; i = i + 1) { C[i] = key[PC1_TAB[i] - 1]; }
	for (i = 0; i < 28; i = i + 1) { D[i] = key[PC1_TAB[28 + i] - 1]; }
}

__KEYGEN__

// Right side operation: FOUT = L ^ P(S(E(R) ^ K)). The S-box lookups use
// key-derived indices, exercising the secure-indexing path.
void right_side() {
	int i;
	int box;
	int base;
	int sidx;
	int val;
	for (i = 0; i < 48; i = i + 1) { ER[i] = R[E_TAB[i] - 1] ^ SUBKEY[i]; }
	shuffle for (box = 0; box < 8; box = box + 1) {
		base = box * 6;
		sidx = (ER[base] * 2 + ER[base + 5]) * 16
			+ ER[base + 1] * 8 + ER[base + 2] * 4
			+ ER[base + 3] * 2 + ER[base + 4];
		val = SBOX_TAB[box * 64 + sidx];
		SOUT[box * 4] = (val >> 3) & 1;
		SOUT[box * 4 + 1] = (val >> 2) & 1;
		SOUT[box * 4 + 2] = (val >> 1) & 1;
		SOUT[box * 4 + 3] = val & 1;
	}
	for (i = 0; i < 32; i = i + 1) { FOUT[i] = L[i] ^ SOUT[P_TAB[i] - 1]; }
}

// Left side operation: Lm = Rm-1 (the paper's Figure 4 loop).
void left_side() {
	int i;
	for (i = 0; i < 32; i = i + 1) { L[i] = R[i]; }
}

// Commit the round function output: Rm = Lm-1 ^ f(Rm-1, K).
void update_right() {
	int i;
	for (i = 0; i < 32; i = i + 1) { R[i] = FOUT[i]; }
}

// Output = IP^-1(R16 || L16). Reveals only what the ciphertext reveals, so
// the paper leaves it insecure: public() declassifies the final state.
void output_permutation() {
	int i;
	for (i = 0; i < 32; i = i + 1) { PRE[i] = public(R[i]); }
	for (i = 0; i < 32; i = i + 1) { PRE[32 + i] = public(L[i]); }
	for (i = 0; i < 64; i = i + 1) { cipher[i] = PRE[FP_TAB[i] - 1]; }
}

__MAIN__
`)
	src := b.String()
	keygenEnc := `// Round key generation: rotate C and D left by n, then K = PC-2(C || D).
void key_generation(int n) {
	int i;
	int idx;
	int tc[28];
	int td[28];
	for (i = 0; i < 28; i = i + 1) {
		idx = i + n;
		if (idx >= 28) { idx = idx - 28; }
		tc[i] = C[idx];
		td[i] = D[idx];
	}
	for (i = 0; i < 28; i = i + 1) { C[i] = tc[i]; }
	for (i = 0; i < 28; i = i + 1) { D[i] = td[i]; }
	for (i = 0; i < 48; i = i + 1) {
		idx = PC2_TAB[i] - 1;
		if (idx < 28) { SUBKEY[i] = C[idx]; }
		else { SUBKEY[i] = D[idx - 28]; }
	}
}
`
	keygenDec := `// Decryption round key generation: emit K = PC-2(C || D) first (so the
// first round sees K16 — PC-1 of the key equals the state after the full
// 28-bit rotation), then rotate C and D right by n (left by 28-n).
void key_generation(int n) {
	int i;
	int idx;
	int tc[28];
	int td[28];
	for (i = 0; i < 48; i = i + 1) {
		idx = PC2_TAB[i] - 1;
		if (idx < 28) { SUBKEY[i] = C[idx]; }
		else { SUBKEY[i] = D[idx - 28]; }
	}
	for (i = 0; i < 28; i = i + 1) {
		idx = (i + 28) - n;
		if (idx >= 28) { idx = idx - 28; }
		tc[i] = C[idx];
		td[i] = D[idx];
	}
	for (i = 0; i < 28; i = i + 1) { C[i] = tc[i]; }
	for (i = 0; i < 28; i = i + 1) { D[i] = td[i]; }
}
`
	mainEnc := `void main() {
	int r;
	initial_permutation();
	key_permutation();
	for (r = 0; r < 16; r = r + 1) {
		key_generation(SHIFT_TAB[r]);
		right_side();
		left_side();
		update_right();
	}
	output_permutation();
}
`
	mainDec := `void main() {
	int r;
	initial_permutation();
	key_permutation();
	for (r = 0; r < 16; r = r + 1) {
		key_generation(SHIFT_TAB[15 - r]);
		right_side();
		left_side();
		update_right();
	}
	output_permutation();
}
`
	if decrypt {
		src = strings.Replace(src, "__KEYGEN__", keygenDec, 1)
		src = strings.Replace(src, "__MAIN__", mainDec, 1)
	} else {
		src = strings.Replace(src, "__KEYGEN__", keygenEnc, 1)
		src = strings.Replace(src, "__MAIN__", mainEnc, 1)
	}
	return src
}

// Phase names whose f_<name> symbols delimit trace windows.
const (
	FuncInitialPermutation = "initial_permutation"
	FuncKeyPermutation     = "key_permutation"
	FuncKeyGeneration      = "key_generation"
	FuncRightSide          = "right_side"
	FuncLeftSide           = "left_side"
	FuncUpdateRight        = "update_right"
	FuncOutputPermutation  = "output_permutation"
)

// Machine is a compiled DES program ready to encrypt on the simulator under
// one protection policy and energy configuration.
type Machine struct {
	Policy compiler.Policy
	Res    *compiler.Result
	Cfg    energy.Config
	// Decrypt marks a machine built from SourceDecrypt.
	Decrypt bool

	runnerOnce sync.Once
	runner     *sim.Runner
}

// New compiles the DES program under the given policy with the default
// energy configuration.
func New(policy compiler.Policy) (*Machine, error) {
	return NewWithConfig(policy, energy.DefaultConfig())
}

// NewWithConfig compiles the DES program with an explicit energy model
// configuration (for ablations).
func NewWithConfig(policy compiler.Policy, cfg energy.Config) (*Machine, error) {
	return NewFull(compiler.Options{Policy: policy}, cfg)
}

// NewFull compiles the DES program with full compiler options and energy
// configuration, enabling every ablation.
func NewFull(opt compiler.Options, cfg energy.Config) (*Machine, error) {
	res, err := compiler.CompileWithOptions(Source(), opt)
	if err != nil {
		return nil, fmt.Errorf("desprog: %w", err)
	}
	return &Machine{Policy: opt.Policy, Res: res, Cfg: cfg}, nil
}

// NewDecrypt compiles the DES *decryption* program under the given policy.
// On the returned machine, Encrypt takes a ciphertext block and produces
// the plaintext (the "cipher" output global holds the decryption result).
func NewDecrypt(policy compiler.Policy) (*Machine, error) {
	res, err := compiler.CompileWithOptions(SourceDecrypt(), compiler.Options{Policy: policy})
	if err != nil {
		return nil, fmt.Errorf("desprog: %w", err)
	}
	return &Machine{Policy: policy, Res: res, Cfg: energy.DefaultConfig(), Decrypt: true}, nil
}

// MaxCycles generously bounds one full encryption.
const MaxCycles = 4_000_000

// spreadBits unpacks v into 64 words, MSB first.
func spreadBits(v uint64) []uint32 {
	out := make([]uint32, 64)
	for i := 0; i < 64; i++ {
		out[i] = uint32(v >> (63 - i) & 1)
	}
	return out
}

// gatherBits packs 64 words (MSB first) into a uint64.
func gatherBits(words []uint32) uint64 {
	var v uint64
	for i := 0; i < 64; i++ {
		v = v<<1 | uint64(words[i]&1)
	}
	return v
}

// globalAddr resolves the address of a MiniC global.
func (m *Machine) globalAddr(name string) (uint32, error) {
	addr, ok := m.Res.Program.Symbols[compiler.GlobalLabel(name)]
	if !ok {
		return 0, fmt.Errorf("desprog: no global %q in symbol table", name)
	}
	return addr, nil
}

// EntryPC returns the first-instruction address of phase function fn
// ("key_generation" etc.), for locating trace windows.
func (m *Machine) EntryPC(fn string) (uint32, error) {
	addr, ok := m.Res.Program.Symbols["f_"+fn]
	if !ok {
		return 0, fmt.Errorf("desprog: no function %q in symbol table", fn)
	}
	return addr, nil
}

// Runner returns the machine's simulation session (created on first use):
// the single path from the compiled DES program to the simulator, and the
// entry point for parallel batch execution.
func (m *Machine) Runner() *sim.Runner {
	m.runnerOnce.Do(func() {
		m.runner = sim.NewRunner(m.Res.Program, m.Cfg)
		m.runner.MaxCycles = MaxCycles
	})
	return m.runner
}

// EncryptJob assembles the sim.Job of one encryption: the key and plaintext
// bits are poked into their input globals in a fixed order (key first, then
// plaintext) so simulation setup is fully deterministic, and the ciphertext
// global is read back. On masked/shuffled machines it delegates to
// EncryptJobSeeded with seed 0 — deterministic, but every trace of a batch
// built this way reuses the same masks; attack and statistics drivers must
// use EncryptJobSeeded with fresh per-trace seeds.
func (m *Machine) EncryptJob(key, plaintext uint64, maxCycles uint64, capture bool) (sim.Job, error) {
	return m.EncryptJobSeeded(key, plaintext, 0, maxCycles, capture)
}

// EncryptJobSeeded is EncryptJob plus the masking/shuffling runtime state for
// one execution, all derived from maskSeed: on a PolicyBooleanMask machine the
// key is poked pre-split into share pairs (key[i] = bit XOR m_i into the data
// slot, m_i into the shadow slot — the raw key never appears in simulated
// memory), the scrub word and the fresh-mask pool are filled with stream
// randoms, and the final pool cursor is read back (Reads[1]) so callers can
// assert the pool did not overflow; on a shuffled machine the __shuf global
// gets a fresh random permutation. On unprotected machines maskSeed is
// ignored and the job is the plain EncryptJob. Reads[0] is always the
// ciphertext.
func (m *Machine) EncryptJobSeeded(key, plaintext uint64, maskSeed int64, maxCycles uint64, capture bool) (sim.Job, error) {
	job := sim.Job{MaxCycles: maxCycles, Trace: capture}
	rng := compiler.NewMaskStream(maskSeed)
	masked := make(map[string]bool)
	if m.Res.Mask != nil {
		for _, g := range m.Res.Mask.MaskedGlobals {
			masked[g] = true
		}
	}
	for _, in := range []struct {
		name string
		v    uint64
	}{{"key", key}, {"plaintext", plaintext}} {
		addr, err := m.globalAddr(in.name)
		if err != nil {
			return sim.Job{}, err
		}
		if masked[in.name] {
			shadow, err := m.globalAddr(compiler.MaskShadow(in.name))
			if err != nil {
				return sim.Job{}, err
			}
			for i, w := range spreadBits(in.v) {
				mi := rng.Next32()
				job.Writes = append(job.Writes,
					sim.Write{Addr: addr + uint32(4*i), Val: w ^ mi},
					sim.Write{Addr: shadow + uint32(4*i), Val: mi})
			}
			continue
		}
		for i, w := range spreadBits(in.v) {
			job.Writes = append(job.Writes, sim.Write{Addr: addr + uint32(4*i), Val: w})
		}
	}
	addr, err := m.globalAddr("cipher")
	if err != nil {
		return sim.Job{}, err
	}
	job.Reads = []sim.Read{{Addr: addr, Words: 64}}
	if m.Res.Mask != nil {
		if err := m.maskRuntimeWrites(&job, rng); err != nil {
			return sim.Job{}, err
		}
	}
	return job, nil
}

// maskRuntimeWrites appends the per-execution mask pool, scrub word and
// shuffle permutation to a job, plus the pool-cursor read-back.
func (m *Machine) maskRuntimeWrites(job *sim.Job, rng *compiler.MaskStream) error {
	mrt := m.Res.Mask
	for _, p := range mrt.RuntimePokes(rng) {
		addr, err := m.globalAddr(p.Sym)
		if err != nil {
			return err
		}
		job.Writes = append(job.Writes, sim.Write{Addr: addr + uint32(4*p.Word), Val: p.Val})
	}
	if mrt.PoolWords > 0 {
		cursor, err := m.globalAddr(compiler.MaskCursorSym)
		if err != nil {
			return err
		}
		job.Reads = append(job.Reads, sim.Read{Addr: cursor, Words: 1})
	}
	return nil
}

// CheckMaskCursor asserts a masked run stayed inside its fresh-mask pool,
// using the cursor read-back appended by EncryptJobSeeded. No-op on
// unprotected machines.
func (m *Machine) CheckMaskCursor(res sim.Result) error {
	if m.Res.Mask == nil || m.Res.Mask.PoolWords == 0 {
		return nil
	}
	if len(res.Mem) < 2 || len(res.Mem[1]) != 1 {
		return fmt.Errorf("desprog: masked run result carries no pool cursor read-back")
	}
	pool, err := m.globalAddr(compiler.MaskPoolSym)
	if err != nil {
		return err
	}
	end := pool + uint32(4*m.Res.Mask.PoolWords)
	cur := res.Mem[1][0]
	if cur < pool || cur > end {
		return fmt.Errorf("desprog: mask pool overflow: cursor %#x outside [%#x,%#x] (%d words drawn, pool holds %d)",
			cur, pool, end, (cur-pool)/4, m.Res.Mask.PoolWords)
	}
	return nil
}

// Encrypt runs one encryption through the simulation session, attaching any
// extra probes for the run. maxCycles <= 0 uses MaxCycles; when the budget
// expires before completion (useful for first-round-only attack traces) the
// partial result is returned with done == false.
func (m *Machine) Encrypt(key, plaintext uint64, maxCycles uint64, probes ...cpu.Probe) (cipherText uint64, stats sim.Stats, done bool, err error) {
	if maxCycles <= 0 {
		maxCycles = MaxCycles
	}
	job, err := m.EncryptJob(key, plaintext, maxCycles, false)
	if err != nil {
		return 0, sim.Stats{}, false, err
	}
	job.Probe = sim.SharedProbes(probes...)
	res := m.Runner().Run(job)
	if res.Err != nil {
		return 0, sim.Stats{}, false, res.Err
	}
	return gatherBits(res.Mem[0]), res.Stats, res.Done, nil
}

// EncryptBatch runs one encryption per plaintext under the same key across
// the session's worker pool, returning results in plaintext order. capture
// records each run's full per-cycle trace. maxCycles <= 0 uses MaxCycles.
func (m *Machine) EncryptBatch(key uint64, plaintexts []uint64, maxCycles uint64, capture bool, opts sim.Options) ([]sim.Result, error) {
	if maxCycles <= 0 {
		maxCycles = MaxCycles
	}
	jobs := make([]sim.Job, len(plaintexts))
	for i, pt := range plaintexts {
		job, err := m.EncryptJobSeeded(key, pt, sim.DeriveSeed(0, i), maxCycles, capture)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	return m.Runner().RunBatch(jobs, opts)
}

// Input is one (key, plaintext) pair of a trace batch.
type Input struct {
	Key       uint64
	Plaintext uint64
}

// TraceBatch captures full per-cycle traces for several inputs in parallel,
// returning traces and ciphertexts in input order. Mask seeds derive from
// base seed 0; attack drivers wanting an explicit mask stream should use
// TraceBatchSeeded.
func (m *Machine) TraceBatch(inputs []Input, opts sim.Options) ([]*trace.Trace, []uint64, error) {
	return m.TraceBatchSeeded(inputs, 0, opts)
}

// TraceBatchSeeded is TraceBatch with an explicit base mask seed: trace i
// runs with per-execution masks derived from (maskSeed, i), so every trace
// of the batch draws an independent fresh-mask stream.
func (m *Machine) TraceBatchSeeded(inputs []Input, maskSeed int64, opts sim.Options) ([]*trace.Trace, []uint64, error) {
	jobs := make([]sim.Job, len(inputs))
	for i, in := range inputs {
		job, err := m.EncryptJobSeeded(in.Key, in.Plaintext, sim.DeriveSeed(maskSeed, i), 0, true)
		if err != nil {
			return nil, nil, err
		}
		jobs[i] = job
	}
	results, err := m.Runner().RunBatch(jobs, opts)
	if err != nil {
		return nil, nil, err
	}
	traces := make([]*trace.Trace, len(results))
	ciphers := make([]uint64, len(results))
	for i, r := range results {
		if !r.Done {
			return nil, nil, fmt.Errorf("desprog: encryption %d exceeded %d cycles", i, uint64(MaxCycles))
		}
		traces[i] = r.Trace
		ciphers[i] = gatherBits(r.Mem[0])
	}
	return traces, ciphers, nil
}

// CipherBatch encrypts several (key, plaintext) pairs in parallel without
// capturing traces — the cheap path for batch verification — returning
// ciphertexts in input order.
func (m *Machine) CipherBatch(inputs []Input, opts sim.Options) ([]uint64, error) {
	jobs := make([]sim.Job, len(inputs))
	for i, in := range inputs {
		job, err := m.EncryptJobSeeded(in.Key, in.Plaintext, sim.DeriveSeed(0, i), 0, false)
		if err != nil {
			return nil, err
		}
		jobs[i] = job
	}
	results, err := m.Runner().RunBatch(jobs, opts)
	if err != nil {
		return nil, err
	}
	ciphers := make([]uint64, len(results))
	for i, r := range results {
		if !r.Done {
			return nil, fmt.Errorf("desprog: encryption %d exceeded %d cycles", i, uint64(MaxCycles))
		}
		ciphers[i] = gatherBits(r.Mem[0])
	}
	return ciphers, nil
}

// TraceRun runs one full encryption capturing the complete per-cycle trace
// along with the run statistics.
func (m *Machine) TraceRun(key, plaintext uint64) (*trace.Trace, uint64, sim.Stats, error) {
	job, err := m.EncryptJob(key, plaintext, 0, true)
	if err != nil {
		return nil, 0, sim.Stats{}, err
	}
	res := m.Runner().Run(job)
	if res.Err != nil {
		return nil, 0, sim.Stats{}, res.Err
	}
	if !res.Done {
		return nil, 0, sim.Stats{}, fmt.Errorf("desprog: encryption exceeded %d cycles", uint64(MaxCycles))
	}
	return res.Trace, gatherBits(res.Mem[0]), res.Stats, nil
}

// Trace runs one full encryption capturing the complete per-cycle trace.
func (m *Machine) Trace(key, plaintext uint64) (*trace.Trace, uint64, error) {
	tr, cipherText, _, err := m.TraceRun(key, plaintext)
	return tr, cipherText, err
}

// TraceContext is Trace under a cancellable context: a context that dies
// before the run starts skips the simulation entirely and returns the
// context's error, so deadline-bound callers (the leakd window probe) never
// burn a worker on a run whose request has already expired.
func (m *Machine) TraceContext(ctx context.Context, key, plaintext uint64) (*trace.Trace, uint64, error) {
	job, err := m.EncryptJob(key, plaintext, 0, true)
	if err != nil {
		return nil, 0, err
	}
	results, err := m.Runner().RunBatchContext(ctx, []sim.Job{job}, sim.Options{Workers: 1})
	if err != nil {
		return nil, 0, err
	}
	res := results[0]
	if !res.Done {
		return nil, 0, fmt.Errorf("desprog: encryption exceeded %d cycles", uint64(MaxCycles))
	}
	return res.Trace, gatherBits(res.Mem[0]), nil
}

// RoundStarts returns the cycle at which each of the 16 rounds begins: the
// cycles whose EX-stage PC is the entry of key_generation.
func (m *Machine) RoundStarts(tr *trace.Trace) ([]int, error) {
	entry, err := m.EntryPC(FuncKeyGeneration)
	if err != nil {
		return nil, err
	}
	var starts []int
	for i, pc := range tr.PCs {
		if pc == entry {
			starts = append(starts, i)
		}
	}
	return starts, nil
}

// RoundWindow returns the cycle window of round r (0-based). The final round
// ends where the output permutation begins.
func (m *Machine) RoundWindow(tr *trace.Trace, r int) (trace.Window, error) {
	starts, err := m.RoundStarts(tr)
	if err != nil {
		return trace.Window{}, err
	}
	if r < 0 || r >= len(starts) {
		return trace.Window{}, fmt.Errorf("desprog: round %d outside trace (%d rounds found)", r, len(starts))
	}
	if r+1 < len(starts) {
		return trace.Window{Start: starts[r], End: starts[r+1]}, nil
	}
	entry, err := m.EntryPC(FuncOutputPermutation)
	if err != nil {
		return trace.Window{}, err
	}
	for i, pc := range tr.PCs {
		if pc == entry {
			return trace.Window{Start: starts[r], End: i}, nil
		}
	}
	return trace.Window{Start: starts[r], End: tr.Len()}, nil
}

// PhaseWindow returns the cycle window of one phase function's first
// invocation (e.g. the first key permutation for Figure 12).
func (m *Machine) PhaseWindow(tr *trace.Trace, fn, nextFn string) (trace.Window, error) {
	entry, err := m.EntryPC(fn)
	if err != nil {
		return trace.Window{}, err
	}
	next, err := m.EntryPC(nextFn)
	if err != nil {
		return trace.Window{}, err
	}
	w := trace.Window{Start: -1, End: -1}
	for i, pc := range tr.PCs {
		if pc == entry && w.Start < 0 {
			w.Start = i
		}
		if pc == next && w.Start >= 0 {
			w.End = i
			return w, nil
		}
	}
	return trace.Window{}, fmt.Errorf("desprog: phase %q window not found", fn)
}
