package desprog

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/des"
	"desmask/internal/mem"
	"desmask/internal/minic"
	"desmask/internal/trace"
)

const (
	testKey   = 0x133457799BBCDFF1
	testKey2  = 0x133457799BBCDFF1 ^ (1 << 62) // differs in FIPS bit 2 (a non-parity bit)
	testPlain = 0x0123456789ABCDEF
)

// Machines are expensive to build (compile + assemble); share them.
var (
	machOnce sync.Once
	machines map[compiler.Policy]*Machine
)

func mach(t *testing.T, p compiler.Policy) *Machine {
	t.Helper()
	machOnce.Do(func() {
		machines = map[compiler.Policy]*Machine{}
		for _, pol := range compiler.Policies() {
			m, err := New(pol)
			if err != nil {
				panic(err)
			}
			machines[pol] = m
		}
	})
	return machines[p]
}

func TestSimulatedMatchesReferenceClassic(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	ct, stats, done, err := m.Encrypt(testKey, testPlain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("encryption did not finish")
	}
	if want := des.Encrypt(testKey, testPlain); ct != want {
		t.Fatalf("cipher = %#016x, want %#016x", ct, want)
	}
	if stats.Cycles < 50_000 || stats.Cycles > 1_000_000 {
		t.Errorf("cycle count %d outside plausible range", stats.Cycles)
	}
}

func TestSimulatedMatchesReferenceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := mach(t, compiler.PolicyNone)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5; i++ {
		key, pt := rng.Uint64(), rng.Uint64()
		ct, _, done, err := m.Encrypt(key, pt, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatal("did not finish")
		}
		if want := des.Encrypt(key, pt); ct != want {
			t.Fatalf("key=%#x pt=%#x: cipher = %#016x, want %#016x", key, pt, ct, want)
		}
	}
}

func TestAllPoliciesProduceSameCiphertext(t *testing.T) {
	want := des.Encrypt(testKey, testPlain)
	for _, pol := range compiler.Policies() {
		ct, _, done, err := mach(t, pol).Encrypt(testKey, testPlain, 0)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if !done || ct != want {
			t.Errorf("%v: cipher = %#016x (done=%v), want %#016x", pol, ct, done, want)
		}
	}
}

func TestBitSpreadGatherRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xdeadbeefcafef00d, ^uint64(0), 1 << 63} {
		if got := gatherBits(spreadBits(v)); got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
	}
	bits := spreadBits(1 << 63)
	if bits[0] != 1 || bits[1] != 0 {
		t.Error("spreadBits must be MSB first")
	}
}

func TestCycleCountKeyIndependent(t *testing.T) {
	// The control flow must not depend on the key: equal cycle counts give
	// cycle-aligned differential traces.
	m := mach(t, compiler.PolicyNone)
	_, s1, _, err := m.Encrypt(testKey, testPlain, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, _, err := m.Encrypt(testKey2, testPlain, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cycles != s2.Cycles {
		t.Errorf("cycle counts differ with key: %d vs %d", s1.Cycles, s2.Cycles)
	}
	_, s3, _, err := m.Encrypt(testKey, ^uint64(testPlain), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cycles != s3.Cycles {
		t.Errorf("cycle counts differ with plaintext: %d vs %d", s1.Cycles, s3.Cycles)
	}
}

func TestRoundStructure(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	tr, _, err := m.Trace(testKey, testPlain)
	if err != nil {
		t.Fatal(err)
	}
	starts, err := m.RoundStarts(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 16 {
		t.Fatalf("found %d rounds, want 16", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatal("round starts not increasing")
		}
	}
	// Rounds should have similar lengths (identical code path).
	w0, err := m.RoundWindow(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	w10, err := m.RoundWindow(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(w0.Len()) / float64(w10.Len())
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("round lengths diverge: %d vs %d", w0.Len(), w10.Len())
	}
	if _, err := m.RoundWindow(tr, 16); err == nil {
		t.Error("round 16 should not exist")
	}
}

func TestPhaseWindows(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	tr, _, err := m.Trace(testKey, testPlain)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := m.PhaseWindow(tr, FuncInitialPermutation, FuncKeyPermutation)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := m.PhaseWindow(tr, FuncKeyPermutation, FuncKeyGeneration)
	if err != nil {
		t.Fatal(err)
	}
	if !(ip.Start < ip.End && ip.End <= kp.Start && kp.Start < kp.End) {
		t.Errorf("phase windows out of order: ip=%+v kp=%+v", ip, kp)
	}
	if kp.Len() < 100 {
		t.Errorf("key permutation window suspiciously short: %d cycles", kp.Len())
	}
}

// diffTraces returns per-cycle |a-b| totals for two runs on one machine.
func diffTraces(t *testing.T, m *Machine, k1, p1, k2, p2 uint64) ([]float64, *trace.Trace, *trace.Trace) {
	t.Helper()
	t1, _, err := m.Trace(k1, p1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := m.Trace(k2, p2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := trace.Diff(t1.Totals, t2.Totals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		d[i] = math.Abs(d[i])
	}
	return d, t1, t2
}

func TestKeyDifferenceLeaksUnmasked(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	d, tr, _ := diffTraces(t, m, testKey, testPlain, testKey2, testPlain)
	w, err := m.RoundWindow(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(d[w.Start:w.End])
	if s.MaxAbs < 1 {
		t.Errorf("unmasked first round shows no key-dependent differential (max %.3f pJ)", s.MaxAbs)
	}
}

func TestKeyDifferenceMaskedSelective(t *testing.T) {
	m := mach(t, compiler.PolicySelective)
	d, tr, _ := diffTraces(t, m, testKey, testPlain, testKey2, testPlain)
	// Every cycle up to the output permutation must be identical: the key
	// never flows through an insecure operation.
	entry, err := m.EntryPC(FuncOutputPermutation)
	if err != nil {
		t.Fatal(err)
	}
	end := tr.Len()
	for i, pc := range tr.PCs {
		if pc == entry {
			end = i
			break
		}
	}
	for i := 0; i < end; i++ {
		if d[i] > 1e-9 {
			t.Fatalf("cycle %d leaks key difference under selective masking (%.4f pJ)", i, d[i])
		}
	}
}

func TestPlaintextDifferenceVisibleInIPOnly(t *testing.T) {
	m := mach(t, compiler.PolicySelective)
	d, tr, _ := diffTraces(t, m, testKey, testPlain, testKey, ^uint64(testPlain))
	ip, err := m.PhaseWindow(tr, FuncInitialPermutation, FuncKeyPermutation)
	if err != nil {
		t.Fatal(err)
	}
	sIP := trace.Summarize(d[ip.Start:ip.End])
	if sIP.MaxAbs < 1 {
		t.Error("masked run should still show plaintext differences during the (insecure) initial permutation")
	}
	// Rounds must be silent.
	w0, err := m.RoundWindow(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	w15, err := m.RoundWindow(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := w0.Start; i < w15.End; i++ {
		if d[i] > 1e-9 {
			t.Fatalf("cycle %d in rounds leaks plaintext difference under masking (%.4f pJ)", i, d[i])
		}
	}
}

func TestSecureInstructionShare(t *testing.T) {
	// Selective must secure a real but minority share of instructions.
	m := mach(t, compiler.PolicySelective)
	_, stats, _, err := m.Encrypt(testKey, testPlain, 0)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(stats.SecureInst) / float64(stats.Insts)
	if frac < 0.02 || frac > 0.5 {
		t.Errorf("secure instruction share = %.3f, want minority but non-trivial", frac)
	}
}

func TestPartialRunForAttackTraces(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	job, err := m.EncryptJob(testKey, testPlain, 30_000, true)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Runner().Run(job)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Done {
		t.Error("30k cycles should not complete a full encryption")
	}
	if res.Stats.Cycles != 30_000 || res.Trace.Len() != 30_000 {
		t.Errorf("partial run recorded %d cycles, want 30000", res.Trace.Len())
	}
}

func TestEnergyTotalsOrdering(t *testing.T) {
	var prev float64
	for i, pol := range []compiler.Policy{
		compiler.PolicyNone, compiler.PolicySelective,
		compiler.PolicyNaiveLoadStore, compiler.PolicyAllSecure,
	} {
		_, stats, _, err := mach(t, pol).Encrypt(testKey, testPlain, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && stats.Energy.Total <= prev {
			t.Errorf("%v total %.0f pJ not above previous %.0f pJ", pol, stats.Energy.Total, prev)
		}
		prev = stats.Energy.Total
	}
}

func TestSourceIsStable(t *testing.T) {
	if Source() != Source() {
		t.Error("Source must be deterministic")
	}
	if len(Source()) < 2000 {
		t.Error("Source suspiciously short")
	}
}

func TestEntryPCErrors(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	if _, err := m.EntryPC("nonexistent"); err == nil {
		t.Error("EntryPC for unknown function should fail")
	}
}

func TestDecryptMatchesReference(t *testing.T) {
	m, err := NewDecrypt(compiler.PolicyNone)
	if err != nil {
		t.Fatal(err)
	}
	ct := des.Encrypt(testKey, testPlain)
	pt, _, done, err := m.Encrypt(testKey, ct, 0)
	if err != nil || !done {
		t.Fatalf("decrypt run: %v done=%v", err, done)
	}
	if pt != testPlain {
		t.Fatalf("decrypt = %#016x, want %#016x", pt, testPlain)
	}
}

func TestDecryptRoundTripMasked(t *testing.T) {
	enc := mach(t, compiler.PolicySelective)
	dec, err := NewDecrypt(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	ct, _, _, err := enc.Encrypt(testKey, testPlain, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, done, err := dec.Encrypt(testKey, ct, 0)
	if err != nil || !done {
		t.Fatalf("decrypt: %v", err)
	}
	if pt != testPlain {
		t.Fatalf("masked round trip = %#016x, want %#016x", pt, testPlain)
	}
	if !dec.Decrypt {
		t.Error("Decrypt flag not set")
	}
}

func TestDecryptMaskedFlat(t *testing.T) {
	dec, err := NewDecrypt(compiler.PolicySelective)
	if err != nil {
		t.Fatal(err)
	}
	ct := des.Encrypt(testKey, testPlain)
	d, tr, _ := diffTraces(t, dec, testKey, ct, testKey2, ct)
	entry, err := dec.EntryPC(FuncOutputPermutation)
	if err != nil {
		t.Fatal(err)
	}
	end := tr.Len()
	for i, pc := range tr.PCs {
		if pc == entry {
			end = i
			break
		}
	}
	for i := 0; i < end; i++ {
		if d[i] > 1e-9 {
			t.Fatalf("decryption cycle %d leaks key difference under masking", i)
		}
	}
}

// TestCosimAgainstGoldenModel runs the full compiled DES program on both the
// pipelined CPU and the unpipelined golden model and requires identical
// architectural results — the strongest end-to-end check of the pipeline's
// hazard machinery.
func TestCosimAgainstGoldenModel(t *testing.T) {
	m := mach(t, compiler.PolicyNone)
	prog := m.Res.Program

	pipe, err := cpu.New(prog, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cpu.NewRef(prog, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	pokeBits := func(c interface {
		Mem() *mem.Memory
	}, sym string, v uint64) {
		addr := prog.Symbols[compiler.GlobalLabel(sym)]
		for i := 0; i < 64; i++ {
			if err := c.Mem().StoreWord(addr+uint32(4*i), uint32(v>>(63-i)&1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range []interface{ Mem() *mem.Memory }{pipe, ref} {
		pokeBits(c, "key", testKey)
		pokeBits(c, "plaintext", testPlain)
	}
	if err := pipe.Run(MaxCycles); err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(MaxCycles); err != nil {
		t.Fatal(err)
	}
	if pipe.Stats().Insts != ref.Insts() {
		t.Errorf("pipeline retired %d, golden model executed %d", pipe.Stats().Insts, ref.Insts())
	}
	cAddr := prog.Symbols[compiler.GlobalLabel("cipher")]
	for i := 0; i < 64; i++ {
		pv, _ := pipe.Mem().LoadWord(cAddr + uint32(4*i))
		rv, _ := ref.Mem().LoadWord(cAddr + uint32(4*i))
		if pv != rv {
			t.Fatalf("cipher bit %d: pipeline %d, golden model %d", i, pv, rv)
		}
	}
}

// TestDESInterpreterAgrees runs the DES MiniC source on the independent AST
// interpreter and checks the ciphertext against the reference — a third
// execution path for the flagship workload.
func TestDESInterpreterAgrees(t *testing.T) {
	f, err := minic.Parse(Source())
	if err != nil {
		t.Fatal(err)
	}
	in := minic.NewInterp(f)
	in.MaxSteps = 50_000_000
	keyBits := make([]uint32, 64)
	ptBits := make([]uint32, 64)
	for i := 0; i < 64; i++ {
		keyBits[i] = uint32(uint64(testKey) >> (63 - i) & 1)
		ptBits[i] = uint32(uint64(testPlain) >> (63 - i) & 1)
	}
	if err := in.SetGlobal("key", keyBits); err != nil {
		t.Fatal(err)
	}
	if err := in.SetGlobal("plaintext", ptBits); err != nil {
		t.Fatal(err)
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	bits, err := in.Global("cipher")
	if err != nil {
		t.Fatal(err)
	}
	var ct uint64
	for _, b := range bits {
		ct = ct<<1 | uint64(b&1)
	}
	if want := des.Encrypt(testKey, testPlain); ct != want {
		t.Fatalf("interpreter cipher = %#016x, want %#016x", ct, want)
	}
}
