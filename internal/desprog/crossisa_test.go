package desprog

import (
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/energy"
	"desmask/internal/isa"
)

// TestCrossISACiphertext is the DES half of the cross-ISA cosim suite: the
// same MiniC source compiled under the same policy must produce the same
// ciphertext on the PISA and RV32 cores. The known-answer vector pins both
// against FIPS 46-3, not merely against each other.
func TestCrossISACiphertext(t *testing.T) {
	const (
		key    = uint64(0x133457799BBCDFF1)
		plain  = uint64(0x0123456789ABCDEF)
		cipher = uint64(0x85E813540F0AB405)
	)
	for _, policy := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective} {
		for _, isaName := range []string{"pisa", "rv32"} {
			target, ok := isa.TargetByName(isaName)
			if !ok {
				t.Fatalf("unknown target %q", isaName)
			}
			t.Run(policy.String()+"/"+isaName, func(t *testing.T) {
				m, err := NewFull(compiler.Options{Policy: policy, Target: target}, energy.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				got, _, done, err := m.Encrypt(key, plain, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !done {
					t.Fatal("encryption did not halt within the cycle budget")
				}
				if got != cipher {
					t.Fatalf("ciphertext %#016x, want %#016x", got, cipher)
				}
			})
		}
	}
}

// TestCrossISAOptimized pins the optimized pipeline on both targets: -O
// changes instruction selection (gp-relative addressing, constant folding
// against the target's immediate reach) but never the architectural result.
func TestCrossISAOptimized(t *testing.T) {
	const (
		key    = uint64(0x133457799BBCDFF1)
		plain  = uint64(0x0123456789ABCDEF)
		cipher = uint64(0x85E813540F0AB405)
	)
	for _, isaName := range []string{"pisa", "rv32"} {
		target, _ := isa.TargetByName(isaName)
		t.Run(isaName, func(t *testing.T) {
			m, err := NewFull(compiler.Options{Policy: compiler.PolicySelective, Target: target, Optimize: true}, energy.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			got, _, done, err := m.Encrypt(key, plain, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !done || got != cipher {
				t.Fatalf("done=%v ciphertext %#016x, want %#016x", done, got, cipher)
			}
		})
	}
}
