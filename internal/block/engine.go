// Package block implements the block-compiled "superop" engine: a fast
// execution mode over the same predecoded micro-op table the cycle-accurate
// core runs, for jobs that observe only architectural results (ciphertext,
// statistics, memory read-back) and not per-stage pipeline events.
//
// The translator discovers basic blocks lazily — straight-line micro-op runs
// ending at the first control transfer or halt — and fuses each into a slice
// of specialized Go closures plus a precomputed pipeline-state delta: the
// block's load-use stall count, the EX-cycle offset of its terminator, the
// flush geometry of a taken exit, and the data-independent portion of its
// energy. The dispatch loop then threads from block to block doing arithmetic
// on those deltas instead of simulating five stages per cycle. Everything
// dynamic (register values, memory, branch outcomes) executes through
// cpu.ExecUOp, the same EX-stage semantics the pipelined core and the
// RefModel use, so block-fused execution cannot drift architecturally.
//
// Timing is reconstructed exactly, not approximated. In the five-stage
// geometry (isa.PipelineSpec), with E(i) the cycle micro-op i occupies EX:
//
//	E(first of run)    = FillLatency
//	E(next sequential) = E(prev) + 1 + loadUseStall(prev, next)
//	E(taken target)    = E(transfer) + RedirectPenalty
//	total cycles       = E(halt) + 1 + DrainLatency
//
// Load-use stalls never cross a block boundary — a fall-through predecessor
// is a branch, never a load, and a taken transfer separates producer and
// consumer by the flush bubbles — so every stall is attributable to a static
// intra-block pair and the per-block delta is exact. The engine's Stats
// (cycles, instructions, secure instructions, stalls, flushes) are therefore
// bit-identical to the cycle-accurate core's for every run it completes.
//
// Deoptimization contract: the engine either completes a run to halt with
// exact results, or abandons it with a *DeoptError (matching ErrDeopt) and
// touches nothing the caller can observe. It deopts on any condition whose
// architectural outcome it cannot reproduce exactly at a cycle boundary: a
// memory or jump fault, a cycle budget that may expire mid-block, a control
// transfer leaving the text segment, a block running off the end of the text,
// or a target geometry other than the five-stage spec. The session layer
// (internal/sim) then replays the whole job on the unmodified cycle-accurate
// core — the deopt boundary is cycle 0, which is trivially exact — and jobs
// that attach probes or capture traces never enter block mode at all. See
// DESIGN.md §13.
package block

import (
	"errors"
	"fmt"

	"desmask/internal/asm"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// ErrDeopt is the sentinel matched by errors.Is when the engine abandons a
// run for the cycle-accurate core. It is not a failure: the caller replays
// the job on the pipelined CPU, which produces the exact result (including
// the exact fault or cycle-limit error, if any).
var ErrDeopt = errors.New("block: deoptimized to the cycle-accurate core")

// DeoptError reports why the engine abandoned a run. It matches ErrDeopt and
// unwraps to the underlying cause when one exists (a memory fault, a jr
// misalignment).
type DeoptError struct {
	// Reason is a short human-readable cause, for diagnostics and tests.
	Reason string
	// PC is the program counter the engine was at when it gave up.
	PC uint32
	// Cause is the underlying fault, when the reason is a fault.
	Cause error
}

// Error implements error.
func (e *DeoptError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("block: deopt at pc %#x: %s: %v", e.PC, e.Reason, e.Cause)
	}
	return fmt.Sprintf("block: deopt at pc %#x: %s", e.PC, e.Reason)
}

// Unwrap returns the underlying fault.
func (e *DeoptError) Unwrap() error { return e.Cause }

// Is matches the ErrDeopt sentinel.
func (e *DeoptError) Is(target error) bool { return target == ErrDeopt }

// Engine is one block-compiled core. Create with New; it mirrors the
// construction and reset contract of cpu.New over the same program so the
// session layer can substitute one for the other per job.
type Engine struct {
	prog *asm.Program
	spec isa.PipelineSpec
	uops []isa.UOp
	mem  *mem.Memory

	regs   [isa.NumRegs]uint32
	pc     uint32
	halted bool
	stats  cpu.Stats
	err    error // fault latched by an op closure

	blocks map[int32]*compiledBlock

	// Static (data-independent) energy accounting; see internal/energy's
	// static.go. Enabled when New receives a non-nil config.
	energyOn bool
	cfg      energy.Config
	scale    [isa.NumExecClasses]float64
	staticPJ float64
}

// New builds a block engine with the program loaded: text predecoded, data
// image copied into memory, SP/GP initialised exactly as cpu.New does. A
// non-nil energy config enables static (data-independent) energy
// accumulation, reported by StaticPJ after each completed run. New fails for
// targets that do not declare the five-stage pipeline geometry; callers
// should gate on isa.BlockCompilable and fall back to the cycle-accurate
// core.
func New(p *asm.Program, m *mem.Memory, cfg *energy.Config) (*Engine, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("block: empty program")
	}
	target := p.TargetOrDefault()
	if !isa.BlockCompilable(target) {
		return nil, fmt.Errorf("block: target %s declares pipeline %+v; only the five-stage geometry is block compilable",
			target.Name(), target.Pipeline())
	}
	uops, err := isa.PredecodeProgramFor(target, p.Text, p.TextBase)
	if err != nil {
		return nil, fmt.Errorf("block: %w", err)
	}
	e := &Engine{
		prog:   p,
		spec:   target.Pipeline(),
		uops:   uops,
		mem:    m,
		pc:     p.Entry,
		blocks: make(map[int32]*compiledBlock),
	}
	if err := m.LoadImage(p.DataBase, p.Data); err != nil {
		return nil, err
	}
	e.regs[isa.SP] = p.DataEnd() + 4096
	e.regs[isa.GP] = p.DataBase
	if cfg != nil {
		e.energyOn = true
		e.cfg = *cfg
		e.scale = target.ALUOpScale()
	}
	return e, nil
}

// Reset returns the engine to its post-New state: memory cleared and the
// data image reloaded, registers, PC, statistics and energy accumulation
// zeroed. The compiled-block cache is retained — blocks depend only on the
// immutable micro-op table.
func (e *Engine) Reset() error {
	e.mem.Reset()
	if err := e.mem.LoadImage(e.prog.DataBase, e.prog.Data); err != nil {
		return err
	}
	e.regs = [isa.NumRegs]uint32{}
	e.regs[isa.SP] = e.prog.DataEnd() + 4096
	e.regs[isa.GP] = e.prog.DataBase
	e.pc = e.prog.Entry
	e.halted = false
	e.stats = cpu.Stats{}
	e.err = nil
	e.staticPJ = 0
	return nil
}

// Reg returns the current architectural value of r.
func (e *Engine) Reg(r isa.Reg) uint32 { return e.regs[r] }

// SetReg sets an architectural register (test and loader use).
func (e *Engine) SetReg(r isa.Reg, v uint32) {
	if r != isa.Zero {
		e.regs[r] = v
	}
}

// Mem returns the data memory.
func (e *Engine) Mem() *mem.Memory { return e.mem }

// Halted reports whether the program ran to its halt instruction.
func (e *Engine) Halted() bool { return e.halted }

// Stats returns the run statistics. Valid only after a nil return from Run;
// a deoptimized run leaves partial, meaningless counters behind.
func (e *Engine) Stats() cpu.Stats { return e.stats }

// StaticPJ returns the data-independent energy of the completed run: the sum
// of every executed micro-op's static cost, the squashed-slot statics of
// taken transfers, and the per-cycle clock energy. It is a strict lower
// bound on what the energy meter reports for the same run in cycle mode
// (transition terms are non-negative); exact per-cycle energy requires the
// meter, which forces cycle mode. Zero when New received no energy config.
func (e *Engine) StaticPJ() float64 { return e.staticPJ }

// Blocks returns the number of distinct basic blocks compiled so far.
func (e *Engine) Blocks() int { return len(e.blocks) }

// deoptf builds a DeoptError.
func (e *Engine) deoptf(pc uint32, cause error, format string, args ...any) error {
	return &DeoptError{Reason: fmt.Sprintf(format, args...), PC: pc, Cause: cause}
}

// textIndex maps a pc to its micro-op index, rejecting addresses outside the
// text segment or misaligned.
func (e *Engine) textIndex(pc uint32) (int32, bool) {
	if pc < e.prog.TextBase || pc%4 != 0 {
		return 0, false
	}
	idx := (pc - e.prog.TextBase) / 4
	if int(idx) >= len(e.uops) {
		return 0, false
	}
	return int32(idx), true
}

// Run executes the program to halt, or returns a *DeoptError (matching
// ErrDeopt) when the run must be replayed on the cycle-accurate core: on any
// fault, on a cycle budget that may expire before retirement, or on control
// flow the translator does not fuse. On a nil return the engine's registers,
// memory, Stats and StaticPJ are bit-identical to a cycle-accurate run of
// the same job.
func (e *Engine) Run(maxCycles uint64) error {
	if e.halted {
		return errors.New("block: running a halted engine")
	}
	retire := uint64(e.spec.DrainLatency) + 1
	redirect := uint64(e.spec.RedirectPenalty())
	// ex is the EX-stage cycle of the block's first micro-op.
	ex := uint64(e.spec.FillLatency)

	idx, ok := e.textIndex(e.pc)
	if !ok {
		return e.deoptf(e.pc, nil, "entry outside text segment")
	}
	for {
		b := e.blocks[idx]
		if b == nil {
			var err error
			if b, err = e.compile(idx); err != nil {
				return err
			}
			e.blocks[idx] = b
		}
		termEx := ex + b.exLast
		// Conservative budget precheck: if this block's terminator cannot
		// retire within the budget, no continuation can halt in time either
		// (EX cycles only grow), so the limit is certain to expire and the
		// cycle-accurate replay will report it at the exact cycle.
		if termEx+retire > maxCycles {
			return e.deoptf(e.uops[idx].PC, nil, "cycle budget %d may expire mid-block", maxCycles)
		}
		for _, op := range b.code {
			if !op(e) {
				return e.deoptf(e.pc, e.err, "fault")
			}
		}
		e.stats.Insts += uint64(b.n)
		e.stats.SecureInst += b.secure
		e.stats.Stalls += b.stalls
		e.staticPJ += b.staticPJ

		u := &e.uops[b.termIdx]
		if b.term == isa.TermHalt {
			e.stats.Cycles = termEx + retire
			e.halted = true
			e.pc = u.PC
			if e.energyOn {
				e.staticPJ += e.cfg.Params.ClockPJ * float64(e.stats.Cycles)
			}
			return nil
		}
		a := e.regs[u.SrcA]
		bv := u.BConst
		if u.BReg {
			bv = e.regs[u.SrcB]
		}
		res, target, taken, err := cpu.ExecUOp(u, a, bv)
		if err != nil {
			return e.deoptf(u.PC, err, "terminator fault")
		}
		if u.Dest != isa.Zero {
			e.regs[u.Dest] = res // jal link register
		}
		if taken {
			e.stats.Flushes += b.flushTaken
			e.staticPJ += b.squashTakenPJ
			ti, ok := e.textIndex(target)
			if !ok {
				return e.deoptf(u.PC, nil, "transfer target %#x outside text segment", target)
			}
			ex, idx = termEx+redirect, ti
			e.pc = target
		} else {
			if int(b.fallIdx) >= len(e.uops) {
				return e.deoptf(u.PC, nil, "fall-through past end of text segment")
			}
			ex, idx = termEx+1, b.fallIdx
			e.pc = u.PC + 4
		}
	}
}
