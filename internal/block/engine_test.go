package block_test

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"desmask/internal/asm"
	"desmask/internal/block"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// cosim runs one program on the cycle-accurate core (with the energy meter
// attached) and on the block engine, under the same budget, and demands
// either bit-identical completion — Stats, registers, data memory — or a
// deopt exactly when the cycle-accurate run fails. Returns whether the block
// engine completed.
func cosim(t *testing.T, p *asm.Program, budget uint64) bool {
	t.Helper()
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	cfg := energy.DefaultConfig()
	meter := energy.NewProbeFor(cfg, p.TargetOrDefault())
	c.Attach(meter)
	e, err := block.New(p, mem.New(), &cfg)
	if err != nil {
		t.Fatal(err)
	}

	cerr := c.Run(budget)
	berr := e.Run(budget)
	if cerr != nil {
		// The cycle-accurate run faulted or hit its budget: the engine must
		// have refused to complete (the session layer then replays).
		if !errors.Is(berr, block.ErrDeopt) {
			t.Fatalf("cycle core failed (%v) but block engine returned %v", cerr, berr)
		}
		return false
	}
	if berr != nil {
		t.Fatalf("block engine deopted on a clean run: %v", berr)
	}
	if !e.Halted() {
		t.Fatal("block engine returned nil without halting")
	}
	if cs, bs := c.Stats(), e.Stats(); cs != bs {
		t.Errorf("stats diverge: cycle %+v, block %+v", cs, bs)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if c.Reg(r) != e.Reg(r) {
			t.Errorf("register %v: cycle %#x, block %#x", r, c.Reg(r), e.Reg(r))
		}
	}
	for a := p.DataBase; a < p.DataEnd(); a += 4 {
		cv, _ := c.Mem().LoadWord(a)
		bv, _ := e.Mem().LoadWord(a)
		if cv != bv {
			t.Errorf("mem[%#x]: cycle %#x, block %#x", a, cv, bv)
		}
	}
	// The static floor never exceeds the metered total (transition terms are
	// non-negative), and a non-trivial program is never all-static.
	if e.StaticPJ() <= 0 || e.StaticPJ() > meter.TotalPJ() {
		t.Errorf("static energy %.3f pJ outside (0, metered %.3f]", e.StaticPJ(), meter.TotalPJ())
	}
	return true
}

func cosimSrc(t *testing.T, src string) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if !cosim(t, p, 10_000_000) {
		t.Fatal("block engine deopted on a program expected to complete")
	}
}

func TestBlockHazardKitchenSink(t *testing.T) {
	cosimSrc(t, `
		.data
buf:	.word 3, 1, 4, 1, 5, 9, 2, 6
out:	.space 32
		.text
main:	la   $s0, buf
		la   $s1, out
		li   $t0, 0
		li   $s2, 0
loop:	sll  $t1, $t0, 2
		addu $t2, $s0, $t1
		lw   $t3, 0($t2)     # load-use with next
		addu $s2, $s2, $t3
		addu $t4, $s1, $t1
		sw   $s2, 0($t4)
		addiu $t0, $t0, 1
		slti $at, $t0, 8
		bne  $at, $zero, loop
		halt
	`)
}

func TestBlockCallsAndRecursion(t *testing.T) {
	cosimSrc(t, `
		.data
res:	.word 0
		.text
main:	li   $a0, 9
		jal  fib
		sw   $v0, res
		halt
fib:	slti $at, $a0, 2
		beq  $at, $zero, rec
		move $v0, $a0
		jr   $ra
rec:	addiu $sp, $sp, -12
		sw   $ra, 0($sp)
		sw   $a0, 4($sp)
		addiu $a0, $a0, -1
		jal  fib
		sw   $v0, 8($sp)
		lw   $a0, 4($sp)
		addiu $a0, $a0, -2
		jal  fib
		lw   $t0, 8($sp)
		addu $v0, $v0, $t0
		lw   $ra, 0($sp)
		addiu $sp, $sp, 12
		jr   $ra
	`)
}

func TestBlockBranchShadowGeometry(t *testing.T) {
	// Taken branches whose shadow holds a halt (single-flush redirect) and a
	// branch landing on the last instruction exercise the flush-count edge
	// cases of the redirect cycle.
	cosimSrc(t, `
		.text
main:	li   $t0, 1
		bgtz $t0, on
		halt
on:		addiu $t1, $t0, 41
		bgtz $t1, end
		addiu $t1, $t1, 1
end:	halt
	`)
}

func TestBlockSecureInstructions(t *testing.T) {
	cosimSrc(t, `
		.data
key:	.word 0x0f0f0f0f
out:	.word 0
		.text
main:	lw.s $t0, key
		li   $t1, 0x3c3c
		xor.s $t2, $t0, $t1
		xor.s $t2, $t2, $t0
		sw   $t2, out
		halt
	`)
}

func TestBlockLoadUseAcrossTermination(t *testing.T) {
	// A load feeding the branch that terminates its block: the stall belongs
	// to the block and shifts every later EX cycle.
	cosimSrc(t, `
		.data
v:		.word 7
		.text
main:	li   $t2, 0
loop:	lw   $t0, v
		bgtz $t0, dec        # load-use stall into the terminator
		halt
dec:	addiu $t2, $t2, 1
		slti $at, $t2, 3
		bne  $at, $zero, clr
		sw   $zero, v
clr:	j    loop
	`)
}

// randomBranchy generates a terminating program with random straight-line
// segments, forward conditional skips, a bounded outer loop, and a leaf call
// — the control-flow shapes the block translator must re-time exactly.
func randomBranchy(rng *rand.Rand, segments int) string {
	ops := []string{"addu", "subu", "and", "or", "xor", "nor", "sllv", "srlv", "srav", "slt", "sltu", "mul", "xor.s", "addu.s"}
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$s0", "$s1", "$s2"}
	branches := []string{"beq", "bne"}
	src := "\t.data\nbuf:\t.space 64\n\t.text\nmain:\tla $gp, buf\n"
	for i, r := range regs {
		src += "\tli " + r + ", " + strconv.FormatInt(int64(rng.Uint32()>>uint(i)), 10) + "\n"
	}
	src += "\tli $s7, " + strconv.Itoa(2+rng.Intn(4)) + "\n"
	src += "loop:\n"
	emitOps := func(n int) {
		for i := 0; i < n; i++ {
			switch rng.Intn(7) {
			case 0, 1, 2, 3:
				src += "\t" + ops[rng.Intn(len(ops))] + " " + regs[rng.Intn(len(regs))] + ", " +
					regs[rng.Intn(len(regs))] + ", " + regs[rng.Intn(len(regs))] + "\n"
			case 4:
				src += "\tsll " + regs[rng.Intn(len(regs))] + ", " + regs[rng.Intn(len(regs))] +
					", " + strconv.Itoa(rng.Intn(32)) + "\n"
			case 5:
				off := strconv.Itoa(4 * rng.Intn(16))
				src += "\tsw " + regs[rng.Intn(len(regs))] + ", " + off + "($gp)\n"
				src += "\tlw " + regs[rng.Intn(len(regs))] + ", " + off + "($gp)\n"
			case 6:
				src += "\taddiu " + regs[rng.Intn(len(regs))] + ", " + regs[rng.Intn(len(regs))] +
					", " + strconv.Itoa(rng.Intn(8000)-4000) + "\n"
			}
		}
	}
	for s := 0; s < segments; s++ {
		emitOps(2 + rng.Intn(6))
		label := "skip" + strconv.Itoa(s)
		switch rng.Intn(4) {
		case 0:
			src += "\t" + branches[rng.Intn(len(branches))] + " " + regs[rng.Intn(len(regs))] +
				", " + regs[rng.Intn(len(regs))] + ", " + label + "\n"
		case 1:
			src += "\tblez " + regs[rng.Intn(len(regs))] + ", " + label + "\n"
		case 2:
			src += "\tjal leaf\n"
		}
		emitOps(1 + rng.Intn(3))
		src += label + ":\n"
	}
	src += "\taddiu $s7, $s7, -1\n\tbgtz $s7, loop\n"
	emitOps(2)
	src += "\thalt\nleaf:\txor $v0, $a0, $s7\n\tsllv $v0, $v0, $s7\n\tjr $ra\n"
	return src
}

// TestBlockRandomPrograms fuzzes the block engine against the cycle-accurate
// core with random branchy programs: every completion must be bit-identical
// in stats, registers and memory.
func TestBlockRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	completed := 0
	for trial := 0; trial < 40; trial++ {
		src := randomBranchy(rng, 5+rng.Intn(6))
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if cosim(t, p, 10_000_000) {
			completed++
		}
		if t.Failed() {
			t.Fatalf("trial %d diverged; program:\n%s", trial, src)
		}
	}
	if completed < 35 {
		t.Errorf("only %d/40 random programs completed in block mode", completed)
	}
}

// TestBlockBudgetSweep pins the budget precheck against the cycle-accurate
// limit semantics: for every budget around a program's exact cycle count, the
// engine completes identically iff the cycle core halts, and deopts iff the
// cycle core reports a *cpu.CycleLimitError.
func TestBlockBudgetSweep(t *testing.T) {
	p, err := asm.Assemble(`
		.text
main:	li   $t0, 5
loop:	addiu $t0, $t0, -1
		bgtz $t0, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	total := c.Stats().Cycles
	for budget := uint64(1); budget <= total+3; budget++ {
		cc, _ := cpu.New(p, mem.New())
		cerr := cc.Run(budget)
		e, err := block.New(p, mem.New(), nil)
		if err != nil {
			t.Fatal(err)
		}
		berr := e.Run(budget)
		switch {
		case cerr == nil && berr != nil:
			t.Errorf("budget %d: cycle core halted, engine said %v", budget, berr)
		case cerr != nil && !errors.Is(berr, block.ErrDeopt):
			t.Errorf("budget %d: cycle core failed (%v), engine said %v", budget, cerr, berr)
		case cerr == nil && berr == nil && cc.Stats() != e.Stats():
			t.Errorf("budget %d: stats diverge: %+v vs %+v", budget, cc.Stats(), e.Stats())
		}
		if cerr != nil && !errors.Is(cerr, cpu.ErrCycleLimit) {
			t.Fatalf("budget %d: unexpected cycle-core error %v", budget, cerr)
		}
	}
}

func TestBlockDeoptEdges(t *testing.T) {
	t.Run("mem fault", func(t *testing.T) {
		p, _ := asm.Assemble(`
			.text
main:	li   $t0, 2
		lw   $t1, 1($t0)     # misaligned load faults in MEM
		halt
		`)
		e, err := block.New(p, mem.New(), nil)
		if err != nil {
			t.Fatal(err)
		}
		berr := e.Run(1000)
		if !errors.Is(berr, block.ErrDeopt) {
			t.Fatalf("err = %v, want ErrDeopt", berr)
		}
		var d *block.DeoptError
		if !errors.As(berr, &d) || d.Cause == nil {
			t.Fatalf("deopt %v carries no cause", berr)
		}
	})
	t.Run("jr misalign", func(t *testing.T) {
		p, _ := asm.Assemble(`
			.text
main:	li   $t0, 2
		jr   $t0
		halt
		`)
		e, _ := block.New(p, mem.New(), nil)
		if !errors.Is(e.Run(1000), block.ErrDeopt) {
			t.Fatal("misaligned jr should deopt")
		}
	})
	t.Run("runs off text end", func(t *testing.T) {
		p, _ := asm.Assemble("main: nop\nnop\n")
		e, _ := block.New(p, mem.New(), nil)
		if !errors.Is(e.Run(1000), block.ErrDeopt) {
			t.Fatal("running off the text segment should deopt")
		}
	})
	t.Run("jump outside text", func(t *testing.T) {
		p, _ := asm.Assemble(`
			.text
main:	li   $t0, 0x10
		jr   $t0
		halt
		`)
		e, _ := block.New(p, mem.New(), nil)
		if !errors.Is(e.Run(1000), block.ErrDeopt) {
			t.Fatal("transfer outside the text segment should deopt")
		}
	})
	t.Run("infinite loop hits budget", func(t *testing.T) {
		p, _ := asm.Assemble("main: j main\nhalt\n")
		e, _ := block.New(p, mem.New(), nil)
		if !errors.Is(e.Run(5000), block.ErrDeopt) {
			t.Fatal("budget expiry should deopt")
		}
	})
}

func TestBlockResetAndReuse(t *testing.T) {
	p, err := asm.Assemble(`
		.data
v:		.word 0
		.text
main:	lw   $t0, v
		addiu $t0, $t0, 1
		sw   $t0, v
		li   $t1, 3
loop:	addiu $t1, $t1, -1
		bgtz $t1, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := energy.DefaultConfig()
	e, err := block.New(p, mem.New(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	first, firstPJ := e.Stats(), e.StaticPJ()
	blocks := e.Blocks()
	if blocks == 0 {
		t.Fatal("no blocks compiled")
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if e.Stats() != first || e.StaticPJ() != firstPJ {
		t.Errorf("rerun diverged: %+v/%.3f vs %+v/%.3f", e.Stats(), e.StaticPJ(), first, firstPJ)
	}
	if e.Blocks() != blocks {
		t.Errorf("block cache regrew: %d vs %d", e.Blocks(), blocks)
	}
	if err := e.Run(1000); err == nil {
		t.Error("running a halted engine should fail")
	}
}

func TestBlockNewErrors(t *testing.T) {
	if _, err := block.New(&asm.Program{}, mem.New(), nil); err == nil {
		t.Error("empty program accepted")
	}
}
