package block

import (
	"fmt"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
)

// opFn is one fused straight-line micro-op: it mutates the engine's
// architectural state and reports false after latching a fault into e.err.
type opFn func(e *Engine) bool

// compiledBlock is one translated basic block: the fused closures of its
// straight-line body plus the precomputed pipeline-state delta of executing
// it. The terminator is not part of code — the dispatch loop resolves it
// through cpu.ExecUOp because its outcome (taken/target) is dynamic.
type compiledBlock struct {
	start   int32
	n       int          // micro-ops including the terminator
	term    isa.TermKind // never TermNone: such blocks fail to compile
	termIdx int32
	fallIdx int32 // first micro-op after the block (may be == len(uops))

	code []opFn

	// exLast is the EX-cycle offset of the terminator relative to the EX
	// cycle of the block's first micro-op: n-1 sequential steps plus every
	// intra-block load-use stall.
	exLast uint64
	// stalls is the block's total load-use stall cycles; stalls never cross
	// block boundaries (a fall-through predecessor is a branch, never a
	// load, and a taken transfer inserts flush bubbles).
	stalls uint64
	// secure counts micro-ops carrying the secure bit.
	secure uint64
	// flushTaken is the number of younger instructions squashed when the
	// terminator is taken: the ID occupant if one was fetched, plus the IF
	// occupant unless fetch was suppressed (halt in decode) or off the end
	// of the text segment.
	flushTaken uint64

	// staticPJ is the data-independent energy of the block's n micro-ops;
	// squashTakenPJ adds the squashed slots' fetch/decode statics on a taken
	// exit. Zero when the engine accounts no energy.
	staticPJ      float64
	squashTakenPJ float64
}

// compile translates the basic block entered at micro-op index idx.
func (e *Engine) compile(idx int32) (*compiledBlock, error) {
	bb := isa.ScanBlock(e.uops, int(idx))
	if bb.Term == isa.TermNone {
		// The block runs off the end of the text segment: in the pipelined
		// core that drains into a fetch fault. Replay reports it exactly.
		return nil, e.deoptf(e.uops[idx].PC, nil, "block runs past end of text segment")
	}
	b := &compiledBlock{
		start:   idx,
		n:       bb.N,
		term:    bb.Term,
		termIdx: idx + int32(bb.N) - 1,
		fallIdx: idx + int32(bb.N),
	}
	if bb.N > 1 {
		b.code = make([]opFn, 0, bb.N-1)
	}
	spec := e.spec
	var ex uint64
	for i := 0; i < bb.N; i++ {
		u := &e.uops[int(idx)+i]
		if !isa.BlockLegalUOp(u) {
			return nil, e.deoptf(u.PC, nil, "unsupported exec class %v", u.Class)
		}
		if u.Secure {
			b.secure++
		}
		if e.energyOn {
			b.staticPJ += energy.StaticUOpPJ(u, &e.cfg, e.scale[u.Class])
		}
		if i > 0 {
			prev := &e.uops[int(idx)+i-1]
			if prev.Load && prev.Dest != isa.Zero &&
				(prev.Dest == u.SrcA || (u.BReg && prev.Dest == u.SrcB)) {
				stall := uint64(spec.LoadUseStall)
				b.stalls += stall
				ex += stall
			}
			ex++
		}
		if i < bb.N-1 {
			b.code = append(b.code, compileOp(u))
		}
	}
	b.exLast = ex

	if bb.Term != isa.TermHalt {
		// Taken-exit squash geometry, mirroring the pipelined core's redirect
		// cycle: the ID occupant (termIdx+1) was fetched and issued before the
		// redirect; the IF occupant (termIdx+2) was fetched that same cycle
		// unless a halt in decode had already suppressed fetch, or the fetch
		// ran past the text segment (a non-fatal wrong-path stall).
		t := int(b.termIdx)
		if t+1 < len(e.uops) {
			b.flushTaken++
			if e.energyOn {
				b.squashTakenPJ += energy.StaticSquashIssuePJ(&e.uops[t+1], &e.cfg)
			}
			if e.uops[t+1].Class != isa.ClassHalt && t+2 < len(e.uops) {
				b.flushTaken++
				if e.energyOn {
					b.squashTakenPJ += energy.StaticSquashFetchPJ(&e.cfg)
				}
			}
		}
	}
	return b, nil
}

// compileOp fuses one straight-line micro-op into a specialized closure. The
// hot ALU classes and memory ops get direct closures; everything else routes
// through cpu.ExecUOp, so the fused semantics are the pipelined core's by
// construction either way (the specializations are pinned against ExecUOp by
// the package's fuzz test).
func compileOp(u *isa.UOp) opFn {
	sa, sb, d := u.SrcA, u.SrcB, u.Dest
	bc, off, pc := u.BConst, u.Off, u.PC

	switch {
	case u.Load:
		if d == isa.Zero {
			return func(e *Engine) bool {
				if _, err := e.mem.LoadWord(e.regs[sa] + off); err != nil {
					e.err = fmt.Errorf("cpu: pc %#x: %w", pc, err)
					return false
				}
				return true
			}
		}
		return func(e *Engine) bool {
			v, err := e.mem.LoadWord(e.regs[sa] + off)
			if err != nil {
				e.err = fmt.Errorf("cpu: pc %#x: %w", pc, err)
				return false
			}
			e.regs[d] = v
			return true
		}
	case u.Store:
		return func(e *Engine) bool {
			if err := e.mem.StoreWord(e.regs[sa]+off, e.regs[sb]); err != nil {
				e.err = fmt.Errorf("cpu: pc %#x: %w", pc, err)
				return false
			}
			return true
		}
	}

	// Pure ALU op. With no destination it is architecturally a no-op (it
	// still occupies a pipeline slot, which the block's timing delta counts).
	if d == isa.Zero {
		return func(*Engine) bool { return true }
	}
	// Both operands compile-time constant ($zero source, immediate B): fold
	// the result at translation time.
	if sa == isa.Zero && !u.BReg {
		v, _, _, err := cpu.ExecUOp(u, 0, bc)
		if err == nil {
			return func(e *Engine) bool {
				e.regs[d] = v
				return true
			}
		}
	}
	if u.BReg {
		switch u.Class {
		case isa.ClassAdd:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] + e.regs[sb]; return true }
		case isa.ClassSub:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] - e.regs[sb]; return true }
		case isa.ClassAnd:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] & e.regs[sb]; return true }
		case isa.ClassOr:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] | e.regs[sb]; return true }
		case isa.ClassXor:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] ^ e.regs[sb]; return true }
		case isa.ClassSll:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] << (e.regs[sb] & 31); return true }
		case isa.ClassSrl:
			return func(e *Engine) bool { e.regs[d] = e.regs[sa] >> (e.regs[sb] & 31); return true }
		}
		uu := u
		return func(e *Engine) bool {
			res, _, _, err := cpu.ExecUOp(uu, e.regs[sa], e.regs[sb])
			if err != nil {
				e.err = err
				return false
			}
			e.regs[d] = res
			return true
		}
	}
	switch u.Class {
	case isa.ClassAdd:
		return func(e *Engine) bool { e.regs[d] = e.regs[sa] + bc; return true }
	case isa.ClassAnd:
		return func(e *Engine) bool { e.regs[d] = e.regs[sa] & bc; return true }
	case isa.ClassOr:
		return func(e *Engine) bool { e.regs[d] = e.regs[sa] | bc; return true }
	case isa.ClassXor:
		return func(e *Engine) bool { e.regs[d] = e.regs[sa] ^ bc; return true }
	case isa.ClassSll:
		sh := bc & 31
		return func(e *Engine) bool { e.regs[d] = e.regs[sa] << sh; return true }
	case isa.ClassSrl:
		sh := bc & 31
		return func(e *Engine) bool { e.regs[d] = e.regs[sa] >> sh; return true }
	}
	uu := u
	return func(e *Engine) bool {
		res, _, _, err := cpu.ExecUOp(uu, e.regs[sa], bc)
		if err != nil {
			e.err = err
			return false
		}
		e.regs[d] = res
		return true
	}
}
