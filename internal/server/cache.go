package server

import (
	"container/list"
	"sync"
)

// programCache is a bounded LRU of compiled+predecoded machines keyed by
// (source identity, policy, optimize). A hit skips the entire maskcc
// pipeline and micro-op predecode; repeat submissions of the same program
// reuse one sim.Runner and its warm worker pool.
//
// Concurrent requests for the same missing key build once: the first caller
// owns the build, later callers block on the entry's ready channel. A failed
// build is not retained — the error propagates to every waiter and the key
// is removed so a later submission can retry.
type programCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	order   *list.List // front = most recently used; values are cacheKey

	hits, misses uint64
}

// cacheKey identifies one compiled program build.
type cacheKey struct {
	// Source is "workload:<name>" for built-ins or "sha256:<hex>" for
	// submitted MiniC source.
	Source   string
	Policy   string
	ISA      string
	Optimize bool
}

type cacheEntry struct {
	ready chan struct{} // closed once value/err are set
	value any
	err   error
	elem  *list.Element
}

func newProgramCache(max int) *programCache {
	if max <= 0 {
		max = 16
	}
	return &programCache{
		max:     max,
		entries: make(map[cacheKey]*cacheEntry),
		order:   list.New(),
	}
}

// getOrBuild returns the cached value for key, building it with build on a
// miss. The second result reports whether this was a hit (including hitting
// an entry another request is still building).
func (c *programCache) getOrBuild(key cacheKey, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.value, true, e.err
	}
	c.misses++
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = c.order.PushFront(key)
	c.entries[key] = e
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		k := oldest.Value.(cacheKey)
		c.order.Remove(oldest)
		delete(c.entries, k)
	}
	c.mu.Unlock()

	e.value, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		// Only remove if the key still maps to this failed entry (it may
		// already have been evicted).
		if cur, ok := c.entries[key]; ok && cur == e {
			c.order.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.value, false, e.err
}

// stats returns the lifetime hit/miss counters.
func (c *programCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len reports the current entry count.
func (c *programCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
