package server

import (
	"container/list"
	"context"
	"sync"
)

// programCache is a bounded LRU of compiled+predecoded machines keyed by
// (source identity, policy, optimize). A hit skips the entire maskcc
// pipeline and micro-op predecode; repeat submissions of the same program
// reuse one sim.Runner and its warm worker pool.
//
// Concurrent requests for the same missing key build once: the first caller
// owns the build, later callers block on the entry's ready channel. A failed
// build is not retained — the error propagates to every waiter and the key
// is removed so a later submission can retry.
type programCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	order   *list.List // front = most recently used; values are cacheKey

	hits, misses uint64
}

// cacheKey identifies one compiled program build.
type cacheKey struct {
	// Source is "workload:<name>" for built-ins or "sha256:<hex>" for
	// submitted MiniC source.
	Source   string
	Policy   string
	ISA      string
	Optimize bool
	// Shuffle distinguishes shuffled builds: the same source under the same
	// policy emits different code when operand shuffling is on.
	Shuffle bool
}

type cacheEntry struct {
	ready chan struct{} // closed once value/err are set
	value any
	err   error
	elem  *list.Element
}

func newProgramCache(max int) *programCache {
	if max <= 0 {
		max = 16
	}
	return &programCache{
		max:     max,
		entries: make(map[cacheKey]*cacheEntry),
		order:   list.New(),
	}
}

// getOrBuild returns the cached value for key, building it with build on a
// miss. The second result reports whether this was a hit (including hitting
// an entry another request is still building). A waiter whose context dies
// before the build finishes returns the context's error; the build itself
// continues and lands in the cache for later requests.
func (c *programCache) getOrBuild(ctx context.Context, key cacheKey, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.value, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c.misses++
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = c.order.PushFront(key)
	c.entries[key] = e
	c.evictCompleted()
	c.mu.Unlock()

	e.value, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		// Only remove if the key still maps to this failed entry (it may
		// already have been evicted).
		if cur, ok := c.entries[key]; ok && cur == e {
			c.order.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.value, false, e.err
}

// evictCompleted trims the cache to max, least recently used first, skipping
// entries whose build is still in flight. Evicting an in-flight entry would
// detach it from the key while its owner still runs: a concurrent identical
// submission would miss and silently start a duplicate compile, and the
// owner's failed-build cleanup would then operate on an already-removed list
// element. If every surplus entry is still building, the cache transiently
// exceeds max instead. Callers hold c.mu.
func (c *programCache) evictCompleted() {
	for el := c.order.Back(); el != nil && c.order.Len() > c.max; {
		prev := el.Prev()
		k := el.Value.(cacheKey)
		e := c.entries[k]
		select {
		case <-e.ready:
			c.order.Remove(el)
			delete(c.entries, k)
		default:
			// Build in flight — not evictable yet.
		}
		el = prev
	}
}

// stats returns the lifetime hit/miss counters.
func (c *programCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len reports the current entry count.
func (c *programCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
