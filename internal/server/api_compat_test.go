package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"desmask/internal/cliconf"
	"desmask/internal/jobstore"
)

// TestStructuredRequestCanonicalization: a structured protection/attack
// request that restates legacy defaults hashes to the same job ID as the
// bare-string spelling, and a request that actually enables a new
// countermeasure or statistic gets its own ID.
func TestStructuredRequestCanonicalization(t *testing.T) {
	legacy := smallDES(64)

	structured := smallDES(64)
	structured.Protection = &cliconf.Protection{Policy: "none"}
	structured.Attack = &cliconf.Attack{Stat: "tvla", Order: 1}
	structured.Policy = ""

	// Differing timeouts never split a job either.
	structured.TimeoutMS = 99_000

	cLegacy, err := canonicalRequest(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	cStructured, err := canonicalRequest(&structured)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cLegacy, cStructured) {
		t.Fatalf("canonical forms diverge:\nlegacy     %s\nstructured %s", cLegacy, cStructured)
	}
	if jobstore.JobID(cLegacy) != jobstore.JobID(cStructured) {
		t.Fatal("legacy and default-structured requests map to different job IDs")
	}

	shuffled := smallDES(64)
	shuffled.Protection = &cliconf.Protection{Policy: "none", Shuffle: true}
	cShuffled, err := canonicalRequest(&shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if jobstore.JobID(cShuffled) == jobstore.JobID(cLegacy) {
		t.Fatal("shuffled request collides with the unshuffled job ID")
	}

	order2 := smallDES(64)
	order2.Attack = &cliconf.Attack{Stat: "tvla", Order: 2}
	cOrder2, err := canonicalRequest(&order2)
	if err != nil {
		t.Fatal(err)
	}
	if jobstore.JobID(cOrder2) == jobstore.JobID(cLegacy) {
		t.Fatal("second-order request collides with the first-order job ID")
	}
}

// TestLegacyRequestReplaysStoredVerdict: the acceptance-criteria compat
// path — a verdict stored under the legacy bare-string spelling replays
// byte-for-byte for both the legacy resubmission and the equivalent
// structured request.
func TestLegacyRequestReplaysStoredVerdict(t *testing.T) {
	st, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st})

	legacy := smallDES(32)
	code, _, first := postAssess(t, ts.URL, legacy)
	if code != http.StatusOK {
		t.Fatalf("first submission: status %d: %s", code, first)
	}

	code, _, replay := postAssess(t, ts.URL, legacy)
	if code != http.StatusOK {
		t.Fatalf("legacy replay: status %d: %s", code, replay)
	}
	if replay != first {
		t.Fatalf("legacy replay not byte-identical:\nfirst  %s\nreplay %s", first, replay)
	}

	structured := smallDES(32)
	structured.Policy = ""
	structured.Protection = &cliconf.Protection{Policy: "none"}
	structured.Attack = &cliconf.Attack{Stat: "tvla"}
	code, _, viaStructured := postAssess(t, ts.URL, structured)
	if code != http.StatusOK {
		t.Fatalf("structured replay: status %d: %s", code, viaStructured)
	}
	if viaStructured != first {
		t.Fatalf("structured spelling did not replay the stored verdict:\nfirst      %s\nstructured %s", first, viaStructured)
	}
}

// postRaw submits a raw JSON body and returns status + body text.
func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/assess", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// TestStructured400: unknown policy/attack values come back as structured
// 400 bodies naming the field and its allowed values.
func TestStructured400(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name, body, field, allowed string
	}{
		{"legacy policy", `{"kernel":"des","policy":"paranoid","traces":8}`,
			"policy", "boolean-mask"},
		{"structured policy", `{"kernel":"des","protection":{"policy":"paranoid"},"traces":8}`,
			"policy", "selective"},
		{"attack stat", `{"kernel":"des","policy":"none","attack":{"stat":"mojo"},"traces":8}`,
			"attack.stat", "tvla"},
		{"attack order", `{"kernel":"des","policy":"none","attack":{"stat":"tvla","order":3},"traces":8}`,
			"attack.order", "2"},
		{"mask order", `{"kernel":"des","protection":{"policy":"boolean-mask","mask_order":2},"traces":8}`,
			"protection.mask_order", "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postRaw(t, ts.URL, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", code, body)
			}
			var er struct {
				Error   string   `json:"error"`
				Field   string   `json:"field"`
				Allowed []string `json:"allowed"`
			}
			if err := json.Unmarshal([]byte(body), &er); err != nil {
				t.Fatalf("bad 400 body %q: %v", body, err)
			}
			if er.Field != tc.field {
				t.Fatalf("field %q, want %q (body %s)", er.Field, tc.field, body)
			}
			found := false
			for _, a := range er.Allowed {
				if a == tc.allowed {
					found = true
				}
			}
			if !found {
				t.Fatalf("allowed %v does not list %q", er.Allowed, tc.allowed)
			}
		})
	}

	// stat=cpa is valid API-wide but not assessable over HTTP: plain 400
	// that points at the offline driver.
	code, body := postRaw(t, ts.URL, `{"kernel":"des","policy":"none","attack":{"stat":"cpa"},"traces":8}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "dpa-attack") {
		t.Fatalf("cpa request: status %d body %s", code, body)
	}

	// Conflicting flat and structured policies are rejected, not silently
	// resolved.
	code, body = postRaw(t, ts.URL, `{"kernel":"des","policy":"none","protection":{"policy":"selective"},"traces":8}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "conflict") {
		t.Fatalf("conflicting policies: status %d body %s", code, body)
	}
}

// TestAssessStructuredProtection: a boolean-mask + shuffle assessment runs
// end to end over HTTP and echoes the structured selectors; the verdict is
// clean at first order (the whole point of the countermeasure).
func TestAssessStructuredProtection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := AssessRequest{}
	req.Kernel = "des"
	req.Protection = &cliconf.Protection{Policy: "boolean-mask", Shuffle: true}
	req.Traces = 16
	req.MaxCycles = 6000
	req.Workers = 2
	code, rep, body := postAssess(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if rep.Policy != "boolean-mask" {
		t.Fatalf("policy %q", rep.Policy)
	}
	if rep.Protection == nil || !rep.Protection.Shuffle || rep.Protection.MaskOrder != 1 {
		t.Fatalf("protection echo %+v", rep.Protection)
	}
	if rep.Report == nil || rep.Report.Order != 1 {
		t.Fatalf("report %+v", rep.Report)
	}

	// Second-order assessment of the same build: the attack selector flows
	// through to the engine and back out in the echo.
	req.Attack = &cliconf.Attack{Stat: "tvla", Order: 2}
	code, rep, body = postAssess(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("order-2 status %d: %s", code, body)
	}
	if rep.Attack == nil || rep.Attack.Order != 2 || rep.Report.Order != 2 {
		t.Fatalf("order-2 echo attack=%+v report=%+v", rep.Attack, rep.Report)
	}
}
