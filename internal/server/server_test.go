package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer spins up a small leakd instance over httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postAssess submits one assessment and decodes the response body.
func postAssess(t *testing.T, url string, req AssessRequest) (int, AssessResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var out AssessResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad 200 body %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, out, buf.String()
}

// smallDES is a fast unprotected DES assessment request.
func smallDES(traces int) AssessRequest {
	req := AssessRequest{}
	req.Kernel = "des"
	req.Policy = "none"
	req.Traces = traces
	req.MaxCycles = 6000
	req.Workers = 2
	return req
}

// TestAssessEndToEnd: the acceptance path — a DES vary-key TVLA job served
// over HTTP returns a populated verdict, and the unprotected build leaks.
func TestAssessEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, rep, body := postAssess(t, ts.URL, smallDES(64))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if rep.Workload != "des" || rep.Policy != "none" || rep.Vary != "key" {
		t.Fatalf("verdict header %+v", rep)
	}
	if rep.Report == nil || rep.NumTraces != 64 || rep.CyclesSimulated == 0 {
		t.Fatalf("report not populated: %+v", rep.Report)
	}
	if !rep.Leak {
		t.Fatal("unprotected DES did not leak")
	}
}

// TestAssessDeterministicAcrossRequests: the HTTP layer must not disturb the
// engine's determinism — identical submissions produce identical verdicts.
func TestAssessDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first, _ := postAssess(t, ts.URL, smallDES(64))
	_, second, _ := postAssess(t, ts.URL, smallDES(64))
	if first.MaxAbsT != second.MaxAbsT || first.MaxTCycle != second.MaxTCycle ||
		first.CyclesSimulated != second.CyclesSimulated {
		t.Fatalf("verdicts diverged: %+v vs %+v", first.Report, second.Report)
	}
}

// TestAssessGangMatchesScalar: the gang knob is a pure execution-strategy
// switch — a gang-scheduled assessment must return the exact scalar verdict.
func TestAssessGangMatchesScalar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, scalar, body := postAssess(t, ts.URL, smallDES(64))
	if code != http.StatusOK {
		t.Fatalf("scalar status %d: %s", code, body)
	}
	req := smallDES(64)
	req.Gang = 8
	code, gang, body := postAssess(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("gang status %d: %s", code, body)
	}
	if scalar.MaxAbsT != gang.MaxAbsT || scalar.MaxTCycle != gang.MaxTCycle ||
		scalar.Leak != gang.Leak || scalar.CyclesSimulated != gang.CyclesSimulated {
		t.Fatalf("gang verdict diverged from scalar:\nscalar %+v\ngang   %+v", scalar.Report, gang.Report)
	}
}

// TestAssessCacheHit: a repeated identical submission must hit the
// compiled-program cache.
func TestAssessCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, rep, body := postAssess(t, ts.URL, smallDES(16))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if rep.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	code, rep, body = postAssess(t, ts.URL, smallDES(16))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if !rep.CacheHit {
		t.Fatal("repeat submission missed the program cache")
	}
	if hits, misses := s.cache.stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestAssessTimeout: a request whose deadline expires mid-assessment returns
// 504 and frees its execution slot for the next request.
func TestAssessTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	// Warm the program cache so the timeout hits the assessment stage, not
	// the compile.
	if code, _, body := postAssess(t, ts.URL, smallDES(8)); code != http.StatusOK {
		t.Fatalf("warm-up failed: %d %s", code, body)
	}
	req := smallDES(100000)
	req.TimeoutMS = 150
	code, _, body := postAssess(t, ts.URL, req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
	if !strings.Contains(body, "deadline") && !strings.Contains(body, "cancel") {
		t.Fatalf("504 body does not name the cause: %s", body)
	}
	// The slot must be free again: a small job completes.
	if code, _, body := postAssess(t, ts.URL, smallDES(8)); code != http.StatusOK {
		t.Fatalf("slot not freed after timeout: %d %s", code, body)
	}
}

// TestQueueOverflow: with one execution slot and a one-deep wait queue,
// a burst of simultaneous requests must see some admitted and the rest shed
// with 429.
func TestQueueOverflow(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	if code, _, body := postAssess(t, ts.URL, smallDES(8)); code != http.StatusOK {
		t.Fatalf("warm-up failed: %d %s", code, body)
	}

	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := smallDES(512)
			req.TimeoutMS = 120_000
			code, _, _ := postAssess(t, ts.URL, req)
			codes <- code
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		case http.StatusGatewayTimeout:
			// A queued request may expire under heavy instrumentation
			// (-race); expiry while queued is load shedding too.
			shed++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if shed == 0 {
		t.Fatalf("no request was shed: %d ok / %d shed", ok, shed)
	}
	if ok == 0 {
		t.Fatalf("every request was shed: %d ok / %d shed", ok, shed)
	}
}

// TestAssessValidation: the shared cliconf rules reject bad parameters with
// 400 before any work is admitted.
func TestAssessValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTraces: 100})
	cases := []struct {
		name string
		mut  func(*AssessRequest)
		want string
	}{
		{"bad policy", func(r *AssessRequest) { r.Policy = "paranoid" }, "unknown policy"},
		{"bad kernel", func(r *AssessRequest) { r.Kernel = "des3" }, "unknown kernel"},
		{"bad isa", func(r *AssessRequest) { r.ISA = "riscv64" }, "unknown isa"},
		{"bad isa valid policy", func(r *AssessRequest) { r.Policy, r.ISA = "selective", "arm" }, "unknown isa"},
		{"too few traces", func(r *AssessRequest) { r.Traces = 2 }, "at least 4"},
		{"over server cap", func(r *AssessRequest) { r.Traces = 101 }, "server limit"},
		{"source missing globals", func(r *AssessRequest) { r.Kernel, r.Source = "", "void main() {}" }, "secret_global"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := smallDES(16)
			tc.mut(&req)
			code, _, body := postAssess(t, ts.URL, req)
			if code != http.StatusBadRequest || !strings.Contains(body, tc.want) {
				t.Fatalf("status %d body %s, want 400 containing %q", code, body, tc.want)
			}
		})
	}
}

// TestAssessCrossISA: an `isa` request field selects the backend; the same
// unprotected workload leaks on both cores and the two builds are cached
// under distinct keys.
func TestAssessCrossISA(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, isaName := range []string{"pisa", "rv32"} {
		req := smallDES(64)
		req.ISA = isaName
		code, rep, body := postAssess(t, ts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("isa=%s: status %d: %s", isaName, code, body)
		}
		if rep.ISA != isaName {
			t.Fatalf("isa=%s: response echoes %q", isaName, rep.ISA)
		}
		if !rep.Leak {
			t.Fatalf("isa=%s: unprotected DES did not leak", isaName)
		}
		if rep.CacheHit {
			t.Fatalf("isa=%s: first build reported a cache hit — ISA missing from the cache key", isaName)
		}
	}
	if _, misses := s.cache.stats(); misses != 2 {
		t.Fatalf("cache misses = %d, want 2 (one per backend)", misses)
	}
	// An omitted isa field is the PISA build — it must hit the PISA entry.
	code, rep, body := postAssess(t, ts.URL, smallDES(64))
	if code != http.StatusOK || !rep.CacheHit || rep.ISA != "pisa" {
		t.Fatalf("default-isa request: code=%d hit=%v isa=%q (%s)", code, rep.CacheHit, rep.ISA, body)
	}
}

// TestMetrics: after traffic, /metrics exposes queue depth, jobs by state,
// cache hit rate and simulated cycles in the Prometheus text format.
func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postAssess(t, ts.URL, smallDES(16))
	postAssess(t, ts.URL, smallDES(16))
	bad := smallDES(16)
	bad.Policy = "paranoid"
	postAssess(t, ts.URL, bad)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"leakd_queue_depth 0",
		`leakd_jobs_total{state="completed"} 2`,
		`leakd_jobs_total{state="rejected"} 1`,
		"leakd_program_cache_hits_total 1",
		"leakd_program_cache_misses_total 1",
		"leakd_cycles_simulated_total",
		`leakd_stage_latency_seconds_bucket{stage="assess",le="+Inf"} 2`,
		`leakd_stage_latency_seconds_count{stage="compile"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type %q", ct)
	}
}

// TestHealthzAndPprof: the liveness and profiling surfaces answer.
func TestHealthzAndPprof(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestAssessCustomSource: a submitted MiniC program is compiled, cached and
// assessed through the same pipeline as the built-ins.
func TestAssessCustomSource(t *testing.T) {
	// A toy masked-style program: copies the secret through an ALU op into
	// the output. Unprotected, it must leak.
	src := `
secure int key[2];
int pt[2];
int out[2];
int r0;
int r1;

void emit_output() {
	out[0] = public(r0);
	out[1] = public(r1);
}

void main() {
	r0 = key[0] ^ pt[0];
	r1 = key[1] ^ pt[1];
	emit_output();
}
`
	_, ts := newTestServer(t, Config{})
	req := AssessRequest{
		Source:       src,
		SecretGlobal: "key",
		PublicGlobal: "pt",
		OutputGlobal: "out",
		OutputLen:    2,
		Secret:       []uint32{0xDEAD, 0xBEEF},
		Public:       []uint32{1, 2},
	}
	req.Policy = "none"
	req.Traces = 32
	req.Workers = 2
	code, rep, body := postAssess(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if rep.Workload != "custom" || rep.Vary != "secret" {
		t.Fatalf("custom verdict header %+v", rep)
	}
	code, rep, body = postAssess(t, ts.URL, req)
	if code != http.StatusOK || !rep.CacheHit {
		t.Fatalf("repeat custom submission: status %d hit=%v %s", code, rep.CacheHit, body)
	}
}

// TestGracefulDrain: Shutdown waits for an in-flight assessment and the
// verdict still reaches the client.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{})
	httpSrv := httptest.NewServer(s.Handler())

	type result struct {
		code int
		body string
	}
	results := make(chan result, 1)
	go func() {
		body, _ := json.Marshal(smallDES(64))
		resp, err := http.Post(httpSrv.URL+"/v1/assess", "application/json", bytes.NewReader(body))
		if err != nil {
			results <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		results <- result{resp.StatusCode, buf.String()}
	}()
	// Give the request a moment to be admitted, then close (which drains
	// in-flight connections like http.Server.Shutdown does).
	time.Sleep(100 * time.Millisecond)
	httpSrv.Close()
	select {
	case res := <-results:
		if res.code != http.StatusOK {
			t.Fatalf("in-flight request lost during drain: %d %s", res.code, res.body)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain hung")
	}
}
