package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics is leakd's hand-rolled observability surface, rendered in the
// Prometheus text exposition format (no client library — the repo carries no
// dependencies). Everything is either an atomic counter/gauge or a
// mutex-guarded fixed-bucket histogram.
type metrics struct {
	queueDepth atomic.Int64 // requests admitted but not yet running
	running    atomic.Int64 // requests currently executing

	// jobs by terminal state: completed, failed, rejected, timeout.
	jobs sync.Map // string -> *atomic.Uint64

	cyclesSimulated atomic.Uint64

	mu     sync.Mutex
	stages map[string]*histogram // per-stage latency: compile, window, assess
}

func newMetrics() *metrics {
	return &metrics{stages: make(map[string]*histogram)}
}

// jobDone counts one request reaching a terminal state.
func (m *metrics) jobDone(state string) {
	v, _ := m.jobs.LoadOrStore(state, new(atomic.Uint64))
	v.(*atomic.Uint64).Add(1)
}

// observeStage records one stage latency in seconds.
func (m *metrics) observeStage(stage string, seconds float64) {
	m.mu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		h = newHistogram()
		m.stages[stage] = h
	}
	m.mu.Unlock()
	h.observe(seconds)
}

// stageBuckets spans fast cache-hit windows (~ms) through large compile +
// assess runs (tens of seconds).
var stageBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60}

type histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket, + implicit +Inf via count
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(stageBuckets))}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, ub := range stageBuckets {
		if v <= ub {
			h.counts[i]++
		}
	}
}

// write renders a server snapshot; cache and runner totals are passed in by
// the handler so the metrics type stays free of server internals.
func (m *metrics) write(w io.Writer, cacheHits, cacheMisses uint64, cacheLen int) {
	fmt.Fprintf(w, "# HELP leakd_queue_depth Requests admitted and waiting for an execution slot.\n")
	fmt.Fprintf(w, "# TYPE leakd_queue_depth gauge\n")
	fmt.Fprintf(w, "leakd_queue_depth %d\n", m.queueDepth.Load())

	fmt.Fprintf(w, "# HELP leakd_jobs_running Requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE leakd_jobs_running gauge\n")
	fmt.Fprintf(w, "leakd_jobs_running %d\n", m.running.Load())

	fmt.Fprintf(w, "# HELP leakd_jobs_total Requests by terminal state.\n")
	fmt.Fprintf(w, "# TYPE leakd_jobs_total counter\n")
	var states []string
	m.jobs.Range(func(k, _ any) bool {
		states = append(states, k.(string))
		return true
	})
	sort.Strings(states)
	for _, s := range states {
		v, _ := m.jobs.Load(s)
		fmt.Fprintf(w, "leakd_jobs_total{state=%q} %d\n", s, v.(*atomic.Uint64).Load())
	}

	fmt.Fprintf(w, "# HELP leakd_program_cache_hits_total Compiled-program cache hits.\n")
	fmt.Fprintf(w, "# TYPE leakd_program_cache_hits_total counter\n")
	fmt.Fprintf(w, "leakd_program_cache_hits_total %d\n", cacheHits)
	fmt.Fprintf(w, "# HELP leakd_program_cache_misses_total Compiled-program cache misses.\n")
	fmt.Fprintf(w, "# TYPE leakd_program_cache_misses_total counter\n")
	fmt.Fprintf(w, "leakd_program_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintf(w, "# HELP leakd_program_cache_entries Programs currently cached.\n")
	fmt.Fprintf(w, "# TYPE leakd_program_cache_entries gauge\n")
	fmt.Fprintf(w, "leakd_program_cache_entries %d\n", cacheLen)

	fmt.Fprintf(w, "# HELP leakd_cycles_simulated_total Simulated cycles executed by completed assessments.\n")
	fmt.Fprintf(w, "# TYPE leakd_cycles_simulated_total counter\n")
	fmt.Fprintf(w, "leakd_cycles_simulated_total %d\n", m.cyclesSimulated.Load())

	fmt.Fprintf(w, "# HELP leakd_stage_latency_seconds Per-stage request latency.\n")
	fmt.Fprintf(w, "# TYPE leakd_stage_latency_seconds histogram\n")
	m.mu.Lock()
	stages := make([]string, 0, len(m.stages))
	for s := range m.stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	hs := make(map[string]*histogram, len(stages))
	for _, s := range stages {
		hs[s] = m.stages[s]
	}
	m.mu.Unlock()
	for _, s := range stages {
		h := hs[s]
		h.mu.Lock()
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "leakd_stage_latency_seconds_bucket{stage=%q,le=\"%g\"} %d\n", s, ub, h.counts[i])
		}
		fmt.Fprintf(w, "leakd_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", s, h.count)
		fmt.Fprintf(w, "leakd_stage_latency_seconds_sum{stage=%q} %g\n", s, h.sum)
		fmt.Fprintf(w, "leakd_stage_latency_seconds_count{stage=%q} %d\n", s, h.count)
		h.mu.Unlock()
	}
}
