// Durable jobs, shard fan-out, and progressive results for leakd.
//
// This file is the coordinator half of the distributed assessment design
// (DESIGN.md §15). One assessment is a fixed partition of NumShards shard
// sub-jobs; each sub-job is leakstat.AssessShard over its contiguous trace
// range, executed either in-process or on a peer leakd via POST /v1/shard,
// and its accumulator pair is persisted (jobstore) the moment it completes.
// The coordinator folds accumulators in shard order (leakstat.FoldReport),
// so the merged t-vector is bit-identical to a single-node run no matter
// which machine computed which shard, how execution interleaved, or how many
// times a crash forced a resume.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"desmask/internal/cliconf"
	"desmask/internal/jobstore"
	"desmask/internal/leakstat"
)

// canonicalRequest is the byte encoding the idempotency key hashes: the
// request's JSON in struct-field order, with the timeout zeroed — two
// submissions that differ only in how long the client is willing to wait are
// the same job — and the protection/attack selectors normalized
// (cliconf.Assess.Normalize), so a structured request that restates legacy
// defaults hashes to the same job ID as the bare-string spelling and
// replays its stored verdict.
func canonicalRequest(req *AssessRequest) ([]byte, error) {
	c := *req
	c.TimeoutMS = 0
	c.Assess = c.Assess.Normalize()
	return json.Marshal(&c)
}

// persistJob writes the job record for a request (idempotently) and returns
// it. The record is on disk before this returns — the durability point of
// the accept path.
func (s *Server) persistJob(req *AssessRequest, resolved *cliconf.ResolvedAssess) (*jobstore.Record, error) {
	canon, err := canonicalRequest(req)
	if err != nil {
		return nil, err
	}
	rec, _, err := s.cfg.Store.Create(jobstore.JobID(canon), canon, leakstat.NumShards(resolved.Config()))
	return rec, err
}

// completeJob records the verdict of a durable job. Completing an
// already-done job is a no-op in the store (first verdict wins), which is
// safe precisely because verdicts are deterministic.
func (s *Server) completeJob(jobID string, resp *AssessResponse) {
	if jobID == "" {
		return
	}
	verdict, err := json.Marshal(resp)
	if err != nil {
		s.log.Printf("leakd: encoding verdict for job %s: %v", jobID, err)
		return
	}
	if err := s.cfg.Store.Complete(jobID, verdict); err != nil {
		s.log.Printf("leakd: completing job %s: %v", jobID, err)
	}
}

// writeRawJSON replays a stored verdict without decoding it, re-indented so
// a replayed response is byte-compatible with a freshly computed one.
func (s *Server) writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, body, "", "  "); err == nil {
		buf.WriteByte('\n')
		body = buf.Bytes()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.log.Printf("leakd: writing %d response: %v", status, err)
	}
}

// progressEvent is one frame of a job's result stream. PrefixShards counts
// the contiguous completed prefix of the shard partition; PrefixMaxAbsT is
// the exact max |t| of that prefix population's fold — a true partial
// verdict, not an estimate — and converges to the final MaxAbsT when the
// prefix reaches Total.
type progressEvent struct {
	// Shard is the shard that just completed (-1 for snapshot frames).
	Shard int `json:"shard"`
	Done  int `json:"done"`
	Total int `json:"total"`

	PrefixShards  int     `json:"prefix_shards"`
	PrefixMaxAbsT float64 `json:"prefix_max_abs_t"`

	// State is set on snapshot frames derived from the stored record.
	State string `json:"state,omitempty"`
	// Final marks the last frame of the stream.
	Final bool `json:"final,omitempty"`
}

// jobProgress tracks one executing job's per-shard completion and maintains
// the progressive prefix fold: completed accumulators merge in shard order
// as soon as the contiguous prefix extends. Merging only ever appends to the
// prefix — the identical Merge sequence FoldReport performs — so every
// streamed t-statistic is the bit-exact verdict of its prefix population.
// All methods are nil-receiver safe: a non-durable assessment simply has no
// progress to track.
type jobProgress struct {
	mu      sync.Mutex
	total   int
	done    int
	pending map[int]*leakstat.ShardAccum
	prefix  int
	fixed   *leakstat.Vec
	random  *leakstat.Vec
	last    progressEvent
	subs    map[chan progressEvent]struct{}
	closed  bool
}

func newJobProgress(winLen, total int) *jobProgress {
	return &jobProgress{
		total:   total,
		pending: make(map[int]*leakstat.ShardAccum),
		fixed:   leakstat.NewVec(winLen),
		random:  leakstat.NewVec(winLen),
		last:    progressEvent{Shard: -1, Total: total},
		subs:    make(map[chan progressEvent]struct{}),
	}
}

// deliver records one completed shard, advances the prefix fold, and
// broadcasts a frame to subscribers.
func (p *jobProgress) deliver(acc *leakstat.ShardAccum) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if acc.Shard < p.prefix {
		return
	}
	if _, dup := p.pending[acc.Shard]; dup {
		return
	}
	p.pending[acc.Shard] = acc
	p.done++
	for {
		next, ok := p.pending[p.prefix]
		if !ok {
			break
		}
		if p.fixed.Merge(next.Fixed) != nil || p.random.Merge(next.Random) != nil {
			break
		}
		delete(p.pending, p.prefix)
		p.prefix++
	}
	ev := progressEvent{
		Shard:        acc.Shard,
		Done:         p.done,
		Total:        p.total,
		PrefixShards: p.prefix,
		Final:        p.done == p.total,
	}
	// WelchT needs two traces per population; the earliest prefixes may not
	// have them yet, in which case the frame carries no t-statistic.
	if p.fixed.N() >= 2 && p.random.N() >= 2 {
		if t, err := leakstat.WelchT(p.fixed, p.random); err == nil {
			ev.PrefixMaxAbsT, _ = leakstat.MaxAbs(t)
		}
	}
	p.last = ev
	for ch := range p.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop the frame, never block execution
		}
	}
}

// subscribe returns a channel primed with the current snapshot frame.
func (p *jobProgress) subscribe() chan progressEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch := make(chan progressEvent, 2*p.total+2)
	ch <- p.last
	if p.closed {
		close(ch)
		return ch
	}
	p.subs[ch] = struct{}{}
	return ch
}

func (p *jobProgress) unsubscribe(ch chan progressEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subs[ch]; ok {
		delete(p.subs, ch)
		close(ch)
	}
}

// shut ends every subscriber's stream (execution finished or failed).
func (p *jobProgress) shut() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for ch := range p.subs {
		delete(p.subs, ch)
		close(ch)
	}
}

// openProgress registers live progress tracking for a durable job.
func (s *Server) openProgress(jobID string, winLen, total int) *jobProgress {
	if jobID == "" {
		return nil
	}
	p := newJobProgress(winLen, total)
	s.progressM.Lock()
	s.progress[jobID] = p
	s.progressM.Unlock()
	return p
}

func (s *Server) closeProgress(jobID string, p *jobProgress) {
	if p == nil {
		return
	}
	s.progressM.Lock()
	if s.progress[jobID] == p {
		delete(s.progress, jobID)
	}
	s.progressM.Unlock()
	p.shut()
}

// assessSharded is the shard coordinator: it resumes from whatever shard
// accumulators the store already holds, computes the missing shards (fanned
// across peer workers when configured, in-process otherwise), persists each
// as it lands, and folds in shard order. Because every executor covers
// exactly ShardRange of its shard and the fold is FoldReport, the result is
// bit-identical to an uninterrupted single-node AssessContext.
func (s *Server) assessSharded(ctx context.Context, jobID string, req *AssessRequest, wl *workload, cfg leakstat.Config) (*leakstat.Report, error) {
	shards := leakstat.NumShards(cfg)
	winLen := cfg.Window.Len()
	parts := make([]*leakstat.ShardAccum, shards)
	if jobID != "" {
		stored, err := s.cfg.Store.Shards(jobID)
		if err != nil && !errors.Is(err, jobstore.ErrNotFound) {
			return nil, err
		}
		for i, acc := range stored {
			// A shard file that doesn't match this partition (window drift,
			// stray index) reads as "not computed"; corrupt files were
			// already dropped by the store's CRC check.
			if i >= 0 && i < shards && acc.Fixed.Len() == winLen && acc.Random.Len() == winLen {
				parts[i] = acc
			}
		}
	}

	prog := s.openProgress(jobID, winLen, shards)
	defer s.closeProgress(jobID, prog)

	var missing []int
	for i, acc := range parts {
		if acc != nil {
			prog.deliver(acc)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return leakstat.FoldReport(cfg, parts)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	finish := func(acc *leakstat.ShardAccum) {
		if jobID != "" {
			if err := s.cfg.Store.PutShard(jobID, acc); err != nil {
				// Persistence is best-effort per shard: losing one file only
				// costs recomputing that shard after a crash.
				s.log.Printf("leakd: persisting shard %d of %s: %v", acc.Shard, jobID, err)
			}
		}
		mu.Lock()
		parts[acc.Shard] = acc
		mu.Unlock()
		prog.deliver(acc)
	}
	runLocal := func(sh int) {
		acc, err := leakstat.AssessShard(runCtx, wl.src, cfg, sh)
		if err != nil {
			fail(err)
			return
		}
		finish(acc)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	local := cfg.Workers
	if local <= 0 {
		local = runtime.GOMAXPROCS(0)
	}
	for w := 0; w < local; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				runLocal(sh)
			}
		}()
	}
	for _, base := range s.cfg.ShardWorkers {
		base := base
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				acc, err := s.remoteShard(runCtx, base, req, sh, winLen)
				if err != nil {
					if runCtx.Err() != nil {
						fail(runCtx.Err())
						return
					}
					// A sick worker degrades throughput, never the verdict:
					// its shard runs locally instead.
					s.log.Printf("leakd: worker %s shard %d: %v (running locally)", base, sh, err)
					runLocal(sh)
					continue
				}
				finish(acc)
			}
		}()
	}
	for _, sh := range missing {
		select {
		case work <- sh:
		case <-runCtx.Done():
		}
	}
	close(work)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return leakstat.FoldReport(cfg, parts)
}

// shardRequest is the wire form of one shard sub-job: the full assessment
// request plus the shard index to execute.
type shardRequest struct {
	AssessRequest
	Shard int `json:"shard"`
}

// remoteShard executes one shard on a peer leakd and decodes the binary
// accumulator it returns, verifying the shard index and window length so a
// misconfigured peer can never fold a wrong-shaped accumulator.
func (s *Server) remoteShard(ctx context.Context, base string, req *AssessRequest, shard, winLen int) (*leakstat.ShardAccum, error) {
	body, err := json.Marshal(&shardRequest{AssessRequest: *req, Shard: shard})
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(base, "/")+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %d: %s: %s", shard, resp.Status, strings.TrimSpace(string(data)))
	}
	acc := new(leakstat.ShardAccum)
	if err := acc.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("shard %d: %w", shard, err)
	}
	if acc.Shard != shard || acc.Fixed.Len() != winLen || acc.Random.Len() != winLen {
		return nil, fmt.Errorf("shard %d: peer returned shard %d with window %d, want %d", shard, acc.Shard, acc.Fixed.Len(), winLen)
	}
	return acc, nil
}

// handleShard is the worker side of the fan-out: it executes exactly one
// shard of the described assessment and returns the accumulator pair in its
// binary encoding. The build goes through the same program cache as full
// assessments, so a worker compiles each program once no matter how many
// shards it serves.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req shardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resolved, err := s.resolve(&req.AssessRequest)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req.AssessRequest))
	defer cancel()
	release, status, aerr := s.admit(ctx)
	if aerr != nil {
		s.writeError(w, status, "%v", aerr)
		return
	}
	defer release()

	wl, _, err := s.buildWorkload(ctx, &req.AssessRequest, resolved)
	if err != nil {
		if ctxErr(err) {
			s.writeError(w, http.StatusGatewayTimeout, "shard cancelled: %v", err)
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, "build failed: %v", err)
		return
	}
	cfg := resolved.Config()
	cfg.Window = wl.win
	acc, err := leakstat.AssessShard(ctx, wl.src, cfg, req.Shard)
	if err != nil {
		if ctxErr(err) {
			s.writeError(w, http.StatusGatewayTimeout, "shard cancelled: %v", err)
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, "shard failed: %v", err)
		return
	}
	data, err := acc.MarshalBinary()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding shard: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(data); err != nil {
		s.log.Printf("leakd: writing shard %d response: %v", req.Shard, err)
	}
}

// handleJobs is the async job API: POST submits (202 with the pending
// record; replays of known jobs return the existing record), GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		s.writeError(w, http.StatusServiceUnavailable, "durable jobs need a store (start leakd with -data)")
		return
	}
	switch r.Method {
	case http.MethodGet:
		recs, err := s.cfg.Store.List()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "listing jobs: %v", err)
			return
		}
		if recs == nil {
			recs = []*jobstore.Record{}
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"jobs": recs})
	case http.MethodPost:
		var req AssessRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		resolved, err := s.resolve(&req)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		rec, err := s.persistJob(&req, resolved)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
			return
		}
		if rec.Terminal() {
			s.writeJSON(w, http.StatusOK, rec)
			return
		}
		s.spawnJob(&req, resolved, rec.ID)
		s.writeJSON(w, http.StatusAccepted, rec)
	default:
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleJob serves GET /v1/jobs/{id} (the stored record, including the
// verdict once done) and GET /v1/jobs/{id}/stream (the progressive result
// stream).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		s.writeError(w, http.StatusServiceUnavailable, "durable jobs need a store (start leakd with -data)")
		return
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	stream := false
	if strings.HasSuffix(id, "/stream") {
		stream = true
		id = strings.TrimSuffix(id, "/stream")
	}
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, http.StatusNotFound, "no such route")
		return
	}
	rec, err := s.cfg.Store.Get(id)
	if err != nil {
		if errors.Is(err, jobstore.ErrNotFound) {
			s.writeError(w, http.StatusNotFound, "unknown job %s", id)
			return
		}
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !stream {
		s.writeJSON(w, http.StatusOK, rec)
		return
	}
	s.streamJob(w, r, rec)
}

// streamJob writes the job's result stream as server-sent events: one
// `data:` frame per completed shard carrying the progressive prefix-fold
// t-statistic, ending with a Final frame. A job with no live execution gets
// a single snapshot frame from its stored record; the verdict itself is
// fetched from GET /v1/jobs/{id} once the stream ends.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, rec *jobstore.Record) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	s.progressM.Lock()
	prog := s.progress[rec.ID]
	s.progressM.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeFrame := func(ev progressEvent) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		fl.Flush()
	}

	if prog == nil {
		done := 0
		if rec.State == jobstore.StateDone {
			done = rec.Shards
		}
		writeFrame(progressEvent{
			Shard: -1, Done: done, Total: rec.Shards, PrefixShards: done,
			State: string(rec.State), Final: true,
		})
		return
	}
	ch := prog.subscribe()
	defer prog.unsubscribe(ch)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			writeFrame(ev)
			if ev.Final {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// spawnJob starts (at most one) background runner for a durable job. Async
// runners block for an execution slot without consuming interactive queue
// capacity — the job is already durable, so waiting costs nothing — and are
// cancelled by Close, leaving the job pending for the next recovery pass.
func (s *Server) spawnJob(req *AssessRequest, resolved *cliconf.ResolvedAssess, id string) bool {
	s.progressM.Lock()
	if s.owned[id] {
		s.progressM.Unlock()
		return false
	}
	s.owned[id] = true
	s.progressM.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.progressM.Lock()
			delete(s.owned, id)
			s.progressM.Unlock()
		}()
		ctx, cancel := context.WithTimeout(s.baseCtx, s.requestTimeout(req))
		defer cancel()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return // still pending; resumed on the next Recover
		}
		defer func() { <-s.sem }()
		s.metrics.running.Add(1)
		defer s.metrics.running.Add(-1)

		resp, err := s.execute(ctx, req, resolved, id)
		switch {
		case err == nil:
			s.completeJob(id, resp)
			s.metrics.jobDone("completed")
		case ctxErr(err):
			if rerr := s.cfg.Store.Requeue(id); rerr != nil {
				s.log.Printf("leakd: requeueing job %s: %v", id, rerr)
			}
			s.metrics.jobDone("timeout")
		default:
			if ferr := s.cfg.Store.Fail(id, err.Error()); ferr != nil {
				s.log.Printf("leakd: failing job %s: %v", id, ferr)
			}
			s.metrics.jobDone("failed")
		}
	}()
	return true
}

// Recover re-spawns every incomplete job in the store — the restart half of
// the durability contract. Each resumed job re-runs only its missing shards
// and, by exactly-once Complete semantics, lands the same verdict an
// uninterrupted run would have. Returns the number of jobs resumed.
func (s *Server) Recover() (int, error) {
	if s.cfg.Store == nil {
		return 0, nil
	}
	inc, err := s.cfg.Store.Incomplete()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, rec := range inc {
		var req AssessRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			s.log.Printf("leakd: job %s request unreadable: %v", rec.ID, err)
			if ferr := s.cfg.Store.Fail(rec.ID, fmt.Sprintf("unreadable request: %v", err)); ferr != nil {
				s.log.Printf("leakd: failing job %s: %v", rec.ID, ferr)
			}
			continue
		}
		resolved, err := s.resolve(&req)
		if err != nil {
			s.log.Printf("leakd: job %s no longer valid: %v", rec.ID, err)
			if ferr := s.cfg.Store.Fail(rec.ID, fmt.Sprintf("request no longer valid: %v", err)); ferr != nil {
				s.log.Printf("leakd: failing job %s: %v", rec.ID, ferr)
			}
			continue
		}
		if err := s.cfg.Store.Requeue(rec.ID); err != nil {
			s.log.Printf("leakd: requeueing job %s: %v", rec.ID, err)
			continue
		}
		if s.spawnJob(&req, resolved, rec.ID) {
			n++
		}
	}
	return n, nil
}
