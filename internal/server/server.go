// Package server implements leakd, the long-running leakage-assessment
// service: an HTTP/JSON daemon that accepts TVLA assessment jobs (a named
// workload or submitted MiniC source, a masking policy, a trace count), runs
// them on shared sim.Runner pools through internal/leakstat, and returns the
// leakage verdict.
//
// The service layers three things on top of the batch engines without
// touching their determinism contract (DESIGN.md §10):
//
//   - Admission control: a semaphore bounds concurrently executing
//     assessments and a bounded wait queue sheds load with 429 once full.
//   - Cancellation: every request runs under a context with a per-request
//     deadline; leakstat.AssessContext stops launching traces once the
//     context dies and the request returns 504 with its workers freed.
//   - Observability: /metrics (Prometheus text format), /healthz, and
//     /debug/pprof.
//
// Compiled programs are cached in an LRU keyed by (source identity, policy,
// optimize), so a repeat submission skips the masking compiler and micro-op
// predecode and lands on a warm worker pool.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/kernels"
	"desmask/internal/leakstat"
	"desmask/internal/trace"
)

// Config sizes the service.
type Config struct {
	// MaxConcurrent bounds assessments executing at once (<= 0: 2).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; one more
	// request is rejected with 429 (<= 0: 8).
	MaxQueue int
	// CacheSize bounds the compiled-program LRU (<= 0: 16).
	CacheSize int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (<= 0: 60s).
	DefaultTimeout time.Duration
	// MaxTraces caps the per-request trace count (<= 0: unlimited).
	MaxTraces int
	// Workers is the default shard worker pool size per assessment when the
	// request leaves workers at 0 (0 = GOMAXPROCS).
	Workers int
}

// Server is the leakd HTTP service.
type Server struct {
	cfg     Config
	cache   *programCache
	metrics *metrics
	sem     chan struct{}
	mux     *http.ServeMux
}

// New builds a Server with its routes registered.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		cache:   newProgramCache(cfg.CacheSize),
		metrics: newMetrics(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/assess", s.handleAssess)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// AssessRequest is the JSON body of POST /v1/assess. The embedded
// cliconf.Assess carries exactly the parameter surface of the cmd/tvla
// flags, validated by the same rules.
type AssessRequest struct {
	cliconf.Assess

	// Source, when non-empty, submits a MiniC program instead of a named
	// kernel. The program's secure-annotated secret global, public input
	// global and output global must be named, and it must define an
	// emit_output function bounding the masked region. Secret and Public
	// are the fixed-population input words.
	Source       string   `json:"source,omitempty"`
	SecretGlobal string   `json:"secret_global,omitempty"`
	PublicGlobal string   `json:"public_global,omitempty"`
	OutputGlobal string   `json:"output_global,omitempty"`
	OutputLen    int      `json:"output_len,omitempty"`
	Secret       []uint32 `json:"secret,omitempty"`
	Public       []uint32 `json:"public,omitempty"`

	// Optimize compiles with the taint-sound optimizing pass pipeline
	// (maskcc -O); part of the program-cache key.
	Optimize bool `json:"optimize,omitempty"`

	// TimeoutMS bounds the request (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// AssessResponse is the JSON verdict of one assessment.
type AssessResponse struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	ISA      string `json:"isa"`
	Vary     string `json:"vary"`
	Optimize bool   `json:"optimize"`
	*leakstat.Report
	Seconds  float64 `json:"seconds"`
	CacheHit bool    `json:"cache_hit"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, hits, misses, s.cache.len())
}

// resolve validates the request onto the shared cliconf surface. A submitted
// source program reuses the common validation with the workload name pinned;
// its own fields are checked here.
func (s *Server) resolve(req *AssessRequest) (*cliconf.ResolvedAssess, error) {
	a := req.Assess
	if req.Source != "" {
		if a.Kernel != "" && a.Kernel != "custom" {
			return nil, errors.New("source and kernel are mutually exclusive (use at most kernel \"custom\")")
		}
		if a.Vary == "plaintext" {
			return nil, errors.New("vary plaintext is DES-only; source programs always vary the secret")
		}
		if req.SecretGlobal == "" || req.PublicGlobal == "" || req.OutputGlobal == "" || req.OutputLen <= 0 {
			return nil, errors.New("source programs need secret_global, public_global, output_global and output_len")
		}
		if len(req.Secret) == 0 {
			return nil, errors.New("source programs need a fixed secret input array")
		}
		a.Kernel, a.Vary = "des", "key" // placeholders for the shared rules
	}
	r, err := a.Validate()
	if err != nil {
		return nil, err
	}
	if s.cfg.MaxTraces > 0 && r.Traces > s.cfg.MaxTraces {
		return nil, fmt.Errorf("traces %d exceeds the server limit %d", r.Traces, s.cfg.MaxTraces)
	}
	if r.Workers == 0 {
		r.Workers = s.cfg.Workers
	}
	return r, nil
}

// workload is a ready-to-assess population: a trace source and its window.
type workload struct {
	name string
	src  leakstat.Source
	win  trace.Window
}

// cacheKeyFor derives the program-cache key: built-in workloads are keyed by
// name, submitted source by its SHA-256 (plus the globals that shape the
// job), and both by (policy, optimize).
func cacheKeyFor(req *AssessRequest, r *cliconf.ResolvedAssess) cacheKey {
	src := "workload:" + r.Kernel
	if req.Source != "" {
		h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%s\x00%s\x00%d",
			req.Source, req.SecretGlobal, req.PublicGlobal, req.OutputGlobal, req.OutputLen)))
		src = fmt.Sprintf("sha256:%x", h)
	}
	return cacheKey{Source: src, Policy: r.PolicyV.String(), ISA: r.TargetV.Name(), Optimize: req.Optimize}
}

// buildWorkload compiles (or fetches from cache) the program and locates the
// assessment window. The compile stage is only timed on a miss; the window
// probe run is timed per request.
func (s *Server) buildWorkload(req *AssessRequest, r *cliconf.ResolvedAssess) (*workload, bool, error) {
	opt := compiler.Options{Policy: r.PolicyV, Target: r.TargetV, Optimize: req.Optimize}
	key := cacheKeyFor(req, r)

	switch {
	case req.Source != "":
		k := kernels.Kernel{
			Name:         "custom",
			Source:       req.Source,
			SecretGlobal: req.SecretGlobal,
			PublicGlobal: req.PublicGlobal,
			OutputGlobal: req.OutputGlobal,
			OutputLen:    req.OutputLen,
		}
		m, hit, err := s.cachedKernelMachine(key, k, opt)
		if err != nil {
			return nil, hit, err
		}
		return s.kernelWorkload("custom", m, req.Secret, req.Public, 0xffffffff, r, hit)
	case r.Kernel == "des":
		v, hit, err := s.cache.getOrBuild(key, func() (any, error) {
			start := time.Now()
			m, err := desprog.NewFull(opt, energy.DefaultConfig())
			if err == nil {
				s.metrics.observeStage("compile", time.Since(start).Seconds())
			}
			return m, err
		})
		if err != nil {
			return nil, hit, err
		}
		m := v.(*desprog.Machine)
		var (
			src  leakstat.Source
			win  trace.Window
			err2 error
		)
		winStart := time.Now()
		if r.Vary == "plaintext" {
			src = leakstat.DESPlaintextSource(m, r.KeyV, r.PlaintextV, r.Seed, r.MaxCycles)
			win, err2 = leakstat.DESRound1Window(m, r.KeyV, r.PlaintextV, r.MaxCycles)
		} else {
			src = leakstat.DESKeySource(m, r.KeyV, r.PlaintextV, r.Seed, r.MaxCycles)
			win, err2 = leakstat.DESMaskedWindow(m, r.KeyV, r.PlaintextV, r.MaxCycles)
		}
		if err2 != nil {
			return nil, hit, err2
		}
		s.metrics.observeStage("window", time.Since(winStart).Seconds())
		return &workload{name: "des", src: src, win: win}, hit, nil
	default:
		k, _ := kernels.ByName(r.Kernel)
		m, hit, err := s.cachedKernelMachine(key, k, opt)
		if err != nil {
			return nil, hit, err
		}
		secret, public, mask := kernels.TVLAInputs(k)
		return s.kernelWorkload(r.Kernel, m, secret, public, mask, r, hit)
	}
}

// cachedKernelMachine fetches or builds a kernels.Machine under the cache.
func (s *Server) cachedKernelMachine(key cacheKey, k kernels.Kernel, opt compiler.Options) (*kernels.Machine, bool, error) {
	v, hit, err := s.cache.getOrBuild(key, func() (any, error) {
		start := time.Now()
		m, err := kernels.Build(k, opt, energy.DefaultConfig())
		if err == nil {
			s.metrics.observeStage("compile", time.Since(start).Seconds())
		}
		return m, err
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*kernels.Machine), hit, nil
}

// kernelWorkload assembles the fixed-vs-random-secret population of a kernel
// machine and its masked window.
func (s *Server) kernelWorkload(name string, m *kernels.Machine, secret, public []uint32, mask uint32, r *cliconf.ResolvedAssess, hit bool) (*workload, bool, error) {
	winStart := time.Now()
	win, err := leakstat.KernelMaskedWindow(m, secret, public)
	if err != nil {
		return nil, hit, err
	}
	if r.MaxCycles > 0 {
		win = win.Clamp(int(r.MaxCycles))
		if win.Len() <= 0 {
			return nil, hit, fmt.Errorf("masked window outside the %d-cycle budget", r.MaxCycles)
		}
	}
	s.metrics.observeStage("window", time.Since(winStart).Seconds())
	src := leakstat.KernelSecretSource(m, secret, public, mask, r.Seed, r.MaxCycles)
	return &workload{name: name, src: src, win: win}, hit, nil
}

// handleAssess runs one assessment request end to end: admission, program
// build (through the cache), windowed TVLA sweep, verdict.
func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AssessRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.jobDone("rejected")
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resolved, err := s.resolve(&req)
	if err != nil {
		s.metrics.jobDone("rejected")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: bounded wait queue in front of the execution semaphore.
	if depth := s.metrics.queueDepth.Add(1); depth > int64(s.cfg.MaxQueue) {
		s.metrics.queueDepth.Add(-1)
		s.metrics.jobDone("rejected")
		writeError(w, http.StatusTooManyRequests, "queue full (%d waiting)", depth-1)
		return
	}
	select {
	case s.sem <- struct{}{}:
		s.metrics.queueDepth.Add(-1)
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.metrics.queueDepth.Add(-1)
		s.metrics.jobDone("timeout")
		writeError(w, http.StatusGatewayTimeout, "request expired while queued: %v", ctx.Err())
		return
	}

	s.metrics.running.Add(1)
	defer s.metrics.running.Add(-1)

	start := time.Now()
	wl, hit, err := s.buildWorkload(&req, resolved)
	if err != nil {
		s.metrics.jobDone("failed")
		writeError(w, http.StatusUnprocessableEntity, "build failed: %v", err)
		return
	}

	cfg := resolved.Config()
	cfg.Window = wl.win
	assessStart := time.Now()
	rep, err := leakstat.AssessContext(ctx, wl.src, cfg)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.jobDone("timeout")
			writeError(w, http.StatusGatewayTimeout, "assessment cancelled: %v", err)
			return
		}
		s.metrics.jobDone("failed")
		writeError(w, http.StatusUnprocessableEntity, "assessment failed: %v", err)
		return
	}
	s.metrics.observeStage("assess", time.Since(assessStart).Seconds())
	s.metrics.cyclesSimulated.Add(rep.CyclesSimulated)
	s.metrics.jobDone("completed")

	vary := resolved.Vary
	if wl.name != "des" {
		vary = "secret"
	}
	writeJSON(w, http.StatusOK, AssessResponse{
		Workload: wl.name,
		Policy:   resolved.PolicyV.String(),
		ISA:      resolved.TargetV.Name(),
		Vary:     vary,
		Optimize: req.Optimize,
		Report:   rep,
		Seconds:  time.Since(start).Seconds(),
		CacheHit: hit,
	})
}
