// Package server implements leakd, the long-running leakage-assessment
// service: an HTTP/JSON daemon that accepts TVLA assessment jobs (a named
// workload or submitted MiniC source, a masking policy, a trace count), runs
// them on shared sim.Runner pools through internal/leakstat, and returns the
// leakage verdict.
//
// The service layers three things on top of the batch engines without
// touching their determinism contract (DESIGN.md §10):
//
//   - Admission control: a semaphore bounds concurrently executing
//     assessments and a bounded wait queue sheds load with 429 once full.
//   - Cancellation: every request runs under a context with a per-request
//     deadline; leakstat.AssessContext stops launching traces once the
//     context dies and the request returns 504 with its workers freed.
//   - Observability: /metrics (Prometheus text format), /healthz, and
//     /debug/pprof.
//
// Compiled programs are cached in an LRU keyed by (source identity, policy,
// optimize), so a repeat submission skips the masking compiler and micro-op
// predecode and lands on a warm worker pool.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/jobstore"
	"desmask/internal/kernels"
	"desmask/internal/leakstat"
	"desmask/internal/trace"
)

// Config sizes the service.
type Config struct {
	// MaxConcurrent bounds assessments executing at once (<= 0: 2).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot; one more
	// request is rejected with 429 (<= 0: 8).
	MaxQueue int
	// CacheSize bounds the compiled-program LRU (<= 0: 16).
	CacheSize int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (<= 0: 60s).
	DefaultTimeout time.Duration
	// MaxTraces caps the per-request trace count (<= 0: unlimited).
	MaxTraces int
	// Workers is the default shard worker pool size per assessment when the
	// request leaves workers at 0 (0 = GOMAXPROCS).
	Workers int
	// Store, when non-nil, makes assessments durable: every accepted job is
	// persisted before admission, survives a kill, and is resumed on
	// restart with exactly-once verdict semantics (see internal/jobstore).
	// It also enables the async job API (/v1/jobs) and per-shard streaming.
	Store *jobstore.Store
	// ShardWorkers lists base URLs of peer leakd processes to fan one
	// assessment's shard sub-jobs across (their POST /v1/shard endpoints).
	// Empty runs every shard in-process.
	ShardWorkers []string
	// Log receives service diagnostics (nil = the standard logger).
	Log *log.Logger
}

// Server is the leakd HTTP service.
type Server struct {
	cfg     Config
	cache   *programCache
	metrics *metrics
	sem     chan struct{}
	mux     *http.ServeMux
	log     *log.Logger

	// Background job-execution lifecycle: baseCtx cancels the async runners
	// on Close, wg tracks them for Drain.
	baseCtx   context.Context
	baseStop  context.CancelFunc
	wg        sync.WaitGroup
	progressM sync.Mutex
	progress  map[string]*jobProgress
	owned     map[string]bool // job ids an async runner currently owns
}

// New builds a Server with its routes registered.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	baseCtx, baseStop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		cache:    newProgramCache(cfg.CacheSize),
		metrics:  newMetrics(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		mux:      http.NewServeMux(),
		log:      cfg.Log,
		baseCtx:  baseCtx,
		baseStop: baseStop,
		progress: make(map[string]*jobProgress),
		owned:    make(map[string]bool),
	}
	s.mux.HandleFunc("/v1/assess", s.handleAssess)
	s.mux.HandleFunc("/v1/shard", s.handleShard)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Close stops background job execution (async runners are cancelled; their
// jobs stay pending in the store and resume on the next start).
func (s *Server) Close() {
	s.baseStop()
	s.wg.Wait()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// AssessRequest is the JSON body of POST /v1/assess. The embedded
// cliconf.Assess carries exactly the parameter surface of the cmd/tvla
// flags, validated by the same rules.
type AssessRequest struct {
	cliconf.Assess

	// Source, when non-empty, submits a MiniC program instead of a named
	// kernel. The program's secure-annotated secret global, public input
	// global and output global must be named, and it must define an
	// emit_output function bounding the masked region. Secret and Public
	// are the fixed-population input words.
	Source       string   `json:"source,omitempty"`
	SecretGlobal string   `json:"secret_global,omitempty"`
	PublicGlobal string   `json:"public_global,omitempty"`
	OutputGlobal string   `json:"output_global,omitempty"`
	OutputLen    int      `json:"output_len,omitempty"`
	Secret       []uint32 `json:"secret,omitempty"`
	Public       []uint32 `json:"public,omitempty"`

	// Optimize compiles with the taint-sound optimizing pass pipeline
	// (maskcc -O); part of the program-cache key.
	Optimize bool `json:"optimize,omitempty"`

	// TimeoutMS bounds the request (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// AssessResponse is the JSON verdict of one assessment.
type AssessResponse struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	// Protection echoes the structured countermeasure selector when the
	// assessment used one beyond a bare policy (masking order, shuffling);
	// legacy policy-only responses keep their historical shape.
	Protection *cliconf.Protection `json:"protection,omitempty"`
	// Attack echoes the distinguisher when it differs from first-order TVLA.
	Attack   *cliconf.Attack `json:"attack,omitempty"`
	ISA      string          `json:"isa"`
	Vary     string          `json:"vary"`
	Optimize bool            `json:"optimize"`
	*leakstat.Report
	Seconds  float64 `json:"seconds"`
	CacheHit bool    `json:"cache_hit"`
}

// errorResponse is the JSON error body. Field and Allowed are populated for
// validation failures pinned to one parameter (cliconf.FieldError): the
// client learns which field was rejected and what values it accepts instead
// of parsing prose.
type errorResponse struct {
	Error   string   `json:"error"`
	Field   string   `json:"field,omitempty"`
	Allowed []string `json:"allowed,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is gone; all that's left is to say what was lost
		// (typically the client hung up mid-response).
		s.log.Printf("leakd: writing %d response: %v", status, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	resp := errorResponse{Error: fmt.Sprintf(format, args...)}
	// Surface field-pinned validation failures structurally: any FieldError
	// in the argument list carries the offending field and its allowed
	// values into the body.
	for _, a := range args {
		err, ok := a.(error)
		if !ok {
			continue
		}
		var fe *cliconf.FieldError
		if errors.As(err, &fe) {
			resp.Field, resp.Allowed = fe.Field, fe.Allowed
			break
		}
	}
	s.writeJSON(w, status, resp)
}

// admit gates one unit of execution through the semaphore and its bounded
// wait queue, returning a release function on success, or the HTTP status
// (429 or 504) and reason on rejection. A request that finds a free slot is
// admitted on the fast path without touching the queue accounting — only
// genuinely waiting requests consume MaxQueue capacity, so a burst of
// MaxConcurrent+MaxQueue simultaneous requests is fully admitted.
func (s *Server) admit(ctx context.Context) (release func(), status int, err error) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, 0, nil
	default:
	}
	if depth := s.metrics.queueDepth.Add(1); depth > int64(s.cfg.MaxQueue) {
		s.metrics.queueDepth.Add(-1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("queue full (%d waiting)", depth-1)
	}
	defer s.metrics.queueDepth.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return release, 0, nil
	case <-ctx.Done():
		return nil, http.StatusGatewayTimeout, fmt.Errorf("request expired while queued: %w", ctx.Err())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, hits, misses, s.cache.len())
}

// resolve validates the request onto the shared cliconf surface. A submitted
// source program reuses the common validation with the workload name pinned;
// its own fields are checked here.
func (s *Server) resolve(req *AssessRequest) (*cliconf.ResolvedAssess, error) {
	a := req.Assess
	if req.Source != "" {
		if a.Kernel != "" && a.Kernel != "custom" {
			return nil, errors.New("source and kernel are mutually exclusive (use at most kernel \"custom\")")
		}
		if a.Vary == "plaintext" {
			return nil, errors.New("vary plaintext is DES-only; source programs always vary the secret")
		}
		if req.SecretGlobal == "" || req.PublicGlobal == "" || req.OutputGlobal == "" || req.OutputLen <= 0 {
			return nil, errors.New("source programs need secret_global, public_global, output_global and output_len")
		}
		if len(req.Secret) == 0 {
			return nil, errors.New("source programs need a fixed secret input array")
		}
		a.Kernel, a.Vary = "des", "key" // placeholders for the shared rules
	}
	r, err := a.Validate()
	if err != nil {
		return nil, err
	}
	if r.StatV != "tvla" {
		return nil, fmt.Errorf("attack.stat %q is not assessable over HTTP — leakd runs the tvla statistic; key-recovery attacks (cpa, dom) run offline via cmd/dpa-attack", r.StatV)
	}
	if s.cfg.MaxTraces > 0 && r.Traces > s.cfg.MaxTraces {
		return nil, fmt.Errorf("traces %d exceeds the server limit %d", r.Traces, s.cfg.MaxTraces)
	}
	if r.Workers == 0 {
		r.Workers = s.cfg.Workers
	}
	return r, nil
}

// workload is a ready-to-assess population: a trace source and its window.
type workload struct {
	name string
	src  leakstat.Source
	win  trace.Window
}

// cacheKeyFor derives the program-cache key: built-in workloads are keyed by
// name, submitted source by its SHA-256 (plus the globals that shape the
// job), and both by (policy, optimize).
func cacheKeyFor(req *AssessRequest, r *cliconf.ResolvedAssess) cacheKey {
	src := "workload:" + r.Kernel
	if req.Source != "" {
		h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%s\x00%s\x00%d",
			req.Source, req.SecretGlobal, req.PublicGlobal, req.OutputGlobal, req.OutputLen)))
		src = fmt.Sprintf("sha256:%x", h)
	}
	return cacheKey{Source: src, Policy: r.PolicyV.String(), ISA: r.TargetV.Name(),
		Optimize: req.Optimize, Shuffle: r.ShuffleV}
}

// buildWorkload compiles (or fetches from cache) the program and locates the
// assessment window. The compile stage is only timed on a miss; the window
// probe run is timed per request. The context is threaded through every
// expensive stage — cache waits, compiles, and the window-probe simulations
// — so a request whose deadline has expired stops burning its worker slot
// at the next stage boundary instead of completing a build nobody will
// read; the caller maps the context error to 504.
func (s *Server) buildWorkload(ctx context.Context, req *AssessRequest, r *cliconf.ResolvedAssess) (*workload, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	opt := r.CompilerOptions()
	opt.Optimize = req.Optimize
	key := cacheKeyFor(req, r)

	switch {
	case req.Source != "":
		k := kernels.Kernel{
			Name:         "custom",
			Source:       req.Source,
			SecretGlobal: req.SecretGlobal,
			PublicGlobal: req.PublicGlobal,
			OutputGlobal: req.OutputGlobal,
			OutputLen:    req.OutputLen,
		}
		m, hit, err := s.cachedKernelMachine(ctx, key, k, opt)
		if err != nil {
			return nil, hit, err
		}
		return s.kernelWorkload(ctx, "custom", m, req.Secret, req.Public, 0xffffffff, r, hit)
	case r.Kernel == "des":
		v, hit, err := s.cache.getOrBuild(ctx, key, func() (any, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			m, err := desprog.NewFull(opt, energy.DefaultConfig())
			if err == nil {
				s.metrics.observeStage("compile", time.Since(start).Seconds())
			}
			return m, err
		})
		if err != nil {
			return nil, hit, err
		}
		m := v.(*desprog.Machine)
		var (
			src  leakstat.Source
			win  trace.Window
			err2 error
		)
		winStart := time.Now()
		if r.Vary == "plaintext" {
			src = leakstat.DESPlaintextSource(m, r.KeyV, r.PlaintextV, r.Seed, r.MaxCycles)
			win, err2 = leakstat.DESRound1WindowContext(ctx, m, r.KeyV, r.PlaintextV, r.MaxCycles)
		} else {
			src = leakstat.DESKeySource(m, r.KeyV, r.PlaintextV, r.Seed, r.MaxCycles)
			win, err2 = leakstat.DESMaskedWindowContext(ctx, m, r.KeyV, r.PlaintextV, r.MaxCycles)
		}
		if err2 != nil {
			return nil, hit, err2
		}
		s.metrics.observeStage("window", time.Since(winStart).Seconds())
		return &workload{name: "des", src: src, win: win}, hit, nil
	default:
		k, _ := kernels.ByName(r.Kernel)
		m, hit, err := s.cachedKernelMachine(ctx, key, k, opt)
		if err != nil {
			return nil, hit, err
		}
		secret, public, mask := kernels.TVLAInputs(k)
		return s.kernelWorkload(ctx, r.Kernel, m, secret, public, mask, r, hit)
	}
}

// cachedKernelMachine fetches or builds a kernels.Machine under the cache.
func (s *Server) cachedKernelMachine(ctx context.Context, key cacheKey, k kernels.Kernel, opt compiler.Options) (*kernels.Machine, bool, error) {
	v, hit, err := s.cache.getOrBuild(ctx, key, func() (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		m, err := kernels.Build(k, opt, energy.DefaultConfig())
		if err == nil {
			s.metrics.observeStage("compile", time.Since(start).Seconds())
		}
		return m, err
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*kernels.Machine), hit, nil
}

// kernelWorkload assembles the fixed-vs-random-secret population of a kernel
// machine and its masked window.
func (s *Server) kernelWorkload(ctx context.Context, name string, m *kernels.Machine, secret, public []uint32, mask uint32, r *cliconf.ResolvedAssess, hit bool) (*workload, bool, error) {
	winStart := time.Now()
	win, err := leakstat.KernelMaskedWindowContext(ctx, m, secret, public)
	if err != nil {
		return nil, hit, err
	}
	if r.MaxCycles > 0 {
		win = win.Clamp(int(r.MaxCycles))
		if win.Len() <= 0 {
			return nil, hit, fmt.Errorf("masked window outside the %d-cycle budget", r.MaxCycles)
		}
	}
	s.metrics.observeStage("window", time.Since(winStart).Seconds())
	src := leakstat.KernelSecretSource(m, secret, public, mask, r.Seed, r.MaxCycles)
	return &workload{name: name, src: src, win: win}, hit, nil
}

// ctxErr reports whether err is (or wraps) a context cancellation — the
// cases the HTTP surface maps to 504 rather than 422.
func ctxErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// requestTimeout returns the effective deadline of a request.
func (s *Server) requestTimeout(req *AssessRequest) time.Duration {
	if req.TimeoutMS > 0 {
		return time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// handleAssess runs one assessment request end to end: durability (when a
// store is configured, the job is persisted before admission and a replay of
// a completed job returns its stored verdict), admission, program build
// (through the cache), windowed TVLA sweep, verdict.
func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AssessRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.jobDone("rejected")
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resolved, err := s.resolve(&req)
	if err != nil {
		s.metrics.jobDone("rejected")
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(&req))
	defer cancel()

	// Durability: the job record reaches disk before admission, so an
	// accepted request survives any crash from here on, and an identical
	// resubmission of a completed job replays the stored verdict instead of
	// executing (exactly-once verdicts).
	var jobID string
	if s.cfg.Store != nil {
		rec, err := s.persistJob(&req, resolved)
		if err != nil {
			s.metrics.jobDone("failed")
			s.writeError(w, http.StatusInternalServerError, "persisting job: %v", err)
			return
		}
		if rec.State == jobstore.StateDone {
			s.metrics.jobDone("completed")
			s.writeRawJSON(w, http.StatusOK, rec.Verdict)
			return
		}
		jobID = rec.ID
	}

	release, status, aerr := s.admit(ctx)
	if aerr != nil {
		if status == http.StatusTooManyRequests {
			s.metrics.jobDone("rejected")
		} else {
			s.metrics.jobDone("timeout")
		}
		s.writeError(w, status, "%v", aerr)
		return
	}
	defer release()

	s.metrics.running.Add(1)
	defer s.metrics.running.Add(-1)

	resp, err := s.execute(ctx, &req, resolved, jobID)
	if err != nil {
		s.finishJobError(w, jobID, err)
		return
	}
	s.completeJob(jobID, resp)
	s.metrics.jobDone("completed")
	s.writeJSON(w, http.StatusOK, resp)
}

// execute runs the build + sweep of one admitted assessment. jobID, when
// non-empty, names the durable job whose shard accumulators are persisted as
// they complete; with shard workers configured the sweep fans out over HTTP.
// Context errors come back unwrapped so callers can map them to 504.
func (s *Server) execute(ctx context.Context, req *AssessRequest, resolved *cliconf.ResolvedAssess, jobID string) (*AssessResponse, error) {
	if jobID != "" {
		if err := s.cfg.Store.SetRunning(jobID); err != nil {
			s.log.Printf("leakd: marking job %s running: %v", jobID, err)
		}
	}
	start := time.Now()
	wl, hit, err := s.buildWorkload(ctx, req, resolved)
	if err != nil {
		if ctxErr(err) {
			return nil, err
		}
		return nil, fmt.Errorf("build failed: %w", err)
	}

	cfg := resolved.Config()
	cfg.Window = wl.win
	assessStart := time.Now()
	var rep *leakstat.Report
	if jobID != "" || len(s.cfg.ShardWorkers) > 0 {
		rep, err = s.assessSharded(ctx, jobID, req, wl, cfg)
	} else {
		rep, err = leakstat.AssessContext(ctx, wl.src, cfg)
	}
	if err != nil {
		if ctxErr(err) {
			return nil, err
		}
		return nil, fmt.Errorf("assessment failed: %w", err)
	}
	s.metrics.observeStage("assess", time.Since(assessStart).Seconds())
	s.metrics.cyclesSimulated.Add(rep.CyclesSimulated)

	vary := resolved.Vary
	if wl.name != "des" {
		vary = "secret"
	}
	resp := &AssessResponse{
		Workload: wl.name,
		Policy:   resolved.PolicyV.String(),
		ISA:      resolved.TargetV.Name(),
		Vary:     vary,
		Optimize: req.Optimize,
		Report:   rep,
		Seconds:  time.Since(start).Seconds(),
		CacheHit: hit,
	}
	// Echo the structured selectors when they say more than the flat fields:
	// legacy policy-only requests keep their historical response shape.
	if resolved.ShuffleV || resolved.MaskOrderV > 0 {
		resp.Protection = &cliconf.Protection{
			Policy:    resolved.PolicyV.String(),
			MaskOrder: resolved.MaskOrderV,
			Shuffle:   resolved.ShuffleV,
		}
	}
	if resolved.OrderV > 1 {
		resp.Attack = &cliconf.Attack{Stat: resolved.StatV, Order: resolved.OrderV}
	}
	return resp, nil
}

// finishJobError maps an execute error onto the HTTP surface and the job
// store: context expiry leaves a durable job pending (a restart resumes its
// remaining shards) and returns 504; anything else fails the job and
// returns 422.
func (s *Server) finishJobError(w http.ResponseWriter, jobID string, err error) {
	if ctxErr(err) {
		if jobID != "" {
			if rerr := s.cfg.Store.Requeue(jobID); rerr != nil {
				s.log.Printf("leakd: requeueing job %s: %v", jobID, rerr)
			}
		}
		s.metrics.jobDone("timeout")
		s.writeError(w, http.StatusGatewayTimeout, "assessment cancelled: %v", err)
		return
	}
	if jobID != "" {
		if ferr := s.cfg.Store.Fail(jobID, err.Error()); ferr != nil {
			s.log.Printf("leakd: failing job %s: %v", jobID, ferr)
		}
	}
	s.metrics.jobDone("failed")
	s.writeError(w, http.StatusUnprocessableEntity, "%v", err)
}
