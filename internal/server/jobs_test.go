package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"desmask/internal/jobstore"
	"desmask/internal/leakstat"
)

// TestAdmitFastPathAndQueueAccounting: a request that finds a free execution
// slot must not consume wait-queue capacity — a burst of exactly
// MaxConcurrent+MaxQueue concurrent requests is fully admitted, and only the
// next one is shed with 429.
func TestAdmitFastPathAndQueueAccounting(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, MaxQueue: 2})
	ctx := context.Background()

	// Fill both execution slots on the fast path.
	var slots []func()
	for i := 0; i < 2; i++ {
		rel, status, err := s.admit(ctx)
		if err != nil {
			t.Fatalf("fast-path admit %d: status %d: %v", i, status, err)
		}
		slots = append(slots, rel)
	}
	if d := s.metrics.queueDepth.Load(); d != 0 {
		t.Fatalf("fast-path acquisitions consumed queue capacity: depth %d", d)
	}

	// Two more requests wait in the (now exactly full) queue.
	admitted := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel, status, err := s.admit(ctx)
			if err != nil {
				t.Errorf("queued admit: status %d: %v", status, err)
				return
			}
			admitted <- rel
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.queueDepth.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 2", s.metrics.queueDepth.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Request MaxConcurrent+MaxQueue+1 is the first one shed.
	if _, status, err := s.admit(ctx); err == nil || status != http.StatusTooManyRequests {
		t.Fatalf("overflow admit: status %d err %v, want 429", status, err)
	}

	// Freed slots drain the queue in turn.
	slots[0]()
	slots[1]()
	rel := <-admitted
	rel()
	rel = <-admitted
	rel()

	// A queued request whose deadline expires is released with 504.
	r1, _, err := s.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := s.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	expCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, status, err := s.admit(expCtx); err == nil || status != http.StatusGatewayTimeout {
		t.Fatalf("expired admit: status %d err %v, want 504", status, err)
	}
	if d := s.metrics.queueDepth.Load(); d != 0 {
		t.Fatalf("expired waiter leaked queue depth %d", d)
	}
	r1()
	r2()
}

// TestCacheInFlightNotEvicted: under a size-1 cache, inserting a second key
// while the first is still building must not evict the in-flight entry — a
// concurrent identical submission joins the running build instead of
// silently compiling a duplicate.
func TestCacheInFlightNotEvicted(t *testing.T) {
	c := newProgramCache(1)
	k1 := cacheKey{Source: "workload:one"}
	k2 := cacheKey{Source: "workload:two"}

	started := make(chan struct{})
	release := make(chan struct{})
	var builds atomic.Int32
	first := make(chan any, 1)
	go func() {
		v, _, err := c.getOrBuild(context.Background(), k1, func() (any, error) {
			builds.Add(1)
			close(started)
			<-release
			return "v1", nil
		})
		if err != nil {
			first <- err
		} else {
			first <- v
		}
	}()
	<-started

	// The insert that used to evict the in-flight entry.
	if v, _, err := c.getOrBuild(context.Background(), k2, func() (any, error) { return "v2", nil }); err != nil || v != "v2" {
		t.Fatalf("second key: %v %v", v, err)
	}

	// A concurrent identical submission must block on the running build
	// (and would instead return "dup" immediately if k1 had been evicted).
	joined := make(chan any, 1)
	go func() {
		v, _, err := c.getOrBuild(context.Background(), k1, func() (any, error) {
			builds.Add(1)
			return "dup", nil
		})
		if err != nil {
			joined <- err
		} else {
			joined <- v
		}
	}()
	select {
	case v := <-joined:
		t.Fatalf("identical submission did not join the in-flight build: got %v", v)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if v := <-first; v != "v1" {
		t.Fatalf("owner got %v", v)
	}
	if v := <-joined; v != "v1" {
		t.Fatalf("joiner got %v", v)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("key built %d times, want 1", n)
	}

	// A waiter whose context dies mid-build gets the context error while
	// the build itself carries on for later requests.
	k3 := cacheKey{Source: "workload:three"}
	started3 := make(chan struct{})
	release3 := make(chan struct{})
	go func() {
		c.getOrBuild(context.Background(), k3, func() (any, error) {
			close(started3)
			<-release3
			return "v3", nil
		})
	}()
	<-started3
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.getOrBuild(dead, k3, func() (any, error) { return nil, nil }); err != context.Canceled {
		t.Fatalf("dead waiter returned %v, want context.Canceled", err)
	}
	close(release3)
}

// TestAssessDeadlineMidBuild: a request whose deadline expires during the
// (cold-cache) program build returns 504 — not 422 — and frees its
// execution slot for the next request.
func TestAssessDeadlineMidBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	req := smallDES(16)
	req.TimeoutMS = 1 // expires long before the DES build can finish
	code, _, body := postAssess(t, ts.URL, req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("mid-build expiry: status %d, want 504: %s", code, body)
	}
	code, rep, body := postAssess(t, ts.URL, smallDES(16))
	if code != http.StatusOK {
		t.Fatalf("slot not freed after mid-build expiry: status %d: %s", code, body)
	}
	if !rep.Leak {
		t.Fatal("unprotected DES did not leak")
	}
}

// TestDurableResumeBitIdentical is the durability acceptance matrix: a job
// killed mid-assessment (only a few shard accumulators reached disk) and
// resumed by a fresh daemon — fanning the remaining shards across peer
// worker processes — must land the exact verdict of an uninterrupted
// single-node run, with the merged t-vector bit-identical, for sim workers
// 1/4 × shard workers 1/4. A replay of the completed job returns the stored
// verdict without executing.
func TestDurableResumeBitIdentical(t *testing.T) {
	for _, simW := range []int{1, 4} {
		for _, shardW := range []int{1, 4} {
			t.Run(fmt.Sprintf("sim%d_shard%d", simW, shardW), func(t *testing.T) {
				req := smallDES(32)
				req.Workers = simW
				req.Shards = 8

				// Uninterrupted single-node reference, full t-vector.
				refS := New(Config{})
				resolved, err := refS.resolve(&req)
				if err != nil {
					t.Fatal(err)
				}
				wl, _, err := refS.buildWorkload(context.Background(), &req, resolved)
				if err != nil {
					t.Fatal(err)
				}
				cfg := resolved.Config()
				cfg.Window = wl.win
				ref, err := leakstat.Assess(wl.src, cfg)
				if err != nil {
					t.Fatal(err)
				}

				// "Crash": the first run persisted shards 0, 2 and 5, then
				// died before admitting anything else to disk.
				dir := t.TempDir()
				st, err := jobstore.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				canon, err := canonicalRequest(&req)
				if err != nil {
					t.Fatal(err)
				}
				id := jobstore.JobID(canon)
				if _, _, err := st.Create(id, canon, 8); err != nil {
					t.Fatal(err)
				}
				if err := st.SetRunning(id); err != nil {
					t.Fatal(err)
				}
				for _, sh := range []int{0, 2, 5} {
					acc, err := leakstat.AssessShard(context.Background(), wl.src, cfg, sh)
					if err != nil {
						t.Fatal(err)
					}
					if err := st.PutShard(id, acc); err != nil {
						t.Fatal(err)
					}
				}

				// Restart: a fresh daemon over the same store, with shardW
				// peer leakd workers, resumes the job synchronously.
				var peers []string
				for i := 0; i < shardW; i++ {
					_, wts := newTestServer(t, Config{})
					peers = append(peers, wts.URL)
				}
				st2, err := jobstore.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				_, ts := newTestServer(t, Config{Store: st2, ShardWorkers: peers})
				code, rep, body := postAssess(t, ts.URL, req)
				if code != http.StatusOK {
					t.Fatalf("resumed assessment: status %d: %s", code, body)
				}
				if math.Float64bits(rep.MaxAbsT) != math.Float64bits(ref.MaxAbsT) ||
					rep.MaxTCycle != ref.MaxTCycle || rep.Leak != ref.Leak ||
					rep.CyclesSimulated != ref.CyclesSimulated {
					t.Fatalf("resumed verdict diverged from single-node:\nresumed %+v\nref     %+v", rep.Report, ref)
				}

				// Every shard is now on disk; folding the persisted
				// accumulators reproduces the reference t-vector bit for bit.
				stored, err := st2.Shards(id)
				if err != nil {
					t.Fatal(err)
				}
				parts := make([]*leakstat.ShardAccum, 8)
				for i := range parts {
					if parts[i] = stored[i]; parts[i] == nil {
						t.Fatalf("shard %d not persisted after resume", i)
					}
				}
				fold, err := leakstat.FoldReport(cfg, parts)
				if err != nil {
					t.Fatal(err)
				}
				for j := range ref.T {
					if math.Float64bits(fold.T[j]) != math.Float64bits(ref.T[j]) {
						t.Fatalf("t[%d] differs after crash-resume: %x vs %x",
							j, math.Float64bits(fold.T[j]), math.Float64bits(ref.T[j]))
					}
				}

				// Exactly-once: the job is done, and a resubmission replays
				// the stored verdict.
				rec, err := st2.Get(id)
				if err != nil || rec.State != jobstore.StateDone {
					t.Fatalf("record after resume: %+v err=%v", rec, err)
				}
				code, rep2, body := postAssess(t, ts.URL, req)
				if code != http.StatusOK {
					t.Fatalf("replay: status %d: %s", code, body)
				}
				if math.Float64bits(rep2.MaxAbsT) != math.Float64bits(rep.MaxAbsT) ||
					rep2.CyclesSimulated != rep.CyclesSimulated {
					t.Fatalf("replayed verdict diverged: %+v vs %+v", rep2.Report, rep.Report)
				}
			})
		}
	}
}

// TestJobsAsyncAndStream: the async job API — submit returns 202 with the
// pending record, the SSE stream delivers per-shard progress frames, the
// record converges to done with a verdict, and a resubmission returns the
// terminal record.
func TestJobsAsyncAndStream(t *testing.T) {
	st, err := jobstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Store: st})
	req := smallDES(32)
	req.Shards = 8
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobstore.Record
	err = json.NewDecoder(resp.Body).Decode(&rec)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || rec.ID == "" {
		t.Fatalf("submit: status %d rec %+v err %v", resp.StatusCode, rec, err)
	}

	// Stream progress while the job runs. If the job already finished, the
	// stream degrades to a single terminal snapshot frame — still final.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var frames []progressEvent
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev progressEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad frame %q: %v", line, err)
		}
		frames = append(frames, ev)
	}
	if len(frames) == 0 {
		t.Fatal("stream delivered no frames")
	}
	prevDone := -1
	for _, ev := range frames {
		if ev.Total != 8 {
			t.Fatalf("frame total %d, want 8: %+v", ev.Total, ev)
		}
		if ev.Done < prevDone {
			t.Fatalf("progress went backwards: %+v", frames)
		}
		prevDone = ev.Done
	}

	// The record converges to done with a leak verdict.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == jobstore.StateDone {
			break
		}
		if rec.State == jobstore.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", rec)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var verdict AssessResponse
	if err := json.Unmarshal(rec.Verdict, &verdict); err != nil || !verdict.Leak {
		t.Fatalf("verdict %s: err %v", rec.Verdict, err)
	}

	// Resubmission of the completed job returns the terminal record.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var replay jobstore.Record
	err = json.NewDecoder(resp.Body).Decode(&replay)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || replay.State != jobstore.StateDone {
		t.Fatalf("replay: status %d rec %+v err %v", resp.StatusCode, replay, err)
	}

	// The listing includes the job; unknown ids are 404.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []*jobstore.Record `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil || len(listing.Jobs) != 1 || listing.Jobs[0].ID != rec.ID {
		t.Fatalf("listing: %+v err %v", listing, err)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
	s.Close()
}

// TestRecoverResumesIncompleteJobs: a daemon restarted over a store holding
// an incomplete job re-runs it to the same verdict without a new submission
// — the crash/restart contract exercised end to end in-process.
func TestRecoverResumesIncompleteJobs(t *testing.T) {
	req := smallDES(32)
	req.Shards = 8
	canon, err := canonicalRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	id := jobstore.JobID(canon)

	dir := t.TempDir()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Create(id, canon, 8); err != nil {
		t.Fatal(err)
	}
	if err := st.SetRunning(id); err != nil {
		t.Fatal(err)
	}

	st2, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st2})
	n, err := s.Recover()
	if err != nil || n != 1 {
		t.Fatalf("Recover resumed %d jobs, err %v", n, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		rec, err := st2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == jobstore.StateDone {
			var verdict AssessResponse
			if err := json.Unmarshal(rec.Verdict, &verdict); err != nil || !verdict.Leak {
				t.Fatalf("recovered verdict %s: err %v", rec.Verdict, err)
			}
			break
		}
		if rec.State == jobstore.StateFailed || time.Now().After(deadline) {
			t.Fatalf("recovered job did not complete: %+v", rec)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.Close()
}
