package leakstat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary accumulator serialization. Welford state is pure float64
// bookkeeping, so the wire format carries the exact IEEE-754 bit patterns
// (math.Float64bits, little endian): a Vec that round-trips through
// MarshalBinary/UnmarshalBinary is indistinguishable from the original in
// every subsequent Merge, which is what lets a shard computed on a remote
// worker fold into the coordinator's reduction bit-identically to one
// computed in-process. A CRC-32 trailer makes torn or corrupted files and
// payloads detectable, so a durable job store can treat a bad shard file as
// "not computed yet" instead of folding garbage into a verdict.

// shardAccumMagic identifies (and versions) the ShardAccum wire format;
// shardAccumMagic2 marks shard accumulators whose vectors carry third/fourth
// moments (second-order assessments). First-order accumulators keep the
// original magic and byte layout, so every stored LSA1 fact replays
// unchanged.
const (
	shardAccumMagic  = "LSA1"
	shardAccumMagic2 = "LSA2"
)

// vecMomentsFlag is set on the length word of a serialized Vec that carries
// M3/M4 arrays. Sample counts are far below 2^63, so the bit is free; a
// first-order Vec encodes with the flag clear, bit-identical to the
// historical format.
const vecMomentsFlag = uint64(1) << 63

// MarshalBinary encodes the accumulator as (n, len, Mean bits…, M2 bits…),
// with M3/M4 bits appended (and the length word flagged) for
// moment-tracking accumulators.
func (v *Vec) MarshalBinary() ([]byte, error) {
	return v.appendBinary(make([]byte, 0, 16+8*len(v.Mean)*2*v.Order())), nil
}

func (v *Vec) appendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, v.n)
	ln := uint64(len(v.Mean))
	if v.M3 != nil {
		ln |= vecMomentsFlag
	}
	b = binary.LittleEndian.AppendUint64(b, ln)
	for _, arr := range [][]float64{v.Mean, v.M2, v.M3, v.M4} {
		for _, x := range arr {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
		}
	}
	return b
}

// UnmarshalBinary decodes a MarshalBinary encoding, replacing v's state.
func (v *Vec) UnmarshalBinary(data []byte) error {
	rest, err := v.consumeBinary(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("leakstat: %d trailing bytes after accumulator", len(rest))
	}
	return nil
}

func (v *Vec) consumeBinary(b []byte) ([]byte, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("leakstat: accumulator header truncated (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint64(b)
	ln := binary.LittleEndian.Uint64(b[8:])
	moments := ln&vecMomentsFlag != 0
	ln &^= vecMomentsFlag
	b = b[16:]
	arrays := 2
	if moments {
		arrays = 4
	}
	if ln > uint64(len(b)/(8*arrays)) {
		return nil, fmt.Errorf("leakstat: accumulator of %d samples truncated (%d payload bytes)", ln, len(b))
	}
	v.n = n
	v.inv = 0
	if n > 0 {
		v.inv = 1 / float64(n)
	}
	v.Mean = make([]float64, ln)
	v.M2 = make([]float64, ln)
	v.M3, v.M4 = nil, nil
	if moments {
		v.M3 = make([]float64, ln)
		v.M4 = make([]float64, ln)
	}
	for _, arr := range [][]float64{v.Mean, v.M2, v.M3, v.M4} {
		for j := range arr {
			arr[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
		}
		b = b[8*len(arr):]
	}
	return b, nil
}

// MarshalBinary encodes the shard accumulator pair with a magic/version
// header and a CRC-32 trailer.
func (a *ShardAccum) MarshalBinary() ([]byte, error) {
	if a.Fixed == nil || a.Random == nil {
		return nil, fmt.Errorf("leakstat: shard %d accumulator incomplete", a.Shard)
	}
	magic := shardAccumMagic
	if a.Fixed.Order() >= 2 {
		magic = shardAccumMagic2
	}
	b := make([]byte, 0, 4+8+8+32+8*(a.Fixed.Len()+a.Random.Len())*2*a.Fixed.Order())
	b = append(b, magic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Shard))
	b = binary.LittleEndian.AppendUint64(b, a.Cycles)
	b = a.Fixed.appendBinary(b)
	b = a.Random.appendBinary(b)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// UnmarshalBinary decodes and checksum-verifies a MarshalBinary encoding.
func (a *ShardAccum) UnmarshalBinary(data []byte) error {
	if len(data) < 4+8+8+4 {
		return fmt.Errorf("leakstat: shard accumulator truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("leakstat: shard accumulator checksum mismatch (%08x != %08x)", got, want)
	}
	if m := string(body[:4]); m != shardAccumMagic && m != shardAccumMagic2 {
		return fmt.Errorf("leakstat: bad shard accumulator magic %q", body[:4])
	}
	a.Shard = int(binary.LittleEndian.Uint64(body[4:]))
	a.Cycles = binary.LittleEndian.Uint64(body[12:])
	a.Fixed, a.Random = new(Vec), new(Vec)
	rest, err := a.Fixed.consumeBinary(body[20:])
	if err != nil {
		return err
	}
	rest, err = a.Random.consumeBinary(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("leakstat: %d trailing bytes after shard accumulator", len(rest))
	}
	if wantOrder2 := string(body[:4]) == shardAccumMagic2; (a.Fixed.Order() >= 2) != wantOrder2 || (a.Random.Order() >= 2) != wantOrder2 {
		return fmt.Errorf("leakstat: shard accumulator magic %q disagrees with vector orders %d/%d",
			body[:4], a.Fixed.Order(), a.Random.Order())
	}
	return nil
}
