package leakstat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary accumulator serialization. Welford state is pure float64
// bookkeeping, so the wire format carries the exact IEEE-754 bit patterns
// (math.Float64bits, little endian): a Vec that round-trips through
// MarshalBinary/UnmarshalBinary is indistinguishable from the original in
// every subsequent Merge, which is what lets a shard computed on a remote
// worker fold into the coordinator's reduction bit-identically to one
// computed in-process. A CRC-32 trailer makes torn or corrupted files and
// payloads detectable, so a durable job store can treat a bad shard file as
// "not computed yet" instead of folding garbage into a verdict.

// shardAccumMagic identifies (and versions) the ShardAccum wire format.
const shardAccumMagic = "LSA1"

// MarshalBinary encodes the accumulator as (n, len, Mean bits…, M2 bits…).
func (v *Vec) MarshalBinary() ([]byte, error) {
	return v.appendBinary(make([]byte, 0, 16+16*len(v.Mean))), nil
}

func (v *Vec) appendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, v.n)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(v.Mean)))
	for _, x := range v.Mean {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	for _, x := range v.M2 {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// UnmarshalBinary decodes a MarshalBinary encoding, replacing v's state.
func (v *Vec) UnmarshalBinary(data []byte) error {
	rest, err := v.consumeBinary(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("leakstat: %d trailing bytes after accumulator", len(rest))
	}
	return nil
}

func (v *Vec) consumeBinary(b []byte) ([]byte, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("leakstat: accumulator header truncated (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint64(b)
	ln := binary.LittleEndian.Uint64(b[8:])
	b = b[16:]
	if ln > uint64(len(b)/16) {
		return nil, fmt.Errorf("leakstat: accumulator of %d samples truncated (%d payload bytes)", ln, len(b))
	}
	v.n = n
	v.inv = 0
	if n > 0 {
		v.inv = 1 / float64(n)
	}
	v.Mean = make([]float64, ln)
	v.M2 = make([]float64, ln)
	for j := range v.Mean {
		v.Mean[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
	}
	b = b[8*int(ln):]
	for j := range v.M2 {
		v.M2[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
	}
	return b[8*int(ln):], nil
}

// MarshalBinary encodes the shard accumulator pair with a magic/version
// header and a CRC-32 trailer.
func (a *ShardAccum) MarshalBinary() ([]byte, error) {
	if a.Fixed == nil || a.Random == nil {
		return nil, fmt.Errorf("leakstat: shard %d accumulator incomplete", a.Shard)
	}
	b := make([]byte, 0, 4+8+8+32+16*(a.Fixed.Len()+a.Random.Len()))
	b = append(b, shardAccumMagic...)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Shard))
	b = binary.LittleEndian.AppendUint64(b, a.Cycles)
	b = a.Fixed.appendBinary(b)
	b = a.Random.appendBinary(b)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// UnmarshalBinary decodes and checksum-verifies a MarshalBinary encoding.
func (a *ShardAccum) UnmarshalBinary(data []byte) error {
	if len(data) < 4+8+8+4 {
		return fmt.Errorf("leakstat: shard accumulator truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return fmt.Errorf("leakstat: shard accumulator checksum mismatch (%08x != %08x)", got, want)
	}
	if string(body[:4]) != shardAccumMagic {
		return fmt.Errorf("leakstat: bad shard accumulator magic %q", body[:4])
	}
	a.Shard = int(binary.LittleEndian.Uint64(body[4:]))
	a.Cycles = binary.LittleEndian.Uint64(body[12:])
	a.Fixed, a.Random = new(Vec), new(Vec)
	rest, err := a.Fixed.consumeBinary(body[20:])
	if err != nil {
		return err
	}
	rest, err = a.Random.consumeBinary(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("leakstat: %d trailing bytes after shard accumulator", len(rest))
	}
	return nil
}
