package leakstat

// Scalar-vs-gang assessment throughput on the fixed-vs-random DES workload —
// the measurement behind BENCH_gang.json (cmd/simbench -gang). Run with
//
//	go test -bench Assess -benchtime 3x ./internal/leakstat
//
// and compare ns/op between the Scalar and Gang variants.

import (
	"fmt"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
)

func benchAssess(b *testing.B, m *desprog.Machine, traces, gangW int, maxCycles uint64) {
	b.Helper()
	win, err := DESMaskedWindow(m, testKey, testPlain, maxCycles)
	if err != nil {
		b.Fatal(err)
	}
	src := DESKeySource(m, testKey, testPlain, 7, maxCycles)
	cfg := Config{
		NumTraces: traces,
		Seed:      7,
		Shards:    2,
		Workers:   1,
		Gang:      gangW,
		Window:    win,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assess(src, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(traces)*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

func BenchmarkAssessDES(b *testing.B) {
	const (
		traces    = 32
		maxCycles = 12_000
	)
	for _, policy := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure} {
		m, err := desprog.New(policy)
		if err != nil {
			b.Fatal(err)
		}
		for _, gangW := range []int{0, 16} {
			name := "scalar"
			if gangW > 0 {
				name = fmt.Sprintf("gang%d", gangW)
			}
			b.Run(policy.String()+"/"+name, func(b *testing.B) {
				benchAssess(b, m, traces, gangW, maxCycles)
			})
		}
	}
}
