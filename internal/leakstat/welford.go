// Package leakstat is the streaming leakage-assessment engine: a one-pass
// fixed-vs-random Welch t-test (TVLA, as used by modern countermeasure
// evaluations) over per-cycle energy traces, built on numerically stable
// Welford/Chan accumulators that merge across sim.Runner workers. Traces are
// reduced in-flight by a per-job probe reading the session's energy meter,
// so memory stays O(trace length) — never O(number of traces) — and the
// sharded reduction is bit-identical for every worker count.
//
// It is the statistical generalization of package leakcheck: leakcheck
// proves, on one concrete run, that no insecure instruction touched
// secret-derived data; leakstat measures, over thousands to millions of
// runs, that the energy behavior itself carries no statistically detectable
// data dependence.
package leakstat

import (
	"fmt"
	"math"
)

// Acc is a scalar Welford accumulator: running count, mean, and sum of
// squared deviations from the running mean (M2). Adding is numerically
// stable for any magnitude mix; Merge combines two independent
// accumulations with the Chan et al. parallel update.
type Acc struct {
	N    uint64
	Mean float64
	// M2 is the sum of squared deviations from the running mean; the sample
	// variance is M2/(N-1).
	M2 float64
}

// Add folds one observation into the accumulator.
func (a *Acc) Add(x float64) {
	a.N++
	d := x - a.Mean
	a.Mean += d / float64(a.N)
	a.M2 += d * (x - a.Mean)
}

// Merge folds another accumulator into a (Chan et al. pairwise update).
// Merging is exact bookkeeping for counts and stable for moments, but like
// all floating-point reductions its rounding depends on grouping — callers
// that need bit-identical results must fix the merge order (as the
// assessment engine does: shards merge in shard-index order).
func (a *Acc) Merge(b Acc) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	n := a.N + b.N
	d := b.Mean - a.Mean
	fa, fb, fn := float64(a.N), float64(b.N), float64(n)
	a.Mean += d * fb / fn
	a.M2 += b.M2 + d*d*fa*fb/fn
	a.N = n
}

// Variance returns the sample variance (M2/(N-1)), zero below two
// observations.
func (a Acc) Variance() float64 {
	if a.N < 2 {
		return 0
	}
	return a.M2 / float64(a.N-1)
}

// Vec is a vector of per-sample Welford accumulators sharing one
// observation count: each absorbed trace contributes exactly one value to
// every sample position. The shared count lets the hot path hoist the 1/n
// factor to one reciprocal per trace (a multiply per sample instead of a
// divide), which keeps in-flight reduction at trace-recorder cost; the
// update sequence is still fixed, so results are deterministic.
//
// A Vec optionally tracks the third and fourth central-moment sums (M3, M4,
// Pébay one-pass updates) needed by the second-order (centered-second-moment)
// t-test. Moments are opt-in via NewVecOrder: when absent (M3 == nil) every
// update performs exactly the historical first-order arithmetic, so existing
// verdicts and serialized accumulators stay byte-identical.
type Vec struct {
	n   uint64
	inv float64 // 1/n for the trace currently being absorbed
	// Mean[j] is the running mean of sample j; M2[j] its sum of squared
	// deviations from that mean.
	Mean []float64
	M2   []float64
	// M3[j] and M4[j] are the sums of cubed / fourth-power deviations from
	// the running mean (nil unless the accumulator tracks higher moments).
	M3 []float64
	M4 []float64
}

// NewVec returns an empty first-order vector accumulator over traces of n
// samples.
func NewVec(n int) *Vec {
	return &Vec{Mean: make([]float64, n), M2: make([]float64, n)}
}

// NewVecOrder returns an empty vector accumulator for the given statistical
// order: 1 tracks mean/M2 (the historical accumulator), 2 additionally
// tracks M3/M4 for the centered-second-moment test.
func NewVecOrder(n, order int) *Vec {
	v := NewVec(n)
	if order >= 2 {
		v.M3 = make([]float64, n)
		v.M4 = make([]float64, n)
	}
	return v
}

// Order returns the accumulator's statistical order (1 or 2).
func (v *Vec) Order() int {
	if v.M3 != nil {
		return 2
	}
	return 1
}

// Len returns the number of sample positions.
func (v *Vec) Len() int { return len(v.Mean) }

// N returns the number of absorbed traces.
func (v *Vec) N() uint64 { return v.n }

// BeginTrace opens the next trace: every sample position must then receive
// exactly one Set before the following BeginTrace (the streaming probe
// enforces this via its coverage count).
func (v *Vec) BeginTrace() {
	v.n++
	v.inv = 1 / float64(v.n)
}

// Set folds the current trace's value at sample j into the accumulator.
// The first-order path is the historical two-line Welford update, untouched;
// the moment path extends it with Pébay's one-pass M3/M4 updates (which use
// the pre-update M2/M3, so ordering matters).
func (v *Vec) Set(j int, x float64) {
	d := x - v.Mean[j]
	if v.M3 == nil {
		v.Mean[j] += d * v.inv
		v.M2[j] += d * (x - v.Mean[j])
		return
	}
	dn := d * v.inv
	v.Mean[j] += dn
	t1 := d * (x - v.Mean[j]) // = d²(n-1)/n, the M2 increment
	n := float64(v.n)
	v.M4[j] += t1*dn*dn*(n*n-3*n+3) + 6*dn*dn*v.M2[j] - 4*dn*v.M3[j]
	v.M3[j] += t1*dn*(n-2) - 3*dn*v.M2[j]
	v.M2[j] += t1
}

// AddTrace absorbs one whole materialized trace (the batch-analysis path
// used by the dpa attacks; the TVLA engine streams via BeginTrace/Set). It
// performs exactly the BeginTrace + per-sample Set sequence, so gang-lane
// folds stay bit-identical to the streaming probe.
func (v *Vec) AddTrace(seg []float64) {
	if len(seg) != len(v.Mean) {
		panic(fmt.Sprintf("leakstat: trace of %d samples into a %d-sample accumulator", len(seg), len(v.Mean)))
	}
	v.BeginTrace()
	for j, x := range seg {
		v.Set(j, x)
	}
}

// Merge folds o into v sample-by-sample (Chan et al.; the Pébay parallel
// update when moments are tracked). Merge order must be fixed by the caller
// for bit-identical results. Accumulators of different orders don't merge.
func (v *Vec) Merge(o *Vec) error {
	if len(o.Mean) != len(v.Mean) {
		return fmt.Errorf("leakstat: merging accumulators of %d and %d samples", len(v.Mean), len(o.Mean))
	}
	if v.Order() != o.Order() {
		return fmt.Errorf("leakstat: merging order-%d and order-%d accumulators", v.Order(), o.Order())
	}
	if o.n == 0 {
		return nil
	}
	if v.n == 0 {
		v.n = o.n
		copy(v.Mean, o.Mean)
		copy(v.M2, o.M2)
		copy(v.M3, o.M3)
		copy(v.M4, o.M4)
		return nil
	}
	n := v.n + o.n
	fa, fb, fn := float64(v.n), float64(o.n), float64(n)
	for j := range v.Mean {
		d := o.Mean[j] - v.Mean[j]
		if v.M3 != nil {
			// Pébay parallel M4/M3 updates read the pre-merge M2/M3 of both
			// sides, so they come before the mean/M2 lines.
			d2 := d * d
			v.M4[j] += o.M4[j] + d2*d2*fa*fb*(fa*fa-fa*fb+fb*fb)/(fn*fn*fn) +
				6*d2*(fa*fa*o.M2[j]+fb*fb*v.M2[j])/(fn*fn) +
				4*d*(fa*o.M3[j]-fb*v.M3[j])/fn
			v.M3[j] += o.M3[j] + d*d2*fa*fb*(fa-fb)/(fn*fn) +
				3*d*(fa*o.M2[j]-fb*v.M2[j])/fn
		}
		v.Mean[j] += d * fb / fn
		v.M2[j] += o.M2[j] + d*d*fa*fb/fn
	}
	v.n = n
	return nil
}

// VarianceAt returns the sample variance of sample j.
func (v *Vec) VarianceAt(j int) float64 {
	if v.n < 2 {
		return 0
	}
	return v.M2[j] / float64(v.n-1)
}

// StateBytes returns the accumulator's in-memory footprint — the quantity
// that stays constant as traces stream through.
func (v *Vec) StateBytes() int {
	return 8 * (len(v.Mean) + len(v.M2) + len(v.M3) + len(v.M4))
}

// WelchT returns the per-sample Welch t-statistic between two populations:
// t[j] = (mean_f[j] - mean_r[j]) / sqrt(var_f[j]/n_f + var_r[j]/n_r).
// Samples where both populations have zero variance (constant energy — the
// norm across a correctly masked region) carry no evidence either way and
// yield t = 0 when the means agree; a mean difference with zero variance on
// both sides is a perfectly deterministic leak and yields ±Inf. Both
// populations need at least two traces.
func WelchT(f, r *Vec) ([]float64, error) {
	if f.Len() != r.Len() {
		return nil, fmt.Errorf("leakstat: population lengths differ: %d vs %d", f.Len(), r.Len())
	}
	if f.n < 2 || r.n < 2 {
		return nil, fmt.Errorf("leakstat: Welch t-test needs >= 2 traces per population (fixed %d, random %d)", f.n, r.n)
	}
	nf, nr := float64(f.n), float64(r.n)
	out := make([]float64, f.Len())
	for j := range out {
		d := f.Mean[j] - r.Mean[j]
		se2 := f.M2[j]/(nf-1)/nf + r.M2[j]/(nr-1)/nr
		switch {
		case se2 > 0:
			out[j] = d / math.Sqrt(se2)
		case d != 0:
			out[j] = math.Inf(sign(d))
		}
	}
	return out, nil
}

// WelchT2 returns the per-sample second-order t-statistic between two
// populations: the Schneider–Moradi centered-second-moment test, a Welch
// t-test on the preprocessed variable (x - μ)². With CM2 = M2/n (the biased
// central second moment) and CM4 = M4/n, the preprocessed variable has mean
// CM2 and variance CM4 - CM2², all read off the streaming accumulators:
//
//	t2[j] = (CM2_f - CM2_r) / sqrt((CM4_f - CM2_f²)/n_f + (CM4_r - CM2_r²)/n_r)
//
// First-order masking equalizes the means but not the variances of the two
// populations, which is exactly what this statistic detects. Both
// accumulators must track moments (NewVecOrder(n, 2)). Zero-variance
// semantics mirror WelchT: no evidence yields 0, a deterministic
// second-moment difference yields ±Inf.
func WelchT2(f, r *Vec) ([]float64, error) {
	if f.Len() != r.Len() {
		return nil, fmt.Errorf("leakstat: population lengths differ: %d vs %d", f.Len(), r.Len())
	}
	if f.M3 == nil || r.M3 == nil {
		return nil, fmt.Errorf("leakstat: second-order test needs moment-tracking accumulators (NewVecOrder order 2)")
	}
	if f.n < 2 || r.n < 2 {
		return nil, fmt.Errorf("leakstat: second-order t-test needs >= 2 traces per population (fixed %d, random %d)", f.n, r.n)
	}
	nf, nr := float64(f.n), float64(r.n)
	out := make([]float64, f.Len())
	for j := range out {
		cm2f, cm2r := f.M2[j]/nf, r.M2[j]/nr
		s2f := f.M4[j]/nf - cm2f*cm2f
		s2r := r.M4[j]/nr - cm2r*cm2r
		// CM4 >= CM2² always holds in exact arithmetic; rounding can push
		// the difference a hair negative for near-constant samples.
		if s2f < 0 {
			s2f = 0
		}
		if s2r < 0 {
			s2r = 0
		}
		d := cm2f - cm2r
		se2 := s2f/nf + s2r/nr
		switch {
		case se2 > 0:
			out[j] = d / math.Sqrt(se2)
		case d != 0:
			out[j] = math.Inf(sign(d))
		}
	}
	return out, nil
}

func sign(d float64) int {
	if d < 0 {
		return -1
	}
	return 1
}

// clampFinite maps ±Inf (a zero-variance deterministic leak) to
// MaxFloat64 so reports stay JSON-encodable; finite values pass through.
func clampFinite(x float64) float64 {
	if math.IsInf(x, 0) {
		return math.MaxFloat64
	}
	return x
}

// MaxAbs returns the largest |v| and its index (-1 when v is empty).
func MaxAbs(v []float64) (float64, int) {
	peak, at := 0.0, -1
	for j, x := range v {
		if a := math.Abs(x); at < 0 || a > peak {
			peak, at = a, j
		}
	}
	return peak, at
}
