// Package leakstat is the streaming leakage-assessment engine: a one-pass
// fixed-vs-random Welch t-test (TVLA, as used by modern countermeasure
// evaluations) over per-cycle energy traces, built on numerically stable
// Welford/Chan accumulators that merge across sim.Runner workers. Traces are
// reduced in-flight by a per-job probe reading the session's energy meter,
// so memory stays O(trace length) — never O(number of traces) — and the
// sharded reduction is bit-identical for every worker count.
//
// It is the statistical generalization of package leakcheck: leakcheck
// proves, on one concrete run, that no insecure instruction touched
// secret-derived data; leakstat measures, over thousands to millions of
// runs, that the energy behavior itself carries no statistically detectable
// data dependence.
package leakstat

import (
	"fmt"
	"math"
)

// Acc is a scalar Welford accumulator: running count, mean, and sum of
// squared deviations from the running mean (M2). Adding is numerically
// stable for any magnitude mix; Merge combines two independent
// accumulations with the Chan et al. parallel update.
type Acc struct {
	N    uint64
	Mean float64
	// M2 is the sum of squared deviations from the running mean; the sample
	// variance is M2/(N-1).
	M2 float64
}

// Add folds one observation into the accumulator.
func (a *Acc) Add(x float64) {
	a.N++
	d := x - a.Mean
	a.Mean += d / float64(a.N)
	a.M2 += d * (x - a.Mean)
}

// Merge folds another accumulator into a (Chan et al. pairwise update).
// Merging is exact bookkeeping for counts and stable for moments, but like
// all floating-point reductions its rounding depends on grouping — callers
// that need bit-identical results must fix the merge order (as the
// assessment engine does: shards merge in shard-index order).
func (a *Acc) Merge(b Acc) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	n := a.N + b.N
	d := b.Mean - a.Mean
	fa, fb, fn := float64(a.N), float64(b.N), float64(n)
	a.Mean += d * fb / fn
	a.M2 += b.M2 + d*d*fa*fb/fn
	a.N = n
}

// Variance returns the sample variance (M2/(N-1)), zero below two
// observations.
func (a Acc) Variance() float64 {
	if a.N < 2 {
		return 0
	}
	return a.M2 / float64(a.N-1)
}

// Vec is a vector of per-sample Welford accumulators sharing one
// observation count: each absorbed trace contributes exactly one value to
// every sample position. The shared count lets the hot path hoist the 1/n
// factor to one reciprocal per trace (a multiply per sample instead of a
// divide), which keeps in-flight reduction at trace-recorder cost; the
// update sequence is still fixed, so results are deterministic.
type Vec struct {
	n   uint64
	inv float64 // 1/n for the trace currently being absorbed
	// Mean[j] is the running mean of sample j; M2[j] its sum of squared
	// deviations from that mean.
	Mean []float64
	M2   []float64
}

// NewVec returns an empty vector accumulator over traces of n samples.
func NewVec(n int) *Vec {
	return &Vec{Mean: make([]float64, n), M2: make([]float64, n)}
}

// Len returns the number of sample positions.
func (v *Vec) Len() int { return len(v.Mean) }

// N returns the number of absorbed traces.
func (v *Vec) N() uint64 { return v.n }

// BeginTrace opens the next trace: every sample position must then receive
// exactly one Set before the following BeginTrace (the streaming probe
// enforces this via its coverage count).
func (v *Vec) BeginTrace() {
	v.n++
	v.inv = 1 / float64(v.n)
}

// Set folds the current trace's value at sample j into the accumulator.
func (v *Vec) Set(j int, x float64) {
	d := x - v.Mean[j]
	v.Mean[j] += d * v.inv
	v.M2[j] += d * (x - v.Mean[j])
}

// AddTrace absorbs one whole materialized trace (the batch-analysis path
// used by the dpa attacks; the TVLA engine streams via BeginTrace/Set).
func (v *Vec) AddTrace(seg []float64) {
	if len(seg) != len(v.Mean) {
		panic(fmt.Sprintf("leakstat: trace of %d samples into a %d-sample accumulator", len(seg), len(v.Mean)))
	}
	v.BeginTrace()
	for j, x := range seg {
		d := x - v.Mean[j]
		v.Mean[j] += d * v.inv
		v.M2[j] += d * (x - v.Mean[j])
	}
}

// Merge folds o into v sample-by-sample (Chan et al.). Merge order must be
// fixed by the caller for bit-identical results.
func (v *Vec) Merge(o *Vec) error {
	if len(o.Mean) != len(v.Mean) {
		return fmt.Errorf("leakstat: merging accumulators of %d and %d samples", len(v.Mean), len(o.Mean))
	}
	if o.n == 0 {
		return nil
	}
	if v.n == 0 {
		v.n = o.n
		copy(v.Mean, o.Mean)
		copy(v.M2, o.M2)
		return nil
	}
	n := v.n + o.n
	fa, fb, fn := float64(v.n), float64(o.n), float64(n)
	for j := range v.Mean {
		d := o.Mean[j] - v.Mean[j]
		v.Mean[j] += d * fb / fn
		v.M2[j] += o.M2[j] + d*d*fa*fb/fn
	}
	v.n = n
	return nil
}

// VarianceAt returns the sample variance of sample j.
func (v *Vec) VarianceAt(j int) float64 {
	if v.n < 2 {
		return 0
	}
	return v.M2[j] / float64(v.n-1)
}

// StateBytes returns the accumulator's in-memory footprint — the quantity
// that stays constant as traces stream through.
func (v *Vec) StateBytes() int { return 8 * (len(v.Mean) + len(v.M2)) }

// WelchT returns the per-sample Welch t-statistic between two populations:
// t[j] = (mean_f[j] - mean_r[j]) / sqrt(var_f[j]/n_f + var_r[j]/n_r).
// Samples where both populations have zero variance (constant energy — the
// norm across a correctly masked region) carry no evidence either way and
// yield t = 0 when the means agree; a mean difference with zero variance on
// both sides is a perfectly deterministic leak and yields ±Inf. Both
// populations need at least two traces.
func WelchT(f, r *Vec) ([]float64, error) {
	if f.Len() != r.Len() {
		return nil, fmt.Errorf("leakstat: population lengths differ: %d vs %d", f.Len(), r.Len())
	}
	if f.n < 2 || r.n < 2 {
		return nil, fmt.Errorf("leakstat: Welch t-test needs >= 2 traces per population (fixed %d, random %d)", f.n, r.n)
	}
	nf, nr := float64(f.n), float64(r.n)
	out := make([]float64, f.Len())
	for j := range out {
		d := f.Mean[j] - r.Mean[j]
		se2 := f.M2[j]/(nf-1)/nf + r.M2[j]/(nr-1)/nr
		switch {
		case se2 > 0:
			out[j] = d / math.Sqrt(se2)
		case d != 0:
			out[j] = math.Inf(sign(d))
		}
	}
	return out, nil
}

func sign(d float64) int {
	if d < 0 {
		return -1
	}
	return 1
}

// clampFinite maps ±Inf (a zero-variance deterministic leak) to
// MaxFloat64 so reports stay JSON-encodable; finite values pass through.
func clampFinite(x float64) float64 {
	if math.IsInf(x, 0) {
		return math.MaxFloat64
	}
	return x
}

// MaxAbs returns the largest |v| and its index (-1 when v is empty).
func MaxAbs(v []float64) (float64, int) {
	peak, at := 0.0, -1
	for j, x := range v {
		if a := math.Abs(x); at < 0 || a > peak {
			peak, at = a, j
		}
	}
	return peak, at
}
