package leakstat

import (
	"context"
	"fmt"

	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// Defaults for Config zero values.
const (
	// DefaultShards is the fixed partition count of the trace population.
	// The shard count — never the worker count — determines the reduction
	// tree, so it is part of a verdict's identity.
	DefaultShards = 32
	// DefaultThreshold is the conventional TVLA decision threshold on |t|.
	DefaultThreshold = 4.5
)

// Config parameterises one assessment.
type Config struct {
	// NumTraces is the total number of traces across both populations
	// (assignment is a deterministic seeded interleave, roughly half each).
	NumTraces int
	// Seed drives the fixed/random assignment; sources conventionally use
	// the same seed to derive their per-trace random inputs.
	Seed int64
	// Shards is the fixed population partition (0 = DefaultShards). Each
	// shard accumulates its contiguous index range in order and shards
	// merge in index order, so the result is a pure function of
	// (source, Seed, NumTraces, Shards, Window) — worker count and
	// scheduling cannot change a single bit of it.
	Shards int
	// Workers sizes the shard worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Gang > 1 runs each shard's traces through the gang-scheduled lockstep
	// engine in gangs of up to Gang lanes (sim.Options.GangWidth semantics):
	// one shared control computation per cycle, per-lane energy sampling,
	// and transparent scalar replay for any lane that diverges. The shard's
	// accumulator sees the exact same per-trace sample stream in the exact
	// same order either way, so the verdict is bit-identical for any Gang
	// value — the knob only changes throughput. <= 1 keeps the scalar path.
	Gang int
	// Order selects the statistical order of the test: 1 (or 0, the
	// default) is the first-order Welch t-test on the means; 2 is the
	// centered-second-moment test (WelchT2), which detects the
	// variance-domain leakage that first-order boolean masking leaves
	// behind. Order 2 tracks two extra moment vectors per shard — the
	// O(window) memory contract is unchanged, the constant doubles.
	Order int
	// Threshold is the |t| decision threshold (0 = DefaultThreshold).
	Threshold float64
	// Window is the half-open cycle range to assess. Every run must cover
	// it: a run that halts (or exhausts its budget) before Window.End is an
	// error, so truncation can never silently weaken a verdict.
	Window trace.Window
}

// Source supplies the trace population: one simulation session plus a job
// constructor. Job(i, fixed) must return the job of trace i — the fixed
// input when fixed, an input derived deterministically from i otherwise
// (sim.DeriveSeed keeps it independent of scheduling).
type Source struct {
	Runner *sim.Runner
	Job    func(i int, fixed bool) (sim.Job, error)
}

// Report is the outcome of one assessment.
type Report struct {
	NumTraces int `json:"traces"`
	FixedN    int `json:"fixed_n"`
	RandomN   int `json:"random_n"`
	Shards    int `json:"shards"`

	WindowStart int `json:"window_start"`
	WindowEnd   int `json:"window_end"`

	// Order is the statistical order the verdict was computed at.
	Order int `json:"order"`

	Threshold float64 `json:"threshold"`
	// MaxAbsT is the largest |t| over the window (clamped to MaxFloat64 if
	// a zero-variance mean difference produced ±Inf) and MaxTCycle the
	// absolute cycle where it occurred.
	MaxAbsT   float64 `json:"max_abs_t"`
	MaxTCycle int     `json:"max_t_cycle"`
	// Leak reports MaxAbsT > Threshold: the energy behavior is
	// data-dependent at TVLA confidence.
	Leak bool `json:"leak"`

	// StateBytes is the total accumulator footprint the assessment held —
	// O(Shards × window length), independent of NumTraces.
	StateBytes int `json:"state_bytes"`

	// CyclesSimulated is the total simulated cycles the assessment executed
	// across every trace (summed per shard in index order, so it is as
	// deterministic as the verdict itself).
	CyclesSimulated uint64 `json:"cycles_simulated"`

	// T is the per-sample t-statistic (plot/debug use; omitted from JSON).
	T []float64 `json:"-"`
	// Fixed and Random are the final merged population accumulators.
	Fixed  *Vec `json:"-"`
	Random *Vec `json:"-"`
}

// Assignment returns the deterministic fixed/random split for a seed: out[i]
// is true when trace i belongs to the fixed population. It is exposed so
// baselines and tests can reproduce the engine's population split exactly.
func Assignment(seed int64, numTraces int) []bool {
	out := make([]bool, numTraces)
	for i := range out {
		// A different derivation base than the per-trace input seeds, so
		// group membership and input values come from independent streams.
		out[i] = sim.DeriveSeed(^seed, i)&1 == 0
	}
	return out
}

// NumShards returns the normalized shard count of a configuration — the
// partition a coordinator must enumerate when fanning an assessment out as
// per-shard sub-jobs.
func NumShards(cfg Config) int {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > cfg.NumTraces {
		shards = cfg.NumTraces
	}
	return shards
}

// ShardRange returns the half-open trace index range [lo, hi) of shard s in
// the fixed contiguous partition. It is the one place the partition is
// defined; every executor — local, gang, remote worker — covers exactly this
// range for a shard, which is what makes the fold bit-identical no matter
// where shards ran.
func ShardRange(s, shards, numTraces int) (lo, hi int) {
	return s * numTraces / shards, (s + 1) * numTraces / shards
}

// ShardAccum is one shard's complete contribution to an assessment: the
// fixed- and random-population accumulators over the window plus the shard's
// simulated-cycle count. Accumulators are mergeable (Vec.Merge) and
// serializable (MarshalBinary) with exact float64 bits, so a shard computed
// on a remote worker folds into the coordinator's reduction bit-identically
// to one computed in-process.
type ShardAccum struct {
	// Shard is the shard index in [0, NumShards(cfg)).
	Shard int
	// Fixed and Random are the shard's population accumulators.
	Fixed  *Vec
	Random *Vec
	// Cycles is the total simulated cycles the shard's traces executed.
	Cycles uint64
}

// sampleProbe folds each committed cycle's energy inside the window into
// the current target accumulator. It is rebound to the session worker's
// meter via sim.PerRunMeterProbes on every run and reused sequentially
// within a shard — never shared across in-flight jobs.
type sampleProbe struct {
	meter      *energy.Probe
	vec        *Vec
	start, end uint64
	filled     int
}

func (p *sampleProbe) OnCycle(ci cpu.CycleInfo) {
	if ci.Cycle < p.start || ci.Cycle >= p.end {
		return
	}
	p.vec.Set(int(ci.Cycle-p.start), p.meter.LastPJ())
	p.filled++
}

// Assess runs the one-pass fixed-vs-random Welch t-test over cfg.NumTraces
// simulations drawn from src. Traces are never materialized: each run's
// energy streams through a per-job probe into its shard's accumulator pair,
// shards fan out across the worker pool, and the shard accumulators merge
// in fixed index order — the determinism contract of PR 1 extended to
// statistics: bit-identical verdicts for any worker count. Equivalent to
// AssessContext with a background context.
func Assess(src Source, cfg Config) (*Report, error) {
	return AssessContext(context.Background(), src, cfg)
}

// AssessContext is Assess under a cancellable context: shard workers check
// the context between trace executions, so a per-request deadline or a
// client disconnect stops the sweep within one simulation's latency. On
// cancellation every partial shard accumulator is discarded and only the
// context's error is returned — a cancelled assessment never yields a
// truncated (and therefore statistically weaker) verdict. Uncancelled runs
// are bit-identical to Assess.
func AssessContext(ctx context.Context, src Source, cfg Config) (*Report, error) {
	p, err := newPlan(cfg)
	if err != nil {
		return nil, err
	}
	parts := make([]*ShardAccum, p.shards)
	err = sim.ForEachContext(ctx, p.shards, cfg.Workers, func(s int) error {
		acc, serr := p.runShard(ctx, src, s)
		if serr != nil {
			return serr
		}
		parts[s] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return FoldReport(cfg, parts)
}

// AssessShard runs exactly one shard of the assessment described by cfg:
// traces ShardRange(shard, …) of the population, reduced into a fresh
// accumulator pair. It executes the identical per-trace code path as
// AssessContext — AssessContext is a fan-out over AssessShard plus
// FoldReport — so a shard computed here (possibly in another process) and
// folded in shard order reproduces the single-node verdict bit for bit.
func AssessShard(ctx context.Context, src Source, cfg Config, shard int) (*ShardAccum, error) {
	p, err := newPlan(cfg)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= p.shards {
		return nil, fmt.Errorf("leakstat: shard %d out of range [0,%d)", shard, p.shards)
	}
	return p.runShard(ctx, src, shard)
}

// FoldReport merges per-shard accumulators in shard-index order — the one
// reduction tree, regardless of which worker or which machine produced each
// shard — and computes the verdict. parts must hold every shard of the
// normalized partition exactly once; the fold performs the exact Merge
// sequence of a single-node assessment, so the resulting t-vector is
// bit-identical to AssessContext over the same configuration.
func FoldReport(cfg Config, parts []*ShardAccum) (*Report, error) {
	p, err := newPlan(cfg)
	if err != nil {
		return nil, err
	}
	if len(parts) != p.shards {
		return nil, fmt.Errorf("leakstat: folding %d shard accumulators, want %d", len(parts), p.shards)
	}
	F, R := NewVecOrder(p.L, p.order), NewVecOrder(p.L, p.order)
	stateBytes := F.StateBytes() + R.StateBytes()
	var cycles uint64
	for s, acc := range parts {
		if acc == nil || acc.Fixed == nil || acc.Random == nil {
			return nil, fmt.Errorf("leakstat: missing accumulator for shard %d", s)
		}
		if acc.Shard != s {
			return nil, fmt.Errorf("leakstat: shard %d accumulator at fold position %d", acc.Shard, s)
		}
		stateBytes += acc.Fixed.StateBytes() + acc.Random.StateBytes()
		cycles += acc.Cycles
		if err := F.Merge(acc.Fixed); err != nil {
			return nil, err
		}
		if err := R.Merge(acc.Random); err != nil {
			return nil, err
		}
	}
	var t []float64
	if p.order >= 2 {
		t, err = WelchT2(F, R)
	} else {
		t, err = WelchT(F, R)
	}
	if err != nil {
		return nil, err
	}
	peak, at := MaxAbs(t)
	return &Report{
		NumTraces:       cfg.NumTraces,
		FixedN:          p.nFixed,
		RandomN:         cfg.NumTraces - p.nFixed,
		Shards:          p.shards,
		WindowStart:     p.win.Start,
		WindowEnd:       p.win.End,
		Order:           p.order,
		Threshold:       p.threshold,
		MaxAbsT:         clampFinite(peak),
		MaxTCycle:       p.win.Start + at,
		Leak:            peak > p.threshold,
		StateBytes:      stateBytes,
		CyclesSimulated: cycles,
		T:               t,
		Fixed:           F,
		Random:          R,
	}, nil
}

// plan is a validated, normalized assessment configuration plus the derived
// population split — everything shard execution and the fold agree on.
type plan struct {
	cfg       Config
	win       trace.Window
	shards    int
	order     int
	threshold float64
	fixed     []bool
	nFixed    int
	L         int
}

func newPlan(cfg Config) (*plan, error) {
	if cfg.NumTraces < 4 {
		return nil, fmt.Errorf("leakstat: need at least 4 traces (2 per population), got %d", cfg.NumTraces)
	}
	order := cfg.Order
	if order == 0 {
		order = 1
	}
	if order != 1 && order != 2 {
		return nil, fmt.Errorf("leakstat: unsupported statistical order %d (want 1 or 2)", cfg.Order)
	}
	win := cfg.Window
	if win.Start < 0 || win.End <= win.Start {
		return nil, fmt.Errorf("leakstat: invalid window [%d,%d)", win.Start, win.End)
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	fixed := Assignment(cfg.Seed, cfg.NumTraces)
	nFixed := 0
	for _, f := range fixed {
		if f {
			nFixed++
		}
	}
	if nFixed < 2 || cfg.NumTraces-nFixed < 2 {
		return nil, fmt.Errorf("leakstat: degenerate assignment (%d fixed / %d random); add traces or change the seed",
			nFixed, cfg.NumTraces-nFixed)
	}
	return &plan{
		cfg:       cfg,
		win:       win,
		shards:    NumShards(cfg),
		order:     order,
		threshold: threshold,
		fixed:     fixed,
		nFixed:    nFixed,
		L:         win.Len(),
	}, nil
}

// runShard executes one shard's trace range into a fresh accumulator pair.
func (p *plan) runShard(ctx context.Context, src Source, s int) (*ShardAccum, error) {
	if src.Runner == nil || src.Job == nil {
		return nil, fmt.Errorf("leakstat: source needs a Runner and a Job constructor")
	}
	acc := &ShardAccum{Shard: s, Fixed: NewVecOrder(p.L, p.order), Random: NewVecOrder(p.L, p.order)}
	lo, hi := ShardRange(s, p.shards, p.cfg.NumTraces)
	var err error
	if p.cfg.Gang > 1 {
		err = p.runGangShard(ctx, src, acc, lo, hi)
	} else {
		err = p.runScalarShard(ctx, src, acc, lo, hi)
	}
	if err != nil {
		return nil, err
	}
	return acc, nil
}

// runScalarShard streams traces [lo, hi) one at a time through a per-run
// meter probe straight into the shard's accumulators. The probe and its
// one-element probe slice are allocated once per shard and reused for
// every trace, so the steady state allocates nothing per trace beyond
// the job itself.
func (p *plan) runScalarShard(ctx context.Context, src Source, acc *ShardAccum, lo, hi int) error {
	probe := &sampleProbe{start: uint64(p.win.Start), end: uint64(p.win.End)}
	probes := []cpu.Probe{probe}
	spec := sim.PerRunMeterProbes(func(m *energy.Probe) []cpu.Probe {
		probe.meter = m
		return probes
	})
	for i := lo; i < hi; i++ {
		// Cancellation point: an in-flight simulation completes, but no
		// further trace of this shard starts once the context is done.
		// The shard's partial accumulators are dropped with the error.
		if err := ctx.Err(); err != nil {
			return err
		}
		job, err := src.Job(i, p.fixed[i])
		if err != nil {
			return fmt.Errorf("leakstat: trace %d: %w", i, err)
		}
		job.Trace = false // reduced in-flight; never materialized
		job.Probe = spec
		if p.fixed[i] {
			probe.vec = acc.Fixed
		} else {
			probe.vec = acc.Random
		}
		probe.vec.BeginTrace()
		probe.filled = 0
		res := src.Runner.Run(job)
		if res.Err != nil {
			return fmt.Errorf("leakstat: trace %d: %w", i, res.Err)
		}
		acc.Cycles += res.Stats.Cycles
		if probe.filled != p.L {
			return fmt.Errorf("leakstat: trace %d covered %d/%d window samples — run ended before Window.End=%d",
				i, probe.filled, p.L, p.win.End)
		}
	}
	return nil
}

// runGangShard feeds the same trace range through the lockstep engine in
// gangs of up to cfg.Gang lanes, then folds each lane's window samples
// into the accumulators in trace-index order — the identical sequence of
// Vec operations the scalar path performs, so the fold is bit-exact. The
// sample buffers are allocated once per shard and reused across gangs.
func (p *plan) runGangShard(ctx context.Context, src Source, acc *ShardAccum, lo, hi int) error {
	width := p.cfg.Gang
	if n := hi - lo; width > n {
		width = n
	}
	bufs := make([][]float64, width)
	for g := range bufs {
		bufs[g] = make([]float64, p.L)
	}
	jobs := make([]sim.Job, 0, width)
	idx := make([]int, 0, width)
	for i := lo; i < hi; {
		if err := ctx.Err(); err != nil {
			return err
		}
		jobs, idx = jobs[:0], idx[:0]
		for ; i < hi && len(jobs) < width; i++ {
			job, err := src.Job(i, p.fixed[i])
			if err != nil {
				return fmt.Errorf("leakstat: trace %d: %w", i, err)
			}
			// Gang-shape the job exactly as the scalar path does: the
			// engine owns the observation, so source-provided trace or
			// probe requests are overridden, never combined.
			job.Trace = false
			job.Blocks = false
			job.Probe = sim.ProbeSpec{}
			jobs = append(jobs, job)
			idx = append(idx, i)
		}
		results := src.Runner.RunGangSampled(jobs, uint64(p.win.Start), uint64(p.win.End), bufs[:len(jobs)])
		for k := range results {
			ti := idx[k]
			res := &results[k]
			if res.Err != nil {
				return fmt.Errorf("leakstat: trace %d: %w", ti, res.Err)
			}
			acc.Cycles += res.Stats.Cycles
			// Same coverage contract as the scalar probe's filled count:
			// the run must commit every cycle of the window.
			covered := 0
			if res.Stats.Cycles > uint64(p.win.Start) {
				covered = int(res.Stats.Cycles - uint64(p.win.Start))
				if covered > p.L {
					covered = p.L
				}
			}
			if covered != p.L {
				return fmt.Errorf("leakstat: trace %d covered %d/%d window samples — run ended before Window.End=%d",
					ti, covered, p.L, p.win.End)
			}
			vec := acc.Random
			if p.fixed[ti] {
				vec = acc.Fixed
			}
			// AddTrace performs exactly the BeginTrace + per-sample Set
			// sequence of the scalar probe, so the fold stays bit-exact.
			vec.AddTrace(bufs[k][:p.L])
		}
	}
	return nil
}
