package leakstat

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/energy"
)

// shardTestSource builds a small unprotected DES population for shard tests.
func shardTestSource(t *testing.T) (Source, Config) {
	t.Helper()
	m, err := desprog.NewFull(compiler.Options{Policy: compiler.PolicyNone}, energy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	key, pt := uint64(0x133457799BBCDFF1), uint64(0x0123456789ABCDEF)
	win, err := DESMaskedWindow(m, key, pt, 5000)
	if err != nil {
		t.Fatal(err)
	}
	src := DESKeySource(m, key, pt, 7, 5000)
	cfg := Config{NumTraces: 48, Seed: 7, Shards: 8, Workers: 2, Window: win}
	return src, cfg
}

// TestAssessShardFoldBitIdentical: computing every shard independently via
// AssessShard and folding with FoldReport must reproduce the single-node
// AssessContext verdict bit for bit — the invariant that makes distribution
// a transport problem. Shards are also computed out of order to prove the
// fold, not the execution order, fixes the reduction tree.
func TestAssessShardFoldBitIdentical(t *testing.T) {
	src, cfg := shardTestSource(t)
	ref, err := Assess(src, cfg)
	if err != nil {
		t.Fatal(err)
	}

	shards := NumShards(cfg)
	parts := make([]*ShardAccum, shards)
	order := rand.New(rand.NewSource(1)).Perm(shards)
	for _, s := range order {
		acc, err := AssessShard(context.Background(), src, cfg, s)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if acc.Shard != s {
			t.Fatalf("shard %d accumulator labeled %d", s, acc.Shard)
		}
		parts[s] = acc
	}
	got, err := FoldReport(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxAbsT != ref.MaxAbsT || got.MaxTCycle != ref.MaxTCycle ||
		got.CyclesSimulated != ref.CyclesSimulated || got.Leak != ref.Leak {
		t.Fatalf("folded verdict diverged:\nfold %+v\nref  %+v", got, ref)
	}
	for j := range ref.T {
		if math.Float64bits(got.T[j]) != math.Float64bits(ref.T[j]) {
			t.Fatalf("t[%d] differs: %x vs %x", j, math.Float64bits(got.T[j]), math.Float64bits(ref.T[j]))
		}
	}
}

// TestShardAccumRoundTrip: serialization carries the exact float64 bit
// patterns, so a round-tripped shard folds bit-identically.
func TestShardAccumRoundTrip(t *testing.T) {
	src, cfg := shardTestSource(t)
	ref, err := Assess(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards := NumShards(cfg)
	parts := make([]*ShardAccum, shards)
	for s := 0; s < shards; s++ {
		acc, err := AssessShard(context.Background(), src, cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := acc.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		rt := new(ShardAccum)
		if err := rt.UnmarshalBinary(b); err != nil {
			t.Fatalf("shard %d decode: %v", s, err)
		}
		if rt.Shard != acc.Shard || rt.Cycles != acc.Cycles ||
			rt.Fixed.N() != acc.Fixed.N() || rt.Random.N() != acc.Random.N() {
			t.Fatalf("shard %d header diverged: %+v vs %+v", s, rt, acc)
		}
		for j := range acc.Fixed.Mean {
			if math.Float64bits(rt.Fixed.Mean[j]) != math.Float64bits(acc.Fixed.Mean[j]) ||
				math.Float64bits(rt.Fixed.M2[j]) != math.Float64bits(acc.Fixed.M2[j]) ||
				math.Float64bits(rt.Random.Mean[j]) != math.Float64bits(acc.Random.Mean[j]) ||
				math.Float64bits(rt.Random.M2[j]) != math.Float64bits(acc.Random.M2[j]) {
				t.Fatalf("shard %d sample %d bits diverged after round trip", s, j)
			}
		}
		parts[s] = rt
	}
	got, err := FoldReport(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref.T {
		if math.Float64bits(got.T[j]) != math.Float64bits(ref.T[j]) {
			t.Fatalf("t[%d] differs after serialization round trip", j)
		}
	}
}

// TestShardAccumCorruption: a flipped byte or a truncated encoding is
// rejected — the durability layer depends on never folding a torn file.
func TestShardAccumCorruption(t *testing.T) {
	acc := &ShardAccum{Shard: 3, Cycles: 99, Fixed: NewVec(4), Random: NewVec(4)}
	acc.Fixed.AddTrace([]float64{1, 2, 3, 4})
	acc.Fixed.AddTrace([]float64{2, 3, 4, 5})
	acc.Random.AddTrace([]float64{5, 6, 7, 8})
	acc.Random.AddTrace([]float64{6, 7, 8, 9})
	b, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(ShardAccum).UnmarshalBinary(b); err != nil {
		t.Fatalf("clean encoding rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped byte", func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)-5] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.mut(append([]byte(nil), b...))
			if err := new(ShardAccum).UnmarshalBinary(d); err == nil {
				t.Fatal("corrupted encoding accepted")
			}
		})
	}
}

// TestShardRangeCovers: the fixed partition tiles the population exactly.
func TestShardRangeCovers(t *testing.T) {
	for _, n := range []int{4, 31, 32, 33, 100, 1000} {
		for _, shards := range []int{1, 3, 8, 32} {
			if shards > n {
				continue
			}
			next := 0
			for s := 0; s < shards; s++ {
				lo, hi := ShardRange(s, shards, n)
				if lo != next || hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d range [%d,%d), want lo=%d", n, shards, s, lo, hi, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: partition ends at %d", n, shards, next)
			}
		}
	}
}

// TestWindowContextCancelled: a dead context skips the window-probe
// simulation instead of burning a worker on it.
func TestWindowContextCancelled(t *testing.T) {
	m, err := desprog.NewFull(compiler.Options{Policy: compiler.PolicyNone}, energy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DESMaskedWindowContext(ctx, m, 1, 2, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled window probe returned %v, want context.Canceled", err)
	}
}
