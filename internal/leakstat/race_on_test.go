//go:build race

package leakstat

// raceEnabled gates allocation-count assertions: the race detector
// instruments allocations, so counts are only meaningful without it.
const raceEnabled = true
