package leakstat

import (
	"context"
	"fmt"
	"math/rand"

	"desmask/internal/desprog"
	"desmask/internal/kernels"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// maskSeedBase decorrelates the per-trace mask-stream seeds from the
// per-trace input seeds (both are indexed by the trace number i): masks and
// inputs must be independent randomness or the masking is fictitious.
const maskSeedBase = int64(0x6d61736b) // "mask"

// MaskSeed derives the mask-stream seed of trace i for an assessment seed.
// Every source uses this one derivation, so a shard computed anywhere draws
// the identical per-trace masks.
func MaskSeed(seed int64, i int) int64 {
	return sim.DeriveSeed(seed^maskSeedBase, i)
}

// DESKeySource builds the canonical DES fixed-vs-random-KEY population:
// fixed traces encrypt plaintext under fixedKey, random traces under a key
// derived from sim.DeriveSeed(seed, i). Varying the key (not the plaintext)
// keeps the deliberately insecure initial permutation — which handles only
// public plaintext bits — out of the comparison, so the verdict measures
// exactly what the paper masks: key-dependent energy behavior. On masked or
// shuffled machines every trace draws fresh countermeasure randomness from
// MaskSeed(seed, i) — fixed-population traces included, which is what makes
// a sound mask's two populations statistically indistinguishable.
func DESKeySource(m *desprog.Machine, fixedKey, plaintext uint64, seed int64, maxCycles uint64) Source {
	return Source{
		Runner: m.Runner(),
		Job: func(i int, fixed bool) (sim.Job, error) {
			key := fixedKey
			if !fixed {
				key = rand.New(rand.NewSource(sim.DeriveSeed(seed, i))).Uint64()
			}
			return m.EncryptJobSeeded(key, plaintext, MaskSeed(seed, i), maxCycles, false)
		},
	}
}

// DESPlaintextSource builds the fixed-vs-random-PLAINTEXT population under
// one key. Use it with a window that starts after the initial permutation
// (DESRound1Window): the IP region is insecure by design and would flag any
// policy.
func DESPlaintextSource(m *desprog.Machine, key, fixedPlain uint64, seed int64, maxCycles uint64) Source {
	return Source{
		Runner: m.Runner(),
		Job: func(i int, fixed bool) (sim.Job, error) {
			pt := fixedPlain
			if !fixed {
				pt = rand.New(rand.NewSource(sim.DeriveSeed(seed, i))).Uint64()
			}
			return m.EncryptJobSeeded(key, pt, MaskSeed(seed, i), maxCycles, false)
		},
	}
}

// KernelSecretSource builds a fixed-vs-random-SECRET population for a
// non-DES kernel: random traces draw each secret word from
// sim.DeriveSeed(seed, i) masked by wordMask (0xff for aes128's byte-valued
// state, 0xffffffff for tea/sha1 full words).
func KernelSecretSource(m *kernels.Machine, fixedSecret, public []uint32, wordMask uint32, seed int64, maxCycles uint64) Source {
	return Source{
		Runner: m.Runner(),
		Job: func(i int, fixed bool) (sim.Job, error) {
			secret := fixedSecret
			if !fixed {
				rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, i)))
				secret = make([]uint32, len(fixedSecret))
				for j := range secret {
					secret[j] = rng.Uint32() & wordMask
				}
			}
			job, err := m.JobSeeded(secret, public, MaskSeed(seed, i), false)
			if err != nil {
				return sim.Job{}, err
			}
			job.MaxCycles = maxCycles
			return job, nil
		},
	}
}

// DESMaskedWindow locates the DES assessment window [0, entry of the output
// permutation): everything the paper requires to be energy-flat across keys.
// The output permutation itself declassifies the ciphertext and is insecure
// by design. Cycle counts are input-independent per program, so the window
// found on one probe run holds for every run. A maxCycles > 0 budget clamps
// the window so budget-bounded assessment runs still cover it.
func DESMaskedWindow(m *desprog.Machine, key, plaintext uint64, maxCycles uint64) (trace.Window, error) {
	return DESMaskedWindowContext(context.Background(), m, key, plaintext, maxCycles)
}

// DESMaskedWindowContext is DESMaskedWindow under a cancellable context: the
// window-probe simulation (a full traced encryption) is skipped when the
// context is already dead, so a deadline-bound service never burns a worker
// locating a window for an expired request.
func DESMaskedWindowContext(ctx context.Context, m *desprog.Machine, key, plaintext uint64, maxCycles uint64) (trace.Window, error) {
	tr, _, err := m.TraceContext(ctx, key, plaintext)
	if err != nil {
		return trace.Window{}, err
	}
	entry, err := m.EntryPC(desprog.FuncOutputPermutation)
	if err != nil {
		return trace.Window{}, err
	}
	end := tr.Len()
	for i, pc := range tr.PCs {
		if pc == entry {
			end = i
			break
		}
	}
	w := trace.Window{Start: 0, End: end}
	if maxCycles > 0 {
		w = w.Clamp(int(maxCycles))
	}
	if w.Len() <= 0 {
		return trace.Window{}, fmt.Errorf("leakstat: empty DES masked window")
	}
	return w, nil
}

// DESRound1Window locates round 1 of the DES encryption — the window the
// vary-plaintext population is assessed over, past the insecure initial
// permutation.
func DESRound1Window(m *desprog.Machine, key, plaintext uint64, maxCycles uint64) (trace.Window, error) {
	return DESRound1WindowContext(context.Background(), m, key, plaintext, maxCycles)
}

// DESRound1WindowContext is DESRound1Window under a cancellable context.
func DESRound1WindowContext(ctx context.Context, m *desprog.Machine, key, plaintext uint64, maxCycles uint64) (trace.Window, error) {
	tr, _, err := m.TraceContext(ctx, key, plaintext)
	if err != nil {
		return trace.Window{}, err
	}
	w, err := m.RoundWindow(tr, 0)
	if err != nil {
		return trace.Window{}, err
	}
	if maxCycles > 0 {
		w = w.Clamp(int(maxCycles))
	}
	if w.Len() <= 0 {
		return trace.Window{}, fmt.Errorf("leakstat: round-1 window outside the %d-cycle budget", maxCycles)
	}
	return w, nil
}

// KernelMaskedWindow locates a kernel's assessment window [0, start of
// output emission) from one probe run.
func KernelMaskedWindow(m *kernels.Machine, secret, public []uint32) (trace.Window, error) {
	return KernelMaskedWindowContext(context.Background(), m, secret, public)
}

// KernelMaskedWindowContext is KernelMaskedWindow under a cancellable
// context.
func KernelMaskedWindowContext(ctx context.Context, m *kernels.Machine, secret, public []uint32) (trace.Window, error) {
	_, tr, err := m.TraceContext(ctx, secret, public)
	if err != nil {
		return trace.Window{}, err
	}
	end, err := m.MaskedRegionEnd(tr)
	if err != nil {
		return trace.Window{}, err
	}
	if end <= 0 {
		return trace.Window{}, fmt.Errorf("leakstat: %s: empty masked region", m.Kernel.Name)
	}
	return trace.Window{Start: 0, End: end}, nil
}
