package leakstat

import (
	"math"
	"strings"
	"sync"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/trace"
)

const (
	testKey   = 0x133457799BBCDFF1
	testPlain = 0x0123456789ABCDEF
)

var desMachines struct {
	sync.Mutex
	m map[compiler.Policy]*desprog.Machine
}

func desMachine(t *testing.T, policy compiler.Policy) *desprog.Machine {
	t.Helper()
	desMachines.Lock()
	defer desMachines.Unlock()
	if desMachines.m == nil {
		desMachines.m = make(map[compiler.Policy]*desprog.Machine)
	}
	if m, ok := desMachines.m[policy]; ok {
		return m
	}
	m, err := desprog.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	desMachines.m[policy] = m
	return m
}

// assessDES runs a vary-key assessment over the first maxCycles cycles.
func assessDES(t *testing.T, policy compiler.Policy, traces, workers, shards int, maxCycles uint64) *Report {
	t.Helper()
	m := desMachine(t, policy)
	win, err := DESMaskedWindow(m, testKey, testPlain, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Assess(DESKeySource(m, testKey, testPlain, 7, maxCycles), Config{
		NumTraces: traces,
		Seed:      7,
		Shards:    shards,
		Workers:   workers,
		Window:    win,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestAssessDeterministicAcrossWorkers: the acceptance-criterion invariant —
// the full T vector is bit-identical for workers = 1, 4, 16.
func TestAssessDeterministicAcrossWorkers(t *testing.T) {
	ref := assessDES(t, compiler.PolicyNone, 24, 1, 0, 6000)
	for _, workers := range []int{4, 16} {
		got := assessDES(t, compiler.PolicyNone, 24, workers, 0, 6000)
		if len(got.T) != len(ref.T) {
			t.Fatalf("workers=%d: T length %d vs %d", workers, len(got.T), len(ref.T))
		}
		for j := range ref.T {
			if math.Float64bits(got.T[j]) != math.Float64bits(ref.T[j]) {
				t.Fatalf("workers=%d: T[%d] differs: %x vs %x",
					workers, j, math.Float64bits(got.T[j]), math.Float64bits(ref.T[j]))
			}
		}
		if got.MaxAbsT != ref.MaxAbsT || got.MaxTCycle != ref.MaxTCycle || got.Leak != ref.Leak {
			t.Fatalf("workers=%d: verdict (%g@%d leak=%v) vs (%g@%d leak=%v)", workers,
				got.MaxAbsT, got.MaxTCycle, got.Leak, ref.MaxAbsT, ref.MaxTCycle, ref.Leak)
		}
	}
}

// TestAssessShardCountChangesNothingStatistically: different shard counts
// are different (all valid) reduction trees; verdicts must agree.
func TestAssessShardCountChangesNothing(t *testing.T) {
	a := assessDES(t, compiler.PolicyNone, 20, 2, 4, 6000)
	b := assessDES(t, compiler.PolicyNone, 20, 2, 10, 6000)
	if a.Leak != b.Leak {
		t.Fatalf("shard count changed the verdict: %v vs %v", a.Leak, b.Leak)
	}
	if !relClose(a.MaxAbsT, b.MaxAbsT, 1e-9) {
		t.Fatalf("shards=4 peak %g vs shards=10 peak %g", a.MaxAbsT, b.MaxAbsT)
	}
}

// TestAssessDESVerdicts: unprotected DES leaks the key through the key
// permutation's energy; the selective policy's masked build is energy-flat
// across keys — t identically zero over the whole window.
func TestAssessDESVerdicts(t *testing.T) {
	none := assessDES(t, compiler.PolicyNone, 16, 4, 0, 6000)
	if !none.Leak || none.MaxAbsT <= DefaultThreshold {
		t.Fatalf("unprotected DES: max|t|=%g, want leak above %g", none.MaxAbsT, DefaultThreshold)
	}
	sel := assessDES(t, compiler.PolicySelective, 16, 4, 0, 6000)
	if sel.Leak || sel.MaxAbsT != 0 {
		t.Fatalf("selective DES: max|t|=%g leak=%v, want exactly 0 / no leak", sel.MaxAbsT, sel.Leak)
	}
	if sel.FixedN+sel.RandomN != 16 || sel.FixedN < 2 || sel.RandomN < 2 {
		t.Fatalf("population split %d/%d", sel.FixedN, sel.RandomN)
	}
	// The streaming engine's footprint is the accumulators, O(shards × L).
	wantState := (sel.Shards + 1) * 2 * 2 * 8 * (sel.WindowEnd - sel.WindowStart)
	if sel.StateBytes != wantState {
		t.Fatalf("StateBytes=%d, want %d", sel.StateBytes, wantState)
	}
}

// TestAssessCoverageError: a window the runs cannot cover (budget expires
// first) must fail loudly, never silently assess a shorter window.
func TestAssessCoverageError(t *testing.T) {
	m := desMachine(t, compiler.PolicyNone)
	src := DESKeySource(m, testKey, testPlain, 7, 3000)
	_, err := Assess(src, Config{
		NumTraces: 8,
		Seed:      7,
		Window:    trace.Window{Start: 0, End: 5000},
	})
	if err == nil || !strings.Contains(err.Error(), "window samples") {
		t.Fatalf("want coverage error, got %v", err)
	}
}

func TestAssessValidation(t *testing.T) {
	m := desMachine(t, compiler.PolicyNone)
	src := DESKeySource(m, testKey, testPlain, 7, 3000)
	if _, err := Assess(Source{}, Config{NumTraces: 8, Window: trace.Window{End: 10}}); err == nil {
		t.Fatal("want error for empty source")
	}
	if _, err := Assess(src, Config{NumTraces: 3, Window: trace.Window{End: 10}}); err == nil {
		t.Fatal("want error below 4 traces")
	}
	if _, err := Assess(src, Config{NumTraces: 8, Window: trace.Window{Start: 5, End: 5}}); err == nil {
		t.Fatal("want error for empty window")
	}
}

func TestWindowClamp(t *testing.T) {
	w := trace.Window{Start: 10, End: 100}
	if c := w.Clamp(50); c.Start != 10 || c.End != 50 {
		t.Fatalf("got %+v", c)
	}
	if c := w.Clamp(5); c.Len() > 0 {
		t.Fatalf("window past the bound must clamp empty, got %+v", c)
	}
	if c := w.Clamp(200); c != w {
		t.Fatalf("bound past the window must not move it, got %+v", c)
	}
}
