package leakstat

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"desmask/internal/compiler"
	"desmask/internal/sim"
)

// TestAssessContextCancel cancels an assessment mid-sweep: the engine must
// return only the context error (no partial report), stop launching traces,
// and leak no shard goroutines.
func TestAssessContextCancel(t *testing.T) {
	m := desMachine(t, compiler.PolicyNone)
	const maxCycles = 8000
	win, err := DESMaskedWindow(m, testKey, testPlain, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	src := DESKeySource(m, testKey, testPlain, 7, maxCycles)
	wrapped := Source{
		Runner: src.Runner,
		Job: func(i int, fixed bool) (sim.Job, error) {
			// Cancel from inside the sweep so some traces have run and the
			// rest must be skipped.
			cancel()
			return src.Job(i, fixed)
		},
	}
	rep, err := AssessContext(ctx, wrapped, Config{
		NumTraces: 512, Seed: 7, Workers: 4, Window: win,
	})
	if rep != nil {
		t.Fatal("cancelled assessment returned a partial report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAssessContextUncancelledBitIdentical: the context path with a live
// context must produce the exact t-vector of the context-free entry point.
func TestAssessContextUncancelledBitIdentical(t *testing.T) {
	m := desMachine(t, compiler.PolicyNone)
	const maxCycles = 8000
	win, err := DESMaskedWindow(m, testKey, testPlain, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumTraces: 64, Seed: 7, Workers: 4, Window: win}
	src := DESKeySource(m, testKey, testPlain, 7, maxCycles)
	ref, err := Assess(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := AssessContext(ctx, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.T) != len(ref.T) {
		t.Fatalf("t-vector length %d vs %d", len(got.T), len(ref.T))
	}
	for i := range ref.T {
		if math.Float64bits(got.T[i]) != math.Float64bits(ref.T[i]) {
			t.Fatalf("T[%d] differs between Assess and AssessContext", i)
		}
	}
	if got.CyclesSimulated == 0 || got.CyclesSimulated != ref.CyclesSimulated {
		t.Fatalf("CyclesSimulated %d vs %d", got.CyclesSimulated, ref.CyclesSimulated)
	}
}
