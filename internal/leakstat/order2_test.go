package leakstat

import (
	"math"
	"math/rand"
	"testing"
)

// TestVecMomentsMatchBatch: the streaming Pébay M2/M3/M4 updates must agree
// with the direct two-pass central-moment sums to floating-point tolerance,
// both for pure streaming and for shard-partitioned merges.
func TestVecMomentsMatchBatch(t *testing.T) {
	const (
		samples = 7
		traces  = 500
	)
	rng := rand.New(rand.NewSource(42))
	data := make([][]float64, traces)
	for i := range data {
		row := make([]float64, samples)
		for j := range row {
			row[j] = rng.NormFloat64()*3 + float64(j)
		}
		data[i] = row
	}

	stream := NewVecOrder(samples, 2)
	for _, row := range data {
		stream.AddTrace(row)
	}

	merged := NewVecOrder(samples, 2)
	for _, span := range [][2]int{{0, 100}, {100, 101}, {101, 350}, {350, 500}} {
		part := NewVecOrder(samples, 2)
		for _, row := range data[span[0]:span[1]] {
			part.AddTrace(row)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}

	for j := 0; j < samples; j++ {
		var mean float64
		for _, row := range data {
			mean += row[j]
		}
		mean /= traces
		var m2, m3, m4 float64
		for _, row := range data {
			d := row[j] - mean
			m2 += d * d
			m3 += d * d * d
			m4 += d * d * d * d
		}
		for _, v := range []*Vec{stream, merged} {
			for _, m := range []struct {
				name      string
				got, want float64
			}{
				{"M2", v.M2[j], m2}, {"M3", v.M3[j], m3}, {"M4", v.M4[j], m4},
			} {
				tol := 1e-9 * math.Max(1, math.Abs(m.want))
				if math.Abs(m.got-m.want) > tol {
					t.Errorf("sample %d %s: streaming %g vs batch %g", j, m.name, m.got, m.want)
				}
			}
		}
	}
}

// TestWelchT2DetectsVarianceLeak: two populations with equal means but
// different variances — the signature first-order boolean masking leaves —
// must be invisible to the first-order test and loud at second order.
func TestWelchT2DetectsVarianceLeak(t *testing.T) {
	const n = 4000
	rng := rand.New(rand.NewSource(7))
	f := NewVecOrder(1, 2)
	r := NewVecOrder(1, 2)
	for i := 0; i < n; i++ {
		f.AddTrace([]float64{10 + rng.NormFloat64()})   // sd 1
		r.AddTrace([]float64{10 + 3*rng.NormFloat64()}) // sd 3, same mean
	}
	t1, err := WelchT(f, r)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := WelchT2(f, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1[0]) > 4.5 {
		t.Errorf("first-order t = %g flags an equal-means population", t1[0])
	}
	if math.Abs(t2[0]) < 4.5 {
		t.Errorf("second-order t = %g misses a 9x variance ratio at n=%d", t2[0], n)
	}
}

// TestWelchT2RequiresMoments: first-order accumulators cannot silently feed
// the second-order test.
func TestWelchT2RequiresMoments(t *testing.T) {
	f, r := NewVec(2), NewVec(2)
	for i := 0; i < 4; i++ {
		f.AddTrace([]float64{1, 2})
		r.AddTrace([]float64{2, 1})
	}
	if _, err := WelchT2(f, r); err == nil {
		t.Fatal("WelchT2 accepted moment-less accumulators")
	}
	if err := NewVecOrder(2, 2).Merge(NewVec(2)); err == nil {
		t.Fatal("order-2 accumulator merged an order-1 accumulator")
	}
}

// TestOrder2AssessWorkersBitIdentical is the second-moment shard-merge
// property: an Order-2 assessment's full t-vector is bit-identical for
// workers 1, 4 and 16 — the determinism contract extended to the new
// moments.
func TestOrder2AssessWorkersBitIdentical(t *testing.T) {
	src, cfg := shardTestSource(t)
	cfg.Order = 2
	var ref *Report
	for _, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		rep, err := Assess(src, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Order != 2 {
			t.Fatalf("workers=%d: report order %d", workers, rep.Order)
		}
		if ref == nil {
			ref = rep
			continue
		}
		if len(rep.T) != len(ref.T) {
			t.Fatalf("workers=%d: t-vector length %d vs %d", workers, len(rep.T), len(ref.T))
		}
		for j := range ref.T {
			if math.Float64bits(rep.T[j]) != math.Float64bits(ref.T[j]) {
				t.Fatalf("workers=%d: t[%d] bits differ: %x vs %x",
					workers, j, math.Float64bits(rep.T[j]), math.Float64bits(ref.T[j]))
			}
		}
		if rep.MaxAbsT != ref.MaxAbsT || rep.CyclesSimulated != ref.CyclesSimulated {
			t.Fatalf("workers=%d: verdict diverged: %+v vs %+v", workers, rep, ref)
		}
	}
}

// TestOrder2ShardAccumRoundTrip: the LSA2 encoding carries M3/M4 with exact
// bits, rejects corruption, and an LSA1 decode still yields a first-order
// accumulator.
func TestOrder2ShardAccumRoundTrip(t *testing.T) {
	acc := &ShardAccum{Shard: 5, Cycles: 1234, Fixed: NewVecOrder(3, 2), Random: NewVecOrder(3, 2)}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		acc.Fixed.AddTrace([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		acc.Random.AddTrace([]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	b, err := acc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:4]) != "LSA2" {
		t.Fatalf("moment-tracking accumulator encoded with magic %q", b[:4])
	}
	rt := new(ShardAccum)
	if err := rt.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if rt.Fixed.Order() != 2 || rt.Random.Order() != 2 {
		t.Fatalf("round trip lost moments: orders %d/%d", rt.Fixed.Order(), rt.Random.Order())
	}
	for j := range acc.Fixed.Mean {
		for _, pair := range [][2]float64{
			{rt.Fixed.M3[j], acc.Fixed.M3[j]}, {rt.Fixed.M4[j], acc.Fixed.M4[j]},
			{rt.Random.M3[j], acc.Random.M3[j]}, {rt.Random.M4[j], acc.Random.M4[j]},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("sample %d moment bits diverged after round trip", j)
			}
		}
	}
	// First-order accumulators still use — and decode from — LSA1.
	acc1 := &ShardAccum{Shard: 0, Fixed: NewVec(2), Random: NewVec(2)}
	acc1.Fixed.AddTrace([]float64{1, 2})
	acc1.Random.AddTrace([]float64{3, 4})
	b1, err := acc1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1[:4]) != "LSA1" {
		t.Fatalf("first-order accumulator encoded with magic %q", b1[:4])
	}
	rt1 := new(ShardAccum)
	if err := rt1.UnmarshalBinary(b1); err != nil {
		t.Fatal(err)
	}
	if rt1.Fixed.Order() != 1 {
		t.Fatalf("LSA1 decode produced order %d", rt1.Fixed.Order())
	}
}
