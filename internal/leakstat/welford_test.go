package leakstat

import (
	"math"
	"math/rand"
	"testing"
)

// twoPass computes the reference mean and sample variance in two passes.
func twoPass(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	if len(xs) > 1 {
		variance /= float64(len(xs) - 1)
	} else {
		variance = 0
	}
	return mean, variance
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return a == b
	}
	return math.Abs(a-b) <= tol*scale
}

// randomData mimics per-cycle energy: a base magnitude with small jitter,
// the regime where naive sum-of-squares variance loses precision.
func randomData(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5000 + rng.NormFloat64()*3
	}
	return xs
}

// TestAccMatchesTwoPass: sequential Welford accumulation agrees with the
// two-pass reference to tight relative tolerance.
func TestAccMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 17, 1000} {
		xs := randomData(rng, n)
		var a Acc
		for _, x := range xs {
			a.Add(x)
		}
		mean, variance := twoPass(xs)
		if !relClose(a.Mean, mean, 1e-12) || !relClose(a.Variance(), variance, 1e-9) {
			t.Fatalf("n=%d: Welford (%.17g, %.17g) vs two-pass (%.17g, %.17g)",
				n, a.Mean, a.Variance(), mean, variance)
		}
	}
}

// TestAccMergeGroupings: any partition of the data merged in any
// association agrees with sequential accumulation and the two-pass
// reference to tight tolerance — the statistical soundness half of the
// merge contract. (Bit-identity across different groupings is not a float
// property; the engine gets bit-identical verdicts by fixing ONE grouping —
// see TestVecFixedFoldBitIdentical.)
func TestAccMergeGroupings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := randomData(rng, 999)
	mean, variance := twoPass(xs)

	var seq Acc
	for _, x := range xs {
		seq.Add(x)
	}

	for _, workers := range []int{1, 4, 16} {
		// Split into `workers` contiguous shards, accumulate each, then try
		// two merge associations: left fold and pairwise tree.
		shards := make([]Acc, workers)
		for s := 0; s < workers; s++ {
			lo, hi := s*len(xs)/workers, (s+1)*len(xs)/workers
			for _, x := range xs[lo:hi] {
				shards[s].Add(x)
			}
		}
		var fold Acc
		for _, s := range shards {
			fold.Merge(s)
		}
		tree := make([]Acc, len(shards))
		copy(tree, shards)
		for len(tree) > 1 {
			var next []Acc
			for i := 0; i < len(tree); i += 2 {
				a := tree[i]
				if i+1 < len(tree) {
					a.Merge(tree[i+1])
				}
				next = append(next, a)
			}
			tree = next
		}
		for _, got := range []Acc{fold, tree[0]} {
			if got.N != uint64(len(xs)) {
				t.Fatalf("workers=%d: merged N=%d, want %d", workers, got.N, len(xs))
			}
			if !relClose(got.Mean, mean, 1e-12) || !relClose(got.Variance(), variance, 1e-9) {
				t.Fatalf("workers=%d: merged (%.17g, %.17g) vs two-pass (%.17g, %.17g)",
					workers, got.Mean, got.Variance(), mean, variance)
			}
			if !relClose(got.Mean, seq.Mean, 1e-13) || !relClose(got.M2, seq.M2, 1e-9) {
				t.Fatalf("workers=%d: merged (%.17g, %.17g) vs sequential (%.17g, %.17g)",
					workers, got.Mean, got.M2, seq.Mean, seq.M2)
			}
		}
	}
}

// TestVecFixedFoldBitIdentical: the engine's actual invariant. One fixed
// shard partition folded in shard-index order produces bit-identical state
// no matter how many workers filled the shards — because the reduction tree
// is a function of the partition, not the schedule.
func TestVecFixedFoldBitIdentical(t *testing.T) {
	const nTraces, nSamples, nShards = 64, 37, 8
	rng := rand.New(rand.NewSource(3))
	traces := make([][]float64, nTraces)
	for i := range traces {
		traces[i] = randomData(rng, nSamples)
	}

	fold := func() *Vec {
		shards := make([]*Vec, nShards)
		for s := range shards {
			v := NewVec(nSamples)
			lo, hi := s*nTraces/nShards, (s+1)*nTraces/nShards
			for _, tr := range traces[lo:hi] {
				v.AddTrace(tr)
			}
			shards[s] = v
		}
		out := NewVec(nSamples)
		for _, v := range shards {
			if err := out.Merge(v); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	ref := fold()
	for trial := 0; trial < 3; trial++ {
		got := fold()
		for j := 0; j < nSamples; j++ {
			if math.Float64bits(got.Mean[j]) != math.Float64bits(ref.Mean[j]) ||
				math.Float64bits(got.M2[j]) != math.Float64bits(ref.M2[j]) {
				t.Fatalf("trial %d sample %d: fixed fold not bit-identical", trial, j)
			}
		}
	}

	// And it agrees with per-sample two-pass statistics.
	for j := 0; j < nSamples; j++ {
		col := make([]float64, nTraces)
		for i := range traces {
			col[i] = traces[i][j]
		}
		mean, variance := twoPass(col)
		if !relClose(ref.Mean[j], mean, 1e-12) || !relClose(ref.VarianceAt(j), variance, 1e-9) {
			t.Fatalf("sample %d: fold (%g, %g) vs two-pass (%g, %g)",
				j, ref.Mean[j], ref.VarianceAt(j), mean, variance)
		}
	}
}

// TestVecStreamingMatchesAddTrace: BeginTrace/Set streaming equals AddTrace
// bit-for-bit (same op sequence).
func TestVecStreamingMatchesAddTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := NewVec(11), NewVec(11)
	for i := 0; i < 25; i++ {
		tr := randomData(rng, 11)
		a.AddTrace(tr)
		b.BeginTrace()
		for j, x := range tr {
			b.Set(j, x)
		}
	}
	for j := 0; j < 11; j++ {
		if math.Float64bits(a.Mean[j]) != math.Float64bits(b.Mean[j]) ||
			math.Float64bits(a.M2[j]) != math.Float64bits(b.M2[j]) {
			t.Fatalf("sample %d: streaming path diverged from AddTrace", j)
		}
	}
}

// TestVecExactOnConstantTraces: identical traces leave M2 at exactly zero —
// the property that makes masked-region verdicts exact, not approximate.
func TestVecExactOnConstantTraces(t *testing.T) {
	v := NewVec(5)
	tr := []float64{4017.25, 3990.5, 5123.0, 0, 777.125}
	for i := 0; i < 100; i++ {
		v.AddTrace(tr)
	}
	for j := range tr {
		if v.Mean[j] != tr[j] || v.M2[j] != 0 {
			t.Fatalf("sample %d: mean=%g M2=%g, want exact (%g, 0)", j, v.Mean[j], v.M2[j], tr[j])
		}
	}
}

func TestWelchTZeroVarianceSemantics(t *testing.T) {
	mk := func(n int, traces ...[]float64) *Vec {
		v := NewVec(n)
		for _, tr := range traces {
			v.AddTrace(tr)
		}
		return v
	}
	// Same constant on both sides: no evidence, t = 0.
	f := mk(2, []float64{5, 7}, []float64{5, 7})
	r := mk(2, []float64{5, 7}, []float64{5, 7})
	ts, err := WelchT(f, r)
	if err != nil {
		t.Fatal(err)
	}
	for j, x := range ts {
		if x != 0 {
			t.Fatalf("sample %d: t=%g, want 0 for equal constants", j, x)
		}
	}
	// Different constants, zero variance: deterministic leak, ±Inf.
	r2 := mk(2, []float64{6, 3}, []float64{6, 3})
	ts, err = WelchT(f, r2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ts[0], -1) || !math.IsInf(ts[1], 1) {
		t.Fatalf("t=%v, want (-Inf, +Inf) for deterministic mean gap", ts)
	}
	if clampFinite(ts[0]) != math.MaxFloat64 || clampFinite(ts[1]) != math.MaxFloat64 {
		t.Fatalf("clampFinite(|Inf|) must be MaxFloat64")
	}
	// Guards.
	if _, err := WelchT(mk(2, []float64{1, 2}), r); err == nil {
		t.Fatal("want error for single-trace population")
	}
	if _, err := WelchT(mk(3, []float64{1, 2, 3}, []float64{1, 2, 3}), r); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
}

func TestMaxAbs(t *testing.T) {
	if peak, at := MaxAbs(nil); peak != 0 || at != -1 {
		t.Fatalf("empty: got (%g, %d)", peak, at)
	}
	peak, at := MaxAbs([]float64{1, -9, 3})
	if peak != 9 || at != 1 {
		t.Fatalf("got (%g, %d), want (9, 1)", peak, at)
	}
}
