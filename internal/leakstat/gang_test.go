package leakstat

// Gang-mode assessment properties: Config.Gang is a pure throughput knob.
// The t-vector — the verdict's identity — must be bit-identical to the
// scalar engine for every gang width, worker count, policy and ISA backend,
// and the coverage/error contract must not weaken.

import (
	"fmt"
	"math"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/trace"
)

// assessDESGang is assessDES with an explicit machine and gang width.
func assessDESGang(t *testing.T, m *desprog.Machine, traces, workers, gangW int, maxCycles uint64) *Report {
	t.Helper()
	win, err := DESMaskedWindow(m, testKey, testPlain, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	// Gangs form within a shard (the shard is the reduction unit), so the
	// shard count must leave several traces per shard for lockstep to engage.
	// It is part of the verdict's identity, so reference and gang runs use
	// the same value.
	rep, err := Assess(DESKeySource(m, testKey, testPlain, 7, maxCycles), Config{
		NumTraces: traces,
		Seed:      7,
		Shards:    2,
		Workers:   workers,
		Gang:      gangW,
		Window:    win,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func requireSameT(t *testing.T, label string, got, ref *Report) {
	t.Helper()
	if len(got.T) != len(ref.T) {
		t.Fatalf("%s: T length %d vs %d", label, len(got.T), len(ref.T))
	}
	for j := range ref.T {
		if math.Float64bits(got.T[j]) != math.Float64bits(ref.T[j]) {
			t.Fatalf("%s: T[%d] differs: %x vs %x",
				label, j, math.Float64bits(got.T[j]), math.Float64bits(ref.T[j]))
		}
	}
	if got.MaxAbsT != ref.MaxAbsT || got.MaxTCycle != ref.MaxTCycle || got.Leak != ref.Leak {
		t.Fatalf("%s: verdict (%g@%d leak=%v) vs (%g@%d leak=%v)", label,
			got.MaxAbsT, got.MaxTCycle, got.Leak, ref.MaxAbsT, ref.MaxTCycle, ref.Leak)
	}
	if got.CyclesSimulated != ref.CyclesSimulated {
		t.Fatalf("%s: cycles %d vs %d", label, got.CyclesSimulated, ref.CyclesSimulated)
	}
}

// TestAssessGangBitIdentity is the assessment-level acceptance property:
// for every policy and ISA backend, the full t-vector of a gang-mode
// assessment is bit-identical to the scalar engine's for every (gang width,
// worker count) combination.
func TestAssessGangBitIdentity(t *testing.T) {
	combos := [][2]int{{1, 4}, {4, 1}, {4, 4}, {16, 16}}
	if !testing.Short() {
		combos = nil
		for _, g := range []int{1, 4, 16} {
			for _, w := range []int{1, 4, 16} {
				combos = append(combos, [2]int{g, w})
			}
		}
	}
	for _, isaName := range []string{"pisa", "rv32"} {
		target, ok := isa.TargetByName(isaName)
		if !ok {
			t.Fatalf("unknown target %q", isaName)
		}
		for _, policy := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure} {
			t.Run(isaName+"/"+policy.String(), func(t *testing.T) {
				m, err := desprog.NewFull(compiler.Options{Policy: policy, Target: target}, energy.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				ref := assessDESGang(t, m, 24, 2, 0, 6000)
				for _, gw := range combos {
					g, w := gw[0], gw[1]
					got := assessDESGang(t, m, 24, w, g, 6000)
					requireSameT(t, fmt.Sprintf("gang=%d workers=%d", g, w), got, ref)
				}
				if g := m.Runner().GangRuns(); g == 0 {
					t.Error("no trace ran in lockstep across the gang sweep")
				}
			})
		}
	}
}

// TestAssessGangCoverageError: the gang path must fail a too-short window
// exactly as loudly as the scalar path.
func TestAssessGangCoverageError(t *testing.T) {
	m := desMachine(t, compiler.PolicyNone)
	src := DESKeySource(m, testKey, testPlain, 7, 3000)
	for _, gangW := range []int{0, 4} {
		_, err := Assess(src, Config{
			NumTraces: 8,
			Seed:      7,
			Gang:      gangW,
			Window:    trace.Window{Start: 0, End: 5000},
		})
		if err == nil {
			t.Fatalf("gang=%d: want coverage error, got nil", gangW)
		}
	}
}

// TestAssessSteadyStateAllocs pins the per-trace allocation budget of both
// engines: scratch (probes, sample buffers, gang lanes) is allocated per
// shard, never per trace, so the marginal cost of a trace is just its job
// construction plus the fixed result bookkeeping.
func TestAssessSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations")
	}
	m := desMachine(t, compiler.PolicyNone)
	const maxCycles = 3000
	win, err := DESMaskedWindow(m, testKey, testPlain, maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	src := DESKeySource(m, testKey, testPlain, 7, maxCycles)
	// The budget is dominated by per-trace job construction (the DES key and
	// plaintext spread into ~130 Write entries, plus the random-population
	// key derivation) and the fixed Result bookkeeping — engine scratch is
	// per-shard and must not show up here.
	for _, tc := range []struct {
		name  string
		gangW int
		max   float64
	}{
		{"scalar", 0, 16},
		{"gang", 8, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			assess := func(n int) float64 {
				return testing.AllocsPerRun(2, func() {
					if _, err := Assess(src, Config{
						NumTraces: n,
						Seed:      7,
						Shards:    1,
						Workers:   1,
						Gang:      tc.gangW,
						Window:    win,
					}); err != nil {
						t.Fatal(err)
					}
				})
			}
			small, large := assess(16), assess(48)
			perTrace := (large - small) / 32
			if perTrace > tc.max {
				t.Errorf("%.2f allocs per trace, want <= %.0f (fixed overhead %.0f)", perTrace, tc.max, small)
			}
		})
	}
}
