package cliconf

import (
	"flag"
	"strings"
	"testing"

	"desmask/internal/compiler"
)

func TestParseHex64(t *testing.T) {
	v, err := ParseHex64("key", "133457799BBCDFF1")
	if err != nil || v != 0x133457799BBCDFF1 {
		t.Fatalf("got %x, %v", v, err)
	}
	for _, bad := range []string{"", "xyz", "11223344556677889"} {
		if _, err := ParseHex64("key", bad); err == nil {
			t.Fatalf("ParseHex64 accepted %q", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("selective")
	if err != nil || p != compiler.PolicySelective {
		t.Fatalf("got %v, %v", p, err)
	}
	if _, err := ParsePolicy("nope"); err == nil || !strings.Contains(err.Error(), "selective") {
		t.Fatalf("error should list valid names, got %v", err)
	}
}

func TestParseISA(t *testing.T) {
	for name, want := range map[string]string{
		"": "pisa", "pisa": "pisa", "PISA": "pisa", "rv32": "rv32", "RV32": "rv32",
	} {
		tg, err := ParseISA(name)
		if err != nil || tg.Name() != want {
			t.Fatalf("ParseISA(%q) = %v, %v; want %s", name, tg, err, want)
		}
	}
	_, err := ParseISA("mips64")
	if err == nil || !strings.Contains(err.Error(), "pisa") || !strings.Contains(err.Error(), "rv32") {
		t.Fatalf("error should list valid backends, got %v", err)
	}
}

// TestAssessFlagsRoundTrip: the flag surface and the struct are the same
// thing — values set via flags land in the struct and validate.
func TestAssessFlagsRoundTrip(t *testing.T) {
	a := DefaultAssess()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.AddFlags(fs)
	err := fs.Parse([]string{
		"-kernel", "aes128", "-policy", "all-secure", "-traces", "64",
		"-seed", "3", "-workers", "2", "-shards", "8", "-max", "9000",
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel != "aes128" || r.PolicyV != compiler.PolicyAllSecure || r.Traces != 64 {
		t.Fatalf("resolved %+v", r)
	}
	cfg := r.Config()
	if cfg.NumTraces != 64 || cfg.Seed != 3 || cfg.Workers != 2 || cfg.Shards != 8 {
		t.Fatalf("config %+v", cfg)
	}
}

// TestAssessValidation is the contract the leakd request schema relies on:
// the same rules reject bad CLI flags and bad HTTP parameters.
func TestAssessValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Assess)
		want string
	}{
		{"bad kernel", func(a *Assess) { a.Kernel = "des3" }, "unknown kernel"},
		{"bad policy", func(a *Assess) { a.Policy = "paranoid" }, "unknown policy"},
		{"bad isa", func(a *Assess) { a.ISA = "arm64" }, "unknown isa"},
		{"bad isa valid policy", func(a *Assess) { a.Policy, a.ISA = "all-secure", "riscv" }, "unknown isa"},
		{"bad policy valid isa", func(a *Assess) { a.Policy, a.ISA = "paranoid", "rv32" }, "unknown policy"},
		{"bad isa on kernel", func(a *Assess) { a.Kernel, a.ISA = "tea", "x86" }, "unknown isa"},
		{"bad vary", func(a *Assess) { a.Vary = "rounds" }, "unknown vary"},
		{"vary plaintext non-des", func(a *Assess) { a.Kernel, a.Vary = "tea", "plaintext" }, "DES-only"},
		{"too few traces", func(a *Assess) { a.Traces = 3 }, "at least 4 traces"},
		{"negative workers", func(a *Assess) { a.Workers = -1 }, "workers"},
		{"negative shards", func(a *Assess) { a.Shards = -2 }, "shards"},
		{"bad key", func(a *Assess) { a.Key = "zz" }, "bad key"},
		{"bad plaintext", func(a *Assess) { a.Plaintext = "-3" }, "bad plaintext"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := DefaultAssess()
			tc.mut(&a)
			_, err := a.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}

	// Zero-valued optional fields resolve to defaults, including the ISA.
	a := Assess{Traces: 8, Policy: "none"}
	r, err := a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel != "des" || r.Vary != "key" || r.KeyV == 0 {
		t.Fatalf("defaults not applied: %+v", r)
	}
	if r.ISA != "pisa" || r.TargetV == nil || r.TargetV.Name() != "pisa" {
		t.Fatalf("default ISA not resolved to pisa: %q %v", r.ISA, r.TargetV)
	}

	// An explicit backend resolves and normalizes (case folded).
	a = Assess{Traces: 8, Policy: "selective", ISA: "RV32"}
	r, err = a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.ISA != "rv32" || r.TargetV.Name() != "rv32" {
		t.Fatalf("explicit ISA not resolved: %q %v", r.ISA, r.TargetV)
	}
}

// TestProtectionAttackValidation: the structured selectors resolve, reject
// bad values with field-pinned errors, and agree with the legacy flat
// spelling.
func TestProtectionAttackValidation(t *testing.T) {
	a := DefaultAssess()
	a.Policy = ""
	a.Protection = &Protection{Policy: "boolean-mask", Shuffle: true}
	a.Attack = &Attack{Stat: "tvla", Order: 2}
	r, err := a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.PolicyV != compiler.PolicyBooleanMask || !r.ShuffleV || r.MaskOrderV != 1 {
		t.Fatalf("protection resolved %+v", r)
	}
	if r.StatV != "tvla" || r.OrderV != 2 {
		t.Fatalf("attack resolved stat=%q order=%d", r.StatV, r.OrderV)
	}
	if cfg := r.Config(); cfg.Order != 2 {
		t.Fatalf("config order %d", cfg.Order)
	}
	opt := r.CompilerOptions()
	if opt.Policy != compiler.PolicyBooleanMask || !opt.Shuffle {
		t.Fatalf("compiler options %+v", opt)
	}

	// Empty attack object means first-order TVLA.
	a = DefaultAssess()
	a.Attack = &Attack{}
	r, err = a.Validate()
	if err != nil || r.StatV != "tvla" || r.OrderV != 1 {
		t.Fatalf("empty attack resolved stat=%q order=%d err=%v", r.StatV, r.OrderV, err)
	}

	for _, tc := range []struct {
		name  string
		mut   func(*Assess)
		field string
	}{
		{"bad structured policy", func(a *Assess) {
			a.Policy = ""
			a.Protection = &Protection{Policy: "paranoid"}
		}, "policy"},
		{"bad stat", func(a *Assess) { a.Attack = &Attack{Stat: "dpa"} }, "attack.stat"},
		{"bad order", func(a *Assess) { a.Attack = &Attack{Stat: "tvla", Order: 5} }, "attack.order"},
		{"bad mask order", func(a *Assess) {
			a.Policy = "boolean-mask"
			a.Protection = &Protection{MaskOrder: 3}
		}, "protection.mask_order"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := DefaultAssess()
			tc.mut(&a)
			_, err := a.Validate()
			var fe *FieldError
			if err == nil || !errorsAs(err, &fe) {
				t.Fatalf("want FieldError, got %v", err)
			}
			if fe.Field != tc.field {
				t.Fatalf("field %q, want %q", fe.Field, tc.field)
			}
			if len(fe.Allowed) == 0 {
				t.Fatal("FieldError without allowed values")
			}
		})
	}

	// mask_order on a non-masking policy is a conflict, not an enum error.
	a = DefaultAssess()
	a.Protection = &Protection{Policy: "selective", MaskOrder: 1}
	if _, err := a.Validate(); err == nil || !strings.Contains(err.Error(), "boolean-mask") {
		t.Fatalf("mask_order on selective: %v", err)
	}

	// Conflicting flat + structured policies are rejected.
	a = DefaultAssess()
	a.Policy = "none"
	a.Protection = &Protection{Policy: "selective"}
	if _, err := a.Validate(); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflicting policies: %v", err)
	}
}

// errorsAs is a local alias so the test reads like errors.As without the
// import shuffle.
func errorsAs(err error, target **FieldError) bool {
	for ; err != nil; err = unwrap(err) {
		if fe, ok := err.(*FieldError); ok {
			*target = fe
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// TestNormalize: structured spellings of legacy defaults fold back to the
// flat fields (shared idempotency keys), while real new settings survive.
func TestNormalize(t *testing.T) {
	base := DefaultAssess()

	// Default-valued structured objects disappear.
	a := base
	a.Policy = ""
	a.Protection = &Protection{Policy: "selective"}
	a.Attack = &Attack{Stat: "tvla", Order: 1}
	n := a.Normalize()
	if n.Protection != nil || n.Attack != nil || n.Policy != "selective" {
		t.Fatalf("defaults did not fold: %+v", n)
	}

	// boolean-mask's natural order folds too (mask_order 1 == default).
	a = base
	a.Policy = "boolean-mask"
	a.Protection = &Protection{MaskOrder: 1}
	n = a.Normalize()
	if n.Protection != nil || n.Policy != "boolean-mask" {
		t.Fatalf("natural mask order did not fold: %+v", n)
	}

	// Shuffle and second-order attacks survive normalization.
	a = base
	a.Protection = &Protection{Shuffle: true}
	a.Attack = &Attack{Order: 2}
	n = a.Normalize()
	if n.Protection == nil || !n.Protection.Shuffle || n.Protection.Policy != base.Policy {
		t.Fatalf("shuffle lost: %+v", n.Protection)
	}
	if n.Attack == nil || n.Attack.Stat != "tvla" || n.Attack.Order != 2 {
		t.Fatalf("order-2 attack lost: %+v", n.Attack)
	}

	// Normalization is idempotent.
	again := n.Normalize()
	if *again.Protection != *n.Protection || *again.Attack != *n.Attack {
		t.Fatalf("normalize not idempotent: %+v vs %+v", again, n)
	}
}

// TestNewFlagsRoundTrip: the new countermeasure/attack flags land in the
// structured objects and validate.
func TestNewFlagsRoundTrip(t *testing.T) {
	a := DefaultAssess()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.AddFlags(fs)
	if err := fs.Parse([]string{
		"-policy", "boolean-mask", "-shuffle", "-order", "2", "-traces", "32",
	}); err != nil {
		t.Fatal(err)
	}
	r, err := a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.PolicyV != compiler.PolicyBooleanMask || !r.ShuffleV || r.OrderV != 2 {
		t.Fatalf("resolved %+v", r)
	}
}

func TestBatchValidate(t *testing.T) {
	if err := (Batch{Traces: 10, Trials: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range []Batch{{Traces: -1}, {Trials: -1}, {Workers: -1}} {
		if err := b.Validate(); err == nil {
			t.Fatalf("Batch %+v validated", b)
		}
	}
}
