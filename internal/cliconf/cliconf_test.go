package cliconf

import (
	"flag"
	"strings"
	"testing"

	"desmask/internal/compiler"
)

func TestParseHex64(t *testing.T) {
	v, err := ParseHex64("key", "133457799BBCDFF1")
	if err != nil || v != 0x133457799BBCDFF1 {
		t.Fatalf("got %x, %v", v, err)
	}
	for _, bad := range []string{"", "xyz", "11223344556677889"} {
		if _, err := ParseHex64("key", bad); err == nil {
			t.Fatalf("ParseHex64 accepted %q", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("selective")
	if err != nil || p != compiler.PolicySelective {
		t.Fatalf("got %v, %v", p, err)
	}
	if _, err := ParsePolicy("nope"); err == nil || !strings.Contains(err.Error(), "selective") {
		t.Fatalf("error should list valid names, got %v", err)
	}
}

func TestParseISA(t *testing.T) {
	for name, want := range map[string]string{
		"": "pisa", "pisa": "pisa", "PISA": "pisa", "rv32": "rv32", "RV32": "rv32",
	} {
		tg, err := ParseISA(name)
		if err != nil || tg.Name() != want {
			t.Fatalf("ParseISA(%q) = %v, %v; want %s", name, tg, err, want)
		}
	}
	_, err := ParseISA("mips64")
	if err == nil || !strings.Contains(err.Error(), "pisa") || !strings.Contains(err.Error(), "rv32") {
		t.Fatalf("error should list valid backends, got %v", err)
	}
}

// TestAssessFlagsRoundTrip: the flag surface and the struct are the same
// thing — values set via flags land in the struct and validate.
func TestAssessFlagsRoundTrip(t *testing.T) {
	a := DefaultAssess()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	a.AddFlags(fs)
	err := fs.Parse([]string{
		"-kernel", "aes128", "-policy", "all-secure", "-traces", "64",
		"-seed", "3", "-workers", "2", "-shards", "8", "-max", "9000",
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel != "aes128" || r.PolicyV != compiler.PolicyAllSecure || r.Traces != 64 {
		t.Fatalf("resolved %+v", r)
	}
	cfg := r.Config()
	if cfg.NumTraces != 64 || cfg.Seed != 3 || cfg.Workers != 2 || cfg.Shards != 8 {
		t.Fatalf("config %+v", cfg)
	}
}

// TestAssessValidation is the contract the leakd request schema relies on:
// the same rules reject bad CLI flags and bad HTTP parameters.
func TestAssessValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Assess)
		want string
	}{
		{"bad kernel", func(a *Assess) { a.Kernel = "des3" }, "unknown kernel"},
		{"bad policy", func(a *Assess) { a.Policy = "paranoid" }, "unknown policy"},
		{"bad isa", func(a *Assess) { a.ISA = "arm64" }, "unknown isa"},
		{"bad isa valid policy", func(a *Assess) { a.Policy, a.ISA = "all-secure", "riscv" }, "unknown isa"},
		{"bad policy valid isa", func(a *Assess) { a.Policy, a.ISA = "paranoid", "rv32" }, "unknown policy"},
		{"bad isa on kernel", func(a *Assess) { a.Kernel, a.ISA = "tea", "x86" }, "unknown isa"},
		{"bad vary", func(a *Assess) { a.Vary = "rounds" }, "unknown vary"},
		{"vary plaintext non-des", func(a *Assess) { a.Kernel, a.Vary = "tea", "plaintext" }, "DES-only"},
		{"too few traces", func(a *Assess) { a.Traces = 3 }, "at least 4 traces"},
		{"negative workers", func(a *Assess) { a.Workers = -1 }, "workers"},
		{"negative shards", func(a *Assess) { a.Shards = -2 }, "shards"},
		{"bad key", func(a *Assess) { a.Key = "zz" }, "bad key"},
		{"bad plaintext", func(a *Assess) { a.Plaintext = "-3" }, "bad plaintext"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := DefaultAssess()
			tc.mut(&a)
			_, err := a.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}

	// Zero-valued optional fields resolve to defaults, including the ISA.
	a := Assess{Traces: 8, Policy: "none"}
	r, err := a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kernel != "des" || r.Vary != "key" || r.KeyV == 0 {
		t.Fatalf("defaults not applied: %+v", r)
	}
	if r.ISA != "pisa" || r.TargetV == nil || r.TargetV.Name() != "pisa" {
		t.Fatalf("default ISA not resolved to pisa: %q %v", r.ISA, r.TargetV)
	}

	// An explicit backend resolves and normalizes (case folded).
	a = Assess{Traces: 8, Policy: "selective", ISA: "RV32"}
	r, err = a.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.ISA != "rv32" || r.TargetV.Name() != "rv32" {
		t.Fatalf("explicit ISA not resolved: %q %v", r.ISA, r.TargetV)
	}
}

func TestBatchValidate(t *testing.T) {
	if err := (Batch{Traces: 10, Trials: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, b := range []Batch{{Traces: -1}, {Trials: -1}, {Workers: -1}} {
		if err := b.Validate(); err == nil {
			t.Fatalf("Batch %+v validated", b)
		}
	}
}
