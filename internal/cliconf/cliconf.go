// Package cliconf centralizes the parameter surface shared by the
// command-line tools and the leakd service. The window/workers/trials knobs
// used to be parsed (and bounds-checked) independently by cmd/tvla,
// cmd/simbench, cmd/leakcheck and cmd/desenc; they are defined once here,
// so a parameter accepted by a CLI flag and the same parameter arriving in
// a leakd HTTP request pass through identical validation.
package cliconf

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"desmask/internal/compiler"
	"desmask/internal/isa"
	"desmask/internal/kernels"
	"desmask/internal/leakstat"
)

// ParseISA resolves an ISA backend name; the error lists the valid names.
// An empty name resolves to the default PISA target.
func ParseISA(name string) (isa.Target, error) {
	if name == "" {
		return isa.PISA, nil
	}
	t, ok := isa.TargetByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown isa %q (want %s)", name, strings.Join(isa.Targets(), " | "))
	}
	return t, nil
}

// ParseHex64 parses a 64-bit hex value (no 0x prefix), naming the parameter
// in the error.
func ParseHex64(name, s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q: must be up to 16 hex digits", name, s)
	}
	return v, nil
}

// FieldError is a validation failure pinned to one request field, carrying
// the allowed values: the CLI renders it as usage text and leakd as a
// structured 400 body ({"error", "field", "allowed"}) instead of a bare
// string.
type FieldError struct {
	// Field names the offending parameter in request-JSON spelling
	// (e.g. "policy", "protection.mask_order", "attack.stat").
	Field string
	// Value is the rejected value as submitted.
	Value string
	// Allowed lists the accepted values, when enumerable.
	Allowed []string
}

// Error renders the failure with its allowed values.
func (e *FieldError) Error() string {
	msg := fmt.Sprintf("unknown %s %q", e.Field, e.Value)
	if len(e.Allowed) > 0 {
		msg += fmt.Sprintf(" (want %s)", strings.Join(e.Allowed, " | "))
	}
	return msg
}

// PolicyNames lists every protection-policy name the compiler accepts, in
// increasing protection-cost order — the single source for flag usage,
// validation errors and the structured 400 body.
func PolicyNames() []string {
	names := make([]string, 0, len(compiler.Policies()))
	for _, p := range compiler.Policies() {
		names = append(names, p.String())
	}
	return names
}

// ParsePolicy resolves a protection-policy name; the error lists the valid
// names (every compiler policy, including boolean-mask).
func ParsePolicy(name string) (compiler.Policy, error) {
	for _, p := range compiler.Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, &FieldError{Field: "policy", Value: name, Allowed: PolicyNames()}
}

// PolicyUsage renders the valid policy names for flag usage strings.
func PolicyUsage() string {
	return strings.Join(PolicyNames(), " | ")
}

// AttackStats are the distinguishers the attack object accepts: "tvla" is
// the fixed-vs-random Welch t-test assessment (leakstat), "cpa" the key-
// recovery correlation attack and "dom" the Kocher difference-of-means attack
// (both internal/dpa, cmd/dpa-attack). Order selects first-order statistics
// (means) or second-order (centered second moments / centered squares), the
// statistic that breaks first-order boolean masking; dom is first-order only.
var AttackStats = []string{"tvla", "cpa", "dom"}

// Protection is the structured countermeasure selector shared verbatim by
// CLI flags, leakd request JSON and the jobstore idempotency key: which
// compiler policy, what masking order, and whether operand shuffling is
// layered on. The flat legacy `policy` string remains accepted; see
// (Assess).Normalize for how the two spellings canonicalize to one job.
type Protection struct {
	// Policy is the compiler protection policy name (see PolicyNames).
	Policy string `json:"policy"`
	// MaskOrder is the masking order: 0 = the policy's natural order (1 for
	// boolean-mask, 0 otherwise), 1 = first-order boolean masking (requires
	// the boolean-mask policy). Higher orders are not implemented.
	MaskOrder int `json:"mask_order,omitempty"`
	// Shuffle layers the operand-shuffling countermeasure on: `shuffle for`
	// loops run their independent iterations in a fresh random order per
	// execution.
	Shuffle bool `json:"shuffle,omitempty"`
}

// Attack is the structured distinguisher selector: which statistic and at
// what order it attacks the traces.
type Attack struct {
	// Stat is "tvla" (leakage assessment), "cpa" (key-recovery correlation)
	// or "dom" (key-recovery difference of means).
	Stat string `json:"stat"`
	// Order is 1 (first-order means) or 2 (second-order centered moments);
	// 0 means 1.
	Order int `json:"order,omitempty"`
}

// KernelNames are the built-in workload names an assessment accepts.
var KernelNames = []string{"des", "aes128", "tea", "sha1"}

// validKernel reports whether name is a built-in workload.
func validKernel(name string) bool {
	for _, k := range KernelNames {
		if k == name {
			return true
		}
	}
	return false
}

// Assess is the canonical parameter set of one leakage assessment — the
// exact surface cmd/tvla exposes as flags and leakd accepts as JSON. Zero
// values mean "use the default" wherever a default exists.
type Assess struct {
	// Kernel is the workload: des, aes128, tea or sha1.
	Kernel string `json:"kernel"`
	// Policy is the flat legacy protection selector: a bare policy name.
	// Requests may use Protection instead; when both are present they must
	// agree on the policy.
	Policy string `json:"policy"`
	// Protection is the structured countermeasure selector. nil means "use
	// Policy with no extra countermeasures" — the legacy spelling.
	Protection *Protection `json:"protection,omitempty"`
	// Attack is the structured distinguisher selector. nil means first-order
	// TVLA — the legacy behavior.
	Attack *Attack `json:"attack,omitempty"`
	// ISA is the target backend name (empty = pisa).
	ISA string `json:"isa,omitempty"`
	// Vary selects the DES population variable: key or plaintext. Non-DES
	// kernels always vary the secret.
	Vary string `json:"vary"`
	// Traces is the total trace count across both populations.
	Traces int `json:"traces"`
	// Seed drives group assignment and random input derivation.
	Seed int64 `json:"seed"`
	// Workers sizes the shard worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// Shards is the fixed population partition (0 = leakstat default).
	Shards int `json:"shards"`
	// Gang is the lockstep gang width: > 1 runs each shard's traces in
	// gangs of up to Gang lanes through the gang-scheduled engine. A pure
	// throughput knob — the verdict is bit-identical for any value.
	Gang int `json:"gang,omitempty"`
	// Threshold is the |t| decision threshold (0 = leakstat default).
	Threshold float64 `json:"threshold"`
	// MaxCycles is the per-trace cycle budget (0 = full run); assessment
	// windows are clamped to it.
	MaxCycles uint64 `json:"max_cycles"`
	// Key is the fixed DES key, hex.
	Key string `json:"key"`
	// Plaintext is the DES plaintext, hex.
	Plaintext string `json:"plaintext"`
}

// DefaultAssess returns the defaults shared by cmd/tvla and leakd.
func DefaultAssess() Assess {
	return Assess{
		Kernel:    "des",
		Policy:    "selective",
		Vary:      "key",
		Traces:    1000,
		Seed:      7,
		MaxCycles: 25_000,
		Key:       "133457799BBCDFF1",
		Plaintext: "0123456789ABCDEF",
	}
}

// AddFlags registers the assessment parameters on a flag set, using the
// receiver's current values as defaults.
func (a *Assess) AddFlags(fs *flag.FlagSet) {
	if a.Protection == nil {
		a.Protection = &Protection{}
	}
	if a.Attack == nil {
		a.Attack = &Attack{}
	}
	fs.StringVar(&a.Kernel, "kernel", a.Kernel, "workload: "+strings.Join(KernelNames, ", "))
	fs.StringVar(&a.Policy, "policy", a.Policy, "protection policy: "+PolicyUsage())
	fs.IntVar(&a.Protection.MaskOrder, "mask-order", a.Protection.MaskOrder,
		"masking order (0 = the policy's natural order; 1 requires -policy boolean-mask)")
	fs.BoolVar(&a.Protection.Shuffle, "shuffle", a.Protection.Shuffle,
		"layer the operand-shuffling countermeasure on (fresh iteration order per execution)")
	fs.IntVar(&a.Attack.Order, "order", a.Attack.Order,
		"attack order: 1 = first-order statistics, 2 = second-order (centered second moments); 0 = 1")
	fs.StringVar(&a.ISA, "isa", a.ISA, "target ISA backend: "+isa.TargetUsage())
	fs.StringVar(&a.Vary, "vary", a.Vary, "DES population variable: key or plaintext")
	fs.IntVar(&a.Traces, "traces", a.Traces, "total traces across both populations")
	fs.Int64Var(&a.Seed, "seed", a.Seed, "seed for group assignment and random inputs")
	fs.IntVar(&a.Workers, "workers", a.Workers, "worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&a.Shards, "shards", a.Shards, "fixed shard partition (0 = default 32)")
	fs.IntVar(&a.Gang, "gang", a.Gang, "lockstep gang width (<= 1 = scalar execution; verdict is identical either way)")
	fs.Float64Var(&a.Threshold, "threshold", a.Threshold, "|t| decision threshold (0 = 4.5)")
	fs.Uint64Var(&a.MaxCycles, "max", a.MaxCycles, "cycle budget per trace (0 = full run; window is clamped to it)")
	fs.StringVar(&a.Key, "key", a.Key, "fixed DES key (hex)")
	fs.StringVar(&a.Plaintext, "plaintext", a.Plaintext, "DES plaintext (hex)")
}

// ResolvedAssess is a validated assessment parameter set with the
// string-encoded fields parsed.
type ResolvedAssess struct {
	Assess
	// PolicyV is the resolved protection policy.
	PolicyV compiler.Policy
	// ShuffleV reports the operand-shuffling countermeasure is on.
	ShuffleV bool
	// MaskOrderV is the effective masking order (1 for boolean-mask, else 0).
	MaskOrderV int
	// StatV is the resolved attack statistic ("tvla" or "cpa").
	StatV string
	// OrderV is the resolved attack order (1 or 2).
	OrderV int
	// TargetV is the resolved ISA backend (never nil; pisa when unset).
	TargetV isa.Target
	// KeyV and PlaintextV are the parsed 64-bit DES inputs.
	KeyV, PlaintextV uint64
}

// CompilerOptions assembles the compilation knobs of the resolved protection
// (policy, shuffling, target); callers add Optimize themselves.
func (r *ResolvedAssess) CompilerOptions() compiler.Options {
	return compiler.Options{Policy: r.PolicyV, Target: r.TargetV, Shuffle: r.ShuffleV}
}

// Validate normalizes and checks the parameter set; exactly the same rules
// gate a CLI invocation and a leakd request. The window is not part of this
// surface — it is derived from the workload by the caller.
func (a Assess) Validate() (*ResolvedAssess, error) {
	r := &ResolvedAssess{Assess: a}
	if r.Kernel == "" {
		r.Kernel = "des"
	}
	if !validKernel(r.Kernel) {
		return nil, fmt.Errorf("unknown kernel %q (want %s)", r.Kernel, strings.Join(KernelNames, ", "))
	}
	if r.Kernel != "des" {
		if _, ok := kernels.ByName(r.Kernel); !ok {
			return nil, fmt.Errorf("unknown kernel %q", r.Kernel)
		}
	}
	// Protection: the structured object wins; an empty object inherits the
	// flat Policy field, and a conflicting pair is rejected rather than
	// silently preferring one spelling.
	policyName := r.Policy
	if p := r.Protection; p != nil {
		if p.Policy != "" {
			if r.Policy != "" && r.Policy != p.Policy {
				return nil, fmt.Errorf("policy %q and protection.policy %q conflict", r.Policy, p.Policy)
			}
			policyName = p.Policy
		}
		r.ShuffleV = p.Shuffle
	}
	var err error
	if r.PolicyV, err = ParsePolicy(policyName); err != nil {
		return nil, err
	}
	r.MaskOrderV = 0
	if r.PolicyV == compiler.PolicyBooleanMask {
		r.MaskOrderV = 1
	}
	if p := r.Protection; p != nil && p.MaskOrder != 0 {
		if p.MaskOrder < 0 || p.MaskOrder > 1 {
			return nil, &FieldError{Field: "protection.mask_order",
				Value: strconv.Itoa(p.MaskOrder), Allowed: []string{"0", "1"}}
		}
		if r.PolicyV != compiler.PolicyBooleanMask {
			return nil, fmt.Errorf("protection.mask_order %d requires the boolean-mask policy, not %q",
				p.MaskOrder, r.PolicyV)
		}
	}
	// Attack: nil means first-order TVLA, exactly the legacy behavior.
	r.StatV, r.OrderV = "tvla", 1
	if at := r.Attack; at != nil {
		switch at.Stat {
		case "", "tvla", "cpa", "dom":
			if at.Stat != "" {
				r.StatV = at.Stat
			}
		default:
			return nil, &FieldError{Field: "attack.stat", Value: at.Stat, Allowed: AttackStats}
		}
		switch at.Order {
		case 0, 1, 2:
			if at.Order != 0 {
				r.OrderV = at.Order
			}
		default:
			return nil, &FieldError{Field: "attack.order",
				Value: strconv.Itoa(at.Order), Allowed: []string{"1", "2"}}
		}
		if r.StatV == "dom" && r.OrderV != 1 {
			return nil, fmt.Errorf("attack.stat dom is first-order only; use stat cpa with order 2 for the second-order attack")
		}
	}
	if r.TargetV, err = ParseISA(r.ISA); err != nil {
		return nil, err
	}
	r.ISA = r.TargetV.Name()
	switch r.Vary {
	case "", "key":
		r.Vary = "key"
	case "plaintext":
		if r.Kernel != "des" {
			return nil, fmt.Errorf("-vary plaintext is DES-only; kernel populations always vary the secret")
		}
	default:
		return nil, fmt.Errorf("unknown vary %q (want key or plaintext)", r.Vary)
	}
	if r.Traces < 4 {
		return nil, fmt.Errorf("need at least 4 traces (2 per population), got %d", r.Traces)
	}
	if r.Workers < 0 {
		return nil, fmt.Errorf("workers must be >= 0, got %d", r.Workers)
	}
	if r.Shards < 0 {
		return nil, fmt.Errorf("shards must be >= 0, got %d", r.Shards)
	}
	if r.Gang < 0 {
		return nil, fmt.Errorf("gang must be >= 0, got %d", r.Gang)
	}
	if r.Threshold < 0 {
		return nil, fmt.Errorf("threshold must be >= 0, got %v", r.Threshold)
	}
	if r.Key == "" {
		r.Key = DefaultAssess().Key
	}
	if r.Plaintext == "" {
		r.Plaintext = DefaultAssess().Plaintext
	}
	if r.KeyV, err = ParseHex64("key", r.Key); err != nil {
		return nil, err
	}
	if r.PlaintextV, err = ParseHex64("plaintext", r.Plaintext); err != nil {
		return nil, err
	}
	return r, nil
}

// Config assembles the leakstat configuration of the resolved parameters
// (the window is supplied by the caller once the workload is built).
func (r *ResolvedAssess) Config() leakstat.Config {
	return leakstat.Config{
		NumTraces: r.Traces,
		Seed:      r.Seed,
		Shards:    r.Shards,
		Workers:   r.Workers,
		Gang:      r.Gang,
		Threshold: r.Threshold,
		Order:     r.OrderV,
	}
}

// Normalize rewrites the parameter set into its canonical spelling: a
// structured Protection or Attack object that only restates legacy defaults
// (bare policy, no shuffle, natural mask order, first-order TVLA) is folded
// back into the flat fields it duplicates. Two requests that mean the same
// assessment — one legacy, one structured — normalize to identical values,
// which is what keeps their jobstore idempotency keys (and therefore their
// stored verdicts) shared. Call it only on parameter sets that Validate
// accepts; it does not itself validate.
func (a Assess) Normalize() Assess {
	if p := a.Protection; p != nil {
		if p.Policy != "" {
			a.Policy = p.Policy
		}
		naturalOrder := 0
		if a.Policy == compiler.PolicyBooleanMask.String() {
			naturalOrder = 1
		}
		if !p.Shuffle && (p.MaskOrder == 0 || p.MaskOrder == naturalOrder) {
			a.Protection = nil
		} else {
			cp := *p
			cp.Policy = a.Policy
			if cp.MaskOrder == naturalOrder {
				cp.MaskOrder = 0
			}
			a.Protection = &cp
		}
	}
	if at := a.Attack; at != nil {
		if (at.Stat == "" || at.Stat == "tvla") && at.Order <= 1 {
			a.Attack = nil
		} else {
			cp := *at
			if cp.Stat == "" {
				cp.Stat = "tvla"
			}
			if cp.Order == 0 {
				cp.Order = 1
			}
			a.Attack = &cp
		}
	}
	return a
}

// Batch is the shared execution-shape surface of the batch benchmarks and
// encrypt CLIs: how many jobs, how many verification trials, how many
// workers, and the per-job cycle budget.
type Batch struct {
	// Traces is the batch size.
	Traces int `json:"traces"`
	// Trials is the verification/measurement repetition count.
	Trials int `json:"trials"`
	// Workers sizes the worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// MaxCycles is the per-job cycle budget (0 = runner default).
	MaxCycles uint64 `json:"max_cycles"`
	// Gang is the lockstep gang width for batch execution (<= 1 = scalar).
	Gang int `json:"gang,omitempty"`
}

// AddFlags registers the batch parameters on a flag set, using the
// receiver's current values as defaults.
func (b *Batch) AddFlags(fs *flag.FlagSet) {
	fs.IntVar(&b.Traces, "traces", b.Traces, "traces to collect per batch configuration")
	fs.IntVar(&b.Trials, "trials", b.Trials, "repetitions per configuration")
	fs.IntVar(&b.Workers, "workers", b.Workers, "worker pool size (0 = GOMAXPROCS)")
	fs.Uint64Var(&b.MaxCycles, "max", b.MaxCycles, "cycle budget per job (0 = runner default)")
	fs.IntVar(&b.Gang, "gang", b.Gang, "lockstep gang width (<= 1 = scalar execution)")
}

// Validate bounds-checks the batch parameters.
func (b Batch) Validate() error {
	if b.Traces < 0 {
		return fmt.Errorf("traces must be >= 0, got %d", b.Traces)
	}
	if b.Trials < 0 {
		return fmt.Errorf("trials must be >= 0, got %d", b.Trials)
	}
	if b.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", b.Workers)
	}
	if b.Gang < 0 {
		return fmt.Errorf("gang must be >= 0, got %d", b.Gang)
	}
	return nil
}
