package cpu

import (
	"errors"
	"testing"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

func build(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(p, mem.New())
	if err != nil {
		t.Fatalf("new cpu: %v", err)
	}
	return c
}

func run(t *testing.T, c *CPU) {
	t.Helper()
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestArithmetic(t *testing.T) {
	c := build(t, `
main:	li   $t0, 7
		li   $t1, 5
		addu $t2, $t0, $t1     # 12
		subu $t3, $t0, $t1     # 2
		and  $t4, $t0, $t1     # 5
		or   $t5, $t0, $t1     # 7
		xor  $t6, $t0, $t1     # 2
		nor  $t7, $t0, $t1     # ^7
		mul  $s0, $t0, $t1     # 35
		sll  $s1, $t0, 2       # 28
		srl  $s2, $t0, 1       # 3
		halt
	`)
	run(t, c)
	want := map[isa.Reg]uint32{
		isa.T2: 12, isa.T3: 2, isa.T4: 5, isa.T5: 7, isa.T6: 2,
		isa.T7: ^uint32(7), isa.S0: 35, isa.S1: 28, isa.S2: 3,
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("%v = %d, want %d", r, got, v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	c := build(t, `
main:	li   $t0, -8
		sra  $t1, $t0, 2       # -2
		srl  $t2, $t0, 28      # 15
		slt  $t3, $t0, $zero   # 1 (signed)
		sltu $t4, $t0, $zero   # 0 (unsigned: big value)
		slti $t5, $t0, -7      # 1
		sltiu $t6, $zero, 1    # 1
		halt
	`)
	run(t, c)
	if got := int32(c.Reg(isa.T1)); got != -2 {
		t.Errorf("sra = %d, want -2", got)
	}
	if got := c.Reg(isa.T2); got != 15 {
		t.Errorf("srl = %d, want 15", got)
	}
	for r, v := range map[isa.Reg]uint32{isa.T3: 1, isa.T4: 0, isa.T5: 1, isa.T6: 1} {
		if got := c.Reg(r); got != v {
			t.Errorf("%v = %d, want %d", r, got, v)
		}
	}
}

func TestVariableShifts(t *testing.T) {
	c := build(t, `
main:	li   $t0, 1
		li   $t1, 5
		sllv $t2, $t0, $t1     # 32
		li   $t3, -32
		srav $t4, $t3, $t1     # -1
		srlv $t5, $t3, $t1     # large
		halt
	`)
	run(t, c)
	if got := c.Reg(isa.T2); got != 32 {
		t.Errorf("sllv = %d, want 32", got)
	}
	if got := int32(c.Reg(isa.T4)); got != -1 {
		t.Errorf("srav = %d, want -1", got)
	}
	if got := c.Reg(isa.T5); got != uint32(0xffffffe0)>>5 {
		t.Errorf("srlv = %#x", got)
	}
}

func TestForwardingChain(t *testing.T) {
	// Each instruction consumes the immediately preceding result.
	c := build(t, `
main:	li   $t0, 1
		addu $t0, $t0, $t0    # 2
		addu $t0, $t0, $t0    # 4
		addu $t0, $t0, $t0    # 8
		addu $t1, $t0, $t0    # 16
		xor  $t2, $t1, $t0    # 24
		halt
	`)
	run(t, c)
	if got := c.Reg(isa.T2); got != 24 {
		t.Errorf("forwarding chain = %d, want 24", got)
	}
}

func TestLoadUseStall(t *testing.T) {
	c := build(t, `
		.data
v:		.word 41
		.text
main:	la   $t1, v
		lw   $t0, 0($t1)
		addiu $t0, $t0, 1     # immediately uses loaded value
		sw   $t0, 0($t1)
		halt
	`)
	run(t, c)
	w, _ := c.Mem().LoadWord(c.prog.Symbols["v"])
	if w != 42 {
		t.Errorf("v = %d, want 42", w)
	}
	if c.Stats().Stalls == 0 {
		t.Error("expected at least one load-use stall")
	}
}

func TestStoreAfterLoadForwarding(t *testing.T) {
	c := build(t, `
		.data
a:		.word 7
b:		.word 0
		.text
main:	la   $t2, a
		lw   $t0, 0($t2)
		sw   $t0, 4($t2)      # store value comes from the load
		halt
	`)
	run(t, c)
	w, _ := c.Mem().LoadWord(c.prog.Symbols["b"])
	if w != 7 {
		t.Errorf("b = %d, want 7", w)
	}
}

func TestLoopSum(t *testing.T) {
	c := build(t, `
main:	li   $t0, 0           # sum
		li   $t1, 1           # i
		li   $t2, 10          # limit
loop:	addu $t0, $t0, $t1
		addiu $t1, $t1, 1
		ble  $t1, $t2, loop
		halt
	`)
	run(t, c)
	if got := c.Reg(isa.T0); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	st := c.Stats()
	if st.Flushes == 0 {
		t.Error("taken branches should flush")
	}
	if st.Cycles <= st.Insts {
		t.Errorf("cycles (%d) should exceed retired instructions (%d)", st.Cycles, st.Insts)
	}
}

func TestBranchVariants(t *testing.T) {
	c := build(t, `
main:	li   $t0, -3
		li   $t9, 0
		blez $t0, l1
		addiu $t9, $t9, 100   # skipped
l1:		addiu $t9, $t9, 1
		bgtz $t0, l2
		addiu $t9, $t9, 2
l2:		li   $t1, 5
		beq  $t1, $t1, l3
		addiu $t9, $t9, 100   # skipped
l3:		bne  $t1, $t1, l4
		addiu $t9, $t9, 4
l4:		halt
	`)
	run(t, c)
	if got := c.Reg(isa.T9); got != 7 {
		t.Errorf("t9 = %d, want 7", got)
	}
}

func TestCallReturn(t *testing.T) {
	c := build(t, `
main:	li   $a0, 20
		jal  double
		move $s0, $v0
		jal  double2
		halt
double:	addu $v0, $a0, $a0
		jr   $ra
double2:
		addu $v0, $s0, $s0
		jr   $ra
	`)
	run(t, c)
	if got := c.Reg(isa.V0); got != 80 {
		t.Errorf("v0 = %d, want 80", got)
	}
}

func TestJumpOverHaltShadow(t *testing.T) {
	// Instructions fetched after a halt shadow must not retire when a jump
	// redirects around it.
	c := build(t, `
main:	j    go
		halt                  # never reached
go:		li   $t0, 9
		halt
	`)
	run(t, c)
	if got := c.Reg(isa.T0); got != 9 {
		t.Errorf("t0 = %d, want 9", got)
	}
}

func TestHaltDrains(t *testing.T) {
	c := build(t, `
main:	li   $t0, 3
		addiu $t0, $t0, 1
		halt
	`)
	run(t, c)
	if !c.Halted() {
		t.Fatal("not halted")
	}
	if got := c.Reg(isa.T0); got != 4 {
		t.Errorf("t0 = %d, want 4 (older instructions must retire)", got)
	}
	if err := c.Step(); err == nil {
		t.Error("stepping a halted core should fail")
	}
}

func TestMaxCycles(t *testing.T) {
	c := build(t, "main: j main\nhalt\n")
	err := c.Run(100)
	if !errors.Is(err, ErrCycleLimit) {
		t.Errorf("err = %v, want ErrCycleLimit", err)
	}
	var cle *CycleLimitError
	if !errors.As(err, &cle) || cle.Limit != 100 {
		t.Errorf("err = %#v, want *CycleLimitError with Limit=100", err)
	}
}

func TestFetchOutOfRange(t *testing.T) {
	// Program without halt runs off the end of text.
	c := build(t, "main: nop\nnop\n")
	if err := c.Run(100); err == nil {
		t.Error("expected fetch error")
	}
}

func TestMisalignedAccess(t *testing.T) {
	c := build(t, `
main:	li  $t0, 2
		lw  $t1, 0($t0)
		halt
	`)
	if err := c.Run(100); err == nil {
		t.Error("expected misaligned load error")
	}
}

func TestMisalignedJr(t *testing.T) {
	c := build(t, `
main:	li  $t0, 6
		jr  $t0
		halt
	`)
	if err := c.Run(100); err == nil {
		t.Error("expected misaligned jr error")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := build(t, `
main:	li    $t0, 5
		addu  $zero, $t0, $t0
		move  $t1, $zero
		halt
	`)
	run(t, c)
	if got := c.Reg(isa.T1); got != 0 {
		t.Errorf("$zero was written: t1 = %d", got)
	}
}

func TestSecureInstructionCount(t *testing.T) {
	c := build(t, `
		.data
v:		.word 3
		.text
main:	la    $t1, v
		slw   $t0, 0($t1)
		sxor  $t0, $t0, $t0
		ssw   $t0, 0($t1)
		lw    $t2, 0($t1)
		halt
	`)
	run(t, c)
	if got := c.Stats().SecureInst; got != 3 {
		t.Errorf("secure instructions retired = %d, want 3", got)
	}
}

// pcRecorder collects the PC of every micro-op that reaches EX.
type pcRecorder struct{ seen map[uint32]bool }

func (r *pcRecorder) OnCycle(CycleInfo)  {}
func (r *pcRecorder) OnExec(e ExecEvent) { r.seen[e.U.PC] = true }

func TestStatsAccumulation(t *testing.T) {
	c := build(t, `
main:	li   $t0, 2
		addu $t1, $t0, $t0
		halt
	`)
	var cycles uint64
	c.Attach(ProbeFunc(func(CycleInfo) { cycles++ }))
	run(t, c)
	st := c.Stats()
	if st.Insts != 3 {
		t.Errorf("retired = %d, want 3", st.Insts)
	}
	if cycles != st.Cycles {
		t.Errorf("probe saw %d cycles, stats report %d", cycles, st.Cycles)
	}
}

func TestExecPCReporting(t *testing.T) {
	c := build(t, `
main:	li   $t0, 1
		addu $t1, $t0, $t0
		halt
	`)
	rec := &pcRecorder{seen: map[uint32]bool{}}
	c.Attach(rec)
	run(t, c)
	for i := 0; i < 3; i++ {
		pc := c.prog.TextBase + uint32(4*i)
		if !rec.seen[pc] {
			t.Errorf("pc %#x never reported in EX", pc)
		}
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	p := &asm.Program{}
	if _, err := New(p, mem.New()); err == nil {
		t.Error("empty program accepted")
	}
}

func TestStatsFlushesAndStallsPlausible(t *testing.T) {
	c := build(t, `
		.data
v:		.word 9
		.text
main:	li   $t2, 4
loop:	la   $t1, v
		lw   $t0, 0($t1)
		addu $t0, $t0, $t0    # load-use
		addiu $t2, $t2, -1
		bgtz $t2, loop
		halt
	`)
	run(t, c)
	st := c.Stats()
	if st.Stalls < 4 {
		t.Errorf("stalls = %d, want >= 4 (one per iteration)", st.Stalls)
	}
	if st.Flushes < 3 {
		t.Errorf("flushes = %d, want >= 3 (at least one per taken branch)", st.Flushes)
	}
	// Lower bound: every retired instruction, stall bubble and squashed
	// instruction costs a cycle, plus the 4-cycle pipeline fill. Upper
	// bound: redirects cost at most two bubbles each.
	min := st.Insts + st.Stalls + st.Flushes + 4
	max := st.Insts + st.Stalls + 2*st.Flushes + 8
	if st.Cycles < min || st.Cycles > max {
		t.Errorf("cycle accounting: cycles=%d outside [%d,%d] (insts=%d stalls=%d flushes=%d)",
			st.Cycles, min, max, st.Insts, st.Stalls, st.Flushes)
	}
}
