// Masking invariants of the secure ISA, checked through the energy probe.
// This file lives in the external test package because the energy meter
// imports cpu (probes observe the core, not the other way around), so the
// internal test package cannot import it back.
package cpu_test

import (
	"math"
	"strings"
	"testing"

	"desmask/internal/asm"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/mem"
)

// traceTotals runs a program with an attached energy meter and returns the
// per-cycle energy totals.
func traceTotals(t *testing.T, src string, poke map[string]uint32) []float64 {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	for sym, v := range poke {
		addr, ok := p.Symbols[sym]
		if !ok {
			t.Fatalf("no symbol %q", sym)
		}
		if err := c.Mem().StoreWord(addr, v); err != nil {
			t.Fatal(err)
		}
	}
	meter := energy.NewProbe(energy.DefaultConfig())
	c.Attach(meter)
	var totals []float64
	c.Attach(cpu.ProbeFunc(func(cpu.CycleInfo) { totals = append(totals, meter.Last().Total) }))
	if err := c.Run(100000); err != nil {
		t.Fatal(err)
	}
	return totals
}

const secureLeakProgram = `
		.data
secret:	.word 0
out:	.word 0
		.text
main:	la    $t1, secret
		la    $t2, out
		%slw%   $t0, 0($t1)
		%sxor%  $t0, $t0, $t0
		%ssll%  $t3, $t0, 3
		%ssw%   $t3, 0($t2)
		halt
`

func substSecure(secure bool) string {
	src := secureLeakProgram
	repl := map[string]string{"%slw%": "slw", "%sxor%": "sxor", "%ssll%": "ssll", "%ssw%": "ssw"}
	if !secure {
		repl = map[string]string{"%slw%": "lw", "%sxor%": "xor", "%ssll%": "sll", "%ssw%": "sw"}
	}
	for k, v := range repl {
		src = strings.ReplaceAll(src, k, v)
	}
	return src
}

func TestSecureTraceDataIndependent(t *testing.T) {
	src := substSecure(true)
	a := traceTotals(t, src, map[string]uint32{"secret": 0x00000000})
	b := traceTotals(t, src, map[string]uint32{"secret": 0xdeadbeef})
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d differs: %.4f vs %.4f pJ (secure data leaked)", i, a[i], b[i])
		}
	}
}

func TestInsecureTraceLeaks(t *testing.T) {
	src := substSecure(false)
	a := traceTotals(t, src, map[string]uint32{"secret": 0x00000000})
	b := traceTotals(t, src, map[string]uint32{"secret": 0xdeadbeef})
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	var diff float64
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 1e-9 {
		t.Error("insecure run should exhibit data-dependent energy")
	}
}

func TestSecureCostsMore(t *testing.T) {
	sec := traceTotals(t, substSecure(true), map[string]uint32{"secret": 0x1234})
	insec := traceTotals(t, substSecure(false), map[string]uint32{"secret": 0x1234})
	var sSum, iSum float64
	for _, v := range sec {
		sSum += v
	}
	for _, v := range insec {
		iSum += v
	}
	if sSum <= iSum {
		t.Errorf("secure total %.1f pJ should exceed insecure %.1f pJ", sSum, iSum)
	}
}

// TestEnergyProbeAccumulation checks the meter's internal bookkeeping: the
// running total equals the sum of per-cycle totals, the per-component
// breakdown sums to the total, and peak/cycle counters are consistent.
func TestEnergyProbeAccumulation(t *testing.T) {
	p, err := asm.Assemble(`
main:	li   $t0, 2
		addu $t1, $t0, $t0
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	meter := energy.NewProbe(energy.DefaultConfig())
	c.Attach(meter)
	var sum, peak float64
	c.Attach(cpu.ProbeFunc(func(cpu.CycleInfo) {
		last := meter.Last().Total
		sum += last
		if last > peak {
			peak = last
		}
	}))
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(meter.TotalPJ()-sum) > 1e-6 {
		t.Errorf("meter total %.3f != per-cycle sum %.3f", meter.TotalPJ(), sum)
	}
	if meter.PeakPJ() != peak {
		t.Errorf("meter peak %.3f != observed peak %.3f", meter.PeakPJ(), peak)
	}
	if meter.Cycles() != c.Stats().Cycles {
		t.Errorf("meter cycles %d != cpu cycles %d", meter.Cycles(), c.Stats().Cycles)
	}
	var compSum float64
	for _, v := range meter.Total().By {
		compSum += v
	}
	if math.Abs(compSum-meter.TotalPJ()) > 1e-6 {
		t.Errorf("component sum %.3f != total %.3f", compSum, meter.TotalPJ())
	}
}

func TestDeterminism(t *testing.T) {
	src := `
main:	li   $t0, 0
		li   $t1, 1
loop:	addu $t0, $t0, $t1
		addiu $t1, $t1, 1
		slti $at, $t1, 20
		bne  $at, $zero, loop
		halt
	`
	a := traceTotals(t, src, nil)
	b := traceTotals(t, src, nil)
	if len(a) != len(b) {
		t.Fatal("non-deterministic cycle count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d energy differs between identical runs", i)
		}
	}
}

func TestSecureLoadUseStallStaysMasked(t *testing.T) {
	// A secure load feeding its consumer through the load-use stall path
	// must stay masked: the stall bubble and the forwarded value must not
	// leak the loaded secret.
	src := `
		.data
secret:	.word 0
out:	.word 0
		.text
main:	la    $t9, secret
		la    $t8, out
		slw   $t0, 0($t9)
		sxor  $t1, $t0, $t0   # immediate use: load-use stall on secure data
		ssw   $t1, 0($t8)
		halt
	`
	a := traceTotals(t, src, map[string]uint32{"secret": 0})
	b := traceTotals(t, src, map[string]uint32{"secret": 0xffffffff})
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks through the stall path", i)
		}
	}
}

func TestSecureOpsAcrossBranchFlush(t *testing.T) {
	// Secure instructions sitting in the shadow of a taken branch are
	// squashed before EX; the masked program must stay cycle-aligned and
	// flat regardless of the secret.
	src := `
		.data
secret:	.word 0
out:	.word 0
		.text
main:	la    $t9, secret
		la    $t8, out
		li    $t7, 3
loop:	slw   $t0, 0($t9)
		sxor  $t0, $t0, $t0
		ssw   $t0, 0($t8)
		addiu $t7, $t7, -1
		bgtz  $t7, loop
		slw   $t1, 0($t9)     # fetched in the shadow of the taken branch
		ssw   $t1, 0($t8)
		halt
	`
	a := traceTotals(t, src, map[string]uint32{"secret": 0x12345678})
	b := traceTotals(t, src, map[string]uint32{"secret": 0x87654321})
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("cycle %d leaks across branch flushes", i)
		}
	}
}

// TestStepLoopZeroAllocs pins the predecode refactor's allocation guarantee:
// once a core is constructed and its probes attached, the steady-state step
// loop — including a live energy meter observing every stage — performs zero
// heap allocations per cycle.
func TestStepLoopZeroAllocs(t *testing.T) {
	p, err := asm.Assemble(`
		.text
main:	addu  $t0, $t0, $t1
		xor   $t2, $t2, $t0
		j     main
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	meter := energy.NewProbe(energy.DefaultConfig())
	c.Attach(meter)
	// Warm past the pipeline fill so every stage is busy.
	for i := 0; i < 16; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state step loop allocates %.1f per cycle, want 0", allocs)
	}
}
