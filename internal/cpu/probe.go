package cpu

import "desmask/internal/isa"

// CycleInfo describes one committed clock cycle. U points at the micro-op
// that occupied EX this cycle, or is nil for a bubble (stall or flush slot).
type CycleInfo struct {
	Cycle uint64
	U     *isa.UOp
}

// FetchEvent fires when IF drives an instruction word onto the fetch bus.
type FetchEvent struct {
	Cycle uint64
	PC    uint32
	Word  uint32
}

// IssueEvent fires when ID decodes a micro-op and reads the register file.
// A and B are the operand values as read in ID, before forwarding.
type IssueEvent struct {
	Cycle uint64
	U     *isa.UOp
	A, B  uint32
}

// ExecEvent fires when EX evaluates a micro-op. A and B are the operand
// values after forwarding — the values the datapath actually switches on.
// Because a control redirect squashes only the ID and IF stages, every
// micro-op that reaches EX also retires: ExecEvents correspond one-to-one
// with architectural execution.
type ExecEvent struct {
	Cycle  uint64
	U      *isa.UOp
	A, B   uint32
	Result uint32
	Taken  bool
	Target uint32
}

// MemEvent fires when MEM performs a data-memory access. Data is the loaded
// value for loads and the stored value for stores.
type MemEvent struct {
	Cycle uint64
	U     *isa.UOp
	Addr  uint32
	Data  uint32
}

// WritebackEvent fires when WB retires a micro-op. Value is the writeback
// bus value (driven even when the micro-op has no destination register).
type WritebackEvent struct {
	Cycle uint64
	U     *isa.UOp
	Value uint32
}

// Probe observes the pipeline. Every probe receives OnCycle once per
// committed cycle; probes that additionally implement one of the stage
// observer interfaces below receive those events as the stages fire.
//
// Probes are observation-only: they must not mutate architectural state
// (registers, memory, PC) or influence simulation outcomes. The CPU hands
// probes pointers into its internal micro-op table for efficiency; treat
// them as read-only. Probes fire synchronously in attachment order.
type Probe interface {
	OnCycle(CycleInfo)
}

// ProbeFunc adapts a function to Probe.
type ProbeFunc func(CycleInfo)

// OnCycle implements Probe.
func (f ProbeFunc) OnCycle(c CycleInfo) { f(c) }

// FetchObserver receives IF-stage events.
type FetchObserver interface {
	OnFetch(FetchEvent)
}

// IssueObserver receives ID-stage events.
type IssueObserver interface {
	OnIssue(IssueEvent)
}

// ExecObserver receives EX-stage events.
type ExecObserver interface {
	OnExec(ExecEvent)
}

// MemObserver receives MEM-stage events.
type MemObserver interface {
	OnMem(MemEvent)
}

// WritebackObserver receives WB-stage events.
type WritebackObserver interface {
	OnWriteback(WritebackEvent)
}

// Attach registers a probe. The probe's stage interfaces are discovered once
// here by type assertion, so the per-cycle loop dispatches through dense
// slices with no dynamic checks. Probes fire in attachment order; attach the
// energy meter first if later probes read it within the same cycle.
// A nil probe is ignored.
func (c *CPU) Attach(p Probe) {
	if p == nil {
		return
	}
	c.probes = append(c.probes, p)
	if o, ok := p.(FetchObserver); ok {
		c.fetchObs = append(c.fetchObs, o)
	}
	if o, ok := p.(IssueObserver); ok {
		c.issueObs = append(c.issueObs, o)
	}
	if o, ok := p.(ExecObserver); ok {
		c.execObs = append(c.execObs, o)
	}
	if o, ok := p.(MemObserver); ok {
		c.memObs = append(c.memObs, o)
	}
	if o, ok := p.(WritebackObserver); ok {
		c.wbObs = append(c.wbObs, o)
	}
}

// ClearProbes detaches all probes.
func (c *CPU) ClearProbes() {
	c.probes = c.probes[:0]
	c.fetchObs = c.fetchObs[:0]
	c.issueObs = c.issueObs[:0]
	c.execObs = c.execObs[:0]
	c.memObs = c.memObs[:0]
	c.wbObs = c.wbObs[:0]
}
