package cpu

import (
	"errors"
	"math/rand"
	"testing"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// cosim runs the same program on the pipelined CPU and the golden-model
// RefModel and compares retired-instruction counts, final register files and
// a region of memory.
func cosim(t *testing.T, p *asm.Program, poke map[uint32]uint32, memCheck []uint32) {
	t.Helper()
	c, err := New(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRef(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	for addr, v := range poke {
		if err := c.Mem().StoreWord(addr, v); err != nil {
			t.Fatal(err)
		}
		if err := r.Mem().StoreWord(addr, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(10_000_000); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if err := r.Run(10_000_000); err != nil {
		t.Fatalf("ref: %v", err)
	}
	if c.Stats().Insts != r.Insts() {
		t.Errorf("retired %d instructions, ref executed %d", c.Stats().Insts, r.Insts())
	}
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		// $at may legitimately diverge? No: both models execute identical
		// instructions, so every register must agree.
		if c.Reg(reg) != r.Reg(reg) {
			t.Errorf("register %v: pipeline %#x, ref %#x", reg, c.Reg(reg), r.Reg(reg))
		}
	}
	for _, addr := range memCheck {
		cv, _ := c.Mem().LoadWord(addr)
		rv, _ := r.Mem().LoadWord(addr)
		if cv != rv {
			t.Errorf("mem[%#x]: pipeline %#x, ref %#x", addr, cv, rv)
		}
	}
}

func cosimSrc(t *testing.T, src string) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var checks []uint32
	for a := p.DataBase; a < p.DataEnd(); a += 4 {
		checks = append(checks, a)
	}
	cosim(t, p, nil, checks)
}

func TestCosimHazardKitchenSink(t *testing.T) {
	cosimSrc(t, `
		.data
buf:	.word 3, 1, 4, 1, 5, 9, 2, 6
out:	.space 32
		.text
main:	la   $s0, buf
		la   $s1, out
		li   $t0, 0          # i
		li   $s2, 0          # sum
loop:	sll  $t1, $t0, 2
		addu $t2, $s0, $t1
		lw   $t3, 0($t2)     # load-use with next
		addu $s2, $s2, $t3   # immediate use
		addu $t4, $s1, $t1
		sw   $s2, 0($t4)     # running sums
		addiu $t0, $t0, 1
		slti $at, $t0, 8
		bne  $at, $zero, loop
		halt
	`)
}

func TestCosimCallsAndRecursion(t *testing.T) {
	cosimSrc(t, `
		.data
res:	.word 0
		.text
main:	li   $a0, 9
		jal  fib
		sw   $v0, res
		halt
fib:	slti $at, $a0, 2
		beq  $at, $zero, rec
		move $v0, $a0
		jr   $ra
rec:	addiu $sp, $sp, -12
		sw   $ra, 0($sp)
		sw   $a0, 4($sp)
		addiu $a0, $a0, -1
		jal  fib
		sw   $v0, 8($sp)
		lw   $a0, 4($sp)
		addiu $a0, $a0, -2
		jal  fib
		lw   $t0, 8($sp)
		addu $v0, $v0, $t0
		lw   $ra, 0($sp)
		addiu $sp, $sp, 12
		jr   $ra
	`)
}

func TestCosimBranchVariants(t *testing.T) {
	cosimSrc(t, `
		.data
out:	.space 16
		.text
main:	li   $t9, 0
		li   $t0, -5
l1:		blez $t0, t1
		addiu $t9, $t9, 100
t1:		addiu $t9, $t9, 1
		bgtz $t0, l2
		addiu $t9, $t9, 2
l2:		addiu $t0, $t0, 1
		slti $at, $t0, 3
		bne  $at, $zero, l1
		sw   $t9, out
		halt
	`)
}

func TestCosimDESProgram(t *testing.T) {
	// The heavyweight check: the full compiled DES program agrees between
	// pipeline and golden model. (Uses the compiler output indirectly via
	// the desprog-generated assembly checked in package desprog; here we
	// run a medium-size hand-written kernel instead to keep package
	// boundaries clean.)
	cosimSrc(t, `
		.data
tab:	.word 7, 1, 9, 4, 0, 3, 8, 2, 6, 5
acc:	.word 0
		.text
main:	la   $s0, tab
		li   $t0, 0
		li   $s1, 1
perm:	sll  $t1, $t0, 2
		addu $t1, $s0, $t1
		lw   $t2, 0($t1)      # tab[i]
		sll  $t3, $t2, 2
		addu $t3, $s0, $t3
		lw   $t4, 0($t3)      # tab[tab[i]]
		xor  $s1, $s1, $t4
		mul  $s1, $s1, $t2
		sra  $t5, $s1, 3
		xor  $s1, $s1, $t5
		addiu $t0, $t0, 1
		slti $at, $t0, 10
		bne  $at, $zero, perm
		sw   $s1, acc
		halt
	`)
}

// randomStraightLine generates a terminating random ALU/memory program:
// straight-line code over a scratch buffer, no branches.
func randomStraightLine(rng *rand.Rand, n int) string {
	ops := []string{"addu", "subu", "and", "or", "xor", "nor", "sllv", "srlv", "srav", "slt", "sltu", "mul"}
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$s0", "$s1", "$s2"}
	src := "\t.data\nbuf:\t.space 64\n\t.text\nmain:\tla $gp, buf\n"
	// Seed registers.
	for i, r := range regs {
		src += "\tli " + r + ", " + itoa(int64(rng.Uint32()>>uint(i))) + "\n"
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0, 1, 2, 3: // R-type
			op := ops[rng.Intn(len(ops))]
			src += "\t" + op + " " + regs[rng.Intn(len(regs))] + ", " +
				regs[rng.Intn(len(regs))] + ", " + regs[rng.Intn(len(regs))] + "\n"
		case 4: // shift imm
			src += "\tsll " + regs[rng.Intn(len(regs))] + ", " + regs[rng.Intn(len(regs))] +
				", " + itoa(int64(rng.Intn(32))) + "\n"
		case 5: // store then load (word offsets within buf)
			off := itoa(int64(4 * rng.Intn(16)))
			src += "\tsw " + regs[rng.Intn(len(regs))] + ", " + off + "($gp)\n"
			src += "\tlw " + regs[rng.Intn(len(regs))] + ", " + off + "($gp)\n"
		case 6: // immediate ALU
			src += "\taddiu " + regs[rng.Intn(len(regs))] + ", " + regs[rng.Intn(len(regs))] +
				", " + itoa(int64(rng.Intn(8000)-4000)) + "\n"
		}
	}
	return src + "\thalt\n"
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// TestCosimRandomPrograms fuzzes the pipeline against the golden model with
// random straight-line programs (the dense hazard patterns live here:
// back-to-back dependencies, store-load pairs, shift chains).
func TestCosimRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	for trial := 0; trial < 30; trial++ {
		src := randomStraightLine(rng, 120)
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		var checks []uint32
		for a := p.DataBase; a < p.DataEnd(); a += 4 {
			checks = append(checks, a)
		}
		cosim(t, p, nil, checks)
		if t.Failed() {
			t.Fatalf("trial %d diverged; program:\n%s", trial, src)
		}
	}
}

func TestRefModelErrors(t *testing.T) {
	if _, err := NewRef(&asm.Program{}, mem.New()); err == nil {
		t.Error("empty program accepted")
	}
	p, err := asm.Assemble("main: nop\nnop\n") // runs off the end
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRef(p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(100); err == nil {
		t.Error("expected ref fetch fault")
	}
	p2, _ := asm.Assemble("main: j main\nhalt\n")
	r2, _ := NewRef(p2, mem.New())
	if err := r2.Run(50); !errors.Is(err, ErrCycleLimit) {
		t.Errorf("err = %v, want ErrCycleLimit", err)
	}
	p3, _ := asm.Assemble("main: halt\n")
	r3, _ := NewRef(p3, mem.New())
	if err := r3.Run(10); err != nil {
		t.Fatal(err)
	}
	if !r3.Halted() || r3.Insts() != 1 {
		t.Errorf("halted=%v insts=%d", r3.Halted(), r3.Insts())
	}
	if err := r3.Step(); err == nil {
		t.Error("stepping halted ref model should fail")
	}
}
