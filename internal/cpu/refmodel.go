package cpu

import (
	"errors"
	"fmt"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// RefModel is a functional, one-instruction-at-a-time golden model of the
// ISA with no pipeline. It executes the same predecoded micro-op table with
// the same EX-stage semantics (ExecUOp) as the pipelined CPU, so
// co-simulating the two validates exactly the machinery that can go wrong in
// the pipeline: operand bypassing, load-use stalls, control-flow flushes, and
// writeback ordering.
type RefModel struct {
	prog *asm.Program
	uops []isa.UOp
	mem  *mem.Memory
	regs [isa.NumRegs]uint32
	pc   uint32

	halted bool
	insts  uint64
}

// NewRef builds a reference model with the program's data image loaded and
// the same initial register state the pipelined CPU uses.
func NewRef(p *asm.Program, m *mem.Memory) (*RefModel, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("cpu: empty program")
	}
	uops, err := isa.PredecodeProgramFor(p.TargetOrDefault(), p.Text, p.TextBase)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	r := &RefModel{prog: p, uops: uops, mem: m, pc: p.Entry}
	if err := m.LoadImage(p.DataBase, p.Data); err != nil {
		return nil, err
	}
	r.regs[isa.SP] = p.DataEnd() + 4096
	r.regs[isa.GP] = p.DataBase
	return r, nil
}

// Reg returns an architectural register value.
func (r *RefModel) Reg(reg isa.Reg) uint32 { return r.regs[reg] }

// SetReg sets an architectural register.
func (r *RefModel) SetReg(reg isa.Reg, v uint32) {
	if reg != isa.Zero {
		r.regs[reg] = v
	}
}

// Mem returns the data memory.
func (r *RefModel) Mem() *mem.Memory { return r.mem }

// Halted reports whether a halt instruction retired.
func (r *RefModel) Halted() bool { return r.halted }

// Insts returns the number of executed instructions.
func (r *RefModel) Insts() uint64 { return r.insts }

// Run executes until halt or maxInsts instructions. It returns a
// *CycleLimitError (matching ErrCycleLimit) when the budget expires first.
func (r *RefModel) Run(maxInsts uint64) error {
	for !r.halted {
		if r.insts >= maxInsts {
			return &CycleLimitError{Limit: maxInsts}
		}
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (r *RefModel) Step() error {
	if r.halted {
		return errors.New("cpu: stepping a halted reference model")
	}
	idx := (r.pc - r.prog.TextBase) / 4
	if r.pc < r.prog.TextBase || int(idx) >= len(r.uops) || r.pc%4 != 0 {
		return fmt.Errorf("cpu: ref fetch outside text segment at pc %#x", r.pc)
	}
	u := &r.uops[idx]
	r.insts++

	// Operand selection uses the predecoded routing, mirroring the ID stage.
	a := r.regs[u.SrcA]
	b := u.BConst
	if u.BReg {
		b = r.regs[u.SrcB]
	}

	res, target, taken, err := ExecUOp(u, a, b)
	if err != nil {
		return err
	}

	value := res
	switch {
	case u.Load:
		v, lerr := r.mem.LoadWord(res)
		if lerr != nil {
			return fmt.Errorf("cpu: ref pc %#x: %w", r.pc, lerr)
		}
		value = v
	case u.Store:
		if serr := r.mem.StoreWord(res, b); serr != nil {
			return fmt.Errorf("cpu: ref pc %#x: %w", r.pc, serr)
		}
	case u.Class == isa.ClassHalt:
		r.halted = true
	}
	if u.Dest != isa.Zero {
		r.regs[u.Dest] = value
	}
	if taken {
		r.pc = target
	} else {
		r.pc += 4
	}
	return nil
}
